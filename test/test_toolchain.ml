(* Early end-to-end checks of the assemble -> link -> simulate chain. *)

let hello_src =
  {|
        .text
        .globl __start
__start:
        ldiq $16, 1          # fd = stdout
        lda  $17, msg
        ldiq $18, 6
        ldiq $0, 4           # SYS_write
        call_pal 0x83
        clr  $16
        ldiq $0, 1           # SYS_exit
        call_pal 0x83
        .data
msg:    .asciiz "hello\n"
|}

let run_asm ?stdin src =
  let u = Asmlib.Assemble.assemble ~name:"t" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let m = Machine.Sim.load ?stdin exe in
  let outcome = Machine.Sim.run ~max_insns:10_000_000 m in
  (outcome, m)

let test_hello () =
  let outcome, m = run_asm hello_src in
  (match outcome with
  | Machine.Sim.Exit 0 -> ()
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d" n
  | Machine.Sim.Fault f ->
      Alcotest.failf "fault: %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "out of fuel");
  Alcotest.(check string) "stdout" "hello\n" (Machine.Sim.stdout m)

let loop_src =
  {|
        .text
        .globl __start
__start:
        clr   $1
        ldiq  $2, 10
loop:   addq  $1, $2, $1
        subq  $2, 1, $2
        bne   $2, loop
        # sum 10+9+...+1 = 55 ; exit with it
        mov   $1, $16
        ldiq  $0, 1
        call_pal 0x83
|}

let test_loop () =
  let outcome, _ = run_asm loop_src in
  match outcome with
  | Machine.Sim.Exit 55 -> ()
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d, expected 55" n
  | Machine.Sim.Fault f ->
      Alcotest.failf "fault: %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "out of fuel"

let call_src =
  {|
        .text
        .globl __start
        .ent double_it
double_it:
        addq $16, $16, $0
        ret
        .end double_it
__start:
        ldiq $16, 21
        bsr  $26, double_it
        mov  $0, $16
        ldiq $0, 1
        call_pal 0x83
|}

let test_call () =
  let outcome, _ = run_asm call_src in
  match outcome with
  | Machine.Sim.Exit 42 -> ()
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d, expected 42" n
  | Machine.Sim.Fault f ->
      Alcotest.failf "fault: %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "out of fuel"

let () =
  Alcotest.run "toolchain"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "hello world" `Quick test_hello;
          Alcotest.test_case "loop sums" `Quick test_loop;
          Alcotest.test_case "procedure call" `Quick test_call;
        ] );
    ]
