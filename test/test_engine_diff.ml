(* Engine differential: every workload, uninstrumented and instrumented
   with each packaged tool, is run under both the reference interpreter
   and the closure-compiled fast engine.  The two must agree on the
   outcome, the complete statistics record (instructions, cycles,
   dual-issue pair cycles, loads, stores, conditional branches, taken
   branches, calls, syscalls), stdout, stderr, analysis output files and
   the final heap break. *)

let stat_fields =
  [
    ("insns", fun s -> s.Machine.Sim.st_insns);
    ("cycles", fun s -> s.Machine.Sim.st_cycles);
    ("pair_cycles", fun s -> s.Machine.Sim.st_pair_cycles);
    ("loads", fun s -> s.Machine.Sim.st_loads);
    ("stores", fun s -> s.Machine.Sim.st_stores);
    ("cond_branches", fun s -> s.Machine.Sim.st_cond_branches);
    ("taken", fun s -> s.Machine.Sim.st_taken);
    ("calls", fun s -> s.Machine.Sim.st_calls);
    ("syscalls", fun s -> s.Machine.Sim.st_syscalls);
  ]

let outcome_str = function
  | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
  | Machine.Sim.Fault f -> "fault " ^ Machine.Fault.to_string f
  | Machine.Sim.Out_of_fuel -> "out of fuel"

let check_cell ?tag ?profile label exe =
  let label =
    match tag with None -> label | Some t -> label ^ " (" ^ t ^ ")"
  in
  let o_ref, m_ref = Workloads.run_exe ~engine:Machine.Sim.Ref exe in
  let o_fast, m_fast =
    Workloads.run_exe ~engine:Machine.Sim.Fast ?profile exe
  in
  if o_ref <> o_fast then
    Alcotest.failf "%s: outcome ref=%s fast=%s" label (outcome_str o_ref)
      (outcome_str o_fast);
  (match o_ref with
  | Machine.Sim.Exit 0 -> ()
  | o -> Alcotest.failf "%s: expected exit 0, got %s" label (outcome_str o));
  let s_ref = Machine.Sim.stats m_ref and s_fast = Machine.Sim.stats m_fast in
  List.iter
    (fun (name, field) ->
      if field s_ref <> field s_fast then
        Alcotest.failf "%s: %s ref=%d fast=%d" label name (field s_ref)
          (field s_fast))
    stat_fields;
  if Machine.Sim.stdout m_ref <> Machine.Sim.stdout m_fast then
    Alcotest.failf "%s: stdout differs" label;
  if Machine.Sim.stderr m_ref <> Machine.Sim.stderr m_fast then
    Alcotest.failf "%s: stderr differs" label;
  if Machine.Sim.output_files m_ref <> Machine.Sim.output_files m_fast then
    Alcotest.failf "%s: output files differ" label;
  if Machine.Sim.brk m_ref <> Machine.Sim.brk m_fast then
    Alcotest.failf "%s: final break ref=%#x fast=%#x" label
      (Machine.Sim.brk m_ref) (Machine.Sim.brk m_fast)

let test_uninstrumented () =
  List.iter
    (fun w -> check_cell w.Workloads.w_name (Workloads.compile w))
    Workloads.all

let test_tool tool () =
  List.iter
    (fun w ->
      let exe = Workloads.compile w in
      let exe', _ = Tools.Tool.apply tool exe in
      check_cell (tool.Tools.Tool.name ^ "/" ^ w.Workloads.w_name) exe')
    Workloads.all

(* -- profile-guided speculation ------------------------------------------ *)

(* Record a genuine edge profile exactly the way `runsim --profile` does:
   instrument with the packaged trace tool, run, parse the flow-fact
   sexp, and derive per-branch direction predictions over the original
   program's CFG.  The profiled fast engine speculates turbo superblocks
   across the predicted side of each conditional branch; every crossing
   is guarded, so even a deliberately inverted ("stale") profile must
   leave every observable identical to the reference interpreter. *)
let record_predictions exe =
  let trace =
    match Tools.Registry.find "trace" with
    | Some t -> t
    | None -> Alcotest.fail "no packaged trace tool"
  in
  let exe_t, _ = Tools.Tool.apply trace exe in
  let m = Machine.Sim.load exe_t in
  (match Machine.Sim.run m with
  | Machine.Sim.Exit 0 -> ()
  | o -> Alcotest.failf "trace run: %s" (outcome_str o));
  let facts =
    match List.assoc_opt "trace.out" (Machine.Sim.output_files m) with
    | Some text -> Wcet.Facts.parse text
    | None -> Alcotest.fail "trace tool produced no trace.out"
  in
  Wcet.Facts.predictions (Om.Cfg.build (Om.Build.program exe)) facts

let test_profiled () =
  List.iter
    (fun w ->
      let exe = Workloads.compile w in
      let preds = record_predictions exe in
      if preds = [] then
        Alcotest.failf "%s: trace run yielded an empty profile"
          w.Workloads.w_name;
      let profile = Machine.Profile.of_predictions preds in
      let stale =
        Machine.Profile.of_predictions (Machine.Profile.invert profile)
      in
      check_cell ~tag:"profiled" ~profile w.Workloads.w_name exe;
      check_cell ~tag:"stale profile" ~profile:stale w.Workloads.w_name exe)
    Workloads.all

(* A profile recorded on the original program, remapped through the
   instrumenter's address map onto the instrumented binary — the
   atom_cli `--profile` path. *)
let test_tool_profiled tool () =
  List.iter
    (fun w ->
      let exe = Workloads.compile w in
      let preds = record_predictions exe in
      let exe', info = Tools.Tool.apply tool exe in
      let mapped =
        List.map
          (fun (pc, d) -> (info.Atom.Instrument.i_map pc, d))
          preds
      in
      check_cell ~tag:"profiled"
        ~profile:(Machine.Profile.of_predictions mapped)
        (tool.Tools.Tool.name ^ "/" ^ w.Workloads.w_name)
        exe')
    Workloads.all

let profiled_tools =
  List.filter
    (fun t -> List.mem t.Tools.Tool.name [ "trace"; "gprof"; "cache" ])
    Tools.Registry.all

(* -- specialized analysis-call stubs ------------------------------------- *)

let spec_options =
  {
    Atom.Instrument.default_options with
    Atom.Instrument.call_style = Atom.Instrument.Specialized;
  }

let spec_workloads =
  List.filter
    (fun w -> List.mem w.Workloads.w_name [ "compress"; "sieve"; "qsort" ])
    Workloads.all

let test_tool_specialized tool () =
  List.iter
    (fun w ->
      let exe = Workloads.compile w in
      let exe', _ = Tools.Tool.apply ~options:spec_options tool exe in
      check_cell ~tag:"specialized"
        (tool.Tools.Tool.name ^ "/" ^ w.Workloads.w_name)
        exe')
    spec_workloads

let () =
  Alcotest.run "engine-diff"
    [
      ( "uninstrumented",
        [ Alcotest.test_case "all workloads" `Quick test_uninstrumented ] );
      ( "instrumented",
        List.map
          (fun tool ->
            Alcotest.test_case tool.Tools.Tool.name `Slow (test_tool tool))
          Tools.Registry.all );
      ( "profiled",
        [
          Alcotest.test_case "genuine and inverted profiles" `Quick
            test_profiled;
        ] );
      ( "profiled instrumented",
        List.map
          (fun tool ->
            Alcotest.test_case tool.Tools.Tool.name `Slow
              (test_tool_profiled tool))
          profiled_tools );
      ( "specialized stubs",
        List.map
          (fun tool ->
            Alcotest.test_case tool.Tools.Tool.name `Slow
              (test_tool_specialized tool))
          Tools.Registry.all );
    ]
