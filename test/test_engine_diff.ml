(* Engine differential: every workload, uninstrumented and instrumented
   with each packaged tool, is run under both the reference interpreter
   and the closure-compiled fast engine.  The two must agree on the
   outcome, the complete statistics record (instructions, cycles,
   dual-issue pair cycles, loads, stores, conditional branches, taken
   branches, calls, syscalls), stdout, stderr, analysis output files and
   the final heap break. *)

let stat_fields =
  [
    ("insns", fun s -> s.Machine.Sim.st_insns);
    ("cycles", fun s -> s.Machine.Sim.st_cycles);
    ("pair_cycles", fun s -> s.Machine.Sim.st_pair_cycles);
    ("loads", fun s -> s.Machine.Sim.st_loads);
    ("stores", fun s -> s.Machine.Sim.st_stores);
    ("cond_branches", fun s -> s.Machine.Sim.st_cond_branches);
    ("taken", fun s -> s.Machine.Sim.st_taken);
    ("calls", fun s -> s.Machine.Sim.st_calls);
    ("syscalls", fun s -> s.Machine.Sim.st_syscalls);
  ]

let outcome_str = function
  | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
  | Machine.Sim.Fault f -> "fault " ^ Machine.Fault.to_string f
  | Machine.Sim.Out_of_fuel -> "out of fuel"

let check_cell label exe =
  let run engine = Workloads.run_exe ~engine exe in
  let o_ref, m_ref = run Machine.Sim.Ref in
  let o_fast, m_fast = run Machine.Sim.Fast in
  if o_ref <> o_fast then
    Alcotest.failf "%s: outcome ref=%s fast=%s" label (outcome_str o_ref)
      (outcome_str o_fast);
  (match o_ref with
  | Machine.Sim.Exit 0 -> ()
  | o -> Alcotest.failf "%s: expected exit 0, got %s" label (outcome_str o));
  let s_ref = Machine.Sim.stats m_ref and s_fast = Machine.Sim.stats m_fast in
  List.iter
    (fun (name, field) ->
      if field s_ref <> field s_fast then
        Alcotest.failf "%s: %s ref=%d fast=%d" label name (field s_ref)
          (field s_fast))
    stat_fields;
  if Machine.Sim.stdout m_ref <> Machine.Sim.stdout m_fast then
    Alcotest.failf "%s: stdout differs" label;
  if Machine.Sim.stderr m_ref <> Machine.Sim.stderr m_fast then
    Alcotest.failf "%s: stderr differs" label;
  if Machine.Sim.output_files m_ref <> Machine.Sim.output_files m_fast then
    Alcotest.failf "%s: output files differ" label;
  if Machine.Sim.brk m_ref <> Machine.Sim.brk m_fast then
    Alcotest.failf "%s: final break ref=%#x fast=%#x" label
      (Machine.Sim.brk m_ref) (Machine.Sim.brk m_fast)

let test_uninstrumented () =
  List.iter
    (fun w -> check_cell w.Workloads.w_name (Workloads.compile w))
    Workloads.all

let test_tool tool () =
  List.iter
    (fun w ->
      let exe = Workloads.compile w in
      let exe', _ = Tools.Tool.apply tool exe in
      check_cell (tool.Tools.Tool.name ^ "/" ^ w.Workloads.w_name) exe')
    Workloads.all

let () =
  Alcotest.run "engine-diff"
    [
      ( "uninstrumented",
        [ Alcotest.test_case "all workloads" `Quick test_uninstrumented ] );
      ( "instrumented",
        List.map
          (fun tool ->
            Alcotest.test_case tool.Tools.Tool.name `Slow (test_tool tool))
          Tools.Registry.all );
    ]
