(* atomd serving-mode suite: concurrent clients against an in-process
   daemon, byte-for-byte parity with the single-process pipeline,
   deterministic cache accounting under contention, persistence across a
   daemon restart, fail-closed per-request ceilings, and the toolcache
   regressions (weak digest memo, fresh per-request IR views, one fuel
   default). *)

let temp_dir () =
  let d = Filename.temp_file "atom-serve-test" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_server ?config ?cache_dir f =
  let dir = temp_dir () in
  let sock = Filename.concat dir "atomd.sock" in
  let t = Serve.start ?config ?cache_dir ~socket:sock () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop t;
      rm_rf dir)
    (fun () -> f sock t)

let workload name =
  match Workloads.find name with
  | Some w -> w
  | None -> Alcotest.failf "no workload %s" name

let tool name =
  match Tools.Registry.find name with
  | Some t -> t
  | None -> Alcotest.failf "no tool %s" name

(* -- byte parity with the single-process pipeline ----------------------- *)

let test_parity () =
  let exe = Workloads.compile (workload "qsort") in
  let exe_bytes = Objfile.Exe.to_string exe in
  let local_exe', _ = Tools.Tool.apply (tool "prof") exe in
  let local_bytes = Objfile.Exe.to_string local_exe' in
  let local_outcome, local_m = Workloads.run_exe local_exe' in
  with_server (fun sock _t ->
      let c = Serve.Client.connect sock in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let digest, image = Serve.Client.instrument c ~tool:"prof" exe_bytes in
      Alcotest.(check bool) "image bytes match single-process pipeline" true
        (String.equal image local_bytes);
      Alcotest.(check string) "digest is of the image bytes"
        (Digest.to_hex (Digest.string local_bytes))
        digest;
      let r = Serve.Client.run c (Serve.Protocol.Image digest) in
      (match (r.Serve.Protocol.rr_outcome, local_outcome) with
      | Serve.Protocol.W_exit a, Machine.Sim.Exit b ->
          Alcotest.(check int) "exit code" b a
      | _ -> Alcotest.fail "expected clean exits on both paths");
      Alcotest.(check string) "stdout bytes"
        (Machine.Sim.stdout local_m)
        r.Serve.Protocol.rr_stdout;
      Alcotest.(check int) "instruction counts"
        (Machine.Sim.stats local_m).Machine.Sim.st_insns
        r.Serve.Protocol.rr_stats.Machine.Sim.st_insns)

(* -- concurrent clients, identical keys --------------------------------- *)

(* four clients race to instrument the same (exe, tool, options) key: the
   in-flight dedup must build once — exactly 4 cache misses (finished
   image, program, analysis module, final link) with the other three
   clients waiting on the in-flight image build and hitting it — and
   everyone gets byte-identical images *)
let test_identical_keys () =
  let exe = Workloads.compile (workload "cover") in
  let exe_bytes = Objfile.Exe.to_string exe in
  let n = 4 in
  with_server (fun sock _t ->
      let hits0 = Atom.Toolcache.hits ()
      and misses0 = Atom.Toolcache.misses () in
      let doms =
        List.init n (fun _ ->
            Domain.spawn (fun () ->
                let c = Serve.Client.connect sock in
                Fun.protect ~finally:(fun () -> Serve.Client.close c)
                @@ fun () ->
                let _digest, image =
                  Serve.Client.instrument c ~tool:"branch" exe_bytes
                in
                image))
      in
      let images = List.map Domain.join doms in
      let first = List.hd images in
      List.iteri
        (fun i img ->
          Alcotest.(check bool)
            (Printf.sprintf "client %d image identical" i)
            true (String.equal first img))
        images;
      Alcotest.(check int) "misses: one build per cache kind" 4
        (Atom.Toolcache.misses () - misses0);
      Alcotest.(check int) "hits: every other request waited and hit" (n - 1)
        (Atom.Toolcache.hits () - hits0))

(* -- concurrent clients, distinct keys ----------------------------------- *)

let test_distinct_keys () =
  let exe = Workloads.compile (workload "sieve") in
  let exe_bytes = Objfile.Exe.to_string exe in
  let tools = [ "syscall"; "malloc"; "unalign"; "io" ] in
  let expected =
    List.map
      (fun tn ->
        ( tn,
          Objfile.Exe.to_string
            (fst
               (Tools.Tool.apply ~options:Atom.Instrument.default_options
                  (tool tn) exe)) ))
      tools
  in
  (* the local runs above warmed every key; serve them all concurrently
     and check each client gets its own tool's image, not a neighbour's *)
  with_server (fun sock _t ->
      let doms =
        List.map
          (fun tn ->
            Domain.spawn (fun () ->
                let c = Serve.Client.connect sock in
                Fun.protect ~finally:(fun () -> Serve.Client.close c)
                @@ fun () ->
                let _d, image = Serve.Client.instrument c ~tool:tn exe_bytes in
                (tn, image)))
          tools
      in
      let got = List.map Domain.join doms in
      List.iter
        (fun (tn, image) ->
          let want = List.assoc tn expected in
          Alcotest.(check bool)
            (Printf.sprintf "tool %s image matches local pipeline" tn)
            true
            (String.equal want image))
        got)

(* -- persistence across a daemon restart --------------------------------- *)

let test_persistent_store () =
  let exe = Workloads.compile (workload "perm") in
  let exe_bytes = Objfile.Exe.to_string exe in
  let store = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      Atom.Toolcache.set_store None;
      rm_rf store)
    (fun () ->
      let first =
        with_server ~cache_dir:store (fun sock _t ->
            let c = Serve.Client.connect sock in
            Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
            snd (Serve.Client.instrument c ~tool:"pipe" exe_bytes))
      in
      (* a "restarted" daemon: in-memory cache dropped, same store dir *)
      Atom.Toolcache.clear ();
      let disk0 = Atom.Toolcache.disk_hits ()
      and misses0 = Atom.Toolcache.misses () in
      let second =
        with_server ~cache_dir:store (fun sock _t ->
            let c = Serve.Client.connect sock in
            Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
            snd (Serve.Client.instrument c ~tool:"pipe" exe_bytes))
      in
      Alcotest.(check bool) "restarted daemon serves identical bytes" true
        (String.equal first second);
      let disk_served = Atom.Toolcache.disk_hits () - disk0 in
      Alcotest.(check int) "the finished image came straight from disk" 1
        disk_served;
      Alcotest.(check int) "nothing was rebuilt" 0
        (Atom.Toolcache.misses () - misses0))

(* -- fail-closed ceilings ------------------------------------------------ *)

(* a hostile request (absurd page ceiling) faults closed with a
   structured mem-limit fault; the same connection — hence the same
   worker — then serves normal requests, so one poisoned job cannot take
   a worker down *)
let test_ceilings () =
  let exe = Workloads.compile (workload "qsort") in
  let exe_bytes = Objfile.Exe.to_string exe in
  with_server (fun sock _t ->
      let c = Serve.Client.connect sock in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let digest = Serve.Client.load_image c exe_bytes in
      let starved =
        Serve.Client.run c
          ~ceilings:{ Serve.Protocol.no_ceilings with rc_max_pages = 2 }
          (Serve.Protocol.Image digest)
      in
      (match starved.Serve.Protocol.rr_outcome with
      | Serve.Protocol.W_fault { kind; _ } ->
          Alcotest.(check string) "page-starved run faults closed" "mem-limit"
            kind
      | _ -> Alcotest.fail "expected a mem-limit fault");
      let fuel_starved =
        Serve.Client.run c
          ~ceilings:{ Serve.Protocol.no_ceilings with rc_max_insns = 1_000 }
          (Serve.Protocol.Image digest)
      in
      (match fuel_starved.Serve.Protocol.rr_outcome with
      | Serve.Protocol.W_out_of_fuel -> ()
      | _ -> Alcotest.fail "expected the run to hit the fuel ceiling");
      (* an unknown tool is an Error reply, not a dead connection *)
      (match
         Serve.Client.instrument c ~tool:"no-such-tool" exe_bytes
       with
      | _ -> Alcotest.fail "unknown tool must be rejected"
      | exception Serve.Server_error _ -> ());
      (* the same worker, same connection, still serves healthy requests *)
      let ok = Serve.Client.run c (Serve.Protocol.Image digest) in
      (match ok.Serve.Protocol.rr_outcome with
      | Serve.Protocol.W_exit 0 -> ()
      | _ -> Alcotest.fail "healthy run after faulted runs must succeed");
      let s = Serve.Client.stats c in
      Alcotest.(check bool) "errors were counted" true
        (s.Serve.Protocol.sr_errors >= 1))

(* -- toolcache regressions (satellites) ---------------------------------- *)

(* digesting a stream of distinct executables must not retain them: the
   identity memo holds weak slots only *)
let test_digest_memo_retention () =
  let base = Workloads.compile (workload "bitvec") in
  let n = 200 in
  let freed = ref 0 in
  for _ = 1 to n do
    let exe = { base with Objfile.Exe.x_entry = base.Objfile.Exe.x_entry } in
    Gc.finalise (fun _ -> incr freed) exe;
    ignore (Atom.Toolcache.exe_digest exe)
  done;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool)
    (Printf.sprintf "digested executables were collected (%d/%d freed)" !freed
       n)
    true
    (!freed >= n - 8)

(* two domains hammer find_or_add_program for one key, each mutating the
   view it got; every fetch must observe pristine (empty) action slots *)
let test_fresh_program_views () =
  let exe = Workloads.compile (workload "hashtab") in
  let key = Atom.Toolcache.exe_digest exe in
  let iters = 50 in
  let worker () =
    Domain.spawn (fun () ->
        let dirty = ref 0 in
        for _ = 1 to iters do
          let prog =
            Atom.Toolcache.find_or_add_program key (fun () ->
                Om.Build.program exe)
          in
          Om.Ir.iter_insts prog (fun _ _ i ->
              if i.Om.Ir.i_before <> [] || i.Om.Ir.i_after <> [] then
                incr dirty);
          (* scribble on our private view *)
          Om.Ir.iter_insts prog (fun _ _ i ->
              Om.Ir.add_before i (Om.Ir.stub_of_insns []))
        done;
        !dirty)
  in
  let a = worker () and b = worker () in
  let dirty = Domain.join a + Domain.join b in
  Alcotest.(check int) "no fetch ever observed another view's stubs" 0 dirty

let test_one_fuel_default () =
  Alcotest.(check int) "the one documented fuel default" 1_000_000_000
    Machine.Sim.default_max_insns

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "pipeline parity" `Quick test_parity;
          Alcotest.test_case "identical keys, 4 clients" `Quick
            test_identical_keys;
          Alcotest.test_case "distinct keys, 4 clients" `Quick
            test_distinct_keys;
          Alcotest.test_case "persistent store, daemon restart" `Quick
            test_persistent_store;
          Alcotest.test_case "fail-closed ceilings" `Quick test_ceilings;
        ] );
      ( "toolcache",
        [
          Alcotest.test_case "digest memo retains nothing" `Quick
            test_digest_memo_retention;
          Alcotest.test_case "fresh per-request IR views" `Quick
            test_fresh_program_views;
          Alcotest.test_case "one fuel default" `Quick test_one_fuel_default;
        ] );
    ]
