(* Cross-validation: each tool's analysis output is checked against
   ground truth from the simulator's own counters (or against facts known
   statically about the workload).  Small tolerances cover the code that
   runs inside exit() after the Program_after hooks have reported. *)

let run exe =
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:600_000_000 m with
  | Machine.Sim.Exit 0 -> m
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d" n
  | Machine.Sim.Fault f -> Alcotest.failf "fault %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "fuel"

let apply_and_run tool_name exe =
  let tool = Option.get (Tools.Registry.find tool_name) in
  let exe', _ = Tools.Tool.apply tool exe in
  let m = run exe' in
  match List.assoc_opt (tool_name ^ ".out") (Machine.Sim.output_files m) with
  | Some contents -> (m, contents)
  | None -> Alcotest.failf "no %s.out" tool_name

(* "label: value" or "label:\twhatever value" field extraction *)
let field contents prefix =
  String.split_on_char '\n' contents
  |> List.find_map (fun l ->
         let pl = String.length prefix in
         if String.length l > pl && String.sub l 0 pl = prefix then
           String.sub l pl (String.length l - pl)
           |> String.trim |> int_of_string_opt
         else None)

let req contents prefix =
  match field contents prefix with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %S" prefix contents

let close ~tol a b = a <= b && b - a <= tol

let lisp_exe = lazy (Workloads.compile (Option.get (Workloads.find "lisp")))
let sieve_exe = lazy (Workloads.compile (Option.get (Workloads.find "sieve")))

let test_dyninst_total () =
  let exe = Lazy.force sieve_exe in
  let base = run exe in
  let expected = (Machine.Sim.stats base).Machine.Sim.st_insns in
  let _, out = apply_and_run "dyninst" exe in
  let counted = req out "dynamic instructions:" in
  if not (close ~tol:400 counted expected) then
    Alcotest.failf "dyninst counted %d, simulator retired %d" counted expected

let test_pipe_cpi () =
  let exe = Lazy.force sieve_exe in
  let _, out = apply_and_run "pipe" exe in
  let insns = req out "instructions:" in
  let cycles = req out "scheduled cycles:" in
  let ideal = req out "dual-issue ideal:" in
  Alcotest.(check bool) "ideal = ceil n/2-ish" true (close ~tol:insns ideal ((insns + 1) / 2));
  Alcotest.(check bool) "cycles >= ideal" true (cycles >= ideal);
  Alcotest.(check bool) "cycles <= insns * max latency" true (cycles <= insns * 34);
  let cpi_x100 = req out "cpi (x100):" in
  Alcotest.(check bool)
    (Printf.sprintf "plausible CPI %d" cpi_x100)
    true
    (cpi_x100 >= 50 && cpi_x100 <= 400)

let test_gprof_consistency () =
  let exe = Lazy.force sieve_exe in
  let base = run exe in
  let expected = (Machine.Sim.stats base).Machine.Sim.st_insns in
  let _, out = apply_and_run "gprof" exe in
  (* per-procedure instruction counts must sum to the dynamic total *)
  let lines = String.split_on_char '\n' out in
  let total, main_calls =
    List.fold_left
      (fun (sum, mc) line ->
        match String.split_on_char '\t' line with
        | [ name; calls; insns ] -> (
            match (int_of_string_opt calls, int_of_string_opt insns) with
            | Some c, Some i -> (sum + i, if name = "main" then mc + c else mc)
            | _ -> (sum, mc))
        | _ -> (sum, mc))
      (0, 0) lines
  in
  Alcotest.(check int) "main called once" 1 main_calls;
  if not (close ~tol:400 total expected) then
    Alcotest.failf "gprof counted %d, simulator retired %d" total expected

let test_syscall_totals () =
  (* an application that makes many syscalls *before* program end (file
     writes flush per 512-byte buffer); the hooks report at exit entry, so
     only the final flush and the exit syscall are uncounted *)
  let exe =
    Rtlib.compile_and_link ~name:"sc.o"
      {|
long main(void) {
  void *f = fopen("big.txt", "w");
  long i;
  for (i = 0; i < 300; i++) fprintf(f, "line %d of the output file\n", i);
  fclose(f);
  return 0;
}
|}
  in
  let base = run exe in
  let expected = (Machine.Sim.stats base).Machine.Sim.st_syscalls in
  let _, out = apply_and_run "syscall" exe in
  let counted =
    String.split_on_char '\n' out
    |> List.find_map (fun l ->
           if String.length l > 13 && String.sub l 0 13 = "system calls:" then
             String.sub l 13 (String.length l - 13)
             |> String.trim |> String.split_on_char ' '
             |> function
             | n :: _ -> int_of_string_opt n
             | [] -> None
           else None)
    |> Option.get
  in
  Alcotest.(check bool) "many syscalls counted" true (counted > 10);
  if not (close ~tol:4 counted expected) then
    Alcotest.failf "syscall counted %d, simulator made %d" counted expected

let test_io_bytes () =
  (* chatty program: all but the last (post-report) buffer flush is seen
     by the io tool *)
  let exe =
    Rtlib.compile_and_link ~name:"io.o"
      {|
long main(void) {
  long i;
  for (i = 0; i < 400; i++) printf("chatty line number %d\n", i);
  return 0;
}
|}
  in
  let base = run exe in
  let expected_bytes = String.length (Machine.Sim.stdout base) in
  let _, out = apply_and_run "io" exe in
  (* all application output goes through the write funnel *)
  let line =
    String.split_on_char '\n' out
    |> List.find (fun l -> String.length l > 6 && String.sub l 0 6 = "writes")
  in
  (* "writes: N calls, B bytes requested, T transferred" *)
  let words = String.split_on_char ' ' line in
  let numbers = List.filter_map int_of_string_opt (List.map (fun w ->
      String.concat "" (String.split_on_char ',' w)) words) in
  match numbers with
  | [ _calls; req_b; done_b ] ->
      Alcotest.(check int) "requested = transferred" req_b done_b;
      (* within one stdio buffer of the whole output (the final flush
         happens after the report) *)
      if done_b > expected_bytes || expected_bytes - done_b > 512 then
        Alcotest.failf "io saw %d bytes, program wrote %d" done_b expected_bytes
  | _ -> Alcotest.failf "unparsable io line %S" line

let test_malloc_exact () =
  let exe = Lazy.force lisp_exe in
  let _, out = apply_and_run "malloc" exe in
  (* build(11, _) allocates exactly 2^12 - 1 tree nodes and nothing else
     mallocs in the application *)
  Alcotest.(check int) "allocation count" 4095 (req out "malloc calls:");
  Alcotest.(check int) "bytes requested" (4095 * 32) (req out "bytes requested:")

let test_branch_taken_rate () =
  let exe = Lazy.force sieve_exe in
  let base = run exe in
  let st = Machine.Sim.stats base in
  let _, out = apply_and_run "branch" exe in
  let total = req out "conditional branches executed:" in
  let taken = req out "taken:" in
  let correct = req out "2-bit predictor correct:" in
  Alcotest.(check bool) "total close to simulator" true
    (close ~tol:200 total st.Machine.Sim.st_cond_branches);
  Alcotest.(check bool) "taken close to simulator" true
    (close ~tol:200 taken st.Machine.Sim.st_taken);
  Alcotest.(check bool) "predictor between 50% and 100%" true
    (correct * 2 >= total && correct <= total)

let test_unalign_counts () =
  (* a program performing known unaligned accesses *)
  let exe =
    Rtlib.compile_and_link ~name:"ua.o"
      {|
char buf[64];
long main(void) {
  long i, s = 0;
  long *p1 = (long *) (buf + 1);    /* unaligned */
  long *p8 = (long *) (buf + 8);    /* aligned */
  for (i = 0; i < 50; i++) {
    *p1 = i;
    s += *p8;
  }
  printf("%d\n", s);
  return 0;
}
|}
  in
  let _, out = apply_and_run "unalign" exe in
  let bad = req out "unaligned:" in
  (* 50 unaligned stores; everything else the program and its library do
     is aligned *)
  Alcotest.(check int) "exactly the 50 unaligned stores" 50 bad

let test_cache_extremes () =
  (* a strided walk touching one new 32-byte line per reference misses
     every time once the working set exceeds 8 KB *)
  let exe =
    Rtlib.compile_and_link ~name:"cs.o"
      {|
char big[65536];
long main(void) {
  long i, rep, s = 0;
  for (rep = 0; rep < 4; rep++)
    for (i = 0; i < 65536; i += 32) s += big[i];
  printf("%d\n", s);
  return 0;
}
|}
  in
  let _, out = apply_and_run "cache" exe in
  let refs = req out "references:" in
  let misses = req out "misses:" in
  (* 4 * 2048 strided loads plus a few thousand library references; the
     strided loads all miss *)
  Alcotest.(check bool) "at least the strided misses" true (misses >= 4 * 2048);
  Alcotest.(check bool) "misses below references" true (misses < refs)

let () =
  Alcotest.run "tool_outputs"
    [
      ( "ground truth",
        [
          Alcotest.test_case "dyninst total instructions" `Quick test_dyninst_total;
          Alcotest.test_case "pipe CPI sanity" `Quick test_pipe_cpi;
          Alcotest.test_case "gprof sums and calls" `Quick test_gprof_consistency;
          Alcotest.test_case "syscall totals" `Quick test_syscall_totals;
          Alcotest.test_case "io byte accounting" `Quick test_io_bytes;
          Alcotest.test_case "malloc exact counts" `Quick test_malloc_exact;
          Alcotest.test_case "branch taken rate" `Quick test_branch_taken_rate;
          Alcotest.test_case "unalign exact counts" `Quick test_unalign_counts;
          Alcotest.test_case "cache extremes" `Quick test_cache_extremes;
        ] );
    ]
