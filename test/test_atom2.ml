(* Deeper ATOM tests: prototype parsing, API misuse errors, the pristine
   guarantee for REGV/EffAddrValue (validated against an execution trace
   of the uninstrumented program), and the option matrix. *)

let compile src = Rtlib.compile_and_link ~name:"app.o" src

let run exe =
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:600_000_000 m with
  | Machine.Sim.Exit 0 -> m
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d (stderr %s)" n (Machine.Sim.stderr m)
  | Machine.Sim.Fault f -> Alcotest.failf "fault %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "fuel"

(* -- prototype parsing ----------------------------------------------------- *)

let test_proto_parse () =
  let p = Atom.Proto.parse "CondBranch(int, VALUE)" in
  Alcotest.(check string) "name" "CondBranch" p.Atom.Proto.p_name;
  Alcotest.(check int) "arity" 2 (List.length p.Atom.Proto.p_params);
  let p2 = Atom.Proto.parse "F(char *name, long n, REGV r, void *p)" in
  Alcotest.(check int) "arity with names" 4 (List.length p2.Atom.Proto.p_params);
  let p3 = Atom.Proto.parse "CloseFile()" in
  Alcotest.(check int) "nullary" 0 (List.length p3.Atom.Proto.p_params);
  let p4 = Atom.Proto.parse "G(void)" in
  Alcotest.(check int) "void arg list" 0 (List.length p4.Atom.Proto.p_params);
  List.iter
    (fun bad ->
      match Atom.Proto.parse bad with
      | _ -> Alcotest.failf "parsed %S" bad
      | exception Atom.Proto.Parse_error _ -> ())
    [ "NoParens"; "(int)"; "F(int"; "F(banana)" ]

(* -- API misuse ------------------------------------------------------------ *)

let test_api_errors () =
  let exe = compile "long main(void) { return 0; }" in
  let expect_error name tool =
    match
      Atom.Instrument.instrument_source ~exe ~tool ~analysis_src:"void X(long a){}" ()
    with
    | _ -> Alcotest.failf "%s: did not error" name
    | exception Atom.Instrument.Error _ -> ()
  in
  expect_error "call without proto" (fun api ->
      let p = Atom.Api.entry_proc api in
      Atom.Api.add_call_proc api p Atom.Api.Before "X" [ Atom.Api.Int 1 ]);
  expect_error "arity mismatch" (fun api ->
      Atom.Api.add_call_proto api "X(int)";
      let p = Atom.Api.entry_proc api in
      Atom.Api.add_call_proc api p Atom.Api.Before "X" []);
  expect_error "BrCondValue on non-branch" (fun api ->
      Atom.Api.add_call_proto api "X(VALUE)";
      let p = Atom.Api.entry_proc api in
      Atom.Api.add_call_proc api p Atom.Api.Before "X" [ Atom.Api.Br_cond_value ]);
  expect_error "REGV where constant expected" (fun api ->
      Atom.Api.add_call_proto api "X(int)";
      let p = Atom.Api.entry_proc api in
      Atom.Api.add_call_proc api p Atom.Api.Before "X" [ Atom.Api.Regv 5 ]);
  expect_error "undefined analysis procedure" (fun api ->
      Atom.Api.add_call_proto api "Nope(int)";
      let p = Atom.Api.entry_proc api in
      Atom.Api.add_call_proc api p Atom.Api.Before "Nope" [ Atom.Api.Int 1 ]);
  expect_error "seven parameters" (fun api ->
      Atom.Api.add_call_proto api "X(int,int,int,int,int,int,int)")

(* -- pristine values -------------------------------------------------------- *)

(* Record $sp and $a0 at every entry to a chosen procedure, both via a
   simulator trace of the uninstrumented program and via ATOM REGV
   instrumentation of the same program; the sequences must be identical. *)
let pristine_app =
  {|
long depths(long n, long acc) {
  if (n == 0) return acc;
  return depths(n - 1, acc + n);
}
long main(void) {
  printf("%d %d %d\n", depths(3, 0), depths(7, 100), depths(1, 5));
  return 0;
}
|}

let test_pristine_regv () =
  let exe = compile pristine_app in
  (* trace the uninstrumented run *)
  let target =
    match Objfile.Exe.find_symbol exe "depths" with
    | Some s -> s.Objfile.Exe.x_addr
    | None -> Alcotest.fail "no symbol depths"
  in
  let m0 = Machine.Sim.load exe in
  let traced = ref [] in
  Machine.Sim.set_trace m0 (fun pc _ ->
      if pc = target then
        traced :=
          (Machine.Sim.reg m0 Alpha.Reg.sp, Machine.Sim.reg m0 16) :: !traced);
  (match Machine.Sim.run m0 with Machine.Sim.Exit 0 -> () | _ -> assert false);
  let traced = List.rev !traced in
  (* the same observations via ATOM *)
  let tool api =
    let open Atom.Api in
    add_call_proto api "Snap(REGV, REGV)";
    add_call_proto api "Done()";
    (match List.find_opt (fun p -> proc_name p = "depths") (procs api) with
    | Some p ->
        add_call_proc api p Before "Snap" [ Regv Alpha.Reg.sp; Regv 16 ]
    | None -> Alcotest.fail "depths not found in IR");
    add_call_program api Program_after "Done" []
  in
  let analysis =
    {|
void *f;
void Snap(long sp, long a0) {
  if (!f) f = fopen("snap.out", "w");
  fprintf(f, "%x %d\n", sp, a0);
}
void Done(void) { if (f) fclose(f); }
|}
  in
  let exe', _ = Atom.Instrument.instrument_source ~exe ~tool ~analysis_src:analysis () in
  let m1 = run exe' in
  let got =
    match List.assoc_opt "snap.out" (Machine.Sim.output_files m1) with
    | Some s ->
        String.split_on_char '\n' (String.trim s)
        |> List.map (fun line ->
               match String.split_on_char ' ' line with
               | [ sp; a0 ] -> (Int64.of_string ("0x" ^ sp), Int64.of_string a0)
               | _ -> Alcotest.failf "bad snap line %S" line)
    | None -> Alcotest.fail "no snap.out"
  in
  Alcotest.(check int) "same number of entries" (List.length traced) (List.length got);
  List.iter2
    (fun (sp0, a0) (sp1, a1) ->
      Alcotest.(check int64) "sp pristine" sp0 sp1;
      Alcotest.(check int64) "a0 pristine" a0 a1)
    traced got

(* EffAddrValue: total memory references seen by the cache tool's analysis
   must match the simulator's load+store counters for the uninstrumented
   program (up to references made after the report hook fires). *)
let test_effaddr_totals () =
  let exe = compile pristine_app in
  let m0 = run exe in
  let st = Machine.Sim.stats m0 in
  let expected = st.Machine.Sim.st_loads + st.Machine.Sim.st_stores in
  let cache = Option.get (Tools.Registry.find "cache") in
  let exe', _ = Tools.Tool.apply cache exe in
  let m1 = run exe' in
  match List.assoc_opt "cache.out" (Machine.Sim.output_files m1) with
  | None -> Alcotest.fail "no cache.out"
  | Some contents ->
      let refs =
        String.split_on_char '\n' contents
        |> List.find_map (fun l ->
               match String.split_on_char ':' l with
               | [ "references"; v ] -> int_of_string_opt (String.trim v)
               | _ -> None)
      in
      let refs = Option.get refs in
      if refs > expected || expected - refs > 100 then
        Alcotest.failf "references %d vs simulator %d" refs expected

(* -- BrCondValue exactness -------------------------------------------------- *)

let test_brcond_exact () =
  let exe = compile pristine_app in
  let m0 = run exe in
  let st = Machine.Sim.stats m0 in
  let branch = Option.get (Tools.Registry.find "branch") in
  let exe', _ = Tools.Tool.apply branch exe in
  let m1 = run exe' in
  match List.assoc_opt "branch.out" (Machine.Sim.output_files m1) with
  | None -> Alcotest.fail "no branch.out"
  | Some contents ->
      let field prefix =
        String.split_on_char '\n' contents
        |> List.find_map (fun l ->
               if String.length l > String.length prefix
                  && String.sub l 0 (String.length prefix) = prefix
               then
                 int_of_string_opt
                   (String.trim
                      (String.sub l (String.length prefix)
                         (String.length l - String.length prefix)))
               else None)
      in
      let total = Option.get (field "conditional branches executed:") in
      let taken = Option.get (field "taken:") in
      (* tolerances: the branches in exit() after the report *)
      let within a b = a <= b && b - a <= 100 in
      if not (within total st.Machine.Sim.st_cond_branches) then
        Alcotest.failf "total %d vs %d" total st.Machine.Sim.st_cond_branches;
      if not (within taken st.Machine.Sim.st_taken) then
        Alcotest.failf "taken %d vs %d" taken st.Machine.Sim.st_taken

(* -- option matrix ----------------------------------------------------------- *)

let test_option_matrix () =
  let w = Option.get (Workloads.find "cover") in
  let exe = Workloads.compile w in
  let base = run exe in
  let tool = Option.get (Tools.Registry.find "branch") in
  List.iter
    (fun (label, options) ->
      let exe', _ = Tools.Tool.apply ~options tool exe in
      let m = run exe' in
      Alcotest.(check string)
        (label ^ ": output unchanged")
        (Machine.Sim.stdout base) (Machine.Sim.stdout m))
    [
      ("summary+wrapper", Atom.Instrument.default_options);
      ( "live+wrapper",
        { Atom.Instrument.default_options with
          Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live } );
      ( "live+inline",
        { Atom.Instrument.default_options with
          Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live;
          call_style = Atom.Instrument.Inline_saves } );
      ( "saveall+wrapper",
        { Atom.Instrument.default_options with
          Atom.Instrument.save_strategy = Atom.Instrument.Save_all } );
      ( "summary+inline",
        { Atom.Instrument.default_options with
          Atom.Instrument.call_style = Atom.Instrument.Inline_saves } );
      ( "live+spliced",
        { Atom.Instrument.default_options with
          Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live;
          call_style = Atom.Instrument.Inline_body } );
      ( "saveall+inline+partitioned",
        {
          Atom.Instrument.save_strategy = Atom.Instrument.Save_all;
          call_style = Atom.Instrument.Inline_saves;
          heap_mode = Atom.Instrument.Partitioned (1 lsl 23);
        } );
    ]

(* str arguments are interned and NUL-terminated *)
let test_str_args () =
  let exe = compile "long main(void) { return 0; }" in
  let tool api =
    let open Atom.Api in
    add_call_proto api "Tag(char *, char *)";
    add_call_proto api "Done()";
    add_call_program api Program_before "Tag" [ Str "alpha"; Str "beta" ];
    add_call_program api Program_before "Tag" [ Str "alpha"; Str "alpha" ];
    add_call_program api Program_after "Done" []
  in
  let analysis =
    {|
void *f;
void Tag(char *a, char *b) {
  if (!f) f = fopen("tags.out", "w");
  fprintf(f, "%s/%s/%d\n", a, b, a == b);
}
void Done(void) { fclose(f); }
|}
  in
  let exe', _ = Atom.Instrument.instrument_source ~exe ~tool ~analysis_src:analysis () in
  let m = run exe' in
  Alcotest.(check (option string)) "tags"
    (Some "alpha/beta/0\nalpha/alpha/1\n")
    (List.assoc_opt "tags.out" (Machine.Sim.output_files m))

(* -- edge instrumentation (our implementation of the paper's deferred
      "calls on edges") ------------------------------------------------- *)

let test_edges () =
  let exe =
    compile
      {|
long main(void) {
  long i, odd = 0, even = 0;
  for (i = 0; i < 100; i++) {
    if (i & 1) odd++;
    else even++;
  }
  printf("%d %d
", odd, even);
  return 0;
}
|}
  in
  let base = run exe in
  (* count taken and fall-through executions of every conditional branch
     via edges, and the same totals via BrCondValue; they must agree *)
  let tool api =
    let open Atom.Api in
    add_call_proto api "Edge(int)";
    add_call_proto api "Cond(VALUE)";
    add_call_proto api "Done()";
    List.iter
      (fun p ->
        List.iter
          (fun b ->
            let last = get_last_inst b in
            if is_inst_type last Inst_cond_branch then begin
              add_call_edge api b Taken "Edge" [ Int 0 ];
              add_call_edge api b Fallthrough "Edge" [ Int 1 ];
              add_call_inst api last Before "Cond" [ Br_cond_value ]
            end)
          (blocks p))
      (procs api);
    add_call_program api Program_after "Done" []
  in
  let analysis =
    {|
long __edges[2];
long __cond[2];
void Edge(long which) { __edges[which]++; }
void Cond(long taken) { if (taken) __cond[0]++; else __cond[1]++; }
void Done(void) {
  void *f = fopen("edges.out", "w");
  fprintf(f, "%d %d %d %d
", __edges[0], __edges[1], __cond[0], __cond[1]);
  fclose(f);
}
|}
  in
  let exe', _ = Atom.Instrument.instrument_source ~exe ~tool ~analysis_src:analysis () in
  let m = run exe' in
  Alcotest.(check string) "output unchanged" (Machine.Sim.stdout base)
    (Machine.Sim.stdout m);
  match List.assoc_opt "edges.out" (Machine.Sim.output_files m) with
  | None -> Alcotest.fail "no edges.out"
  | Some s -> (
      match String.split_on_char ' ' (String.trim s) with
      | [ t; f; ct; cf ] ->
          Alcotest.(check string) "taken edges = taken conditions" ct t;
          Alcotest.(check string) "fall-through edges = untaken conditions" cf f;
          Alcotest.(check bool) "both edges executed" true
            (int_of_string t > 40 && int_of_string f > 40)
      | _ -> Alcotest.failf "bad edges.out %S" s)

let test_edge_errors () =
  let exe = compile "long main(void) { return 0; }" in
  match
    Atom.Instrument.instrument_source ~exe
      ~tool:(fun api ->
        let open Atom.Api in
        add_call_proto api "E()";
        (* the entry block of __start ends in a bsr: no taken edge *)
        let b = Option.get (get_first_block (entry_proc api)) in
        add_call_edge api b Taken "E" [])
      ~analysis_src:"void E(void) {}" ()
  with
  | _ -> Alcotest.fail "taken edge on a call should be rejected"
  | exception Atom.Instrument.Error _ -> ()

(* the live-register optimization must never change behaviour: run every
   tool over a workload under Summary_and_live + Inline_saves *)
let test_liveness_all_tools () =
  let w = Option.get (Workloads.find "lisp") in
  let exe = Workloads.compile w in
  let base = run exe in
  List.iter
    (fun (style, slabel) ->
      let options =
        {
          Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live;
          call_style = style;
          heap_mode = Atom.Instrument.Linked;
        }
      in
      List.iter
        (fun tool ->
          let exe', _ = Tools.Tool.apply ~options tool exe in
          let m = run exe' in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s output unchanged" tool.Tools.Tool.name slabel)
            (Machine.Sim.stdout base) (Machine.Sim.stdout m))
        Tools.Registry.all)
    [ (Atom.Instrument.Inline_saves, "inline-saves");
      (Atom.Instrument.Inline_body, "spliced") ]

(* liveness should reduce the instrumented program's work *)
let test_liveness_reduces_overhead () =
  let w = Option.get (Workloads.find "sieve") in
  let exe = Workloads.compile w in
  let tool = Option.get (Tools.Registry.find "cache") in
  let insns options =
    let exe', _ = Tools.Tool.apply ~options tool exe in
    (Machine.Sim.stats (run exe')).Machine.Sim.st_insns
  in
  let base = insns Atom.Instrument.default_options in
  let live =
    insns
      { Atom.Instrument.default_options with
        Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live }
  in
  if live >= base then
    Alcotest.failf "liveness did not help: %d vs %d" live base

let () =
  Alcotest.run "atom2"
    [
      ("proto", [ Alcotest.test_case "parsing" `Quick test_proto_parse ]);
      ("api", [ Alcotest.test_case "misuse errors" `Quick test_api_errors ]);
      ( "pristine",
        [
          Alcotest.test_case "REGV sp/a0 vs trace" `Quick test_pristine_regv;
          Alcotest.test_case "EffAddrValue totals" `Quick test_effaddr_totals;
          Alcotest.test_case "BrCondValue totals" `Quick test_brcond_exact;
        ] );
      ( "options",
        [
          Alcotest.test_case "matrix preserves behaviour" `Quick test_option_matrix;
          Alcotest.test_case "interned strings" `Quick test_str_args;
        ] );
      ( "edges",
        [
          Alcotest.test_case "edge counts agree with conditions" `Quick test_edges;
          Alcotest.test_case "invalid edges rejected" `Quick test_edge_errors;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "all tools behave" `Quick test_liveness_all_tools;
          Alcotest.test_case "overhead reduced" `Quick test_liveness_reduces_overhead;
        ] );
    ]
