(* Property tests for the pure-OCaml exact ILP stack: bignum arithmetic
   cross-checked against native ints, rationals, and the simplex +
   branch-and-bound solver cross-checked against brute-force enumeration
   on small bounded integer programs.  Infeasible and unbounded systems
   must be reported structurally, never via exception escape. *)

module B = Ilp.Bigint
module Q = Ilp.Q
module S = Ilp.Solver

(* -- bignum ------------------------------------------------------------- *)

let gen_small = QCheck.Gen.int_range (-1_000_000) 1_000_000

(* products of these stay within int63, so OCaml arithmetic is an oracle *)
let gen_word = QCheck.Gen.int_range (-1_073_741_823) 1_073_741_823

let prop_add_sub_mul =
  QCheck.Test.make ~name:"bigint ring ops agree with native ints" ~count:1000
    QCheck.(pair (make gen_word) (make gen_word))
    (fun (a, b) ->
      let ba = B.of_int a and bb = B.of_int b in
      B.to_int_opt (B.add ba bb) = Some (a + b)
      && B.to_int_opt (B.sub ba bb) = Some (a - b)
      && B.to_int_opt (B.mul ba bb) = Some (a * b)
      && B.compare ba bb = compare a b)

let prop_divmod =
  QCheck.Test.make ~name:"bigint divmod is truncated division" ~count:1000
    QCheck.(pair (make gen_word) (make gen_word))
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int_opt q = Some (a / b) && B.to_int_opt r = Some (a mod b))

(* beyond-63-bit values: check the division identity a = q*b + r with
   |r| < |b| and sign(r) = sign(a), using only bignum arithmetic *)
let prop_divmod_big =
  QCheck.Test.make ~name:"bigint divmod identity beyond 63 bits" ~count:500
    QCheck.(quad (make gen_word) (make gen_word) (make gen_word) (make gen_word))
    (fun (a1, a2, b1, b2) ->
      QCheck.assume ((b1 <> 0 || b2 <> 0) && b2 <> 0);
      (* a = a1 * a2 * a2 + a1; b = b1 * b2 + b2: both need > 63 bits *)
      let big x y z =
        B.add (B.mul (B.of_int x) (B.mul (B.of_int y) (B.of_int z))) (B.of_int x)
      in
      let a = big a1 a2 a2 and b = B.add (B.mul (B.of_int b1) (B.of_int b2)) (B.of_int b2) in
      QCheck.assume (B.compare b B.zero <> 0);
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.equal r B.zero || B.compare r B.zero = B.compare a B.zero))

let prop_to_string =
  QCheck.Test.make ~name:"bigint printing agrees with native ints" ~count:500
    (QCheck.make gen_word)
    (fun a -> B.to_string (B.of_int a) = string_of_int a)

let prop_gcd =
  QCheck.Test.make ~name:"gcd divides both and is positive" ~count:500
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) ->
      QCheck.assume (a <> 0 || b <> 0);
      let g = B.gcd (B.of_int a) (B.of_int b) in
      let divides x =
        let _, r = B.divmod (B.of_int x) g in
        B.equal r B.zero
      in
      B.compare g B.zero > 0 && divides a && divides b)

(* -- rationals ---------------------------------------------------------- *)

let gen_q =
  QCheck.Gen.(
    map2
      (fun n d -> Q.of_ints n (if d = 0 then 1 else d))
      (int_range (-1000) 1000)
      (int_range (-50) 50))

let prop_q_field =
  QCheck.Test.make ~name:"rational field identities" ~count:1000
    QCheck.(pair (make gen_q) (make gen_q))
    (fun (a, b) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.sub (Q.add a b) b) a
      && Q.equal (Q.mul a b) (Q.mul b a)
      && (Q.is_zero b || Q.equal (Q.mul (Q.div a b) b) a))

let prop_q_floor_ceil =
  QCheck.Test.make ~name:"floor/ceil bracket the rational" ~count:1000
    (QCheck.make gen_q)
    (fun a ->
      let f = Q.floor a and c = Q.ceil a in
      let qf = { Q.num = f; den = B.one } and qc = { Q.num = c; den = B.one } in
      Q.compare qf a <= 0
      && Q.compare a qc <= 0
      && B.compare (B.sub c f) (B.of_int 1) <= 0
      && (Q.is_integer a = Q.equal qf a))

(* -- solver vs brute force ---------------------------------------------- *)

(* Random bounded ILPs: n <= 6 vars each with domain [0, dom], random
   small-coefficient Le/Ge/Eq rows (plus the domain rows), random
   objective.  Brute force enumerates every integer point. *)

type ilp_case = {
  n : int;
  dom : int;
  obj : int array;
  rows : (int array * S.relation * int) list;
}

let gen_case =
  QCheck.Gen.(
    int_range 1 6 >>= fun n ->
    int_range 1 6 >>= fun dom ->
    array_size (return n) (int_range (-5) 5) >>= fun obj ->
    int_range 0 4 >>= fun nrows ->
    list_size (return nrows)
      (pair
         (array_size (return n) (int_range (-3) 3))
         (pair (oneofl [ S.Le; S.Ge; S.Eq ]) (int_range (-6) 18)))
    >|= fun rows ->
    { n; dom; obj; rows = List.map (fun (c, (r, b)) -> (c, r, b)) rows })

let print_case c =
  let row (cs, r, b) =
    Printf.sprintf "[%s] %s %d"
      (String.concat ";" (Array.to_list (Array.map string_of_int cs)))
      (match r with S.Le -> "<=" | S.Ge -> ">=" | S.Eq -> "=")
      b
  in
  Printf.sprintf "n=%d dom=%d obj=[%s] rows=%s" c.n c.dom
    (String.concat ";" (Array.to_list (Array.map string_of_int c.obj)))
    (String.concat " " (List.map row c.rows))

let to_problem c =
  let dom_rows =
    List.init c.n (fun v ->
        { S.coeffs = [ (v, Q.one) ]; rel = S.Le; rhs = Q.of_int c.dom })
  in
  let rows =
    List.map
      (fun (cs, rel, b) ->
        let coeffs = ref [] in
        Array.iteri
          (fun v k -> if k <> 0 then coeffs := (v, Q.of_int k) :: !coeffs)
          cs;
        { S.coeffs = !coeffs; rel; rhs = Q.of_int b })
      c.rows
  in
  {
    S.nvars = c.n;
    objective = Array.map Q.of_int c.obj;
    constraints = dom_rows @ rows;
  }

let feasible c (x : int array) =
  List.for_all
    (fun (cs, rel, b) ->
      let s = ref 0 in
      Array.iteri (fun v k -> s := !s + (k * x.(v))) cs;
      match rel with S.Le -> !s <= b | S.Ge -> !s >= b | S.Eq -> !s = b)
    c.rows

let brute_force c =
  let best = ref None in
  let x = Array.make c.n 0 in
  let rec go v =
    if v = c.n then begin
      if feasible c x then begin
        let s = ref 0 in
        Array.iteri (fun i k -> s := !s + (k * x.(i))) c.obj;
        match !best with
        | Some b when b >= !s -> ()
        | _ -> best := Some !s
      end
    end
    else
      for d = 0 to c.dom do
        x.(v) <- d;
        go (v + 1)
      done
  in
  go 0;
  !best

let int_of_q v =
  match B.to_int_opt (Q.floor v) with Some i -> i | None -> QCheck.assume_fail ()

let prop_solver_matches_brute_force =
  QCheck.Test.make ~name:"ilp optimum matches brute force" ~count:400
    (QCheck.make ~print:print_case gen_case)
    (fun c ->
      let expect = brute_force c in
      match (S.ilp (to_problem c), expect) with
      | S.Ilp_optimal { value; solution }, Some best ->
          (* solution must be feasible, integral, and achieve the value *)
          Array.for_all Q.is_integer solution
          && Q.equal value { Q.num = Q.floor value; den = B.one }
          && int_of_q value = best
          &&
          let x = Array.map int_of_q solution in
          feasible c x
          && Array.for_all (fun v -> v >= 0 && v <= c.dom) x
          &&
          let s = ref 0 in
          Array.iteri (fun i k -> s := !s + (k * x.(i))) c.obj;
          !s = best
      | S.Ilp_infeasible, None -> true
      | S.Ilp_truncated _, _ -> true (* budget exhaustion is allowed *)
      | S.Ilp_optimal _, None | S.Ilp_infeasible, Some _ | S.Ilp_unbounded, _
        ->
          false)

(* every domain is bounded above, so the relaxation can never be
   unbounded; and with no rows besides the domains the optimum is
   closed-form *)
let prop_box_closed_form =
  QCheck.Test.make ~name:"box-constrained optimum is closed form" ~count:300
    QCheck.(pair (make (QCheck.Gen.int_range 1 6)) (make (QCheck.Gen.int_range 0 8)))
    (fun (n, dom) ->
      let obj = Array.init n (fun i -> (i mod 5) - 2) in
      let c = { n; dom; obj; rows = [] } in
      match S.ilp (to_problem c) with
      | S.Ilp_optimal { value; _ } ->
          let expect =
            Array.fold_left (fun s k -> if k > 0 then s + (k * dom) else s) 0 obj
          in
          int_of_q value = expect
      | _ -> false)

(* -- structural infeasible / unbounded ---------------------------------- *)

let test_infeasible () =
  (* x <= 1 and x >= 2 *)
  let p =
    {
      S.nvars = 1;
      objective = [| Q.one |];
      constraints =
        [
          { S.coeffs = [ (0, Q.one) ]; rel = S.Le; rhs = Q.of_int 1 };
          { S.coeffs = [ (0, Q.one) ]; rel = S.Ge; rhs = Q.of_int 2 };
        ];
    }
  in
  (match S.lp p with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "lp should be infeasible");
  match S.ilp p with
  | S.Ilp_infeasible -> ()
  | _ -> Alcotest.fail "ilp should be infeasible"

let test_unbounded () =
  (* maximize x + y subject to x - y <= 3: rays upward *)
  let p =
    {
      S.nvars = 2;
      objective = [| Q.one; Q.one |];
      constraints =
        [
          {
            S.coeffs = [ (0, Q.one); (1, Q.neg Q.one) ];
            rel = S.Le;
            rhs = Q.of_int 3;
          };
        ];
    }
  in
  (match S.lp p with
  | S.Unbounded -> ()
  | _ -> Alcotest.fail "lp should be unbounded");
  match S.ilp p with
  | S.Ilp_unbounded -> ()
  | _ -> Alcotest.fail "ilp should be unbounded"

let test_fractional_lp_integral_ilp () =
  (* maximize x subject to 2x <= 3: LP gives 3/2, ILP must give 1 *)
  let p =
    {
      S.nvars = 1;
      objective = [| Q.one |];
      constraints =
        [ { S.coeffs = [ (0, Q.of_int 2) ]; rel = S.Le; rhs = Q.of_int 3 } ];
    }
  in
  (match S.lp p with
  | S.Optimal { value; _ } ->
      Alcotest.(check bool) "lp gives 3/2" true (Q.equal value (Q.of_ints 3 2))
  | _ -> Alcotest.fail "lp should be optimal");
  match S.ilp p with
  | S.Ilp_optimal { value; _ } ->
      Alcotest.(check bool) "ilp gives 1" true (Q.equal value Q.one)
  | _ -> Alcotest.fail "ilp should be optimal"

let test_equality_system () =
  (* x + y = 5, x - y = 1 -> x = 3, y = 2; objective 2x + y = 8 *)
  let p =
    {
      S.nvars = 2;
      objective = [| Q.of_int 2; Q.one |];
      constraints =
        [
          {
            S.coeffs = [ (0, Q.one); (1, Q.one) ];
            rel = S.Eq;
            rhs = Q.of_int 5;
          };
          {
            S.coeffs = [ (0, Q.one); (1, Q.neg Q.one) ];
            rel = S.Eq;
            rhs = Q.of_int 1;
          };
        ];
    }
  in
  match S.ilp p with
  | S.Ilp_optimal { value; solution } ->
      Alcotest.(check bool) "value 8" true (Q.equal value (Q.of_int 8));
      Alcotest.(check bool) "x=3" true (Q.equal solution.(0) (Q.of_int 3));
      Alcotest.(check bool) "y=2" true (Q.equal solution.(1) (Q.of_int 2))
  | _ -> Alcotest.fail "ilp should be optimal"

let test_truncation_reports_root_bound () =
  (* a system needing branching, solved with a 1-node budget: must come
     back truncated with the root relaxation as upper bound, not raise *)
  let p =
    {
      S.nvars = 2;
      objective = [| Q.of_int 3; Q.of_int 2 |];
      constraints =
        [
          {
            S.coeffs = [ (0, Q.of_int 2); (1, Q.of_int 3) ];
            rel = S.Le;
            rhs = Q.of_int 7;
          };
          { S.coeffs = [ (0, Q.one) ]; rel = S.Le; rhs = Q.of_ints 5 2 };
        ];
    }
  in
  match S.ilp ~max_nodes:1 p with
  | S.Ilp_truncated { upper; _ } -> (
      match S.ilp p with
      | S.Ilp_optimal { value; _ } ->
          Alcotest.(check bool) "root bound dominates optimum" true
            (Q.compare upper value >= 0)
      | _ -> Alcotest.fail "full solve should be optimal")
  | S.Ilp_optimal _ ->
      (* fine if the root LP happened to be integral *)
      ()
  | _ -> Alcotest.fail "budgeted solve should truncate or solve"

let () =
  Alcotest.run "ilp"
    [
      ( "bigint",
        List.map QCheck_alcotest.to_alcotest
          [ prop_add_sub_mul; prop_divmod; prop_divmod_big; prop_to_string; prop_gcd ]
      );
      ( "rational",
        List.map QCheck_alcotest.to_alcotest [ prop_q_field; prop_q_floor_ceil ] );
      ( "solver",
        List.map QCheck_alcotest.to_alcotest
          [ prop_solver_matches_brute_force; prop_box_closed_form ] );
      ( "structure",
        [
          Alcotest.test_case "infeasible is structural" `Quick test_infeasible;
          Alcotest.test_case "unbounded is structural" `Quick test_unbounded;
          Alcotest.test_case "fractional LP, integral ILP" `Quick
            test_fractional_lp_integral_ilp;
          Alcotest.test_case "equality system" `Quick test_equality_system;
          Alcotest.test_case "truncation reports root bound" `Quick
            test_truncation_reports_root_bound;
        ] );
    ]
