(* OM: IR construction invariants, dataflow summaries, and codegen —
   including the crucial identity: regenerating a program with no
   instrumentation must reproduce its text byte for byte. *)

let sample_exe =
  lazy
    (Rtlib.compile_and_link ~name:"om_sample.o"
       {|
long helper(long x) { return x * 3 + 1; }
long main(void) {
  long i, acc = 0;
  for (i = 0; i < 50; i++) {
    if (i & 1) acc += helper(i);
    else acc -= i;
  }
  printf("acc=%d\n", acc);
  return 0;
}
|})

let program () = Om.Build.program (Lazy.force sample_exe)

let test_procs_cover_text () =
  let exe = Lazy.force sample_exe in
  let prog = program () in
  let cursor = ref exe.Objfile.Exe.x_text_start in
  Array.iter
    (fun p ->
      Alcotest.(check int) (p.Om.Ir.p_name ^ " starts at cursor") !cursor p.Om.Ir.p_addr;
      cursor := !cursor + p.Om.Ir.p_size)
    prog.Om.Ir.procs;
  Alcotest.(check int) "procs cover all text"
    (exe.Objfile.Exe.x_text_start + exe.Objfile.Exe.x_text_size)
    !cursor

let test_blocks_partition_procs () =
  let prog = program () in
  Array.iter
    (fun p ->
      let cursor = ref p.Om.Ir.p_addr in
      Array.iter
        (fun b ->
          Alcotest.(check int) "block starts at cursor" !cursor b.Om.Ir.b_addr;
          Alcotest.(check bool) "block non-empty" true (Array.length b.Om.Ir.b_insts > 0);
          (* only the last instruction may be a terminator *)
          Array.iteri
            (fun i inst ->
              if i < Array.length b.Om.Ir.b_insts - 1 then
                Alcotest.(check bool) "no terminator mid-block" false
                  (Alpha.Insn.is_terminator inst.Om.Ir.i_insn))
            b.Om.Ir.b_insts;
          cursor := !cursor + (4 * Array.length b.Om.Ir.b_insts))
        p.Om.Ir.p_blocks;
      Alcotest.(check int) (p.Om.Ir.p_name ^ " blocks cover proc")
        (p.Om.Ir.p_addr + p.Om.Ir.p_size)
        !cursor)
    prog.Om.Ir.procs

let test_succs_are_leaders () =
  let prog = program () in
  Array.iter
    (fun p ->
      let leaders =
        Array.to_list p.Om.Ir.p_blocks |> List.map (fun b -> b.Om.Ir.b_addr)
      in
      Array.iter
        (fun b ->
          List.iter
            (fun s ->
              Alcotest.(check bool)
                (Printf.sprintf "succ %#x of block %#x is a leader" s b.Om.Ir.b_addr)
                true (List.mem s leaders))
            b.Om.Ir.b_succs)
        p.Om.Ir.p_blocks)
    prog.Om.Ir.procs

let test_find_procs () =
  let prog = program () in
  Alcotest.(check bool) "main found" true (Om.Ir.find_proc prog "main" <> None);
  Alcotest.(check bool) "helper found" true (Om.Ir.find_proc prog "helper" <> None);
  match Om.Ir.find_proc prog "main" with
  | Some p ->
      Alcotest.(check bool) "proc_at inside main" true
        (Om.Ir.proc_at prog (p.Om.Ir.p_addr + 8) == Some p
        ||
        match Om.Ir.proc_at prog (p.Om.Ir.p_addr + 8) with
        | Some q -> q.Om.Ir.p_name = "main"
        | None -> false)
  | None -> assert false

let test_dataflow () =
  let prog = program () in
  let df = Om.Dataflow.compute prog in
  (* a leaf procedure's summary is its own defs; it must include the
     temporaries the compiler uses but never callee-saves *)
  let helper = Om.Dataflow.modified_by df "helper" in
  Alcotest.(check bool) "helper clobbers t0" true (Alpha.Regset.mem 1 helper);
  Alcotest.(check bool) "helper preserves s0" false (Alpha.Regset.mem 9 helper);
  Alcotest.(check bool) "no sp in any summary" false (Alpha.Regset.mem Alpha.Reg.sp helper);
  (* main calls printf (which makes system calls) -> bigger summary *)
  let main = Om.Dataflow.modified_by df "main" in
  Alcotest.(check bool) "helper summary within main's" true
    (Alpha.Regset.subset helper main);
  (* unknown procedures are treated as clobber-everything *)
  Alcotest.(check bool) "unknown = all caller saves" true
    (Alpha.Regset.equal (Om.Dataflow.modified_by df "nosuch") Om.Dataflow.all_caller_saves)

(* -- modified_by soundness ------------------------------------------------- *)

(* [Dataflow.modified_by] drives the specialized call stubs: a register
   the summary excludes gets no save slot, so an under-approximation
   would corrupt live state.  Check it dynamically: trace one run,
   snapshot the register file at every call to a known procedure, diff
   it at the matching return, and require every observed caller-save
   modification to lie inside the procedure's summary.  $ra is excluded
   — the call instruction itself writes it before the callee runs. *)
let observed_modifications exe =
  let prog = Om.Build.program exe in
  let entries = Hashtbl.create 64 in
  Array.iter
    (fun p -> Hashtbl.replace entries p.Om.Ir.p_addr p.Om.Ir.p_name)
    prog.Om.Ir.procs;
  let m = Machine.Sim.load ~engine:Machine.Sim.Ref exe in
  let observed = Hashtbl.create 64 in
  let stack = ref [] in
  let snap () =
    ( Array.init 31 (fun r -> Machine.Sim.reg m r),
      Array.init 31 (fun r -> Machine.Sim.freg_bits m r) )
  in
  Machine.Sim.set_trace m (fun pc insn ->
      (match !stack with
      | (name, ret_pc, (regs, fregs)) :: rest when pc = ret_pc ->
          stack := rest;
          let changed = ref Alpha.Regset.empty in
          for r = 0 to 30 do
            if r <> Alpha.Reg.ra && Machine.Sim.reg m r <> regs.(r) then
              changed := Alpha.Regset.add r !changed;
            if Machine.Sim.freg_bits m r <> fregs.(r) then
              changed := Alpha.Regset.add_f r !changed
          done;
          let cur =
            match Hashtbl.find_opt observed name with
            | Some s -> s
            | None -> Alpha.Regset.empty
          in
          Hashtbl.replace observed name (Alpha.Regset.union cur !changed)
      | _ -> ());
      let target =
        match insn with
        | Alpha.Insn.Br { link = true; disp; _ } -> Some (pc + 4 + (4 * disp))
        | Alpha.Insn.Jump { kind = Alpha.Insn.Jsr; rb; _ } ->
            Some (Int64.to_int (Machine.Sim.reg m rb) land lnot 3)
        | _ -> None
      in
      match target with
      | Some tgt -> (
          match Hashtbl.find_opt entries tgt with
          | Some name -> stack := (name, pc + 4, snap ()) :: !stack
          | None -> ())
      | None -> ());
  ignore (Machine.Sim.run ~max_insns:50_000_000 m);
  (prog, observed)

let check_modified_by what exe =
  let prog, observed = observed_modifications exe in
  let df = Om.Dataflow.compute prog in
  Hashtbl.iter
    (fun name changed ->
      let caller_save_changes =
        Alpha.Regset.inter changed Om.Dataflow.all_caller_saves
      in
      let summary = Om.Dataflow.modified_by df name in
      if not (Alpha.Regset.subset caller_save_changes summary) then
        Alcotest.failf
          "%s: %s observed modifying %s outside its summary %s" what name
          (Format.asprintf "%a" Alpha.Regset.pp
             (Alpha.Regset.diff caller_save_changes summary))
          (Format.asprintf "%a" Alpha.Regset.pp summary))
    observed;
  Alcotest.(check bool)
    (what ^ ": at least one call observed")
    true
    (Hashtbl.length observed > 0)

let test_modified_by_workloads () =
  List.iter
    (fun w -> check_modified_by w.Workloads.w_name (Workloads.compile w))
    (List.filter
       (fun w -> List.mem w.Workloads.w_name [ "compress"; "sieve"; "qsort" ])
       Workloads.all)

let prop_modified_by =
  QCheck.Test.make ~count:10
    ~name:"modified_by over-approximates observed modification (progen)"
    QCheck.small_nat
    (fun seed ->
      List.iter
        (fun w -> check_modified_by w.Workloads.w_name (Workloads.compile w))
        (Workloads.generated ~seed:(7000 + seed) ~count:1 ());
      true)

let test_codegen_identity () =
  let exe = Lazy.force sample_exe in
  let prog = program () in
  let r = Om.Codegen.generate prog in
  Alcotest.(check bool) "text reproduced byte for byte" true
    (Bytes.equal r.Om.Codegen.r_text (Objfile.Exe.text_bytes exe));
  Alcotest.(check int) "identity map start" exe.Objfile.Exe.x_text_start
    (r.Om.Codegen.r_map exe.Objfile.Exe.x_text_start)

let run exe =
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:50_000_000 m with
  | Machine.Sim.Exit 0 -> m
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d" n
  | Machine.Sim.Fault f -> Alcotest.failf "fault %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "fuel"

let test_nop_padding () =
  (* inserting a nop before and after every instruction must leave the
     program's behaviour intact while tripling instruction counts *)
  let exe = Lazy.force sample_exe in
  let base = run exe in
  let prog = program () in
  let nop_stub = Om.Ir.stub_of_insns [ Alpha.Insn.nop ] in
  Om.Ir.iter_insts prog (fun _ _ i ->
      Om.Ir.add_before i nop_stub;
      if Alpha.Insn.falls_through i.Om.Ir.i_insn then Om.Ir.add_after i nop_stub);
  let r = Om.Codegen.generate prog in
  let exe' =
    {
      exe with
      Objfile.Exe.x_entry = r.Om.Codegen.r_map exe.Objfile.Exe.x_entry;
      x_segs =
        List.map
          (fun seg ->
            if seg.Objfile.Exe.seg_vaddr = exe.Objfile.Exe.x_text_start then
              { seg with Objfile.Exe.seg_bytes = r.Om.Codegen.r_text }
            else seg)
          exe.Objfile.Exe.x_segs;
      x_text_size = Bytes.length r.Om.Codegen.r_text;
    }
  in
  let m = run exe' in
  Alcotest.(check string) "output identical" (Machine.Sim.stdout base)
    (Machine.Sim.stdout m);
  let i0 = (Machine.Sim.stats base).Machine.Sim.st_insns in
  let i1 = (Machine.Sim.stats m).Machine.Sim.st_insns in
  Alcotest.(check bool)
    (Printf.sprintf "instruction count grows (%d -> %d)" i0 i1)
    true
    (i1 > 2 * i0 && i1 <= 3 * i0 + 10)

let test_sizeof_matches_generate () =
  let prog = program () in
  let stub = Om.Ir.stub_of_insns [ Alpha.Insn.nop; Alpha.Insn.nop ] in
  Om.Ir.iter_insts prog (fun _ _ i ->
      if i.Om.Ir.i_pc land 8 = 0 then Om.Ir.add_before i stub);
  let size = Om.Codegen.sizeof prog in
  let r = Om.Codegen.generate prog in
  Alcotest.(check int) "sizeof = generated bytes" size (Bytes.length r.Om.Codegen.r_text)

(* -- liveness -------------------------------------------------------------- *)

let test_liveness_basic () =
  ignore (Lazy.force sample_exe);
  let prog = program () in
  let tbl = Om.Liveness.compute prog in
  (* at the entry of `helper', its argument register must be live and a
     random callee-save the compiler never touches must be live only if
     used below; $a1 is not a parameter of helper -> dead *)
  (match Om.Ir.find_proc prog "helper" with
  | Some p ->
      let live = Om.Liveness.live_before tbl p.Om.Ir.p_addr in
      Alcotest.(check bool) "a0 live at helper entry" true (Alpha.Regset.mem 16 live);
      Alcotest.(check bool) "ra live at helper entry (leaf returns through it)" true
        (Alpha.Regset.mem Alpha.Reg.ra live);
      (* some scratch register must be provably dead; $at and the high
         temporaries are only ever defined-before-use *)
      Alcotest.(check bool) "a scratch register is dead at helper entry" true
        (List.exists (fun r -> not (Alpha.Regset.mem r live)) [ 22; 23; 24; 25; 28 ])
  | None -> Alcotest.fail "no helper");
  (* unknown addresses are fully conservative *)
  Alcotest.(check bool) "unknown pc -> all live" true
    (Alpha.Regset.equal (Om.Liveness.live_before tbl 4) Om.Liveness.all_regs)

(* the hand-written divide helper returns its remainder in $3 outside the
   calling standard; interprocedural return-liveness must see it *)
let test_liveness_divqu_remainder () =
  let exe =
    Rtlib.compile_and_link ~name:"divlive.o"
      {| long main(void) { printf("%d %d
", 97 / 7, 97 % 7); return 0; } |}
  in
  let prog = Om.Build.program exe in
  let tbl = Om.Liveness.compute prog in
  match Om.Ir.find_proc prog "__divqu" with
  | None -> Alcotest.fail "no __divqu"
  | Some p ->
      (* find its ret and check $3 is live right before it *)
      let found = ref false in
      Array.iter
        (fun b ->
          Array.iter
            (fun i ->
              if Alpha.Insn.is_return i.Om.Ir.i_insn then begin
                found := true;
                let live = Om.Liveness.live_before tbl i.Om.Ir.i_pc in
                Alcotest.(check bool) "$3 live at __divqu ret" true
                  (Alpha.Regset.mem 3 live)
              end)
            b.Om.Ir.b_insts)
        p.Om.Ir.p_blocks;
      Alcotest.(check bool) "__divqu has a ret" true !found

(* the binary-search builder must reproduce the reference builder's
   output structurally, on real programs and on arbitrary ones *)
let test_fast_builder_matches_ref () =
  let exe = Lazy.force sample_exe in
  let fast = Om.Build.program exe in
  let reference = Om.Build.program_ref exe in
  Alcotest.(check bool) "fast builder = reference builder" true
    (fast.Om.Ir.procs = reference.Om.Ir.procs)

let gen_synthetic_exe =
  QCheck.Gen.(
    int_range 4 64 >>= fun nwords ->
    list_size (return nwords)
      (int_bound 0xFFFFFFF >|= fun n -> n * 2654435761 land 0xFFFFFFFF)
    >>= fun words ->
    list_size (int_bound 4) (int_bound (nwords - 1)) >|= fun starts ->
    let base = Objfile.Exe.text_base in
    let bytes = Bytes.create (4 * nwords) in
    List.iteri (fun i w -> Alpha.Code.write_word bytes (4 * i) w) words;
    let starts = List.sort_uniq compare (0 :: starts) in
    let syms =
      List.map
        (fun i ->
          {
            Objfile.Exe.x_name = Printf.sprintf "f%d" i;
            x_addr = base + (4 * i);
            x_type = Objfile.Types.Func;
            x_size = 0;
          })
        starts
    in
    {
      Objfile.Exe.x_entry = base;
      x_segs =
        [ { Objfile.Exe.seg_vaddr = base; seg_bytes = bytes; seg_bss = 0;
            seg_write = false } ];
      x_symbols = syms;
      x_text_start = base;
      x_text_size = 4 * nwords;
      x_data_start = base + 0x100000;
      x_break = base + 0x200000;
      x_code_refs = [];
    })

let prop_partition =
  QCheck.Test.make ~count:300
    ~name:"blocks cover procedure text exactly; fast builder = reference"
    (QCheck.make gen_synthetic_exe)
    (fun exe ->
      let prog = Om.Build.program exe in
      let reference = Om.Build.program_ref exe in
      prog.Om.Ir.procs = reference.Om.Ir.procs
      && Array.for_all
           (fun p ->
             let cursor = ref p.Om.Ir.p_addr in
             let contiguous = ref true in
             Array.iter
               (fun b ->
                 if b.Om.Ir.b_addr <> !cursor then contiguous := false;
                 cursor := !cursor + (4 * Array.length b.Om.Ir.b_insts))
               p.Om.Ir.p_blocks;
             !contiguous && !cursor = p.Om.Ir.p_addr + p.Om.Ir.p_size)
           prog.Om.Ir.procs)

let () =
  Alcotest.run "om"
    [
      ( "ir",
        [
          Alcotest.test_case "procs cover text" `Quick test_procs_cover_text;
          Alcotest.test_case "blocks partition procs" `Quick test_blocks_partition_procs;
          Alcotest.test_case "successors are leaders" `Quick test_succs_are_leaders;
          Alcotest.test_case "find procs" `Quick test_find_procs;
          Alcotest.test_case "fast builder matches reference" `Quick
            test_fast_builder_matches_ref;
          QCheck_alcotest.to_alcotest prop_partition;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "summaries" `Quick test_dataflow;
          Alcotest.test_case "modified_by covers observed modification"
            `Quick test_modified_by_workloads;
          QCheck_alcotest.to_alcotest prop_modified_by;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "basic facts" `Quick test_liveness_basic;
          Alcotest.test_case "divqu remainder register" `Quick test_liveness_divqu_remainder;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "identity without stubs" `Quick test_codegen_identity;
          Alcotest.test_case "nop padding preserves behaviour" `Quick test_nop_padding;
          Alcotest.test_case "sizeof matches generate" `Quick test_sizeof_matches_generate;
        ] );
    ]
