(* Fault-injection smoke: a small seeded campaign over one plain and one
   instrumented workload must finish with zero escaped exceptions and
   zero engine disagreements, and the report must be deterministic for a
   fixed seed. *)

let campaign exe =
  Faultinject.campaign ~seed:7 ~syscall_cases:8 ~image_cases:16 ~fuel_cases:4
    ~max_insns:20_000_000 exe

let test_plain () =
  let w = List.find (fun w -> w.Workloads.w_name = "cover") Workloads.all in
  let exe = Workloads.compile w in
  let r = campaign exe in
  Alcotest.(check int) "cases" 28 r.Faultinject.r_cases;
  Alcotest.(check (list string)) "escapes" []
    (List.map (fun e -> e.Faultinject.e_detail) r.Faultinject.r_escapes);
  Alcotest.(check (list string)) "mismatches" []
    (List.map (fun e -> e.Faultinject.e_detail) r.Faultinject.r_mismatches);
  (* deterministic: same seed, same report *)
  let r' = campaign exe in
  Alcotest.(check bool) "deterministic" true (r = r')

let test_instrumented () =
  let w = List.find (fun w -> w.Workloads.w_name = "qsort") Workloads.all in
  let tool =
    List.find (fun t -> t.Tools.Tool.name = "dyninst") Tools.Registry.all
  in
  let exe, _ = Tools.Tool.apply tool (Workloads.compile w) in
  let r = campaign exe in
  Alcotest.(check (list string)) "escapes" []
    (List.map (fun e -> e.Faultinject.e_detail) r.Faultinject.r_escapes);
  Alcotest.(check (list string)) "mismatches" []
    (List.map (fun e -> e.Faultinject.e_detail) r.Faultinject.r_mismatches)

let test_report_shape () =
  let w = List.find (fun w -> w.Workloads.w_name = "cover") Workloads.all in
  let r = campaign (Workloads.compile w) in
  Alcotest.(check bool) "ok" true (Faultinject.ok r);
  let json = Faultinject.report_to_json r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json has histogram" true (contains json "\"histogram\"");
  Alcotest.(check bool) "json has zero escapes" true
    (contains json "\"escapes\": 0")

let () =
  Alcotest.run "faultinject"
    [
      ( "campaigns",
        [
          Alcotest.test_case "plain workload" `Quick test_plain;
          Alcotest.test_case "instrumented workload" `Quick test_instrumented;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
    ]
