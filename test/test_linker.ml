(* Linker semantics: cross-module resolution, archive member selection,
   layout, error cases, and the linker-provided `_end' symbol. *)

let asm name src = Asmlib.Assemble.assemble ~name src

let test_cross_module_call () =
  let a =
    asm "a.s"
      {|
        .text
        .globl __start
__start:
        bsr $26, answer
        mov $0, $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let b = asm "b.s" {|
        .text
        .globl answer
        .ent answer
answer: ldiq $0, 77
        ret
        .end answer
|} in
  let exe = Linker.Link.link [ Linker.Link.Unit a; Linker.Link.Unit b ] in
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:100 m with
  | Machine.Sim.Exit 77 -> ()
  | o ->
      Alcotest.failf "unexpected outcome %s"
        (match o with
        | Machine.Sim.Exit n -> string_of_int n
        | Machine.Sim.Fault f -> Machine.Fault.to_string f
        | Machine.Sim.Out_of_fuel -> "fuel")

let member name value =
  asm (name ^ ".s")
    (Printf.sprintf
       {|
        .text
        .globl %s
        .ent %s
%s:     ldiq $0, %d
        ret
        .end %s
|}
       name name name value name)

let test_archive_selection () =
  (* only the archive members that satisfy undefined symbols are pulled *)
  let main =
    asm "main.s"
      {|
        .text
        .globl __start
__start:
        bsr $26, used
        mov $0, $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let lib =
    Objfile.Archive.create "lib.a" [ member "unused" 1; member "used" 42 ]
  in
  let units =
    Linker.Link.select_units [ Linker.Link.Unit main; Linker.Link.Lib lib ]
  in
  Alcotest.(check int) "two units selected" 2 (List.length units);
  Alcotest.(check bool) "unused member not selected" false
    (List.exists (fun u -> u.Objfile.Unit_file.u_name = "unused.s") units);
  let exe = Linker.Link.link [ Linker.Link.Unit main; Linker.Link.Lib lib ] in
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:100 m with
  | Machine.Sim.Exit 42 -> ()
  | _ -> Alcotest.fail "archive-linked program misbehaved"

let test_transitive_archive () =
  (* a member pulled from the archive may itself require another member *)
  let main =
    asm "main.s"
      {|
        .text
        .globl __start
__start:
        bsr $26, outer
        mov $0, $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let outer =
    asm "outer.s"
      {|
        .text
        .globl outer
        .ent outer
outer:  lda $30, -16($30)
        stq $26, 0($30)
        bsr $26, inner
        addq $0, 1, $0
        ldq $26, 0($30)
        lda $30, 16($30)
        ret
        .end outer
|}
  in
  let lib = Objfile.Archive.create "lib.a" [ outer; member "inner" 10 ] in
  let exe = Linker.Link.link [ Linker.Link.Unit main; Linker.Link.Lib lib ] in
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:100 m with
  | Machine.Sim.Exit 11 -> ()
  | _ -> Alcotest.fail "transitive archive selection failed"

let test_errors () =
  let undef =
    asm "u.s" {|
        .text
        .globl __start
__start:
        bsr $26, missing
|}
  in
  (match Linker.Link.link [ Linker.Link.Unit undef ] with
  | _ -> Alcotest.fail "linked with undefined symbol"
  | exception Linker.Link.Error _ -> ());
  let def1 = member "dup" 1 and def2 = member "dup" 2 in
  let entry = asm "e.s" {|
        .text
        .globl __start
__start:
        nop
|} in
  (match
     Linker.Link.link
       [ Linker.Link.Unit entry; Linker.Link.Unit def1; Linker.Link.Unit def2 ]
   with
  | _ -> Alcotest.fail "linked duplicate definitions"
  | exception Linker.Link.Error _ -> ());
  match Linker.Link.link [ Linker.Link.Unit def1 ] with
  | _ -> Alcotest.fail "linked without entry symbol"
  | exception Linker.Link.Error _ -> ()

let test_layout_and_end_symbol () =
  let u =
    asm "l.s"
      {|
        .text
        .globl __start
__start:
        lda $1, _end
        mov $1, $16
        ldiq $0, 1
        call_pal 0x83
        .data
d:      .quad 1, 2
        .comm zone, 48
|}
  in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  Alcotest.(check int) "data starts at base" Objfile.Exe.data_base
    exe.Objfile.Exe.x_data_start;
  (* break: 16 bytes of data then 48 of bss, 8-aligned *)
  Alcotest.(check int) "break" (Objfile.Exe.data_base + 16 + 48) exe.Objfile.Exe.x_break;
  let m = Machine.Sim.load exe in
  (match Machine.Sim.run ~max_insns:100 m with
  | Machine.Sim.Exit _ -> ()
  | _ -> Alcotest.fail "run failed");
  (* the program exits with (_end & 0xff); check the full value in $1 *)
  Alcotest.(check int64) "_end = break" (Int64.of_int exe.Objfile.Exe.x_break)
    (Machine.Sim.reg m 1)

let test_data_reloc () =
  (* a .quad holding a function address is a code ref the exe records *)
  let u =
    asm "r.s"
      {|
        .text
        .globl __start
__start:
        nop
        .data
tab:    .quad __start
|}
  in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  match exe.Objfile.Exe.x_code_refs with
  | [ cr ] ->
      Alcotest.(check bool) "kind quad" true (cr.Objfile.Exe.cr_kind = Objfile.Exe.Cr_quad);
      Alcotest.(check int) "target is __start" exe.Objfile.Exe.x_entry
        cr.Objfile.Exe.cr_target;
      Alcotest.(check int) "field in data" Objfile.Exe.data_base cr.Objfile.Exe.cr_addr
  | l -> Alcotest.failf "expected one code ref, got %d" (List.length l)

let () =
  Alcotest.run "linker"
    [
      ( "linking",
        [
          Alcotest.test_case "cross-module call" `Quick test_cross_module_call;
          Alcotest.test_case "archive selection" `Quick test_archive_selection;
          Alcotest.test_case "transitive archive" `Quick test_transitive_archive;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "layout and _end" `Quick test_layout_and_end_symbol;
          Alcotest.test_case "data code refs" `Quick test_data_reloc;
        ] );
    ]
