(* Deeper compiler tests: randomly generated integer expressions are
   compiled and executed, then compared against an independent evaluator;
   plus libc behaviour checks and compile-error cases. *)

(* -- random expressions --------------------------------------------------- *)

type iexpr =
  | L of int64
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Div of iexpr * iexpr
  | Mod of iexpr * iexpr
  | And of iexpr * iexpr
  | Or of iexpr * iexpr
  | Xor of iexpr * iexpr
  | Shl of iexpr * iexpr
  | Shr of iexpr * iexpr
  | Neg of iexpr
  | Not of iexpr
  | Lt of iexpr * iexpr
  | Eq of iexpr * iexpr
  | Ternary of iexpr * iexpr * iexpr

let rec eval = function
  | L v -> v
  | Add (a, b) -> Int64.add (eval a) (eval b)
  | Sub (a, b) -> Int64.sub (eval a) (eval b)
  | Mul (a, b) -> Int64.mul (eval a) (eval b)
  | Div (a, b) ->
      let b = eval b in
      if b = 0L then 0L else Int64.div (eval a) b
  | Mod (a, b) ->
      let b = eval b in
      if b = 0L then 0L else Int64.rem (eval a) b
  | And (a, b) -> Int64.logand (eval a) (eval b)
  | Or (a, b) -> Int64.logor (eval a) (eval b)
  | Xor (a, b) -> Int64.logxor (eval a) (eval b)
  | Shl (a, b) -> Int64.shift_left (eval a) (Int64.to_int (eval b))
  | Shr (a, b) -> Int64.shift_right (eval a) (Int64.to_int (eval b))
  | Neg a -> Int64.neg (eval a)
  | Not a -> Int64.lognot (eval a)
  | Lt (a, b) -> if Int64.compare (eval a) (eval b) < 0 then 1L else 0L
  | Eq (a, b) -> if Int64.equal (eval a) (eval b) then 1L else 0L
  | Ternary (c, a, b) -> if eval c <> 0L then eval a else eval b

(* Render with full parenthesisation; mini-C needs no special cases then.
   Division/modulus guards: the generator only produces non-zero literal
   divisors. *)
let rec render = function
  | L v ->
      if v < 0L then Printf.sprintf "(0 - %Ld)" (Int64.neg v)
      else Int64.to_string v
  | Add (a, b) -> bin "+" a b
  | Sub (a, b) -> bin "-" a b
  | Mul (a, b) -> bin "*" a b
  | Div (a, b) -> bin "/" a b
  | Mod (a, b) -> bin "%" a b
  | And (a, b) -> bin "&" a b
  | Or (a, b) -> bin "|" a b
  | Xor (a, b) -> bin "^" a b
  | Shl (a, b) -> bin "<<" a b
  | Shr (a, b) -> bin ">>" a b
  | Neg a -> Printf.sprintf "(-%s)" (render a)
  | Not a -> Printf.sprintf "(~%s)" (render a)
  | Lt (a, b) -> bin "<" a b
  | Eq (a, b) -> bin "==" a b
  | Ternary (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (render c) (render a) (render b)

and bin op a b = Printf.sprintf "(%s %s %s)" (render a) op (render b)

let gen_iexpr : iexpr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf = map (fun n -> L (Int64.of_int n)) (int_range (-1000) 1000) in
  let nonzero_leaf =
    map (fun n -> L (Int64.of_int (if n >= 0 then n + 1 else n))) (int_range (-50) 50)
  in
  let shift_leaf = map (fun n -> L (Int64.of_int n)) (int_range 0 12) in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 8,
              oneofl
                [ (fun a b -> Add (a, b)); (fun a b -> Sub (a, b));
                  (fun a b -> Mul (a, b)); (fun a b -> And (a, b));
                  (fun a b -> Or (a, b)); (fun a b -> Xor (a, b));
                  (fun a b -> Lt (a, b)); (fun a b -> Eq (a, b)) ]
              >>= fun mk ->
              self (depth - 1) >>= fun a ->
              self (depth - 1) >|= fun b -> mk a b );
            ( 2,
              oneofl [ (fun a b -> Div (a, b)); (fun a b -> Mod (a, b)) ]
              >>= fun mk ->
              self (depth - 1) >>= fun a ->
              nonzero_leaf >|= fun b -> mk a b );
            ( 2,
              oneofl [ (fun a b -> Shl (a, b)); (fun a b -> Shr (a, b)) ]
              >>= fun mk ->
              self (depth - 1) >>= fun a ->
              shift_leaf >|= fun b -> mk a b );
            (1, self (depth - 1) >|= fun a -> Neg a);
            (1, self (depth - 1) >|= fun a -> Not a);
            ( 1,
              self (depth - 1) >>= fun c ->
              self (depth - 1) >>= fun a ->
              self (depth - 1) >|= fun b -> Ternary (c, a, b) );
          ])
    3

let compile_and_run src =
  let exe = Rtlib.compile_and_link ~name:"expr.o" src in
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:10_000_000 m with
  | Machine.Sim.Exit 0 -> Machine.Sim.stdout m
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d" n
  | Machine.Sim.Fault f -> Alcotest.failf "fault %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "fuel"

let prop_expressions =
  QCheck.Test.make ~count:60 ~name:"compiled expressions match the evaluator"
    (QCheck.make ~print:render gen_iexpr)
    (fun e ->
      let expected = eval e in
      let src =
        Printf.sprintf "long main(void) { printf(\"%%d\", %s); return 0; }" (render e)
      in
      compile_and_run src = Int64.to_string expected)

(* Mini-C's `/` and `%` truncate toward zero with remainder following the
   dividend, like C. *)
let prop_divmod_c_semantics =
  QCheck.Test.make ~count:100 ~name:"division truncates toward zero"
    (QCheck.make
       QCheck.Gen.(pair (int_range (-10000) 10000) (int_range 1 200)))
    (fun (a, b) ->
      let src =
        Printf.sprintf
          "long main(void) { printf(\"%%d %%d\", %d / %d, %d %% %d); return 0; }"
          a b a b
      in
      let q = Int64.to_string (Int64.div (Int64.of_int a) (Int64.of_int b)) in
      let r = Int64.to_string (Int64.rem (Int64.of_int a) (Int64.of_int b)) in
      compile_and_run src = q ^ " " ^ r)

(* -- libc behaviours ------------------------------------------------------ *)

let t name ~expect src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expect (compile_and_run src))

let libc_cases =
  [
    t "printf widths and zero pad" ~expect:"[  42][00042][2a][ -7][-07]"
      {|long main(void){ printf("[%4d][%05d][%x][%3d][%03d]", 42, 42, 42, -7, -7); return 0; }|};
    t "printf char star and percent" ~expect:"a=1%, b=[zz]"
      {|long main(void){ printf("a=%d%%, b=[%s]", 1, "zz"); return 0; }|};
    t "printf unsigned and hex of negative" ~expect:"18446744073709551615 ffffffffffffffff"
      {|long main(void){ printf("%u %x", -1, -1); return 0; }|};
    t "strncmp and strchr" ~expect:"0 1 -1 d 0"
      {|long main(void){
         char *s = "abcdef";
         printf("%d %d %d %c %d", strncmp("abc", "abd", 2),
                strncmp("abd", "abc", 3) > 0,
                strncmp("abc", "abd", 3) < 0 ? -1 : 1,
                *strchr(s, 'd'),
                strchr(s, 'q') == 0 ? 0 : 1);
         return 0; }|};
    t "memcmp memcpy memset" ~expect:"0 1 255"
      {|long main(void){
         char a[8]; char b[8];
         memset(a, 255, 8);
         memcpy(b, a, 8);
         printf("%d %d %d", memcmp(a, b, 8), memcmp("az", "aa", 2) > 0, a[3]);
         return 0; }|};
    t "atoi" ~expect:"123 -45 0"
      {|long main(void){ printf("%d %d %d", atoi("123"), atoi(" -45x"), atoi("zz")); return 0; }|};
    t "calloc zeroes" ~expect:"0 0"
      {|long main(void){
         long *p = (long *) calloc(16, sizeof(long));
         printf("%d %d", p[0], p[15]);
         return 0; }|};
    t "malloc split and reuse" ~expect:"1 1"
      {|long main(void){
         char *a = (char *) malloc(200);
         char *b;
         free(a);
         b = (char *) malloc(64);   /* reuses (a prefix of) the freed block */
         printf("%d ", a == b);
         free(b);
         printf("%d", (char *) malloc(64) == b);
         return 0; }|};
    t "sqrt and fabs" ~expect:"3.000000 2.500000 1.414214"
      {|long main(void){ printf("%f %f %f", sqrt(9.0), fabs(-2.5), sqrt(2.0)); return 0; }|};
    t "rand deterministic" ~expect:"1"
      {|long main(void){
         long a, b;
         srand(7); a = rand();
         srand(7); b = rand();
         printf("%d", a == b && a >= 0);
         return 0; }|};
    t "labs" ~expect:"5 5 0"
      {|long main(void){ printf("%d %d %d", labs(5), labs(-5), labs(0)); return 0; }|};
    t "fprintf to file then read" ~expect:"n=-42 hex=ffd6"
      {|long main(void){
         void *f = fopen("t.txt", "w");
         char buf[64];
         long fd, n;
         fprintf(f, "n=%d hex=%x", -42, 65494);
         fclose(f);
         fd = open("t.txt", 0);
         n = read(fd, buf, 63);
         buf[n] = 0;
         printf("%s", buf);
         return 0; }|};
  ]

(* -- statements, scoping and misc language behaviour ---------------------- *)

let statement_cases =
  [
    t "scoping and shadowing" ~expect:"inner=5 outer=1 global=9"
      {|
long x = 9;
long main(void) {
  long a = 1;
  {
    long a = 5;
    printf("inner=%d ", a);
  }
  printf("outer=%d global=%d", a, x);
  return 0;
}|};
    t "for-scope declaration" ~expect:"10 7"
      {|
long main(void) {
  long s = 0;
  for (long i = 0; i < 5; i++) s += i;
  {
    long i = 7;
    printf("%d %d", s, i);
  }
  return 0;
}|};
    t "nested loops with break/continue" ~expect:"14"
      {|
long main(void) {
  long i, j, s = 0;
  for (i = 0; i < 5; i++) {
    for (j = 0; j < 5; j++) {
      if (j > i) break;
      if (j == 2) continue;
      s += 1;
    }
    if (s > 18) break;
  }
  printf("%d", s + 2);
  return 0;
}|};
    t "comma declarations with dependent inits" ~expect:"3 6 18"
      {|
long main(void) {
  long a = 3, b = a * 2, c = b * a;
  printf("%d %d %d", a, b, c);
  return 0;
}|};
    t "char comparisons and arithmetic" ~expect:"1 0 97 b 26"
      {|
long main(void) {
  char c = 'a';
  printf("%d %d %d %c %d", c == 'a', c > 'z', c, c + 1, 'z' - 'a' + 1);
  return 0;
}|};
    t "pointer to pointer" ~expect:"42 42 7"
      {|
long main(void) {
  long x = 42;
  long *p = &x;
  long **pp = &p;
  printf("%d %d ", *p, **pp);
  **pp = 7;
  printf("%d", x);
  return 0;
}|};
    t "struct with array member" ~expect:"6 30"
      {|
struct rec { long id; long data[4]; };
struct rec table[3];
long main(void) {
  long i, j, s = 0;
  for (i = 0; i < 3; i++) {
    table[i].id = i;
    for (j = 0; j < 4; j++) table[i].data[j] = i * 10 + j;
  }
  printf("%d %d", table[1].data[2] / 2, s + table[2].data[0] + table[1].id * 10);
  return 0;
}|};
    t "struct pointer chains" ~expect:"3"
      {|
struct link { long v; struct link *next; };
long main(void) {
  struct link a, b, c;
  a.v = 1; b.v = 2; c.v = 3;
  a.next = &b; b.next = &c; c.next = 0;
  printf("%d", a.next->next->v);
  return 0;
}|};
    t "multidimensional-style indexing" ~expect:"23"
      {|
long m[5 * 5];
long main(void) {
  long i;
  for (i = 0; i < 25; i++) m[i] = i;
  printf("%d", m[4 * 5 + 3]);
  return 0;
}|};
    t "adjacent string literal concatenation" ~expect:"hello world"
      {|
long main(void) { printf("hello " "wor" "ld"); return 0; }|};
    t "negative modulo chain" ~expect:"-2 -2 2"
      {|
long main(void) { printf("%d %d %d", -17 % 5, (-17) % 5, 17 % (5)); return 0; }|};
    t "assignment as expression value" ~expect:"5 5 10"
      {|
long main(void) {
  long a, b;
  b = (a = 5);
  printf("%d %d %d", a, b, a += 5);
  return 0;
}|};
    t "do-while with complex condition" ~expect:"16"
      {|
long main(void) {
  long x = 1;
  do { x *= 2; } while (x < 10 && x != 0);
  printf("%d", x);
  return 0;
}|};
    t "void function side effects" ~expect:"3"
      {|
long counter;
void bump(void) { counter++; }
long main(void) {
  bump(); bump(); bump();
  printf("%d", counter);
  return 0;
}|};
    t "early return in void function" ~expect:"1 0"
      {|
long flag;
void maybe(long x) {
  if (x < 10) return;
  flag = 1;
}
long main(void) {
  maybe(50);
  printf("%d ", flag);
  flag = 0;
  maybe(5);
  printf("%d", flag);
  return 0;
}|};
    t "recursive mutual functions" ~expect:"1 0 1 0"
      {|
long is_odd(long n);
long is_even(long n) { if (n == 0) return 1; return is_odd(n - 1); }
long is_odd(long n) { if (n == 0) return 0; return is_even(n - 1); }
long main(void) {
  printf("%d %d %d %d", is_even(10), is_even(7), is_odd(3), is_odd(8));
  return 0;
}|};
  ]

(* -- soak regressions ------------------------------------------------------ *)
(* Minimized from programs the lib/progen soak generator flushed out.  Two
   front-end bugs hid here: const_init rejected any initializer more complex
   than [+-]literal, and codegen funneled constants through Int64.to_int,
   which silently wraps once |v| >= 2^62 (OCaml's native int is 63-bit). *)

let soak_regression_cases =
  [
    t "folded constant global initializer" ~expect:"-9223372036854775808 46"
      {|
long g = -9223372036854775807 - 1;
long h = (3 < 5) ? 6 * 7 + (1 << 2) : 0;
long main(void) { printf("%d %d", g, h); return 0; }|};
    t "min_int literal survives codegen" ~expect:"-1317624576693539401 -1 0"
      {|
long main(void) {
  long g = -9223372036854775807 - 1;
  printf("%d %d %d", g / 7, g % 7, g == 0);
  return 0;
}|};
    t "2^62 and max_int literals" ~expect:"807 904 904"
      {|
long main(void) {
  long a = 9223372036854775807;
  long b = 4611686018427387904;
  long c = 1; c = c << 62;
  printf("%d %d %d", a % 1000, b % 1000, c % 1000);
  return 0;
}|};
    t "min_int as global quad datum" ~expect:"-9223372036854775808 9223372036854775807"
      {|
long lo = -9223372036854775807 - 1;
long hi = 9223372036854775807;
long main(void) { printf("%d %d", lo, hi); return 0; }|};
    t "big constant not aliased into byte immediate" ~expect:"-9223372036854775552 0"
      {|
long main(void) {
  long x = 1;
  printf("%d %d", x + (-9223372036854775807 - 1 + 255),
         x < (-9223372036854775807 - 1 + 200));
  return 0;
}|};
  ]

(* -- error cases ----------------------------------------------------------- *)

let expect_compile_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Rtlib.compile_and_link ~name:"bad.o" src with
      | _ -> Alcotest.failf "compiled: %s" name
      | exception Minic.Driver.Error _ -> ()
      | exception Linker.Link.Error _ -> ())

let error_cases =
  [
    expect_compile_error "undeclared variable" "long main(void){ return zz; }";
    expect_compile_error "undeclared function" "long main(void){ return zap(1); }";
    expect_compile_error "too many args" "long f(long a){return a;} long main(void){ return f(1,2); }";
    expect_compile_error "struct as value" "struct s{long x;}; long main(void){ struct s a; struct s b; a = b; return 0; }";
    expect_compile_error "break outside loop" "long main(void){ break; return 0; }";
    expect_compile_error "void value" "void f(void){} long main(void){ return f(); }";
    expect_compile_error "bad assignment target" "long main(void){ 3 = 4; return 0; }";
    expect_compile_error "duplicate definition"
      "long f(void){return 1;} long f(void){return 2;} long main(void){return 0;}";
    expect_compile_error "unterminated comment" "long main(void){ /* oops return 0; }";
  ]

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_expressions; prop_divmod_c_semantics ]

let () =
  Alcotest.run "minic2"
    [
      ("libc", libc_cases);
      ("statements", statement_cases);
      ("soak-regressions", soak_regression_cases);
      ("errors", error_cases);
      ("properties", props);
    ]
