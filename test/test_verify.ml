(* The post-instrumentation verifier: a clean instrumentation passes every
   check; deliberate corruptions (a bit-flipped branch, a dropped register
   save, a perturbed data base) are each caught by the named detector; the
   64-bit load_const materialisation is exact at its boundaries; and
   branches at the disp21 limit either relocate correctly or fail with a
   structured error — never a wrong encoding. *)

open Alpha
module Exe = Objfile.Exe
module I = Atom.Instrument

let compile src = Rtlib.compile_and_link ~name:"app.o" src

(* the paper's branch-counting tool, trimmed: one call per cond branch *)
let branch_tool api =
  let open Atom.Api in
  add_call_proto api "CondBranch(int, VALUE)";
  let n = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let inst = get_last_inst b in
          if is_inst_type inst Inst_cond_branch then begin
            add_call_inst api inst Before "CondBranch" [ Int !n; Br_cond_value ];
            incr n
          end)
        (blocks p))
    (procs api)

(* the fflush reference pulls the runtime-library stdio unit into the
   analysis module, which carries the __libc_init the engine requires *)
let branch_analysis =
  {|
long taken; long nottaken;
void CondBranch(long n, long t) { if (t) taken++; else nottaken++; }
void FlushStats(void) { fflush((void *) 0); }
|}

let app_src =
  {|
long work(long n) {
  long i, s = 0;
  for (i = 0; i < n; i++) {
    if (i % 3 == 0) s += i;
    else s -= 1;
  }
  return s;
}
long main(void) {
  printf("result=%d\n", work(300));
  return 0;
}
|}

let instrumented =
  lazy
    (let exe = compile app_src in
     let exe', info =
       I.instrument_source ~exe ~tool:branch_tool ~analysis_src:branch_analysis
         ()
     in
     (exe, exe', info))

let copy_image exe =
  {
    exe with
    Exe.x_segs =
      List.map
        (fun s -> { s with Exe.seg_bytes = Bytes.copy s.Exe.seg_bytes })
        exe.Exe.x_segs;
  }

let word_at exe addr =
  let s =
    List.find
      (fun s ->
        addr >= s.Exe.seg_vaddr
        && addr + 4 <= s.Exe.seg_vaddr + Bytes.length s.Exe.seg_bytes)
      exe.Exe.x_segs
  in
  Code.read_word s.Exe.seg_bytes (addr - s.Exe.seg_vaddr)

let set_word exe addr w =
  let s =
    List.find
      (fun s ->
        addr >= s.Exe.seg_vaddr
        && addr + 4 <= s.Exe.seg_vaddr + Bytes.length s.Exe.seg_bytes)
      exe.Exe.x_segs
  in
  Code.write_word s.Exe.seg_bytes (addr - s.Exe.seg_vaddr) w

let checks_fired rep =
  List.sort_uniq compare (List.map (fun i -> i.Verify.v_check) rep.Verify.r_issues)

let test_clean_passes () =
  let exe, exe', info = Lazy.force instrumented in
  let rep = Verify.verify ~original:exe ~instrumented:exe' ~info () in
  if not (Verify.ok rep) then
    Alcotest.failf "clean instrumentation flagged:\n%s"
      (Verify.report_to_string rep)

let test_clean_passes_options () =
  let exe = compile app_src in
  List.iter
    (fun options ->
      let exe', info =
        I.instrument_source ~options ~exe ~tool:branch_tool
          ~analysis_src:branch_analysis ()
      in
      let rep = Verify.verify ~original:exe ~instrumented:exe' ~info () in
      if not (Verify.ok rep) then
        Alcotest.failf "options variant flagged:\n%s"
          (Verify.report_to_string rep))
    [
      { I.save_strategy = I.Save_all; call_style = I.Inline_saves;
        heap_mode = I.Partitioned (1 lsl 20) };
      { I.save_strategy = I.Summary_and_live; call_style = I.Wrapper;
        heap_mode = I.Linked };
      (* spliced analysis bodies open their own frames inside the stub;
         the frame parser must accept the balanced inner adjustments *)
      { I.save_strategy = I.Summary; call_style = I.Inline_body;
        heap_mode = I.Linked };
      (* with no call emitted the stub need not protect [ra], even though
         the save-all summary lists it *)
      { I.save_strategy = I.Save_all; call_style = I.Inline_body;
        heap_mode = I.Linked };
    ]

(* corruption 1: flip the sign bit of a conditional branch's displacement
   in the relocated program text — the word still decodes, but the target
   now lands megabytes outside the text *)
let test_corrupt_branch () =
  let exe, exe', info = Lazy.force instrumented in
  let bad = copy_image exe' in
  let pt_base, pt_size = info.I.i_audit.I.au_prog_text in
  let rec find addr =
    if addr >= pt_base + pt_size then Alcotest.fail "no conditional branch"
    else
      match Code.decode (word_at bad addr) with
      | Insn.Cbr _ -> addr
      | _ -> find (addr + 4)
  in
  let addr = find pt_base in
  set_word bad addr (word_at bad addr lxor (1 lsl 20));
  let rep = Verify.check_image ~original:exe ~instrumented:bad ~info in
  Alcotest.(check bool)
    "branch-range fired" true
    (List.mem "branch-range" (checks_fired rep))

(* corruption 2: drop a register save inside a stub — rewrite the first
   [stq r, off(sp)] of a site stub to store the zero register instead, so
   the saved value is lost and the restore no longer mirrors the save *)
let test_corrupt_save () =
  let exe, exe', info = Lazy.force instrumented in
  let bad = copy_image exe' in
  let exts =
    List.concat_map
      (fun (st : Om.Codegen.site) ->
        st.Om.Codegen.st_before @ st.Om.Codegen.st_after
        @ st.Om.Codegen.st_taken)
      info.I.i_audit.I.au_layout
  in
  let corrupt =
    List.exists
      (fun (ext : Om.Codegen.extent) ->
        let rec find k =
          if 4 * k >= ext.Om.Codegen.e_size then false
          else
            let addr = ext.Om.Codegen.e_addr + (4 * k) in
            match Code.decode (word_at bad addr) with
            | Insn.Mem { op = Insn.Stq; ra = _; rb; disp }
              when rb = Reg.sp ->
                set_word bad addr
                  (Code.encode
                     (Insn.Mem
                        { op = Insn.Stq; ra = Reg.zero; rb = Reg.sp; disp }));
                true
            | _ -> find (k + 1)
        in
        find 0)
      exts
  in
  Alcotest.(check bool) "found a save to corrupt" true corrupt;
  let rep = Verify.check_image ~original:exe ~instrumented:bad ~info in
  Alcotest.(check bool)
    "stub-saves fired" true
    (List.mem "stub-saves" (checks_fired rep))

(* corruption 3: move the data base — Figure 4 demands the application's
   data addresses stay exactly where the uninstrumented program had them *)
let test_corrupt_data_base () =
  let exe, exe', info = Lazy.force instrumented in
  let bad = { (copy_image exe') with Exe.x_data_start = exe'.Exe.x_data_start + 16 } in
  let rep = Verify.check_image ~original:exe ~instrumented:bad ~info in
  Alcotest.(check bool)
    "layout fired" true
    (List.mem "layout" (checks_fired rep))

(* the three corruptions are distinguished by name *)
let test_distinct_diagnostics () =
  let exe, exe', info = Lazy.force instrumented in
  ignore exe;
  ignore exe';
  ignore info;
  let names = [ "branch-range"; "stub-saves"; "layout" ] in
  Alcotest.(check int)
    "three distinct detectors" 3
    (List.length (List.sort_uniq compare names))

(* -- load_const ----------------------------------------------------------- *)

(* interpret the emitted sequence: lda/ldah/sll over a register file *)
let eval_load_const r insns =
  let regs = Array.make 32 0L in
  let get i = if i = 31 then 0L else regs.(i) in
  List.iter
    (fun insn ->
      match insn with
      | Insn.Mem { op = Insn.Lda; ra; rb; disp } ->
          regs.(ra) <- Int64.add (get rb) (Int64.of_int disp)
      | Insn.Mem { op = Insn.Ldah; ra; rb; disp } ->
          regs.(ra) <- Int64.add (get rb) (Int64.of_int (disp * 65536))
      | Insn.Opr { op = Insn.Sll; ra; rb = Insn.Imm n; rc } ->
          regs.(rc) <- Int64.shift_left (get ra) n
      | i -> Alcotest.failf "unexpected instruction %s" (Insn.to_string i))
    insns;
  regs.(r)

let test_load_const_exact () =
  let values =
    [
      0; 1; -1; 42; 0x7FFF; -0x8000; 0x8000; 0x12345678;
      (* the old implementation's blind spot: hi would have been 0x8000 *)
      0x7FFF_8000; 0x7FFF_FFFF; -0x8000_0000;
      (* beyond 32 bits: the old implementation refused these outright *)
      0x8000_0000; 0x1_0000_0000; 0x7FFF_8000_0000; 0x1234_5678_9ABC_DEF0;
      -0x1234_5678_9ABC_DEF0; max_int; min_int;
    ]
  in
  List.iter
    (fun v ->
      let insns = Atom.Stubgen.load_const Reg.t0 v in
      (* every emitted instruction must actually encode *)
      List.iter (fun i -> ignore (Code.encode i)) insns;
      let got = eval_load_const Reg.t0 insns in
      if got <> Int64.of_int v then
        Alcotest.failf "load_const %#x evaluated to %#Lx (%d insns)" v got
          (List.length insns))
    values

let test_load_const_compact () =
  (* small constants stay small: one instruction for 16-bit, two for
     32-bit values *)
  Alcotest.(check int) "16-bit" 1 (List.length (Atom.Stubgen.load_const 1 42));
  Alcotest.(check int)
    "32-bit" 2
    (List.length (Atom.Stubgen.load_const 1 0x12345678))

(* -- disp21 boundary ------------------------------------------------------ *)

(* Synthetic images for the disp21 limit.  The megabyte-spanning branch
   lives in an uncalled procedure [f]; the entry point and the
   instrumented site both sit near the {e end} of the text so their stubs
   stay within [bsr] range of the wrappers placed after it.  The exe
   record is built by hand: a text segment, a token data segment, and the
   Func symbols OM rebuilds its view from. *)
let make_exe f_insns =
  let start =
    [
      Insn.Mem { op = Insn.Lda; ra = Reg.a0; rb = Reg.zero; disp = 0 };
      Insn.Mem { op = Insn.Lda; ra = Reg.v0; rb = Reg.zero; disp = 1 };
      Insn.Call_pal 0x83;
    ]
  in
  let nf = List.length f_insns in
  let insns = f_insns @ start in
  let n = List.length insns in
  let text = Bytes.create (4 * n) in
  List.iteri (fun k i -> Code.encode_at text (4 * k) i) insns;
  {
    Exe.x_entry = Exe.text_base + (4 * nf);
    x_segs =
      [
        { Exe.seg_vaddr = Exe.text_base; seg_bytes = text; seg_bss = 0;
          seg_write = false };
        { Exe.seg_vaddr = Exe.data_base; seg_bytes = Bytes.create 16;
          seg_bss = 0; seg_write = true };
      ];
    x_symbols =
      [
        { Exe.x_name = "f"; x_addr = Exe.text_base;
          x_type = Objfile.Types.Func; x_size = 4 * nf };
        { Exe.x_name = "start"; x_addr = Exe.text_base + (4 * nf);
          x_type = Objfile.Types.Func; x_size = 4 * List.length start };
      ];
    x_text_start = Exe.text_base;
    x_text_size = 4 * n;
    x_data_start = Exe.data_base;
    x_break = Exe.data_base + 16;
    x_code_refs = [];
  }

let ret = Insn.Jump { kind = Insn.Ret; ra = Reg.zero; rb = Reg.ra; hint = 0 }

(* f: nop / br +d / filler / nop (site, just before the target) / ret
   (the target).  The site's stub lands between branch and target. *)
let make_forward_exe d =
  let f =
    (Insn.nop :: Insn.Br { link = false; ra = Reg.zero; disp = d }
   :: List.init d (fun _ -> Insn.nop))
    @ [ ret ]
  in
  (make_exe f, Exe.text_base + (4 * (d + 1)))

(* f: nop (the target) / filler / nop (site) / br d (backward) / ret *)
let make_backward_exe d =
  let m = -d - 1 in
  let f =
    List.init m (fun _ -> Insn.nop)
    @ [ Insn.Br { link = false; ra = Reg.zero; disp = d }; ret ]
  in
  (make_exe f, Exe.text_base + (4 * (m - 1)))

let hit_tool site_pc api =
  let open Atom.Api in
  add_call_proto api "Hit()";
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          List.iter
            (fun i -> if inst_pc i = site_pc then add_call_inst api i Before "Hit" [])
            (insts b))
        (blocks p))
    (procs api)

let hit_analysis =
  "long hits;\nvoid Hit(void) { hits = hits + 1; }\nvoid HitFlush(void) { fflush((void *) 0); }\n"

let instrument_at site_pc exe =
  I.instrument_source ~exe ~tool:(hit_tool site_pc)
    ~analysis_src:hit_analysis ()

(* words the before-stub inserts at the site (measured, not assumed) *)
let stub_words =
  lazy
    (let exe, site = make_forward_exe 16 in
     let _, info = instrument_at site exe in
     let s = (info.I.i_map (site + 4) - info.I.i_map site - 4) / 4 in
     Alcotest.(check bool) "probe found a stub" true (s > 0);
     s)

let disp21_max = (1 lsl 20) - 1
let disp21_min = -(1 lsl 20)

let test_disp21_forward_at_limit () =
  let s = Lazy.force stub_words in
  let d = disp21_max - s in
  let exe, site = make_forward_exe d in
  let exe', info = instrument_at site exe in
  (* the rewritten branch sits exactly at the limit *)
  let baddr = info.I.i_map (Exe.text_base + 4) in
  (match Code.decode (word_at exe' baddr) with
  | Insn.Br { disp; _ } ->
      Alcotest.(check int) "displacement at the disp21 limit" disp21_max disp
  | i -> Alcotest.failf "expected br at %#x, found %s" baddr (Insn.to_string i));
  let rep = Verify.check_image ~original:exe ~instrumented:exe' ~info in
  if not (Verify.ok rep) then
    Alcotest.failf "at-limit image flagged:\n%s" (Verify.report_to_string rep)

let test_disp21_forward_over_limit () =
  let s = Lazy.force stub_words in
  let d = disp21_max - s + 1 in
  let exe, site = make_forward_exe d in
  match instrument_at site exe with
  | exception I.Error msg ->
      let has needle =
        let rec go i =
          i + String.length needle <= String.length msg
          && (String.sub msg i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "names the 21-bit range" true (has "21-bit");
      Alcotest.(check bool) "names the procedure" true (has "procedure f,")
  | _exe', _ ->
      Alcotest.fail "over-limit branch was encoded instead of rejected"

let test_disp21_backward_over_limit () =
  let s = Lazy.force stub_words in
  (* the stub pushes the displacement one word past the negative limit *)
  let d = disp21_min + s - 1 in
  let exe, site = make_backward_exe d in
  match instrument_at site exe with
  | exception I.Error msg ->
      let has needle =
        let rec go i =
          i + String.length needle <= String.length msg
          && (String.sub msg i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "names the 21-bit range" true (has "21-bit")
  | _ -> Alcotest.fail "over-limit backward branch was encoded"

let () =
  Alcotest.run "verify"
    [
      ( "verifier",
        [
          Alcotest.test_case "clean instrumentation passes" `Quick
            test_clean_passes;
          Alcotest.test_case "clean under option variants" `Quick
            test_clean_passes_options;
          Alcotest.test_case "bit-flipped branch caught" `Quick
            test_corrupt_branch;
          Alcotest.test_case "dropped register save caught" `Quick
            test_corrupt_save;
          Alcotest.test_case "perturbed data base caught" `Quick
            test_corrupt_data_base;
          Alcotest.test_case "diagnostics distinct" `Quick
            test_distinct_diagnostics;
        ] );
      ( "load_const",
        [
          Alcotest.test_case "exact at boundaries" `Quick test_load_const_exact;
          Alcotest.test_case "compact encodings" `Quick test_load_const_compact;
        ] );
      ( "disp21",
        [
          Alcotest.test_case "forward at the limit" `Slow
            test_disp21_forward_at_limit;
          Alcotest.test_case "forward past the limit" `Slow
            test_disp21_forward_over_limit;
          Alcotest.test_case "backward past the limit" `Slow
            test_disp21_backward_over_limit;
        ] );
    ]
