(* Integration tests for the ATOM instrumentation engine: the paper's
   branch-counting example (Figures 2 and 3), output-preservation checks,
   and the heap modes. *)

let compile src = Rtlib.compile_and_link ~name:"app.o" src

let run ?stdin exe =
  let m = Machine.Sim.load ?stdin exe in
  let outcome = Machine.Sim.run ~max_insns:400_000_000 m in
  (outcome, m)

let expect_exit0 tag (outcome, m) =
  match outcome with
  | Machine.Sim.Exit 0 -> m
  | Machine.Sim.Exit n ->
      Alcotest.failf "%s: exit %d (stderr %S)" tag n (Machine.Sim.stderr m)
  | Machine.Sim.Fault f ->
      Alcotest.failf "%s: fault: %s" tag (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.failf "%s: out of fuel" tag

(* The paper's example tool: count taken/not-taken per conditional branch. *)
let branch_counting_instrumentation api =
  let open Atom.Api in
  add_call_proto api "OpenFile(int)";
  add_call_proto api "CondBranch(int, VALUE)";
  add_call_proto api "PrintBranch(int, long)";
  add_call_proto api "CloseFile()";
  let nbranch = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let inst = get_last_inst b in
          if is_inst_type inst Inst_cond_branch then begin
            add_call_inst api inst Before "CondBranch"
              [ Int !nbranch; Br_cond_value ];
            add_call_program api Program_after "PrintBranch"
              [ Int !nbranch; Inst_pc inst ];
            incr nbranch
          end)
        (blocks p))
    (procs api);
  add_call_program api Program_before "OpenFile" [ Int !nbranch ];
  add_call_program api Program_after "CloseFile" []

let branch_counting_analysis =
  {|
struct BranchInfo { long taken; long notTaken; };
struct BranchInfo *bstats;
void *file;

void OpenFile(long n) {
  bstats = (struct BranchInfo *) malloc(n * sizeof(struct BranchInfo));
  memset(bstats, 0, n * sizeof(struct BranchInfo));
  file = fopen("btaken.out", "w");
  fprintf(file, "PC\tTaken\tNot Taken\n");
}

void CondBranch(long n, long taken) {
  if (taken) bstats[n].taken++;
  else bstats[n].notTaken++;
}

void PrintBranch(long n, long pc) {
  fprintf(file, "0x%x\t%d\t%d\n", pc, bstats[n].taken, bstats[n].notTaken);
}

void CloseFile(void) { fclose(file); }
|}

let app_src =
  {|
long work(long n) {
  long i, s = 0;
  for (i = 0; i < n; i++) {
    if (i % 3 == 0) s += i;
    else s -= 1;
  }
  return s;
}
long main(void) {
  printf("result=%d\n", work(300));
  return 0;
}
|}

let instrument ?options exe =
  Atom.Instrument.instrument_source ?options ~exe
    ~tool:branch_counting_instrumentation ~analysis_src:branch_counting_analysis ()


let test_branch_tool () =
  let exe = compile app_src in
  let base = expect_exit0 "uninstrumented" (run exe) in
  let exe', info = instrument exe in
  let m = expect_exit0 "instrumented" (run exe') in
  (* the application's own behaviour is untouched *)
  Alcotest.(check string)
    "stdout identical" (Machine.Sim.stdout base) (Machine.Sim.stdout m);
  Alcotest.(check bool) "some sites instrumented" true (info.Atom.Instrument.i_sites > 10);
  (* the analysis output exists and accounts for every loop iteration *)
  match List.assoc_opt "btaken.out" (Machine.Sim.output_files m) with
  | None -> Alcotest.fail "no btaken.out produced"
  | Some contents ->
      let lines = String.split_on_char '\n' contents in
      Alcotest.(check bool) "has header" true (List.hd lines = "PC\tTaken\tNot Taken");
      (* total conditional-branch executions equal the simulator's count *)
      let total =
        List.fold_left
          (fun acc line ->
            match String.split_on_char '\t' line with
            | [ _pc; t; nt ] -> (
                match (int_of_string_opt t, int_of_string_opt nt) with
                | Some t, Some nt -> acc + t + nt
                | _ -> acc)
            | _ -> acc)
          0 lines
      in
      let st = Machine.Sim.stats (Machine.Sim.load exe) in
      ignore st;
      (* run the uninstrumented program again to count its branches *)
      let m0 = Machine.Sim.load exe in
      (match Machine.Sim.run m0 with Machine.Sim.Exit 0 -> () | _ -> assert false);
      let expected = (Machine.Sim.stats m0).Machine.Sim.st_cond_branches in
      (* branches executing inside exit() after the Program_after hooks
         have printed are recorded in the counters but not in the file *)
      if total > expected || expected - total > 200 then
        Alcotest.failf "branch executions: file %d vs simulator %d" total expected

let test_slowdown_sane () =
  let exe = compile app_src in
  let m0 = expect_exit0 "base" (run exe) in
  let exe', _ = instrument exe in
  let m1 = expect_exit0 "instr" (run exe') in
  let i0 = (Machine.Sim.stats m0).Machine.Sim.st_insns in
  let i1 = (Machine.Sim.stats m1).Machine.Sim.st_insns in
  if i1 <= i0 then Alcotest.failf "instrumented ran fewer instructions (%d <= %d)" i1 i0;
  if i1 > i0 * 20 then Alcotest.failf "slowdown implausibly high (%d vs %d)" i1 i0

(* Data addresses must be unchanged: a program that prints addresses of a
   global, the initial break and a stack local must print the same values
   instrumented and not. *)
let address_app =
  {|
long g = 5;
long main(void) {
  long local = 1;
  char *p = (char *) malloc(24);
  printf("g=%x heap=%x stack=%x\n", (long) &g, (long) p, (long) &local);
  return 0;
}
|}

let test_pristine_addresses () =
  let exe = compile address_app in
  let base = expect_exit0 "uninstrumented" (run exe) in
  (* the partitioned heap is the paper's mode for tools that need heap
     addresses identical to the uninstrumented run *)
  let options =
    { Atom.Instrument.default_options with
      Atom.Instrument.heap_mode = Atom.Instrument.Partitioned (1 lsl 22) }
  in
  let exe', _ = instrument ~options exe in
  let m = expect_exit0 "instrumented" (run exe') in
  Alcotest.(check string)
    "addresses unchanged" (Machine.Sim.stdout base) (Machine.Sim.stdout m)

(* Heap modes: with the linked sbrk the two allocators interleave; with the
   partitioned heap the application's allocations land exactly where the
   uninstrumented run put them even though the analysis allocates too. *)
let malloc_app =
  {|
long main(void) {
  char *a = (char *) malloc(100);
  char *b = (char *) malloc(100);
  printf("%x %x\n", (long) a, (long) b);
  return 0;
}
|}

let alloc_tool api =
  let open Atom.Api in
  add_call_proto api "Setup()";
  add_call_program api Program_before "Setup" []

let alloc_analysis =
  {|
void Setup(void) {
  /* disturb the heap before the application allocates */
  malloc(4096);
  malloc(4096);
}
|}

let test_heap_partitioned () =
  let exe = compile malloc_app in
  let base = expect_exit0 "base" (run exe) in
  let options =
    { Atom.Instrument.default_options with
      Atom.Instrument.heap_mode = Atom.Instrument.Partitioned (1 lsl 24) }
  in
  let exe', _ =
    Atom.Instrument.instrument_source ~options ~exe ~tool:alloc_tool
      ~analysis_src:alloc_analysis ()
  in
  let m = expect_exit0 "partitioned" (run exe') in
  Alcotest.(check string)
    "application heap addresses preserved" (Machine.Sim.stdout base)
    (Machine.Sim.stdout m)

let test_heap_linked_no_overlap () =
  let exe = compile malloc_app in
  let exe', _ =
    Atom.Instrument.instrument_source ~exe ~tool:alloc_tool
      ~analysis_src:alloc_analysis ()
  in
  let m = expect_exit0 "linked" (run exe') in
  (* with the linked heap, addresses shift but the program still works and
     the analysis' blocks don't collide with the application's *)
  match String.split_on_char ' ' (String.trim (Machine.Sim.stdout m)) with
  | [ a; b ] ->
      let a = int_of_string ("0x" ^ a) and b = int_of_string ("0x" ^ b) in
      if a = b then Alcotest.fail "allocations overlap";
      if b - a < 100 then Alcotest.fail "allocations too close"
  | _ -> Alcotest.fail "unexpected output"

let () =
  Alcotest.run "atom"
    [
      ( "branch tool",
        [
          Alcotest.test_case "paper example end-to-end" `Quick test_branch_tool;
          Alcotest.test_case "slowdown sane" `Quick test_slowdown_sane;
        ] );
      ( "pristine behaviour",
        [
          Alcotest.test_case "data/heap/stack addresses" `Quick test_pristine_addresses;
          Alcotest.test_case "partitioned heap" `Quick test_heap_partitioned;
          Alcotest.test_case "linked heap" `Quick test_heap_linked_no_overlap;
        ] );
    ]
