(* Generator tests: determinism, validity (every generated program
   compiles, terminates within fuel, and prints exactly what the
   interpreter-independent oracle predicts), and shrinking. *)

let fuel = 20_000_000

let compile t =
  let name = Printf.sprintf "progen_s%d_z%d.o" (Progen.seed t) (Progen.size t) in
  Rtlib.compile_and_link ~name (Progen.source t)

let run_stdout exe =
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:fuel m with
  | Machine.Sim.Exit 0 -> Machine.Sim.stdout m
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d" n
  | Machine.Sim.Fault f -> Alcotest.failf "fault %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "out of fuel"

(* -- determinism ---------------------------------------------------------- *)

let test_determinism () =
  List.iter
    (fun seed ->
      List.iter
        (fun size ->
          let a = Progen.generate ~seed ~size () in
          let b = Progen.generate ~seed ~size () in
          Alcotest.(check string)
            (Printf.sprintf "source seed=%d size=%d" seed size)
            (Progen.source a) (Progen.source b);
          Alcotest.(check string)
            (Printf.sprintf "oracle seed=%d size=%d" seed size)
            (Progen.expected_stdout a)
            (Progen.expected_stdout b))
        [ 1; 4; 10; 25 ])
    [ 0; 1; 2; 7; 42; 1000; 123456789 ]

let test_distinct_seeds () =
  (* different seeds should (essentially always) give different programs *)
  let a = Progen.generate ~seed:1 () and b = Progen.generate ~seed:2 () in
  Alcotest.(check bool) "distinct" true (Progen.source a <> Progen.source b)

(* -- validity + oracle agreement ------------------------------------------ *)

let test_compiles_and_matches_oracle () =
  for seed = 1 to 30 do
    let size = 2 + (seed mod 14) in
    let t = Progen.generate ~seed ~size () in
    let exe =
      try compile t
      with Minic.Driver.Error msg ->
        Alcotest.failf "seed %d size %d: frontend rejection: %s\n%s" seed size
          msg (Progen.source t)
    in
    let got = run_stdout exe in
    if not (String.equal got (Progen.expected_stdout t)) then
      Alcotest.failf "seed %d size %d: output mismatch\n--- expected\n%s--- got\n%s"
        seed size (Progen.expected_stdout t) got
  done

let test_checksum_line () =
  let t = Progen.generate ~seed:3 ~size:5 () in
  let expect = Progen.expected_stdout t in
  let prefix = Printf.sprintf "progen %d.%d: chk=" 3 5 in
  let has_final =
    String.length expect > 0
    && String.split_on_char '\n' expect
       |> List.exists (fun l -> String.length l >= String.length prefix
                                && String.sub l 0 (String.length prefix) = prefix)
  in
  Alcotest.(check bool) "final checksum line present" true has_final

(* -- shrinking ------------------------------------------------------------- *)

let test_shrink_strictly_smaller () =
  (* an always-true predicate makes every removal acceptable, so the
     shrinker must strictly reduce the weight and keep the invariant
     that the result still satisfies the predicate *)
  let t = Progen.generate ~seed:11 ~size:8 () in
  let always _ = true in
  let s = Progen.shrink t always in
  Alcotest.(check bool) "weight shrank" true
    (Progen.node_count s < Progen.node_count t);
  Alcotest.(check bool) "predicate holds" true (always s)

let test_shrink_preserves_predicate () =
  (* a predicate about the rendered source: shrinking keeps it while
     discarding unrelated statements *)
  let t = Progen.generate ~seed:5 ~size:10 () in
  let pred c =
    (* keep any program that still prints at least one tN= line *)
    let out = Progen.expected_stdout c in
    List.exists
      (fun l -> String.length l > 1 && l.[0] = 't')
      (String.split_on_char '\n' out)
    (* ... and still compiles + matches its own oracle *)
    && String.equal (run_stdout (compile c)) out
  in
  if pred t then begin
    let s = Progen.shrink t pred in
    Alcotest.(check bool) "shrunk not larger" true
      (Progen.node_count s <= Progen.node_count t);
    Alcotest.(check bool) "still satisfies" true (pred s)
  end

let test_shrunk_program_self_consistent () =
  let t = Progen.generate ~seed:21 ~size:6 () in
  let s = Progen.shrink t (fun _ -> true) in
  (* the shrunk program must still compile and agree with its own oracle *)
  let got = run_stdout (compile s) in
  Alcotest.(check string) "shrunk oracle agreement" (Progen.expected_stdout s) got

let test_repro_hint () =
  let t = Progen.generate ~seed:99 ~size:4 () in
  let h = Progen.repro_hint t in
  Alcotest.(check bool) "mentions seed" true
    (let re = "--seed 99" in
     let rec find i =
       i + String.length re <= String.length h
       && (String.sub h i (String.length re) = re || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "progen"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same bytes" `Quick test_determinism;
          Alcotest.test_case "distinct seeds differ" `Quick test_distinct_seeds;
        ] );
      ( "validity",
        [
          Alcotest.test_case "30 seeds compile and match the oracle" `Slow
            test_compiles_and_matches_oracle;
          Alcotest.test_case "final checksum line" `Quick test_checksum_line;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "strictly smaller" `Quick test_shrink_strictly_smaller;
          Alcotest.test_case "predicate preserved" `Slow test_shrink_preserves_predicate;
          Alcotest.test_case "shrunk program self-consistent" `Slow
            test_shrunk_program_self_consistent;
          Alcotest.test_case "repro hint" `Quick test_repro_hint;
        ] );
    ]
