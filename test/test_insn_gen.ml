(* Random instruction generation: a seeded generator over the four main
   instruction formats (memory, branch, integer operate, floating
   operate) drives two checks:

   - encode -> decode -> encode is the identity on the 32-bit word, so
     every generated instruction has a canonical binary form;

   - stepping a single generated instruction from a common random
     register state leaves the reference interpreter and the
     closure-compiled fast engine in identical states: registers, FP
     registers, PC, memory around any effective address, outcome and the
     full statistics record.  Instructions that fault do so identically
     under both engines. *)

let seed = 0x5EED_A70B

(* -- generator ----------------------------------------------------------- *)

let mem_ops =
  [ Alpha.Insn.Lda; Ldah; Ldbu; Ldwu; Ldl; Ldq; Ldq_u; Stb; Stw; Stl; Stq;
    Stq_u; Ldt; Stt ]

let opr_ops =
  [ Alpha.Insn.Addl; Subl; Addq; Subq; S4addq; S8addq; Mull; Mulq; Umulh;
    Cmpeq; Cmplt; Cmple; Cmpult; Cmpule; Cmpbge; And_; Bic; Bis; Ornot; Xor;
    Eqv; Sll; Srl; Sra; Zap; Zapnot; Extbl; Extwl; Extll; Extql; Insbl;
    Inswl; Insll; Insql; Mskbl; Mskwl; Mskll; Mskql; Cmoveq; Cmovne; Cmovlt;
    Cmovge; Cmovle; Cmovgt; Cmovlbs; Cmovlbc ]

let fop_ops =
  [ Alpha.Insn.Addt; Subt; Mult; Divt; Cmpteq; Cmptlt; Cmptle; Cvtqt; Cvttq;
    Cpys; Cpysn ]

let br_conds = [ Alpha.Insn.Beq; Bne; Blt; Ble; Bgt; Bge; Blbc; Blbs ]
let fbr_conds = [ Alpha.Insn.Fbeq; Fbne; Fblt; Fble; Fbgt; Fbge ]
let jmp_kinds = [ Alpha.Insn.Jmp; Jsr; Ret; Jsr_coroutine ]

let pick st l = List.nth l (Random.State.int st (List.length l))
let reg st = Random.State.int st 32

(* displacements stay small so branch targets land inside (or just past)
   the padded probe segment *)
let gen_insn st : Alpha.Insn.t =
  match Random.State.int st 6 with
  | 0 ->
      Mem
        {
          op = pick st mem_ops;
          ra = reg st;
          rb = reg st;
          disp = Random.State.int st 65536 - 32768;
        }
  | 1 ->
      let rb =
        if Random.State.bool st then Alpha.Insn.Reg (reg st)
        else Alpha.Insn.Imm (Random.State.int st 256)
      in
      Opr { op = pick st opr_ops; ra = reg st; rb; rc = reg st }
  | 2 -> Fop { op = pick st fop_ops; fa = reg st; fb = reg st; fc = reg st }
  | 3 ->
      Br
        {
          link = Random.State.bool st;
          ra = reg st;
          disp = Random.State.int st 8 - 2;
        }
  | 4 ->
      if Random.State.bool st then
        Cbr
          {
            cond = pick st br_conds;
            ra = reg st;
            disp = Random.State.int st 8 - 2;
          }
      else
        Fbr
          {
            cond = pick st fbr_conds;
            fa = reg st;
            disp = Random.State.int st 8 - 2;
          }
  | _ -> Jump { kind = pick st jmp_kinds; ra = reg st; rb = reg st; hint = 0 }

(* -- encode/decode roundtrip --------------------------------------------- *)

let test_roundtrip () =
  let st = Random.State.make [| seed |] in
  for i = 1 to 2000 do
    let insn = gen_insn st in
    let w = Alpha.Code.encode insn in
    let insn' = Alpha.Code.decode w in
    let w' = Alpha.Code.encode insn' in
    if w <> w' then
      Alcotest.failf "roundtrip %d: %#x re-encodes as %#x" i w w'
  done

(* -- single-step differential -------------------------------------------- *)

let nop_word = Alpha.Code.encode Alpha.Insn.nop

(* a probe image: the instruction under test at the entry point, padded
   with no-ops so small forward branch targets stay inside the segment *)
let make_exe w =
  let words = [ w; nop_word; nop_word; nop_word; nop_word; nop_word ] in
  let text = Bytes.create (4 * List.length words) in
  List.iteri (fun i w -> Alpha.Code.write_word text (4 * i) w) words;
  let data = Bytes.make 8192 '\000' in
  {
    Objfile.Exe.x_entry = Objfile.Exe.text_base;
    x_segs =
      [
        {
          Objfile.Exe.seg_vaddr = Objfile.Exe.text_base;
          seg_bytes = text;
          seg_bss = 0;
          seg_write = false;
        };
        {
          Objfile.Exe.seg_vaddr = Objfile.Exe.data_base;
          seg_bytes = data;
          seg_bss = 0;
          seg_write = true;
        };
      ];
    x_symbols = [];
    x_text_start = Objfile.Exe.text_base;
    x_text_size = Bytes.length text;
    x_data_start = Objfile.Exe.data_base;
    x_break = Objfile.Exe.data_base + Bytes.length data;
    x_code_refs = [];
  }

(* register values: a mix of small integers, data-segment addresses (so
   memory operands usually hit mapped pages) and arbitrary 64-bit
   patterns *)
let gen_reg_value st =
  match Random.State.int st 4 with
  | 0 -> Int64.of_int (Random.State.int st 256)
  | 1 | 2 ->
      Int64.of_int (Objfile.Exe.data_base + Random.State.int st 4096)
  | _ -> Random.State.int64 st Int64.max_int

let outcome_str = function
  | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
  | Machine.Sim.Fault f -> "fault " ^ Machine.Fault.to_string f
  | Machine.Sim.Out_of_fuel -> "out of fuel"

let step engine w regs fregs =
  let m = Machine.Sim.load ~engine (make_exe w) in
  for r = 0 to 30 do
    Machine.Sim.set_reg m r regs.(r);
    Machine.Sim.set_freg_bits m r fregs.(r)
  done;
  let outcome = Machine.Sim.run ~max_insns:1 m in
  (outcome, m)

let test_step_agreement () =
  let st = Random.State.make [| seed lxor 0xF00D |] in
  for i = 1 to 500 do
    let insn = gen_insn st in
    let w = Alpha.Code.encode insn in
    let regs = Array.init 31 (fun _ -> gen_reg_value st) in
    let fregs = Array.init 31 (fun _ -> gen_reg_value st) in
    let o_ref, m_ref = step Machine.Sim.Ref w regs fregs in
    let o_fast, m_fast = step Machine.Sim.Fast w regs fregs in
    let ctx = Printf.sprintf "insn %d (%#010x)" i w in
    if o_ref <> o_fast then
      Alcotest.failf "%s: outcome ref=%s fast=%s" ctx (outcome_str o_ref)
        (outcome_str o_fast);
    if Machine.Sim.pc m_ref <> Machine.Sim.pc m_fast then
      Alcotest.failf "%s: pc ref=%#x fast=%#x" ctx (Machine.Sim.pc m_ref)
        (Machine.Sim.pc m_fast);
    for r = 0 to 31 do
      if Machine.Sim.reg m_ref r <> Machine.Sim.reg m_fast r then
        Alcotest.failf "%s: $%d ref=%Lx fast=%Lx" ctx r
          (Machine.Sim.reg m_ref r) (Machine.Sim.reg m_fast r);
      if Machine.Sim.freg_bits m_ref r <> Machine.Sim.freg_bits m_fast r then
        Alcotest.failf "%s: $f%d ref=%Lx fast=%Lx" ctx r
          (Machine.Sim.freg_bits m_ref r)
          (Machine.Sim.freg_bits m_fast r)
    done;
    if Machine.Sim.stats m_ref <> Machine.Sim.stats m_fast then
      Alcotest.failf "%s: statistics records differ" ctx;
    (* for memory operands, probe the quadwords around the effective
       address in both memories *)
    (match insn with
    | Alpha.Insn.Mem { op; ra = _; rb; disp }
      when op <> Alpha.Insn.Lda && op <> Alpha.Insn.Ldah ->
        let base = if rb = 31 then 0L else regs.(rb) in
        let ea = Int64.to_int (Int64.add base (Int64.of_int disp)) in
        let a0 = ea land lnot 7 in
        List.iter
          (fun a ->
            if Machine.Sim.read_u64 m_ref a <> Machine.Sim.read_u64 m_fast a
            then
              Alcotest.failf "%s: memory at %#x differs (%Lx vs %Lx)" ctx a
                (Machine.Sim.read_u64 m_ref a)
                (Machine.Sim.read_u64 m_fast a))
          [ a0 - 8; a0; a0 + 8 ]
    | _ -> ())
  done

(* -- whole-program fault symmetry ---------------------------------------- *)

(* Deliberately-faulting programs long enough that the fast engine takes
   its batched (turbo) path: a prologue of safe arithmetic, then one wild
   memory access, then trailing instructions that must never execute.
   Both engines must report the same structured fault, at the same PC,
   with the same statistics — the fast engine has to unwind its batched
   counters back to the faulting instruction. *)

let make_prog words =
  let words = words @ [ nop_word; nop_word; nop_word ] in
  let text = Bytes.create (4 * List.length words) in
  List.iteri (fun i w -> Alpha.Code.write_word text (4 * i) w) words;
  let exe = make_exe nop_word in
  let seg_data = List.nth exe.Objfile.Exe.x_segs 1 in
  {
    exe with
    Objfile.Exe.x_segs =
      [
        {
          Objfile.Exe.seg_vaddr = Objfile.Exe.text_base;
          seg_bytes = text;
          seg_bss = 0;
          seg_write = false;
        };
        seg_data;
      ];
    x_text_size = Bytes.length text;
  }

let enc = Alpha.Code.encode

(* addq $r, imm, $r on scratch registers: never faults *)
let safe_op st =
  enc
    (Alpha.Insn.Opr
       {
         op = Alpha.Insn.Addq;
         ra = Random.State.int st 8;
         rb = Alpha.Insn.Imm (Random.State.int st 256);
         rc = Random.State.int st 8;
       })

(* one wild memory access; $10 is preloaded with the wild base address *)
let wild_sites =
  [
    (* load from the unmapped low pages *)
    (0x1000, enc (Mem { op = Alpha.Insn.Ldq; ra = 9; rb = 10; disp = 0 }));
    (* store into read-only text *)
    ( Objfile.Exe.text_base,
      enc (Mem { op = Alpha.Insn.Stq; ra = 9; rb = 10; disp = 0 }) );
    (* load from the text–data gap *)
    (0x1300_0000, enc (Mem { op = Alpha.Insn.Ldl; ra = 9; rb = 10; disp = 8 }));
    (* store far beyond the break *)
    ( 0x7f00_0000,
      enc (Mem { op = Alpha.Insn.Stb; ra = 9; rb = 10; disp = -4 }) );
    (* load below the stack's writable window *)
    ( Objfile.Exe.text_base - (64 * 1024 * 1024),
      enc (Mem { op = Alpha.Insn.Ldq_u; ra = 9; rb = 10; disp = 0 }) );
  ]

let run_prog engine exe wild_base fuel =
  let m = Machine.Sim.load ~engine exe in
  Machine.Sim.set_reg m 10 (Int64.of_int wild_base);
  let outcome = Machine.Sim.run ~max_insns:fuel m in
  (outcome, m)

let test_program_faults () =
  let st = Random.State.make [| seed lxor 0xFA17 |] in
  for i = 1 to 100 do
    let prologue = List.init (Random.State.int st 12) (fun _ -> safe_op st) in
    let wild_base, wild = pick st wild_sites in
    let exe = make_prog (prologue @ [ wild ] @ List.init 4 (fun _ -> safe_op st)) in
    let ctx = Printf.sprintf "program %d (prologue %d)" i (List.length prologue) in
    (* ample fuel: the fault must stop both engines identically *)
    let o_ref, m_ref = run_prog Machine.Sim.Ref exe wild_base 1000 in
    let o_fast, m_fast = run_prog Machine.Sim.Fast exe wild_base 1000 in
    if o_ref <> o_fast then
      Alcotest.failf "%s: outcome ref=%s fast=%s" ctx (outcome_str o_ref)
        (outcome_str o_fast);
    (match o_ref with
    | Machine.Sim.Fault (Machine.Fault.Segv _) -> ()
    | o -> Alcotest.failf "%s: expected segv, got %s" ctx (outcome_str o));
    if Machine.Sim.pc m_ref <> Machine.Sim.pc m_fast then
      Alcotest.failf "%s: pc ref=%#x fast=%#x" ctx (Machine.Sim.pc m_ref)
        (Machine.Sim.pc m_fast);
    let want_pc = Objfile.Exe.text_base + (4 * List.length prologue) in
    if Machine.Sim.pc m_ref <> want_pc then
      Alcotest.failf "%s: fault pc %#x, expected %#x" ctx
        (Machine.Sim.pc m_ref) want_pc;
    if Machine.Sim.stats m_ref <> Machine.Sim.stats m_fast then
      Alcotest.failf "%s: statistics records differ" ctx;
    (* fuel cut inside the prologue: both engines run out at the same
       spot with the same counters *)
    if prologue <> [] then begin
      let cut = 1 + Random.State.int st (List.length prologue) in
      let o_ref, m_ref = run_prog Machine.Sim.Ref exe wild_base cut in
      let o_fast, m_fast = run_prog Machine.Sim.Fast exe wild_base cut in
      if o_ref <> o_fast then
        Alcotest.failf "%s: fuel-cut outcome ref=%s fast=%s" ctx
          (outcome_str o_ref) (outcome_str o_fast);
      (match o_ref with
      | Machine.Sim.Out_of_fuel -> ()
      | o -> Alcotest.failf "%s: fuel cut %d: expected out of fuel, got %s"
               ctx cut (outcome_str o));
      if Machine.Sim.stats m_ref <> Machine.Sim.stats m_fast then
        Alcotest.failf "%s: fuel-cut statistics differ" ctx
    end
  done

(* -- random profiles over generated branchy programs --------------------- *)

(* Forward-only conditional branches over random register states, run
   three ways: reference, fast, and fast under a profile that predicts a
   random direction for every branch in the program.  Predictions are
   right or wrong at random, so the speculative superblock guards and
   their statistics unwind are exercised on arbitrary miss patterns; all
   three runs must agree on outcome, PC, every register and the full
   statistics record. *)
let test_random_profiles () =
  let st = Random.State.make [| seed lxor 0x6A0F11E |] in
  for i = 1 to 200 do
    let n = 8 + Random.State.int st 24 in
    let words =
      List.init n (fun _ ->
          if Random.State.int st 3 = 0 then
            enc
              (Alpha.Insn.Cbr
                 {
                   cond = pick st br_conds;
                   ra = Random.State.int st 8;
                   disp = Random.State.int st 6;
                 })
          else safe_op st)
    in
    let exe = make_prog words in
    let preds =
      List.concat
        (List.mapi
           (fun j w ->
             match Alpha.Code.decode w with
             | Alpha.Insn.Cbr _ ->
                 [ (Objfile.Exe.text_base + (4 * j), Random.State.bool st) ]
             | _ -> [])
           words)
    in
    let profile = Machine.Profile.of_predictions preds in
    let regs = Array.init 8 (fun _ -> Int64.of_int (Random.State.int st 512)) in
    let run engine profile =
      let m = Machine.Sim.load ~engine ?profile exe in
      Array.iteri (fun r v -> Machine.Sim.set_reg m r v) regs;
      let o = Machine.Sim.run ~max_insns:2000 m in
      (o, m)
    in
    let o_ref, m_ref = run Machine.Sim.Ref None in
    let o_fast, m_fast = run Machine.Sim.Fast None in
    let o_prof, m_prof = run Machine.Sim.Fast (Some profile) in
    let ctx = Printf.sprintf "branchy program %d (%d insns)" i n in
    let agree tag o m =
      if o_ref <> o then
        Alcotest.failf "%s: outcome ref=%s %s=%s" ctx (outcome_str o_ref) tag
          (outcome_str o);
      if Machine.Sim.pc m_ref <> Machine.Sim.pc m then
        Alcotest.failf "%s: pc ref=%#x %s=%#x" ctx (Machine.Sim.pc m_ref) tag
          (Machine.Sim.pc m);
      for r = 0 to 31 do
        if Machine.Sim.reg m_ref r <> Machine.Sim.reg m r then
          Alcotest.failf "%s: $%d ref=%Lx %s=%Lx" ctx r
            (Machine.Sim.reg m_ref r) tag (Machine.Sim.reg m r)
      done;
      if Machine.Sim.stats m_ref <> Machine.Sim.stats m then
        Alcotest.failf "%s: statistics records differ (%s)" ctx tag
    in
    agree "fast" o_fast m_fast;
    agree "profiled" o_prof m_prof
  done

(* illegal words and unhandled PAL calls must fault identically *)
let test_fault_symmetry () =
  List.iter
    (fun w ->
      let regs = Array.make 31 0L and fregs = Array.make 31 0L in
      let o_ref, _ = step Machine.Sim.Ref w regs fregs in
      let o_fast, _ = step Machine.Sim.Fast w regs fregs in
      if o_ref <> o_fast then
        Alcotest.failf "word %#x: ref=%s fast=%s" w (outcome_str o_ref)
          (outcome_str o_fast);
      match o_ref with
      | Machine.Sim.Fault _ -> ()
      | o -> Alcotest.failf "word %#x: expected fault, got %s" w (outcome_str o))
    [ 0x0000_0000 (* call_pal 0 *); 0x1c00_0000 (* unallocated opcode *) ]

let () =
  Alcotest.run "insn-gen"
    [
      ( "generated instructions",
        [
          Alcotest.test_case "encode/decode/encode identity" `Quick
            test_roundtrip;
          Alcotest.test_case "single-step engine agreement" `Quick
            test_step_agreement;
          Alcotest.test_case "fault symmetry" `Quick test_fault_symmetry;
          Alcotest.test_case "faulting programs" `Quick test_program_faults;
          Alcotest.test_case "random profiles over branchy programs" `Quick
            test_random_profiles;
        ] );
    ]
