(* Assembler tests: directives, macro expansions, relocations, error
   handling — plus an executable property: `ldiq` materialises any 64-bit
   constant correctly (checked by running the result). *)

let assemble src = Asmlib.Assemble.assemble ~name:"t.s" src

let link u = Linker.Link.link [ Linker.Link.Unit u ]

let test_sections_and_symbols () =
  let u =
    assemble
      {|
        .text
        .globl f
        .ent f
f:      ret
        .end f
helper: nop
        .data
        .globl tab
tab:    .quad 1, 2, 3
        .asciiz "xyz"
        .comm zone, 64
|}
  in
  let open Objfile in
  Alcotest.(check int) "text bytes" 8 (Bytes.length u.Unit_file.u_text);
  Alcotest.(check int) "data bytes" (24 + 4) (Bytes.length u.Unit_file.u_data);
  Alcotest.(check int) "bss" 64 u.Unit_file.u_bss_size;
  (match Unit_file.find_symbol u "f" with
  | Some s ->
      Alcotest.(check bool) "f global" true (s.Types.s_binding = Types.Global);
      Alcotest.(check bool) "f func" true (s.Types.s_type = Types.Func);
      Alcotest.(check int) "f size" 4 s.Types.s_size
  | None -> Alcotest.fail "no symbol f");
  (match Unit_file.find_symbol u "helper" with
  | Some s -> Alcotest.(check bool) "helper local" true (s.Types.s_binding = Types.Local)
  | None -> Alcotest.fail "no symbol helper");
  match Unit_file.find_symbol u "zone" with
  | Some { Types.s_def = Types.Defined (Types.Bss, 0); _ } -> ()
  | _ -> Alcotest.fail "zone not in bss"

let test_local_branch_resolution () =
  (* local branches are patched by the assembler, not relocated *)
  let u =
    assemble {|
        .text
top:    nop
        br top
        beq $1, top
|}
  in
  Alcotest.(check int) "no branch relocs" 0
    (List.length
       (List.filter
          (fun (_, r) -> r.Objfile.Types.r_kind = Objfile.Types.R_br21)
          u.Objfile.Unit_file.u_relocs));
  let w = Alpha.Code.read_word u.Objfile.Unit_file.u_text 4 in
  match Alpha.Code.decode w with
  | Alpha.Insn.Br { disp = -2; _ } -> ()
  | i -> Alcotest.failf "unexpected %s" (Alpha.Insn.to_string i)

let test_extern_branch_reloc () =
  let u = assemble {|
        .text
        bsr $26, elsewhere
|} in
  match u.Objfile.Unit_file.u_relocs with
  | [ (Objfile.Types.Text, r) ] ->
      Alcotest.(check string) "symbol" "elsewhere" r.Objfile.Types.r_symbol;
      Alcotest.(check bool) "kind" true (r.Objfile.Types.r_kind = Objfile.Types.R_br21)
  | _ -> Alcotest.fail "expected exactly one branch relocation"

let test_errors () =
  let expect_error src =
    match assemble src with
    | _ -> Alcotest.failf "assembled bogus input: %s" src
    | exception Asmlib.Assemble.Error _ -> ()
  in
  expect_error "l: nop\nl: nop\n";  (* duplicate label *)
  expect_error "\taddq $1, 300, $2\n";  (* literal out of range *)
  expect_error "\t.data\nx:\t.text\n\tbeq $1, x\n";  (* branch to data *)
  expect_error "\tfrobnicate $1\n"  (* unknown mnemonic *)

let run_and_reg1 u =
  let exe = link u in
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:1000 m with
  | Machine.Sim.Exit 0 -> Machine.Sim.reg m 1
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d" n
  | Machine.Sim.Fault f -> Alcotest.failf "fault %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "fuel"

let prop_ldiq =
  QCheck.Test.make ~count:300 ~name:"ldiq materialises any constant"
    (QCheck.make
       ~print:Int64.to_string
       QCheck.Gen.(
         oneof
           [
             map Int64.of_int (int_range (-40000) 40000);
             map Int64.of_int (int_range (-0x8000_0000) 0x7FFF_0000);
             ui64;
           ]))
    (fun v64 ->
      let v = Int64.to_int v64 in
      let src =
        Printf.sprintf
          {|
        .text
        .globl __start
__start:
        ldiq $1, %d
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
          v
      in
      run_and_reg1 (assemble src) = Int64.of_int v)

let prop_print_parse =
  (* the assembly printer emits text the parser accepts and that
     assembles to the same bytes *)
  QCheck.Test.make ~count:100 ~name:"printed assembly reassembles identically"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 10)
           (oneofl
              [
                "\taddq $1, $2, $3";
                "\tldq $4, 16($30)";
                "\tstq $4, -8($30)";
                "\tbeq $5, done";
                "\tcpys $f1, $f2, $f3";
                "\tldt $f4, 0($30)";
                "\tnop";
                "\tret";
              ])))
    (fun lines ->
      let src = ".text\ndone:\n" ^ String.concat "\n" lines ^ "\n" in
      let u1 = assemble src in
      let stmts = Asmlib.Parse.program src in
      let buf = Buffer.create 256 in
      Asmlib.Src.print_program buf stmts;
      let u2 = Asmlib.Assemble.assemble ~name:"t.s" (Buffer.contents buf) in
      u1.Objfile.Unit_file.u_text = u2.Objfile.Unit_file.u_text)

let test_string_escapes () =
  let u = assemble "\t.data\ns:\t.asciiz \"a\\tb\\n\\x41\\\\\"\n" in
  Alcotest.(check string) "escaped bytes" "a\tb\nA\\\000"
    (Bytes.to_string u.Objfile.Unit_file.u_data)

let test_literal_pool_dedup () =
  (* the same 64-bit constant used twice occupies one pool slot *)
  let u =
    assemble
      {|
        .text
        ldiq $1, 0x123456789abcdef0
        ldiq $2, 0x123456789abcdef0
|}
  in
  Alcotest.(check int) "one pool entry" 8 (Bytes.length u.Objfile.Unit_file.u_rdata)

let props = List.map QCheck_alcotest.to_alcotest [ prop_ldiq; prop_print_parse ]

let () =
  Alcotest.run "asm"
    [
      ( "unit",
        [
          Alcotest.test_case "sections and symbols" `Quick test_sections_and_symbols;
          Alcotest.test_case "local branch resolution" `Quick test_local_branch_resolution;
          Alcotest.test_case "extern branch reloc" `Quick test_extern_branch_reloc;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "string escapes" `Quick test_string_escapes;
          Alcotest.test_case "literal pool dedup" `Quick test_literal_pool_dedup;
        ] );
      ("properties", props);
    ]
