(* End-to-end Mini-C tests: compile -> link with the runtime -> simulate. *)

let run ?stdin ?(inputs = []) src =
  let exe = Rtlib.compile_and_link ~name:"test.o" src in
  let m = Machine.Sim.load ?stdin ~inputs exe in
  let outcome = Machine.Sim.run ~max_insns:200_000_000 m in
  (outcome, m)

let check_program ?stdin ?inputs ~expect src () =
  let outcome, m = run ?stdin ?inputs src in
  (match outcome with
  | Machine.Sim.Exit 0 -> ()
  | Machine.Sim.Exit n -> Alcotest.failf "exit %d; stderr: %s" n (Machine.Sim.stderr m)
  | Machine.Sim.Fault f ->
      Alcotest.failf "fault: %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "out of fuel");
  Alcotest.(check string) "stdout" expect (Machine.Sim.stdout m)

let t name ?stdin ?inputs ~expect src =
  Alcotest.test_case name `Quick (check_program ?stdin ?inputs ~expect src)

let basics =
  [
    t "hello world" ~expect:"hello, world\n"
      {| long main(void) { printf("hello, world\n"); return 0; } |};
    t "arithmetic and printf" ~expect:"42 -7 2a 052\n"
      {| long main(void) { printf("%d %d %x %03d\n", 6*7, -7, 42, 52); return 0; } |};
    t "division helpers" ~expect:"7 -7 1 -1 3\n"
      {|
long main(void) {
  long a = 22, b = 3;
  printf("%d %d %d %d %d\n", a / b, -a / b, a % b, -a % b, 7 % 4);
  return 0;
}
|};
    t "while loop sum" ~expect:"5050\n"
      {|
long main(void) {
  long i = 0, s = 0;
  while (i <= 100) { s += i; i++; }
  printf("%d\n", s);
  return 0;
}
|};
    t "for loop and break/continue" ~expect:"2 4 6 8\n"
      {|
long main(void) {
  long i;
  for (i = 1; ; i++) {
    if (i > 9) break;
    if (i % 2) continue;
    if (i > 2) putchar(' ');
    printf("%d", i);
  }
  putchar('\n');
  return 0;
}
|};
    t "recursion (fib)" ~expect:"fib(15)=610\n"
      {|
long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
long main(void) { printf("fib(15)=%d\n", fib(15)); return 0; }
|};
    t "strings and chars" ~expect:"len=5 cmp=0 cat=abcde\n"
      {|
long main(void) {
  char buf[32];
  strcpy(buf, "abc");
  strcat(buf, "de");
  printf("len=%d cmp=%d cat=%s\n", strlen(buf), strcmp(buf, "abcde"), buf);
  return 0;
}
|};
    t "pointers and arrays" ~expect:"30 30 7\n"
      {|
long g[20];
long main(void) {
  long *p = g;
  long i;
  for (i = 0; i < 20; i++) g[i] = i * 3;
  printf("%d %d %d\n", g[10/2*2], *(p + 10), p[2] + g[0] + 1);
  return 0;
}
|};
    t "structs" ~expect:"x=3 y=4 norm2=25\n"
      {|
struct point { long x; long y; };
long norm2(struct point *p) { return p->x * p->x + p->y * p->y; }
long main(void) {
  struct point pt;
  pt.x = 3;
  pt.y = 4;
  printf("x=%d y=%d norm2=%d\n", pt.x, pt.y, norm2(&pt));
  return 0;
}
|};
    t "malloc/free" ~expect:"sum=4950 reuse=1\n"
      {|
long main(void) {
  long *a = (long *) malloc(100 * sizeof(long));
  long i, s = 0;
  void *p, *q;
  for (i = 0; i < 100; i++) a[i] = i;
  for (i = 0; i < 100; i++) s += a[i];
  p = malloc(64);
  free(p);
  q = malloc(64);
  printf("sum=%d reuse=%d\n", s, p == q);
  return 0;
}
|};
    t "doubles" ~expect:"pi=3.141593 sqrt2=1.414214 big=123456.750000\n"
      {|
long main(void) {
  double pi = 3.14159265358979;
  printf("pi=%f sqrt2=%f big=%f\n", pi, sqrt(2.0), 123456.75);
  return 0;
}
|};
    t "double arith and compare" ~expect:"1 0 1 2.500000 -5\n"
      {|
long main(void) {
  double a = 2.5, b = 7.5;
  printf("%d %d %d %f %d\n", a < b, a == b, b / a == 3.0, b - 5.0, (long)(a - b));
  return 0;
}
|};
    t "logical operators" ~expect:"1 0 1 1 0\n"
      {|
long side_effects = 0;
long bump(void) { side_effects++; return 1; }
long main(void) {
  long a = (1 && 2);
  long b = (0 && bump());
  long c = (0 || 3);
  long d = !0;
  printf("%d %d %d %d %d\n", a, b, c, d, side_effects);
  return 0;
}
|};
    t "ternary and compound assignment" ~expect:"8 20 2\n"
      {|
long main(void) {
  long x = 4;
  x <<= 1;
  printf("%d ", x);
  x = x > 5 ? x * 2 + 4 : 0;
  printf("%d ", x);
  x /= 10;
  printf("%d\n", x);
  return 0;
}
|};
    t "function pointers" ~expect:"9 16\n"
      {|
long sq(long x) { return x * x; }
long apply(long (*f)(long), long v) { return f(v); }
long main(void) {
  long (*g)(long) = sq;
  printf("%d %d\n", apply(sq, 3), g(4));
  return 0;
}
|};
    t "varargs walk" ~expect:"a+b+c=60\n"
      {|
long sum3(long n, ...) {
  long *ap = (long *) &n + 1;
  long s = 0, i;
  for (i = 0; i < n; i++) s += ap[i];
  return s;
}
long main(void) { printf("a+b+c=%d\n", sum3(3, 10, 20, 30)); return 0; }
|};
    t "file io" ~expect:"read back: payload 77\n"
      {|
long main(void) {
  void *f = fopen("out.txt", "w");
  char buf[64];
  long n, fd;
  fprintf(f, "payload %d", 77);
  fclose(f);
  fd = open("out.txt", 0);
  n = read(fd, buf, 63);
  buf[n] = 0;
  close(fd);
  printf("read back: %s\n", buf);
  return 0;
}
|};
    t "stdin" ~stdin:"41" ~expect:"42\n"
      {|
long main(void) {
  char buf[16];
  long n = read(0, buf, 15);
  buf[n] = 0;
  printf("%d\n", atoi(buf) + 1);
  return 0;
}
|};
    t "globals with initialisers" ~expect:"7 99 3.500000 hi 11\n"
      {|
long g = 7;
long table[5] = {99, 98, 97};
double gd = 3.5;
char *msg = "hi";
long sum2(long a, long b) { return a + b; }
long (*fptr)(long, long) = sum2;
long main(void) {
  printf("%d %d %f %s %d\n", g, table[0], gd, msg, fptr(5, 6));
  return 0;
}
|};
    t "char array globals" ~expect:"abc/3\n"
      {|
char word[8] = {'a', 'b', 'c'};
long main(void) { printf("%s/%d\n", word, strlen(word)); return 0; }
|};
    t "shifts and bit ops" ~expect:"80 -2 5 7 -16\n"
      {|
long main(void) {
  long x = 5;
  printf("%d %d %d %d %d\n", x << 4, -8 >> 2, x & 7, x | 2, ~15);
  return 0;
}
|};
    t "do-while" ~expect:"3 2 1 0\n"
      {|
long main(void) {
  long i = 3;
  do {
    printf("%d", i);
    if (i) putchar(' ');
    i--;
  } while (i >= 0);
  putchar('\n');
  return 0;
}
|};
    t "sizeof" ~expect:"8 1 8 40 16\n"
      {|
struct pair { long a; char c; };
long main(void) {
  long arr[5];
  printf("%d %d %d %d %d\n", sizeof(long), sizeof(char), sizeof(long *),
         sizeof(arr), sizeof(struct pair));
  return 0;
}
|};
    t "pre/post increment" ~expect:"5 7 7 6\n"
      {|
long main(void) {
  long x = 5;
  printf("%d ", x++);
  printf("%d ", ++x);
  printf("%d ", x--);
  printf("%d\n", x);
  return 0;
}
|};
    t "many arguments (stack passing)" ~expect:"78\n"
      {|
long add12(long a, long b, long c, long d, long e, long f,
           long g, long h, long i, long j, long k, long l) {
  return a + b + c + d + e + f + g + h + i + j + k + l;
}
long main(void) {
  printf("%d\n", add12(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));
  return 0;
}
|};
  ]

let () = Alcotest.run "minic" [ ("programs", basics) ]
