(* Executable-image fuzzing: `Objfile.Exe.of_string` confronted with
   damaged bytes must either produce a structurally valid image or raise
   `Objfile.Wire.Corrupt` — never `Invalid_argument`, `Failure`,
   `Out_of_memory` or any other exception.  Two sources of damage:

   - the checked-in seed corpus under test/corpus/ (truncations, magic
     damage, targeted bit flips — see its README);
   - thousands of fresh seeded corruptions of a just-linked image.

   Images that do load are additionally run briefly under both engines,
   which must agree on the outcome: a bit flip that survives validation
   becomes a differential test case for free. *)

let make_exe () =
  let src =
    {|
        .text
        .globl __start
__start:
        clr $16
        ldiq $0, 1
        call_pal 0x83
        .data
msg:    .asciiz "corpus"
|}
  in
  let u = Asmlib.Assemble.assemble ~name:"c.s" src in
  Linker.Link.link [ Linker.Link.Unit u ]

(* feed one blob to the loader; string result describes the fate *)
let load_fate blob =
  match Objfile.Exe.of_string blob with
  | exception Objfile.Wire.Corrupt _ -> Ok "rejected"
  | exception e -> Error (Printexc.to_string e)
  | exe -> (
      (* a loaded image must also run without escaping *)
      match
        List.map
          (fun engine ->
            let m = Machine.Sim.load ~engine exe in
            Machine.Sim.run ~max_insns:10_000 m)
          [ Machine.Sim.Ref; Machine.Sim.Fast ]
      with
      | exception e -> Error ("run: " ^ Printexc.to_string e)
      | [ o_ref; o_fast ] ->
          if o_ref = o_fast then Ok "loaded"
          else Error "engines disagree on corrupted image"
      | _ -> assert false)

let check_fate name blob =
  match load_fate blob with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: escaped with %s" name e

let corpus_dir =
  (* dune runtest executes in the build tree's test directory, where the
     dep glob places corpus/; `dune exec` from the project root sees the
     source copy instead *)
  if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let test_seed_corpus () =
  let entries = Sys.readdir corpus_dir in
  Array.sort compare entries;
  let n = ref 0 in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".aexe" then begin
        incr n;
        let blob =
          In_channel.with_open_bin (Filename.concat corpus_dir f)
            In_channel.input_all
        in
        check_fate f blob
      end)
    entries;
  if !n < 10 then Alcotest.failf "corpus too small: %d files" !n;
  (* the pristine member must still load *)
  let blob =
    In_channel.with_open_bin (Filename.concat corpus_dir "valid.aexe")
      In_channel.input_all
  in
  match load_fate blob with
  | Ok "loaded" -> ()
  | Ok f -> Alcotest.failf "valid.aexe: expected to load, got %s" f
  | Error e -> Alcotest.failf "valid.aexe: %s" e

let test_truncations () =
  let blob = Objfile.Exe.to_string (make_exe ()) in
  let n = String.length blob in
  (* every prefix length in the header region, then a spread across the
     rest of the image *)
  for k = 0 to min n 96 do
    check_fate (Printf.sprintf "truncate@%d" k) (String.sub blob 0 k)
  done;
  let rng = Random.State.make [| 0x7A11 |] in
  for _ = 1 to 400 do
    let k = Random.State.int rng n in
    check_fate (Printf.sprintf "truncate@%d" k) (String.sub blob 0 k)
  done

let test_bit_flips () =
  let blob = Objfile.Exe.to_string (make_exe ()) in
  let n = String.length blob in
  let rng = Random.State.make [| 0xB17F11 |] in
  for i = 1 to 2000 do
    let b = Bytes.of_string blob in
    let pos = Random.State.int rng n in
    let bit = Random.State.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    check_fate (Printf.sprintf "flip %d @%d.%d" i pos bit) (Bytes.to_string b)
  done

let test_garbage () =
  let rng = Random.State.make [| 0x6A12BA6E |] in
  for i = 1 to 500 do
    let len = Random.State.int rng 512 in
    let blob = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    check_fate (Printf.sprintf "garbage %d (len %d)" i len) blob
  done;
  (* garbage wearing a valid magic *)
  for i = 1 to 500 do
    let len = Random.State.int rng 256 in
    let blob =
      "AEXE2\n"
      ^ String.init len (fun _ -> Char.chr (Random.State.int rng 256))
    in
    check_fate (Printf.sprintf "magic-garbage %d (len %d)" i len) blob
  done

let () =
  Alcotest.run "exe-fuzz"
    [
      ( "malformed images",
        [
          Alcotest.test_case "seed corpus" `Quick test_seed_corpus;
          Alcotest.test_case "truncations" `Quick test_truncations;
          Alcotest.test_case "bit flips" `Quick test_bit_flips;
          Alcotest.test_case "random garbage" `Quick test_garbage;
        ] );
    ]
