(* Simulator semantics: every integer operate instruction is checked
   against an independent OCaml reference on random operands by actually
   assembling, linking and running a probe program.  Plus memory and VFS
   unit tests, and FP operation checks. *)

let probe_src insn_text a b =
  Printf.sprintf
    {|
        .text
        .globl __start
__start:
        ldiq $1, %d
        ldiq $2, %d
        %s
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
    a b insn_text

let run_probe src =
  let u = Asmlib.Assemble.assemble ~name:"p.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:1000 m with
  | Machine.Sim.Exit 0 -> m
  | Machine.Sim.Exit n -> Alcotest.failf "probe exit %d" n
  | Machine.Sim.Fault f ->
      Alcotest.failf "probe fault %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.fail "probe fuel"

let reg3 src = Machine.Sim.reg (run_probe src) 3

(* the independent reference semantics *)
let sext32 v = Int64.of_int32 (Int64.to_int32 v)
let bool64 b = if b then 1L else 0L

let reference op (a : int64) (b : int64) : int64 =
  let sh = Int64.to_int b land 63 in
  let byte_off = 8 * (Int64.to_int b land 7) in
  match op with
  | "addq" -> Int64.add a b
  | "subq" -> Int64.sub a b
  | "mulq" -> Int64.mul a b
  | "addl" -> sext32 (Int64.add a b)
  | "subl" -> sext32 (Int64.sub a b)
  | "mull" -> sext32 (Int64.mul a b)
  | "s4addq" -> Int64.add (Int64.shift_left a 2) b
  | "s8addq" -> Int64.add (Int64.shift_left a 3) b
  | "cmpeq" -> bool64 (Int64.equal a b)
  | "cmplt" -> bool64 (Int64.compare a b < 0)
  | "cmple" -> bool64 (Int64.compare a b <= 0)
  | "cmpult" -> bool64 (Int64.unsigned_compare a b < 0)
  | "cmpule" -> bool64 (Int64.unsigned_compare a b <= 0)
  | "and" -> Int64.logand a b
  | "bis" -> Int64.logor a b
  | "xor" -> Int64.logxor a b
  | "bic" -> Int64.logand a (Int64.lognot b)
  | "ornot" -> Int64.logor a (Int64.lognot b)
  | "eqv" -> Int64.logxor a (Int64.lognot b)
  | "sll" -> Int64.shift_left a sh
  | "srl" -> Int64.shift_right_logical a sh
  | "sra" -> Int64.shift_right a sh
  | "extbl" -> Int64.logand (Int64.shift_right_logical a byte_off) 0xFFL
  | "extwl" -> Int64.logand (Int64.shift_right_logical a byte_off) 0xFFFFL
  | "extll" -> Int64.logand (Int64.shift_right_logical a byte_off) 0xFFFFFFFFL
  | "extql" -> Int64.shift_right_logical a byte_off
  | "insbl" -> Int64.shift_left (Int64.logand a 0xFFL) byte_off
  | "mskbl" -> Int64.logand a (Int64.lognot (Int64.shift_left 0xFFL byte_off))
  | "zapnot" ->
      let m = Int64.to_int b land 0xFF in
      let r = ref 0L in
      for i = 0 to 7 do
        if m land (1 lsl i) <> 0 then
          r := Int64.logor !r (Int64.logand a (Int64.shift_left 0xFFL (8 * i)))
      done;
      !r
  | "cmpbge" ->
      let r = ref 0L in
      for i = 0 to 7 do
        let ab = Int64.to_int (Int64.logand (Int64.shift_right_logical a (8 * i)) 0xFFL) in
        let bb = Int64.to_int (Int64.logand (Int64.shift_right_logical b (8 * i)) 0xFFL) in
        if ab >= bb then r := Int64.logor !r (Int64.of_int (1 lsl i))
      done;
      !r
  | "umulh" ->
      (* reference via arbitrary-precision-free method: split multiply *)
      let mask = 0xFFFFFFFFL in
      let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
      let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
      let ll = Int64.mul al bl and lh = Int64.mul al bh in
      let hl = Int64.mul ah bl and hh = Int64.mul ah bh in
      let mid =
        Int64.add
          (Int64.add (Int64.logand lh mask) (Int64.logand hl mask))
          (Int64.shift_right_logical ll 32)
      in
      Int64.add
        (Int64.add hh (Int64.shift_right_logical lh 32))
        (Int64.add (Int64.shift_right_logical hl 32) (Int64.shift_right_logical mid 32))
  | _ -> failwith ("no reference for " ^ op)

let ops =
  [ "addq"; "subq"; "mulq"; "addl"; "subl"; "mull"; "s4addq"; "s8addq";
    "cmpeq"; "cmplt"; "cmple"; "cmpult"; "cmpule"; "and"; "bis"; "xor";
    "bic"; "ornot"; "eqv"; "sll"; "srl"; "sra"; "extbl"; "extwl"; "extll";
    "extql"; "insbl"; "mskbl"; "zapnot"; "cmpbge"; "umulh" ]

let prop_operate =
  QCheck.Test.make ~count:250
    ~name:"operate instructions match the reference semantics"
    (QCheck.make
       ~print:(fun (op, a, b) -> Printf.sprintf "%s %d %d" op a b)
       QCheck.Gen.(
         triple (oneofl ops)
           (oneof [ int_range (-1000) 1000; int ])
           (oneof [ int_range (-1000) 1000; int ])))
    (fun (op, a, b) ->
      let got = reg3 (probe_src (Printf.sprintf "%s $1, $2, $3" op) a b) in
      got = reference op (Int64.of_int a) (Int64.of_int b))

let test_cmov () =
  let t insn a b expected =
    Alcotest.(check int64) insn expected (reg3 (probe_src ("clr $3\n\t" ^ insn) a b))
  in
  t "cmoveq $1, $2, $3" 0 55 55L;
  t "cmoveq $1, $2, $3" 1 55 0L;
  t "cmovne $1, $2, $3" 7 99 99L;
  t "cmovlt $1, $2, $3" (-1) 42 42L;
  t "cmovge $1, $2, $3" (-1) 42 0L;
  t "cmovlbs $1, $2, $3" 3 8 8L

let test_fp_ops () =
  (* compute (2.5 + 1.5) * 4.0 / 8.0 - check the bit pattern of 2.0 *)
  let src =
    {|
        .text
        .globl __start
__start:
        ldit $f1, 2.5
        ldit $f2, 1.5
        addt $f1, $f2, $f3
        ldit $f4, 4.0
        mult $f3, $f4, $f3
        ldit $f5, 8.0
        divt $f3, $f5, $f3
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let m = run_probe src in
  Alcotest.(check int64) "fp arithmetic" (Int64.bits_of_float 2.0)
    (Machine.Sim.freg_bits m 3)

let test_fp_convert () =
  let src =
    {|
        .text
        .globl __start
__start:
        ldiq $1, -17
        lda $30, -8($30)
        stq $1, 0($30)
        ldt $f1, 0($30)
        cvtqt $f31, $f1, $f2      # integer bits -> -17.0
        cvttq $f31, $f2, $f3      # back to integer bits
        stt $f3, 0($30)
        ldq $3, 0($30)
        lda $30, 8($30)
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let m = run_probe src in
  Alcotest.(check int64) "cvtqt/cvttq roundtrip" (-17L) (Machine.Sim.reg m 3)

let test_loads_stores () =
  let src =
    {|
        .data
buf:    .quad 0
        .text
        .globl __start
__start:
        ldiq $1, 0x1122334455667788
        lda $4, buf
        stq $1, 0($4)
        ldbu $3, 2($4)            # byte 2 = 0x66
        ldwu $5, 2($4)            # word at 2 = 0x5566
        ldl $6, 4($4)             # long at 4 = 0x11223344
        stb $31, 7($4)
        ldq $7, 0($4)             # top byte cleared
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let m = run_probe src in
  Alcotest.(check int64) "ldbu" 0x66L (Machine.Sim.reg m 3);
  Alcotest.(check int64) "ldwu" 0x5566L (Machine.Sim.reg m 5);
  Alcotest.(check int64) "ldl" 0x11223344L (Machine.Sim.reg m 6);
  Alcotest.(check int64) "stb clears top byte" 0x0022334455667788L (Machine.Sim.reg m 7)

let test_ldq_u () =
  let src =
    {|
        .data
buf:    .quad 0x1111111111111111, 0x2222222222222222
        .text
        .globl __start
__start:
        lda $4, buf
        ldq_u $3, 3($4)           # rounds down to buf
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  Alcotest.(check int64) "ldq_u aligns" 0x1111111111111111L
    (Machine.Sim.reg (run_probe src) 3)

(* -- memory -------------------------------------------------------------- *)

let prop_mem_roundtrip =
  QCheck.Test.make ~count:500 ~name:"memory write/read roundtrip (incl. page splits)"
    (QCheck.make QCheck.Gen.(pair (int_range 0 20000) ui64))
    (fun (addr, v) ->
      let mem = Machine.Mem.create () in
      (* offset near a page boundary to exercise the split paths *)
      let addr = addr + 4090 in
      Machine.Mem.write_u64 mem addr v;
      Machine.Mem.read_u64 mem addr = v
      && Machine.Mem.read_u8 mem addr = Int64.to_int (Int64.logand v 0xFFL))

let test_mem_block_and_strings () =
  let mem = Machine.Mem.create () in
  Machine.Mem.write_bytes mem 100 (Bytes.of_string "hello\000world");
  Alcotest.(check string) "cstring" "hello" (Machine.Mem.read_cstring mem 100);
  Alcotest.(check string) "block" "lo\000wo"
    (Bytes.to_string (Machine.Mem.read_block mem 103 5))

(* -- vfs ------------------------------------------------------------------ *)

let test_vfs () =
  let v = Machine.Vfs.create ~stdin:"input!" () in
  Machine.Vfs.add_input v "data.txt" "contents";
  let buf = Bytes.create 3 in
  Alcotest.(check int) "stdin read" 3 (Machine.Vfs.sys_read v 0 buf);
  Alcotest.(check string) "stdin data" "inp" (Bytes.to_string buf);
  let fd = Machine.Vfs.sys_open v "data.txt" 0 in
  Alcotest.(check bool) "fd >= 3" true (fd >= 3);
  let big = Bytes.create 64 in
  Alcotest.(check int) "file read" 8 (Machine.Vfs.sys_read v fd big);
  Alcotest.(check int) "eof" 0 (Machine.Vfs.sys_read v fd big);
  Alcotest.(check int) "close" 0 (Machine.Vfs.sys_close v fd);
  let wfd = Machine.Vfs.sys_open v "out.txt" 1 in
  ignore (Machine.Vfs.sys_write v wfd "abc");
  ignore (Machine.Vfs.sys_write v wfd "def");
  Alcotest.(check (list (pair string string))) "outputs"
    [ ("out.txt", "abcdef") ]
    (Machine.Vfs.output_files v);
  Alcotest.(check int) "write to bad fd" (-1) (Machine.Vfs.sys_write v 40 "x");
  (* a file written then reopened for reading sees its contents *)
  let rfd = Machine.Vfs.sys_open v "out.txt" 0 in
  let b6 = Bytes.create 6 in
  ignore (Machine.Vfs.sys_read v rfd b6);
  Alcotest.(check string) "readback" "abcdef" (Bytes.to_string b6)

(* -- syscall edge cases, identical under both engines --------------------- *)

(* run the same image (with the same stdin and input files) under the
   reference interpreter and the fast engine and insist on identical
   behaviour, then hand the fast-engine machine to the caller's checks *)
let run_both_engines ?(stdin = "") ?(inputs = []) src =
  let u = Asmlib.Assemble.assemble ~name:"e.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let run engine =
    let m = Machine.Sim.load ~engine ~stdin ~inputs exe in
    (Machine.Sim.run ~max_insns:100000 m, m)
  in
  let o_ref, m_ref = run Machine.Sim.Ref in
  let o_fast, m_fast = run Machine.Sim.Fast in
  Alcotest.(check bool) "engines agree on outcome" true (o_ref = o_fast);
  Alcotest.(check bool)
    "engines agree on stats" true
    (Machine.Sim.stats m_ref = Machine.Sim.stats m_fast);
  Alcotest.(check string) "engines agree on stdout" (Machine.Sim.stdout m_ref)
    (Machine.Sim.stdout m_fast);
  Alcotest.(check int) "engines agree on break" (Machine.Sim.brk m_ref)
    (Machine.Sim.brk m_fast);
  (o_fast, m_fast)

let test_read_at_eof () =
  (* stdin is 3 bytes; a 16-byte read returns 3, the next returns 0 *)
  let src =
    {|
        .data
buf:    .space 16
        .text
        .globl __start
__start:
        clr $16                   # fd 0
        lda $17, buf
        ldiq $18, 16
        ldiq $0, 3                # sys_read
        call_pal 0x83
        mov $0, $9                # first read: 3
        clr $16
        lda $17, buf
        ldiq $18, 16
        ldiq $0, 3
        call_pal 0x83
        mov $0, $10               # second read: 0 (EOF)
        clr $16
        ldiq $0, 1                # sys_exit
        call_pal 0x83
|}
  in
  let outcome, m = run_both_engines ~stdin:"abc" src in
  Alcotest.(check bool) "exit" true (outcome = Machine.Sim.Exit 0);
  Alcotest.(check int64) "first read" 3L (Machine.Sim.reg m 9);
  Alcotest.(check int64) "read at EOF" 0L (Machine.Sim.reg m 10)

let test_write_closed_fd () =
  (* open an output file, close it, then write to the dead fd: -1 *)
  let src =
    {|
        .data
name:   .asciiz "out.txt"
msg:    .asciiz "hi"
        .text
        .globl __start
__start:
        lda $16, name
        ldiq $17, 1               # O_WRONLY-ish
        ldiq $0, 45               # sys_open
        call_pal 0x83
        mov $0, $9                # fd
        mov $9, $16
        ldiq $0, 6                # sys_close
        call_pal 0x83
        mov $9, $16               # the now-closed fd
        lda $17, msg
        ldiq $18, 2
        ldiq $0, 4                # sys_write
        call_pal 0x83
        mov $0, $10               # -1 expected
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let outcome, m = run_both_engines src in
  Alcotest.(check bool) "exit" true (outcome = Machine.Sim.Exit 0);
  Alcotest.(check bool) "fd >= 3" true (Machine.Sim.reg m 9 >= 3L);
  Alcotest.(check int64) "write to closed fd" (-1L) (Machine.Sim.reg m 10)

let test_brk_shrink_grow () =
  (* sbrk up, back down, and up again: the final break is what the last
     call set, under both engines *)
  let src =
    {|
        .text
        .globl __start
__start:
        clr $16
        ldiq $0, 17               # sys_brk: query
        call_pal 0x83
        mov $0, $9                # initial break
        lda $16, 4096($9)
        ldiq $0, 17               # grow
        call_pal 0x83
        mov $9, $16
        ldiq $0, 17               # shrink back
        call_pal 0x83
        lda $16, 8192($9)
        ldiq $0, 17               # grow again
        call_pal 0x83
        mov $0, $10
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let outcome, m = run_both_engines src in
  Alcotest.(check bool) "exit" true (outcome = Machine.Sim.Exit 0);
  let initial = Machine.Sim.reg m 9 in
  Alcotest.(check int64) "final break" (Int64.add initial 8192L)
    (Machine.Sim.reg m 10);
  Alcotest.(check int) "machine break agrees" (Int64.to_int initial + 8192)
    (Machine.Sim.brk m)

let test_brk_clamp () =
  (* out-of-range break requests are refused with -1 and leave the break
     untouched, under both engines: below the initial break, negative,
     and absurdly far beyond the ceiling *)
  let src =
    {|
        .text
        .globl __start
__start:
        clr $16
        ldiq $0, 17               # sys_brk: query initial break
        call_pal 0x83
        mov $0, $9
        ldiq $16, 4096            # far below the break: inside text? no — low memory
        ldiq $0, 17
        call_pal 0x83
        mov $0, $10               # expect -1
        ldiq $16, -8
        ldiq $0, 17               # negative request
        call_pal 0x83
        mov $0, $11               # expect -1
        ldiq $1, 1
        sll $1, 40, $16
        ldiq $0, 17               # 1 TiB: beyond the ceiling
        call_pal 0x83
        mov $0, $12               # expect -1
        clr $16
        ldiq $0, 17               # query again: unchanged
        call_pal 0x83
        mov $0, $13
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let outcome, m = run_both_engines src in
  Alcotest.(check bool) "exit" true (outcome = Machine.Sim.Exit 0);
  Alcotest.(check int64) "below-break refused" (-1L) (Machine.Sim.reg m 10);
  Alcotest.(check int64) "negative refused" (-1L) (Machine.Sim.reg m 11);
  Alcotest.(check int64) "beyond ceiling refused" (-1L) (Machine.Sim.reg m 12);
  Alcotest.(check int64) "break untouched" (Machine.Sim.reg m 9)
    (Machine.Sim.reg m 13)

(* run a probe expected to segfault; returns (addr, access) *)
let expect_segv name src =
  let u = Asmlib.Assemble.assemble ~name:"s.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let run engine =
    let m = Machine.Sim.load ~engine exe in
    (Machine.Sim.run ~max_insns:1000 m, m)
  in
  let o_ref, m_ref = run Machine.Sim.Ref in
  let o_fast, m_fast = run Machine.Sim.Fast in
  if o_ref <> o_fast then Alcotest.failf "%s: engines disagree" name;
  Alcotest.(check bool)
    (name ^ ": pcs agree")
    true
    (Machine.Sim.pc m_ref = Machine.Sim.pc m_fast);
  match o_ref with
  | Machine.Sim.Fault (Machine.Fault.Segv { addr; access; pc = _ }) ->
      (addr, access)
  | Machine.Sim.Fault f ->
      Alcotest.failf "%s: expected segv, got %s" name
        (Machine.Fault.to_string f)
  | Machine.Sim.Exit n -> Alcotest.failf "%s: exit %d" name n
  | Machine.Sim.Out_of_fuel -> Alcotest.failf "%s: out of fuel" name

let test_protection_faults () =
  (* a store into text faults as a store *)
  let addr_access =
    expect_segv "store to text"
      {|
        .text
        .globl __start
__start:
        lda $1, __start
        stq $31, 0($1)
|}
  in
  Alcotest.(check bool) "store access" true (snd addr_access = Machine.Fault.Store);
  (* a wild load from unmapped low memory faults as a load *)
  let addr_access =
    expect_segv "wild load"
      {|
        .text
        .globl __start
__start:
        ldiq $1, 4096
        ldq $2, 0($1)
|}
  in
  Alcotest.(check bool) "load access" true (snd addr_access = Machine.Fault.Load);
  Alcotest.(check int) "load addr" 4096 (fst addr_access);
  (* far below the stack's writable window *)
  let addr_access =
    expect_segv "below stack"
      {|
        .text
        .globl __start
__start:
        mov $30, $1
        ldiq $2, 1
        sll $2, 26, $2            # 64 MiB, past the 8 MiB stack
        subq $1, $2, $1
        stq $31, 0($1)
|}
  in
  Alcotest.(check bool) "stack access" true (snd addr_access = Machine.Fault.Store);
  (* the same wild load is silently absorbed with protection off *)
  let src = {|
        .text
        .globl __start
__start:
        ldiq $1, 4096
        ldq $2, 0($1)
        clr $16
        ldiq $0, 1
        call_pal 0x83
|} in
  let u = Asmlib.Assemble.assemble ~name:"u.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let m = Machine.Sim.load ~protect:false exe in
  Alcotest.(check bool)
    "no-protect run exits" true
    (Machine.Sim.run ~max_insns:1000 m = Machine.Sim.Exit 0)

let test_mem_limit () =
  (* touching more pages than the resident ceiling allows must raise
     Mem_limit, identically under both engines *)
  let src =
    {|
        .text
        .globl __start
__start:
        clr $16
        ldiq $0, 17               # query break
        call_pal 0x83
        mov $0, $9
        ldiq $1, 1
        sll $1, 24, $1            # 16 MiB
        addq $9, $1, $16
        ldiq $0, 17               # grow the heap 16 MiB
        call_pal 0x83
        mov $9, $1                # touch every page
loop:   stq $31, 0($1)
        lda $1, 8192($1)
        cmplt $1, $16, $2
        bne $2, loop
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let u = Asmlib.Assemble.assemble ~name:"m.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let run engine =
    let m = Machine.Sim.load ~engine ~max_pages:256 exe in
    Machine.Sim.run ~max_insns:100_000_000 m
  in
  let o_ref = run Machine.Sim.Ref and o_fast = run Machine.Sim.Fast in
  Alcotest.(check bool) "engines agree" true (o_ref = o_fast);
  match o_ref with
  | Machine.Sim.Fault (Machine.Fault.Mem_limit { limit; _ }) ->
      Alcotest.(check int) "limit" 256 limit
  | o ->
      Alcotest.failf "expected mem-limit, got %s"
        (match o with
        | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
        | Machine.Sim.Fault f -> Machine.Fault.to_string f
        | Machine.Sim.Out_of_fuel -> "out of fuel")

let test_strict_align () =
  (* a misaligned ldq faults under --strict-align, identically on both
     engines, and is legal without it *)
  let src = {|
        .text
        .globl __start
__start:
        lda $1, buf+1
        ldq $2, 0($1)
        clr $16
        ldiq $0, 1
        call_pal 0x83
        .data
buf:    .space 16
|} in
  let u = Asmlib.Assemble.assemble ~name:"a.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let run ~strict engine =
    let m = Machine.Sim.load ~engine ~strict_align:strict exe in
    (Machine.Sim.run ~max_insns:1000 m, m)
  in
  let o_ref, m_ref = run ~strict:true Machine.Sim.Ref in
  let o_fast, m_fast = run ~strict:true Machine.Sim.Fast in
  Alcotest.(check bool) "strict engines agree" true (o_ref = o_fast);
  Alcotest.(check bool)
    "strict pcs agree" true
    (Machine.Sim.pc m_ref = Machine.Sim.pc m_fast);
  (match o_ref with
  | Machine.Sim.Fault (Machine.Fault.Unaligned { addr; _ }) ->
      Alcotest.(check bool) "odd addr" true (addr land 7 = 1)
  | o ->
      Alcotest.failf "expected unaligned fault, got %s"
        (match o with
        | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
        | Machine.Sim.Fault f -> Machine.Fault.to_string f
        | Machine.Sim.Out_of_fuel -> "out of fuel"));
  let o_lax, _ = run ~strict:false Machine.Sim.Fast in
  Alcotest.(check bool) "lax run exits" true (o_lax = Machine.Sim.Exit 0)

let test_unknown_syscall () =
  (* a syscall number the VFS does not implement is a structured fault at
     the call_pal, identically under both engines *)
  let src = {|
        .text
        .globl __start
__start:
        ldiq $0, 999
        call_pal 0x83
|} in
  let u = Asmlib.Assemble.assemble ~name:"y.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let run engine =
    let m = Machine.Sim.load ~engine exe in
    (Machine.Sim.run ~max_insns:100 m, m)
  in
  let o_ref, m_ref = run Machine.Sim.Ref in
  let o_fast, m_fast = run Machine.Sim.Fast in
  Alcotest.(check bool) "engines agree" true (o_ref = o_fast);
  Alcotest.(check bool)
    "pcs agree" true
    (Machine.Sim.pc m_ref = Machine.Sim.pc m_fast);
  match o_ref with
  | Machine.Sim.Fault (Machine.Fault.Unknown_syscall { num; _ }) ->
      Alcotest.(check int) "number" 999 num
  | o ->
      Alcotest.failf "expected unknown-syscall fault, got %s"
        (match o with
        | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
        | Machine.Sim.Fault f -> Machine.Fault.to_string f
        | Machine.Sim.Out_of_fuel -> "out of fuel")

let test_open_missing_input () =
  (* opening a file that was never provided fails with -1; the program
     still exits cleanly *)
  let src =
    {|
        .data
name:   .asciiz "no-such-file"
        .text
        .globl __start
__start:
        lda $16, name
        clr $17                   # read-only
        ldiq $0, 45               # sys_open
        call_pal 0x83
        mov $0, $9                # -1 expected
        clr $16
        ldiq $0, 1
        call_pal 0x83
|}
  in
  let outcome, m = run_both_engines ~inputs:[ ("other.txt", "x") ] src in
  Alcotest.(check bool) "exit" true (outcome = Machine.Sim.Exit 0);
  Alcotest.(check int64) "open missing file" (-1L) (Machine.Sim.reg m 9)

let test_fault_reporting () =
  (* jumping outside code must fault, not loop *)
  let src = {|
        .text
        .globl __start
__start:
        clr $27
        jsr $26, ($27)
|} in
  let u = Asmlib.Assemble.assemble ~name:"f.s" src in
  let exe = Linker.Link.link [ Linker.Link.Unit u ] in
  let m = Machine.Sim.load exe in
  match Machine.Sim.run ~max_insns:100 m with
  | Machine.Sim.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault"

let props = List.map QCheck_alcotest.to_alcotest [ prop_operate; prop_mem_roundtrip ]

let () =
  Alcotest.run "machine"
    [
      ( "semantics",
        [
          Alcotest.test_case "conditional moves" `Quick test_cmov;
          Alcotest.test_case "fp arithmetic" `Quick test_fp_ops;
          Alcotest.test_case "fp conversion" `Quick test_fp_convert;
          Alcotest.test_case "loads and stores" `Quick test_loads_stores;
          Alcotest.test_case "ldq_u alignment" `Quick test_ldq_u;
          Alcotest.test_case "fault on bad jump" `Quick test_fault_reporting;
        ] );
      ( "memory and vfs",
        [
          Alcotest.test_case "block and cstring" `Quick test_mem_block_and_strings;
          Alcotest.test_case "vfs" `Quick test_vfs;
        ] );
      ( "syscall edge cases (both engines)",
        [
          Alcotest.test_case "read at EOF" `Quick test_read_at_eof;
          Alcotest.test_case "write to closed fd" `Quick test_write_closed_fd;
          Alcotest.test_case "brk shrink then grow" `Quick test_brk_shrink_grow;
          Alcotest.test_case "brk clamp" `Quick test_brk_clamp;
          Alcotest.test_case "protection faults" `Quick test_protection_faults;
          Alcotest.test_case "resident-page ceiling" `Quick test_mem_limit;
          Alcotest.test_case "strict alignment" `Quick test_strict_align;
          Alcotest.test_case "unknown syscall" `Quick test_unknown_syscall;
          Alcotest.test_case "open missing input" `Quick test_open_missing_input;
        ] );
      ("properties", props);
    ]
