(* Every workload must run clean uninstrumented, and every (tool x sample
   workload) pair must run with unchanged application output and produce
   its analysis file. *)

let expect_exit0 tag (outcome, m) =
  match outcome with
  | Machine.Sim.Exit 0 -> m
  | Machine.Sim.Exit n ->
      Alcotest.failf "%s: exit %d (stdout %S, stderr %S)" tag n
        (Machine.Sim.stdout m) (Machine.Sim.stderr m)
  | Machine.Sim.Fault f ->
      Alcotest.failf "%s: fault: %s" tag (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.failf "%s: out of fuel" tag

let workload_cases =
  List.map
    (fun w ->
      Alcotest.test_case w.Workloads.w_name `Quick (fun () ->
          let exe = Workloads.compile w in
          let m = expect_exit0 w.Workloads.w_name (Workloads.run_exe exe) in
          let out = Machine.Sim.stdout m in
          Alcotest.(check bool)
            (w.Workloads.w_name ^ " prints its name") true
            (String.length out > 0
            && String.sub out 0 (String.index out ':') = w.Workloads.w_name)))
    Workloads.all

(* Tool correctness on two representative workloads: an integer one and a
   floating-point one. *)
let tool_cases =
  let samples = [ "compress"; "nbody" ] in
  List.concat_map
    (fun tool ->
      List.map
        (fun wname ->
          let name = Printf.sprintf "%s on %s" tool.Tools.Tool.name wname in
          Alcotest.test_case name `Quick (fun () ->
              let w = Option.get (Workloads.find wname) in
              let exe = Workloads.compile w in
              let base = expect_exit0 "base" (Workloads.run_exe exe) in
              let exe', info = Tools.Tool.apply tool exe in
              let m = expect_exit0 "instrumented" (Workloads.run_exe exe') in
              Alcotest.(check string)
                "application output unchanged" (Machine.Sim.stdout base)
                (Machine.Sim.stdout m);
              Alcotest.(check bool)
                "instrumented something" true
                (info.Atom.Instrument.i_sites > 0);
              let outfile = tool.Tools.Tool.name ^ ".out" in
              match List.assoc_opt outfile (Machine.Sim.output_files m) with
              | Some contents ->
                  Alcotest.(check bool)
                    (outfile ^ " non-empty") true
                    (String.length contents > 0)
              | None -> Alcotest.failf "missing %s" outfile))
        samples)
    Tools.Registry.all

(* determinism: the whole stack (compiler, linker, simulator, seeded PRNG)
   must make every run bit-identical *)
let determinism_cases =
  List.map
    (fun wname ->
      Alcotest.test_case (wname ^ " deterministic") `Quick (fun () ->
          let w = Option.get (Workloads.find wname) in
          let exe = Workloads.compile w in
          let run () =
            let outcome, m = Workloads.run_exe exe in
            match outcome with
            | Machine.Sim.Exit 0 ->
                (Machine.Sim.stdout m, (Machine.Sim.stats m).Machine.Sim.st_insns)
            | _ -> Alcotest.fail "run failed"
          in
          let o1, i1 = run () in
          let o2, i2 = run () in
          Alcotest.(check string) "same output" o1 o2;
          Alcotest.(check int) "same instruction count" i1 i2))
    [ "cover"; "knapsack"; "newton" ]

let stats_consistency =
  Alcotest.test_case "simulator counters are consistent" `Quick (fun () ->
      let w = Option.get (Workloads.find "qsort") in
      let exe = Workloads.compile w in
      let _, m = Workloads.run_exe exe in
      let st = Machine.Sim.stats m in
      let open Machine.Sim in
      Alcotest.(check bool) "insns dominate memory ops" true
        (st.st_insns >= st.st_loads + st.st_stores);
      Alcotest.(check bool) "taken <= cond branches" true
        (st.st_taken <= st.st_cond_branches);
      Alcotest.(check bool) "pair cycles within [n/2, n]" true
        (st.st_pair_cycles * 2 >= st.st_insns && st.st_pair_cycles <= st.st_insns);
      Alcotest.(check bool) "some of everything happened" true
        (st.st_loads > 0 && st.st_stores > 0 && st.st_calls > 0 && st.st_syscalls > 0))

(* The per-block counter tools (prof, gprof, branch, dyninst) share their
   slot-allocation and init/report boilerplate through [Tool.counter_tool].
   These are the instrument functions as they were written before that
   factoring, verbatim; each must still produce a byte-identical image,
   since the helper only restructured the code, not the insertion order. *)

let legacy_prof api =
  let open Atom.Api in
  add_call_proto api "ProfInit(int)";
  add_call_proto api "ProfBlock(int, int)";
  add_call_proto api "ProfName(int, char *)";
  add_call_proto api "ProfReport()";
  let pid = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          add_call_block api b Before "ProfBlock" [ Int !pid; Int (block_ninsts b) ])
        (blocks p);
      add_call_program api Program_after "ProfName" [ Int !pid; Str (proc_name p) ];
      incr pid)
    (procs api);
  add_call_program api Program_before "ProfInit" [ Int !pid ];
  add_call_program api Program_after "ProfReport" []

let legacy_gprof api =
  let open Atom.Api in
  add_call_proto api "GpInit(int)";
  add_call_proto api "GpEnter(int)";
  add_call_proto api "GpBlock(int, int)";
  add_call_proto api "GpName(int, char *)";
  add_call_proto api "GpReport()";
  let pid = ref 0 in
  List.iter
    (fun p ->
      add_call_proc api p Before "GpEnter" [ Int !pid ];
      List.iter
        (fun b ->
          add_call_block api b Before "GpBlock" [ Int !pid; Int (block_ninsts b) ])
        (blocks p);
      add_call_program api Program_after "GpName" [ Int !pid; Str (proc_name p) ];
      incr pid)
    (procs api);
  add_call_program api Program_before "GpInit" [ Int !pid ];
  add_call_program api Program_after "GpReport" []

let legacy_branch api =
  let open Atom.Api in
  add_call_proto api "BrInit(int)";
  add_call_proto api "BrPredict(int, long, VALUE)";
  add_call_proto api "BrReport()";
  let n = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let inst = get_last_inst b in
          if is_inst_type inst Inst_cond_branch then begin
            add_call_inst api inst Before "BrPredict"
              [ Int !n; Inst_pc inst; Br_cond_value ];
            incr n
          end)
        (blocks p))
    (procs api);
  add_call_program api Program_before "BrInit" [ Int !n ];
  add_call_program api Program_after "BrReport" []

let legacy_dyninst api =
  let open Atom.Api in
  add_call_proto api "DynInit(int)";
  add_call_proto api "DynBlock(int, int, long)";
  add_call_proto api "DynReport()";
  let n = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          add_call_block api b Before "DynBlock"
            [ Int !n; Int (block_ninsts b); Block_pc b ];
          incr n)
        (blocks p))
    (procs api);
  add_call_program api Program_before "DynInit" [ Int !n ];
  add_call_program api Program_after "DynReport" []

let counter_refactor_cases =
  List.map
    (fun (name, legacy) ->
      Alcotest.test_case (name ^ " image is byte-identical") `Quick (fun () ->
          let tool = Option.get (Tools.Registry.find name) in
          List.iter
            (fun wname ->
              let exe = Workloads.compile (Option.get (Workloads.find wname)) in
              let now, _ = Tools.Tool.apply tool exe in
              let before, _ =
                Tools.Tool.apply
                  { tool with Tools.Tool.instrument = legacy }
                  exe
              in
              Alcotest.(check string)
                (Printf.sprintf "%s on %s" name wname)
                (Objfile.Exe.to_string before)
                (Objfile.Exe.to_string now))
            [ "compress"; "nbody" ]))
    [
      ("prof", legacy_prof);
      ("gprof", legacy_gprof);
      ("branch", legacy_branch);
      ("dyninst", legacy_dyninst);
    ]

let () =
  Alcotest.run "tools"
    [
      ("workloads", workload_cases);
      ("determinism", stats_consistency :: determinism_cases);
      ("tools", tool_cases);
      ("counter refactor", counter_refactor_cases);
    ]
