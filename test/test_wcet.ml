(* WCET soundness: the IPET bound computed from one trace-instrumented
   run must dominate the measured cycle count of every clean run on both
   engines, must collapse to equality on single-feasible-path programs
   (straight-line code, fixed-trip loops), and the loop bounds the trace
   tool derives must agree with the progen oracle's known trip counts. *)

let trace_tool =
  match Tools.Registry.find "trace" with
  | Some t -> t
  | None -> Alcotest.fail "trace tool not registered"

let expect_exit0 tag (outcome, m) =
  match outcome with
  | Machine.Sim.Exit 0 -> m
  | Machine.Sim.Exit n ->
      Alcotest.failf "%s: exit %d (stderr %S)" tag n (Machine.Sim.stderr m)
  | Machine.Sim.Fault f ->
      Alcotest.failf "%s: fault: %s" tag (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Alcotest.failf "%s: out of fuel" tag

(* One trace-instrumented run: the recorded facts plus the run's stdout
   (the tool must not perturb application behaviour). *)
let record_facts tag exe =
  let exe', _ = Tools.Tool.apply trace_tool exe in
  let m = expect_exit0 (tag ^ " traced") (Workloads.run_exe exe') in
  match List.assoc_opt "trace.out" (Machine.Sim.output_files m) with
  | Some text -> (Wcet.Facts.parse text, Machine.Sim.stdout m)
  | None -> Alcotest.failf "%s: no trace.out recorded" tag

let measured_cycles tag ~engine exe =
  let m = expect_exit0 tag (Workloads.run_exe ~engine exe) in
  (Machine.Sim.stats m).Machine.Sim.st_cycles

(* -- soundness across the workload suite ---------------------------------- *)

let check_sound tag exe =
  let facts, _ = record_facts tag exe in
  let res = Wcet.Ipet.analyze (Om.Cfg.build (Om.Build.program exe)) facts in
  Alcotest.(check int) (tag ^ " no infeasible procedures") 0
    res.Wcet.Ipet.infeasible;
  List.iter
    (fun (engine, ename) ->
      let measured = measured_cycles (tag ^ " " ^ ename) ~engine exe in
      if res.Wcet.Ipet.bound < measured then
        Alcotest.failf "%s (%s): bound %d < measured %d cycles" tag ename
          res.Wcet.Ipet.bound measured)
    [ (Machine.Sim.Ref, "ref"); (Machine.Sim.Fast, "fast") ];
  res

let soundness_cases =
  List.map
    (fun w ->
      Alcotest.test_case w.Workloads.w_name `Slow (fun () ->
          ignore (check_sound w.Workloads.w_name (Workloads.compile w))))
    Workloads.all

(* -- exactness on single-feasible-path programs --------------------------- *)

(* With one feasible path the ILP has exactly one solution — the path
   itself — so any slack separating the bound from the measurement is a
   formulation bug (double-charged flow, a wrong termination discount). *)

let straight_line_src =
  {|
long main(void) {
  long a, b;
  a = 7;
  b = a * 3 + 2;
  return b - 23;
}
|}

let fixed_trip_src =
  {|
long main(void) {
  long i, s;
  s = 0;
  for (i = 0; i < 1000; i = i + 1) s = s + i * 3;
  return s & 1;
}
|}

let check_exact tag src =
  let exe = Rtlib.compile_and_link ~name:(tag ^ ".o") src in
  let res = check_sound tag exe in
  let measured = measured_cycles tag ~engine:Machine.Sim.Fast exe in
  Alcotest.(check int) (tag ^ " bound is exact") measured res.Wcet.Ipet.bound

let exactness_cases =
  [
    Alcotest.test_case "straight line" `Quick (fun () ->
        check_exact "straight" straight_line_src);
    Alcotest.test_case "fixed-trip loop" `Quick (fun () ->
        check_exact "fixedtrip" fixed_trip_src);
  ]

(* -- progen sweep: derived loop bounds vs the oracle's trip counts -------- *)

(* Every loop progen emits has a constant trip count in its IR, so a
   single entry of any generated loop visits its header at most
   [max_loop_count + 1] times (the +1 is the final exit test).  The
   trace tool's recorded per-entry maxima must respect that for every
   loop in the program's own procedures — streaks of loops whose entry
   edges are all probed measure exactly one entry, so the comparison is
   direct.  (Runtime-library loops — printf, malloc — are outside the
   oracle's knowledge and are skipped, as are the rare loops with an
   unprobeable entry edge, where consecutive entries legitimately merge
   into one streak.) *)

let test_progen_sweep () =
  let checked = ref 0 in
  for seed = 1 to 30 do
    let size = 2 + (seed mod 14) in
    let t = Progen.generate ~seed ~size () in
    let tag = Printf.sprintf "seed %d" seed in
    let exe =
      Rtlib.compile_and_link
        ~name:(Printf.sprintf "wcet_gen_s%d.o" seed)
        (Progen.source t)
    in
    let facts, traced_stdout = record_facts tag exe in
    Alcotest.(check string)
      (tag ^ " traced stdout matches oracle")
      (Progen.expected_stdout t) traced_stdout;
    let cfg = Om.Cfg.build (Om.Build.program exe) in
    let res = Wcet.Ipet.analyze cfg facts in
    let measured = measured_cycles tag ~engine:Machine.Sim.Fast exe in
    if res.Wcet.Ipet.bound < measured then
      Alcotest.failf "%s: bound %d < measured %d cycles" tag
        res.Wcet.Ipet.bound measured;
    let own_procs = "main" :: Progen.func_names t in
    let cap = Progen.max_loop_count t + 1 in
    Array.iteri
      (fun li l ->
        let pname =
          cfg.Om.Cfg.ir.Om.Ir.procs.(cfg.Om.Cfg.block_proc.(l.Om.Cfg.l_header))
            .Om.Ir.p_name
        in
        let entries_probed =
          List.for_all
            (fun eid -> cfg.Om.Cfg.edges.(eid).Om.Cfg.e_probe)
            l.Om.Cfg.l_entries
        in
        if List.mem pname own_procs && entries_probed then begin
          incr checked;
          let got = facts.Wcet.Facts.loop_max.(li) in
          if got > cap then
            Alcotest.failf
              "%s: loop at block %d in %s: recorded per-entry maximum %d \
               exceeds oracle trip bound %d"
              tag l.Om.Cfg.l_header pname got cap
        end)
      cfg.Om.Cfg.loops
  done;
  Alcotest.(check bool)
    "sweep exercised generated loops" true (!checked > 0)

(* -- fact artifact semantics ---------------------------------------------- *)

let with_facts f =
  let exe = Rtlib.compile_and_link ~name:"wcet_facts.o" fixed_trip_src in
  let facts, _ = record_facts "facts" exe in
  f facts

let test_merge_semantics () =
  with_facts (fun facts ->
      let m = Wcet.Facts.merge facts facts in
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "block %d count sums" i)
            (2 * c) m.Wcet.Facts.block_counts.(i))
        facts.Wcet.Facts.block_counts;
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "edge %d count sums" i)
            (2 * c) m.Wcet.Facts.edge_counts.(i))
        facts.Wcet.Facts.edge_counts;
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "loop %d maximum is kept" i)
            c m.Wcet.Facts.loop_max.(i))
        facts.Wcet.Facts.loop_max)

let test_merge_shape_mismatch () =
  with_facts (fun facts ->
      let tiny =
        {
          Wcet.Facts.nb = 1;
          ne = 0;
          nl = 0;
          block_counts = [| 1 |];
          edge_counts = [||];
          loop_max = [||];
        }
      in
      Alcotest.check_raises "mismatched shapes rejected"
        (Invalid_argument "Facts.merge: mismatched shapes") (fun () ->
          ignore (Wcet.Facts.merge facts tiny)))

let test_parse_malformed () =
  List.iter
    (fun text ->
      match Wcet.Facts.parse text with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "parse accepted %S" text)
    [ ""; "(not a fact set)"; "(facts (blocks"; "(facts (blocks x))" ]

let fact_cases =
  [
    Alcotest.test_case "merge sums counts, keeps maxima" `Quick
      test_merge_semantics;
    Alcotest.test_case "merge rejects shape mismatch" `Quick
      test_merge_shape_mismatch;
    Alcotest.test_case "parse rejects malformed input" `Quick
      test_parse_malformed;
  ]

let () =
  Alcotest.run "wcet"
    [
      ("exactness", exactness_cases);
      ("facts", fact_cases);
      ("progen sweep", [ Alcotest.test_case "30 seeds" `Slow test_progen_sweep ]);
      ("soundness", soundness_cases);
    ]
