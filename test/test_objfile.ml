(* Serialization roundtrips and corruption handling for the object,
   archive and executable formats. *)

open Objfile

(* -- generators --------------------------------------------------------- *)

let gen_name =
  QCheck.Gen.(
    map
      (fun (c, s) -> Printf.sprintf "%c%s" c s)
      (pair (char_range 'a' 'z') (string_size ~gen:(char_range 'a' 'z') (int_range 0 12))))

let gen_bytes =
  QCheck.Gen.(string_size (int_range 0 64) >|= Bytes.of_string)

let gen_reloc =
  QCheck.Gen.(
    let kind =
      oneofl Types.[ R_br21; R_hi16; R_lo16; R_quad64; R_long32 ]
    in
    map
      (fun (off, k, s, a) ->
        { Types.r_offset = off; r_kind = k; r_symbol = s; r_addend = a })
      (quad (int_range 0 1000) kind gen_name (int_range (-100) 100)))

let gen_symbol =
  QCheck.Gen.(
    let def =
      oneof
        [
          return Types.Undefined;
          map
            (fun (sec, off) -> Types.Defined (sec, off))
            (pair (oneofl Types.all_sections) (int_range 0 256));
        ]
    in
    map
      (fun (name, binding, def, ty) ->
        {
          Types.s_name = name;
          s_binding = binding;
          s_def = def;
          s_type = ty;
          s_size = 0;
        })
      (quad gen_name (oneofl Types.[ Local; Global ]) def
         (oneofl Types.[ Func; Object; Notype ])))

let gen_unit =
  QCheck.Gen.(
    map
      (fun (name, (text, data), bss, (relocs, symbols)) ->
        {
          Unit_file.u_name = name;
          u_text = text;
          u_rdata = Bytes.empty;
          u_data = data;
          u_bss_size = bss;
          u_relocs =
            List.map (fun r -> (Types.Text, r)) relocs;
          u_symbols = symbols;
        })
      (quad gen_name (pair gen_bytes gen_bytes) (int_range 0 512)
         (pair (list_size (int_range 0 5) gen_reloc)
            (list_size (int_range 0 5) gen_symbol))))

let prop_unit_roundtrip =
  QCheck.Test.make ~count:300 ~name:"object module to_string/of_string"
    (QCheck.make gen_unit) (fun u ->
      Unit_file.of_string (Unit_file.to_string u) = u)

let prop_archive_roundtrip =
  QCheck.Test.make ~count:100 ~name:"archive to_string/of_string"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 4) gen_unit))
    (fun members ->
      let a = Archive.create "lib.a" members in
      Archive.of_string (Archive.to_string a) = a)

(* images must satisfy [Exe.validate] ([of_string] applies it), so the
   generator places segments at spaced, aligned bases and keeps the entry
   inside code *)
let gen_exe =
  QCheck.Gen.(
    map
      (fun (entry_off, segs, syms) ->
        {
          Exe.x_entry = Exe.text_base + (4 * entry_off);
          x_segs =
            List.mapi
              (fun k (b, bss, w) ->
                { Exe.seg_vaddr = Exe.text_base + (k * 0x10000);
                  seg_bytes = b; seg_bss = bss; seg_write = w })
              segs;
          x_symbols =
            List.map
              (fun (n, a) ->
                { Exe.x_name = n; x_addr = a; x_type = Types.Func; x_size = 0 })
              syms;
          x_text_start = Exe.text_base;
          x_text_size = 64;
          x_data_start = Exe.data_base;
          x_break = Exe.data_base + 128;
          x_code_refs =
            [ { Exe.cr_kind = Exe.Cr_quad; cr_addr = 1; cr_target = 2 } ];
        })
      (triple (int_range 0 16)
         (list_size (int_range 1 3) (triple gen_bytes (int_range 0 64) bool))
         (list_size (int_range 0 4) (pair gen_name (int_range 0 100000)))))

let prop_exe_roundtrip =
  QCheck.Test.make ~count:200 ~name:"executable to_string/of_string"
    (QCheck.make gen_exe) (fun x -> Exe.of_string (Exe.to_string x) = x)

let prop_corrupt =
  QCheck.Test.make ~count:200 ~name:"truncated input raises Corrupt"
    (QCheck.make
       QCheck.Gen.(pair gen_unit (int_range 1 20)))
    (fun (u, cut) ->
      let s = Unit_file.to_string u in
      let cut = min cut (String.length s - 1) in
      let s = String.sub s 0 (String.length s - cut) in
      match Unit_file.of_string s with
      | _ -> false  (* a truncated file must never parse *)
      | exception Wire.Corrupt _ -> true)

(* -- unit tests ---------------------------------------------------------- *)

let test_bad_magic () =
  (match Unit_file.of_string "NOTMAGIC" with
  | _ -> Alcotest.fail "parsed garbage"
  | exception Wire.Corrupt _ -> ());
  match Archive.of_string (Unit_file.to_string (Unit_file.empty "x")) with
  | _ -> Alcotest.fail "archive parsed an object file"
  | exception Wire.Corrupt _ -> ()

let test_section_queries () =
  let u =
    { (Unit_file.empty "t") with Unit_file.u_text = Bytes.make 12 'x'; u_bss_size = 40 }
  in
  Alcotest.(check int) "text size" 12 (Unit_file.section_size u Types.Text);
  Alcotest.(check int) "bss size" 40 (Unit_file.section_size u Types.Bss);
  Alcotest.(check (option string)) "section names roundtrip" (Some ".data")
    (Option.map Types.sec_name (Types.sec_of_name ".data"))

let test_archive_lookup () =
  let def name =
    {
      (Unit_file.empty name) with
      Unit_file.u_symbols =
        [
          {
            Types.s_name = name ^ "_sym";
            s_binding = Types.Global;
            s_def = Types.Defined (Types.Text, 0);
            s_type = Types.Func;
            s_size = 0;
          };
        ];
    }
  in
  let a = Archive.create "lib.a" [ def "a"; def "b" ] in
  Alcotest.(check int) "finds b_sym" 1 (List.length (Archive.members_defining a "b_sym"));
  Alcotest.(check int) "no such symbol" 0 (List.length (Archive.members_defining a "zzz"))

let test_exe_helpers () =
  let exe =
    {
      Exe.x_entry = Exe.text_base;
      x_segs =
        [ { Exe.seg_vaddr = Exe.text_base; seg_bytes = Bytes.make 16 '\000'; seg_bss = 0; seg_write = false } ];
      x_symbols =
        [
          { Exe.x_name = "b"; x_addr = Exe.text_base + 8; x_type = Types.Func; x_size = 8 };
          { Exe.x_name = "a"; x_addr = Exe.text_base; x_type = Types.Func; x_size = 8 };
          { Exe.x_name = "gdata"; x_addr = Exe.data_base; x_type = Types.Object; x_size = 8 };
        ];
      x_text_start = Exe.text_base;
      x_text_size = 16;
      x_data_start = Exe.data_base;
      x_break = Exe.data_base;
      x_code_refs = [];
    }
  in
  (match Exe.funcs_sorted exe with
  | [ f1; f2 ] ->
      Alcotest.(check string) "sorted order" "a" f1.Exe.x_name;
      Alcotest.(check string) "sorted order 2" "b" f2.Exe.x_name
  | _ -> Alcotest.fail "expected two text functions");
  Alcotest.(check int) "stack top is text base" Exe.text_base (Exe.stack_top exe)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_unit_roundtrip; prop_archive_roundtrip; prop_exe_roundtrip; prop_corrupt ]

let () =
  Alcotest.run "objfile"
    [
      ( "unit",
        [
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "section queries" `Quick test_section_queries;
          Alcotest.test_case "archive lookup" `Quick test_archive_lookup;
          Alcotest.test_case "exe helpers" `Quick test_exe_helpers;
        ] );
      ("properties", props);
    ]
