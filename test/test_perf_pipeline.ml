(* Instrumentation-throughput overhaul invariants.

   The fast pipeline (content-addressed toolchain caches, binary-search
   lookups, worklist liveness, shared decode memo) must be an
   observationally perfect stand-in for the pre-overhaul reference
   pipeline: byte-identical instrumented images, identical audits,
   identical liveness tables.  The caches themselves must behave as
   caches: a warm repeat is all hits and byte-identical to the cold run,
   and changing an option that is part of the content key is a miss. *)

module I = Atom.Instrument

let apply ?options ?pipeline name w_name =
  let tool = Option.get (Tools.Registry.find name) in
  let w = Option.get (Workloads.find w_name) in
  let exe = Workloads.compile w in
  Tools.Tool.apply ?options ?pipeline tool exe

let exe_bytes = Objfile.Exe.to_string

let clear_caches () =
  Atom.Toolcache.clear ();
  Rtlib.clear_cache ()

(* wrapper/proc address lists come out of hash-table folds; order is not
   part of the audit's meaning *)
let norm_audit (a : I.audit) =
  {
    a with
    I.au_wrappers = List.sort compare a.I.au_wrappers;
    au_procs = List.sort compare a.I.au_procs;
  }

(* -- cache identity ------------------------------------------------------ *)

let test_cold_warm_identity () =
  clear_caches ();
  let exe1, info1 = apply "branch" "sieve" in
  let exe2, info2 = apply "branch" "sieve" in
  Alcotest.(check bool) "warm image byte-identical to cold" true
    (exe_bytes exe1 = exe_bytes exe2);
  Alcotest.(check bool) "warm audit identical to cold" true
    (norm_audit info1.I.i_audit = norm_audit info2.I.i_audit)

let test_cache_accounting () =
  clear_caches ();
  let m0 = Atom.Toolcache.misses () in
  ignore (apply "branch" "sieve");
  let h1 = Atom.Toolcache.hits () and m1 = Atom.Toolcache.misses () in
  Alcotest.(check bool) "cold run misses" true (m1 > m0);
  ignore (apply "branch" "sieve");
  let h2 = Atom.Toolcache.hits () and m2 = Atom.Toolcache.misses () in
  Alcotest.(check bool) "warm run hits" true (h2 > h1);
  Alcotest.(check int) "warm run misses nothing" m1 m2;
  (* the option fingerprint is part of the content key: same tool, same
     application, different options must rebuild, not replay *)
  ignore
    (apply
       ~options:{ I.default_options with I.save_strategy = I.Save_all }
       "branch" "sieve");
  let m3 = Atom.Toolcache.misses () in
  Alcotest.(check bool) "changed option key misses" true (m3 > m2)

(* -- old pipeline vs new pipeline ---------------------------------------- *)

let option_matrix =
  [
    I.default_options;
    { I.default_options with I.save_strategy = I.Summary_and_live };
    { I.default_options with I.call_style = I.Inline_saves };
    {
      I.save_strategy = I.Summary_and_live;
      call_style = I.Inline_body;
      heap_mode = I.Partitioned (1 lsl 24);
    };
  ]

let test_ref_fast_identity () =
  clear_caches ();
  List.iter
    (fun (tname, wname) ->
      List.iter
        (fun options ->
          let e_fast, i_fast = apply ~options ~pipeline:I.Fast tname wname in
          let e_ref, i_ref = apply ~options ~pipeline:I.Ref tname wname in
          let cell = tname ^ "/" ^ wname in
          Alcotest.(check bool) (cell ^ ": image byte-identical") true
            (exe_bytes e_fast = exe_bytes e_ref);
          Alcotest.(check bool) (cell ^ ": audit identical") true
            (norm_audit i_fast.I.i_audit = norm_audit i_ref.I.i_audit))
        option_matrix)
    [ ("branch", "sieve"); ("malloc", "qsort"); ("unalign", "sieve") ]

(* -- worklist liveness vs dense fixpoint --------------------------------- *)

let test_liveness_equivalence () =
  List.iter
    (fun wname ->
      let exe = Workloads.compile (Option.get (Workloads.find wname)) in
      let prog = Om.Build.program exe in
      let fast = Om.Liveness.compute prog in
      let dense = Om.Liveness.compute_ref prog in
      Alcotest.(check int)
        (wname ^ ": table sizes")
        (Hashtbl.length dense) (Hashtbl.length fast);
      Hashtbl.iter
        (fun pc s ->
          match Hashtbl.find_opt fast pc with
          | None ->
              Alcotest.fail (Printf.sprintf "%s: missing pc %#x" wname pc)
          | Some s' ->
              if not (Alpha.Regset.equal s s') then
                Alcotest.fail
                  (Printf.sprintf "%s: live sets differ at %#x" wname pc))
        dense)
    [ "sieve"; "qsort"; "compress" ]

(* -- popcount regsets ---------------------------------------------------- *)

let arbitrary_regset =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 40) (int_range 0 31) >>= fun is ->
      list_size (int_bound 40) (int_range 0 31) >|= fun fs ->
      List.fold_left
        (fun s r -> Alpha.Regset.add_f r s)
        (Alpha.Regset.of_list is) fs)
  in
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Alpha.Regset.pp s)
    gen

let prop_cardinal =
  QCheck.Test.make ~count:500 ~name:"cardinal = |ints| + |fps|"
    arbitrary_regset (fun s ->
      Alpha.Regset.cardinal s
      = List.length (Alpha.Regset.ints s) + List.length (Alpha.Regset.fps s))

let prop_folds =
  QCheck.Test.make ~count:500
    ~name:"fold_ints/fold_fps enumerate members ascending" arbitrary_regset
    (fun s ->
      List.rev (Alpha.Regset.fold_ints (fun r acc -> r :: acc) s [])
      = Alpha.Regset.ints s
      && List.rev (Alpha.Regset.fold_fps (fun r acc -> r :: acc) s [])
         = Alpha.Regset.fps s)

(* -- shared decode memo -------------------------------------------------- *)

let arbitrary_word =
  QCheck.(
    make
      Gen.(int_bound 0xFFFFFFF >|= fun n -> n * 2654435761 land 0xFFFFFFFF))

let prop_decode_memo =
  QCheck.Test.make ~count:2000 ~name:"decode memo agrees with plain decode"
    arbitrary_word (fun w ->
      Alpha.Code.decode_cached w = Alpha.Code.decode w
      && Alpha.Code.roundtrips_cached w = Alpha.Code.roundtrips w)

let () =
  Alcotest.run "perf-pipeline"
    [
      ( "caches",
        [
          Alcotest.test_case "cold-then-warm byte identity" `Quick
            test_cold_warm_identity;
          Alcotest.test_case "hit/miss accounting and option keys" `Quick
            test_cache_accounting;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "ref and fast produce identical output" `Quick
            test_ref_fast_identity;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "worklist matches dense fixpoint" `Quick
            test_liveness_equivalence;
        ] );
      ( "regset",
        List.map QCheck_alcotest.to_alcotest [ prop_cardinal; prop_folds ] );
      ( "decode-memo",
        List.map QCheck_alcotest.to_alcotest [ prop_decode_memo ] );
    ]
