open Insn

(* Opcode and function-code tables from the Alpha Architecture Reference
   Manual.  Integer operates live under four major opcodes (INTA 0x10,
   INTL 0x11, INTS 0x12, INTM 0x13) with a 7-bit function field; floating
   operates under FLTI 0x16 / FLTL 0x17 with an 11-bit function field. *)

let mem_opcode = function
  | Lda -> 0x08 | Ldah -> 0x09 | Ldbu -> 0x0A | Ldq_u -> 0x0B
  | Ldwu -> 0x0C | Stw -> 0x0D | Stb -> 0x0E | Stq_u -> 0x0F
  | Ldt -> 0x23 | Stt -> 0x27
  | Ldl -> 0x28 | Ldq -> 0x29 | Stl -> 0x2C | Stq -> 0x2D

let mem_of_opcode = function
  | 0x08 -> Some Lda | 0x09 -> Some Ldah | 0x0A -> Some Ldbu | 0x0B -> Some Ldq_u
  | 0x0C -> Some Ldwu | 0x0D -> Some Stw | 0x0E -> Some Stb | 0x0F -> Some Stq_u
  | 0x23 -> Some Ldt | 0x27 -> Some Stt
  | 0x28 -> Some Ldl | 0x29 -> Some Ldq | 0x2C -> Some Stl | 0x2D -> Some Stq
  | _ -> None

let opr_codes = function
  | Addl -> (0x10, 0x00) | Subl -> (0x10, 0x09) | Cmpbge -> (0x10, 0x0F)
  | Cmpult -> (0x10, 0x1D) | Addq -> (0x10, 0x20) | S4addq -> (0x10, 0x22)
  | Subq -> (0x10, 0x29) | Cmpeq -> (0x10, 0x2D) | S8addq -> (0x10, 0x32)
  | Cmpule -> (0x10, 0x3D) | Cmplt -> (0x10, 0x4D) | Cmple -> (0x10, 0x6D)
  | And_ -> (0x11, 0x00) | Bic -> (0x11, 0x08) | Cmovlbs -> (0x11, 0x14)
  | Cmovlbc -> (0x11, 0x16) | Bis -> (0x11, 0x20) | Cmoveq -> (0x11, 0x24)
  | Cmovne -> (0x11, 0x26) | Ornot -> (0x11, 0x28) | Xor -> (0x11, 0x40)
  | Cmovlt -> (0x11, 0x44) | Cmovge -> (0x11, 0x46) | Eqv -> (0x11, 0x48)
  | Cmovle -> (0x11, 0x64) | Cmovgt -> (0x11, 0x66)
  | Mskbl -> (0x12, 0x02) | Extbl -> (0x12, 0x06) | Insbl -> (0x12, 0x0B)
  | Mskwl -> (0x12, 0x12) | Extwl -> (0x12, 0x16) | Inswl -> (0x12, 0x1B)
  | Mskll -> (0x12, 0x22) | Extll -> (0x12, 0x26) | Insll -> (0x12, 0x2B)
  | Zap -> (0x12, 0x30) | Zapnot -> (0x12, 0x31) | Mskql -> (0x12, 0x32)
  | Srl -> (0x12, 0x34) | Extql -> (0x12, 0x36) | Sll -> (0x12, 0x39)
  | Insql -> (0x12, 0x3B) | Sra -> (0x12, 0x3C)
  | Mull -> (0x13, 0x00) | Mulq -> (0x13, 0x20) | Umulh -> (0x13, 0x30)

let opr_of_codes =
  let tbl = Hashtbl.create 64 in
  List.iter (fun op -> Hashtbl.replace tbl (opr_codes op) op) all_opr_ops;
  fun codes -> Hashtbl.find_opt tbl codes

let fop_codes = function
  | Addt -> (0x16, 0x0A0) | Subt -> (0x16, 0x0A1) | Mult -> (0x16, 0x0A2)
  | Divt -> (0x16, 0x0A3) | Cmpteq -> (0x16, 0x0A5) | Cmptlt -> (0x16, 0x0A6)
  | Cmptle -> (0x16, 0x0A7) | Cvttq -> (0x16, 0x0AF) | Cvtqt -> (0x16, 0x0BE)
  | Cpys -> (0x17, 0x020) | Cpysn -> (0x17, 0x021)

let fop_of_codes =
  let tbl = Hashtbl.create 16 in
  List.iter (fun op -> Hashtbl.replace tbl (fop_codes op) op) all_fop_ops;
  fun codes -> Hashtbl.find_opt tbl codes

let cbr_opcode = function
  | Blbc -> 0x38 | Beq -> 0x39 | Blt -> 0x3A | Ble -> 0x3B
  | Blbs -> 0x3C | Bne -> 0x3D | Bge -> 0x3E | Bgt -> 0x3F

let cbr_of_opcode = function
  | 0x38 -> Some Blbc | 0x39 -> Some Beq | 0x3A -> Some Blt | 0x3B -> Some Ble
  | 0x3C -> Some Blbs | 0x3D -> Some Bne | 0x3E -> Some Bge | 0x3F -> Some Bgt
  | _ -> None

let fbr_opcode = function
  | Fbeq -> 0x31 | Fblt -> 0x32 | Fble -> 0x33
  | Fbne -> 0x35 | Fbge -> 0x36 | Fbgt -> 0x37

let fbr_of_opcode = function
  | 0x31 -> Some Fbeq | 0x32 -> Some Fblt | 0x33 -> Some Fble
  | 0x35 -> Some Fbne | 0x36 -> Some Fbge | 0x37 -> Some Fbgt
  | _ -> None

let jmp_code = function
  | Jmp -> 0 | Jsr -> 1 | Ret -> 2 | Jsr_coroutine -> 3

let jmp_of_code = function
  | 0 -> Jmp | 1 -> Jsr | 2 -> Ret | _ -> Jsr_coroutine

let mask32 = 0xFFFFFFFF

let fits_disp16 d = d >= -32768 && d <= 32767
let fits_disp21 d = d >= -(1 lsl 20) && d <= (1 lsl 20) - 1

let check_reg what r =
  if r < 0 || r > 31 then invalid_arg (Printf.sprintf "Code.encode: %s register %d" what r)

let encode i =
  match i with
  | Mem { op; ra; rb; disp } ->
      check_reg "ra" ra;
      check_reg "rb" rb;
      if not (fits_disp16 disp) then
        invalid_arg (Printf.sprintf "Code.encode: memory displacement %d" disp);
      (mem_opcode op lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (disp land 0xFFFF)
  | Opr { op; ra; rb; rc } ->
      check_reg "ra" ra;
      check_reg "rc" rc;
      let opc, func = opr_codes op in
      let mid =
        match rb with
        | Reg r ->
            check_reg "rb" r;
            r lsl 16
        | Imm n ->
            if n < 0 || n > 255 then
              invalid_arg (Printf.sprintf "Code.encode: literal %d" n);
            (n lsl 13) lor (1 lsl 12)
      in
      (opc lsl 26) lor (ra lsl 21) lor mid lor (func lsl 5) lor rc
  | Fop { op; fa; fb; fc } ->
      check_reg "fa" fa;
      check_reg "fb" fb;
      check_reg "fc" fc;
      let opc, func = fop_codes op in
      (opc lsl 26) lor (fa lsl 21) lor (fb lsl 16) lor (func lsl 5) lor fc
  | Br { link; ra; disp } ->
      check_reg "ra" ra;
      if not (fits_disp21 disp) then
        invalid_arg (Printf.sprintf "Code.encode: branch displacement %d" disp);
      let opc = if link then 0x34 else 0x30 in
      (opc lsl 26) lor (ra lsl 21) lor (disp land 0x1FFFFF)
  | Cbr { cond; ra; disp } ->
      check_reg "ra" ra;
      if not (fits_disp21 disp) then
        invalid_arg (Printf.sprintf "Code.encode: branch displacement %d" disp);
      (cbr_opcode cond lsl 26) lor (ra lsl 21) lor (disp land 0x1FFFFF)
  | Fbr { cond; fa; disp } ->
      check_reg "fa" fa;
      if not (fits_disp21 disp) then
        invalid_arg (Printf.sprintf "Code.encode: branch displacement %d" disp);
      (fbr_opcode cond lsl 26) lor (fa lsl 21) lor (disp land 0x1FFFFF)
  | Jump { kind; ra; rb; hint } ->
      check_reg "ra" ra;
      check_reg "rb" rb;
      (0x1A lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (jmp_code kind lsl 14)
      lor (hint land 0x3FFF)
  | Call_pal n ->
      if n < 0 || n > 0x3FFFFFF then invalid_arg "Code.encode: PAL code";
      n
  | Raw w -> w land mask32

let sext width v =
  let sign = 1 lsl (width - 1) in
  if v land sign <> 0 then v - (1 lsl width) else v

let decode w =
  let w = w land mask32 in
  let opc = w lsr 26 in
  let ra = (w lsr 21) land 0x1F in
  let rb = (w lsr 16) land 0x1F in
  match opc with
  | 0x00 -> Call_pal (w land 0x3FFFFFF)
  | 0x30 -> Br { link = false; ra; disp = sext 21 (w land 0x1FFFFF) }
  | 0x34 -> Br { link = true; ra; disp = sext 21 (w land 0x1FFFFF) }
  | 0x1A ->
      Jump { kind = jmp_of_code ((w lsr 14) land 3); ra; rb; hint = w land 0x3FFF }
  | 0x10 | 0x11 | 0x12 | 0x13 -> (
      let func = (w lsr 5) land 0x7F in
      let rc = w land 0x1F in
      match opr_of_codes (opc, func) with
      | None -> Raw w
      | Some op ->
          let rb_operand =
            if w land (1 lsl 12) <> 0 then Imm ((w lsr 13) land 0xFF) else Reg rb
          in
          Opr { op; ra; rb = rb_operand; rc })
  | 0x16 | 0x17 -> (
      let func = (w lsr 5) land 0x7FF in
      match fop_of_codes (opc, func) with
      | None -> Raw w
      | Some op -> Fop { op; fa = ra; fb = rb; fc = w land 0x1F })
  | _ -> (
      match mem_of_opcode opc with
      | Some op -> Mem { op; ra; rb; disp = sext 16 (w land 0xFFFF) }
      | None -> (
          match cbr_of_opcode opc with
          | Some cond -> Cbr { cond; ra; disp = sext 21 (w land 0x1FFFFF) }
          | None -> (
              match fbr_of_opcode opc with
              | Some cond -> Fbr { cond; fa = ra; disp = sext 21 (w land 0x1FFFFF) }
              | None -> Raw w)))

let roundtrips w = encode (decode w) = w land mask32

(* Shared decode memo: instruction words repeat heavily across an image
   (and the same image is decoded by Om.Build, the instrument engine and
   the verifier), so each distinct word is decoded — and re-encoded for
   the roundtrip check — at most once.  Insn.t values are immutable, so
   sharing them between consumers is safe.  The table is domain-local:
   worker domains of a serving process each memoize independently rather
   than racing on (or locking around) one hash table in the decode hot
   path. *)
let memo_key : (int, Insn.t * bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let decode_memo w =
  let w = w land mask32 in
  let memo = Domain.DLS.get memo_key in
  match Hashtbl.find_opt memo w with
  | Some cell -> cell
  | None ->
      let i = decode w in
      let cell = (i, encode i = w) in
      Hashtbl.add memo w cell;
      cell

let decode_cached w = fst (decode_memo w)
let roundtrips_cached w = snd (decode_memo w)

let read_word b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let write_word b off w =
  Bytes.set b off (Char.chr (w land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((w lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((w lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((w lsr 24) land 0xFF))

let decode_at b off = decode (read_word b off)
let decode_at_cached b off = decode_cached (read_word b off)
let encode_at b off i = write_word b off (encode i)
