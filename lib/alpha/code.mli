(** Binary encoding of instructions.

    The encodings are the real Alpha AXP formats (Alpha Architecture
    Reference Manual): memory, branch, integer-operate (register and
    8-bit-literal forms), floating-operate, jump and PAL formats, with the
    architecture's opcode and function-code assignments.  Words are held in
    OCaml [int]s restricted to 32 bits and serialised little-endian. *)

val encode : Insn.t -> int
(** The 32-bit word for an instruction.  [Raw w] encodes to [w].
    @raise Invalid_argument if a displacement or literal is out of range. *)

val decode : int -> Insn.t
(** Decode a 32-bit word.  Words outside the implemented subset decode to
    [Raw]. *)

val read_word : bytes -> int -> int
(** [read_word b off] reads a little-endian 32-bit word. *)

val write_word : bytes -> int -> int -> unit
(** [write_word b off w] stores [w] little-endian at [off]. *)

val decode_at : bytes -> int -> Insn.t
val encode_at : bytes -> int -> Insn.t -> unit

val decode_cached : int -> Insn.t
(** [decode] through a process-wide word-keyed memo.  Instruction words
    repeat heavily within an image and the same words are decoded by the
    IR builder, the instrumentation engine and the verifier; the memo
    decodes each distinct word once.  Semantically identical to
    {!decode} ([Insn.t] is immutable, so sharing is safe). *)

val decode_at_cached : bytes -> int -> Insn.t
(** [decode_cached] of {!read_word}. *)

val roundtrips_cached : int -> bool
(** {!roundtrips} through the same memo (the re-encode needed for the
    check is also done once per distinct word). *)

val roundtrips : int -> bool
(** Whether [encode (decode w) = w]: the word is either outside the
    implemented subset (kept verbatim as [Raw]) or a canonical encoding.
    Words the instrumentation engine emits always round-trip; a corrupted
    field that strays into unused encoding space does not. *)

val fits_disp16 : int -> bool
(** Whether a byte displacement fits the signed 16-bit memory format. *)

val fits_disp21 : int -> bool
(** Whether a word displacement fits the signed 21-bit branch format. *)
