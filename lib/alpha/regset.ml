type t = { i : int; f : int }

let empty = { i = 0; f = 0 }
let is_empty s = s.i = 0 && s.f = 0

let bit r = if r >= 0 && r < 31 then 1 lsl r else 0

let add r s = { s with i = s.i lor bit r }
let add_f r s = { s with f = s.f lor bit r }
let mem r s = r >= 0 && r < 31 && s.i land (1 lsl r) <> 0
let mem_f r s = r >= 0 && r < 31 && s.f land (1 lsl r) <> 0
let remove r s = { s with i = s.i land lnot (bit r) }
let remove_f r s = { s with f = s.f land lnot (bit r) }
let union a b = { i = a.i lor b.i; f = a.f lor b.f }
let inter a b = { i = a.i land b.i; f = a.f land b.f }
let diff a b = { i = a.i land lnot b.i; f = a.f land lnot b.f }
let subset a b = a.i land lnot b.i = 0 && a.f land lnot b.f = 0
let equal a b = a.i = b.i && a.f = b.f

let of_list rs = List.fold_left (fun s r -> add r s) empty rs
let of_list_f rs = List.fold_left (fun s r -> add_f r s) empty rs

let members mask =
  let rec go r acc = if r < 0 then acc else go (r - 1) (if mask land (1 lsl r) <> 0 then r :: acc else acc) in
  go 30 []

let ints s = members s.i
let fps s = members s.f

(* Kernighan loop: one iteration per set bit, no list materialised *)
let popcount mask =
  let n = ref 0 and m = ref mask in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr n
  done;
  !n

let cardinal s = popcount s.i + popcount s.f

let fold_mask fn mask acc =
  let acc = ref acc and m = ref mask in
  while !m <> 0 do
    let low = !m land - !m in
    (* log2 of the isolated lowest bit; masks never exceed bit 30 *)
    let r = popcount (low - 1) in
    acc := fn r !acc;
    m := !m land (!m - 1)
  done;
  !acc

let fold_ints fn s acc = fold_mask fn s.i acc
let fold_fps fn s acc = fold_mask fn s.f acc

let caller_saves =
  union (of_list Reg.caller_save) (of_list_f Reg.caller_save_f)

let pp ppf s =
  let names =
    List.map Reg.name (ints s) @ List.map Reg.fname (fps s)
  in
  Format.fprintf ppf "{%s}" (String.concat "," names)
