(** Content-addressed cache of prepared analysis modules — shared,
    concurrency-safe, and optionally backed by a persistent on-disk
    store.

    Selecting, laying out and provisionally linking a tool's analysis
    module — and running the dataflow-summary analysis over the linked
    image — depends only on the analysis units (plus the process-constant
    runtime library) and on the instrumentation options, not on the
    application being instrumented.  {!Instrument} therefore keys this
    work by a digest of the serialised analysis units plus an option
    fingerprint and reuses it across a whole workload sweep: the 15
    workloads × 11 tools benchmark prepares each tool once instead of 165
    times.

    {b Concurrency.}  Every operation is safe to call from any number of
    domains (the serving daemon's worker pool shares this one cache).  A
    miss publishes its key as in-flight and builds outside the lock;
    concurrent requests for the same key wait for the build instead of
    duplicating it, so N simultaneous first requests for one key are
    exactly one miss and N−1 hits.  Cached values are immutable — the
    application IR, whose stub lists instrumentation mutates in place, is
    never handed out directly: {!find_or_add_program} returns a fresh
    {!Om.Ir.copy} per call.

    {b Persistence.}  {!set_store} points the cache at a directory; every
    entry built thereafter is written through (temp file + atomic rename)
    and later lookups — in this process after {!clear}, in other worker
    processes, or after a daemon restart — are served from disk.  Entries
    carry a format version, the OCaml version and the full content key;
    anything stale or unreadable is silently treated as a miss.

    The option fingerprint is conservative: today none of the cached
    artefacts depend on the options, but any option that could affect
    analysis-side code generation is folded into the key so a stale entry
    can never be replayed under different options (a changed option is a
    guaranteed miss).  Correctness never depends on this cache — the
    benchmark harness and the tests check that cold, warm and disk-served
    paths produce byte-identical instrumented images. *)

type prepared = {
  pr_pl : Linker.Link.placement;  (** analysis-module layout *)
  pr_summaries : Om.Dataflow.t;  (** per-procedure clobber summaries *)
  pr_img : Linker.Link.image;  (** provisional link (summary bases) *)
  pr_text_base : int;  (** text base of the provisional link *)
}

val find_or_add : string -> (unit -> prepared) -> prepared
(** [find_or_add key build] returns the cached entry for [key], building
    and caching it on a miss.  Exceptions from [build] propagate and cache
    nothing (waiters blocked on the same key retry). *)

val find_or_add_program : string -> (unit -> Om.Ir.program) -> Om.Ir.program
(** Same, for the application's built IR ({!Om.Build.program}), which is
    tool-independent: keyed by a digest of the serialised executable, one
    build serves every tool in a sweep.  Returns a fresh per-request
    {!Om.Ir.copy} of the cached master on every call (hit or miss): the
    master's stub lists stay empty forever, and concurrent
    instrumentation jobs for the same executable cannot observe each
    other's stubs. *)

(** The final link of an analysis module at its real bases: the emitted
    image plus the assembled analysis blob (text ++ rdata ++ data ++
    zeroed bss, heap-mode poke applied).  Both depend only on the
    prepared module, the placement bases and the symbol overrides — all
    folded into the key — so repeat instrumentations of the same
    (tool, application) pair relink nothing.  [ln_blob] is a template:
    callers copy it before placing it in an executable image. *)
type linked = {
  ln_img : Linker.Link.image;
  ln_blob : bytes;
}

val find_or_add_linked : string -> (unit -> linked) -> linked

val find_or_add_image : string -> (unit -> string * string) -> string * string
(** Whole-image cache for the serving daemon, layered above the three
    pipeline caches: the value is the complete instrumented image as
    [(hex digest, serialised bytes)], keyed by (executable digest, tool
    name, option fingerprint).  Instrumentation is deterministic, so a
    repeat request skips even the per-request splice and code
    generation; with a store attached, a restarted daemon serves repeat
    instrumentations without touching the toolchain at all. *)

val exe_digest : Objfile.Exe.t -> string
val unit_digest : Objfile.Unit_file.t -> string
(** Content digests of the serialised value, memoized by physical
    identity so sweeps don't reserialise the same executable or unit on
    every call.  The memo is a bounded ring of weak slots: it never
    retains an executable the rest of the process has dropped (a
    long-lived server digests an unbounded stream of them), and it is
    emptied by {!clear}. *)

val set_store : string option -> unit
(** Attach (or detach, with [None]) a persistent on-disk store directory.
    The directory is created if missing.  Entries are written through on
    every build and served back on any later miss, including across
    {!clear} and across processes sharing the directory. *)

val store : unit -> string option
(** The store directory currently attached, if any. *)

val clear : unit -> unit
(** Drop every in-memory entry (the benchmark's cold mode).  The on-disk
    store, if attached, is untouched — after [clear] lookups refill from
    disk; detach the store first for a truly cold run. *)

val hits : unit -> int
val misses : unit -> int
(** Cumulative process-wide counters (not reset by {!clear}).  With
    in-flight deduplication the split is deterministic even under
    contention: concurrent first requests for one key count one miss,
    the rest hits. *)

val disk_hits : unit -> int
(** Lookups served from the persistent store rather than built. *)

val size : unit -> int
(** Number of live in-memory entries. *)
