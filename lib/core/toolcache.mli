(** Content-addressed cache of prepared analysis modules.

    Selecting, laying out and provisionally linking a tool's analysis
    module — and running the dataflow-summary analysis over the linked
    image — depends only on the analysis units (plus the process-constant
    runtime library) and on the instrumentation options, not on the
    application being instrumented.  {!Instrument} therefore keys this
    work by a digest of the serialised analysis units plus an option
    fingerprint and reuses it across a whole workload sweep: the 15
    workloads × 11 tools benchmark prepares each tool once instead of 165
    times.

    The option fingerprint is conservative: today none of the cached
    artefacts depend on the options, but any option that could affect
    analysis-side code generation is folded into the key so a stale entry
    can never be replayed under different options (a changed option is a
    guaranteed miss).  Correctness never depends on this cache — the
    benchmark harness and the tests check that cold and warm paths produce
    byte-identical instrumented images. *)

type prepared = {
  pr_pl : Linker.Link.placement;  (** analysis-module layout *)
  pr_summaries : Om.Dataflow.t;  (** per-procedure clobber summaries *)
  pr_img : Linker.Link.image;  (** provisional link (summary bases) *)
  pr_text_base : int;  (** text base of the provisional link *)
}

val find_or_add : string -> (unit -> prepared) -> prepared
(** [find_or_add key build] returns the cached entry for [key], building
    and caching it on a miss.  Exceptions from [build] propagate and cache
    nothing. *)

val find_or_add_program : string -> (unit -> Om.Ir.program) -> Om.Ir.program
(** Same, for the application's built IR ({!Om.Build.program}), which is
    tool-independent: keyed by a digest of the serialised executable, one
    build serves every tool in a sweep.  Instrumentation mutates the IR
    only through the per-instruction stub lists, so those are reset to
    empty on every lookup (hit or miss) before the program is returned. *)

(** The final link of an analysis module at its real bases: the emitted
    image plus the assembled analysis blob (text ++ rdata ++ data ++
    zeroed bss, heap-mode poke applied).  Both depend only on the
    prepared module, the placement bases and the symbol overrides — all
    folded into the key — so repeat instrumentations of the same
    (tool, application) pair relink nothing.  [ln_blob] is a template:
    callers copy it before placing it in an executable image. *)
type linked = {
  ln_img : Linker.Link.image;
  ln_blob : bytes;
}

val find_or_add_linked : string -> (unit -> linked) -> linked

val exe_digest : Objfile.Exe.t -> string
val unit_digest : Objfile.Unit_file.t -> string
(** Content digests of the serialised value, memoized by physical
    identity so sweeps don't reserialise the same executable or unit on
    every call.  The memos are emptied by {!clear}. *)

val clear : unit -> unit
(** Drop every entry (the benchmark's cold mode). *)

val hits : unit -> int
val misses : unit -> int
(** Cumulative process-wide counters (not reset by {!clear}). *)

val size : unit -> int
(** Number of live entries. *)
