open Objfile

type save_strategy = Summary | Save_all | Summary_and_live
type call_style = Wrapper | Inline_saves | Inline_body | Specialized
type heap_mode = Linked | Partitioned of int

type options = {
  save_strategy : save_strategy;
  call_style : call_style;
  heap_mode : heap_mode;
}

let default_options =
  { save_strategy = Summary; call_style = Wrapper; heap_mode = Linked }

type pipeline = Fast | Ref

(* every option that could affect analysis-side codegen is part of the
   toolchain-cache key (see Toolcache): changing an option is a miss *)
let options_key o =
  Printf.sprintf "%s/%s/%s"
    (match o.save_strategy with
    | Summary -> "summary"
    | Save_all -> "save-all"
    | Summary_and_live -> "summary+live")
    (match o.call_style with
    | Wrapper -> "wrapper"
    | Inline_saves -> "inline"
    | Inline_body -> "spliced"
    | Specialized -> "specialized")
    (match o.heap_mode with
    | Linked -> "linked"
    | Partitioned n -> Printf.sprintf "partitioned:%d" n)

type audit_site = {
  as_pc : int;
  as_place : Api.place;
  as_proc : string;
  as_summary : Alpha.Regset.t;
  as_nargs : int;
}

type audit = {
  au_options : options;
  au_sites : audit_site list;
  au_layout : Om.Codegen.site list;
  au_prog_text : int * int;
  au_anal_text : int * int;
  au_anal_region : int * int;
  au_wrappers : (string * int) list;
  au_procs : (string * int) list;
}

type info = {
  i_sites : int;
  i_calls : int;
  i_text_growth : int;
  i_analysis_bytes : int;
  i_map : int -> int;
  i_audit : audit;
}

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let align16 n = (n + 15) / 16 * 16

(* Build a throwaway executable for the analysis module so OM can compute
   dataflow summaries; the summaries are base-independent. *)
(* Decode a procedure's instructions from a linked analysis image; used
   to qualify and extract bodies for the inlining optimization. *)
let decode_proc text ~text_base ~addr ~size =
  List.init (size / 4) (fun i -> Alpha.Code.decode_at text (addr - text_base + (4 * i)))

(* A routine can be spliced at the site when its body is position
   independent as a group: no calls, no indirect jumps, every PC-relative
   branch stays inside, and a single [ret] as the last instruction. *)
let inlinable_body text ~text_base ~addr ~size =
  if size < 8 || size > 200 || size mod 4 <> 0 then None
  else begin
    let insns = decode_proc text ~text_base ~addr ~size in
    let n = size / 4 in
    let ok =
      List.for_all2
        (fun i insn ->
          if i = n - 1 then Alpha.Insn.is_return insn
          else
            match insn with
            | Alpha.Insn.Jump _ | Alpha.Insn.Raw _ -> false
            | Alpha.Insn.Br { link = true; _ } -> false
            | _ -> (
                match Alpha.Insn.branch_target ~pc:(addr + (4 * i)) insn with
                | Some t -> t >= addr && t <= addr + size - 4
                | None -> true))
        (List.init n Fun.id) insns
    in
    if ok then Some (List.filteri (fun i _ -> i < n - 1) insns) else None
  end

(* The [Specialized] style only splices the tightest shape: a straight-line
   leaf — no control flow at all, no calls, a single trailing [ret], and a
   short body (the counter-increment shape used by prof/branch/trace).
   Anything else becomes a direct call with the specialized save set. *)
let max_leaf_insns = 16

let leaf_body text ~text_base ~addr ~size =
  if size < 8 || size > 4 * (max_leaf_insns + 1) || size mod 4 <> 0 then None
  else begin
    let insns = decode_proc text ~text_base ~addr ~size in
    let n = size / 4 in
    let ok =
      List.for_all2
        (fun i insn ->
          if i = n - 1 then Alpha.Insn.is_return insn
          else
            match insn with
            | Alpha.Insn.Jump _ | Alpha.Insn.Raw _ | Alpha.Insn.Br _
            | Alpha.Insn.Cbr _ | Alpha.Insn.Fbr _ | Alpha.Insn.Call_pal _ ->
                false
            | Alpha.Insn.Mem _ | Alpha.Insn.Opr _ | Alpha.Insn.Fop _ -> true)
        (List.init n Fun.id) insns
    in
    if ok then Some (List.filteri (fun i _ -> i < n - 1) insns) else None
  end

let analysis_summaries ~build pl =
  let bases =
    Linker.Link.bases_for pl ~text:0x10000
      ~rdata:(align16 (0x10000 + pl.Linker.Link.pl_sizes.(0)))
      ~data:
        (align16
           (0x10000 + pl.Linker.Link.pl_sizes.(0) + pl.Linker.Link.pl_sizes.(1))
         + 0x1000)
  in
  let img = Linker.Link.emit ~symbol_overrides:[ ("_end", 0x200000) ] pl bases in
  let exe =
    {
      Exe.x_entry = bases.Linker.Link.b_text;
      x_segs =
        [ { Exe.seg_vaddr = bases.Linker.Link.b_text; seg_bytes = img.Linker.Link.i_text; seg_bss = 0; seg_write = false } ];
      x_symbols = List.map snd img.Linker.Link.i_globals;
      x_text_start = bases.Linker.Link.b_text;
      x_text_size = Bytes.length img.Linker.Link.i_text;
      x_data_start = bases.Linker.Link.b_data;
      x_break = 0;
      x_code_refs = [];
    }
  in
  let prog = build exe in
  (Om.Dataflow.compute prog, img, bases.Linker.Link.b_text)

(* select, lay out and provisionally link the analysis module, and run
   the dataflow-summary analysis over the provisional image; pure in the
   analysis units, so the fast pipeline serves it from [Toolcache] *)
let prepare_analysis ~build analysis =
  let inputs =
    List.map (fun u -> Linker.Link.Unit u) analysis
    @ [ Linker.Link.Lib (Rtlib.libc ()) ]
  in
  let units = Linker.Link.select_units inputs in
  if units = [] then fail "empty analysis module";
  let pl = Linker.Link.layout units in
  let summaries, img, text_base = analysis_summaries ~build pl in
  {
    Toolcache.pr_pl = pl;
    pr_summaries = summaries;
    pr_img = img;
    pr_text_base = text_base;
  }

let instrument ?(options = default_options) ?(pipeline = Fast) ~exe ~tool
    ~analysis () =
  let wrap_errors f =
    try f () with
    | Api.Error m | Failure m -> fail "%s" m
    | Om.Codegen.Error e -> fail "codegen: %s" (Om.Codegen.error_message e)
    | Linker.Link.Error m -> fail "link: %s" m
  in
  wrap_errors @@ fun () ->
  let build =
    match pipeline with Fast -> Om.Build.program | Ref -> Om.Build.program_ref
  in
  (* 1. the user's instrumentation routine annotates the program view;
     the built IR is tool-independent, so the fast pipeline serves it
     from the content-addressed cache across a tool sweep *)
  let prog =
    match pipeline with
    | Ref -> build exe
    | Fast -> Toolcache.find_or_add_program (Toolcache.exe_digest exe)
                (fun () -> build exe)
  in
  let api = Api.create prog in
  tool api;
  let user_actions = Api.actions api in
  (* 2. select and lay out the analysis module (own copy of the runtime);
     content-addressed across calls on the fast pipeline: the key is the
     serialised analysis units plus the option fingerprint, so the same
     tool applied across a workload suite is prepared once *)
  let anal_key =
    match pipeline with
    | Ref -> ""
    | Fast ->
        String.concat "\000" (List.map Toolcache.unit_digest analysis)
        ^ "\001" ^ options_key options
  in
  let prepared =
    match pipeline with
    | Ref -> prepare_analysis ~build analysis
    | Fast ->
        Toolcache.find_or_add anal_key (fun () ->
            prepare_analysis ~build analysis)
  in
  let pl = prepared.Toolcache.pr_pl in
  let summaries = prepared.Toolcache.pr_summaries in
  let prov_img = prepared.Toolcache.pr_img in
  let prov_text_base = prepared.Toolcache.pr_text_base in
  let analysis_globals = prov_img.Linker.Link.i_globals in
  let proc_defined name = List.mem_assoc name analysis_globals in
  if not (proc_defined "__libc_init") then
    fail "analysis module does not define __libc_init (runtime library missing?)";
  (* 3. decide the call list; implicit init call runs first *)
  let nargs_of name =
    match Hashtbl.find_opt (Api.protos api) name with
    | Some p -> List.length p.Proto.p_params
    | None -> 0
  in
  let init_site = Api.first_inst_of_proc (Api.entry_proc api) in
  let fini_actions =
    (* flush the analysis module's buffered stdio after the program (and
       all user ProgramAfter hooks) are done *)
    match Api.exit_proc api with
    | Some p when proc_defined "__libc_fini" ->
        [ { Api.a_proc = "__libc_fini"; a_args = [];
            a_inst = Api.first_inst_of_proc p; a_place = Api.Before;
            a_rank = Api.rank_program_after + 1 } ]
    | Some _ | None -> []
  in
  let actions =
    ({ Api.a_proc = "__libc_init"; a_args = []; a_inst = init_site;
       a_place = Api.Before; a_rank = Api.rank_program_before - 1 }
    :: user_actions)
    @ fini_actions
  in
  (* Same-site ordering: ProgramBefore hooks (and the implicit runtime
     init) run before any block- or instruction-level call planted on the
     same instruction; ProgramAfter hooks (and the stdio flush) after
     them.  A tool may register its per-block counter calls before its
     init hook — under the fail-closed memory map the init really must
     run first, or the counter call dereferences a pointer the init has
     not set up yet.  The sort is stable, so registration order still
     decides within a rank. *)
  let actions = List.stable_sort (fun a b -> compare a.Api.a_rank b.Api.a_rank) actions in
  List.iter
    (fun a ->
      if not (proc_defined a.Api.a_proc) then
        fail "analysis procedure %s is not defined by the analysis module" a.Api.a_proc)
    actions;
  let called =
    List.sort_uniq compare (List.map (fun a -> a.Api.a_proc) actions)
  in
  (* 4. registers each called procedure may clobber *)
  let summary_of name =
    match options.save_strategy with
    | Save_all -> Om.Dataflow.all_caller_saves
    | Summary | Summary_and_live -> Om.Dataflow.modified_by summaries name
  in
  let live_table =
    (* the [Specialized] style always live-filters its save sets,
       whatever the save strategy says *)
    match (options.save_strategy, options.call_style) with
    | Summary_and_live, _ | _, Specialized ->
        let compute =
          match pipeline with
          | Fast -> Om.Liveness.compute
          | Ref -> Om.Liveness.compute_ref
        in
        Some (compute prog)
    | (Summary | Save_all), _ -> None
  in
  (* 5. interned strings and late-bound addresses *)
  let strings = Buffer.create 64 in
  let string_offsets = Hashtbl.create 8 in
  let strings_base = ref 0 in
  let intern s =
    let off =
      match Hashtbl.find_opt string_offsets s with
      | Some off -> off
      | None ->
          let off = Buffer.length strings in
          Buffer.add_string strings s;
          Buffer.add_char strings '\000';
          Hashtbl.replace string_offsets s off;
          off
    in
    fun () -> !strings_base + off
  in
  let wrapper_addrs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let proc_addrs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* bodies for the inlining style: lengths decided on the provisional
     image, instructions read from the finally-placed one (step 7) *)
  let inline_len : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let inline_bodies : (string, Alpha.Insn.t list) Hashtbl.t = Hashtbl.create 16 in
  (match options.call_style with
  | Inline_body | Specialized ->
      let qualifies =
        match options.call_style with
        | Specialized -> leaf_body
        | Wrapper | Inline_saves | Inline_body -> inlinable_body
      in
      let text_len = Bytes.length prov_img.Linker.Link.i_text in
      List.iter
        (fun name ->
          match List.assoc_opt name analysis_globals with
          | Some sym
            when sym.Exe.x_addr >= prov_text_base
                 && sym.Exe.x_addr + sym.Exe.x_size <= prov_text_base + text_len -> (
              match
                qualifies prov_img.Linker.Link.i_text ~text_base:prov_text_base
                  ~addr:sym.Exe.x_addr ~size:sym.Exe.x_size
              with
              | Some body -> Hashtbl.replace inline_len name (List.length body)
              | None -> ())
          | Some _ | None -> ())
        called
  | Wrapper | Inline_saves -> ());
  let callee_of name : Stubgen.callee =
    match options.call_style with
    | Wrapper -> Stubgen.Call (fun () -> Hashtbl.find wrapper_addrs name)
    | Inline_saves -> Stubgen.Call (fun () -> Hashtbl.find proc_addrs name)
    | Inline_body | Specialized -> (
        match Hashtbl.find_opt inline_len name with
        | Some n -> Stubgen.Splice (n, fun () -> Hashtbl.find inline_bodies name)
        | None -> Stubgen.Call (fun () -> Hashtbl.find proc_addrs name))
  in
  (* 6. lower actions onto the IR as stubs *)
  let resolve_arg (a : Api.action) arg =
    match arg with
    | Api.Int v -> Stubgen.R_const v
    | Api.Inst_pc i -> Stubgen.R_const (Api.inst_pc i)
    | Api.Block_pc b -> Stubgen.R_const (Api.block_pc b)
    | Api.Proc_pc p -> Stubgen.R_const (Api.proc_pc p)
    | Api.Regv r -> Stubgen.R_regv r
    | Api.Br_cond_value -> Stubgen.R_cond
    | Api.Eff_addr_value -> Stubgen.R_effaddr
    | Api.Str s ->
        ignore a;
        Stubgen.R_addr (intern s)
  in
  let n_sites = ref 0 in
  let audit_sites = ref [] in
  List.iter
    (fun (a : Api.action) ->
      let ir_inst = Api.ir_inst a.Api.a_inst in
      audit_sites :=
        {
          as_pc = ir_inst.Om.Ir.i_pc;
          as_place = a.Api.a_place;
          as_proc = a.Api.a_proc;
          as_summary = summary_of a.Api.a_proc;
          as_nargs = List.length a.Api.a_args;
        }
        :: !audit_sites;
      let extra_saves =
        match options.call_style with
        | Wrapper -> Alpha.Regset.empty
        | Inline_saves | Inline_body | Specialized ->
            Alpha.Regset.diff (summary_of a.Api.a_proc)
              (Alpha.Regset.of_list
                 (Alpha.Reg.ra
                 :: List.init (List.length a.Api.a_args) (fun i -> 16 + i)))
      in
      let live =
        Option.map
          (fun tbl ->
            match a.Api.a_place with
            | Api.Before | Api.Taken_edge ->
                (* for a taken edge, live-before the branch is a superset
                   of liveness at the taken target *)
                Om.Liveness.live_before tbl ir_inst.Om.Ir.i_pc
            | Api.After ->
                (* the stub runs after the instruction: use the next
                   instruction's live-before set, but never look across a
                   procedure boundary *)
                let pc = ir_inst.Om.Ir.i_pc in
                let same_proc =
                  match (Om.Ir.proc_at prog pc, Om.Ir.proc_at prog (pc + 4)) with
                  | Some p, Some q -> p == q
                  | _ -> false
                in
                if same_proc then Om.Liveness.live_before tbl (pc + 4)
                else Om.Liveness.all_regs)
          live_table
      in
      let stub =
        Stubgen.site_stub ~site_insn:ir_inst.Om.Ir.i_insn
          ~args:(List.map (resolve_arg a) a.Api.a_args)
          ~extra_saves ?live
          ~callee:(callee_of a.Api.a_proc) ()
      in
      incr n_sites;
      match a.Api.a_place with
      | Api.Before -> Om.Ir.add_before ir_inst stub
      | Api.After -> Om.Ir.add_after ir_inst stub
      | Api.Taken_edge -> Om.Ir.add_taken ir_inst stub)
    actions;
  (* 7. placement *)
  let text_base = exe.Exe.x_text_start in
  let new_text_size = Om.Codegen.sizeof prog in
  let a_text = align16 (text_base + new_text_size) in
  let a_rdata = align16 (a_text + pl.Linker.Link.pl_sizes.(0)) in
  let a_data = align16 (a_rdata + pl.Linker.Link.pl_sizes.(1)) in
  let a_end = a_data + pl.Linker.Link.pl_sizes.(2) + pl.Linker.Link.pl_sizes.(3) in
  let bases = Linker.Link.bases_for pl ~text:a_text ~rdata:a_rdata ~data:a_data in
  (* heap-mode symbol handling *)
  (* the analysis module's `_end' is pointed at the application's break:
     in linked mode both allocators then share the application heap *)
  let overrides =
    ("_end", exe.Exe.x_break)
    ::
    (match options.heap_mode with
    | Linked -> (
        match Exe.find_symbol exe "__curbrk" with
        | Some s -> [ ("__curbrk", s.Exe.x_addr) ]
        | None -> [])
    | Partitioned _ -> [])
  in
  let build_linked () =
    let img = Linker.Link.emit ~symbol_overrides:overrides pl bases in
    (* analysis blob: text ++ pad ++ rdata ++ pad ++ data ++ zeroed bss
       (the paper's "uninitialised data converted to initialised"). *)
    let blob_len = a_end - a_text in
    let blob = Bytes.make blob_len '\000' in
    Bytes.blit img.Linker.Link.i_text 0 blob 0 (Bytes.length img.Linker.Link.i_text);
    Bytes.blit img.Linker.Link.i_rdata 0 blob (a_rdata - a_text)
      (Bytes.length img.Linker.Link.i_rdata);
    Bytes.blit img.Linker.Link.i_data 0 blob (a_data - a_text)
      (Bytes.length img.Linker.Link.i_data);
    (* partitioned heap: preset the analysis module's break variable *)
    (match options.heap_mode with
    | Linked -> ()
    | Partitioned offset -> (
        match List.assoc_opt "__curbrk" img.Linker.Link.i_globals with
        | Some s ->
            let off = s.Exe.x_addr - a_text in
            let v = Int64.of_int (exe.Exe.x_break + offset) in
            for k = 0 to 7 do
              Bytes.set blob (off + k)
                (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF))
            done
        | None -> fail "partitioned heap mode: analysis module has no __curbrk"));
    { Toolcache.ln_img = img; ln_blob = blob }
  in
  (* everything in the final link depends only on the prepared module, the
     bases and the overrides; the fast pipeline keys those and relinks
     nothing when the same tool meets the same application layout again *)
  let linked =
    match pipeline with
    | Ref -> build_linked ()
    | Fast ->
        let key =
          Digest.string
            (Printf.sprintf "%s\002%d:%d:%d:%d\003%s" anal_key a_text a_rdata
               a_data a_end
               (String.concat ";"
                  (List.map
                     (fun (n, v) -> n ^ "=" ^ string_of_int v)
                     overrides)))
        in
        Toolcache.find_or_add_linked key build_linked
  in
  let img = linked.Toolcache.ln_img in
  let blob =
    (* the template may be shared with other callers; hand each image its
       own copy *)
    match pipeline with
    | Ref -> linked.Toolcache.ln_blob
    | Fast -> Bytes.copy linked.Toolcache.ln_blob
  in
  List.iter
    (fun (name, sym) -> Hashtbl.replace proc_addrs name sym.Exe.x_addr)
    img.Linker.Link.i_globals;
  (* final instruction bodies for spliced routines *)
  Hashtbl.iter
    (fun name n ->
      match List.assoc_opt name img.Linker.Link.i_globals with
      | Some sym ->
          let body =
            decode_proc img.Linker.Link.i_text ~text_base:a_text ~addr:sym.Exe.x_addr
              ~size:((n + 1) * 4)
          in
          Hashtbl.replace inline_bodies name (List.filteri (fun i _ -> i < n) body)
      | None -> ())
    inline_len;
  (* 8. wrappers and strings after the analysis module *)
  let wrappers_at = align16 a_end in
  let wrapper_code = Buffer.create 256 in
  (match options.call_style with
  | Inline_saves | Inline_body | Specialized -> ()
  | Wrapper ->
      List.iter
        (fun name ->
          let at = wrappers_at + Buffer.length wrapper_code in
          Hashtbl.replace wrapper_addrs name at;
          let insns =
            Stubgen.wrapper ~at ~summary:(summary_of name) ~nargs:(nargs_of name)
              ~proc_addr:(Hashtbl.find proc_addrs name)
          in
          List.iter
            (fun i ->
              let w = Alpha.Code.encode i in
              Buffer.add_char wrapper_code (Char.chr (w land 0xFF));
              Buffer.add_char wrapper_code (Char.chr ((w lsr 8) land 0xFF));
              Buffer.add_char wrapper_code (Char.chr ((w lsr 16) land 0xFF));
              Buffer.add_char wrapper_code (Char.chr ((w lsr 24) land 0xFF)))
            insns)
        called);
  strings_base := align16 (wrappers_at + Buffer.length wrapper_code);
  let gap_end = !strings_base + Buffer.length strings in
  if gap_end > Linker.Link.rdata_base then
    fail
      "instrumented program does not fit the text gap (%#x past %#x): \
       application too large"
      gap_end Linker.Link.rdata_base;
  (* 9. regenerate the application text *)
  let result = Om.Codegen.generate prog in
  (* patch data-resident code references (e.g. taken function addresses) *)
  let segs =
    List.map
      (fun seg ->
        let patches =
          List.filter
            (fun (cr, _) ->
              cr.Exe.cr_addr >= seg.Exe.seg_vaddr
              && cr.Exe.cr_addr < seg.Exe.seg_vaddr + Bytes.length seg.Exe.seg_bytes)
            result.Om.Codegen.r_data_patches
        in
        if patches = [] then seg
        else begin
          let b = Bytes.copy seg.Exe.seg_bytes in
          List.iter
            (fun (cr, new_target) ->
              let off = cr.Exe.cr_addr - seg.Exe.seg_vaddr in
              match cr.Exe.cr_kind with
              | Exe.Cr_quad ->
                  let v = Int64.of_int new_target in
                  for k = 0 to 7 do
                    Bytes.set b (off + k)
                      (Char.chr
                         (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF))
                  done
              | Exe.Cr_long -> Alpha.Code.write_word b off (new_target land 0xFFFFFFFF)
              | Exe.Cr_hi | Exe.Cr_lo ->
                  failwith "Instrument: hi/lo code ref escaped into data")
            patches;
          { seg with Exe.seg_bytes = b }
        end)
      (List.filter (fun s -> s.Exe.seg_vaddr <> text_base) exe.Exe.x_segs)
  in
  let wrappers_bytes = Buffer.to_bytes wrapper_code in
  let strings_bytes = Buffer.to_bytes strings in
  let new_segs =
    { Exe.seg_vaddr = text_base; seg_bytes = result.Om.Codegen.r_text;
      seg_bss = 0; seg_write = false }
    :: (* the analysis-module blob carries its own data and bss (counters,
          the partitioned [__curbrk]), so it must stay writable even
          though it is based in the text–data gap *)
       { Exe.seg_vaddr = a_text; seg_bytes = blob; seg_bss = 0;
         seg_write = true }
    ::
    (if Bytes.length wrappers_bytes > 0 || Bytes.length strings_bytes > 0 then
       [
         {
           Exe.seg_vaddr = wrappers_at;
           seg_bytes =
             (let total = gap_end - wrappers_at in
              let b = Bytes.make total '\000' in
              Bytes.blit wrappers_bytes 0 b 0 (Bytes.length wrappers_bytes);
              Bytes.blit strings_bytes 0 b (!strings_base - wrappers_at)
                (Bytes.length strings_bytes);
              b);
           seg_bss = 0;
           seg_write = false;
         };
       ]
     else [])
    @ segs
  in
  (* application symbols move with the text; analysis symbols join the
     table under a partitioned name space *)
  let map = result.Om.Codegen.r_map in
  let in_old_text a = a >= text_base && a < text_base + exe.Exe.x_text_size in
  let moved_syms =
    List.map
      (fun s -> if in_old_text s.Exe.x_addr then { s with Exe.x_addr = map s.Exe.x_addr } else s)
      exe.Exe.x_symbols
  in
  let analysis_syms =
    List.map
      (fun (_, s) -> { s with Exe.x_name = "anal$" ^ s.Exe.x_name })
      img.Linker.Link.i_globals
  in
  let exe' =
    {
      Exe.x_entry = map exe.Exe.x_entry;
      x_segs = new_segs;
      x_symbols = moved_syms @ analysis_syms;
      x_text_start = text_base;
      x_text_size = new_text_size;
      x_data_start = exe.Exe.x_data_start;
      x_break = exe.Exe.x_break;
      x_code_refs = [];
    }
  in
  let audit =
    {
      au_options = options;
      au_sites = List.rev !audit_sites;
      au_layout = result.Om.Codegen.r_sites;
      au_prog_text = (text_base, new_text_size);
      au_anal_text = (a_text, Bytes.length img.Linker.Link.i_text);
      au_anal_region = (a_text, gap_end - a_text);
      au_wrappers = Hashtbl.fold (fun k v acc -> (k, v) :: acc) wrapper_addrs [];
      au_procs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) proc_addrs [];
    }
  in
  let info =
    {
      i_sites = !n_sites;
      i_calls = List.length called;
      i_text_growth = new_text_size - exe.Exe.x_text_size;
      i_analysis_bytes = gap_end - a_text;
      i_map = map;
      i_audit = audit;
    }
  in
  (exe', info)

let instrument_source ?options ?(pipeline = Fast) ~exe ~tool ~analysis_src () =
  let unit_ =
    try
      Rtlib.compile_user ~cache:(pipeline = Fast) ~name:"analysis.o"
        analysis_src
    with Minic.Driver.Error m -> fail "analysis routines: %s" m
  in
  instrument ?options ~pipeline ~exe ~tool ~analysis:[ unit_ ] ()
