open Alpha

type target = unit -> int

type resolved_arg =
  | R_const of int
  | R_addr of (unit -> int)
  | R_regv of Reg.t
  | R_cond
  | R_effaddr

(* ldah/lda pair building sext16(hi)<<16 + sext16(lo) on top of [base]. *)
let hi_lo_pair ~base r v =
  let hi = (v + 0x8000) asr 16 in
  let lo = v - (hi lsl 16) in
  [ Insn.Mem { op = Insn.Ldah; ra = r; rb = base; disp = hi };
    Insn.Mem { op = Insn.Lda; ra = r; rb = r; disp = lo } ]

(* the pair only reaches values whose rounded-up high half fits the signed
   16-bit [ldah] displacement: that excludes (0x7FFF_7FFF, 0x7FFF_FFFF],
   where the carry from the negative [lda] half would need hi = 0x8000 *)
let hi_lo_ok v =
  let hi = (v + 0x8000) asr 16 in
  hi >= -32768 && hi <= 32767

let fits32 v = v >= -0x8000_0000 && v <= 0x7FFF_FFFF && hi_lo_ok v

let sext32 v = Int64.to_int (Int64.of_int32 (Int64.to_int32 (Int64.of_int v)))

(* add sext32(v) on top of [base] (into [r]); covers the hi = 0x8000 corner
   that [hi_lo_pair] cannot encode by splitting the high half in two *)
let add_low32 ~base r v =
  if v = 0 && base = r then []
  else if v >= -32768 && v <= 32767 then
    [ Insn.Mem { op = Insn.Lda; ra = r; rb = base; disp = v } ]
  else if hi_lo_ok v then hi_lo_pair ~base r v
  else
    (* v in (0x7FFF_7FFF, 0x7FFF_FFFF]: 0x8000_0000 via two ldah *)
    [ Insn.Mem { op = Insn.Ldah; ra = r; rb = base; disp = 0x4000 };
      Insn.Mem { op = Insn.Ldah; ra = r; rb = r; disp = 0x4000 };
      Insn.Mem { op = Insn.Lda; ra = r; rb = r; disp = v - 0x8000_0000 } ]

let load_const r v =
  if v >= -32768 && v <= 32767 then
    [ Insn.Mem { op = Insn.Lda; ra = r; rb = Reg.zero; disp = v } ]
  else if v >= -0x8000_0000 && v <= 0x7FFF_FFFF then add_low32 ~base:Reg.zero r v
  else begin
    (* build the high 32 bits, shift, add the low 32; the subtraction is
       done in 64 bits — [v - low32] can overflow the host int when [v]
       is near [max_int] and [low32] is negative *)
    let low32 = sext32 v in
    let high =
      Int64.to_int
        (Int64.shift_right (Int64.sub (Int64.of_int v) (Int64.of_int low32)) 32)
    in
    (* [high] fits the pair: OCaml ints keep |high| well under 2^31 *)
    (if high >= -32768 && high <= 32767 then
       [ Insn.Mem { op = Insn.Lda; ra = r; rb = Reg.zero; disp = high } ]
     else hi_lo_pair ~base:Reg.zero r high)
    @ [ Insn.Opr { op = Insn.Sll; ra = r; rb = Insn.Imm 32; rc = r } ]
    @ add_low32 ~base:r r low32
  end

(* -- site stubs --------------------------------------------------------- *)

let needs_fp_scratch site_insn args =
  List.exists (fun a -> a = R_cond) args
  && (match site_insn with Insn.Fbr _ -> true | _ -> false)

(* registers whose values the stub must observe to compute its arguments *)
let arg_sources ~site_insn args =
  List.fold_left
    (fun acc arg ->
      match arg with
      | R_regv r -> Regset.add r acc
      | R_cond -> Regset.union acc (Insn.uses site_insn)
      | R_effaddr -> (
          match site_insn with
          | Insn.Mem { rb; _ } -> Regset.add rb acc
          | _ -> acc)
      | R_const _ | R_addr _ -> acc)
    Regset.empty args

let build_frame ~site_insn ~args ~extra_saves ~live ~needs_ra =
  let nargs = List.length args in
  (* An argument-source register only needs a slot when an earlier
     argument move can clobber it before it is read — i.e. when it is
     itself one of the argument registers a0..a<n-1>.  Every other
     source still holds its original value when its argument is
     computed, so a dead one is read directly and never spilled.
     Floating-point sources are never written by the argument moves
     (the f1 transfer scratch is force-saved separately below). *)
  let forced_sources =
    Regset.of_list
      (List.filter
         (fun r -> r >= 16 && r < 16 + nargs)
         (Regset.ints (arg_sources ~site_insn args)))
  in
  let keep =
    match live with
    | None -> fun _ -> true
    | Some l ->
        let must = Regset.union l forced_sources in
        fun r -> Regset.mem r must
  in
  let keep_f =
    match live with
    | None -> fun _ -> true
    | Some l -> fun r -> Regset.mem_f r l
  in
  let int_regs =
    let candidates =
      (if needs_ra then [ Reg.ra ] else []) @ List.init nargs (fun i -> 16 + i)
    in
    let base = List.filter keep candidates in
    let extra =
      Regset.ints extra_saves
      |> List.filter (fun r -> keep r && not (List.mem r base))
    in
    base @ extra
  in
  let fp_extra = List.filter keep_f (Regset.fps extra_saves) in
  let fp_scratch = needs_fp_scratch site_insn args in
  let fp_regs = if fp_scratch && not (List.mem 1 fp_extra) then 1 :: fp_extra else fp_extra in
  let nint = List.length int_regs in
  let nfp = List.length fp_regs in
  let scratch_needed = fp_scratch in
  let size = 8 * (nint + nfp + if scratch_needed then 1 else 0) in
  let int_slots = List.mapi (fun k r -> (r, 8 * k)) int_regs in
  let fp_slots = List.mapi (fun k r -> (r, 8 * (nint + k))) fp_regs in
  let scratch = if scratch_needed then 8 * (nint + nfp) else -1 in
  (int_slots, fp_slots, scratch, size)

let slot_of slots r = List.assoc_opt r slots

(* instructions computing argument [i] into register 16+i.  When [final]
   is false this is a sizing dry-run: late-bound addresses ([R_addr]) are
   replaced by a placeholder of identical encoded size. *)
let arg_insns ~final ~site_insn ~int_slots ~scratch ~frame_size i arg =
  let dst = 16 + i in
  let read_reg r k =
    (* produce instructions placing the *original* value of r in k *)
    if r = Reg.zero then [ Insn.Opr { op = Insn.Bis; ra = Reg.zero; rb = Insn.Reg Reg.zero; rc = k } ]
    else if r = Reg.sp then [ Insn.Mem { op = Insn.Lda; ra = k; rb = Reg.sp; disp = frame_size } ]
    else
      match slot_of int_slots r with
      | Some off -> [ Insn.Mem { op = Insn.Ldq; ra = k; rb = Reg.sp; disp = off } ]
      | None -> [ Insn.Opr { op = Insn.Bis; ra = Reg.zero; rb = Insn.Reg r; rc = k } ]
  in
  match arg with
  | R_const v -> load_const dst v
  | R_addr f ->
      let v = if final then f () else 0x10000 in
      if not (fits32 v) then failwith "Stubgen: R_addr value out of 32-bit range";
      hi_lo_pair ~base:Reg.zero dst v
  | R_regv r -> read_reg r dst
  | R_effaddr -> (
      match site_insn with
      | Insn.Mem { rb; disp; _ } ->
          if rb = Reg.sp then
            [ Insn.Mem { op = Insn.Lda; ra = dst; rb = Reg.sp; disp = disp + frame_size } ]
          else begin
            match slot_of int_slots rb with
            | Some off ->
                [ Insn.Mem { op = Insn.Ldq; ra = dst; rb = Reg.sp; disp = off };
                  Insn.Mem { op = Insn.Lda; ra = dst; rb = dst; disp } ]
            | None -> [ Insn.Mem { op = Insn.Lda; ra = dst; rb; disp } ]
          end
      | _ -> failwith "Stubgen: EffAddrValue on a non-memory instruction")
  | R_cond -> (
      match site_insn with
      | Insn.Cbr { cond; ra; _ } -> (
          let src_setup, src =
            if ra = Reg.zero then ([], Reg.zero)
            else
              match slot_of int_slots ra with
              | Some off ->
                  ([ Insn.Mem { op = Insn.Ldq; ra = dst; rb = Reg.sp; disp = off } ], dst)
              | None -> ([], ra)
          in
          let cmp op_ =
            src_setup @ [ Insn.Opr { op = op_; ra = src; rb = Insn.Imm 0; rc = dst } ]
          in
          let cmp_rev op_ =
            src_setup
            @ [ Insn.Opr { op = op_; ra = Reg.zero; rb = Insn.Reg src; rc = dst } ]
          in
          let invert = [ Insn.Opr { op = Insn.Xor; ra = dst; rb = Insn.Imm 1; rc = dst } ] in
          match cond with
          | Insn.Beq -> cmp Insn.Cmpeq
          | Insn.Bne -> cmp Insn.Cmpeq @ invert
          | Insn.Blt -> cmp Insn.Cmplt
          | Insn.Ble -> cmp Insn.Cmple
          | Insn.Bgt -> cmp_rev Insn.Cmplt
          | Insn.Bge -> cmp_rev Insn.Cmple
          | Insn.Blbs ->
              src_setup @ [ Insn.Opr { op = Insn.And_; ra = src; rb = Insn.Imm 1; rc = dst } ]
          | Insn.Blbc ->
              src_setup
              @ [ Insn.Opr { op = Insn.And_; ra = src; rb = Insn.Imm 1; rc = dst } ]
              @ invert)
      | Insn.Fbr { cond; fa; _ } ->
          let cmp op_ fa_ fb_ =
            [ Insn.Fop { op = op_; fa = fa_; fb = fb_; fc = 1 } ]
          in
          let compare =
            match cond with
            | Insn.Fbeq -> cmp Insn.Cmpteq fa Reg.fzero
            | Insn.Fbne -> cmp Insn.Cmpteq fa Reg.fzero
            | Insn.Fblt -> cmp Insn.Cmptlt fa Reg.fzero
            | Insn.Fble -> cmp Insn.Cmptle fa Reg.fzero
            | Insn.Fbgt -> cmp Insn.Cmptlt Reg.fzero fa
            | Insn.Fbge -> cmp Insn.Cmptle Reg.fzero fa
          in
          let transfer =
            [ Insn.Mem { op = Insn.Stt; ra = 1; rb = Reg.sp; disp = scratch };
              Insn.Mem { op = Insn.Ldq; ra = dst; rb = Reg.sp; disp = scratch } ]
          in
          let normalise =
            match cond with
            | Insn.Fbne ->
                (* taken when fa <> 0: invert the equality's bits *)
                [ Insn.Opr { op = Insn.Cmpeq; ra = dst; rb = Insn.Imm 0; rc = dst } ]
            | Insn.Fbeq | Insn.Fblt | Insn.Fble | Insn.Fbgt | Insn.Fbge -> []
          in
          compare @ transfer @ normalise
      | _ -> failwith "Stubgen: BrCondValue on a non-branch instruction")

type callee = Call of target | Splice of int * (unit -> Insn.t list)

let site_stub ~site_insn ~args ~extra_saves ?live ~callee () =
  let needs_ra = match callee with Call _ -> true | Splice _ -> false in
  let int_slots, fp_slots, scratch, size =
    build_frame ~site_insn ~args ~extra_saves ~live ~needs_ra
  in
  let make_prefix ~final =
    (Insn.Mem { op = Insn.Lda; ra = Reg.sp; rb = Reg.sp; disp = -size }
    :: List.map
         (fun (r, off) -> Insn.Mem { op = Insn.Stq; ra = r; rb = Reg.sp; disp = off })
         int_slots)
    @ List.map
        (fun (r, off) -> Insn.Mem { op = Insn.Stt; ra = r; rb = Reg.sp; disp = off })
        fp_slots
    @ List.concat
        (List.mapi
           (fun i arg ->
             arg_insns ~final ~site_insn ~int_slots ~scratch ~frame_size:size i arg)
           args)
  in
  let prefix = make_prefix ~final:false in
  let suffix =
    List.map
      (fun (r, off) -> Insn.Mem { op = Insn.Ldq; ra = r; rb = Reg.sp; disp = off })
      int_slots
    @ List.map
        (fun (r, off) -> Insn.Mem { op = Insn.Ldt; ra = r; rb = Reg.sp; disp = off })
        fp_slots
    @ [ Insn.Mem { op = Insn.Lda; ra = Reg.sp; rb = Reg.sp; disp = size } ]
  in
  let npre = List.length prefix in
  let mid_len = match callee with Call _ -> 1 | Splice (n, _) -> n in
  let total = npre + mid_len + List.length suffix in
  {
    Om.Ir.s_size = 4 * total;
    s_emit =
      (fun ~pc ->
        let prefix = make_prefix ~final:true in
        let mid =
          match callee with
          | Call target ->
              let call_pc = pc + (4 * npre) in
              let disp = (target () - (call_pc + 4)) / 4 in
              if not (Code.fits_disp21 disp) then
                failwith "Stubgen: analysis call out of bsr range";
              [ Insn.Br { link = true; ra = Reg.ra; disp } ]
          | Splice (n, get) ->
              let body = get () in
              if List.length body <> n then
                failwith "Stubgen: spliced body changed size";
              body
        in
        prefix @ mid @ suffix);
  }

(* -- wrapper routines --------------------------------------------------- *)

let wrapper ~at ~summary ~nargs ~proc_addr =
  let site_saved = Regset.of_list (Reg.ra :: List.init nargs (fun i -> 16 + i)) in
  let to_save = Regset.diff summary site_saved in
  let int_regs = Reg.ra :: Regset.ints to_save in
  let fp_regs = Regset.fps to_save in
  let nint = List.length int_regs in
  let size = 8 * (nint + List.length fp_regs) in
  let int_slots = List.mapi (fun k r -> (r, 8 * k)) int_regs in
  let fp_slots = List.mapi (fun k r -> (r, 8 * (nint + k))) fp_regs in
  let saves =
    Insn.Mem { op = Insn.Lda; ra = Reg.sp; rb = Reg.sp; disp = -size }
    :: List.map
         (fun (r, off) -> Insn.Mem { op = Insn.Stq; ra = r; rb = Reg.sp; disp = off })
         int_slots
    @ List.map
        (fun (r, off) -> Insn.Mem { op = Insn.Stt; ra = r; rb = Reg.sp; disp = off })
        fp_slots
  in
  let call_pc = at + (4 * List.length saves) in
  let disp = (proc_addr - (call_pc + 4)) / 4 in
  if not (Code.fits_disp21 disp) then failwith "Stubgen: wrapper call out of range";
  let restores =
    List.map
      (fun (r, off) -> Insn.Mem { op = Insn.Ldq; ra = r; rb = Reg.sp; disp = off })
      int_slots
    @ List.map
        (fun (r, off) -> Insn.Mem { op = Insn.Ldt; ra = r; rb = Reg.sp; disp = off })
        fp_slots
    @ [ Insn.Mem { op = Insn.Lda; ra = Reg.sp; rb = Reg.sp; disp = size };
        Insn.Jump { kind = Insn.Ret; ra = Reg.zero; rb = Reg.ra; hint = 1 } ]
  in
  saves @ (Insn.Br { link = true; ra = Reg.ra; disp } :: restores)
