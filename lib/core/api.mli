(** The instrumentation interface — the OCaml rendering of the paper's
    instrumentation-routine API (Figure 2).

    A tool's instrumentation routine receives a [t], declares the
    prototypes of its analysis procedures with {!add_call_proto}, walks
    the program with the navigation primitives, and requests procedure
    calls with the [add_call_*] primitives.  Multiple calls added at one
    point run in the order they were added. *)

type t

type proc
type block
type inst

(** {1 Navigation} *)

val procs : t -> proc list
val get_first_proc : t -> proc option
val get_next_proc : t -> proc -> proc option

val blocks : proc -> block list
val get_first_block : proc -> block option
val get_next_block : proc -> block -> block option

val insts : block -> inst list
val get_first_inst : block -> inst option
val get_last_inst : block -> inst
val get_next_inst : block -> inst -> inst option

val proc_name : proc -> string
val proc_pc : proc -> int
val proc_size : proc -> int

val block_pc : block -> int
val block_ninsts : block -> int
val block_succs : block -> int list
(** Original addresses of intra-procedure successors. *)

val inst_pc : inst -> int
(** The {e original} program counter, as the uninstrumented program would
    see it. *)

val inst_insn : inst -> Alpha.Insn.t

type inst_type =
  | Inst_cond_branch
  | Inst_uncond_branch
  | Inst_load
  | Inst_store
  | Inst_memory  (** any load or store *)
  | Inst_jump
  | Inst_call  (** [bsr] or [jsr] *)
  | Inst_return
  | Inst_fp  (** floating-point operate *)
  | Inst_syscall  (** [call_pal callsys] *)

val is_inst_type : inst -> inst_type -> bool

val inst_access_bytes : inst -> int
(** Size of the memory access in bytes (0 when not a memory reference). *)

val call_target : t -> inst -> string option
(** For a direct call ([bsr]), the name of the called procedure. *)

val first_inst_of_proc : proc -> inst
(** @raise Error on an empty procedure. *)

val entry_proc : t -> proc
val exit_proc : t -> proc option
(** The procedure treated as the program-end hook (the C library's
    [exit]). *)

(** {1 Arguments} *)

type arg =
  | Int of int  (** a 64-bit constant (the [int]/[long] prototype types) *)
  | Inst_pc of inst  (** shorthand: the instruction's original PC *)
  | Block_pc of block
  | Proc_pc of proc
  | Regv of Alpha.Reg.t  (** run-time contents of an integer register *)
  | Br_cond_value
      (** for conditional branches: zero if the branch will fall through,
          non-zero if it will be taken *)
  | Eff_addr_value  (** for loads/stores: the effective address *)
  | Str of string
      (** address of a NUL-terminated copy of the string, placed in the
          analysis data region *)

(** {1 Adding calls} *)

type program_place = Program_before | Program_after

type place =
  | Before
  | After
  | Taken_edge
      (** only on conditional branches: the call happens exactly when the
          branch is taken (our implementation of the paper's deferred
          "calls on edges").  [After] on a conditional branch is the
          complementary fall-through edge. *)

exception Error of string
(** Raised on misuse: undeclared analysis procedure, argument/prototype
    mismatch, [Br_cond_value] on a non-branch, more than six arguments,
    [After] on an instruction that does not fall through... *)

val add_call_proto : t -> string -> unit
(** Declare an analysis procedure, e.g.
    [add_call_proto t "CondBranch(int, VALUE)"]. *)

val add_call_program : t -> program_place -> string -> arg list -> unit
val add_call_proc : t -> proc -> place -> string -> arg list -> unit
val add_call_block : t -> block -> place -> string -> arg list -> unit
val add_call_inst : t -> inst -> place -> string -> arg list -> unit

type edge = Taken | Fallthrough

val add_call_edge : t -> block -> edge -> string -> arg list -> unit
(** Instrument one outgoing control-flow edge of a block.  For a block
    ending in a conditional branch both edges exist; for an unconditional
    branch only [Taken]; for a fall-through block only [Fallthrough].
    @raise Error when the requested edge does not exist. *)

(** {1 For the instrumentation engine} *)

type action = {
  a_proc : string;  (** analysis procedure to call *)
  a_args : arg list;
  a_inst : inst;  (** the site the action was lowered onto *)
  a_place : place;
  a_rank : int;
      (** same-site ordering class: [ProgramBefore] calls rank below
          instruction- and block-level calls, [ProgramAfter] calls above
          them, whatever the registration order.  A tool that registers
          its per-block counters before its init hook still gets the init
          called first. *)
}

val rank_program_before : int
val rank_normal : int
val rank_program_after : int

val create : Om.Ir.program -> t
val ir : t -> Om.Ir.program
val ir_inst : inst -> Om.Ir.inst
val protos : t -> (string, Proto.t) Hashtbl.t
val actions : t -> action list
(** In the order they were added. *)
