type prepared = {
  pr_pl : Linker.Link.placement;
  pr_summaries : Om.Dataflow.t;
  pr_img : Linker.Link.image;
  pr_text_base : int;
}

type linked = {
  ln_img : Linker.Link.image;
  ln_blob : bytes;
}

(* One lock guards every table, counter and memo in this module.  The
   cache is shared by every worker domain of a serving process, so all
   mutation happens under [lock]; builds run outside it (see [lookup]),
   coordinated through [pending] so concurrent requests for one key
   build it exactly once. *)
let lock = Mutex.create ()
let built = Condition.create ()
let pending : (string, unit) Hashtbl.t = Hashtbl.create 8

let table : (string, prepared) Hashtbl.t = Hashtbl.create 16
let programs : (string, Om.Ir.program) Hashtbl.t = Hashtbl.create 16
let links : (string, linked) Hashtbl.t = Hashtbl.create 16
let images : (string, string * string) Hashtbl.t = Hashtbl.create 16

let hit_count = ref 0
let miss_count = ref 0
let disk_hit_count = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let hits () = locked (fun () -> !hit_count)
let misses () = locked (fun () -> !miss_count)
let disk_hits () = locked (fun () -> !disk_hit_count)

let size () =
  locked (fun () ->
      Hashtbl.length table + Hashtbl.length programs + Hashtbl.length links
      + Hashtbl.length images)

(* -- persistent store ---------------------------------------------------

   Entries are written through to an on-disk content-addressed store when
   one is configured, so the cache survives the process and is shared by
   every worker of a daemon (and by successive daemon restarts).  One
   entry per file, named by the kind tag plus the hex digest of the
   content key; a write is a temp file in the same directory renamed into
   place, so concurrent writers (other domains, other processes) can
   never expose a torn entry.  Values are marshalled behind a header that
   records the format version, the OCaml version (Marshal is not stable
   across compilers) and the full key; any mismatch — or any read error
   at all — is treated as a miss and the entry rebuilt.  Correctness
   never depends on the store: cold and warm paths produce byte-identical
   images (enforced by the tests and by `bench serve`). *)

let store_magic = "ATOMTC/1"
let store_dir : string option ref = ref None
let store_seq = ref 0

let set_store dir =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  locked (fun () -> store_dir := dir)

let store () = locked (fun () -> !store_dir)

let entry_path dir ~kind key =
  Filename.concat dir (kind ^ "-" ^ Digest.to_hex (Digest.string key))

let disk_get ~kind key =
  match store () with
  | None -> None
  | Some dir -> (
      let path = entry_path dir ~kind key in
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              try
                let magic = input_line ic in
                let version = input_line ic in
                let klen = int_of_string (input_line ic) in
                let kbuf = really_input_string ic klen in
                if
                  magic = store_magic
                  && version = Sys.ocaml_version
                  && kbuf = key
                then Some (Marshal.from_channel ic)
                else None
              with _ -> None))

let disk_put ~kind key v =
  match store () with
  | None -> ()
  | Some dir -> (
      try
        let payload = Marshal.to_string v [] in
        let seq = locked (fun () -> incr store_seq; !store_seq) in
        let tmp =
          Filename.concat dir
            (Printf.sprintf ".tmp-%d-%d-%d" (Unix.getpid ())
               (Domain.self () :> int)
               seq)
        in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Printf.fprintf oc "%s\n%s\n%d\n%s" store_magic Sys.ocaml_version
              (String.length key) key;
            output_string oc payload);
        Sys.rename tmp (entry_path dir ~kind key)
      with _ -> ())
(* values that cannot marshal (or a full disk) simply stay memory-only *)

(* -- identity-digest memos -----------------------------------------------

   Content keys are digests of serialised values; serialising the same
   immutable executable or unit on every call would cost more than some
   of the lookups it guards, so digests are memoized by physical
   identity.  The memo is a fixed ring of *weak* slots: it can never
   retain an executable a long-lived server has otherwise dropped
   (regression-tested in test_serve), and it is bounded regardless. *)

let memo_slots = 64

type 'a weak_memo = {
  wm_keys : 'a Weak.t;
  wm_digests : string array;
  mutable wm_next : int;
}

let make_memo () =
  {
    wm_keys = Weak.create memo_slots;
    wm_digests = Array.make memo_slots "";
    wm_next = 0;
  }

let exe_digests : Objfile.Exe.t weak_memo = make_memo ()
let unit_digests : Objfile.Unit_file.t weak_memo = make_memo ()

let memo_find m v =
  let rec go i =
    if i >= memo_slots then None
    else
      match Weak.get m.wm_keys i with
      | Some v' when v' == v -> Some m.wm_digests.(i)
      | _ -> go (i + 1)
  in
  go 0

let memo_add m v d =
  let i = m.wm_next in
  Weak.set m.wm_keys i (Some v);
  m.wm_digests.(i) <- d;
  m.wm_next <- (i + 1) mod memo_slots

let memo_reset m =
  Weak.fill m.wm_keys 0 memo_slots None;
  Array.fill m.wm_digests 0 memo_slots "";
  m.wm_next <- 0

let identity_memo memo serialize v =
  match locked (fun () -> memo_find memo v) with
  | Some d -> d
  | None ->
      (* serialisation runs outside the lock; a racing domain may compute
         the same digest twice, which is merely wasted work *)
      let d = Digest.string (serialize v) in
      locked (fun () ->
          (match memo_find memo v with
          | Some _ -> ()
          | None -> memo_add memo v d);
          d)

let exe_digest exe = identity_memo exe_digests Objfile.Exe.to_string exe
let unit_digest u = identity_memo unit_digests Objfile.Unit_file.to_string u

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset programs;
      Hashtbl.reset links;
      Hashtbl.reset images;
      memo_reset exe_digests;
      memo_reset unit_digests)

(* -- lookup --------------------------------------------------------------

   Double-checked with in-flight deduplication: a miss publishes the key
   in [pending] and builds outside the lock; concurrent requests for the
   same key wait on [built] instead of duplicating the work, then take
   the entry as a hit.  Accounting is therefore deterministic even under
   contention: N concurrent first requests for one key are exactly one
   miss and N-1 hits.  A build that raises publishes nothing and wakes
   the waiters so one of them retries. *)
let lookup tbl ~kind key build =
  let slot = kind ^ "\000" ^ key in
  Mutex.lock lock;
  let rec await () =
    match Hashtbl.find_opt tbl key with
    | Some v ->
        incr hit_count;
        Mutex.unlock lock;
        v
    | None ->
        if Hashtbl.mem pending slot then begin
          Condition.wait built lock;
          await ()
        end
        else begin
          Hashtbl.add pending slot ();
          Mutex.unlock lock;
          let publish counter v =
            Mutex.lock lock;
            incr counter;
            Hashtbl.remove pending slot;
            Hashtbl.replace tbl key v;
            Condition.broadcast built;
            Mutex.unlock lock;
            v
          in
          match disk_get ~kind key with
          | Some v -> publish disk_hit_count v
          | None -> (
              match build () with
              | v ->
                  disk_put ~kind key v;
                  publish miss_count v
              | exception e ->
                  Mutex.lock lock;
                  Hashtbl.remove pending slot;
                  Condition.broadcast built;
                  Mutex.unlock lock;
                  raise e)
        end
  in
  await ()

let find_or_add key build = lookup table ~kind:"anal" key build
let find_or_add_linked key build = lookup links ~kind:"link" key build

(* The whole-image cache sits above the three pipeline caches: a serving
   daemon keys the complete instrumented image by (executable digest,
   tool, option fingerprint), so a repeat request skips even the
   per-request splice and codegen, not just the shared preparation.
   Values are (image digest, image bytes) — trivially marshallable, so a
   restarted daemon serves repeat instrumentations straight from disk. *)
let find_or_add_image key build = lookup images ~kind:"image" key build

let find_or_add_program key build =
  let master = lookup programs ~kind:"prog" key build in
  (* The cached master is never handed out: instrumentation mutates the
     per-instruction stub lists in place, so every caller gets a fresh
     view with empty slots.  Two concurrent jobs for the same executable
     therefore cannot observe each other's stubs, and the master stays
     pristine (and closure-free, hence marshallable to the store). *)
  Om.Ir.copy master
