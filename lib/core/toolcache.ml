type prepared = {
  pr_pl : Linker.Link.placement;
  pr_summaries : Om.Dataflow.t;
  pr_img : Linker.Link.image;
  pr_text_base : int;
}

type linked = {
  ln_img : Linker.Link.image;
  ln_blob : bytes;
}

let table : (string, prepared) Hashtbl.t = Hashtbl.create 16
let programs : (string, Om.Ir.program) Hashtbl.t = Hashtbl.create 16
let links : (string, linked) Hashtbl.t = Hashtbl.create 16

let hit_count = ref 0
let miss_count = ref 0

let hits () = !hit_count
let misses () = !miss_count

let size () =
  Hashtbl.length table + Hashtbl.length programs + Hashtbl.length links

(* Content keys are digests of serialised values; serialising the same
   immutable executable or unit on every call would cost more than some
   of the lookups it guards, so digests are memoized by physical
   identity (bounded scan — a sweep keeps a handful of each alive). *)
let exe_digests : (Objfile.Exe.t * string) list ref = ref []
let unit_digests : (Objfile.Unit_file.t * string) list ref = ref []

let identity_memo memo serialize v =
  match List.find_opt (fun (v', _) -> v' == v) !memo with
  | Some (_, d) -> d
  | None ->
      let d = Digest.string (serialize v) in
      memo := (v, d) :: List.filteri (fun i _ -> i < 63) !memo;
      d

let exe_digest exe = identity_memo exe_digests Objfile.Exe.to_string exe
let unit_digest u = identity_memo unit_digests Objfile.Unit_file.to_string u

let clear () =
  Hashtbl.reset table;
  Hashtbl.reset programs;
  Hashtbl.reset links;
  exe_digests := [];
  unit_digests := []

let lookup tbl key build =
  match Hashtbl.find_opt tbl key with
  | Some v ->
      incr hit_count;
      v
  | None ->
      incr miss_count;
      let v = build () in
      Hashtbl.replace tbl key v;
      v

let find_or_add key build = lookup table key build
let find_or_add_linked key build = lookup links key build

let find_or_add_program key build =
  let prog = lookup programs key build in
  (* the stub lists are the only part of the IR a previous instrumentation
     run mutates; wipe them so every caller sees a pristine program *)
  Om.Ir.iter_insts prog (fun _ _ i ->
      i.Om.Ir.i_before <- [];
      i.Om.Ir.i_after <- [];
      i.Om.Ir.i_taken <- []);
  prog
