exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type proc = { t_prog : Om.Ir.program; pi : int }
type block = { bp : proc; bi : int }
type inst = { ib : block; ii : int }

type arg =
  | Int of int
  | Inst_pc of inst
  | Block_pc of block
  | Proc_pc of proc
  | Regv of Alpha.Reg.t
  | Br_cond_value
  | Eff_addr_value
  | Str of string

type program_place = Program_before | Program_after
type place = Before | After | Taken_edge

type action = {
  a_proc : string;
  a_args : arg list;
  a_inst : inst;
  a_place : place;
  a_rank : int;
}

(* Same-site ordering classes.  ProgramBefore hooks must run before any
   instruction- or block-level call planted on the same instruction (the
   entry point), and ProgramAfter hooks after them, no matter the order
   the tool registered them in. *)
let rank_program_before = 0
let rank_normal = 1
let rank_program_after = 2

type t = {
  prog : Om.Ir.program;
  protos : (string, Proto.t) Hashtbl.t;
  mutable acts : action list;  (* reversed *)
}

let create prog = { prog; protos = Hashtbl.create 16; acts = [] }
let ir t = t.prog
let protos t = t.protos
let actions t = List.rev t.acts

(* -- handles ----------------------------------------------------------- *)

let nth_proc t i = { t_prog = t.prog; pi = i }
let om_proc p = p.t_prog.Om.Ir.procs.(p.pi)
let om_block b = (om_proc b.bp).Om.Ir.p_blocks.(b.bi)
let om_inst i = (om_block i.ib).Om.Ir.b_insts.(i.ii)
let ir_inst = om_inst

let procs t = List.init (Array.length t.prog.Om.Ir.procs) (nth_proc t)

let get_first_proc t =
  if Array.length t.prog.Om.Ir.procs > 0 then Some (nth_proc t 0) else None

let get_next_proc t p =
  if p.pi + 1 < Array.length t.prog.Om.Ir.procs then Some (nth_proc t (p.pi + 1))
  else None

let blocks p =
  List.init (Array.length (om_proc p).Om.Ir.p_blocks) (fun bi -> { bp = p; bi })

let get_first_block p =
  if Array.length (om_proc p).Om.Ir.p_blocks > 0 then Some { bp = p; bi = 0 } else None

let get_next_block p b =
  if b.bi + 1 < Array.length (om_proc p).Om.Ir.p_blocks then
    Some { bp = p; bi = b.bi + 1 }
  else None

let insts b =
  List.init (Array.length (om_block b).Om.Ir.b_insts) (fun ii -> { ib = b; ii })

let get_first_inst b =
  if Array.length (om_block b).Om.Ir.b_insts > 0 then Some { ib = b; ii = 0 } else None

let get_last_inst b = { ib = b; ii = Array.length (om_block b).Om.Ir.b_insts - 1 }

let get_next_inst b i =
  if i.ii + 1 < Array.length (om_block b).Om.Ir.b_insts then
    Some { ib = b; ii = i.ii + 1 }
  else None

let proc_name p = (om_proc p).Om.Ir.p_name
let proc_pc p = (om_proc p).Om.Ir.p_addr
let proc_size p = (om_proc p).Om.Ir.p_size
let block_pc b = (om_block b).Om.Ir.b_addr
let block_ninsts b = Array.length (om_block b).Om.Ir.b_insts
let block_succs b = (om_block b).Om.Ir.b_succs
let inst_pc i = (om_inst i).Om.Ir.i_pc
let inst_insn i = (om_inst i).Om.Ir.i_insn

type inst_type =
  | Inst_cond_branch
  | Inst_uncond_branch
  | Inst_load
  | Inst_store
  | Inst_memory
  | Inst_jump
  | Inst_call
  | Inst_return
  | Inst_fp
  | Inst_syscall

let is_inst_type i ty =
  let insn = inst_insn i in
  match ty with
  | Inst_cond_branch -> Alpha.Insn.is_cond_branch insn
  | Inst_uncond_branch -> Alpha.Insn.kind insn = Alpha.Insn.K_uncond_branch
  | Inst_load -> Alpha.Insn.is_load insn
  | Inst_store -> Alpha.Insn.is_store insn
  | Inst_memory -> Alpha.Insn.is_memory_ref insn
  | Inst_jump -> Alpha.Insn.kind insn = Alpha.Insn.K_jump
  | Inst_call -> Alpha.Insn.is_call insn
  | Inst_return -> Alpha.Insn.is_return insn
  | Inst_fp -> Alpha.Insn.kind insn = Alpha.Insn.K_fop
  | Inst_syscall -> ( match insn with Alpha.Insn.Call_pal 0x83 -> true | _ -> false)

let inst_access_bytes i = Alpha.Insn.access_bytes (inst_insn i)

let call_target t i =
  let insn = inst_insn i in
  if Alpha.Insn.is_call insn then
    match Alpha.Insn.branch_target ~pc:(inst_pc i) insn with
    | Some addr -> (
        match Om.Ir.proc_at t.prog addr with
        | Some p when p.Om.Ir.p_addr = addr -> Some p.Om.Ir.p_name
        | Some _ | None -> None)
    | None -> None
  else None

let find_proc t name =
  let n = Array.length t.prog.Om.Ir.procs in
  let rec find i =
    if i >= n then None
    else if t.prog.Om.Ir.procs.(i).Om.Ir.p_name = name then Some (nth_proc t i)
    else find (i + 1)
  in
  find 0

let entry_proc t =
  let entry = t.prog.Om.Ir.exe.Objfile.Exe.x_entry in
  let n = Array.length t.prog.Om.Ir.procs in
  let rec find i =
    if i >= n then fail "entry point %#x has no procedure" entry
    else if t.prog.Om.Ir.procs.(i).Om.Ir.p_addr = entry then nth_proc t i
    else find (i + 1)
  in
  find 0

let exit_proc t = find_proc t "exit"

(* -- adding calls ------------------------------------------------------ *)

let add_call_proto t proto_str =
  match Proto.parse proto_str with
  | p ->
      if List.length p.Proto.p_params > 6 then
        fail "%s: more than six parameters are not supported" p.Proto.p_name;
      Hashtbl.replace t.protos p.Proto.p_name p
  | exception Proto.Parse_error m -> fail "%s" m

let check_args t name (site : inst) place args =
  let proto =
    match Hashtbl.find_opt t.protos name with
    | Some p -> p
    | None -> fail "no prototype for analysis procedure %s (use add_call_proto)" name
  in
  let kinds = proto.Proto.p_params in
  if List.length args <> List.length kinds then
    fail "%s: expected %d arguments, got %d" name (List.length kinds)
      (List.length args);
  let insn = inst_insn site in
  List.iter2
    (fun kind arg ->
      match (kind, arg) with
      | Proto.K_const, (Int _ | Inst_pc _ | Block_pc _ | Proc_pc _ | Str _) -> ()
      | Proto.K_regv, Regv r ->
          if r < 0 || r > 31 then fail "%s: bad register %d" name r
      | Proto.K_value, Br_cond_value ->
          if not (Alpha.Insn.is_cond_branch insn) then
            fail "%s: BrCondValue on a non-conditional-branch instruction" name;
          if place = After then fail "%s: BrCondValue only before the branch" name
      | Proto.K_value, Eff_addr_value ->
          if not (Alpha.Insn.is_memory_ref insn) then
            fail "%s: EffAddrValue on a non-memory instruction" name
      | (Proto.K_const | Proto.K_regv | Proto.K_value), _ ->
          fail "%s: argument does not match prototype parameter %s" name
            (Proto.kind_name kind))
    kinds args

let add_action ?(rank = rank_normal) t site place name args =
  check_args t name site place args;
  if place = After && not (Alpha.Insn.falls_through (inst_insn site)) then
    fail "%s: cannot insert after an instruction that does not fall through" name;
  if place = Taken_edge && not (Alpha.Insn.is_cond_branch (inst_insn site)) then
    fail "%s: taken-edge calls only apply to conditional branches" name;
  t.acts <-
    { a_proc = name; a_args = args; a_inst = site; a_place = place; a_rank = rank }
    :: t.acts

let add_call_inst t i place name args = add_action t i place name args

let first_inst_of_proc p =
  match get_first_block p with
  | Some b -> (
      match get_first_inst b with
      | Some i -> i
      | None -> fail "%s: empty block" (proc_name p))
  | None -> fail "%s: empty procedure" (proc_name p)

type edge = Taken | Fallthrough

let add_call_edge t b edge name args =
  let last = get_last_inst b in
  let insn = inst_insn last in
  match edge with
  | Taken ->
      if Alpha.Insn.is_cond_branch insn then add_action t last Taken_edge name args
      else if Alpha.Insn.kind insn = Alpha.Insn.K_uncond_branch
              && not (Alpha.Insn.is_call insn) then
        (* an unconditional branch: its only edge is always taken *)
        add_action t last Before name args
      else fail "%s: block at %#x has no taken edge" name (block_pc b)
  | Fallthrough ->
      if Alpha.Insn.falls_through insn then add_action t last After name args
      else fail "%s: block at %#x has no fall-through edge" name (block_pc b)

let add_call_block t b place name args =
  match place with
  | Taken_edge -> fail "%s: use add_call_edge for edges" name
  | Before -> (
      match get_first_inst b with
      | Some i -> add_action t i Before name args
      | None -> fail "empty block at %#x" (block_pc b))
  | After ->
      let last = get_last_inst b in
      if Alpha.Insn.is_terminator (inst_insn last) then
        add_action t last Before name args
      else add_action t last After name args

let add_call_proc t p place name args =
  match place with
  | Taken_edge -> fail "%s: use add_call_edge for edges" name
  | Before -> add_action t (first_inst_of_proc p) Before name args
  | After ->
      (* before every return instruction of the procedure *)
      let added = ref false in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              if Alpha.Insn.is_return (inst_insn i) then begin
                add_action t i Before name args;
                added := true
              end)
            (insts b))
        (blocks p);
      if not !added then
        fail "%s: procedure %s has no return instruction" name (proc_name p)

let add_call_program t place name args =
  match place with
  | Program_before ->
      add_action ~rank:rank_program_before t
        (first_inst_of_proc (entry_proc t))
        Before name args
  | Program_after -> (
      match exit_proc t with
      | Some p ->
          add_action ~rank:rank_program_after t (first_inst_of_proc p) Before
            name args
      | None ->
          fail
            "%s: ProgramAfter needs an `exit' procedure in the application \
             (link against the runtime library)"
            name)
