(** The ATOM pipeline: custom tool + application executable + analysis
    routines -> instrumented executable (paper §2 and §4).

    The instrumented executable is organised per Figure 4:

    - the application's data, rdata, stack base, and heap base keep their
      original addresses — analysis routines observe the program as if it
      ran uninstrumented (original PCs are presented for text addresses);
    - the instrumented program text replaces the original at the same
      base; the analysis module (its own text, read-only data, data, and
      its [.bss] converted to zero-initialised data), the wrapper
      routines, and ATOM's interned strings all sit in the gap between
      the program text and the program data;
    - taken procedure addresses in the application are retargeted using
      the executable's relocation knowledge (OM is a link-time system);
    - the analysis module gets its own copy of the runtime library and is
      initialised by an implicit [ProgramBefore] call to its
      [__libc_init]. *)

type save_strategy =
  | Summary  (** save only registers in the analysis routine's dataflow summary *)
  | Save_all  (** save every caller-save register (ablation baseline) *)
  | Summary_and_live
      (** additionally drop saves of registers that are dead in the
          application at the site (the paper's planned live-register
          optimization, implemented here); with the [Wrapper] call style
          this trims the site saves ([$ra], argument registers), with
          [Inline_saves] the whole save set is live-filtered *)

type call_style =
  | Wrapper  (** shared per-procedure wrapper does the summary saves (default) *)
  | Inline_saves
      (** all saves inlined at each site: no indirection, bigger code
          (the paper's higher-optimisation option, modelled at the site) *)
  | Inline_body
      (** additionally splice the analysis procedure's body into the site
          when it qualifies (position-independent: no calls, branches
          internal, single trailing [ret]) — the paper's planned inlining
          optimization; non-qualifying procedures fall back to direct
          calls *)
  | Specialized
      (** the lowest-overhead style: each site saves only the registers
          the analysis routine actually clobbers (its
          {!Om.Dataflow.modified_by} summary) {e and} that are live in
          the application at the site — liveness is computed whatever the
          save strategy says — and tiny leaf routines (straight-line, no
          calls, no branches, a single trailing [ret], at most
          {!max_leaf_insns} body instructions: the counter-increment
          shape used by prof/branch/trace) are spliced into the stub
          outright, eliminating the [bsr]/[ret] round trip *)

type heap_mode =
  | Linked
      (** the two [sbrk]s share one break variable; each allocation starts
          where the other left off (default) *)
  | Partitioned of int
      (** the analysis heap starts at the application's initial break plus
          the given offset; application heap addresses match the
          uninstrumented run even if both sides allocate *)

type options = {
  save_strategy : save_strategy;
  call_style : call_style;
  heap_mode : heap_mode;
}

val default_options : options
(** [{ save_strategy = Summary; call_style = Wrapper; heap_mode = Linked }] *)

val max_leaf_insns : int
(** Largest body (excluding the trailing [ret]) the [Specialized] style
    will splice into a site stub. *)

(** Which implementation of the instrument pipeline runs.  Both produce
    byte-identical executables (checked by the benchmark harness and the
    tests); only speed differs. *)
type pipeline =
  | Fast
      (** content-addressed toolchain caches ({!Toolcache},
          [Rtlib.compile_user]), binary-search symbol/leader lookups in
          [Om.Build], worklist liveness, shared decode memo (default) *)
  | Ref
      (** the pre-overhaul pipeline: no caches, list-scan lookups, dense
          liveness fixpoint — the benchmark baseline *)

(** One lowered analysis call, in the order actions were lowered (includes
    the implicit [__libc_init]/[__libc_fini] calls).  Together with
    {!Om.Codegen.site} layout records this is the evidence the verifier
    checks the image against. *)
type audit_site = {
  as_pc : int;  (** original PC of the site instruction *)
  as_place : Api.place;
  as_proc : string;  (** analysis procedure called *)
  as_summary : Alpha.Regset.t;
      (** registers the call may clobber under the active save strategy *)
  as_nargs : int;
}

(** What the engine claims it did: where every stub landed, where the
    analysis module and wrappers were placed, and which registers each
    call site must protect.  Consumed by the [Verify] library. *)
type audit = {
  au_options : options;
  au_sites : audit_site list;
  au_layout : Om.Codegen.site list;
  au_prog_text : int * int;  (** instrumented program text: base, size *)
  au_anal_text : int * int;  (** analysis module text: base, size *)
  au_anal_region : int * int;
      (** everything inserted in the text–data gap (analysis module,
          wrappers, interned strings): base, size *)
  au_wrappers : (string * int) list;  (** wrapper routine addresses *)
  au_procs : (string * int) list;  (** analysis global addresses *)
}

type info = {
  i_sites : int;  (** instrumentation points (stubs inserted) *)
  i_calls : int;  (** analysis procedures referenced *)
  i_text_growth : int;  (** bytes added to the application text *)
  i_analysis_bytes : int;  (** bytes of analysis module + wrappers *)
  i_map : int -> int;  (** old text address -> new *)
  i_audit : audit;  (** verification evidence *)
}

exception Error of string

val instrument :
  ?options:options ->
  ?pipeline:pipeline ->
  exe:Objfile.Exe.t ->
  tool:(Api.t -> unit) ->
  analysis:Objfile.Unit_file.t list ->
  unit ->
  Objfile.Exe.t * info
(** Build the instrumented program.  [tool] is the user's instrumentation
    routine; [analysis] the compiled analysis modules (they are linked
    with their own copy of the runtime library).  [pipeline] defaults to
    {!Fast}.
    @raise Error on any failure (undefined analysis procedure, overflow of
    the text gap, malformed prototypes...). *)

val instrument_source :
  ?options:options ->
  ?pipeline:pipeline ->
  exe:Objfile.Exe.t ->
  tool:(Api.t -> unit) ->
  analysis_src:string ->
  unit ->
  Objfile.Exe.t * info
(** Convenience: compile the analysis routines from Mini-C source (with
    the runtime-library prototypes in scope) and instrument.  On the
    {!Fast} pipeline the compilation itself is served from the
    content-addressed [Rtlib] cache. *)
