(** A whole-program control-flow-graph view over {!Ir.program}, shared by
    the [trace] flow-fact tool and the WCET/IPET layer.

    Blocks get dense {e global ids} (procedure order, then block order
    within the procedure — the same order {!Build.program} produced them),
    and every intra-procedure successor relation is materialised as an
    explicit edge with a kind and a {e probeability} flag.  Both sides of
    the WCET pipeline rebuild this structure independently from the same
    executable, so slot [i] in a recorded flow-fact artifact and variable
    [i] in the IPET program denote the same block/edge/loop by
    construction. *)

type edge_kind =
  | Taken  (** the PC-relative branch target of the block's last insn *)
  | Fallthrough  (** execution continuing at the next address *)

type edge = {
  e_id : int;
  e_src : int;  (** global block id *)
  e_dst : int;  (** global block id, same procedure as [e_src] *)
  e_kind : edge_kind;
  e_probe : bool;
      (** whether {!Atom}'s [add_call_edge] can instrument this edge.
          False exactly for the fall-through of a call ([bsr]/[jsr]): the
          callee intervenes, so there is no instrumentation point on the
          edge itself.  Unprobeable edges still carry ILP flow variables;
          they just contribute no measured count. *)
}

type loop = {
  l_header : int;  (** global block id; loops sharing a header are merged *)
  l_body : int list;  (** sorted global block ids, header included *)
  l_back : int list;  (** edge ids [u -> header] with the header dominating [u] *)
  l_entries : int list;  (** edge ids entering the header from outside the body *)
}

type t = {
  ir : Ir.program;
  nblocks : int;
  blocks : Ir.block array;  (** indexed by global id *)
  block_proc : int array;  (** global id -> procedure index *)
  proc_first : int array;  (** procedure index -> first global id; length nprocs+1, sentinel [nblocks] *)
  edges : edge array;  (** deterministic order: per block, taken before fall-through *)
  succs : int list array;  (** global id -> outgoing edge ids *)
  preds : int list array;  (** global id -> incoming edge ids *)
  loops : loop array;  (** natural loops of reachable code, merged per header *)
  retreating : int list;
      (** edge ids that are DFS-ancestor edges (over a spanning forest
          rooted at each procedure entry, then at any unvisited block) but
          are {e not} natural back edges of any loop.  Every cycle in the
          graph contains a natural back edge or a retreating edge, so
          bounding these two families bounds all circulation. *)
}

val build : Ir.program -> t

val block_costs : t -> model:(Alpha.Insn.t -> int) -> int array
(** Per-block cost: the sum of [model] over the block's instructions.
    With the machine's cycle model this is the block's cycle weight. *)

val gid_of_addr : t -> int -> int option
(** Global id of the block whose first instruction sits at the given
    original address. *)
