open Alpha

(* -- reference implementation -------------------------------------------
   The pre-overhaul builder, kept verbatim: the benchmark harness times it
   as the baseline and the tests check the fast builder against it. *)

let program_ref exe =
  let text = Objfile.Exe.text_bytes exe in
  let base = exe.Objfile.Exe.x_text_start in
  let size = exe.Objfile.Exe.x_text_size in
  if size = 0 || size mod 4 <> 0 then failwith "Build.program: bad text segment";
  let n = size / 4 in
  let insns = Array.init n (fun i -> Code.decode_at text (i * 4)) in
  (* procedure boundaries from Func symbols *)
  let funcs = Objfile.Exe.funcs_sorted exe in
  let boundaries =
    let addrs = List.map (fun s -> s.Objfile.Exe.x_addr) funcs in
    let addrs = if List.mem base addrs then addrs else base :: addrs in
    List.sort_uniq compare addrs
  in
  let name_of addr =
    match List.find_opt (fun s -> s.Objfile.Exe.x_addr = addr) funcs with
    | Some s -> s.Objfile.Exe.x_name
    | None -> Printf.sprintf "proc_0x%x" addr
  in
  let rec proc_ranges = function
    | [] -> []
    | [ a ] -> [ (a, base + size) ]
    | a :: (b :: _ as rest) -> (a, b) :: proc_ranges rest
  in
  let ranges = proc_ranges boundaries in
  let build_proc (lo, hi) =
    let first = (lo - base) / 4 and limit = (hi - base) / 4 in
    (* leaders: entry, branch targets within [lo,hi), successors of
       terminators *)
    let leader = Array.make (limit - first) false in
    leader.(0) <- true;
    for i = first to limit - 1 do
      let pc = base + (i * 4) in
      let insn = insns.(i) in
      (match Insn.branch_target ~pc insn with
      | Some target when (not (Insn.is_call insn)) && target >= lo && target < hi ->
          leader.((target - base) / 4 - first) <- true
      | Some _ | None -> ());
      if Insn.is_terminator insn && i + 1 < limit then leader.(i + 1 - first) <- true
    done;
    (* carve blocks *)
    let blocks = ref [] in
    let blk_start = ref first in
    let flush stop =
      if stop > !blk_start then begin
        let insts =
          Array.init (stop - !blk_start) (fun k ->
              let idx = !blk_start + k in
              {
                Ir.i_insn = insns.(idx);
                i_pc = base + (idx * 4);
                i_before = [];
                i_after = [];
                i_taken = [];
              })
        in
        let last = insts.(Array.length insts - 1) in
        let succs =
          (* a call falls through once the callee returns *)
          let fall =
            if Insn.falls_through last.Ir.i_insn || Insn.is_call last.Ir.i_insn
            then [ last.Ir.i_pc + 4 ]
            else []
          in
          match Insn.branch_target ~pc:last.Ir.i_pc last.Ir.i_insn with
          | Some t when (not (Insn.is_call last.Ir.i_insn)) && t >= lo && t < hi ->
              t :: fall
          | Some _ | None -> fall
        in
        let succs = List.filter (fun a -> a >= lo && a < hi) succs in
        blocks :=
          { Ir.b_addr = base + (!blk_start * 4); b_insts = insts; b_succs = succs }
          :: !blocks;
        blk_start := stop
      end
    in
    for i = first + 1 to limit - 1 do
      if leader.(i - first) then flush i
    done;
    flush limit;
    {
      Ir.p_name = name_of lo;
      p_addr = lo;
      p_size = hi - lo;
      p_blocks = Array.of_list (List.rev !blocks);
    }
  in
  let procs = Array.of_list (List.map build_proc ranges) in
  { Ir.procs; exe }

(* -- fast implementation ------------------------------------------------
   Same output (the tests assert structural equality with [program_ref]),
   but symbol and leader lookups go through sorted arrays with binary
   search instead of per-address list scans, and decoding goes through
   the shared word memo. *)

(* leftmost index in [arr] holding [key], or -1 *)
let bsearch_first arr key =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < key then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length arr && arr.(!lo) = key then !lo else -1

let mem_sorted arr key = bsearch_first arr key >= 0

let program exe =
  let text = Objfile.Exe.text_bytes exe in
  let base = exe.Objfile.Exe.x_text_start in
  let size = exe.Objfile.Exe.x_text_size in
  if size = 0 || size mod 4 <> 0 then failwith "Build.program: bad text segment";
  let n = size / 4 in
  let insns = Array.init n (fun i -> Code.decode_at_cached text (i * 4)) in
  let funcs = Array.of_list (Objfile.Exe.funcs_sorted exe) in
  (* funcs_sorted is address-sorted; keep the first symbol at each address
     to mirror [List.find_opt] in the reference builder *)
  let func_addrs = Array.map (fun s -> s.Objfile.Exe.x_addr) funcs in
  let name_of addr =
    match bsearch_first func_addrs addr with
    | -1 -> Printf.sprintf "proc_0x%x" addr
    | i -> funcs.(i).Objfile.Exe.x_name
  in
  let boundaries =
    let addrs = Array.to_list func_addrs in
    let addrs = if List.mem base addrs then addrs else base :: addrs in
    List.sort_uniq compare addrs
  in
  let rec proc_ranges = function
    | [] -> []
    | [ a ] -> [ (a, base + size) ]
    | a :: (b :: _ as rest) -> (a, b) :: proc_ranges rest
  in
  let ranges = proc_ranges boundaries in
  let build_proc (lo, hi) =
    let first = (lo - base) / 4 and limit = (hi - base) / 4 in
    let leader = Array.make (limit - first) false in
    leader.(0) <- true;
    for i = first to limit - 1 do
      let pc = base + (i * 4) in
      let insn = insns.(i) in
      (match Insn.branch_target ~pc insn with
      | Some target when (not (Insn.is_call insn)) && target >= lo && target < hi ->
          leader.((target - base) / 4 - first) <- true
      | Some _ | None -> ());
      if Insn.is_terminator insn && i + 1 < limit then leader.(i + 1 - first) <- true
    done;
    (* sorted leader addresses: every legal intra-procedure successor is a
       block leader by construction, so successor filtering is a binary
       search here instead of a range filter *)
    let nleaders = ref 0 in
    Array.iter (fun l -> if l then incr nleaders) leader;
    let leader_pcs = Array.make !nleaders 0 in
    let k = ref 0 in
    Array.iteri
      (fun i l ->
        if l then begin
          leader_pcs.(!k) <- lo + (4 * i);
          incr k
        end)
      leader;
    let nblocks = !nleaders in
    let blocks = Array.make nblocks Ir.{ b_addr = 0; b_insts = [||]; b_succs = [] } in
    for bi = 0 to nblocks - 1 do
      let start = (leader_pcs.(bi) - base) / 4 in
      let stop =
        if bi + 1 < nblocks then (leader_pcs.(bi + 1) - base) / 4 else limit
      in
      let insts =
        Array.init (stop - start) (fun k ->
            let idx = start + k in
            {
              Ir.i_insn = insns.(idx);
              i_pc = base + (idx * 4);
              i_before = [];
              i_after = [];
              i_taken = [];
            })
      in
      let last = insts.(Array.length insts - 1) in
      let succs =
        let fall =
          if Insn.falls_through last.Ir.i_insn || Insn.is_call last.Ir.i_insn
          then [ last.Ir.i_pc + 4 ]
          else []
        in
        match Insn.branch_target ~pc:last.Ir.i_pc last.Ir.i_insn with
        | Some t when (not (Insn.is_call last.Ir.i_insn)) && t >= lo && t < hi ->
            t :: fall
        | Some _ | None -> fall
      in
      let succs = List.filter (mem_sorted leader_pcs) succs in
      blocks.(bi) <-
        { Ir.b_addr = base + (start * 4); b_insts = insts; b_succs = succs }
    done;
    { Ir.p_name = name_of lo; p_addr = lo; p_size = hi - lo; p_blocks = blocks }
  in
  let procs = Array.of_list (List.map build_proc ranges) in
  { Ir.procs; exe }
