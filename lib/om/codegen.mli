(** Code generation: lay the annotated IR back out as machine code.

    The new text is placed at the original text base; stubs expand it, so
    every original instruction may move.  The generator

    - computes the old-to-new PC map,
    - re-resolves every PC-relative branch through that map (branch targets
      land on the target instruction's {e before}-stubs, so entering a
      block by branch runs its instrumentation),
    - rewrites [ldah]/[lda] pairs that materialise a {e text} address
      (using the executable's {!Objfile.Exe.code_ref} records), so taken
      procedure addresses remain valid,
    - executes each instruction's {e after}-stubs only on fall-through.

    Data-resident code references ([Cr_quad]/[Cr_long]) are reported back
    for the caller (ATOM) to patch in the data image. *)

type error_info = { e_proc : string; e_pc : int; e_what : string }
(** A structural failure at a specific site: the enclosing procedure, the
    {e original} PC of the offending instruction, and what went wrong
    (including the displacement when a branch no longer fits its field).
    The verifier names the same sites the same way. *)

exception Error of error_info

val error_message : error_info -> string
(** Render an {!Error} payload as ["procedure %s, pc %#x: %s"]. *)

type extent = { e_addr : int; e_size : int }
(** A contiguous run of emitted stub code in the new text (bytes). *)

type site = {
  st_pc : int;  (** original PC of the instrumented instruction *)
  st_proc : string;  (** enclosing procedure *)
  st_before : extent list;  (** one extent per before-stub, in run order *)
  st_insn_addr : int;  (** new address of the relocated instruction *)
  st_taken : extent list;  (** taken-edge trampoline stubs (final branch excluded) *)
  st_after : extent list;
}

type result = {
  r_text : bytes;  (** instrumented text, based at the original text start *)
  r_map : int -> int;
      (** old PC -> new PC, defined on [text_start .. text_start+size] *)
  r_data_patches : (Objfile.Exe.code_ref * int) list;
      (** data-segment code refs paired with the {e new} target address *)
  r_sites : site list;
      (** where every stub landed, in address order — the verifier's map of
          which code is inserted and which is relocated application text *)
}

val sizeof : Ir.program -> int
(** Size in bytes of the instrumented text (layout is deterministic). *)

val generate : Ir.program -> result
(** @raise Error if a rewritten branch no longer fits its displacement
    field, a stub misdeclares its size, or stubs are attached to an
    instruction that cannot host them. *)
