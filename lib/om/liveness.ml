open Alpha

let all_regs =
  Regset.union
    (Regset.of_list (List.init 31 Fun.id))
    (Regset.of_list_f (List.init 31 Fun.id))

(* registers conservatively assumed read by any callee *)
let call_uses =
  Regset.union
    (Regset.of_list [ 16; 17; 18; 19; 20; 21; 27; 30 ])
    (Regset.of_list_f [ 16; 17; 18; 19; 20; 21 ])

(* effect of one instruction on the live set, backward *)
let step insn live =
  let defs, uses =
    if Insn.is_call insn then
      ( Regset.union (Insn.defs insn) Regset.caller_saves,
        Regset.union (Insn.uses insn) call_uses )
    else (Insn.defs insn, Insn.uses insn)
  in
  Regset.union uses (Regset.diff live defs)

(* The analysis is interprocedural in the way the paper sketches: the
   registers live at a procedure's returns are those live after its call
   sites, unioned over all callers and iterated to fixpoint.  This stays
   sound for hand-written routines that break the calling standard (our
   [__divqu] returns a second result in [$3]): if a caller reads such a
   register after the call, it is live after the call site and therefore
   live at the callee's return.

   The remaining assumption, standard for ABI-bearing code: a caller never
   carries its own caller-save value across a call (a call is assumed to
   clobber every caller-save register). *)

(* -- reference implementation -------------------------------------------
   The pre-overhaul dense fixpoint (full-procedure passes, per-pass
   Hashtbl construction, per-instruction stepping during propagation),
   kept verbatim as the benchmark baseline and the equality reference for
   the worklist solver below. *)

let compute_ref prog =
  let nprocs = Array.length prog.Ir.procs in
  let proc_index = Hashtbl.create nprocs in
  Array.iteri (fun i p -> Hashtbl.replace proc_index p.Ir.p_addr i) prog.Ir.procs;
  (* procedures whose address is taken can be called from anywhere *)
  let ret_live = Array.make nprocs Regset.empty in
  List.iter
    (fun cr ->
      match Hashtbl.find_opt proc_index cr.Objfile.Exe.cr_target with
      | Some i -> ret_live.(i) <- all_regs
      | None -> ())
    prog.Ir.exe.Objfile.Exe.x_code_refs;
  let changed = ref true in
  let table = Hashtbl.create 1024 in
  (* one intra-procedural pass; [record] optionally fills the final
     per-instruction table; call-site live-after sets feed callee
     return-liveness *)
  let analyse pi ~record =
    let p = prog.Ir.procs.(pi) in
    let blocks = p.Ir.p_blocks in
    let n = Array.length blocks in
    let index_of = Hashtbl.create n in
    Array.iteri (fun i b -> Hashtbl.replace index_of b.Ir.b_addr i) blocks;
    let live_in = Array.make n Regset.empty in
    let boundary b =
      let last = Ir.last_inst b in
      let insn = last.Ir.i_insn in
      if Insn.is_return insn then Some ret_live.(pi)
      else if Insn.is_call insn then None
      else
        match insn with
        | Insn.Jump _ -> Some all_regs
        | Insn.Call_pal _ | Insn.Raw _ -> Some all_regs
        | Insn.Br _ | Insn.Cbr _ | Insn.Fbr _ | Insn.Mem _ | Insn.Opr _
        | Insn.Fop _ ->
            if b.Ir.b_succs = [] then Some all_regs else None
    in
    let live_out b =
      match boundary b with
      | Some s -> s
      | None ->
          let last = Ir.last_inst b in
          let escapes =
            match Insn.branch_target ~pc:last.Ir.i_pc last.Ir.i_insn with
            | Some t ->
                (not (Insn.is_call last.Ir.i_insn))
                && not (List.mem t b.Ir.b_succs)
            | None -> false
          in
          let base = if escapes then all_regs else Regset.empty in
          List.fold_left
            (fun acc succ ->
              match Hashtbl.find_opt index_of succ with
              | Some j -> Regset.union acc live_in.(j)
              | None -> Regset.union acc all_regs)
            base b.Ir.b_succs
    in
    (* walk a block backward; optionally record table entries and
       call-site contributions *)
    let walk b ~emit =
      let insts = b.Ir.b_insts in
      let live = ref (live_out b) in
      for k = Array.length insts - 1 downto 0 do
        let inst = insts.(k) in
        if emit then begin
          (* before stepping, !live is the live-after set of inst *)
          (if Insn.is_call inst.Ir.i_insn then
             match Insn.branch_target ~pc:inst.Ir.i_pc inst.Ir.i_insn with
             | Some target -> (
                 match Hashtbl.find_opt proc_index target with
                 | Some q ->
                     let s = Regset.union ret_live.(q) !live in
                     if not (Regset.equal s ret_live.(q)) then begin
                       ret_live.(q) <- s;
                       changed := true
                     end
                 | None -> ())
             | None -> ());
          if record then Hashtbl.replace table inst.Ir.i_pc (step inst.Ir.i_insn !live)
        end;
        live := step inst.Ir.i_insn !live
      done;
      !live
    in
    let intra_changed = ref true in
    while !intra_changed do
      intra_changed := false;
      for i = n - 1 downto 0 do
        let s = walk blocks.(i) ~emit:false in
        if not (Regset.equal s live_in.(i)) then begin
          live_in.(i) <- s;
          intra_changed := true
        end
      done
    done;
    (* final pass over the converged solution *)
    Array.iter (fun b -> ignore (walk b ~emit:true)) blocks
  in
  (* interprocedural fixpoint over return-liveness *)
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    for pi = 0 to nprocs - 1 do
      analyse pi ~record:false
    done
  done;
  if !changed then
    (* did not converge (pathological); fall back to fully conservative *)
    Array.iteri (fun i _ -> ret_live.(i) <- all_regs) ret_live;
  Hashtbl.reset table;
  for pi = 0 to nprocs - 1 do
    analyse pi ~record:true
  done;
  table

(* -- worklist implementation --------------------------------------------
   Same fixpoint (the tests assert table equality with [compute_ref]), but
   the per-procedure CFG is preprocessed once — block gen/kill transfer
   sets, successor/predecessor index arrays, boundary classification — and
   propagation is worklist-driven over those arrays, warm-starting each
   interprocedural round from the previous round's solution (sound: the
   return-live sets only grow, so the warm start stays below the new
   fixpoint). *)

(* how a block's live-out is obtained *)
type bkind =
  | B_ret  (** terminates in [ret]: live-out is the procedure's return set *)
  | B_all  (** indirect jump / PAL / raw / dead end: everything is live *)
  | B_flow of bool  (** union of successors; [true] adds [all_regs] for an
                        edge that escapes the procedure *)

type pblock = {
  k_gen : Regset.t;
  k_kill : Regset.t;
  k_succ : int array;
  k_pred : int array;
  k_kind : bkind;
}

let preprocess p =
  let blocks = p.Ir.p_blocks in
  let n = Array.length blocks in
  let addrs = Array.map (fun b -> b.Ir.b_addr) blocks in
  (* block addresses ascend within a procedure *)
  let index_of addr =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if addrs.(mid) < addr then lo := mid + 1 else hi := mid
    done;
    if !lo < n && addrs.(!lo) = addr then !lo else -1
  in
  let npreds = Array.make n 0 in
  let pre =
    Array.map
      (fun b ->
        let last = Ir.last_inst b in
        let insn = last.Ir.i_insn in
        let kind =
          if Insn.is_return insn then B_ret
          else if Insn.is_call insn then
            B_flow (List.exists (fun s -> index_of s < 0) b.Ir.b_succs)
          else
            match insn with
            | Insn.Jump _ | Insn.Call_pal _ | Insn.Raw _ -> B_all
            | Insn.Br _ | Insn.Cbr _ | Insn.Fbr _ | Insn.Mem _ | Insn.Opr _
            | Insn.Fop _ ->
                if b.Ir.b_succs = [] then B_all
                else
                  let escapes =
                    (match Insn.branch_target ~pc:last.Ir.i_pc insn with
                    | Some t -> not (List.mem t b.Ir.b_succs)
                    | None -> false)
                    || List.exists (fun s -> index_of s < 0) b.Ir.b_succs
                  in
                  B_flow escapes
        in
        let succ =
          Array.of_list
            (List.filter_map
               (fun s ->
                 let j = index_of s in
                 if j < 0 then None else Some j)
               b.Ir.b_succs)
        in
        Array.iter (fun j -> npreds.(j) <- npreds.(j) + 1) succ;
        (* backward gen/kill over the block's instructions *)
        let gen = ref Regset.empty and kill = ref Regset.empty in
        let insts = b.Ir.b_insts in
        for k = Array.length insts - 1 downto 0 do
          let insn = insts.(k).Ir.i_insn in
          let defs, uses =
            if Insn.is_call insn then
              ( Regset.union (Insn.defs insn) Regset.caller_saves,
                Regset.union (Insn.uses insn) call_uses )
            else (Insn.defs insn, Insn.uses insn)
          in
          kill := Regset.union !kill defs;
          gen := Regset.union uses (Regset.diff !gen defs)
        done;
        { k_gen = !gen; k_kill = !kill; k_succ = succ; k_pred = [||]; k_kind = kind })
      blocks
  in
  let preds = Array.init n (fun i -> Array.make npreds.(i) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun i pb ->
      Array.iter
        (fun j ->
          preds.(j).(fill.(j)) <- i;
          fill.(j) <- fill.(j) + 1)
        pb.k_succ)
    pre;
  Array.mapi (fun i pb -> { pb with k_pred = preds.(i) }) pre

let compute prog =
  let nprocs = Array.length prog.Ir.procs in
  let proc_index = Hashtbl.create nprocs in
  Array.iteri (fun i p -> Hashtbl.replace proc_index p.Ir.p_addr i) prog.Ir.procs;
  let ret_live = Array.make nprocs Regset.empty in
  List.iter
    (fun cr ->
      match Hashtbl.find_opt proc_index cr.Objfile.Exe.cr_target with
      | Some i -> ret_live.(i) <- all_regs
      | None -> ())
    prog.Ir.exe.Objfile.Exe.x_code_refs;
  let changed = ref true in
  let table = Hashtbl.create 1024 in
  let pre = Array.map preprocess prog.Ir.procs in
  (* per-procedure solutions persist across interprocedural rounds *)
  let live_ins =
    Array.map (fun p -> Array.make (Array.length p.Ir.p_blocks) Regset.empty)
      prog.Ir.procs
  in
  let analyse pi ~record =
    let p = prog.Ir.procs.(pi) in
    let pb = pre.(pi) in
    let live_in = live_ins.(pi) in
    let n = Array.length pb in
    let live_out i =
      match pb.(i).k_kind with
      | B_ret -> ret_live.(pi)
      | B_all -> all_regs
      | B_flow escapes ->
          Array.fold_left
            (fun acc j -> Regset.union acc live_in.(j))
            (if escapes then all_regs else Regset.empty)
            pb.(i).k_succ
    in
    let on_list = Array.make n false in
    let stack = ref [] in
    let push i =
      if not on_list.(i) then begin
        on_list.(i) <- true;
        stack := i :: !stack
      end
    in
    (* seed forward so the last block pops first (backward analysis) *)
    for i = 0 to n - 1 do
      push i
    done;
    let rec drain () =
      match !stack with
      | [] -> ()
      | i :: rest ->
          stack := rest;
          on_list.(i) <- false;
          let nin =
            Regset.union pb.(i).k_gen (Regset.diff (live_out i) pb.(i).k_kill)
          in
          if not (Regset.equal nin live_in.(i)) then begin
            live_in.(i) <- nin;
            Array.iter push pb.(i).k_pred
          end;
          drain ()
    in
    drain ();
    (* converged: walk each block once to harvest call-site contributions
       to callee return-liveness and, when requested, the final table *)
    Array.iteri
      (fun i b ->
        let insts = b.Ir.b_insts in
        let live = ref (live_out i) in
        for k = Array.length insts - 1 downto 0 do
          let inst = insts.(k) in
          (* before stepping, !live is the live-after set of inst *)
          (if Insn.is_call inst.Ir.i_insn then
             match Insn.branch_target ~pc:inst.Ir.i_pc inst.Ir.i_insn with
             | Some target -> (
                 match Hashtbl.find_opt proc_index target with
                 | Some q ->
                     let s = Regset.union ret_live.(q) !live in
                     if not (Regset.equal s ret_live.(q)) then begin
                       ret_live.(q) <- s;
                       changed := true
                     end
                 | None -> ())
             | None -> ());
          if record then
            Hashtbl.replace table inst.Ir.i_pc (step inst.Ir.i_insn !live);
          live := step inst.Ir.i_insn !live
        done)
      p.Ir.p_blocks
  in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    for pi = 0 to nprocs - 1 do
      analyse pi ~record:false
    done
  done;
  if !changed then begin
    (* did not converge (pathological); fall back to fully conservative *)
    Array.iteri (fun i _ -> ret_live.(i) <- all_regs) ret_live;
    (* the warm-started solutions must re-converge against the new sets *)
    ()
  end;
  Hashtbl.reset table;
  for pi = 0 to nprocs - 1 do
    analyse pi ~record:true
  done;
  table

let live_before table pc =
  match Hashtbl.find_opt table pc with Some s -> s | None -> all_regs
