(** IR construction: decode a linked executable back into OM's symbolic
    program view.

    Procedure boundaries come from the executable's [Func] symbols (text
    between or before symbols becomes synthetic [proc_0x...] procedures, so
    the procedure array always covers the whole text segment).  Within a
    procedure, basic-block leaders are the procedure entry, every branch
    target, and every instruction following a terminator. *)

val program : Objfile.Exe.t -> Ir.program
(** @raise Failure if the text segment is malformed (e.g. empty).

    Symbol and leader lookups use sorted arrays with binary search and
    decoding goes through {!Alpha.Code.decode_cached}. *)

val program_ref : Objfile.Exe.t -> Ir.program
(** The pre-overhaul builder ([List.find_opt] symbol lookups, uncached
    decoding), kept as the benchmark baseline and differential-testing
    reference.  Produces a structurally identical program. *)
