(** Interprocedural live-register analysis (the optimization the paper
    leaves as future work: "OM can do interprocedural live variable
    analysis... Only the live registers need to be saved and restored to
    preserve the state of the program execution").

    Backward over each procedure's CFG, with return-liveness propagated
    over the call graph to a fixpoint: the registers live at a
    procedure's returns are those observed live after its call sites,
    unioned over all callers.  This keeps the analysis sound for
    hand-written routines that return extra results outside the calling
    standard (the runtime's [__divqu] leaves the remainder in [$3]) — a
    simple convention-based rule would declare such registers dead.

    Remaining conservatisms:

    - a call is assumed to read all argument registers and [$pv] and to
      clobber every caller-save register (so a caller must not carry a
      caller-save value of its own across a call — true of all
      ABI-respecting code);
    - procedures whose address is taken are callable from anywhere:
      everything is live at their returns;
    - indirect jumps and PAL calls make every register live. *)

val compute : Ir.program -> (int, Alpha.Regset.t) Hashtbl.t
(** Per original instruction address, the registers live {e before} that
    instruction executes.

    Worklist-driven: each procedure's CFG is preprocessed once (block
    gen/kill sets, successor/predecessor index arrays, boundary
    classification) and propagation revisits only blocks whose successors
    changed, warm-starting every interprocedural round from the previous
    round's solution. *)

val compute_ref : Ir.program -> (int, Alpha.Regset.t) Hashtbl.t
(** The pre-overhaul dense fixpoint (full-procedure passes re-stepping
    every instruction), kept as the benchmark baseline and differential
    reference.  Computes the same table as {!compute}. *)

val live_before : (int, Alpha.Regset.t) Hashtbl.t -> int -> Alpha.Regset.t
(** Lookup; unknown addresses report every register live. *)

val all_regs : Alpha.Regset.t
