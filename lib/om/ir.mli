(** OM's symbolic intermediate representation of a linked program.

    A program is a linear collection of procedures, a procedure a
    collection of basic blocks, and a block a collection of instructions —
    the exact view the paper's instrumentation API exposes.  Each
    instruction carries mutable {e action slots}: instruction sequences to
    splice in before or after it.  ATOM fills the slots; {!Codegen} lays
    everything out and resolves displacements.

    A stub's size must be known up front (layout is a single pass) while
    its bytes may depend on its final address (a [bsr] to an absolute
    target needs its own PC), hence the [s_size]/[s_emit] split. *)

type stub = {
  s_size : int;  (** bytes the stub occupies; must equal [4 * length (s_emit ~pc)] *)
  s_emit : pc:int -> Alpha.Insn.t list;
      (** instructions, given the stub's final placement address *)
}

type inst = {
  i_insn : Alpha.Insn.t;
  i_pc : int;  (** original address in the uninstrumented program *)
  mutable i_before : stub list;  (** in execution order *)
  mutable i_after : stub list;
  mutable i_taken : stub list;
      (** taken-edge stubs: only legal on a conditional branch; executed
          exactly when the branch is taken.  {!Codegen} lowers them by
          inverting the branch over a trampoline (the paper's deferred
          "calls on edges" feature). *)
}

type block = {
  b_addr : int;  (** original address of the first instruction *)
  b_insts : inst array;
  mutable b_succs : int list;
      (** original addresses of possible intra-procedure successors
          (branch targets and fall-through); empty after jumps/returns *)
}

type proc = {
  p_name : string;
  p_addr : int;
  p_size : int;  (** bytes of original text *)
  p_blocks : block array;
}

type program = {
  procs : proc array;  (** ascending by address, covering all of text *)
  exe : Objfile.Exe.t;
}

val add_before : inst -> stub -> unit
(** Append to the before-slot; calls run in the order they were added. *)

val add_after : inst -> stub -> unit

val add_taken : inst -> stub -> unit

val stub_of_insns : Alpha.Insn.t list -> stub
(** A stub whose contents do not depend on placement. *)

val first_inst : block -> inst
val last_inst : block -> inst
val entry_block : proc -> block
val inst_count : program -> int

val iter_insts : program -> (proc -> block -> inst -> unit) -> unit

val copy : program -> program
(** A fresh instrumentation view of the program: new procedure, block and
    instruction records whose action slots are all empty, sharing the
    immutable payload (decoded instructions, successor lists, the
    executable).  A cached master program is never handed out directly —
    each client instruments its own view, so concurrent instrumentations
    of one executable cannot observe each other's stubs. *)

val find_proc : program -> string -> proc option

val proc_at : program -> int -> proc option
(** The procedure whose text contains the given original address. *)
