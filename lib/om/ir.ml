type stub = {
  s_size : int;
  s_emit : pc:int -> Alpha.Insn.t list;
}

type inst = {
  i_insn : Alpha.Insn.t;
  i_pc : int;
  mutable i_before : stub list;
  mutable i_after : stub list;
  mutable i_taken : stub list;
}

type block = {
  b_addr : int;
  b_insts : inst array;
  mutable b_succs : int list;
}

type proc = {
  p_name : string;
  p_addr : int;
  p_size : int;
  p_blocks : block array;
}

type program = {
  procs : proc array;
  exe : Objfile.Exe.t;
}

let add_before i s = i.i_before <- i.i_before @ [ s ]
let add_after i s = i.i_after <- i.i_after @ [ s ]
let add_taken i s = i.i_taken <- i.i_taken @ [ s ]

let stub_of_insns insns =
  { s_size = 4 * List.length insns; s_emit = (fun ~pc:_ -> insns) }

let first_inst b = b.b_insts.(0)
let last_inst b = b.b_insts.(Array.length b.b_insts - 1)
let entry_block p = p.p_blocks.(0)

let inst_count prog =
  Array.fold_left
    (fun acc p ->
      Array.fold_left (fun acc b -> acc + Array.length b.b_insts) acc p.p_blocks)
    0 prog.procs

let iter_insts prog fn =
  Array.iter
    (fun p -> Array.iter (fun b -> Array.iter (fun i -> fn p b i) b.b_insts) p.p_blocks)
    prog.procs

(* A fresh instrumentation view: new [inst]/[block]/[proc] records with
   empty action slots, sharing the immutable payload (decoded
   instructions, the executable).  Callers that cache a built program
   hand each client its own view, so two concurrent instrumentations of
   the same executable can never observe each other's stubs. *)
let copy prog =
  {
    exe = prog.exe;
    procs =
      Array.map
        (fun p ->
          {
            p with
            p_blocks =
              Array.map
                (fun b ->
                  {
                    b with
                    b_insts =
                      Array.map
                        (fun i ->
                          { i with i_before = []; i_after = []; i_taken = [] })
                        b.b_insts;
                  })
                p.p_blocks;
          })
        prog.procs;
  }

let find_proc prog name =
  Array.find_opt (fun p -> p.p_name = name) prog.procs

let proc_at prog addr =
  Array.find_opt (fun p -> addr >= p.p_addr && addr < p.p_addr + p.p_size) prog.procs
