open Alpha

type error_info = { e_proc : string; e_pc : int; e_what : string }

exception Error of error_info

let error ~proc ~pc fmt =
  Printf.ksprintf (fun e_what -> raise (Error { e_proc = proc; e_pc = pc; e_what })) fmt

let error_message { e_proc; e_pc; e_what } =
  Printf.sprintf "procedure %s, pc %#x: %s" e_proc e_pc e_what

type extent = { e_addr : int; e_size : int }

type site = {
  st_pc : int;
  st_proc : string;
  st_before : extent list;
  st_insn_addr : int;
  st_taken : extent list;
  st_after : extent list;
}

type result = {
  r_text : bytes;
  r_map : int -> int;
  r_data_patches : (Objfile.Exe.code_ref * int) list;
  r_sites : site list;
}

let stub_bytes stubs = List.fold_left (fun acc s -> acc + s.Ir.s_size) 0 stubs

let inst_bytes i =
  let tramp =
    (* taken-edge trampoline: the stubs plus a branch to the original
       target (the branch itself reuses the instruction's own slot) *)
    if i.Ir.i_taken = [] then 0 else stub_bytes i.Ir.i_taken + 4
  in
  stub_bytes i.Ir.i_before + 4 + tramp + stub_bytes i.Ir.i_after

let sizeof prog =
  let total = ref 0 in
  Ir.iter_insts prog (fun _ _ i -> total := !total + inst_bytes i);
  !total

let sext16 v = if v land 0x8000 <> 0 then (v land 0xFFFF) - 0x10000 else v land 0xFFFF

let generate prog =
  let exe = prog.Ir.exe in
  let base = exe.Objfile.Exe.x_text_start in
  let old_size = exe.Objfile.Exe.x_text_size in
  (* pass 1: layout *)
  let nwords = old_size / 4 in
  let map_arr = Array.make (nwords + 1) 0 in
  let cursor = ref base in
  Ir.iter_insts prog (fun _ _ i ->
      map_arr.((i.Ir.i_pc - base) / 4) <- !cursor;
      cursor := !cursor + inst_bytes i);
  map_arr.(nwords) <- !cursor;
  (* every instruction occupies at least its own word, so the array-backed
     map must be strictly increasing (hence injective); check once here so
     every downstream consumer of [r_map] can rely on monotonicity *)
  for k = 1 to nwords do
    if map_arr.(k) <= map_arr.(k - 1) then
      failwith
        (Printf.sprintf "Codegen: pc map not strictly increasing at word %d" k)
  done;
  let new_size = !cursor - base in
  let map old =
    if old < base || old > base + old_size then
      failwith (Printf.sprintf "Codegen: PC map query outside text: %#x" old)
    else map_arr.((old - base) / 4)
  in
  (* code-ref lookup for hi/lo fields inside text *)
  let hilo = Hashtbl.create 16 in
  let data_patches = ref [] in
  List.iter
    (fun cr ->
      let open Objfile.Exe in
      match cr.cr_kind with
      | Cr_hi | Cr_lo ->
          if cr.cr_addr >= base && cr.cr_addr < base + old_size then
            Hashtbl.replace hilo cr.cr_addr cr
          else failwith "Codegen: hi/lo code ref outside text"
      | Cr_quad | Cr_long -> data_patches := (cr, map cr.cr_target) :: !data_patches)
    exe.Objfile.Exe.x_code_refs;
  (* pass 2: emission *)
  let out = Bytes.make new_size '\000' in
  let pos = ref 0 in
  let emit_insn insn =
    Code.encode_at out !pos insn;
    pos := !pos + 4
  in
  let sites = ref [] in
  Ir.iter_insts prog (fun p _ i ->
      let err fmt = error ~proc:p.Ir.p_name ~pc:i.Ir.i_pc fmt in
      let emit_stub s =
        let pc = base + !pos in
        let insns = s.Ir.s_emit ~pc in
        if 4 * List.length insns <> s.Ir.s_size then
          err "stub at %#x emitted %d bytes, declared %d" pc
            (4 * List.length insns) s.Ir.s_size;
        List.iter emit_insn insns;
        { e_addr = pc; e_size = s.Ir.s_size }
      in
      let before_extents = List.map emit_stub i.Ir.i_before in
      let here = base + !pos in
      let insn = i.Ir.i_insn in
      let insn =
        (* retarget PC-relative branches through the map; preserve the
           absolute target of a branch that leaves the text segment *)
        match Insn.branch_target ~pc:i.Ir.i_pc insn with
        | Some old_target ->
            let new_target =
              if old_target >= base && old_target <= base + old_size then map old_target
              else old_target
            in
            let disp = (new_target - (here + 4)) / 4 in
            if not (Code.fits_disp21 disp) then
              err "branch to %#x needs displacement %d after expansion, \
                   outside the signed 21-bit range" new_target disp;
            Insn.with_branch_disp insn disp
        | None -> (
            (* rewrite hi/lo address materialisations that point into text *)
            match Hashtbl.find_opt hilo i.Ir.i_pc with
            | None -> insn
            | Some cr -> (
                let nt = map cr.Objfile.Exe.cr_target in
                match (cr.Objfile.Exe.cr_kind, insn) with
                | Objfile.Exe.Cr_hi, Insn.Mem m ->
                    Insn.Mem { m with disp = sext16 (((nt + 0x8000) asr 16) land 0xFFFF) }
                | Objfile.Exe.Cr_lo, Insn.Mem m ->
                    Insn.Mem { m with disp = sext16 (nt land 0xFFFF) }
                | (Objfile.Exe.Cr_hi | Objfile.Exe.Cr_lo), _ ->
                    err "hi/lo code ref for %#x on a non-memory instruction"
                      cr.Objfile.Exe.cr_target
                | (Objfile.Exe.Cr_quad | Objfile.Exe.Cr_long), _ ->
                    err "internal: quad/long code ref in the hi/lo table"))
      in
      let taken_extents =
        if i.Ir.i_taken = [] then begin
          emit_insn insn;
          []
        end
        else begin
          (* taken-edge lowering: invert the branch over the trampoline *)
          let skip_words = (stub_bytes i.Ir.i_taken + 4) / 4 in
          let inverted =
            match Insn.invert_branch insn with
            | Some b -> Insn.with_branch_disp b skip_words
            | None -> err "taken-edge stubs on a non-conditional branch"
          in
          emit_insn inverted;
          let extents = List.map emit_stub i.Ir.i_taken in
          (* jump to the (moved) original target *)
          let old_target =
            match Insn.branch_target ~pc:i.Ir.i_pc i.Ir.i_insn with
            | Some t -> t
            | None -> err "internal: taken-edge instruction has no branch target"
          in
          let new_target =
            if old_target >= base && old_target <= base + old_size then map old_target
            else old_target
          in
          let br_pc = base + !pos in
          let disp = (new_target - (br_pc + 4)) / 4 in
          if not (Code.fits_disp21 disp) then
            err "taken-edge trampoline to %#x needs displacement %d, \
                 outside the signed 21-bit range" new_target disp;
          emit_insn (Insn.Br { link = false; ra = Alpha.Reg.zero; disp });
          extents
        end
      in
      if i.Ir.i_after <> [] && not (Insn.falls_through i.Ir.i_insn) then
        err "after-stub on an instruction that does not fall through";
      let after_extents = List.map emit_stub i.Ir.i_after in
      if before_extents <> [] || taken_extents <> [] || after_extents <> [] then
        sites :=
          {
            st_pc = i.Ir.i_pc;
            st_proc = p.Ir.p_name;
            st_before = before_extents;
            st_insn_addr = here;
            st_taken = taken_extents;
            st_after = after_extents;
          }
          :: !sites);
  if !pos <> new_size then failwith "Codegen: layout/emission size mismatch";
  {
    r_text = out;
    r_map = map;
    r_data_patches = List.rev !data_patches;
    r_sites = List.rev !sites;
  }
