open Alpha

type edge_kind = Taken | Fallthrough

type edge = {
  e_id : int;
  e_src : int;
  e_dst : int;
  e_kind : edge_kind;
  e_probe : bool;
}

type loop = {
  l_header : int;
  l_body : int list;
  l_back : int list;
  l_entries : int list;
}

type t = {
  ir : Ir.program;
  nblocks : int;
  blocks : Ir.block array;
  block_proc : int array;
  proc_first : int array;
  edges : edge array;
  succs : int list array;
  preds : int list array;
  loops : loop array;
  retreating : int list;
}

(* -- small bitsets over block indices ---------------------------------- *)

let bits_make n = Array.make ((n + 62) / 63) 0
let bits_mem s i = s.(i / 63) land (1 lsl (i mod 63)) <> 0
let bits_add s i = s.(i / 63) <- s.(i / 63) lor (1 lsl (i mod 63))
let bits_fill s = Array.fill s 0 (Array.length s) (-1)
let bits_copy s = Array.copy s

let bits_inter_into dst src =
  let changed = ref false in
  for w = 0 to Array.length dst - 1 do
    let v = dst.(w) land src.(w) in
    if v <> dst.(w) then begin
      dst.(w) <- v;
      changed := true
    end
  done;
  !changed

let build (ir : Ir.program) =
  let nprocs = Array.length ir.Ir.procs in
  let nblocks =
    Array.fold_left (fun n p -> n + Array.length p.Ir.p_blocks) 0 ir.Ir.procs
  in
  let blocks = Array.make nblocks Ir.{ b_addr = 0; b_insts = [||]; b_succs = [] } in
  let block_proc = Array.make nblocks 0 in
  let proc_first = Array.make (nprocs + 1) 0 in
  let addr_gid = Hashtbl.create (2 * nblocks) in
  let g = ref 0 in
  Array.iteri
    (fun pi p ->
      proc_first.(pi) <- !g;
      Array.iter
        (fun b ->
          blocks.(!g) <- b;
          block_proc.(!g) <- pi;
          Hashtbl.replace addr_gid b.Ir.b_addr !g;
          incr g)
        p.Ir.p_blocks)
    ir.Ir.procs;
  proc_first.(nprocs) <- nblocks;
  (* Edges, mirroring [Build]'s successor construction: the taken target
     of the last instruction (when it is a non-call PC-relative branch
     into the same procedure) and the fall-through (when the last
     instruction falls through, or is a call that returns).  Recomputing
     from the instruction instead of classifying [b_succs] keeps the
     taken/fall distinction even when a branch targets its own
     fall-through address. *)
  let edges = ref [] in
  let nedges = ref 0 in
  let succs = Array.make nblocks [] in
  let preds = Array.make nblocks [] in
  let add_edge src dst kind probe =
    let e = { e_id = !nedges; e_src = src; e_dst = dst; e_kind = kind; e_probe = probe } in
    incr nedges;
    edges := e :: !edges;
    succs.(src) <- e.e_id :: succs.(src);
    preds.(dst) <- e.e_id :: preds.(dst)
  in
  for gid = 0 to nblocks - 1 do
    let b = blocks.(gid) in
    let last = b.Ir.b_insts.(Array.length b.Ir.b_insts - 1) in
    let li = last.Ir.i_insn in
    let same_proc a =
      match Hashtbl.find_opt addr_gid a with
      | Some d when block_proc.(d) = block_proc.(gid) -> Some d
      | Some _ | None -> None
    in
    (match Insn.branch_target ~pc:last.Ir.i_pc li with
    | Some t when not (Insn.is_call li) -> (
        match same_proc t with
        | Some dst -> add_edge gid dst Taken true
        | None -> ())
    | Some _ | None -> ());
    if Insn.falls_through li || Insn.is_call li then
      match same_proc (last.Ir.i_pc + 4) with
      | Some dst -> add_edge gid dst Fallthrough (Insn.falls_through li)
      | None -> ()
  done;
  let edges =
    let a = Array.of_list (List.rev !edges) in
    Array.iteri (fun i e -> assert (e.e_id = i)) a;
    a
  in
  for i = 0 to nblocks - 1 do
    succs.(i) <- List.rev succs.(i);
    preds.(i) <- List.rev preds.(i)
  done;
  (* -- per-procedure loop structure ------------------------------------ *)
  let loops = ref [] in
  let back_edge = Array.make (Array.length edges) false in
  let retreating = ref [] in
  for pi = 0 to nprocs - 1 do
    let lo = proc_first.(pi) and hi = proc_first.(pi + 1) in
    let n = hi - lo in
    if n > 0 then begin
      (* reachability from the procedure entry over intra-proc edges *)
      let reach = Array.make n false in
      let stack = ref [ 0 ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            if not reach.(u) then begin
              reach.(u) <- true;
              List.iter
                (fun eid -> stack := (edges.(eid).e_dst - lo) :: !stack)
                succs.(u + lo)
            end
      done;
      (* iterative dominators over the reachable subgraph *)
      let dom = Array.init n (fun _ -> bits_make n) in
      for i = 0 to n - 1 do
        if i = 0 then bits_add dom.(0) 0 else bits_fill dom.(i)
      done;
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 1 to n - 1 do
          if reach.(i) then begin
            let acc = ref None in
            List.iter
              (fun eid ->
                let p = edges.(eid).e_src - lo in
                if reach.(p) then
                  match !acc with
                  | None -> acc := Some (bits_copy dom.(p))
                  | Some a -> ignore (bits_inter_into a dom.(p)))
              preds.(i + lo);
            match !acc with
            | None -> ()
            | Some a ->
                bits_add a i;
                if a <> dom.(i) then begin
                  Array.blit a 0 dom.(i) 0 (Array.length a);
                  changed := true
                end
          end
        done
      done;
      (* natural back edges and loops, merged per header *)
      let by_header = Hashtbl.create 7 in
      Array.iter
        (fun e ->
          if block_proc.(e.e_src) = pi then begin
            let u = e.e_src - lo and h = e.e_dst - lo in
            if reach.(u) && reach.(h) && bits_mem dom.(u) h then begin
              back_edge.(e.e_id) <- true;
              let prev = try Hashtbl.find by_header h with Not_found -> [] in
              Hashtbl.replace by_header h (e.e_id :: prev)
            end
          end)
        edges;
      Hashtbl.iter
        (fun h backs ->
          let in_body = Array.make n false in
          in_body.(h) <- true;
          let work = ref (List.map (fun eid -> edges.(eid).e_src - lo) backs) in
          while !work <> [] do
            match !work with
            | [] -> ()
            | u :: rest ->
                work := rest;
                if not in_body.(u) then begin
                  in_body.(u) <- true;
                  List.iter
                    (fun eid -> work := (edges.(eid).e_src - lo) :: !work)
                    preds.(u + lo)
                end
          done;
          let body = ref [] in
          for i = n - 1 downto 0 do
            if in_body.(i) then body := (i + lo) :: !body
          done;
          let entries =
            List.filter
              (fun eid -> not in_body.(edges.(eid).e_src - lo))
              preds.(h + lo)
          in
          loops :=
            {
              l_header = h + lo;
              l_body = !body;
              l_back = List.sort compare backs;
              l_entries = entries;
            }
            :: !loops)
        by_header;
      (* DFS spanning forest: ancestor edges that are not natural back
         edges.  Roots: the procedure entry, then any block left
         unvisited (unreachable-from-entry code still gets covered). *)
      let color = Array.make n 0 (* 0 white, 1 grey, 2 black *) in
      let rec dfs u =
        color.(u) <- 1;
        List.iter
          (fun eid ->
            let v = edges.(eid).e_dst - lo in
            if color.(v) = 1 then begin
              if not back_edge.(eid) then retreating := eid :: !retreating
            end
            else if color.(v) = 0 then dfs v)
          succs.(u + lo);
        color.(u) <- 2
      in
      for i = 0 to n - 1 do
        if color.(i) = 0 then dfs i
      done
    end
  done;
  let loops =
    Array.of_list
      (List.sort (fun a b -> compare a.l_header b.l_header) !loops)
  in
  {
    ir;
    nblocks;
    blocks;
    block_proc;
    proc_first;
    edges;
    succs;
    preds;
    loops;
    retreating = List.sort compare !retreating;
  }

let block_costs t ~model =
  Array.map
    (fun b ->
      Array.fold_left (fun c i -> c + model i.Ir.i_insn) 0 b.Ir.b_insts)
    t.blocks

let gid_of_addr t addr =
  let rec find i =
    if i >= t.nblocks then None
    else if t.blocks.(i).Ir.b_addr = addr then Some i
    else find (i + 1)
  in
  find 0
