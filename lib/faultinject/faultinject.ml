(* Seeded fault-injection campaigns: perturb the I/O world, the image
   bytes and the fuel budget, and check the machine fails closed — every
   case ends in a structured outcome and both engines tell the same
   story.  See the interface for the taxonomy. *)

module Sim = Machine.Sim
module Vfs = Machine.Vfs
module Fault = Machine.Fault
module Exe = Objfile.Exe

type escape = { e_case : string; e_detail : string }

type report = {
  r_cases : int;
  r_hist : (string * int) list;
  r_escapes : escape list;
  r_mismatches : escape list;
}

let outcome_label = function
  | Sim.Exit _ -> "exit"
  | Sim.Fault f -> Fault.kind f
  | Sim.Out_of_fuel -> "out-of-fuel"

let outcome_str = function
  | Sim.Exit n -> Printf.sprintf "exit %d" n
  | Sim.Fault f -> "fault " ^ Fault.to_string f
  | Sim.Out_of_fuel -> "out of fuel"

(* Everything observable about one run.  Two engines given the same
   perturbation must agree on all of it. *)
type observation = {
  ob_outcome : Sim.outcome;
  ob_stats : Sim.stats;
  ob_stdout : string;
  ob_stderr : string;
  ob_files : (string * string) list;
  ob_brk : int;
}

let observe ?plan ~max_insns engine exe =
  let m = Sim.load ~engine exe in
  Option.iter (Vfs.set_fault_plan (Sim.vfs m)) plan;
  let outcome = Sim.run ~max_insns m in
  {
    ob_outcome = outcome;
    ob_stats = Sim.stats m;
    ob_stdout = Sim.stdout m;
    ob_stderr = Sim.stderr m;
    ob_files = Sim.output_files m;
    ob_brk = Sim.brk m;
  }

let describe_disagreement a b =
  if a.ob_outcome <> b.ob_outcome then
    Printf.sprintf "outcome ref=%s fast=%s" (outcome_str a.ob_outcome)
      (outcome_str b.ob_outcome)
  else if a.ob_stats <> b.ob_stats then "statistics differ"
  else if a.ob_stdout <> b.ob_stdout then "stdout differs"
  else if a.ob_stderr <> b.ob_stderr then "stderr differs"
  else if a.ob_files <> b.ob_files then "output files differ"
  else Printf.sprintf "final break ref=%#x fast=%#x" a.ob_brk b.ob_brk

(* -- campaign state ---------------------------------------------------- *)

type acc = {
  mutable cases : int;
  hist : (string, int) Hashtbl.t;
  mutable escapes : escape list;
  mutable mismatches : escape list;
}

let bump acc label =
  Hashtbl.replace acc.hist label
    (1 + Option.value ~default:0 (Hashtbl.find_opt acc.hist label))

(* Run one perturbed case under both engines.  Any exception reaching us
   here escaped the structured-outcome contract. *)
let differential_case acc name ?plan ~max_insns exe =
  acc.cases <- acc.cases + 1;
  match
    ( (try Ok (observe ?plan ~max_insns Sim.Ref exe) with e -> Error e),
      try Ok (observe ?plan ~max_insns Sim.Fast exe) with e -> Error e )
  with
  | Ok a, Ok b ->
      if a = b then bump acc (outcome_label a.ob_outcome)
      else begin
        bump acc (outcome_label a.ob_outcome);
        acc.mismatches <-
          { e_case = name; e_detail = describe_disagreement a b }
          :: acc.mismatches
      end
  | Error e, _ | _, Error e ->
      acc.escapes <-
        { e_case = name; e_detail = Printexc.to_string e } :: acc.escapes

(* -- syscall-error plans ----------------------------------------------- *)

(* Draw a handful of call ordinals to sabotage.  Small ordinals are the
   interesting ones (early opens, the first writes of a report file), so
   the distribution leans low. *)
let gen_ordinals rng =
  List.init
    (1 + Random.State.int rng 3)
    (fun _ ->
      let r = Random.State.int rng 64 in
      if r < 48 then r mod 16 else r)
  |> List.sort_uniq compare

let gen_plan rng =
  match Random.State.int rng 4 with
  | 0 -> { Vfs.no_faults with Vfs.fp_fail_open = gen_ordinals rng }
  | 1 -> { Vfs.no_faults with Vfs.fp_fail_write = gen_ordinals rng }
  | 2 -> { Vfs.no_faults with Vfs.fp_short_read = gen_ordinals rng }
  | _ ->
      {
        Vfs.fp_fail_open = gen_ordinals rng;
        fp_fail_write = gen_ordinals rng;
        fp_short_read = gen_ordinals rng;
      }

(* -- image corruption -------------------------------------------------- *)

(* A corrupted image is allowed exactly two fates: the loader rejects it
   with [Wire.Corrupt], or it loads and both engines agree on whatever
   the damaged program does.  [Invalid_argument] out of [Bytes],
   [Failure], a negative [List.init] — any of those is an escape. *)
let corrupt rng blob =
  let b = Bytes.of_string blob in
  let n = Bytes.length b in
  match Random.State.int rng 3 with
  | 0 ->
      let i = Random.State.int rng n in
      let bit = Random.State.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      (Printf.sprintf "bitflip@%d.%d" i bit, Bytes.to_string b)
  | 1 ->
      let keep = Random.State.int rng n in
      (Printf.sprintf "truncate@%d" keep, String.sub blob 0 keep)
  | _ ->
      (* stomp a 4-byte window: simulates a torn write *)
      let i = Random.State.int rng (max 1 (n - 4)) in
      let w = Random.State.bits rng in
      for k = 0 to 3 do
        if i + k < n then
          Bytes.set b (i + k) (Char.chr ((w lsr (8 * k)) land 0xff))
      done;
      (Printf.sprintf "stomp@%d" i, Bytes.to_string b)

let image_case acc name ~max_insns blob =
  match Exe.of_string blob with
  | exception Objfile.Wire.Corrupt _ ->
      acc.cases <- acc.cases + 1;
      bump acc "rejected"
  | exception e ->
      acc.cases <- acc.cases + 1;
      acc.escapes <-
        { e_case = name; e_detail = Printexc.to_string e } :: acc.escapes
  | exe -> differential_case acc name ~max_insns exe

(* -- the campaign ------------------------------------------------------ *)

let campaign ?(seed = 1) ?(syscall_cases = 24) ?(image_cases = 48)
    ?(fuel_cases = 12) ?(max_insns = 50_000_000) exe =
  let rng = Random.State.make [| 0x0fa17; seed |] in
  let acc =
    { cases = 0; hist = Hashtbl.create 8; escapes = []; mismatches = [] }
  in
  for i = 1 to syscall_cases do
    let plan = gen_plan rng in
    differential_case acc
      (Printf.sprintf "syscall:%d:seed=%d" i seed)
      ~plan ~max_insns exe
  done;
  let blob = Exe.to_string exe in
  for i = 1 to image_cases do
    let kind, damaged = corrupt rng blob in
    image_case acc
      (Printf.sprintf "image:%d:%s:seed=%d" i kind seed)
      ~max_insns damaged
  done;
  for i = 1 to fuel_cases do
    (* log-scaled cut points: the early fuel values catch start-up code,
       the later ones land mid-computation *)
    let mag = 1 lsl Random.State.int rng 25 in
    let fuel = 1 + Random.State.int rng mag in
    differential_case acc
      (Printf.sprintf "fuel:%d:cut=%d:seed=%d" i fuel seed)
      ~max_insns:fuel exe
  done;
  {
    r_cases = acc.cases;
    r_hist =
      Hashtbl.fold (fun k v l -> (k, v) :: l) acc.hist [] |> List.sort compare;
    r_escapes = List.rev acc.escapes;
    r_mismatches = List.rev acc.mismatches;
  }

let merge reports =
  let hist = Hashtbl.create 8 in
  List.iter
    (fun r ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace hist k
            (v + Option.value ~default:0 (Hashtbl.find_opt hist k)))
        r.r_hist)
    reports;
  {
    r_cases = List.fold_left (fun n r -> n + r.r_cases) 0 reports;
    r_hist =
      Hashtbl.fold (fun k v l -> (k, v) :: l) hist [] |> List.sort compare;
    r_escapes = List.concat_map (fun r -> r.r_escapes) reports;
    r_mismatches = List.concat_map (fun r -> r.r_mismatches) reports;
  }

let ok r = r.r_escapes = [] && r.r_mismatches = []

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_to_json r =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n  \"cases\": %d,\n  \"histogram\": {" r.r_cases;
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf b "%s\n    \"%s\": %d" (if i = 0 then "" else ",") k v)
    r.r_hist;
  Printf.bprintf b "\n  },\n  \"escapes\": %d,\n  \"mismatches\": %d"
    (List.length r.r_escapes)
    (List.length r.r_mismatches);
  let dump name l =
    Printf.bprintf b ",\n  \"%s\": [" name;
    List.iteri
      (fun i e ->
        Printf.bprintf b "%s\n    {\"case\": \"%s\", \"detail\": \"%s\"}"
          (if i = 0 then "" else ",")
          (json_escape e.e_case) (json_escape e.e_detail))
      l;
    Buffer.add_string b "\n  ]"
  in
  if r.r_escapes <> [] then dump "escape_cases" r.r_escapes;
  if r.r_mismatches <> [] then dump "mismatch_cases" r.r_mismatches;
  Buffer.add_string b "\n}\n";
  Buffer.contents b
