(** Deterministic fault-injection campaigns over the fail-closed machine.

    A campaign takes one executable and perturbs the world around it in
    three seeded, reproducible ways:

    - {b syscall errors}: the VFS fails [open]s, errors [write]s and
      shortens [read]s according to a {!Machine.Vfs.fault_plan} drawn
      from the seed;
    - {b image corruption}: the serialized executable is bit-flipped or
      truncated before loading — the loader must either reject it with
      [Objfile.Wire.Corrupt] or load something both engines agree on;
    - {b fuel cutoffs}: the instruction budget is cut at seeded points,
      which must stop both engines at exactly the same instruction.

    Every perturbation must produce a {e structured} outcome: a normal
    exit, a {!Machine.Fault.t}, fuel exhaustion, or a loader rejection.
    An OCaml exception escaping the machine is an {e escape} — the
    fail-closed property is broken — and the reference and fast engines
    disagreeing on any perturbed run is a {e mismatch}.  A healthy
    campaign reports zero of both. *)

type escape = {
  e_case : string;  (** reproducible case label, e.g. [syscall:7:seed=42] *)
  e_detail : string;
}

type report = {
  r_cases : int;  (** perturbed runs attempted *)
  r_hist : (string * int) list;
      (** outcome histogram: ["exit"], ["out-of-fuel"], ["rejected"] and
          the {!Machine.Fault.kind} tags, sorted by label *)
  r_escapes : escape list;  (** uncaught exceptions — must be empty *)
  r_mismatches : escape list;  (** ref/fast disagreements — must be empty *)
}

val campaign :
  ?seed:int ->
  ?syscall_cases:int ->
  ?image_cases:int ->
  ?fuel_cases:int ->
  ?max_insns:int ->
  Objfile.Exe.t ->
  report
(** Run the full campaign against one executable.  Defaults: seed 1,
    24 syscall cases, 48 image cases, 12 fuel cases, 50M-instruction
    budget per run.  Identical arguments give an identical report. *)

val merge : report list -> report

val ok : report -> bool
(** No escapes and no mismatches. *)

val report_to_json : report -> string
