(** The structured machine-fault taxonomy.

    Every abnormal termination of a simulated program is one of these
    values, carrying the faulting address or number and the PC of the
    instruction that raised it.  Both execution engines raise the exact
    same fault value at the same PC with the same statistics record —
    the engine-symmetry invariant the differential tests enforce. *)

type access = Load | Store | Fetch

type t =
  | Segv of { addr : int; access : access; pc : int }
      (** access outside every mapped region (or a write to a read-only
          one): unmapped data, the stack guard gap, below-break heap
          holes, stores into text *)
  | Unaligned of { addr : int; access : access; pc : int }
      (** natural-alignment violation, raised only in strict-align mode *)
  | Illegal_insn of { word : int; pc : int }
      (** undecodable instruction word reached by execution *)
  | Bad_pc of { pc : int }
      (** control transferred outside every code segment *)
  | Bad_pal of { num : int; pc : int }
      (** [call_pal] other than the OSF/1 callsys (0x83) *)
  | Unknown_syscall of { num : int; pc : int }
      (** callsys with an unimplemented call number in [$v0] *)
  | Mem_limit of { limit : int; pc : int }
      (** the resident-page ceiling was hit ([limit] is the ceiling, in
          4 KiB pages) *)

val access_name : access -> string
(** ["load"], ["store"] or ["fetch"]. *)

val to_string : t -> string
(** Human-readable one-liner, as printed by the CLIs after ["fault: "]. *)

val kind : t -> string
(** Short stable tag (["segv"], ["bad-pc"], ...) for histograms and JSON. *)

val pc : t -> int
(** The PC of the faulting instruction. *)

val exit_code : t -> int
(** The CLI exit code for the fault, following the shell's 128+signal
    convention (SIGSEGV 139, SIGBUS 135, SIGILL 132, SIGSYS 159,
    SIGKILL 137). *)
