open Alpha

type code_seg = {
  cs_base : int;
  cs_insns : Insn.t array;
  cs_pair : bool array;
      (* cs_pair.(i): instruction i sits on an even word boundary, may
         dual-issue with instruction i+1 (21064 aligned-pair rule), and
         i+1 does not consume a result of i *)
}

(* A code segment compiled to closures by {!Exec}: one [unit -> unit]
   per instruction word, indexed exactly like [cs_insns]. *)
type fast_seg = { fs_base : int; fs_len : int; fs_fns : (unit -> unit) array }

type stats = {
  st_insns : int;
  st_cycles : int;
  st_pair_cycles : int;
  st_loads : int;
  st_stores : int;
  st_cond_branches : int;
  st_taken : int;
  st_calls : int;
  st_syscalls : int;
}

type engine = Ref | Fast

type t = {
  mem : Mem.t;
  regs : int64 array;
  fregs : int64 array;
  mutable pc : int;
  code : code_seg list;
  engine : engine;
  mutable fast : fast_seg list;  (** lazily built by {!Exec} *)
  vfs : Vfs.t;
  mutable brk : int;
  brk0 : int;  (** initial program break: [brk] may never shrink below *)
  mutable brk_max : int;  (** address-space ceiling for [brk] requests *)
  mutable strict_align : bool;
  mutable block_cont : bool;
      (** fast-engine scratch: whether the current turbo block entered
          with a pairable predecessor pending (selects which statically
          simulated pair accounting a mid-block fault must unwind) *)
  mutable insns : int;
  mutable fuel : int;  (** remaining budget, maintained by the fast engine *)
  mutable cycles : int;
  mutable pair_cycles : int;
  mutable prev_pc : int;
  mutable pending_pair : bool;
  mutable loads : int;
  mutable stores : int;
  mutable cond_branches : int;
  mutable taken : int;
  mutable calls : int;
  mutable syscalls : int;
  mutable trace : (int -> Insn.t -> unit) option;
  profile : Profile.t option;
      (** edge profile for profile-guided superblock formation; consulted
          only by the fast engine's translator, never by the reference
          interpreter *)
}

type outcome = Exit of int | Fault of Fault.t | Out_of_fuel

let sys_exit = 1
let sys_read = 3
let sys_write = 4
let sys_close = 6
let sys_brk = 17
let sys_open = 45

exception Halted of int
exception Faulted of Fault.t
exception Fuel

let getr t r = if r = 31 then 0L else Array.unsafe_get t.regs r
let setr t r v = if r <> 31 then Array.unsafe_set t.regs r v
let getf t r = if r = 31 then 0L else Array.unsafe_get t.fregs r
let setf t r v = if r <> 31 then Array.unsafe_set t.fregs r v
let getfv t r = Int64.float_of_bits (getf t r)
let setfv t r v = setf t r (Int64.bits_of_float v)

let sext32 (v : int64) = Int64.of_int32 (Int64.to_int32 v)

let umulh a b =
  (* high 64 bits of the unsigned 128-bit product *)
  let mask = 0xFFFFFFFFL in
  let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
  let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let carry =
    let mid =
      Int64.add
        (Int64.add (Int64.logand lh mask) (Int64.logand hl mask))
        (Int64.shift_right_logical ll 32)
    in
    Int64.shift_right_logical mid 32
  in
  Int64.add
    (Int64.add hh (Int64.shift_right_logical lh 32))
    (Int64.add (Int64.shift_right_logical hl 32) carry)

let cmpbge a b =
  let r = ref 0 in
  for i = 0 to 7 do
    let ab = Int64.to_int (Int64.logand (Int64.shift_right_logical a (8 * i)) 0xFFL) in
    let bb = Int64.to_int (Int64.logand (Int64.shift_right_logical b (8 * i)) 0xFFL) in
    if ab >= bb then r := !r lor (1 lsl i)
  done;
  Int64.of_int !r

let zap_bytes v mask_byte ~keep =
  let r = ref 0L in
  for i = 0 to 7 do
    let selected = mask_byte land (1 lsl i) <> 0 in
    if selected = keep then
      r :=
        Int64.logor !r
          (Int64.logand (Int64.shift_left 0xFFL (8 * i))
             v)
  done;
  !r

let byte_mask = function
  | 1 -> 0xFFL
  | 2 -> 0xFFFFL
  | 4 -> 0xFFFFFFFFL
  | _ -> -1L

let bool64 b = if b then 1L else 0L

let u_lt a b =
  (* unsigned 64-bit comparison *)
  Int64.unsigned_compare a b < 0

let eval_opr op a b =
  let open Insn in
  match op with
  | Addq -> Int64.add a b
  | Subq -> Int64.sub a b
  | Addl -> sext32 (Int64.add a b)
  | Subl -> sext32 (Int64.sub a b)
  | S4addq -> Int64.add (Int64.shift_left a 2) b
  | S8addq -> Int64.add (Int64.shift_left a 3) b
  | Mull -> sext32 (Int64.mul a b)
  | Mulq -> Int64.mul a b
  | Umulh -> umulh a b
  | Cmpeq -> bool64 (Int64.equal a b)
  | Cmplt -> bool64 (Int64.compare a b < 0)
  | Cmple -> bool64 (Int64.compare a b <= 0)
  | Cmpult -> bool64 (u_lt a b)
  | Cmpule -> bool64 (not (u_lt b a))
  | Cmpbge -> cmpbge a b
  | And_ -> Int64.logand a b
  | Bic -> Int64.logand a (Int64.lognot b)
  | Bis -> Int64.logor a b
  | Ornot -> Int64.logor a (Int64.lognot b)
  | Xor -> Int64.logxor a b
  | Eqv -> Int64.logxor a (Int64.lognot b)
  | Sll -> Int64.shift_left a (Int64.to_int b land 63)
  | Srl -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Sra -> Int64.shift_right a (Int64.to_int b land 63)
  | Zap -> zap_bytes a (Int64.to_int b land 0xFF) ~keep:false
  | Zapnot -> zap_bytes a (Int64.to_int b land 0xFF) ~keep:true
  | Extbl | Extwl | Extll | Extql ->
      let bytes = match op with Extbl -> 1 | Extwl -> 2 | Extll -> 4 | _ -> 8 in
      let sh = 8 * (Int64.to_int b land 7) in
      Int64.logand (Int64.shift_right_logical a sh) (byte_mask bytes)
  | Insbl | Inswl | Insll | Insql ->
      let bytes = match op with Insbl -> 1 | Inswl -> 2 | Insll -> 4 | _ -> 8 in
      let sh = 8 * (Int64.to_int b land 7) in
      Int64.shift_left (Int64.logand a (byte_mask bytes)) sh
  | Mskbl | Mskwl | Mskll | Mskql ->
      let bytes = match op with Mskbl -> 1 | Mskwl -> 2 | Mskll -> 4 | _ -> 8 in
      let sh = 8 * (Int64.to_int b land 7) in
      Int64.logand a (Int64.lognot (Int64.shift_left (byte_mask bytes) sh))
  | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc ->
      (* handled by the caller, which needs the old rc *)
      assert false

let cmov_cond op (a : int64) =
  let open Insn in
  match op with
  | Cmoveq -> Int64.equal a 0L
  | Cmovne -> not (Int64.equal a 0L)
  | Cmovlt -> Int64.compare a 0L < 0
  | Cmovge -> Int64.compare a 0L >= 0
  | Cmovle -> Int64.compare a 0L <= 0
  | Cmovgt -> Int64.compare a 0L > 0
  | Cmovlbs -> Int64.logand a 1L = 1L
  | Cmovlbc -> Int64.logand a 1L = 0L
  | _ -> assert false

let is_cmov op =
  let open Insn in
  match op with
  | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc -> true
  | _ -> false

let br_taken cond (a : int64) =
  let open Insn in
  match cond with
  | Beq -> Int64.equal a 0L
  | Bne -> not (Int64.equal a 0L)
  | Blt -> Int64.compare a 0L < 0
  | Ble -> Int64.compare a 0L <= 0
  | Bgt -> Int64.compare a 0L > 0
  | Bge -> Int64.compare a 0L >= 0
  | Blbc -> Int64.logand a 1L = 0L
  | Blbs -> Int64.logand a 1L = 1L

let fbr_taken cond (x : float) =
  let open Insn in
  match cond with
  | Fbeq -> x = 0.0
  | Fbne -> x <> 0.0
  | Fblt -> x < 0.0
  | Fble -> x <= 0.0
  | Fbgt -> x > 0.0
  | Fbge -> x >= 0.0

(* The access kind and natural alignment of a memory-format opcode, for
   fault reporting and the strict-align mode.  [Ldq_u]/[Stq_u] align
   their own address; [Lda]/[Ldah] never touch memory. *)
let mem_access_info (op : Insn.mem_op) : Fault.access * int =
  match op with
  | Insn.Ldbu -> (Fault.Load, 1)
  | Insn.Ldwu -> (Fault.Load, 2)
  | Insn.Ldl -> (Fault.Load, 4)
  | Insn.Ldq | Insn.Ldt -> (Fault.Load, 8)
  | Insn.Ldq_u -> (Fault.Load, 1)
  | Insn.Stb -> (Fault.Store, 1)
  | Insn.Stw -> (Fault.Store, 2)
  | Insn.Stl -> (Fault.Store, 4)
  | Insn.Stq | Insn.Stt -> (Fault.Store, 8)
  | Insn.Stq_u -> (Fault.Store, 1)
  | Insn.Lda | Insn.Ldah -> (Fault.Load, 1)

let syscall_body t =
  t.syscalls <- t.syscalls + 1;
  let num = Int64.to_int (getr t Reg.v0) in
  let a0 = getr t 16 and a1 = getr t 17 and a2 = getr t 18 in
  let ret v =
    setr t Reg.v0 (Int64.of_int v);
    setr t 19 (if v < 0 then 1L else 0L)
  in
  match num with
  | n when n = sys_exit -> raise (Halted (Int64.to_int a0 land 0xFF))
  | n when n = sys_write ->
      let fd = Int64.to_int a0 and addr = Int64.to_int a1 and len = Int64.to_int a2 in
      if len < 0 || len > 1 lsl 26 then ret (-1)
      else
        let s = Bytes.to_string (Mem.read_block t.mem addr len) in
        ret (Vfs.sys_write t.vfs fd s)
  | n when n = sys_read ->
      let fd = Int64.to_int a0 and addr = Int64.to_int a1 and len = Int64.to_int a2 in
      if len < 0 || len > 1 lsl 26 then ret (-1)
      else begin
        let buf = Bytes.create len in
        let got = Vfs.sys_read t.vfs fd buf in
        if got > 0 then Mem.write_bytes t.mem addr (Bytes.sub buf 0 got);
        ret got
      end
  | n when n = sys_open ->
      let path = Mem.read_cstring t.mem (Int64.to_int a0) in
      ret (Vfs.sys_open t.vfs path (Int64.to_int a1))
  | n when n = sys_close -> ret (Vfs.sys_close t.vfs (Int64.to_int a0))
  | n when n = sys_brk ->
      (* OSF/1-style validation: the break may move anywhere between its
         initial value and the address-space ceiling; anything else —
         negative, inside text, absurdly large — is refused with -1 and
         the break left untouched *)
      let want = Int64.to_int a0 in
      if want = 0 then ret t.brk
      else if want < t.brk0 || want > t.brk_max then ret (-1)
      else begin
        t.brk <- want;
        Mem.grow_heap t.mem want;
        ret want
      end
  | n -> raise (Faulted (Fault.Unknown_syscall { num = n; pc = t.pc }))

(* Both engines keep [t.pc] at the [call_pal] instruction while the
   system call runs, so a memory fault raised by a syscall touching the
   program's buffers converts identically under ref and fast. *)
let syscall t =
  try syscall_body t with
  | Mem.Prot { addr; access } ->
      raise (Faulted (Fault.Segv { addr; access; pc = t.pc }))
  | Mem.Limit { limit; _ } ->
      raise (Faulted (Fault.Mem_limit { limit; pc = t.pc }))
