(** Machine state and instruction semantics shared by the two execution
    engines: {!Sim}'s reference interpreter (the executable specification)
    and {!Exec}'s closure-compiled fast engine.  Everything observable —
    registers, memory, the VFS, the statistics counters and the trace
    hook — lives here so that both engines mutate the same state in the
    same order, which is what makes them differentially testable. *)

open Alpha

type code_seg = {
  cs_base : int;
  cs_insns : Insn.t array;
  cs_pair : bool array;
}

type fast_seg = { fs_base : int; fs_len : int; fs_fns : (unit -> unit) array }

type stats = {
  st_insns : int;
  st_cycles : int;
  st_pair_cycles : int;
  st_loads : int;
  st_stores : int;
  st_cond_branches : int;
  st_taken : int;
  st_calls : int;
  st_syscalls : int;
}

type engine = Ref | Fast

type t = {
  mem : Mem.t;
  regs : int64 array;
  fregs : int64 array;
  mutable pc : int;
  code : code_seg list;
  engine : engine;
  mutable fast : fast_seg list;
  vfs : Vfs.t;
  mutable brk : int;
  brk0 : int;
  mutable brk_max : int;
  mutable strict_align : bool;
  mutable block_cont : bool;
  mutable insns : int;
  mutable fuel : int;
  mutable cycles : int;
  mutable pair_cycles : int;
  mutable prev_pc : int;
  mutable pending_pair : bool;
  mutable loads : int;
  mutable stores : int;
  mutable cond_branches : int;
  mutable taken : int;
  mutable calls : int;
  mutable syscalls : int;
  mutable trace : (int -> Insn.t -> unit) option;
  profile : Profile.t option;
      (** edge profile for profile-guided superblock formation; consulted
          only by the fast engine's translator *)
}

type outcome = Exit of int | Fault of Fault.t | Out_of_fuel

val sys_exit : int
val sys_read : int
val sys_write : int
val sys_close : int
val sys_brk : int
val sys_open : int

exception Halted of int
exception Faulted of Fault.t

exception Fuel
(** Raised by the fast engine when the instruction budget runs out. *)

val getr : t -> int -> int64
val setr : t -> int -> int64 -> unit
val getf : t -> int -> int64
val setf : t -> int -> int64 -> unit
val getfv : t -> int -> float
val setfv : t -> int -> float -> unit

val sext32 : int64 -> int64
val umulh : int64 -> int64 -> int64
val cmpbge : int64 -> int64 -> int64
val zap_bytes : int64 -> int -> keep:bool -> int64
val byte_mask : int -> int64
val bool64 : bool -> int64
val u_lt : int64 -> int64 -> bool

val eval_opr : Insn.opr_op -> int64 -> int64 -> int64
(** Result of a non-conditional-move operate instruction. *)

val cmov_cond : Insn.opr_op -> int64 -> bool
val is_cmov : Insn.opr_op -> bool
val br_taken : Insn.br_cond -> int64 -> bool
val fbr_taken : Insn.fbr_cond -> float -> bool

val mem_access_info : Insn.mem_op -> Fault.access * int
(** The access kind and natural alignment of a memory-format opcode
    ([Ldq_u]/[Stq_u] report alignment 1: they align their own address). *)

val syscall : t -> unit
(** Execute the system call selected by [$v0]; raises [Halted] for [exit]
    and [Faulted] for an unknown call number or a memory fault touching
    the program's buffers (both quote [t.pc], which must point at the
    [call_pal] instruction in either engine). *)
