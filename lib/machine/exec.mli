(** The closure-compiled fast execution engine.

    Per code segment, every decoded instruction is pre-translated into a
    specialized OCaml closure: operand registers, sign-extended
    displacements, literals, the operate function and PC-relative branch
    targets are all resolved at translation time, and fall-through chains
    dispatch closure-to-closure without re-entering the fetch loop.

    The engine is observationally bit-identical to the {!Sim} reference
    interpreter: same outcomes and fault messages, same final registers,
    memory, PC and program break, the same full {!State.stats} record
    (including the dual-issue pair-cycle model), and the same trace-hook
    stream.  [test/test_engine_diff.ml] and [test/test_insn_gen.ml]
    enforce this differentially. *)

val insn_cycles : Alpha.Insn.t -> int
(** Weighted cycles one instruction contributes to {!State.stats}
    [st_cycles], exactly as both engines charge it (loads/stores 2,
    [lda]/[ldah] 1, multiplies 8, [divt] 30, other float ops 4 except
    sign-copies at 1, branches and jumps 1, the [callsys] PALcall 10,
    faulting instructions 0).  This is the machine's cycle model; the
    WCET layer uses it as the per-block cost function so that static
    bounds and measured [st_cycles] are in the same unit. *)

val translate : State.t -> State.fast_seg list
(** Compile every code segment of the machine to closure arrays.  Exposed
    for tests; {!run} translates (and caches on the state) on first use. *)

val run : ?max_insns:int -> State.t -> State.outcome
(** Execute until exit, fault or fuel exhaustion, exactly as
    [Sim.run] would on the reference engine. *)
