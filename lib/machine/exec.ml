(* The closure-compiled fast execution engine.

   Instead of fetching and dispatching on a decoded [Insn.t] every step
   (the {!Sim} reference interpreter), each code segment is translated
   once, at first run, into closures.  Translation happens at two
   granularities:

   {b Per instruction} ([compile]): one closure per instruction word,
   performing exactly one reference step — budget check, dual-issue pair
   accounting, trace hook, instruction count, cycle weights, then the
   architectural effect.  Operand registers become captured array
   indices, sign-extended displacements become captured constants, and
   static branch targets become captured dispatch indices.

   {b Per basic block} ([translate]'s block builder): straight-line runs
   ending at a control transfer (or at a branched-to leader) become one
   "turbo" closure.  Everything a block does to the statistics record is
   computed at translation time — instruction count, weighted cycles,
   load/store/branch/call counts, and both variants of the dual-issue
   pair accounting (entered with or without a pairable predecessor) —
   and applied in one batch, after a single up-front fuel check.  The
   architectural effects run as a straight line of specialized closures
   that skip the per-step bookkeeping entirely, with loads and stores
   going through a one-entry page cache straight into the backing
   [bytes].  Taken branches and fall-through chains dispatch
   closure-to-closure in tail position without re-entering the fetch
   loop; only indirect jumps to other segments, cross-segment branches
   and segment exits return to the driver loop, which re-locates the PC
   exactly like the reference fetch (including its fault on a PC outside
   code).

   The per-instruction closures remain the engine's slow path: a turbo
   block falls back to them whenever a trace hook is installed (the hook
   must see every instruction) or the remaining budget is smaller than
   the block (the per-step fuel check then stops at exactly the right
   instruction, inside the block, so the slow path can never run past a
   block boundary).

   Equivalence discipline: per-block batching reorders the bookkeeping
   against the architectural effects, but nothing can observe the
   difference — the trace hook forces the per-instruction path, faults
   and syscalls only occur as block terminators (after the batch, like
   the reference's fetch-then-step), and within a straight line the pair
   accounting depends only on the entry state, which the turbo closure
   tests dynamically exactly as the reference fetch does.  [t.pc] is
   written on every exit from a closure chain (fault, halt, fuel, jump,
   segment exit), so an observer never sees a stale PC. *)

open Alpha
open State

(* One reference-step preamble: fuel, pair accounting (as in [Sim.fetch]),
   trace, retired-instruction count.  Kept as a top-level function so every
   compiled closure shares one direct call. *)
let pre t pc pair insn =
  if t.fuel <= 0 then begin
    t.pc <- pc;
    raise Fuel
  end;
  t.fuel <- t.fuel - 1;
  if t.pending_pair && pc = t.prev_pc + 4 then t.pending_pair <- false
  else begin
    t.pair_cycles <- t.pair_cycles + 1;
    t.pending_pair <- pair
  end;
  t.prev_pc <- pc;
  (match t.trace with Some f -> f pc insn | None -> ());
  t.insns <- t.insns + 1

let opr_fn : Insn.opr_op -> int64 -> int64 -> int64 =
  let open Insn in
  function
  | Addq -> Int64.add
  | Subq -> Int64.sub
  | Addl -> fun a b -> sext32 (Int64.add a b)
  | Subl -> fun a b -> sext32 (Int64.sub a b)
  | S4addq -> fun a b -> Int64.add (Int64.shift_left a 2) b
  | S8addq -> fun a b -> Int64.add (Int64.shift_left a 3) b
  | Mull -> fun a b -> sext32 (Int64.mul a b)
  | Mulq -> Int64.mul
  | Umulh -> umulh
  | Cmpeq -> fun a b -> bool64 (Int64.equal a b)
  | Cmplt -> fun a b -> bool64 (Int64.compare a b < 0)
  | Cmple -> fun a b -> bool64 (Int64.compare a b <= 0)
  | Cmpult -> fun a b -> bool64 (u_lt a b)
  | Cmpule -> fun a b -> bool64 (not (u_lt b a))
  | Cmpbge -> cmpbge
  | And_ -> Int64.logand
  | Bic -> fun a b -> Int64.logand a (Int64.lognot b)
  | Bis -> Int64.logor
  | Ornot -> fun a b -> Int64.logor a (Int64.lognot b)
  | Xor -> Int64.logxor
  | Eqv -> fun a b -> Int64.logxor a (Int64.lognot b)
  | Sll -> fun a b -> Int64.shift_left a (Int64.to_int b land 63)
  | Srl -> fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Sra -> fun a b -> Int64.shift_right a (Int64.to_int b land 63)
  | (Zap | Zapnot | Extbl | Extwl | Extll | Extql | Insbl | Inswl | Insll
    | Insql | Mskbl | Mskwl | Mskll | Mskql) as op ->
      eval_opr op
  | (Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc)
    as op ->
      eval_opr op (* unreachable: the translator compiles cmovs separately *)

(* The architectural effect of an FP operate, shared between the
   per-instruction closures and the turbo blocks. *)
let fop_body fregs op fa fb fc : unit -> unit =
  let open Insn in
  let set_fc = fc <> 31 in
  let getv r = Int64.float_of_bits (Array.unsafe_get fregs r) in
  match op with
  | Addt | Subt | Mult | Divt ->
      let f : float -> float -> float =
        match op with
        | Addt -> ( +. )
        | Subt -> ( -. )
        | Mult -> ( *. )
        | _ -> ( /. )
      in
      fun () ->
        if set_fc then
          Array.unsafe_set fregs fc (Int64.bits_of_float (f (getv fa) (getv fb)))
  | Cmpteq | Cmptlt | Cmptle ->
      let f : float -> float -> bool =
        match op with
        | Cmpteq -> ( = )
        | Cmptlt -> ( < )
        | _ -> ( <= )
      in
      fun () ->
        if set_fc then
          Array.unsafe_set fregs fc
            (Int64.bits_of_float (if f (getv fa) (getv fb) then 2.0 else 0.0))
  | Cvtqt ->
      fun () ->
        if set_fc then
          Array.unsafe_set fregs fc
            (Int64.bits_of_float (Int64.to_float (Array.unsafe_get fregs fb)))
  | Cvttq ->
      fun () ->
        if set_fc then Array.unsafe_set fregs fc (Int64.of_float (getv fb))
  | Cpys ->
      fun () ->
        if set_fc then begin
          let sign = Int64.logand (Array.unsafe_get fregs fa) Int64.min_int in
          Array.unsafe_set fregs fc
            (Int64.logor sign
               (Int64.logand (Array.unsafe_get fregs fb) Int64.max_int))
        end
  | Cpysn ->
      fun () ->
        if set_fc then begin
          let sign =
            Int64.logand (Int64.lognot (Array.unsafe_get fregs fa)) Int64.min_int
          in
          Array.unsafe_set fregs fc
            (Int64.logor sign
               (Int64.logand (Array.unsafe_get fregs fb) Int64.max_int))
        end

(* Compile instruction [k] of segment [cs] into its per-step closure.
   [fns] is the segment's (still partially filled) per-instruction array:
   fall-through chains to the next per-step closure.  Static branch
   targets dispatch through [disp] — the block-dispatch array — so that a
   run that entered the slow path for a fuel check re-enters turbo blocks
   at the next control transfer, while a traced run is bounced straight
   back (the turbo entry re-checks the trace hook). *)
let compile (t : t) (cs : code_seg) (disp : (unit -> unit) array)
    (fns : (unit -> unit) array) k =
  let regs = t.regs and fregs = t.fregs and mem = t.mem in
  let n = Array.length cs.cs_insns in
  let insn = cs.cs_insns.(k) in
  let pair = Array.unsafe_get cs.cs_pair k in
  let pc = cs.cs_base + (4 * k) in
  let next = pc + 4 in
  (* fall-through continuation: chain to the next closure, or exit the
     segment with the PC set for the driver *)
  let cont : unit -> unit =
    if k + 1 < n then fun () -> (Array.unsafe_get fns (k + 1)) ()
    else fun () -> t.pc <- next
  in
  (* static branch target: chain within the segment, else exit to driver *)
  let goto target : unit -> unit =
    let off = target - cs.cs_base in
    if off >= 0 && off < 4 * n && off land 3 = 0 then begin
      let ti = off lsr 2 in
      fun () -> (Array.unsafe_get disp ti) ()
    end
    else fun () -> t.pc <- target
  in
  let open Insn in
  match insn with
  | Mem { op = Lda; ra; rb; disp } ->
      let d = Int64.of_int disp in
      if ra = 31 then fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 1;
        cont ()
      else
        fun () ->
          pre t pc pair insn;
          t.cycles <- t.cycles + 1;
          Array.unsafe_set regs ra (Int64.add (Array.unsafe_get regs rb) d);
          cont ()
  | Mem { op = Ldah; ra; rb; disp } ->
      let d = Int64.of_int (disp * 65536) in
      if ra = 31 then fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 1;
        cont ()
      else
        fun () ->
          pre t pc pair insn;
          t.cycles <- t.cycles + 1;
          Array.unsafe_set regs ra (Int64.add (Array.unsafe_get regs rb) d);
          cont ()
  | Mem { op; ra; rb; disp } ->
      let d = Int64.of_int disp in
      let set_ra = ra <> 31 in
      (* the translated body for each load/store: address arithmetic is the
         shared prefix, the access and stat are specialized per opcode *)
      let body : int -> unit =
        (* loads always perform the access, even into [$31]: the reference
           reads first and discards after, and under the protection map
           the read itself is observable (it can fault) *)
        match op with
        | Ldbu ->
            fun addr ->
              t.loads <- t.loads + 1;
              let v = Mem.read_u8 mem addr in
              if set_ra then Array.unsafe_set regs ra (Int64.of_int v)
        | Ldwu ->
            fun addr ->
              t.loads <- t.loads + 1;
              let v = Mem.read_u16 mem addr in
              if set_ra then Array.unsafe_set regs ra (Int64.of_int v)
        | Ldl ->
            fun addr ->
              t.loads <- t.loads + 1;
              let v = Mem.read_u32 mem addr in
              if set_ra then
                Array.unsafe_set regs ra (sext32 (Int64.of_int v))
        | Ldq ->
            fun addr ->
              t.loads <- t.loads + 1;
              let v = Mem.read_u64 mem addr in
              if set_ra then Array.unsafe_set regs ra v
        | Ldq_u ->
            fun addr ->
              t.loads <- t.loads + 1;
              let v = Mem.read_u64 mem (addr land lnot 7) in
              if set_ra then Array.unsafe_set regs ra v
        | Ldt ->
            fun addr ->
              t.loads <- t.loads + 1;
              let v = Mem.read_u64 mem addr in
              if set_ra then Array.unsafe_set fregs ra v
        | Stb ->
            fun addr ->
              t.stores <- t.stores + 1;
              Mem.write_u8 mem addr (Int64.to_int (Array.unsafe_get regs ra))
        | Stw ->
            fun addr ->
              t.stores <- t.stores + 1;
              Mem.write_u16 mem addr
                (Int64.to_int (Int64.logand (Array.unsafe_get regs ra) 0xFFFFL))
        | Stl ->
            fun addr ->
              t.stores <- t.stores + 1;
              Mem.write_u32 mem addr
                (Int64.to_int
                   (Int64.logand (Array.unsafe_get regs ra) 0xFFFFFFFFL))
        | Stq ->
            fun addr ->
              t.stores <- t.stores + 1;
              Mem.write_u64 mem addr (Array.unsafe_get regs ra)
        | Stq_u ->
            fun addr ->
              t.stores <- t.stores + 1;
              Mem.write_u64 mem (addr land lnot 7) (Array.unsafe_get regs ra)
        | Stt ->
            fun addr ->
              t.stores <- t.stores + 1;
              Mem.write_u64 mem addr (Array.unsafe_get fregs ra)
        | Lda | Ldah -> assert false
      in
      let access, align = mem_access_info op in
      let amask = align - 1 in
      fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 2;
        let addr = Int64.to_int (Int64.add (Array.unsafe_get regs rb) d) in
        if t.strict_align && amask <> 0 && addr land amask <> 0 then begin
          t.pc <- pc;
          raise (Faulted (Fault.Unaligned { addr; access; pc }))
        end;
        (try body addr with
        | Mem.Prot { addr; access } ->
            t.pc <- pc;
            raise (Faulted (Fault.Segv { addr; access; pc }))
        | Mem.Limit { limit; _ } ->
            t.pc <- pc;
            raise (Faulted (Fault.Mem_limit { limit; pc })));
        cont ()
  | Opr { op; ra; rb; rc } when is_cmov op ->
      let cond = cmov_cond op in
      let getb : unit -> int64 =
        match rb with
        | Reg r -> fun () -> Array.unsafe_get regs r
        | Imm v ->
            let c = Int64.of_int v in
            fun () -> c
      in
      let set_rc = rc <> 31 in
      fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 1;
        if cond (Array.unsafe_get regs ra) && set_rc then
          Array.unsafe_set regs rc (getb ());
        cont ()
  | Opr { op; ra; rb; rc } ->
      let cyc = match op with Mull | Mulq | Umulh -> 8 | _ -> 1 in
      let f = opr_fn op in
      if rc = 31 then fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + cyc;
        cont ()
      else (
        match rb with
        | Reg r ->
            fun () ->
              pre t pc pair insn;
              t.cycles <- t.cycles + cyc;
              Array.unsafe_set regs rc
                (f (Array.unsafe_get regs ra) (Array.unsafe_get regs r));
              cont ()
        | Imm v ->
            let b = Int64.of_int v in
            fun () ->
              pre t pc pair insn;
              t.cycles <- t.cycles + cyc;
              Array.unsafe_set regs rc (f (Array.unsafe_get regs ra) b);
              cont ())
  | Fop { op; fa; fb; fc } ->
      let cyc = match op with Divt -> 30 | Cpys | Cpysn -> 1 | _ -> 4 in
      let body = fop_body fregs op fa fb fc in
      fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + cyc;
        body ();
        cont ()
  | Br { link; ra; disp } ->
      let jump = goto (next + (4 * disp)) in
      let nxt64 = Int64.of_int next in
      let set_ra = ra <> 31 in
      if link then
        fun () ->
          pre t pc pair insn;
          t.cycles <- t.cycles + 1;
          t.calls <- t.calls + 1;
          if set_ra then Array.unsafe_set regs ra nxt64;
          jump ()
      else
        fun () ->
          pre t pc pair insn;
          t.cycles <- t.cycles + 1;
          if set_ra then Array.unsafe_set regs ra nxt64;
          jump ()
  | Cbr { cond; ra; disp } ->
      let taken = goto (next + (4 * disp)) in
      let test = br_taken cond in
      fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 1;
        t.cond_branches <- t.cond_branches + 1;
        if test (Array.unsafe_get regs ra) then begin
          t.taken <- t.taken + 1;
          taken ()
        end
        else cont ()
  | Fbr { cond; fa; disp } ->
      let taken = goto (next + (4 * disp)) in
      let test = fbr_taken cond in
      fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 1;
        t.cond_branches <- t.cond_branches + 1;
        if test (Int64.float_of_bits (Array.unsafe_get fregs fa)) then begin
          t.taken <- t.taken + 1;
          taken ()
        end
        else cont ()
  | Jump { kind; ra; rb; hint = _ } ->
      let is_call = kind = Jsr in
      let set_ra = ra <> 31 in
      let nxt64 = Int64.of_int next in
      fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 1;
        if is_call then t.calls <- t.calls + 1;
        let target = Int64.to_int (Array.unsafe_get regs rb) land lnot 3 in
        if set_ra then Array.unsafe_set regs ra nxt64;
        t.pc <- target
  | Call_pal 0x83 ->
      fun () ->
        pre t pc pair insn;
        t.cycles <- t.cycles + 10;
        (* the reference leaves [pc] at the call_pal while the syscall runs:
           [exit] halts here and an unknown call number quotes this PC *)
        t.pc <- pc;
        syscall t;
        cont ()
  | Call_pal p ->
      fun () ->
        pre t pc pair insn;
        t.pc <- pc;
        raise (Faulted (Fault.Bad_pal { num = p; pc }))
  | Raw w ->
      fun () ->
        pre t pc pair insn;
        t.pc <- pc;
        raise (Faulted (Fault.Illegal_insn { word = w; pc }))

(* ------------------------------------------------------------------ *)
(* Block translation.                                                  *)

let is_terminator (i : Insn.t) =
  match i with
  | Br _ | Cbr _ | Fbr _ | Jump _ | Call_pal _ | Raw _ -> true
  | Mem _ | Opr _ | Fop _ -> false

(* Weighted cycles of one instruction, as charged by the reference step
   (faulting instructions charge nothing: the reference raises before
   touching the cycle counter). *)
let insn_cycles (i : Insn.t) =
  let open Insn in
  match i with
  | Mem { op = Lda | Ldah; _ } -> 1
  | Mem _ -> 2
  | Opr { op = Mull | Mulq | Umulh; _ } -> 8
  | Opr _ -> 1
  | Fop { op = Divt; _ } -> 30
  | Fop { op = Cpys | Cpysn; _ } -> 1
  | Fop _ -> 4
  | Br _ | Cbr _ | Fbr _ | Jump _ -> 1
  | Call_pal 0x83 -> 10
  | Call_pal _ | Raw _ -> 0

let is_load (i : Insn.t) =
  match i with
  | Insn.Mem { op = Ldbu | Ldwu | Ldl | Ldq | Ldq_u | Ldt; _ } -> true
  | _ -> false

let is_store (i : Insn.t) =
  match i with
  | Insn.Mem { op = Stb | Stw | Stl | Stq | Stq_u | Stt; _ } -> true
  | _ -> false

(* How a non-final piece of a superblock chain hands control to the next
   piece: through a merged unconditional branch ([L_br], PR 2's call
   folding), or through a conditional branch speculated along the
   profile's predicted direction ([L_spec taken]).  A speculated crossing
   compiles to a run-time guard between the pieces: on the predicted
   outcome execution falls straight through into the next piece's
   effects; on a misprediction the guard unwinds every counter batched
   past the branch and dispatches to the actual successor. *)
type link = L_br | L_spec of bool

(* Inclusive per-chain-position prefixes of every batched counter, plus
   the pair-model prefixes under both entry modes.  Shared by the
   mid-chain fault unwinder ([wrap_mem]) and the speculation guards:
   both must roll the batch back to the reference's exact state at an
   interior chain position. *)
type fixup = {
  fx_cyc : int array;
  fx_loads : int array;
  fx_stores : int array;
  fx_calls : int array;
  fx_cbr : int array;
  fx_taken : int array;  (* counts *predicted* directions at guards *)
  fx_cont_counts : int array;
  fx_cont_pends : bool array;
  fx_brk_counts : int array;
  fx_brk_pends : bool array;
}

let translate t =
  let regs = t.regs and fregs = t.fregs and mem = t.mem in
  (* One-entry page caches shared by every translated memory access — one
     per access kind, since the protection map distinguishes them.  A
     page's backing [bytes] is created on first touch and never replaced,
     and its permissions never change after [Sim.load] installs the map,
     so a cache entry cannot go stale — not even across syscalls, which
     write through the same pages. *)
  let rcache_idx = ref (-1) in
  let rcache = ref Bytes.empty in
  let rpage a =
    let idx = a lsr Mem.page_bits in
    if idx = !rcache_idx then !rcache
    else begin
      let p = Mem.rpage mem a in
      rcache_idx := idx;
      rcache := p;
      p
    end
  in
  let wcache_idx = ref (-1) in
  let wcache = ref Bytes.empty in
  let wpage a =
    let idx = a lsr Mem.page_bits in
    if idx = !wcache_idx then !wcache
    else begin
      let p = Mem.wpage mem a in
      wcache_idx := idx;
      wcache := p;
      p
    end
  in
  let ps = Mem.page_size and pmask = Mem.page_mask in
  (* The architectural effect of a non-control instruction, stripped of
     all bookkeeping.  Effective addresses are computed in native [int]
     ([Int64.to_int] is truncation mod 2^63, so [to_int (add a d)] equals
     [to_int a + d] under OCaml's wrap-around — without the boxed sum). *)
  let effect (insn : Insn.t) : (unit -> unit) option =
    let open Insn in
    match insn with
    | Mem { op = Lda; ra; rb; disp } ->
        if ra = 31 then None
        else if rb = 31 then
          let d = Int64.of_int disp in
          Some (fun () -> Array.unsafe_set regs ra d)
        else
          let d = Int64.of_int disp in
          Some
            (fun () ->
              Array.unsafe_set regs ra (Int64.add (Array.unsafe_get regs rb) d))
    | Mem { op = Ldah; ra; rb; disp } ->
        if ra = 31 then None
        else if rb = 31 then
          let d = Int64.of_int (disp * 65536) in
          Some (fun () -> Array.unsafe_set regs ra d)
        else
          let d = Int64.of_int (disp * 65536) in
          Some
            (fun () ->
              Array.unsafe_set regs ra (Int64.add (Array.unsafe_get regs rb) d))
    | Mem { op; ra; rb; disp } ->
        let d = disp in
        Some
          (match op with
          | Ldbu ->
              if ra = 31 then fun () ->
                ignore
                  (Mem.read_u8 mem (Int64.to_int (Array.unsafe_get regs rb) + d))
              else fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                Array.unsafe_set regs ra
                  (Int64.of_int
                     (Char.code (Bytes.unsafe_get (rpage a) (a land pmask))))
          | Ldwu ->
              if ra = 31 then fun () ->
                ignore
                  (Mem.read_u16 mem (Int64.to_int (Array.unsafe_get regs rb) + d))
              else fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                Array.unsafe_set regs ra
                  (Int64.of_int
                     (if off <= ps - 2 then Bytes.get_uint16_le (rpage a) off
                      else Mem.read_u16 mem a))
          | Ldl ->
              if ra = 31 then fun () ->
                ignore
                  (Mem.read_u32 mem (Int64.to_int (Array.unsafe_get regs rb) + d))
              else fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                Array.unsafe_set regs ra
                  (if off <= ps - 4 then
                     Int64.of_int32 (Bytes.get_int32_le (rpage a) off)
                   else sext32 (Int64.of_int (Mem.read_u32 mem a)))
          | Ldq ->
              if ra = 31 then fun () ->
                ignore
                  (Mem.read_u64 mem (Int64.to_int (Array.unsafe_get regs rb) + d))
              else fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                Array.unsafe_set regs ra
                  (if off <= ps - 8 then Bytes.get_int64_le (rpage a) off
                   else Mem.read_u64 mem a)
          | Ldq_u ->
              (* the aligned address never straddles a page *)
              if ra = 31 then fun () ->
                ignore
                  (Mem.read_u64 mem
                     ((Int64.to_int (Array.unsafe_get regs rb) + d) land lnot 7))
              else fun () ->
                let a =
                  (Int64.to_int (Array.unsafe_get regs rb) + d) land lnot 7
                in
                Array.unsafe_set regs ra
                  (Bytes.get_int64_le (rpage a) (a land pmask))
          | Ldt ->
              if ra = 31 then fun () ->
                ignore
                  (Mem.read_u64 mem (Int64.to_int (Array.unsafe_get regs rb) + d))
              else fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                Array.unsafe_set fregs ra
                  (if off <= ps - 8 then Bytes.get_int64_le (rpage a) off
                   else Mem.read_u64 mem a)
          | Stb ->
              fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                Bytes.unsafe_set (wpage a) (a land pmask)
                  (Char.unsafe_chr
                     (Int64.to_int (Array.unsafe_get regs ra) land 0xFF))
          | Stw ->
              fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                let v = Int64.to_int (Array.unsafe_get regs ra) land 0xFFFF in
                if off <= ps - 2 then Bytes.set_uint16_le (wpage a) off v
                else Mem.write_u16 mem a v
          | Stl ->
              fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                if off <= ps - 4 then
                  Bytes.set_int32_le (wpage a) off
                    (Int64.to_int32 (Array.unsafe_get regs ra))
                else
                  Mem.write_u32 mem a
                    (Int64.to_int
                       (Int64.logand (Array.unsafe_get regs ra) 0xFFFFFFFFL))
          | Stq ->
              fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                if off <= ps - 8 then
                  Bytes.set_int64_le (wpage a) off (Array.unsafe_get regs ra)
                else Mem.write_u64 mem a (Array.unsafe_get regs ra)
          | Stq_u ->
              fun () ->
                let a =
                  (Int64.to_int (Array.unsafe_get regs rb) + d) land lnot 7
                in
                Bytes.set_int64_le (wpage a) (a land pmask)
                  (Array.unsafe_get regs ra)
          | Stt ->
              fun () ->
                let a = Int64.to_int (Array.unsafe_get regs rb) + d in
                let off = a land pmask in
                if off <= ps - 8 then
                  Bytes.set_int64_le (wpage a) off (Array.unsafe_get fregs ra)
                else Mem.write_u64 mem a (Array.unsafe_get fregs ra)
          | Lda | Ldah -> assert false)
    | Opr { op; ra; rb; rc } when is_cmov op ->
        if rc = 31 then None
        else
          let cond = cmov_cond op in
          Some
            (match rb with
            | Reg r ->
                fun () ->
                  if cond (Array.unsafe_get regs ra) then
                    Array.unsafe_set regs rc (Array.unsafe_get regs r)
            | Imm v ->
                let c = Int64.of_int v in
                fun () ->
                  if cond (Array.unsafe_get regs ra) then
                    Array.unsafe_set regs rc c)
    | Opr { op; ra; rb; rc } ->
        if rc = 31 then None
        else
          (* every case spells the array accesses out: the common ALU ops
             must compile to straight-line loads and one store, with no
             helper-closure calls in the hot path *)
          Some
            (match rb with
            | Reg r -> (
                match op with
                | Addq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.add (Array.unsafe_get regs ra)
                           (Array.unsafe_get regs r))
                | Subq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.sub (Array.unsafe_get regs ra)
                           (Array.unsafe_get regs r))
                | Addl ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (sext32
                           (Int64.add (Array.unsafe_get regs ra)
                              (Array.unsafe_get regs r)))
                | Subl ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (sext32
                           (Int64.sub (Array.unsafe_get regs ra)
                              (Array.unsafe_get regs r)))
                | S4addq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.add
                           (Int64.shift_left (Array.unsafe_get regs ra) 2)
                           (Array.unsafe_get regs r))
                | S8addq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.add
                           (Int64.shift_left (Array.unsafe_get regs ra) 3)
                           (Array.unsafe_get regs r))
                | Cmpeq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64
                           (Int64.equal (Array.unsafe_get regs ra)
                              (Array.unsafe_get regs r)))
                | Cmplt ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64
                           (Int64.compare (Array.unsafe_get regs ra)
                              (Array.unsafe_get regs r)
                           < 0))
                | Cmple ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64
                           (Int64.compare (Array.unsafe_get regs ra)
                              (Array.unsafe_get regs r)
                           <= 0))
                | Cmpult ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64
                           (u_lt (Array.unsafe_get regs ra)
                              (Array.unsafe_get regs r)))
                | Cmpule ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64
                           (not
                              (u_lt (Array.unsafe_get regs r)
                                 (Array.unsafe_get regs ra))))
                | And_ ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logand (Array.unsafe_get regs ra)
                           (Array.unsafe_get regs r))
                | Bic ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logand (Array.unsafe_get regs ra)
                           (Int64.lognot (Array.unsafe_get regs r)))
                | Bis ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logor (Array.unsafe_get regs ra)
                           (Array.unsafe_get regs r))
                | Ornot ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logor (Array.unsafe_get regs ra)
                           (Int64.lognot (Array.unsafe_get regs r)))
                | Xor ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logxor (Array.unsafe_get regs ra)
                           (Array.unsafe_get regs r))
                | Sll ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.shift_left (Array.unsafe_get regs ra)
                           (Int64.to_int (Array.unsafe_get regs r) land 63))
                | Srl ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.shift_right_logical (Array.unsafe_get regs ra)
                           (Int64.to_int (Array.unsafe_get regs r) land 63))
                | Sra ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.shift_right (Array.unsafe_get regs ra)
                           (Int64.to_int (Array.unsafe_get regs r) land 63))
                | _ ->
                    let f = opr_fn op in
                    fun () ->
                      Array.unsafe_set regs rc
                        (f (Array.unsafe_get regs ra) (Array.unsafe_get regs r)))
            | Imm v -> (
                let b = Int64.of_int v in
                match op with
                | Addq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.add (Array.unsafe_get regs ra) b)
                | Subq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.sub (Array.unsafe_get regs ra) b)
                | Addl ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (sext32 (Int64.add (Array.unsafe_get regs ra) b))
                | Subl ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (sext32 (Int64.sub (Array.unsafe_get regs ra) b))
                | S4addq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.add
                           (Int64.shift_left (Array.unsafe_get regs ra) 2)
                           b)
                | S8addq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.add
                           (Int64.shift_left (Array.unsafe_get regs ra) 3)
                           b)
                | Cmpeq ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64 (Int64.equal (Array.unsafe_get regs ra) b))
                | Cmplt ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64 (Int64.compare (Array.unsafe_get regs ra) b < 0))
                | Cmple ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64
                           (Int64.compare (Array.unsafe_get regs ra) b <= 0))
                | Cmpult ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64 (u_lt (Array.unsafe_get regs ra) b))
                | Cmpule ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (bool64 (not (u_lt b (Array.unsafe_get regs ra))))
                | And_ ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logand (Array.unsafe_get regs ra) b)
                | Bic ->
                    let nb = Int64.lognot b in
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logand (Array.unsafe_get regs ra) nb)
                | Bis ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logor (Array.unsafe_get regs ra) b)
                | Ornot ->
                    let nb = Int64.lognot b in
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logor (Array.unsafe_get regs ra) nb)
                | Xor ->
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.logxor (Array.unsafe_get regs ra) b)
                | Sll ->
                    let s = v land 63 in
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.shift_left (Array.unsafe_get regs ra) s)
                | Srl ->
                    let s = v land 63 in
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.shift_right_logical (Array.unsafe_get regs ra) s)
                | Sra ->
                    let s = v land 63 in
                    fun () ->
                      Array.unsafe_set regs rc
                        (Int64.shift_right (Array.unsafe_get regs ra) s)
                | _ ->
                    let f = opr_fn op in
                    fun () ->
                      Array.unsafe_set regs rc (f (Array.unsafe_get regs ra) b)))
    | Fop { op; fa; fb; fc } -> Some (fop_body fregs op fa fb fc)
    | Br _ | Cbr _ | Fbr _ | Jump _ | Call_pal _ | Raw _ ->
        assert false (* control transfers terminate blocks *)
  in
  let nop () = () in
  (* Translation is trace-aware: with a hook installed the dispatch array
     is simply the per-instruction closures (the hook must see every
     step), and [Sim.set_trace] invalidates any cached translation.
     Strict alignment forces the same per-instruction path: each access
     then checks its own address against the opcode's natural alignment,
     which block batching could not undo cheaply. *)
  let per_insn =
    (match t.trace with Some _ -> true | None -> false) || t.strict_align
  in
  (* Profile-guided speculation: with an edge profile attached, chains
     may also cross conditional branches along the predicted direction,
     and get a longer budget so a hot loop re-chains several unrolled
     iterations into one straight-line closure. *)
  let predict_at : int -> bool option =
    match t.profile with
    | None -> fun _ -> None
    | Some p -> fun pc -> Profile.predict p pc
  in
  let chain_cap = 64 in
  List.map
    (fun cs ->
      let insns = cs.cs_insns in
      let n = Array.length insns in
      let base = cs.cs_base in
      let len4 = 4 * n in
      let fns = Array.make n nop in
      let disp = Array.make n nop in
      for k = 0 to n - 1 do
        fns.(k) <- compile t cs disp fns k
      done;
      if per_insn then begin
        Array.blit fns 0 disp 0 n;
        { fs_base = base; fs_len = len4; fs_fns = disp }
      end
      else begin
      (* Block leaders: the segment entry, every static branch target, and
         the instruction after each control transfer. *)
      let leader = Array.make (max n 1) false in
      if n > 0 then leader.(0) <- true;
      for k = 0 to n - 1 do
        (match insns.(k) with
        | Insn.Br { disp = d; _ }
        | Insn.Cbr { disp = d; _ }
        | Insn.Fbr { disp = d; _ } ->
            let off = (4 * (k + 1)) + (4 * d) in
            if off >= 0 && off < len4 then leader.(off lsr 2) <- true
        | _ -> ());
        if is_terminator insns.(k) && k + 1 < n then leader.(k + 1) <- true
      done;
      (* dispatch to the block starting at index [j], or exit the segment *)
      let dispatch_to j : unit -> unit =
        if j < n then fun () -> (Array.unsafe_get disp j) ()
        else
          let end_pc = base + len4 in
          fun () -> t.pc <- end_pc
      in
      let goto_block target : unit -> unit =
        let off = target - base in
        if off >= 0 && off < len4 && off land 3 = 0 then dispatch_to (off lsr 2)
        else fun () -> t.pc <- target
      in
      for l = 0 to n - 1 do
        if leader.(l) then begin
          (* Superblock chaining: the block runs to its control transfer,
             and keeps going through unconditional in-segment branches —
             [br] redirects and [bsr] call entries alike — so a whole
             call-plus-callee-prologue executes as one statically
             accounted chain.  [pieces] collects the straight-line index
             ranges in execution order; a piece that is not the last ends
             in a merged [Br] whose only run-time effect is its optional
             return-address write. *)
          let pieces = ref [] in
          let links = ref [] in
          (* merged-terminator link kinds, one per non-final piece *)
          let total = ref 0 in
          let cur = ref l in
          let stop = ref (-1) in
          (* -1 while scanning; terminator index, or [n] for a segment
             fall-off *)
          let continue_ = ref true in
          while !continue_ do
            let lo = !cur in
            let e = ref lo in
            while (not (is_terminator insns.(!e))) && !e + 1 < n do
              incr e
            done;
            let e = !e in
            pieces := (lo, e) :: !pieces;
            total := !total + (e - lo + 1);
            if not (is_terminator insns.(e)) then begin
              stop := n;
              continue_ := false
            end
            else begin
              let stop_here () =
                stop := e;
                continue_ := false
              in
              let merge link idx =
                links := link :: !links;
                cur := idx
              in
              match insns.(e) with
              | Insn.Br { disp = d; _ } when !total < chain_cap ->
                  let off = (4 * (e + 1)) + (4 * d) in
                  if off >= 0 && off < len4 then merge L_br (off lsr 2)
                  else stop_here ()
              | (Insn.Cbr { disp = d; _ } | Insn.Fbr { disp = d; _ })
                when !total < chain_cap -> (
                  (* speculate across the conditional branch only along
                     an in-segment predicted direction, and never back
                     into a range this chain already covers — unrolling
                     hot loops into the chain duplicates their closures
                     (translation time, i-cache) for no batching gain,
                     since the loop back-edge re-enters as a leader *)
                  let fresh idx =
                    not
                      (List.exists (fun (lo, hi) -> idx >= lo && idx <= hi)
                         !pieces)
                  in
                  match predict_at (base + (4 * e)) with
                  | Some true ->
                      let off = (4 * (e + 1)) + (4 * d) in
                      if off >= 0 && off < len4 && fresh (off lsr 2) then
                        merge (L_spec true) (off lsr 2)
                      else stop_here ()
                  | Some false ->
                      if e + 1 < n && fresh (e + 1) then
                        merge (L_spec false) (e + 1)
                      else stop_here ()
                  | None -> stop_here ())
              | _ -> stop_here ()
            end
          done;
          let pieces = List.rev !pieces in
          let links_arr = Array.of_list (List.rev !links) in
          let stop = !stop in
          let has_term = stop < n in
          let _, e_last = List.nth pieces (List.length pieces - 1) in
          let n_ins = !total in
          let cyc = ref 0
          and nloads = ref 0
          and nstores = ref 0
          and ncalls_mid = ref 0
          and nbr_mid = ref 0
          and ntaken_mid = ref 0 in
          List.iteri
            (fun pi (lo, hi) ->
              for i = lo to hi do
                cyc := !cyc + insn_cycles insns.(i);
                if is_load insns.(i) then incr nloads;
                if is_store insns.(i) then incr nstores
              done;
              (* merged terminators: every piece but the last ends in a
                 branch folded into the chain — a call entry, or a
                 speculated conditional whose predicted direction is
                 batched (and corrected by the guard on a miss) *)
              if pi < List.length pieces - 1 then
                match (links_arr.(pi), insns.(hi)) with
                | L_br, Insn.Br { link = true; _ } -> incr ncalls_mid
                | L_spec pred, _ ->
                    incr nbr_mid;
                    if pred then incr ntaken_mid
                | _ -> ())
            pieces;
          let cyc = !cyc
          and nloads = !nloads
          and nstores = !nstores
          and ncalls_mid = !ncalls_mid
          and nbr_mid = !nbr_mid
          and ntaken_mid = !ntaken_mid in
          (* Dual-issue pair accounting over the chain, simulated at
             translation time from both possible entry states (a pairable
             predecessor pending, or not).  Across a merged branch the
             reference's PC-adjacency test is statically decided: the next
             piece is adjacent only if the branch targets the next word. *)
          let sim_pair p0 =
            let c = ref 0 and p = ref p0 in
            let prev = ref (-2) in
            List.iter
              (fun (lo, hi) ->
                for i = lo to hi do
                  let adjacent = !prev = -2 || i = !prev + 1 in
                  if !p && adjacent then p := false
                  else begin
                    incr c;
                    p := Array.unsafe_get cs.cs_pair i
                  end;
                  prev := i
                done)
              pieces;
            (!c, !p)
          in
          let pc_cont, ep_cont = sim_pair true in
          let pc_brk, ep_brk = sim_pair false in
          let base_pc = base + (4 * l) in
          let last_pc = base + (4 * e_last) in
          let npieces = List.length pieces in
          (* Flattened chain positions, for the mid-chain fault fixup:
             chain position [j] holds instruction index [chain.(j)]. *)
          let chain = Array.make n_ins 0 in
          (let pos = ref 0 in
           List.iter
             (fun (lo, hi) ->
               for i = lo to hi do
                 chain.(!pos) <- i;
                 incr pos
               done)
             pieces);
          (* A load or store can fault mid-chain, after the whole block's
             statistics were batched.  The wrapper below rolls the batch
             back to the reference's exact state — every counter charged
             through the faulting instruction inclusive (the reference
             charges before the access), nothing after it — so it needs
             the inclusive prefix of each batched counter per chain
             position, including the pair accounting under both entry
             modes, selected at run time by [t.block_cont] (which the
             dispatch prologue records). *)
          let fix =
            if nloads = 0 && nstores = 0 && nbr_mid = 0 then None
            else begin
              let pos_link = Array.make n_ins None in
              (let pos = ref 0 in
               List.iteri
                 (fun pi (lo, hi) ->
                   for i = lo to hi do
                     if pi < npieces - 1 && i = hi then
                       pos_link.(!pos) <- Some links_arr.(pi);
                     incr pos
                   done)
                 pieces);
              let p_cyc = Array.make n_ins 0
              and p_loads = Array.make n_ins 0
              and p_stores = Array.make n_ins 0
              and p_calls = Array.make n_ins 0
              and p_cbr = Array.make n_ins 0
              and p_taken = Array.make n_ins 0 in
              let cc = ref 0
              and cl = ref 0
              and cst = ref 0
              and ca = ref 0
              and cb = ref 0
              and ct = ref 0 in
              for j = 0 to n_ins - 1 do
                let i = chain.(j) in
                cc := !cc + insn_cycles insns.(i);
                if is_load insns.(i) then incr cl;
                if is_store insns.(i) then incr cst;
                (match pos_link.(j) with
                | Some L_br -> (
                    match insns.(i) with
                    | Insn.Br { link = true; _ } -> incr ca
                    | _ -> ())
                | Some (L_spec pred) ->
                    incr cb;
                    if pred then incr ct
                | None -> ());
                p_cyc.(j) <- !cc;
                p_loads.(j) <- !cl;
                p_stores.(j) <- !cst;
                p_calls.(j) <- !ca;
                p_cbr.(j) <- !cb;
                p_taken.(j) <- !ct
              done;
              let pair_prefix p0 =
                let counts = Array.make n_ins 0
                and pends = Array.make n_ins false in
                let c = ref 0 and p = ref p0 and prev = ref (-2) in
                for j = 0 to n_ins - 1 do
                  let i = chain.(j) in
                  let adjacent = !prev = -2 || i = !prev + 1 in
                  if !p && adjacent then p := false
                  else begin
                    incr c;
                    p := Array.unsafe_get cs.cs_pair i
                  end;
                  prev := i;
                  counts.(j) <- !c;
                  pends.(j) <- !p
                done;
                (counts, pends)
              in
              let cont_counts, cont_pends = pair_prefix true in
              let brk_counts, brk_pends = pair_prefix false in
              Some
                {
                  fx_cyc = p_cyc;
                  fx_loads = p_loads;
                  fx_stores = p_stores;
                  fx_calls = p_calls;
                  fx_cbr = p_cbr;
                  fx_taken = p_taken;
                  fx_cont_counts = cont_counts;
                  fx_cont_pends = cont_pends;
                  fx_brk_counts = brk_counts;
                  fx_brk_pends = brk_pends;
                }
            end
          in
          (* roll the batch at chain position [j] (instruction index [i])
             back to the reference's exact state: every counter charged
             through position [j] inclusive, nothing after it.  Shared by
             the fault unwinder and the speculation guards; the pair
             accounting is selected by [t.block_cont], which the dispatch
             prologue records. *)
          let unwind_after fx j =
            let d_ins = n_ins - (j + 1) in
            let d_cyc = cyc - fx.fx_cyc.(j) in
            let d_loads = nloads - fx.fx_loads.(j) in
            let d_stores = nstores - fx.fx_stores.(j) in
            let d_calls = ncalls_mid - fx.fx_calls.(j) in
            let d_cbr = nbr_mid - fx.fx_cbr.(j) in
            let d_taken = ntaken_mid - fx.fx_taken.(j) in
            let d_pair_cont = pc_cont - fx.fx_cont_counts.(j) in
            let d_pair_brk = pc_brk - fx.fx_brk_counts.(j) in
            let pend_cont = fx.fx_cont_pends.(j) in
            let pend_brk = fx.fx_brk_pends.(j) in
            fun () ->
              t.insns <- t.insns - d_ins;
              t.cycles <- t.cycles - d_cyc;
              t.loads <- t.loads - d_loads;
              t.stores <- t.stores - d_stores;
              t.calls <- t.calls - d_calls;
              t.cond_branches <- t.cond_branches - d_cbr;
              t.taken <- t.taken - d_taken;
              t.fuel <- t.fuel + d_ins;
              if t.block_cont then begin
                t.pair_cycles <- t.pair_cycles - d_pair_cont;
                t.pending_pair <- pend_cont
              end
              else begin
                t.pair_cycles <- t.pair_cycles - d_pair_brk;
                t.pending_pair <- pend_brk
              end
          in
          let wrap_mem j i (eff : unit -> unit) : unit -> unit =
            match fix with
            | None -> eff
            | Some fx ->
                let fx_pc = base + (4 * i) in
                let unwind = unwind_after fx j in
                let unbatch () =
                  unwind ();
                  t.prev_pc <- fx_pc;
                  t.pc <- fx_pc
                in
                fun () ->
                  try eff () with
                  | Mem.Prot { addr; access } ->
                      unbatch ();
                      raise (Faulted (Fault.Segv { addr; access; pc = fx_pc }))
                  | Mem.Limit { limit; _ } ->
                      unbatch ();
                      raise (Faulted (Fault.Mem_limit { limit; pc = fx_pc }))
          in
          (* the chain's architectural effects, in program order, grouped
             by piece so the speculation guards can sit between pieces *)
          let piece_effs = Array.make npieces [] in
          let guard_pos = Array.make npieces (-1) in
          (* chain position of each non-final piece's merged terminator *)
          let addp pi = function
            | Some f -> piece_effs.(pi) <- f :: piece_effs.(pi)
            | None -> ()
          in
          let posr = ref 0 in
          List.iteri
            (fun pi (lo, hi) ->
              let last_piece = pi = npieces - 1 in
              for i = lo to hi do
                let j = !posr in
                incr posr;
                if last_piece && has_term && i = hi then
                  () (* the terminator's effect lives in [term] *)
                else if (not last_piece) && i = hi then begin
                  guard_pos.(pi) <- j;
                  (* the merged terminator: an unconditional branch leaves
                     only its optional link write (its call count is
                     batched into the prologue); a speculated conditional
                     leaves nothing — its statistics are batched and its
                     condition test is the inter-piece guard *)
                  match (links_arr.(pi), insns.(i)) with
                  | L_br, Insn.Br { ra; _ } when ra <> 31 ->
                      let nxt64 = Int64.of_int (base + (4 * (i + 1))) in
                      addp pi (Some (fun () -> Array.unsafe_set regs ra nxt64))
                  | _ -> ()
                end
                else
                  match insns.(i) with
                  | Insn.Mem { op = Lda | Ldah; _ } -> addp pi (effect insns.(i))
                  | Insn.Mem _ ->
                      addp pi (Option.map (wrap_mem j i) (effect insns.(i)))
                  | _ -> addp pi (effect insns.(i))
              done)
            pieces;
          for pi = 0 to npieces - 1 do
            piece_effs.(pi) <- List.rev piece_effs.(pi)
          done;
          let term : unit -> unit =
            if not has_term then dispatch_to (e_last + 1)
            else begin
              let e = stop in
              let pc = base + (4 * e) in
              let next = pc + 4 in
              match insns.(e) with
              | Insn.Br { link; ra; disp = d } ->
                  let jump = goto_block (next + (4 * d)) in
                  let nxt64 = Int64.of_int next in
                  if link then
                    if ra = 31 then fun () ->
                      t.calls <- t.calls + 1;
                      jump ()
                    else fun () ->
                      t.calls <- t.calls + 1;
                      Array.unsafe_set regs ra nxt64;
                      jump ()
                  else if ra = 31 then jump
                  else fun () ->
                    Array.unsafe_set regs ra nxt64;
                    jump ()
              | Insn.Cbr { cond; ra; disp = d } -> (
                  let taken = goto_block (next + (4 * d)) in
                  let fall = dispatch_to (e + 1) in
                  (* the condition is inlined per constructor: the branch at
                     the end of every hot block must not pay an indirect
                     call just to test a register against zero *)
                  match cond with
                  | Insn.Beq ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if Int64.equal (Array.unsafe_get regs ra) 0L then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ()
                  | Insn.Bne ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if not (Int64.equal (Array.unsafe_get regs ra) 0L)
                        then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ()
                  | Insn.Blt ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if Int64.compare (Array.unsafe_get regs ra) 0L < 0
                        then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ()
                  | Insn.Ble ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if Int64.compare (Array.unsafe_get regs ra) 0L <= 0
                        then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ()
                  | Insn.Bgt ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if Int64.compare (Array.unsafe_get regs ra) 0L > 0
                        then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ()
                  | Insn.Bge ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if Int64.compare (Array.unsafe_get regs ra) 0L >= 0
                        then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ()
                  | Insn.Blbc ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if Int64.logand (Array.unsafe_get regs ra) 1L = 0L
                        then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ()
                  | Insn.Blbs ->
                      fun () ->
                        t.cond_branches <- t.cond_branches + 1;
                        if Int64.logand (Array.unsafe_get regs ra) 1L = 1L
                        then begin
                          t.taken <- t.taken + 1;
                          taken ()
                        end
                        else fall ())
              | Insn.Fbr { cond; fa; disp = d } ->
                  let taken = goto_block (next + (4 * d)) in
                  let fall = dispatch_to (e + 1) in
                  let test = fbr_taken cond in
                  fun () ->
                    t.cond_branches <- t.cond_branches + 1;
                    if test (Int64.float_of_bits (Array.unsafe_get fregs fa))
                    then begin
                      t.taken <- t.taken + 1;
                      taken ()
                    end
                    else fall ()
              | Insn.Jump { kind; ra; rb; _ } -> (
                  let nxt64 = Int64.of_int next in
                  (* specialized per (call?, links?) so the hot return path
                     — plain [ret] with ra = 31 — is branch-free *)
                  match (kind = Insn.Jsr, ra <> 31) with
                  | false, false ->
                      fun () ->
                        let target =
                          Int64.to_int (Array.unsafe_get regs rb) land lnot 3
                        in
                        let off = target - base in
                        if off >= 0 && off < len4 && off land 3 = 0 then
                          (Array.unsafe_get disp (off lsr 2)) ()
                        else t.pc <- target
                  | false, true ->
                      fun () ->
                        (* read [rb] before writing [ra]: they may coincide *)
                        let target =
                          Int64.to_int (Array.unsafe_get regs rb) land lnot 3
                        in
                        Array.unsafe_set regs ra nxt64;
                        let off = target - base in
                        if off >= 0 && off < len4 && off land 3 = 0 then
                          (Array.unsafe_get disp (off lsr 2)) ()
                        else t.pc <- target
                  | true, false ->
                      fun () ->
                        t.calls <- t.calls + 1;
                        let target =
                          Int64.to_int (Array.unsafe_get regs rb) land lnot 3
                        in
                        let off = target - base in
                        if off >= 0 && off < len4 && off land 3 = 0 then
                          (Array.unsafe_get disp (off lsr 2)) ()
                        else t.pc <- target
                  | true, true ->
                      fun () ->
                        t.calls <- t.calls + 1;
                        let target =
                          Int64.to_int (Array.unsafe_get regs rb) land lnot 3
                        in
                        Array.unsafe_set regs ra nxt64;
                        let off = target - base in
                        if off >= 0 && off < len4 && off land 3 = 0 then
                          (Array.unsafe_get disp (off lsr 2)) ()
                        else t.pc <- target)
              | Insn.Call_pal 0x83 ->
                  let fall = dispatch_to (e + 1) in
                  fun () ->
                    t.pc <- pc;
                    syscall t;
                    fall ()
              | Insn.Call_pal p ->
                  fun () ->
                    t.pc <- pc;
                    raise (Faulted (Fault.Bad_pal { num = p; pc }))
              | Insn.Raw w ->
                  fun () ->
                    t.pc <- pc;
                    raise (Faulted (Fault.Illegal_insn { word = w; pc }))
              | _ -> assert false
            end
          in
          (* straight-line run of effects in front of a continuation,
             fully unrolled in groups of eight.  Unrolling matters beyond
             code size: every effect position gets its own call site, so
             the host's indirect-branch predictor learns each target —
             a single looped call site flip-flops between targets and
             mispredicts on nearly every effect. *)
          let rec seq (effs : (unit -> unit) list) (tail : unit -> unit) :
              unit -> unit =
            match effs with
            | [] -> tail
            | [ e1 ] ->
                fun () ->
                  e1 ();
                  tail ()
            | [ e1; e2 ] ->
                fun () ->
                  e1 ();
                  e2 ();
                  tail ()
            | [ e1; e2; e3 ] ->
                fun () ->
                  e1 ();
                  e2 ();
                  e3 ();
                  tail ()
            | [ e1; e2; e3; e4 ] ->
                fun () ->
                  e1 ();
                  e2 ();
                  e3 ();
                  e4 ();
                  tail ()
            | [ e1; e2; e3; e4; e5 ] ->
                fun () ->
                  e1 ();
                  e2 ();
                  e3 ();
                  e4 ();
                  e5 ();
                  tail ()
            | [ e1; e2; e3; e4; e5; e6 ] ->
                fun () ->
                  e1 ();
                  e2 ();
                  e3 ();
                  e4 ();
                  e5 ();
                  e6 ();
                  tail ()
            | [ e1; e2; e3; e4; e5; e6; e7 ] ->
                fun () ->
                  e1 ();
                  e2 ();
                  e3 ();
                  e4 ();
                  e5 ();
                  e6 ();
                  e7 ();
                  tail ()
            | e1 :: e2 :: e3 :: e4 :: e5 :: e6 :: e7 :: e8 :: rest ->
                let tl = seq rest tail in
                fun () ->
                  e1 ();
                  e2 ();
                  e3 ();
                  e4 ();
                  e5 ();
                  e6 ();
                  e7 ();
                  e8 ();
                  tl ()
          in
          (* the guard between a speculated branch's piece and the next:
             on the predicted outcome it falls straight through into the
             continuation; on a misprediction it unwinds every counter
             batched past the branch — which the reference did execute
             and charge, with the actual direction — and dispatches to
             the actual successor *)
          let guard pred i j (next : unit -> unit) : unit -> unit =
            let fx =
              match fix with Some fx -> fx | None -> assert false
              (* [fix] is built whenever the chain has a guard *)
            in
            let bpc = base + (4 * i) in
            let unwind = unwind_after fx j in
            (* the batched [taken] at position [j] counted the predicted
               direction; the actual direction is its opposite *)
            let taken_corr = if pred then -1 else 1 in
            let actual : unit -> unit =
              match insns.(i) with
              | Insn.Cbr { disp = d; _ } | Insn.Fbr { disp = d; _ } ->
                  if pred then dispatch_to (i + 1)
                  else goto_block (bpc + 4 + (4 * d))
              | _ -> assert false
            in
            let miss () =
              unwind ();
              t.taken <- t.taken + taken_corr;
              t.prev_pc <- bpc;
              actual ()
            in
            match insns.(i) with
            | Insn.Cbr { cond; ra; _ } -> (
                (* inlined per constructor, like the block terminators:
                   the guard sits on the hottest paths of all *)
                match (cond, pred) with
                | Insn.Beq, true ->
                    fun () ->
                      if Int64.equal (Array.unsafe_get regs ra) 0L then next ()
                      else miss ()
                | Insn.Beq, false ->
                    fun () ->
                      if Int64.equal (Array.unsafe_get regs ra) 0L then miss ()
                      else next ()
                | Insn.Bne, true ->
                    fun () ->
                      if Int64.equal (Array.unsafe_get regs ra) 0L then miss ()
                      else next ()
                | Insn.Bne, false ->
                    fun () ->
                      if Int64.equal (Array.unsafe_get regs ra) 0L then next ()
                      else miss ()
                | Insn.Blt, true ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L < 0 then
                        next ()
                      else miss ()
                | Insn.Blt, false ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L < 0 then
                        miss ()
                      else next ()
                | Insn.Ble, true ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L <= 0 then
                        next ()
                      else miss ()
                | Insn.Ble, false ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L <= 0 then
                        miss ()
                      else next ()
                | Insn.Bgt, true ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L > 0 then
                        next ()
                      else miss ()
                | Insn.Bgt, false ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L > 0 then
                        miss ()
                      else next ()
                | Insn.Bge, true ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L >= 0 then
                        next ()
                      else miss ()
                | Insn.Bge, false ->
                    fun () ->
                      if Int64.compare (Array.unsafe_get regs ra) 0L >= 0 then
                        miss ()
                      else next ()
                | Insn.Blbc, true ->
                    fun () ->
                      if Int64.logand (Array.unsafe_get regs ra) 1L = 0L then
                        next ()
                      else miss ()
                | Insn.Blbc, false ->
                    fun () ->
                      if Int64.logand (Array.unsafe_get regs ra) 1L = 0L then
                        miss ()
                      else next ()
                | Insn.Blbs, true ->
                    fun () ->
                      if Int64.logand (Array.unsafe_get regs ra) 1L = 1L then
                        next ()
                      else miss ()
                | Insn.Blbs, false ->
                    fun () ->
                      if Int64.logand (Array.unsafe_get regs ra) 1L = 1L then
                        miss ()
                      else next ())
            | Insn.Fbr { cond; fa; _ } ->
                let test = fbr_taken cond in
                if pred then fun () ->
                  if test (Int64.float_of_bits (Array.unsafe_get fregs fa))
                  then next ()
                  else miss ()
                else fun () ->
                  if test (Int64.float_of_bits (Array.unsafe_get fregs fa))
                  then miss ()
                  else next ()
            | _ -> assert false
          in
          let body : unit -> unit =
            if nbr_mid = 0 then
              (* no speculation: one flat effect array, as before *)
              seq (List.concat (Array.to_list piece_effs)) term
            else begin
              (* speculative chain: glue the pieces right to left, with a
                 guard closure at every speculated crossing *)
              let pieces_arr = Array.of_list pieces in
              let tail = ref (seq piece_effs.(npieces - 1) term) in
              for pi = npieces - 2 downto 0 do
                let next = !tail in
                let glue =
                  match links_arr.(pi) with
                  | L_br -> next
                  | L_spec pred ->
                      let _, hi = pieces_arr.(pi) in
                      guard pred hi guard_pos.(pi) next
                in
                tail := seq piece_effs.(pi) glue
              done;
              !tail
            end
          in
          let slow = Array.unsafe_get fns l in
          disp.(l) <-
            (if
               nloads = 0 && nstores = 0 && ncalls_mid = 0 && nbr_mid = 0
             then fun () ->
               if t.fuel < n_ins then slow ()
                 (* per-step fuel checks stop inside the block *)
               else begin
                 t.fuel <- t.fuel - n_ins;
                 if t.pending_pair && base_pc = t.prev_pc + 4 then begin
                   t.block_cont <- true;
                   t.pair_cycles <- t.pair_cycles + pc_cont;
                   t.pending_pair <- ep_cont
                 end
                 else begin
                   t.block_cont <- false;
                   t.pair_cycles <- t.pair_cycles + pc_brk;
                   t.pending_pair <- ep_brk
                 end;
                 t.prev_pc <- last_pc;
                 t.insns <- t.insns + n_ins;
                 t.cycles <- t.cycles + cyc;
                 body ()
               end
             else fun () ->
               if t.fuel < n_ins then slow ()
               else begin
                 t.fuel <- t.fuel - n_ins;
                 if t.pending_pair && base_pc = t.prev_pc + 4 then begin
                   t.block_cont <- true;
                   t.pair_cycles <- t.pair_cycles + pc_cont;
                   t.pending_pair <- ep_cont
                 end
                 else begin
                   t.block_cont <- false;
                   t.pair_cycles <- t.pair_cycles + pc_brk;
                   t.pending_pair <- ep_brk
                 end;
                 t.prev_pc <- last_pc;
                 t.insns <- t.insns + n_ins;
                 t.cycles <- t.cycles + cyc;
                 t.loads <- t.loads + nloads;
                 t.stores <- t.stores + nstores;
                 t.calls <- t.calls + ncalls_mid;
                 t.cond_branches <- t.cond_branches + nbr_mid;
                 t.taken <- t.taken + ntaken_mid;
                 body ()
               end)
        end
      done;
      (* a computed jump can land mid-block; per-step closures cover those
         entries and rejoin the turbo blocks at the next control transfer *)
      for k = 0 to n - 1 do
        if not leader.(k) then disp.(k) <- fns.(k)
      done;
      { fs_base = base; fs_len = len4; fs_fns = disp }
      end)
    t.code

let run ?(max_insns = 2_000_000_000) t =
  (match t.fast with [] -> t.fast <- translate t | _ :: _ -> ());
  let segs = t.fast in
  let rec find pc = function
    | [] -> raise (Faulted (Fault.Bad_pc { pc }))
    | fs :: rest ->
        let off = pc - fs.fs_base in
        if off >= 0 && off < fs.fs_len && off land 3 = 0 then
          Array.unsafe_get fs.fs_fns (off lsr 2)
        else find pc rest
  in
  t.fuel <- max_insns;
  let rec loop () =
    if t.fuel <= 0 then raise Fuel;
    (find t.pc segs) ();
    loop ()
  in
  try loop () with
  | Halted code -> Exit code
  | Faulted f -> Fault f
  | Fuel -> Out_of_fuel
  (* belt and braces: every translated access converts these itself *)
  | Mem.Prot { addr; access } -> Fault (Fault.Segv { addr; access; pc = t.pc })
  | Mem.Limit { limit; _ } -> Fault (Fault.Mem_limit { limit; pc = t.pc })
