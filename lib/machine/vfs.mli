(** The simulated process's I/O world: a file-descriptor table over an
    in-memory file system.

    Input files are registered before the run; files opened for writing
    accumulate into buffers the harness can inspect afterwards.  FDs 0, 1
    and 2 are stdin (a preset string), stdout and stderr. *)

type t

(** Deterministic I/O fault plan, for fault-injection runs: the listed
    call ordinals (0-based, counted per syscall kind across the whole
    run) misbehave the way a real kernel may — [open] refused, [write]
    failing with an error, [read] returning fewer bytes than asked. *)
type fault_plan = {
  fp_fail_open : int list;  (** open calls that return -1 *)
  fp_fail_write : int list;  (** write calls that return -1 (EIO) *)
  fp_short_read : int list;  (** read calls truncated to half the count *)
}

val no_faults : fault_plan

val create : ?stdin:string -> unit -> t

val set_fault_plan : t -> fault_plan -> unit

val io_counts : t -> int * int * int
(** [(opens, reads, writes)] seen so far — the ordinal space a
    [fault_plan] indexes into. *)

val add_input : t -> string -> string -> unit
(** [add_input vfs path contents] registers a readable file. *)

val sys_open : t -> string -> int -> int
(** [sys_open vfs path flags]: flags [0] read, [1] write-truncate,
    [2] append.  Returns an fd, or [-1]. *)

val sys_close : t -> int -> int
val sys_read : t -> int -> bytes -> int
(** Read up to [Bytes.length buf]; returns count read, 0 at EOF, -1 on a
    bad fd. *)

val sys_write : t -> int -> string -> int

val stdout : t -> string
val stderr : t -> string

val output_files : t -> (string * string) list
(** Every file written during the run, with its final contents. *)
