open Alpha
open State

type t = State.t

type code_seg = State.code_seg = {
  cs_base : int;
  cs_insns : Insn.t array;
  cs_pair : bool array;
}

type stats = State.stats = {
  st_insns : int;
  st_cycles : int;
  st_pair_cycles : int;
  st_loads : int;
  st_stores : int;
  st_cond_branches : int;
  st_taken : int;
  st_calls : int;
  st_syscalls : int;
}

type engine = State.engine = Ref | Fast

type outcome = State.outcome = Exit of int | Fault of Fault.t | Out_of_fuel

let sys_exit = State.sys_exit
let sys_read = State.sys_read
let sys_write = State.sys_write
let sys_close = State.sys_close
let sys_brk = State.sys_brk
let sys_open = State.sys_open

let engine_name = function Ref -> "ref" | Fast -> "fast"

let engine_of_string = function
  | "ref" | "reference" -> Some Ref
  | "fast" | "closure" -> Some Fast
  | _ -> None

let default_max_pages = 65536 (* 256 MiB of resident simulated memory *)
let default_stack_bytes = 8 * 1024 * 1024
let default_brk_span = 1 lsl 30 (* brk may roam 1 GiB above the break *)

(* The one fuel default, shared by every run path (Sim.run, the fast
   engine via it, Workloads.run_exe, the serving daemon's per-request
   ceiling): 1G instructions.  Having a single threaded constant means
   a program can never report Fuel_exhausted through one path while
   completing through another.  Sized so the heaviest legitimate run we
   ship — a trace-instrumented workload at ~17x its base instruction
   count, 564M today — clears it with headroom. *)
let default_max_insns = 1_000_000_000
let insn_cycles = Exec.insn_cycles

(* An executable prepared for execution: decoded code segments, dual-issue
   pair tables and the protection region list, none of which depend on a
   particular run.  Preparing once and starting many machines from the
   same image is what makes a serving process cheap per run: thousands of
   runs share one parse/decode. *)
type image = {
  im_exe : Objfile.Exe.t;
  im_code : code_seg list;
  im_seg_regions : (int * int * bool) list;  (* excludes the stack region *)
  im_stack_top : int;
  im_entry : int;
  im_break : int;
  im_profile : Profile.t option;
      (* edge profile applied to every machine started from this image *)
}

let prepare ?profile exe =
  let code =
    List.filter_map
      (fun seg ->
        if seg.Objfile.Exe.seg_vaddr < exe.Objfile.Exe.x_data_start then begin
          let b = seg.Objfile.Exe.seg_bytes in
          let n = Bytes.length b / 4 in
          let insns = Array.init n (fun i -> Code.decode_at b (i * 4)) in
          let base_word = seg.Objfile.Exe.seg_vaddr / 4 in
          let pair =
            Array.init n (fun i ->
                (base_word + i) land 1 = 0
                && i + 1 < n
                && Cost.can_pair (Cost.classify insns.(i)) (Cost.classify insns.(i + 1))
                && Regset.is_empty
                     (Regset.inter (Insn.defs insns.(i)) (Insn.uses insns.(i + 1))))
          in
          Some { cs_base = seg.Objfile.Exe.seg_vaddr; cs_insns = insns; cs_pair = pair }
        end
        else None)
      exe.Objfile.Exe.x_segs
  in
  let seg_regions =
    List.map
      (fun seg ->
        let lo = seg.Objfile.Exe.seg_vaddr in
        ( lo,
          lo + Bytes.length seg.Objfile.Exe.seg_bytes + seg.Objfile.Exe.seg_bss,
          seg.Objfile.Exe.seg_write ))
      exe.Objfile.Exe.x_segs
  in
  {
    im_exe = exe;
    im_code = code;
    im_seg_regions = seg_regions;
    im_stack_top = Objfile.Exe.stack_top exe;
    im_entry = exe.Objfile.Exe.x_entry;
    im_break = exe.Objfile.Exe.x_break;
    im_profile = profile;
  }

let image_exe im = im.im_exe

let start ?(engine = Fast) ?(stdin = "") ?(inputs = []) ?(protect = true)
    ?(max_pages = default_max_pages) ?(stack_bytes = default_stack_bytes)
    ?brk_max ?(strict_align = false) im =
  let exe = im.im_exe in
  let mem = Mem.create () in
  List.iter
    (fun seg ->
      Mem.poke_bytes mem seg.Objfile.Exe.seg_vaddr seg.Objfile.Exe.seg_bytes)
    exe.Objfile.Exe.x_segs;
  let code = im.im_code in
  let vfs = Vfs.create ~stdin () in
  List.iter (fun (p, c) -> Vfs.add_input vfs p c) inputs;
  if protect then begin
    let regions =
      (im.im_stack_top - stack_bytes, im.im_stack_top, true)
      :: im.im_seg_regions
    in
    Mem.protect mem ~regions ~heap_lo:im.im_break ~max_pages
  end;
  let x_break = im.im_break in
  let t =
    {
      mem;
      regs = Array.make 32 0L;
      fregs = Array.make 32 0L;
      pc = im.im_entry;
      code;
      engine;
      fast = [];
      vfs;
      brk = x_break;
      brk0 = x_break;
      brk_max = Option.value brk_max ~default:(x_break + default_brk_span);
      strict_align;
      block_cont = false;
      insns = 0;
      fuel = 0;
      cycles = 0;
      pair_cycles = 0;
      prev_pc = -8;
      pending_pair = false;
      loads = 0;
      stores = 0;
      cond_branches = 0;
      taken = 0;
      calls = 0;
      syscalls = 0;
      trace = None;
      profile = im.im_profile;
    }
  in
  t.regs.(Reg.sp) <- Int64.of_int (im.im_stack_top - 64);
  t

let load ?engine ?stdin ?inputs ?protect ?max_pages ?stack_bytes ?brk_max
    ?strict_align ?profile exe =
  start ?engine ?stdin ?inputs ?protect ?max_pages ?stack_bytes ?brk_max
    ?strict_align (prepare ?profile exe)

let fetch t pc =
  let rec go = function
    | [] -> raise (Faulted (Fault.Bad_pc { pc }))
    | cs :: rest ->
        let off = pc - cs.cs_base in
        if off >= 0 && off < 4 * Array.length cs.cs_insns && off land 3 = 0 then begin
          let idx = off lsr 2 in
          (* dual-issue accounting: an instruction rides free when its
             predecessor issued as the first of a compatible aligned pair
             and control actually fell through to it *)
          if t.pending_pair && pc = t.prev_pc + 4 then t.pending_pair <- false
          else begin
            t.pair_cycles <- t.pair_cycles + 1;
            t.pending_pair <- Array.unsafe_get cs.cs_pair idx
          end;
          t.prev_pc <- pc;
          Array.unsafe_get cs.cs_insns idx
        end
        else go rest
  in
  go t.code

let step t =
  let i = fetch t t.pc in
  (match t.trace with Some f -> f t.pc i | None -> ());
  t.insns <- t.insns + 1;
  let next = t.pc + 4 in
  let open Insn in
  (match i with
  | Mem { op = Lda; ra; rb; disp } ->
      t.cycles <- t.cycles + 1;
      setr t ra (Int64.add (getr t rb) (Int64.of_int disp));
      t.pc <- next
  | Mem { op = Ldah; ra; rb; disp } ->
      t.cycles <- t.cycles + 1;
      setr t ra (Int64.add (getr t rb) (Int64.of_int (disp * 65536)));
      t.pc <- next
  | Mem { op; ra; rb; disp } ->
      t.cycles <- t.cycles + 2;
      let addr = Int64.to_int (Int64.add (getr t rb) (Int64.of_int disp)) in
      if t.strict_align then begin
        let access, align = mem_access_info op in
        if align > 1 && addr land (align - 1) <> 0 then
          raise (Faulted (Fault.Unaligned { addr; access; pc = t.pc }))
      end;
      (match op with
      | Ldbu ->
          t.loads <- t.loads + 1;
          setr t ra (Int64.of_int (Mem.read_u8 t.mem addr))
      | Ldwu ->
          t.loads <- t.loads + 1;
          setr t ra (Int64.of_int (Mem.read_u16 t.mem addr))
      | Ldl ->
          t.loads <- t.loads + 1;
          setr t ra (sext32 (Int64.of_int (Mem.read_u32 t.mem addr)))
      | Ldq ->
          t.loads <- t.loads + 1;
          setr t ra (Mem.read_u64 t.mem addr)
      | Ldq_u ->
          t.loads <- t.loads + 1;
          setr t ra (Mem.read_u64 t.mem (addr land lnot 7))
      | Ldt ->
          t.loads <- t.loads + 1;
          setf t ra (Mem.read_u64 t.mem addr)
      | Stb ->
          t.stores <- t.stores + 1;
          Mem.write_u8 t.mem addr (Int64.to_int (getr t ra))
      | Stw ->
          t.stores <- t.stores + 1;
          Mem.write_u16 t.mem addr (Int64.to_int (Int64.logand (getr t ra) 0xFFFFL))
      | Stl ->
          t.stores <- t.stores + 1;
          Mem.write_u32 t.mem addr (Int64.to_int (Int64.logand (getr t ra) 0xFFFFFFFFL))
      | Stq ->
          t.stores <- t.stores + 1;
          Mem.write_u64 t.mem addr (getr t ra)
      | Stq_u ->
          t.stores <- t.stores + 1;
          Mem.write_u64 t.mem (addr land lnot 7) (getr t ra)
      | Stt ->
          t.stores <- t.stores + 1;
          Mem.write_u64 t.mem addr (getf t ra)
      | Lda | Ldah -> assert false);
      t.pc <- next
  | Opr { op; ra; rb; rc } ->
      t.cycles <- t.cycles + (match op with Mull | Mulq | Umulh -> 8 | _ -> 1);
      let b = match rb with Reg r -> getr t r | Imm n -> Int64.of_int n in
      if is_cmov op then begin
        if cmov_cond op (getr t ra) then setr t rc b
      end
      else setr t rc (eval_opr op (getr t ra) b);
      t.pc <- next
  | Fop { op; fa; fb; fc } ->
      t.cycles <- t.cycles + (match op with Divt -> 30 | Cpys | Cpysn -> 1 | _ -> 4);
      (match op with
      | Addt -> setfv t fc (getfv t fa +. getfv t fb)
      | Subt -> setfv t fc (getfv t fa -. getfv t fb)
      | Mult -> setfv t fc (getfv t fa *. getfv t fb)
      | Divt -> setfv t fc (getfv t fa /. getfv t fb)
      | Cmpteq -> setfv t fc (if getfv t fa = getfv t fb then 2.0 else 0.0)
      | Cmptlt -> setfv t fc (if getfv t fa < getfv t fb then 2.0 else 0.0)
      | Cmptle -> setfv t fc (if getfv t fa <= getfv t fb then 2.0 else 0.0)
      | Cvtqt -> setfv t fc (Int64.to_float (getf t fb))
      | Cvttq -> setf t fc (Int64.of_float (getfv t fb))
      | Cpys ->
          let sign = Int64.logand (getf t fa) Int64.min_int in
          setf t fc (Int64.logor sign (Int64.logand (getf t fb) Int64.max_int))
      | Cpysn ->
          let sign =
            Int64.logand (Int64.lognot (getf t fa)) Int64.min_int
          in
          setf t fc (Int64.logor sign (Int64.logand (getf t fb) Int64.max_int)));
      t.pc <- next
  | Br { link; ra; disp } ->
      t.cycles <- t.cycles + 1;
      if link then t.calls <- t.calls + 1;
      setr t ra (Int64.of_int next);
      t.pc <- next + (4 * disp)
  | Cbr { cond; ra; disp } ->
      t.cycles <- t.cycles + 1;
      t.cond_branches <- t.cond_branches + 1;
      if br_taken cond (getr t ra) then begin
        t.taken <- t.taken + 1;
        t.pc <- next + (4 * disp)
      end
      else t.pc <- next
  | Fbr { cond; fa; disp } ->
      t.cycles <- t.cycles + 1;
      t.cond_branches <- t.cond_branches + 1;
      if fbr_taken cond (getfv t fa) then begin
        t.taken <- t.taken + 1;
        t.pc <- next + (4 * disp)
      end
      else t.pc <- next
  | Jump { kind; ra; rb; hint = _ } ->
      t.cycles <- t.cycles + 1;
      if kind = Jsr then t.calls <- t.calls + 1;
      let target = Int64.to_int (getr t rb) land lnot 3 in
      setr t ra (Int64.of_int next);
      t.pc <- target
  | Call_pal 0x83 ->
      t.cycles <- t.cycles + 10;
      syscall t;
      t.pc <- next
  | Call_pal n -> raise (Faulted (Fault.Bad_pal { num = n; pc = t.pc }))
  | Raw w -> raise (Faulted (Fault.Illegal_insn { word = w; pc = t.pc })))

let run_ref ~max_insns t =
  let rec go budget =
    if budget <= 0 then Out_of_fuel
    else
      match step t with
      | () -> go (budget - 1)
      | exception Halted code -> Exit code
      | exception Faulted f -> Fault f
      | exception Mem.Prot { addr; access } ->
          Fault (Fault.Segv { addr; access; pc = t.pc })
      | exception Mem.Limit { limit; _ } ->
          Fault (Fault.Mem_limit { limit; pc = t.pc })
  in
  go max_insns

let run ?(max_insns = default_max_insns) t =
  match t.engine with
  | Ref -> run_ref ~max_insns t
  | Fast -> Exec.run ~max_insns t

let stats t =
  {
    st_insns = t.insns;
    st_cycles = t.cycles;
    st_pair_cycles = t.pair_cycles;
    st_loads = t.loads;
    st_stores = t.stores;
    st_cond_branches = t.cond_branches;
    st_taken = t.taken;
    st_calls = t.calls;
    st_syscalls = t.syscalls;
  }

let engine t = t.engine
let vfs t = t.vfs
let stdout t = Vfs.stdout t.vfs
let stderr t = Vfs.stderr t.vfs
let output_files t = Vfs.output_files t.vfs
let reg t r = getr t r
let freg_bits t r = getf t r
let pc t = t.pc
let mem t = t.mem
let brk t = t.brk
let read_u64 t a = Mem.peek_u64 t.mem a
(* Installing a hook invalidates any cached translation: the fast engine
   compiles trace-aware code (per-instruction when a hook is present). *)
let set_trace t f =
  t.trace <- Some f;
  t.fast <- []
let set_reg t r v = setr t r v
let set_freg_bits t r v = setf t r v
let set_pc t pc = t.pc <- pc
