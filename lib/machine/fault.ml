(* The structured machine-fault taxonomy.

   Every way a simulated program can die abnormally is one of these
   constructors, carrying the faulting address/number and the PC of the
   instruction that raised it.  Both execution engines — the reference
   interpreter and the closure-compiled fast engine — raise the exact
   same fault value at the same PC with the same statistics, which the
   differential tests enforce. *)

type access = Load | Store | Fetch

type t =
  | Segv of { addr : int; access : access; pc : int }
  | Unaligned of { addr : int; access : access; pc : int }
  | Illegal_insn of { word : int; pc : int }
  | Bad_pc of { pc : int }
  | Bad_pal of { num : int; pc : int }
  | Unknown_syscall of { num : int; pc : int }
  | Mem_limit of { limit : int; pc : int }

let access_name = function
  | Load -> "load"
  | Store -> "store"
  | Fetch -> "fetch"

let to_string = function
  | Segv { addr; access; pc } ->
      Printf.sprintf "segmentation violation: %s at %#x (PC %#x)"
        (access_name access) addr pc
  | Unaligned { addr; access; pc } ->
      Printf.sprintf "unaligned %s at %#x (PC %#x)" (access_name access) addr
        pc
  | Illegal_insn { word; pc } ->
      Printf.sprintf "illegal instruction %#x at %#x" word pc
  | Bad_pc { pc } -> Printf.sprintf "PC %#x outside code" pc
  | Bad_pal { num; pc } ->
      Printf.sprintf "unhandled PAL call %#x at %#x" num pc
  | Unknown_syscall { num; pc } ->
      Printf.sprintf "unknown system call %d at PC %#x" num pc
  | Mem_limit { limit; pc } ->
      Printf.sprintf "resident-memory limit (%d pages) exceeded at PC %#x"
        limit pc

let kind = function
  | Segv _ -> "segv"
  | Unaligned _ -> "unaligned"
  | Illegal_insn _ -> "illegal-insn"
  | Bad_pc _ -> "bad-pc"
  | Bad_pal _ -> "bad-pal"
  | Unknown_syscall _ -> "unknown-syscall"
  | Mem_limit _ -> "mem-limit"

let pc = function
  | Segv { pc; _ }
  | Unaligned { pc; _ }
  | Illegal_insn { pc; _ }
  | Bad_pc { pc }
  | Bad_pal { pc; _ }
  | Unknown_syscall { pc; _ }
  | Mem_limit { pc; _ } ->
      pc

(* The CLI exit-code contract, modelled on the shell's 128+signal
   convention: a fault kind maps to the signal the OSF/1 kernel would
   have delivered for it. *)
let exit_code = function
  | Segv _ | Bad_pc _ -> 139 (* SIGSEGV *)
  | Unaligned _ -> 135 (* SIGBUS *)
  | Illegal_insn _ | Bad_pal _ -> 132 (* SIGILL *)
  | Unknown_syscall _ -> 159 (* SIGSYS *)
  | Mem_limit _ -> 137 (* SIGKILL, as the OOM killer would *)
