type stream =
  | Reader of { data : string; mutable pos : int }
  | Writer of Buffer.t

type fault_plan = {
  fp_fail_open : int list;  (** open calls (0-based) that return -1 *)
  fp_fail_write : int list;  (** write calls that return -1 (EIO) *)
  fp_short_read : int list;  (** read calls truncated to half the count *)
}

let no_faults = { fp_fail_open = []; fp_fail_write = []; fp_short_read = [] }

type t = {
  inputs : (string, string) Hashtbl.t;
  outputs : (string, Buffer.t) Hashtbl.t;
  mutable fds : stream option array;
  out : Buffer.t;
  err : Buffer.t;
  mutable plan : fault_plan;
  mutable n_opens : int;
  mutable n_reads : int;
  mutable n_writes : int;
}

let create ?(stdin = "") () =
  let t =
    {
      inputs = Hashtbl.create 8;
      outputs = Hashtbl.create 8;
      fds = Array.make 16 None;
      out = Buffer.create 256;
      err = Buffer.create 64;
      plan = no_faults;
      n_opens = 0;
      n_reads = 0;
      n_writes = 0;
    }
  in
  t.fds.(0) <- Some (Reader { data = stdin; pos = 0 });
  t.fds.(1) <- Some (Writer t.out);
  t.fds.(2) <- Some (Writer t.err);
  t

let add_input t path contents = Hashtbl.replace t.inputs path contents

let alloc_fd t stream =
  let n = Array.length t.fds in
  let rec find i =
    if i >= n then begin
      let fds = Array.make (2 * n) None in
      Array.blit t.fds 0 fds 0 n;
      t.fds <- fds;
      find i
    end
    else
      match t.fds.(i) with
      | None ->
          t.fds.(i) <- Some stream;
          i
      | Some _ -> find (i + 1)
  in
  find 3

let set_fault_plan t plan = t.plan <- plan
let io_counts t = (t.n_opens, t.n_reads, t.n_writes)

let sys_open t path flags =
  let seq = t.n_opens in
  t.n_opens <- t.n_opens + 1;
  if List.mem seq t.plan.fp_fail_open then -1
  else
  match flags with
  | 0 -> (
      (* prefer files written earlier in this run, then registered inputs *)
      match Hashtbl.find_opt t.outputs path with
      | Some b -> alloc_fd t (Reader { data = Buffer.contents b; pos = 0 })
      | None -> (
          match Hashtbl.find_opt t.inputs path with
          | Some data -> alloc_fd t (Reader { data; pos = 0 })
          | None -> -1))
  | 1 ->
      let b = Buffer.create 256 in
      Hashtbl.replace t.outputs path b;
      alloc_fd t (Writer b)
  | 2 ->
      let b =
        match Hashtbl.find_opt t.outputs path with
        | Some b -> b
        | None ->
            let b = Buffer.create 256 in
            Hashtbl.replace t.outputs path b;
            b
      in
      alloc_fd t (Writer b)
  | _ -> -1

let sys_close t fd =
  if fd >= 3 && fd < Array.length t.fds && t.fds.(fd) <> None then begin
    t.fds.(fd) <- None;
    0
  end
  else if fd >= 0 && fd <= 2 then 0
  else -1

let sys_read t fd buf =
  let seq = t.n_reads in
  t.n_reads <- t.n_reads + 1;
  if fd < 0 || fd >= Array.length t.fds then -1
  else
    match t.fds.(fd) with
    | Some (Reader r) ->
        let want = Bytes.length buf in
        let want =
          (* a short read delivers half the requested count (at least one
             byte for non-trivial requests): programs must cope, the
             standard never promised a full buffer *)
          if List.mem seq t.plan.fp_short_read then max (min want 1) (want / 2)
          else want
        in
        let n = min want (String.length r.data - r.pos) in
        Bytes.blit_string r.data r.pos buf 0 n;
        r.pos <- r.pos + n;
        n
    | Some (Writer _) | None -> -1

let sys_write t fd s =
  let seq = t.n_writes in
  t.n_writes <- t.n_writes + 1;
  if List.mem seq t.plan.fp_fail_write then -1
  else if fd < 0 || fd >= Array.length t.fds then -1
  else
    match t.fds.(fd) with
    | Some (Writer b) ->
        Buffer.add_string b s;
        String.length s
    | Some (Reader _) | None -> -1

let stdout t = Buffer.contents t.out
let stderr t = Buffer.contents t.err

let output_files t =
  Hashtbl.fold (fun name b acc -> (name, Buffer.contents b) :: acc) t.outputs []
  |> List.sort compare
