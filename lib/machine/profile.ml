(* An edge profile for the fast engine: for each conditional branch
   (keyed by its PC) the direction a previous run took predominantly.
   The table is produced from the trace tool's flow facts
   ([Wcet.Facts.predictions]) or synthesized by tests; the fast engine
   consults it at translation time to extend turbo superblocks across
   conditional branches along the hot edge, guarding each speculated
   crossing at run time.

   A profile can only ever change how execution is *batched*, never what
   it computes: a wrong or stale table costs guard misses, not
   correctness. *)

type t = (int, bool) Hashtbl.t

let of_predictions preds =
  let h = Hashtbl.create (max 16 (List.length preds)) in
  List.iter (fun (pc, taken) -> Hashtbl.replace h pc taken) preds;
  h

let predict t pc = Hashtbl.find_opt t pc
let cardinal t = Hashtbl.length t
let invert t : (int * bool) list = Hashtbl.fold (fun pc b acc -> (pc, not b) :: acc) t []
