(** The Alpha machine simulator.

    Executes a linked {!Objfile.Exe.t} with the OSF/1-style process model
    of the paper's Figure 4: the stack starts at the base of the text
    segment and grows down; the heap starts at the program break (end of
    [.bss]) and grows up via the [brk] system call.

    System calls are made with [call_pal 0x83] (callsys): the call number
    in [$v0], arguments in [$a0]..[$a2], result in [$v0] and an error flag
    in [$a3].  Numbers: exit 1, read 3, write 4, close 6, brk 17, open 45.

    Code is predecoded per executable segment (any segment based below the
    data segment), so the inner loop never re-decodes instructions. *)

type t

type outcome =
  | Exit of int
  | Fault of string  (** bad PC, undecodable instruction, bad PAL call... *)
  | Out_of_fuel  (** hit the [max_insns] budget *)

type stats = {
  st_insns : int;  (** instructions retired *)
  st_cycles : int;  (** weighted cycles (see {!Alpha.Cost.latency}) *)
  st_pair_cycles : int;
      (** issue cycles under an optimistic 21064 dual-issue model: an
          aligned, class-compatible, dependence-free instruction pair
          executed in sequence costs one cycle; comparable to the paper's
          wall-clock measurements in a way raw instruction counts are
          not *)
  st_loads : int;
  st_stores : int;
  st_cond_branches : int;
  st_taken : int;
  st_calls : int;
  st_syscalls : int;
}

val sys_exit : int
val sys_read : int
val sys_write : int
val sys_close : int
val sys_brk : int
val sys_open : int

val load : ?stdin:string -> ?inputs:(string * string) list -> Objfile.Exe.t -> t
(** Build a machine with the image mapped, [$sp] set, and registered input
    files available to [open]. *)

val run : ?max_insns:int -> t -> outcome
(** Execute until exit, fault or fuel exhaustion ([max_insns] defaults to
    2 {e billion}). *)

val stats : t -> stats
val vfs : t -> Vfs.t
val stdout : t -> string
val stderr : t -> string
val output_files : t -> (string * string) list

val brk : t -> int
(** Current program break (final heap break once the run is over). *)

val reg : t -> Alpha.Reg.t -> int64
val freg_bits : t -> Alpha.Reg.f -> int64
val pc : t -> int
val mem : t -> Mem.t

val read_u64 : t -> int -> int64
(** Read simulated memory (for tests and tools). *)

val set_trace : t -> (int -> Alpha.Insn.t -> unit) -> unit
(** Install a per-instruction hook (used by tests to observe execution). *)
