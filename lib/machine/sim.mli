(** The Alpha machine simulator.

    Executes a linked {!Objfile.Exe.t} with the OSF/1-style process model
    of the paper's Figure 4: the stack starts at the base of the text
    segment and grows down; the heap starts at the program break (end of
    [.bss]) and grows up via the [brk] system call.

    System calls are made with [call_pal 0x83] (callsys): the call number
    in [$v0], arguments in [$a0]..[$a2], result in [$v0] and an error flag
    in [$a3].  Numbers: exit 1, read 3, write 4, close 6, brk 17, open 45.

    Code is predecoded per executable segment (any segment based below the
    data segment), so the inner loop never re-decodes instructions.

    Two engines execute the predecoded stream.  [Ref] is the reference
    interpreter in this module: a decode-then-dispatch loop that serves as
    the executable specification.  [Fast] (the default) is {!Exec}'s
    closure-compiled engine: each instruction is pre-translated into a
    specialized closure with operands, displacements and branch targets
    resolved at translation time.  The two are observationally
    bit-identical — outcome, registers, memory, statistics, trace stream —
    which [test/test_engine_diff.ml] enforces differentially. *)

type t

type outcome = State.outcome =
  | Exit of int
  | Fault of Fault.t
      (** a structured machine fault: segmentation violation, illegal
          instruction, bad PC, bad PAL call, unknown syscall, alignment
          (under strict alignment), or the resident-memory ceiling *)
  | Out_of_fuel  (** hit the [max_insns] budget *)

type engine = State.engine =
  | Ref  (** the reference interpreter: slow, simple, the specification *)
  | Fast  (** the closure-compiled engine, several times faster *)

type stats = State.stats = {
  st_insns : int;  (** instructions retired *)
  st_cycles : int;  (** weighted cycles (see {!Alpha.Cost.latency}) *)
  st_pair_cycles : int;
      (** issue cycles under an optimistic 21064 dual-issue model: an
          aligned, class-compatible, dependence-free instruction pair
          executed in sequence costs one cycle; comparable to the paper's
          wall-clock measurements in a way raw instruction counts are
          not *)
  st_loads : int;
  st_stores : int;
  st_cond_branches : int;
  st_taken : int;
  st_calls : int;
  st_syscalls : int;
}

val sys_exit : int
val sys_read : int
val sys_write : int
val sys_close : int
val sys_brk : int
val sys_open : int

val engine_name : engine -> string
(** ["ref"] or ["fast"]. *)

val engine_of_string : string -> engine option
(** Parse an engine name as accepted by the CLIs' [--engine] flag:
    ["ref"]/["reference"] or ["fast"]/["closure"]. *)

type image
(** An executable prepared for execution: decoded code segments,
    dual-issue pair tables and the protection region list — everything
    about a run that does {e not} depend on the run.  Prepare once, then
    {!start} any number of machines (concurrently, from any domain): a
    serving process runs one loaded image thousands of times without
    re-parsing it.  The image is immutable; per-run state (memory, VFS,
    registers, statistics, fast-engine translations) lives in {!t}. *)

val prepare : ?profile:Profile.t -> Objfile.Exe.t -> image
(** Decode the executable's code segments and derive its protection
    regions.  This is the expensive, shareable half of the old [load].

    [profile] attaches an edge profile (see {!Profile}) to the image:
    every machine started from it lets the fast engine speculate turbo
    superblocks across conditional branches along the predicted
    direction, guarded at run time.  Observable behaviour — outcome,
    registers, memory, the full statistics record, trace stream — is
    unchanged even under a wrong or stale profile; only speed varies.
    The reference engine ignores profiles entirely. *)

val image_exe : image -> Objfile.Exe.t
(** The executable the image was prepared from. *)

val start :
  ?engine:engine ->
  ?stdin:string ->
  ?inputs:(string * string) list ->
  ?protect:bool ->
  ?max_pages:int ->
  ?stack_bytes:int ->
  ?brk_max:int ->
  ?strict_align:bool ->
  image ->
  t
(** Build a fresh machine over a prepared image: new memory with the
    segments mapped, new VFS, [$sp] set, statistics zeroed.  Two machines
    started from one image share only immutable data. *)

val load :
  ?engine:engine ->
  ?stdin:string ->
  ?inputs:(string * string) list ->
  ?protect:bool ->
  ?max_pages:int ->
  ?stack_bytes:int ->
  ?brk_max:int ->
  ?strict_align:bool ->
  ?profile:Profile.t ->
  Objfile.Exe.t ->
  t
(** [prepare] + [start]: build a machine with the image mapped, [$sp] set, and registered input
    files available to [open].  [engine] selects the execution engine used
    by {!run} (default [Fast]); [profile] is forwarded to {!prepare}.

    By default ([protect = true]) a protection map derived from the
    executable is installed: each segment is readable (writable only when
    its [seg_write] flag says so), the stack gets [stack_bytes] (default
    8 MiB) of writable memory below the text base with everything beneath
    it a guard gap, and the heap covers the program break's high-water
    mark as [brk] moves it.  Accesses outside the map raise structured
    {!Fault.Segv} faults instead of silently materialising pages, and at
    most [max_pages] (default 65536, i.e. 256 MiB) resident pages may
    exist before {!Fault.Mem_limit} fires.  [brk_max] bounds how far the
    break may be pushed (default 1 GiB past the initial break); a [brk]
    request outside [initial break, brk_max] is refused with -1.
    [strict_align] (default off) makes naturally-misaligned accesses
    raise {!Fault.Unaligned}.  [protect:false] restores the permissive
    allocate-on-touch memory, which raw instruction-level tests use. *)

val insn_cycles : Alpha.Insn.t -> int
(** The machine's per-instruction cycle model — what one retired
    instruction adds to [st_cycles] on either engine (see
    {!Exec.insn_cycles}).  The WCET layer sums this over basic blocks so
    static bounds and measured cycles share a unit. *)

val default_max_insns : int
(** The one fuel default — one billion instructions — used by {!run},
    {!Workloads.run_exe} and the serving daemon's per-request ceiling
    alike, so the same program can never exhaust its fuel through one
    path while completing through another. *)

val run : ?max_insns:int -> t -> outcome
(** Execute until exit, fault or fuel exhaustion ([max_insns] defaults to
    {!default_max_insns}). *)

val stats : t -> stats
val engine : t -> engine
val vfs : t -> Vfs.t
val stdout : t -> string
val stderr : t -> string
val output_files : t -> (string * string) list

val brk : t -> int
(** Current program break (final heap break once the run is over). *)

val reg : t -> Alpha.Reg.t -> int64
val freg_bits : t -> Alpha.Reg.f -> int64
val pc : t -> int
val mem : t -> Mem.t

val read_u64 : t -> int -> int64
(** Read simulated memory (for tests and tools). *)

val set_trace : t -> (int -> Alpha.Insn.t -> unit) -> unit
(** Install a per-instruction hook (used by tests to observe execution).
    Both engines deliver the identical [(pc, insn)] stream. *)

val set_reg : t -> Alpha.Reg.t -> int64 -> unit
(** Overwrite an integer register before a run (for tests; writes to [$31]
    are ignored, it stays hardwired to zero). *)

val set_freg_bits : t -> Alpha.Reg.f -> int64 -> unit
(** Overwrite a floating register's bit pattern (writes to [$f31] ignored). *)

val set_pc : t -> int -> unit
(** Redirect execution (for tests). *)
