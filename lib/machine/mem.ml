let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

(* A protection map: a handful of [lo, hi) regions derived from the
   loaded executable, plus the heap tracked as a high-water mark of the
   program break (the partitioned heap mode makes the break bounce
   between the application's and the analysis module's values, so only
   the maximum ever granted is a sound bound).  The map is consulted
   only when an access misses the page tables, i.e. at most once per
   page per access kind. *)
type region = { r_lo : int; r_hi : int; r_writable : bool }

type prot = {
  mutable p_regions : region list;
  mutable p_heap_lo : int;
  mutable p_heap_hi : int;  (* high-water mark of the program break *)
  mutable p_limit : int;  (* resident-page ceiling *)
}

(* Two views of the same sparse page store: [rpages] holds every
   readable page, [wpages] every writable one, both mapping a page index
   to the one backing [bytes].  A permission check is therefore free on
   the hot path — it is the table lookup itself — and a page's [bytes]
   is never replaced once created, so cached references (the fast
   engine's one-entry page caches) cannot go stale. *)
type t = {
  rpages : (int, bytes) Hashtbl.t;
  wpages : (int, bytes) Hashtbl.t;
  mutable resident : int;
  mutable prot : prot option;
}

exception Prot of { addr : int; access : Fault.access }
exception Limit of { pages : int; limit : int }

let create () =
  {
    rpages = Hashtbl.create 256;
    wpages = Hashtbl.create 256;
    resident = 0;
    prot = None;
  }

(* Permissions are page-granular: a page gets the union of the
   permissions of every region overlapping it, so the bytes between a
   region's end and its last page's end share that region's access. *)
let page_perm pr idx =
  let lo = idx lsl page_bits in
  let hi = lo + page_size in
  let readable = ref false and writable = ref false in
  List.iter
    (fun r ->
      if r.r_lo < hi && lo < r.r_hi then begin
        readable := true;
        if r.r_writable then writable := true
      end)
    pr.p_regions;
  if pr.p_heap_lo < hi && lo < pr.p_heap_hi then begin
    readable := true;
    writable := true
  end;
  (!readable, !writable)

let found_page m idx =
  match Hashtbl.find_opt m.rpages idx with
  | Some _ as p -> p
  | None -> Hashtbl.find_opt m.wpages idx

let page_slow m a (access : Fault.access) =
  let idx = a lsr page_bits in
  let readable, writable =
    match m.prot with None -> (true, true) | Some pr -> page_perm pr idx
  in
  let ok =
    match access with Load | Fetch -> readable | Store -> writable
  in
  if not ok then raise (Prot { addr = a; access });
  let p =
    match found_page m idx with
    | Some p -> p
    | None ->
        (match m.prot with
        | Some pr when m.resident >= pr.p_limit ->
            raise (Limit { pages = m.resident; limit = pr.p_limit })
        | _ -> ());
        m.resident <- m.resident + 1;
        Bytes.make page_size '\000'
  in
  if readable then Hashtbl.replace m.rpages idx p;
  if writable then Hashtbl.replace m.wpages idx p;
  p

let rpage m a =
  let idx = a lsr page_bits in
  match Hashtbl.find_opt m.rpages idx with
  | Some p -> p
  | None -> page_slow m a Fault.Load

let wpage m a =
  let idx = a lsr page_bits in
  match Hashtbl.find_opt m.wpages idx with
  | Some p -> p
  | None -> page_slow m a Fault.Store

let protect m ~regions ~heap_lo ~max_pages =
  let pr =
    {
      p_regions =
        List.map (fun (lo, hi, w) -> { r_lo = lo; r_hi = hi; r_writable = w })
          regions;
      p_heap_lo = heap_lo;
      p_heap_hi = heap_lo;
      p_limit = max_pages;
    }
  in
  m.prot <- Some pr;
  (* pages mapped by the loader predate the map: re-derive both views *)
  let drop tbl keep =
    let dead =
      Hashtbl.fold
        (fun idx _ acc -> if keep (page_perm pr idx) then acc else idx :: acc)
        tbl []
    in
    List.iter (Hashtbl.remove tbl) dead
  in
  drop m.rpages (fun (r, _) -> r);
  drop m.wpages (fun (_, w) -> w)

let grow_heap m addr =
  match m.prot with
  | None -> ()
  | Some pr -> if addr > pr.p_heap_hi then pr.p_heap_hi <- addr

let read_u8 m a = Char.code (Bytes.unsafe_get (rpage m a) (a land page_mask))

let write_u8 m a v =
  Bytes.unsafe_set (wpage m a) (a land page_mask)
    (Char.unsafe_chr (v land 0xFF))

(* Fast paths when the access stays within one page. *)
let read_u16 m a =
  let off = a land page_mask in
  if off + 2 <= page_size then
    let p = rpage m a in
    Char.code (Bytes.unsafe_get p off) lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
  else read_u8 m a lor (read_u8 m (a + 1) lsl 8)

let read_u32 m a =
  let off = a land page_mask in
  if off + 4 <= page_size then begin
    let p = rpage m a in
    Char.code (Bytes.unsafe_get p off)
    lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)
  end
  else read_u16 m a lor (read_u16 m (a + 2) lsl 16)

let read_u64 m a =
  let off = a land page_mask in
  if off + 8 <= page_size then
    let p = rpage m a in
    Int64.logor
      (Int64.of_int
         (Char.code (Bytes.unsafe_get p off)
         lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
         lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
         lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)))
      (Int64.shift_left
         (Int64.of_int
            (Char.code (Bytes.unsafe_get p (off + 4))
            lor (Char.code (Bytes.unsafe_get p (off + 5)) lsl 8)
            lor (Char.code (Bytes.unsafe_get p (off + 6)) lsl 16)
            lor (Char.code (Bytes.unsafe_get p (off + 7)) lsl 24)))
         32)
  else
    Int64.logor
      (Int64.of_int (read_u32 m a))
      (Int64.shift_left (Int64.of_int (read_u32 m (a + 4))) 32)

let write_u16 m a v =
  write_u8 m a v;
  write_u8 m (a + 1) (v lsr 8)

let write_u32 m a v =
  let off = a land page_mask in
  if off + 4 <= page_size then begin
    let p = wpage m a in
    Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set p (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set p (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  end
  else begin
    write_u16 m a v;
    write_u16 m (a + 2) (v lsr 16)
  end

let write_u64 m a v =
  let lo = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical v 32) in
  write_u32 m a lo;
  write_u32 m (a + 4) hi

let write_bytes m a b =
  Bytes.iteri (fun i c -> write_u8 m (a + i) (Char.code c)) b

let read_block m a n = Bytes.init n (fun i -> Char.chr (read_u8 m (a + i)))

let read_cstring m a =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= 1 lsl 20 then Buffer.contents buf
    else
      let c = read_u8 m (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0

(* Unchecked accessors for the loader and post-run inspection. *)

let poke_page m a =
  let idx = a lsr page_bits in
  match found_page m idx with
  | Some p -> p
  | None ->
      m.resident <- m.resident + 1;
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace m.rpages idx p;
      Hashtbl.replace m.wpages idx p;
      p

let poke_bytes m a b =
  Bytes.iteri
    (fun i c ->
      let ad = a + i in
      Bytes.unsafe_set (poke_page m ad) (ad land page_mask) c)
    b

let peek_u8 m a =
  let idx = a lsr page_bits in
  match found_page m idx with
  | Some p -> Char.code (Bytes.unsafe_get p (a land page_mask))
  | None -> 0

let peek_u64 m a =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (peek_u8 m (a + i)))
  done;
  !v

let pages_touched m = m.resident
