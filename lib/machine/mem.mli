(** Sparse byte-addressable memory, allocated in 4 KiB pages on first
    touch, with segment-derived page protection and a resident-page
    ceiling.  Addresses are plain OCaml [int]s (the simulated address
    space stays far below 2{^62}); values are [int64].

    A fresh memory is unprotected: every access maps a zero page, as the
    loader needs.  Installing a map with {!protect} makes subsequent
    accesses fail closed — an access outside every region (or a write to
    a read-only one) raises {!Prot}, and the ceiling bounds how many
    pages a run can materialise, so a wild program cannot exhaust the
    host.  Permissions are page-granular: a page gets the union of the
    permissions of the regions overlapping it. *)

type t

val create : unit -> t

val page_bits : int
val page_size : int
val page_mask : int

exception Prot of { addr : int; access : Fault.access }
(** Raised by a checked access that the protection map forbids.  The
    engines convert it to {!Fault.Segv} by adding the faulting PC. *)

exception Limit of { pages : int; limit : int }
(** Raised when mapping one more page would exceed the resident-page
    ceiling.  The engines convert it to {!Fault.Mem_limit}. *)

val protect :
  t -> regions:(int * int * bool) list -> heap_lo:int -> max_pages:int -> unit
(** Install the protection map: [(lo, hi, writable)] regions (all
    readable), the heap base (grown by {!grow_heap} as the program break
    moves), and the resident-page ceiling.  Pages already mapped by the
    loader are re-derived under the new map: a page no region covers
    becomes inaccessible, a read-only page loses its writable view. *)

val grow_heap : t -> int -> unit
(** Raise the heap high-water mark to [addr] if it is above the current
    one.  Called by the [brk] system call; never lowers the mark, since
    the partitioned heap mode legitimately moves the break down again
    while the higher pages stay live. *)

val rpage : t -> int -> bytes
(** The readable page backing an address, created on first touch;
    raises {!Prot}/{!Limit}.  Exposed for {!Exec}'s translated memory
    accessors, which keep one-entry page caches; pages are never
    replaced once created, so a cached [bytes] never goes stale. *)

val wpage : t -> int -> bytes
(** Same, for the writable view. *)

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val read_u64 : t -> int -> int64
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int64 -> unit

val write_bytes : t -> int -> bytes -> unit
val read_block : t -> int -> int -> bytes

val read_cstring : t -> int -> string
(** NUL-terminated string at the address (capped at 1 MiB). *)

val poke_bytes : t -> int -> bytes -> unit
(** Unchecked store for the loader: maps pages regardless of any
    protection (the loader runs before {!protect} installs the map). *)

val peek_u8 : t -> int -> int
val peek_u64 : t -> int -> int64
(** Unchecked, non-allocating reads for tests and post-run inspection:
    an unmapped address reads as zero and maps nothing. *)

val pages_touched : t -> int
(** Number of resident pages. *)
