(** Sparse byte-addressable memory, allocated in 4 KiB pages on first
    touch.  Addresses are plain OCaml [int]s (the simulated address space
    stays far below 2{^62}); values are [int64]. *)

type t

val create : unit -> t

val page_bits : int
val page_size : int
val page_mask : int

val page : t -> int -> bytes
(** The (created-on-first-touch) page backing an address.  Exposed for
    {!Exec}'s translated memory accessors, which keep a one-entry page
    cache and read/write multi-byte values directly; pages are never
    replaced once created, so a cached [bytes] never goes stale. *)

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val read_u64 : t -> int -> int64
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int64 -> unit

val write_bytes : t -> int -> bytes -> unit
val read_block : t -> int -> int -> bytes

val read_cstring : t -> int -> string
(** NUL-terminated string at the address (capped at 1 MiB). *)

val pages_touched : t -> int
