(** Edge profiles for profile-guided superblock formation.

    A profile maps the PC of a conditional branch to the direction
    ([true] = taken) a prior run predominantly took.  The fast engine
    ({!Exec}) uses it at translation time to speculate the predicted
    successor into its turbo superblocks; every speculated crossing is
    guarded at run time, so a wrong or stale profile only costs speed,
    never changes any observable behaviour. *)

type t

val of_predictions : (int * bool) list -> t
(** [of_predictions preds] builds a profile from [(branch_pc, taken)]
    pairs.  Later pairs win on duplicate PCs. *)

val predict : t -> int -> bool option
(** Predicted direction for the conditional branch at [pc], if any. *)

val cardinal : t -> int
(** Number of branches the profile predicts. *)

val invert : t -> (int * bool) list
(** Every prediction, flipped — a deliberately wrong profile for
    misprediction testing.  Feed back through {!of_predictions}. *)
