(* The atomd wire protocol: length-prefixed frames over a byte stream
   (Unix-domain socket or pipe).

   Frame          = u32 big-endian payload length, then the payload.
   Payload        = one tag byte, then tag-specific fields.
   Integers       = 8-byte big-endian two's complement.
   Strings/bytes  = integer length, then the raw bytes.

   Executables travel in their own AEXE2 wire format
   ({!Objfile.Exe.to_string}), so the protocol never re-encodes an
   image; an instrumented image returned by the server byte-compares
   directly against a locally produced one.

   Requests: I instrument, R run, L load-image, T stats, Q shutdown.
   Replies:  the lowercase request tag on success, E on error.  Every
   request gets exactly one reply; the server never drops a request
   silently (fail-closed: an internal exception becomes an E reply and
   the worker lives on). *)

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* a frame larger than this is refused outright: fail closed on hostile
   or corrupt length prefixes instead of allocating unboundedly *)
let max_frame = 256 * 1024 * 1024

(* -- framing ------------------------------------------------------------- *)

let write_frame oc payload =
  let n = String.length payload in
  if n > max_frame then fail "frame too large (%d bytes)" n;
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 hdr 3 (n land 0xFF);
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

(* [None] on a clean EOF at a frame boundary *)
let read_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file -> None
  | hdr ->
      let n =
        (Char.code hdr.[0] lsl 24)
        lor (Char.code hdr.[1] lsl 16)
        lor (Char.code hdr.[2] lsl 8)
        lor Char.code hdr.[3]
      in
      if n > max_frame then fail "frame too large (%d bytes)" n;
      (match really_input_string ic n with
      | s -> Some s
      | exception End_of_file -> fail "truncated frame (wanted %d bytes)" n)

(* -- primitive codecs ---------------------------------------------------- *)

let put_int b (v : int) =
  let v = Int64.of_int v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

type cursor = { buf : string; mutable pos : int }

let take c n =
  if c.pos + n > String.length c.buf then fail "truncated payload";
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_byte c = (take c 1).[0]

let get_int c =
  let s = take c 8 in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  Int64.to_int !v

let get_str c =
  let n = get_int c in
  if n < 0 || n > max_frame then fail "bad string length %d" n;
  take c n

let finish c =
  if c.pos <> String.length c.buf then fail "trailing bytes in payload"

(* -- instrumentation options --------------------------------------------- *)

let put_options b (o : Atom.Instrument.options) =
  Buffer.add_char b
    (match o.save_strategy with
    | Atom.Instrument.Summary -> '\000'
    | Atom.Instrument.Save_all -> '\001'
    | Atom.Instrument.Summary_and_live -> '\002');
  Buffer.add_char b
    (match o.call_style with
    | Atom.Instrument.Wrapper -> '\000'
    | Atom.Instrument.Inline_saves -> '\001'
    | Atom.Instrument.Inline_body -> '\002'
    | Atom.Instrument.Specialized -> '\003');
  match o.heap_mode with
  | Atom.Instrument.Linked ->
      Buffer.add_char b '\000';
      put_int b 0
  | Atom.Instrument.Partitioned off ->
      Buffer.add_char b '\001';
      put_int b off

let get_options c : Atom.Instrument.options =
  let save =
    match get_byte c with
    | '\000' -> Atom.Instrument.Summary
    | '\001' -> Atom.Instrument.Save_all
    | '\002' -> Atom.Instrument.Summary_and_live
    | ch -> fail "bad save strategy %d" (Char.code ch)
  in
  let style =
    match get_byte c with
    | '\000' -> Atom.Instrument.Wrapper
    | '\001' -> Atom.Instrument.Inline_saves
    | '\002' -> Atom.Instrument.Inline_body
    | '\003' -> Atom.Instrument.Specialized
    | ch -> fail "bad call style %d" (Char.code ch)
  in
  let heap_tag = get_byte c in
  let off = get_int c in
  let heap =
    match heap_tag with
    | '\000' -> Atom.Instrument.Linked
    | '\001' -> Atom.Instrument.Partitioned off
    | ch -> fail "bad heap mode %d" (Char.code ch)
  in
  { Atom.Instrument.save_strategy = save; call_style = style; heap_mode = heap }

(* -- requests ------------------------------------------------------------ *)

(* an executable in a request: inline AEXE2 bytes, or the hex digest of
   an image the server already holds (returned by a previous instrument
   or load-image reply) *)
type image_ref = Inline of string | Image of string

(* per-request resource ceilings; 0 means "server default", and every
   value is clamped to the server's configured maximum, so a hostile
   request cannot starve the fleet *)
type ceilings = { rc_max_insns : int; rc_max_pages : int; rc_brk_max : int }

let no_ceilings = { rc_max_insns = 0; rc_max_pages = 0; rc_brk_max = 0 }

type request =
  | Instrument of {
      tool : string;
      options : Atom.Instrument.options;
      exe : image_ref;
    }
  | Run of {
      image : image_ref;
      stdin : string;
      ceilings : ceilings;
      engine : Machine.Sim.engine;
    }
  | Load_image of string  (** AEXE2 bytes; reply carries the digest *)
  | Stats
  | Shutdown

let put_image_ref b = function
  | Inline s ->
      Buffer.add_char b '\000';
      put_str b s
  | Image d ->
      Buffer.add_char b '\001';
      put_str b d

let get_image_ref c =
  match get_byte c with
  | '\000' -> Inline (get_str c)
  | '\001' -> Image (get_str c)
  | ch -> fail "bad image ref tag %d" (Char.code ch)

let encode_request r =
  let b = Buffer.create 256 in
  (match r with
  | Instrument { tool; options; exe } ->
      Buffer.add_char b 'I';
      put_str b tool;
      put_options b options;
      put_image_ref b exe
  | Run { image; stdin; ceilings; engine } ->
      Buffer.add_char b 'R';
      put_image_ref b image;
      put_str b stdin;
      put_int b ceilings.rc_max_insns;
      put_int b ceilings.rc_max_pages;
      put_int b ceilings.rc_brk_max;
      Buffer.add_char b
        (match engine with Machine.Sim.Fast -> '\000' | Machine.Sim.Ref -> '\001')
  | Load_image s ->
      Buffer.add_char b 'L';
      put_str b s
  | Stats -> Buffer.add_char b 'T'
  | Shutdown -> Buffer.add_char b 'Q');
  Buffer.contents b

let decode_request payload =
  let c = { buf = payload; pos = 0 } in
  let r =
    match get_byte c with
    | 'I' ->
        let tool = get_str c in
        let options = get_options c in
        let exe = get_image_ref c in
        Instrument { tool; options; exe }
    | 'R' ->
        let image = get_image_ref c in
        let stdin = get_str c in
        let rc_max_insns = get_int c in
        let rc_max_pages = get_int c in
        let rc_brk_max = get_int c in
        let engine =
          match get_byte c with
          | '\000' -> Machine.Sim.Fast
          | '\001' -> Machine.Sim.Ref
          | ch -> fail "bad engine %d" (Char.code ch)
        in
        Run
          { image; stdin; ceilings = { rc_max_insns; rc_max_pages; rc_brk_max };
            engine }
    | 'L' -> Load_image (get_str c)
    | 'T' -> Stats
    | 'Q' -> Shutdown
    | ch -> fail "bad request tag %d" (Char.code ch)
  in
  finish c;
  r

(* -- replies ------------------------------------------------------------- *)

(* a run's outcome, flattened for the wire: the structured fault keeps
   its stable kind tag plus the human-readable detail *)
type wire_outcome =
  | W_exit of int
  | W_fault of { kind : string; detail : string }
  | W_out_of_fuel

type run_reply = {
  rr_outcome : wire_outcome;
  rr_stats : Machine.Sim.stats;
  rr_stdout : string;
  rr_stderr : string;
}

type stats_reply = {
  sr_hits : int;  (** toolchain-cache memory hits *)
  sr_misses : int;  (** toolchain-cache builds *)
  sr_disk_hits : int;  (** toolchain-cache entries served from the store *)
  sr_entries : int;  (** live in-memory toolchain-cache entries *)
  sr_images : int;  (** prepared images in the registry *)
  sr_jobs : int;  (** requests served (all kinds) *)
  sr_errors : int;  (** requests answered with an E reply *)
  sr_workers : int;
}

type reply =
  | Instrumented of { digest : string; image : string }
  | Ran of run_reply
  | Loaded of { digest : string }
  | Stats_reply of stats_reply
  | Shutting_down
  | Error of string

let put_stats b (s : Machine.Sim.stats) =
  put_int b s.st_insns;
  put_int b s.st_cycles;
  put_int b s.st_pair_cycles;
  put_int b s.st_loads;
  put_int b s.st_stores;
  put_int b s.st_cond_branches;
  put_int b s.st_taken;
  put_int b s.st_calls;
  put_int b s.st_syscalls

let get_stats c : Machine.Sim.stats =
  let st_insns = get_int c in
  let st_cycles = get_int c in
  let st_pair_cycles = get_int c in
  let st_loads = get_int c in
  let st_stores = get_int c in
  let st_cond_branches = get_int c in
  let st_taken = get_int c in
  let st_calls = get_int c in
  let st_syscalls = get_int c in
  {
    st_insns;
    st_cycles;
    st_pair_cycles;
    st_loads;
    st_stores;
    st_cond_branches;
    st_taken;
    st_calls;
    st_syscalls;
  }

let encode_reply r =
  let b = Buffer.create 256 in
  (match r with
  | Instrumented { digest; image } ->
      Buffer.add_char b 'i';
      put_str b digest;
      put_str b image
  | Ran { rr_outcome; rr_stats; rr_stdout; rr_stderr } ->
      Buffer.add_char b 'r';
      (match rr_outcome with
      | W_exit code ->
          Buffer.add_char b '\000';
          put_int b code
      | W_fault { kind; detail } ->
          Buffer.add_char b '\001';
          put_str b kind;
          put_str b detail
      | W_out_of_fuel -> Buffer.add_char b '\002');
      put_stats b rr_stats;
      put_str b rr_stdout;
      put_str b rr_stderr
  | Loaded { digest } ->
      Buffer.add_char b 'l';
      put_str b digest
  | Stats_reply s ->
      Buffer.add_char b 't';
      put_int b s.sr_hits;
      put_int b s.sr_misses;
      put_int b s.sr_disk_hits;
      put_int b s.sr_entries;
      put_int b s.sr_images;
      put_int b s.sr_jobs;
      put_int b s.sr_errors;
      put_int b s.sr_workers
  | Shutting_down -> Buffer.add_char b 'q'
  | Error m ->
      Buffer.add_char b 'E';
      put_str b m);
  Buffer.contents b

let decode_reply payload =
  let c = { buf = payload; pos = 0 } in
  let r =
    match get_byte c with
    | 'i' ->
        let digest = get_str c in
        let image = get_str c in
        Instrumented { digest; image }
    | 'r' ->
        let rr_outcome =
          match get_byte c with
          | '\000' -> W_exit (get_int c)
          | '\001' ->
              let kind = get_str c in
              let detail = get_str c in
              W_fault { kind; detail }
          | '\002' -> W_out_of_fuel
          | ch -> fail "bad outcome tag %d" (Char.code ch)
        in
        let rr_stats = get_stats c in
        let rr_stdout = get_str c in
        let rr_stderr = get_str c in
        Ran { rr_outcome; rr_stats; rr_stdout; rr_stderr }
    | 'l' -> Loaded { digest = get_str c }
    | 't' ->
        let sr_hits = get_int c in
        let sr_misses = get_int c in
        let sr_disk_hits = get_int c in
        let sr_entries = get_int c in
        let sr_images = get_int c in
        let sr_jobs = get_int c in
        let sr_errors = get_int c in
        let sr_workers = get_int c in
        Stats_reply
          {
            sr_hits;
            sr_misses;
            sr_disk_hits;
            sr_entries;
            sr_images;
            sr_jobs;
            sr_errors;
            sr_workers;
          }
    | 'q' -> Shutting_down
    | 'E' -> Error (get_str c)
    | ch -> fail "bad reply tag %d" (Char.code ch)
  in
  finish c;
  r
