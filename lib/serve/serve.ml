(* atomd: the concurrent instrumentation-and-simulation service.

   One process, one listening Unix-domain socket, N worker domains.
   Every worker accepts connections from the shared listening socket and
   serves each connection's requests in order; concurrency comes from
   concurrent connections.  All workers share one process-wide
   content-addressed toolchain cache ({!Atom.Toolcache}, storage-backed
   when a cache directory is configured) and one registry of prepared
   simulator images ({!Machine.Sim.prepare}), so the daemon instruments
   each distinct (executable, tool, options) key once and parses each
   distinct image once, no matter how many clients ask.

   Fail-closed discipline: every request is answered; an internal
   exception becomes an [Error] reply and the worker survives; run
   requests execute under per-request ceilings (fuel, resident pages,
   brk span) clamped to the server's configured maxima, so a hostile
   request faults closed instead of starving the fleet. *)

module Protocol = Protocol

type config = {
  workers : int;  (** worker domains accepting connections *)
  max_insns : int;  (** hard per-request fuel ceiling *)
  max_pages : int;  (** hard per-request resident-page ceiling *)
  brk_span : int;  (** hard per-request brk roam above the break *)
  max_images : int;  (** prepared-image registry bound (FIFO eviction) *)
}

let default_config =
  {
    workers = 4;
    max_insns = Machine.Sim.default_max_insns;
    max_pages = 65536;
    brk_span = 1 lsl 30;
    max_images = 256;
  }

type t = {
  cfg : config;
  sock : Unix.file_descr;
  path : string;
  stop : bool Atomic.t;
  jobs : int Atomic.t;
  errors : int Atomic.t;
  (* digest -> (prepared image, raw AEXE2 bytes); FIFO-bounded *)
  reg_lock : Mutex.t;
  registry : (string, Machine.Sim.image * string) Hashtbl.t;
  reg_order : string Queue.t;
  mutable domains : unit Domain.t list;
}

let digest_hex s = Digest.to_hex (Digest.string s)

let registry_add t digest v =
  Mutex.lock t.reg_lock;
  if not (Hashtbl.mem t.registry digest) then begin
    Hashtbl.replace t.registry digest v;
    Queue.push digest t.reg_order;
    while Hashtbl.length t.registry > t.cfg.max_images do
      let old = Queue.pop t.reg_order in
      Hashtbl.remove t.registry old
    done
  end;
  Mutex.unlock t.reg_lock

let registry_find t digest =
  Mutex.lock t.reg_lock;
  let v = Hashtbl.find_opt t.registry digest in
  Mutex.unlock t.reg_lock;
  v

let registry_size t =
  Mutex.lock t.reg_lock;
  let n = Hashtbl.length t.registry in
  Mutex.unlock t.reg_lock;
  n

exception Request_error of string

let reject fmt = Printf.ksprintf (fun m -> raise (Request_error m)) fmt

(* resolve a request's executable: inline bytes are parsed (and, for
   runs, registered so later requests can refer to the digest), a digest
   must already be in the registry *)
let resolve_image t (r : Protocol.image_ref) =
  match r with
  | Protocol.Inline bytes ->
      let digest = digest_hex bytes in
      (match registry_find t digest with
      | Some (im, _) -> (digest, im)
      | None ->
          let exe =
            try Objfile.Exe.of_string bytes
            with e -> reject "bad image: %s" (Printexc.to_string e)
          in
          let im = Machine.Sim.prepare exe in
          registry_add t digest (im, bytes);
          (digest, im))
  | Protocol.Image digest -> (
      match registry_find t digest with
      | Some (im, _) -> (digest, im)
      | None -> reject "unknown image %s" digest)

let zero_stats : Machine.Sim.stats =
  {
    st_insns = 0;
    st_cycles = 0;
    st_pair_cycles = 0;
    st_loads = 0;
    st_stores = 0;
    st_cond_branches = 0;
    st_taken = 0;
    st_calls = 0;
    st_syscalls = 0;
  }

let wire_outcome = function
  | Machine.Sim.Exit code -> Protocol.W_exit code
  | Machine.Sim.Fault f ->
      Protocol.W_fault
        { kind = Machine.Fault.kind f; detail = Machine.Fault.to_string f }
  | Machine.Sim.Out_of_fuel -> Protocol.W_out_of_fuel

(* a requested ceiling of 0 (or less) means "the server's default"; any
   explicit request is clamped to the configured maximum *)
let clamp ~hard req = if req <= 0 then hard else min req hard

let handle_run t ~image ~stdin ~(ceilings : Protocol.ceilings) ~engine =
  let _digest, im = resolve_image t image in
  let exe = Machine.Sim.image_exe im in
  let max_insns = clamp ~hard:t.cfg.max_insns ceilings.rc_max_insns in
  let max_pages = clamp ~hard:t.cfg.max_pages ceilings.rc_max_pages in
  let brk_hard = exe.Objfile.Exe.x_break + t.cfg.brk_span in
  let brk_max = clamp ~hard:brk_hard ceilings.rc_brk_max in
  (* mapping the image already pokes pages: a page ceiling below the
     image's own footprint faults closed before the first instruction *)
  match Machine.Sim.start ~engine ~stdin ~max_pages ~brk_max im with
  | exception Machine.Mem.Limit { limit; _ } ->
      Protocol.Ran
        {
          rr_outcome =
            Protocol.W_fault
              {
                kind = "mem-limit";
                detail =
                  Printf.sprintf "resident-page ceiling (%d pages) hit while \
                                  mapping the image" limit;
              };
          rr_stats = zero_stats;
          rr_stdout = "";
          rr_stderr = "";
        }
  | m ->
      let outcome = Machine.Sim.run ~max_insns m in
      Protocol.Ran
        {
          rr_outcome = wire_outcome outcome;
          rr_stats = Machine.Sim.stats m;
          rr_stdout = Machine.Sim.stdout m;
          rr_stderr = Machine.Sim.stderr m;
        }

let options_fingerprint options =
  let b = Buffer.create 8 in
  Protocol.put_options b options;
  Buffer.contents b

let handle_instrument t ~tool ~options ~exe =
  (* the whole job is content-addressed: instrumentation is
     deterministic, so (executable digest, tool, option fingerprint)
     names the finished image.  A repeat request — from any client, any
     worker, or a restarted daemon with the same store — is a pure cache
     lookup that never touches the toolchain. *)
  let exe_key =
    match exe with
    | Protocol.Inline bytes -> digest_hex bytes
    | Protocol.Image digest -> digest
  in
  let key =
    String.concat "\000" [ exe_key; tool; options_fingerprint options ]
  in
  let digest, bytes' =
    Atom.Toolcache.find_or_add_image key (fun () ->
        let _digest, im = resolve_image t exe in
        let tool_t =
          match Tools.Registry.find tool with
          | Some tl -> tl
          | None -> reject "unknown tool %S" tool
        in
        let exe', _info =
          Tools.Tool.apply ~options tool_t (Machine.Sim.image_exe im)
        in
        let bytes' = Objfile.Exe.to_string exe' in
        (digest_hex bytes', bytes'))
  in
  (* register the instrumented image pre-prepared, so the natural
     instrument-then-run-many flow never re-parses it *)
  (match registry_find t digest with
  | Some _ -> ()
  | None ->
      registry_add t digest
        (Machine.Sim.prepare (Objfile.Exe.of_string bytes'), bytes'));
  Protocol.Instrumented { digest; image = bytes' }

let handle_stats t =
  Protocol.Stats_reply
    {
      sr_hits = Atom.Toolcache.hits ();
      sr_misses = Atom.Toolcache.misses ();
      sr_disk_hits = Atom.Toolcache.disk_hits ();
      sr_entries = Atom.Toolcache.size ();
      sr_images = registry_size t;
      sr_jobs = Atomic.get t.jobs;
      sr_errors = Atomic.get t.errors;
      sr_workers = t.cfg.workers;
    }

let handle_request t = function
  | Protocol.Instrument { tool; options; exe } ->
      handle_instrument t ~tool ~options ~exe
  | Protocol.Run { image; stdin; ceilings; engine } ->
      handle_run t ~image ~stdin ~ceilings ~engine
  | Protocol.Load_image bytes ->
      let exe =
        try Objfile.Exe.of_string bytes
        with e -> reject "bad image: %s" (Printexc.to_string e)
      in
      let digest = digest_hex bytes in
      registry_add t digest (Machine.Sim.prepare exe, bytes);
      Protocol.Loaded { digest }
  | Protocol.Stats -> handle_stats t
  | Protocol.Shutdown ->
      Atomic.set t.stop true;
      Protocol.Shutting_down

(* serve one connection: request frames in, reply frames out, until EOF.
   Every exception a request raises is converted to an [Error] reply —
   one poisoned request (hostile image, unknown tool, ceiling fault
   during load) never takes the worker down. *)
let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
        Atomic.incr t.jobs;
        let reply =
          match
            let req = Protocol.decode_request payload in
            handle_request t req
          with
          | reply -> reply
          | exception Request_error m ->
              Atomic.incr t.errors;
              Protocol.Error m
          | exception Protocol.Malformed m ->
              Atomic.incr t.errors;
              Protocol.Error ("malformed request: " ^ m)
          | exception e ->
              Atomic.incr t.errors;
              Protocol.Error (Printexc.to_string e)
        in
        Protocol.write_frame oc (Protocol.encode_reply reply);
        if reply = Protocol.Shutting_down then () else loop ()
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* Worker domains block in [accept] on the shared listening socket.  The
   socket carries a receive timeout, so a worker re-checks the stop flag
   a few times a second even when traffic is idle; [stop]/a Shutdown
   request flips the flag and the pool drains. *)
let worker_loop t =
  let rec go () =
    if Atomic.get t.stop then ()
    else
      match Unix.accept ~cloexec:true t.sock with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          go ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
          serve_connection t fd;
          go ()
  in
  go ()

let start ?(config = default_config) ?cache_dir ~socket () =
  (match cache_dir with
  | Some dir -> Atom.Toolcache.set_store (Some dir)
  | None -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock 64;
  Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.2;
  let t =
    {
      cfg = config;
      sock;
      path = socket;
      stop = Atomic.make false;
      jobs = Atomic.make 0;
      errors = Atomic.make 0;
      reg_lock = Mutex.create ();
      registry = Hashtbl.create 64;
      reg_order = Queue.create ();
      domains = [];
    }
  in
  t.domains <-
    List.init (max 1 config.workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let wait t =
  List.iter Domain.join t.domains;
  t.domains <- [];
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (try Unix.unlink t.path with Unix.Unix_error _ -> ())

let stop t =
  Atomic.set t.stop true;
  wait t

let stopping t = Atomic.get t.stop

(* for signal handlers: flipping the flag from a handler is async-signal
   safe, where joining domains is not *)
let stop_flag t = t.stop

(* -- client -------------------------------------------------------------- *)

exception Server_error of string

module Client = struct
  type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  (* the server may still be binding its socket when the first client
     arrives; retry briefly instead of failing the race *)
  let connect ?(retries = 100) path =
    let rec go n =
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
          {
            fd;
            ic = Unix.in_channel_of_descr fd;
            oc = Unix.out_channel_of_descr fd;
          }
      | exception
          Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        when n > 0 ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.02;
          go (n - 1)
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    go retries

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let rpc c req =
    Protocol.write_frame c.oc (Protocol.encode_request req);
    match Protocol.read_frame c.ic with
    | None -> raise (Server_error "connection closed by server")
    | Some payload -> (
        match Protocol.decode_reply payload with
        | Protocol.Error m -> raise (Server_error m)
        | reply -> reply)

  let instrument c ?(options = Atom.Instrument.default_options) ~tool exe_bytes
      =
    match rpc c (Protocol.Instrument { tool; options; exe = Protocol.Inline exe_bytes }) with
    | Protocol.Instrumented { digest; image } -> (digest, image)
    | _ -> raise (Server_error "unexpected reply to instrument")

  let run c ?(stdin = "") ?(engine = Machine.Sim.Fast)
      ?(ceilings = Protocol.no_ceilings) image =
    match rpc c (Protocol.Run { image; stdin; ceilings; engine }) with
    | Protocol.Ran r -> r
    | _ -> raise (Server_error "unexpected reply to run")

  let load_image c exe_bytes =
    match rpc c (Protocol.Load_image exe_bytes) with
    | Protocol.Loaded { digest } -> digest
    | _ -> raise (Server_error "unexpected reply to load-image")

  let stats c =
    match rpc c Protocol.Stats with
    | Protocol.Stats_reply s -> s
    | _ -> raise (Server_error "unexpected reply to stats")

  let shutdown c =
    match rpc c Protocol.Shutdown with
    | Protocol.Shutting_down -> ()
    | _ -> raise (Server_error "unexpected reply to shutdown")
end
