open Alpha
module Exe = Objfile.Exe
module I = Atom.Instrument

type issue = { v_check : string; v_addr : int option; v_detail : string }

type report = { r_checks : string list; r_issues : issue list }

let ok r = r.r_issues = []

let static_checks =
  [ "decode-roundtrip"; "branch-range"; "pc-map"; "layout"; "stub-frame";
    "stub-saves"; "stub-callee"; "stub-coverage" ]

let differential_checks =
  [ "diff-exit"; "diff-stdout"; "diff-stderr"; "diff-files"; "diff-break" ]

let pp_issue ppf i =
  Format.fprintf ppf "[%s]%s %s" i.v_check
    (match i.v_addr with Some a -> Printf.sprintf " %#x:" a | None -> "")
    i.v_detail

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf "verify: ok (%d checks)" (List.length r.r_checks)
  else begin
    Format.fprintf ppf "verify: %d issue(s)" (List.length r.r_issues);
    List.iter (fun i -> Format.fprintf ppf "@\n  %a" pp_issue i) r.r_issues
  end

let report_to_string r = Format.asprintf "%a" pp_report r

let merge a b =
  { r_checks = a.r_checks @ b.r_checks; r_issues = a.r_issues @ b.r_issues }

(* -- image access -------------------------------------------------------- *)

let seg_containing exe addr =
  List.find_opt
    (fun s ->
      addr >= s.Exe.seg_vaddr
      && addr + 4 <= s.Exe.seg_vaddr + Bytes.length s.Exe.seg_bytes)
    exe.Exe.x_segs

let read_word exe addr =
  match seg_containing exe addr with
  | Some s -> Some (Code.read_word s.Exe.seg_bytes (addr - s.Exe.seg_vaddr))
  | None -> None

(* Decoded instructions of a stub extent; unmapped words are dropped (the
   layout pass flags those separately).  Decoding goes through the shared
   word memo: the same words were already decoded by the instrumentation
   engine, so the verifier pays no second decode. *)
let extent_insns exe (ext : Om.Codegen.extent) =
  List.filter_map
    (fun k ->
      let addr = ext.Om.Codegen.e_addr + (4 * k) in
      Option.map (fun w -> (addr, Code.decode_cached w)) (read_word exe addr))
    (List.init (ext.Om.Codegen.e_size / 4) Fun.id)

(* -- stub parsing --------------------------------------------------------
   Every inserted code sequence — site stub or wrapper body — has the
   shape   lda sp,-N(sp) / saves / middle / mirrored restores /
   lda sp,+N(sp).  The parser recovers the frame so the checker can reason
   about it; any deviation is itself a finding.  [note check addr detail]
   reports a finding. *)

type frame = {
  f_saves : (bool * int * int) list;  (** (is_fp, reg, sp offset) *)
  f_middle : (int * Insn.t) list;
  f_calls : (int * int) list;  (** (bsr address, callee address) *)
}

let regset_of_saves saves =
  List.fold_left
    (fun acc (is_fp, r, _) ->
      if is_fp then Regset.add_f r acc else Regset.add r acc)
    Regset.empty saves

let parse_frame ~(note : string -> int option -> string -> unit) ~what
    (insns : (int * Insn.t) list) =
  match insns with
  | (_, Insn.Mem { op = Insn.Lda; ra; rb; disp }) :: rest
    when ra = Reg.sp && rb = Reg.sp && disp <= 0 -> (
      let size = -disp in
      let rec take_saves seen_fp acc = function
        | (_, Insn.Mem { op = Insn.Stq; ra = r; rb; disp }) :: tl
          when (not seen_fp) && rb = Reg.sp ->
            take_saves false ((false, r, disp) :: acc) tl
        | (_, Insn.Mem { op = Insn.Stt; ra = r; rb; disp }) :: tl
          when rb = Reg.sp ->
            take_saves true ((true, r, disp) :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let saves, rest = take_saves false [] rest in
      match List.rev rest with
      | (addr_close, Insn.Mem { op = Insn.Lda; ra; rb; disp = close })
        :: rev_mid
        when ra = Reg.sp && rb = Reg.sp ->
          if close <> size then
            note "stub-frame" (Some addr_close)
              (Printf.sprintf
                 "%s: frame opened with %d bytes but closed with %d" what size
                 close);
          let nsaves = List.length saves in
          let restores, rev_middle =
            let rec take k acc = function
              | (_, Insn.Mem { op = Insn.Ldq; ra = r; rb; disp }) :: tl
                when k > 0 && rb = Reg.sp ->
                  take (k - 1) ((false, r, disp) :: acc) tl
              | (_, Insn.Mem { op = Insn.Ldt; ra = r; rb; disp }) :: tl
                when k > 0 && rb = Reg.sp ->
                  take (k - 1) ((true, r, disp) :: acc) tl
              | tl -> (acc, tl)
            in
            take nsaves [] rev_mid
          in
          let sorted l = List.sort compare l in
          if sorted restores <> sorted saves then
            note "stub-saves" (Some addr_close)
              (Printf.sprintf
                 "%s: registers saved and restored differ (%d saved, %d \
                  restored)"
                 what nsaves (List.length restores));
          let middle = List.rev rev_middle in
          let calls =
            List.filter_map
              (fun (a, i) ->
                match i with
                | Insn.Br { link = true; disp; _ } ->
                    Some (a, a + 4 + (4 * disp))
                | _ -> None)
              middle
          in
          (* A spliced analysis body (call_style = Inline_body) may open and
             close its own frames inside the stub; only require that every
             inner sp adjustment is a [lda sp,d(sp)] and that they balance
             before the restores run. *)
          let depth =
            List.fold_left
              (fun depth (a, i) ->
                let defs = Insn.defs i in
                match i with
                | Insn.Mem { op = Insn.Lda; ra; rb; disp }
                  when ra = Reg.sp && rb = Reg.sp ->
                    let depth = depth - disp in
                    if depth < 0 then
                      note "stub-frame" (Some a)
                        (Printf.sprintf
                           "%s: stack pointer raised above the stub frame" what);
                    max depth 0
                | _ ->
                    if Regset.mem Reg.sp defs then
                      note "stub-frame" (Some a)
                        (Printf.sprintf
                           "%s: stack pointer modified inside the frame" what);
                    if Regset.mem Reg.gp defs then
                      note "stub-frame" (Some a)
                        (Printf.sprintf
                           "%s: global pointer modified inside the frame" what);
                    depth)
              0 middle
          in
          if depth <> 0 then
            note "stub-frame" (Some addr_close)
              (Printf.sprintf
                 "%s: %d bytes of inner frame still open at the restores" what
                 depth);
          Some { f_saves = saves; f_middle = middle; f_calls = calls }
      | _ ->
          note "stub-frame"
            (match insns with (a, _) :: _ -> Some a | [] -> None)
            (Printf.sprintf "%s: frame is not closed by lda sp,+N(sp)" what);
          None)
  | (a, _) :: _ ->
      note "stub-frame" (Some a)
        (Printf.sprintf "%s: does not open a frame with lda sp,-N(sp)" what);
      None
  | [] ->
      note "stub-frame" None (Printf.sprintf "%s: empty stub" what);
      None

(* -- the static pass ----------------------------------------------------- *)

let check_image ~original ~instrumented ~(info : I.info) =
  let au = info.I.i_audit in
  let pt_base, pt_size = au.I.au_prog_text in
  let at_base, at_size = au.I.au_anal_text in
  let rg_base, rg_size = au.I.au_anal_region in
  let issues = ref [] in
  let note v_check v_addr v_detail =
    issues := { v_check; v_addr; v_detail } :: !issues
  in
  let flag check ?addr fmt =
    Printf.ksprintf (fun detail -> note check addr detail) fmt
  in
  (* decode + branch discipline over one executable region *)
  let scan_region name lo size ~allow_call_out =
    for k = 0 to (size / 4) - 1 do
      let addr = lo + (4 * k) in
      match read_word instrumented addr with
      | None -> flag "layout" ~addr "%s: address not mapped by any segment" name
      | Some w ->
          if not (Code.roundtrips_cached w) then
            flag "decode-roundtrip" ~addr
              "%s: word %#010x does not round-trip through encode/decode" name
              w;
          let target_of disp = addr + 4 + (4 * disp) in
          let in_region t = t >= lo && t < lo + size in
          let check_target ?(callable = false) t =
            if t land 3 <> 0 then
              flag "branch-range" ~addr
                "%s: branch target %#x is not word-aligned" name t
            else if not (in_region t) then
              if
                not
                  (callable && allow_call_out
                  && ((t >= at_base && t < at_base + at_size)
                     || List.exists (fun (_, a) -> a = t) au.I.au_wrappers))
              then
                flag "branch-range" ~addr
                  "%s: branch target %#x leaves the region [%#x, %#x)" name t
                  lo (lo + size)
          in
          (match Code.decode_cached w with
          | Insn.Br { link; disp; _ } ->
              check_target ~callable:link (target_of disp)
          | Insn.Cbr { disp; _ } | Insn.Fbr { disp; _ } ->
              check_target (target_of disp)
          | _ -> ())
    done
  in
  scan_region "program text" pt_base pt_size ~allow_call_out:true;
  scan_region "analysis text" at_base at_size ~allow_call_out:false;
  (* PC map: total, strictly increasing (hence injective), in range *)
  let o_base = original.Exe.x_text_start
  and o_size = original.Exe.x_text_size in
  let prev = ref min_int in
  for k = 0 to (o_size / 4) - 1 do
    let old = o_base + (4 * k) in
    match info.I.i_map old with
    | exception _ -> flag "pc-map" ~addr:old "old PC has no mapping"
    | n ->
        if n <= !prev then
          flag "pc-map" ~addr:old "map not strictly increasing: %#x after %#x"
            n !prev;
        if n < pt_base || n >= pt_base + pt_size then
          flag "pc-map" ~addr:old "old PC maps to %#x, outside the new text" n;
        if (n - pt_base) land 3 <> 0 then
          flag "pc-map" ~addr:old "old PC maps to unaligned %#x" n;
        prev := n
  done;
  (* Figure-4 layout: program addresses pristine, analysis in the gap *)
  if instrumented.Exe.x_text_start <> original.Exe.x_text_start then
    flag "layout" "text base moved: %#x -> %#x" original.Exe.x_text_start
      instrumented.Exe.x_text_start;
  if instrumented.Exe.x_data_start <> original.Exe.x_data_start then
    flag "layout" "data base moved: %#x -> %#x" original.Exe.x_data_start
      instrumented.Exe.x_data_start;
  if instrumented.Exe.x_break <> original.Exe.x_break then
    flag "layout" "initial break moved: %#x -> %#x" original.Exe.x_break
      instrumented.Exe.x_break;
  (try
     if instrumented.Exe.x_entry <> info.I.i_map original.Exe.x_entry then
       flag "layout" "entry %#x is not the mapped original entry"
         instrumented.Exe.x_entry
   with _ ->
     flag "layout" "original entry %#x is unmapped" original.Exe.x_entry);
  if at_base < pt_base + pt_size then
    flag "layout" "analysis text %#x overlaps program text ending at %#x"
      at_base (pt_base + pt_size);
  if rg_base + rg_size > Linker.Link.rdata_base then
    flag "layout" "analysis region ends at %#x, past the text gap boundary %#x"
      (rg_base + rg_size) Linker.Link.rdata_base;
  List.iter
    (fun oseg ->
      if oseg.Exe.seg_vaddr <> original.Exe.x_text_start then
        match
          List.find_opt
            (fun s -> s.Exe.seg_vaddr = oseg.Exe.seg_vaddr)
            instrumented.Exe.x_segs
        with
        | None ->
            flag "layout" ~addr:oseg.Exe.seg_vaddr
              "original data segment vanished from the instrumented image"
        | Some s ->
            if
              Bytes.length s.Exe.seg_bytes <> Bytes.length oseg.Exe.seg_bytes
              || s.Exe.seg_bss <> oseg.Exe.seg_bss
            then
              flag "layout" ~addr:oseg.Exe.seg_vaddr
                "data segment resized: %d+%d bytes -> %d+%d bytes"
                (Bytes.length oseg.Exe.seg_bytes)
                oseg.Exe.seg_bss
                (Bytes.length s.Exe.seg_bytes)
                s.Exe.seg_bss)
    original.Exe.x_segs;
  (* stubs: frames balanced, saves sufficient, calls well-targeted *)
  let strategy = au.I.au_options.I.save_strategy in
  let style = au.I.au_options.I.call_style in
  let orig_prog = lazy (Om.Build.program original) in
  (* liveness mirrors the engine: the [Specialized] style live-filters
     its save sets regardless of the save strategy *)
  let live_table =
    lazy
      (match (strategy, style) with
      | I.Summary_and_live, _ | _, I.Specialized ->
          Some (Om.Liveness.compute (Lazy.force orig_prog))
      | (I.Summary | I.Save_all), _ -> None)
  in
  let live_at pc place =
    match Lazy.force live_table with
    | None -> None
    | Some tbl -> (
        match (place : Atom.Api.place) with
        | Atom.Api.Before | Atom.Api.Taken_edge ->
            Some (Om.Liveness.live_before tbl pc)
        | Atom.Api.After ->
            let prog = Lazy.force orig_prog in
            let same_proc =
              match (Om.Ir.proc_at prog pc, Om.Ir.proc_at prog (pc + 4)) with
              | Some p, Some q -> p == q
              | _ -> false
            in
            if same_proc then Some (Om.Liveness.live_before tbl (pc + 4))
            else Some Om.Liveness.all_regs)
  in
  let in_anal_text t = t >= at_base && t < at_base + at_size in
  let wrapper_cache : (int, Regset.t option) Hashtbl.t = Hashtbl.create 8 in
  let parse_wrapper addr =
    match Hashtbl.find_opt wrapper_cache addr with
    | Some r -> r
    | None ->
        let rec collect k acc =
          if k > 256 then None
          else
            match read_word instrumented (addr + (4 * k)) with
            | None -> None
            | Some w -> (
                match Code.decode_cached w with
                | Insn.Jump { kind = Insn.Ret; _ } -> Some (List.rev acc)
                | i -> collect (k + 1) ((addr + (4 * k), i) :: acc))
        in
        let r =
          match collect 0 [] with
          | None ->
              flag "stub-callee" ~addr "wrapper has no terminating ret";
              None
          | Some body -> (
              match
                parse_frame ~note
                  ~what:(Printf.sprintf "wrapper at %#x" addr)
                  body
              with
              | None -> None
              | Some f ->
                  List.iter
                    (fun (baddr, t) ->
                      if not (in_anal_text t) then
                        flag "stub-callee" ~addr:baddr
                          "wrapper at %#x calls %#x, outside the analysis text"
                          addr t)
                    f.f_calls;
                  Some (regset_of_saves f.f_saves))
        in
        Hashtbl.replace wrapper_cache addr r;
        r
  in
  let check_stub (site : I.audit_site) (ext : Om.Codegen.extent) =
    let what =
      Printf.sprintf "stub for %s at old pc %#x" site.I.as_proc site.I.as_pc
    in
    match parse_frame ~note ~what (extent_insns instrumented ext) with
    | None -> ()
    | Some f ->
        let saved = regset_of_saves f.f_saves in
        let protected_, called_ok =
          match f.f_calls with
          | [] ->
              (* spliced body: everything must be protected at the site *)
              if style <> I.Inline_body && style <> I.Specialized then
                flag "stub-callee" ~addr:ext.Om.Codegen.e_addr
                  "%s: no analysis call emitted" what;
              (saved, true)
          | [ (baddr, target) ] -> (
              let expected_wrapper =
                match style with
                | I.Wrapper -> List.assoc_opt site.I.as_proc au.I.au_wrappers
                | I.Inline_saves | I.Inline_body | I.Specialized -> None
              in
              let expected_proc = List.assoc_opt site.I.as_proc au.I.au_procs in
              match expected_wrapper with
              | Some w when target = w -> (
                  match parse_wrapper w with
                  | Some wsaves -> (Regset.union saved wsaves, true)
                  | None -> (saved, false))
              | Some w ->
                  flag "stub-callee" ~addr:baddr
                    "%s: calls %#x, expected the wrapper at %#x" what target w;
                  (saved, false)
              | None -> (
                  match expected_proc with
                  | Some p when target = p -> (saved, true)
                  | Some p ->
                      flag "stub-callee" ~addr:baddr
                        "%s: calls %#x, expected %s at %#x" what target
                        site.I.as_proc p;
                      (saved, false)
                  | None ->
                      flag "stub-callee" ~addr:baddr
                        "%s: callee %s has no recorded address" what
                        site.I.as_proc;
                      (saved, false)))
          | calls ->
              flag "stub-callee" ~addr:ext.Om.Codegen.e_addr
                "%s: %d calls emitted, expected one" what (List.length calls);
              (saved, false)
        in
        if called_ok then begin
          (* with no call emitted (spliced body) the summary's [ra] models a
             bsr that never happens; a body that really writes [ra] is still
             caught through the middle's defs *)
          let summary =
            if f.f_calls = [] then Regset.remove Reg.ra site.I.as_summary
            else site.I.as_summary
          in
          let clobbered =
            List.fold_left
              (fun acc (_, i) -> Regset.union acc (Insn.defs i))
              summary f.f_middle
          in
          let clobbered =
            Regset.remove Reg.sp (Regset.remove Reg.gp clobbered)
          in
          let required =
            match live_at site.I.as_pc site.I.as_place with
            | None -> clobbered
            | Some live -> Regset.inter clobbered live
          in
          if not (Regset.subset required protected_) then
            flag "stub-saves" ~addr:ext.Om.Codegen.e_addr
              "%s: may clobber %s but only protects %s" what
              (Format.asprintf "%a" Regset.pp (Regset.diff required protected_))
              (Format.asprintf "%a" Regset.pp protected_);
          (* When saves are live-filtered, validate the specialization
             really happened: every site save must be live at the site,
             an argument register (whose original value can feed a later
             argument and so needs a slot), or the floating transfer
             scratch [$f1].  Dead spills here mean the engine fell back
             to a fixed save set. *)
          (match live_at site.I.as_pc site.I.as_place with
          | Some live ->
              let allowed =
                List.fold_left
                  (fun acc k -> Regset.add (16 + k) acc)
                  (Regset.add_f 1 live)
                  (List.init site.I.as_nargs Fun.id)
              in
              if not (Regset.subset saved allowed) then
                flag "stub-saves" ~addr:ext.Om.Codegen.e_addr
                  "%s: spills dead register(s) %s" what
                  (Format.asprintf "%a" Regset.pp (Regset.diff saved allowed))
          | None -> ())
        end
  in
  (* pair each audit action with the stub extent codegen emitted for it *)
  let queues : (int * int, I.audit_site Queue.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let key pc (place : Atom.Api.place) =
    ( pc,
      match place with
      | Atom.Api.Before -> 0
      | Atom.Api.After -> 1
      | Atom.Api.Taken_edge -> 2 )
  in
  List.iter
    (fun (s : I.audit_site) ->
      let k = key s.I.as_pc s.I.as_place in
      let q =
        match Hashtbl.find_opt queues k with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace queues k q;
            q
      in
      Queue.add s q)
    au.I.au_sites;
  let pop pc slot ext =
    match Hashtbl.find_opt queues (pc, slot) with
    | Some q when not (Queue.is_empty q) -> check_stub (Queue.pop q) ext
    | _ ->
        flag "stub-coverage" ~addr:ext.Om.Codegen.e_addr
          "stub at old pc %#x has no matching instrumentation action" pc
  in
  List.iter
    (fun (st : Om.Codegen.site) ->
      List.iter (pop st.Om.Codegen.st_pc 0) st.Om.Codegen.st_before;
      List.iter (pop st.Om.Codegen.st_pc 1) st.Om.Codegen.st_after;
      List.iter (pop st.Om.Codegen.st_pc 2) st.Om.Codegen.st_taken)
    au.I.au_layout;
  Hashtbl.iter
    (fun (pc, _) q ->
      Queue.iter
        (fun (s : I.audit_site) ->
          flag "stub-coverage" ~addr:pc
            "no stub emitted for the %s call at old pc %#x" s.I.as_proc pc)
        q)
    queues;
  { r_checks = static_checks; r_issues = List.rev !issues }

(* -- the differential runner --------------------------------------------- *)

let outcome_to_string = function
  | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
  | Machine.Sim.Fault f -> Printf.sprintf "fault: %s" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> "out of fuel"

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let differential ?(engine = Machine.Sim.Fast) ?(max_insns = 2_000_000_000)
    ?stdin ?inputs ?profile_original ?profile_instrumented ~original
    ~instrumented ~heap_mode () =
  let issues = ref [] in
  let flag check fmt =
    Printf.ksprintf
      (fun v_detail ->
        issues := { v_check = check; v_addr = None; v_detail } :: !issues)
      fmt
  in
  let run ?profile exe =
    let m = Machine.Sim.load ~engine ?stdin ?inputs ?profile exe in
    let outcome = Machine.Sim.run ~max_insns m in
    (outcome, m)
  in
  let o1, m1 = run ?profile:profile_original original in
  let o2, m2 = run ?profile:profile_instrumented instrumented in
  if o1 <> o2 then
    flag "diff-exit" "uninstrumented run: %s; instrumented run: %s"
      (outcome_to_string o1) (outcome_to_string o2);
  let diff_stream check name a b =
    if a <> b then begin
      let i = first_diff a b in
      flag check "%s differs at byte %d: %S vs %S" name i
        (String.sub a i (min 24 (String.length a - i)))
        (String.sub b i (min 24 (String.length b - i)))
    end
  in
  diff_stream "diff-stdout" "stdout" (Machine.Sim.stdout m1)
    (Machine.Sim.stdout m2);
  diff_stream "diff-stderr" "stderr" (Machine.Sim.stderr m1)
    (Machine.Sim.stderr m2);
  List.iter
    (fun (name, contents) ->
      match List.assoc_opt name (Machine.Sim.output_files m2) with
      | None ->
          flag "diff-files" "output file %S missing from the instrumented run"
            name
      | Some c' ->
          if c' <> contents then
            flag "diff-files" "output file %S differs at byte %d" name
              (first_diff contents c'))
    (Machine.Sim.output_files m1);
  (* The application's heap: in partitioned mode the program break must be
     exactly what the uninstrumented run produced; in linked mode the two
     allocators share one break, so it may only grow. *)
  let app_break exe m =
    match Exe.find_symbol exe "__curbrk" with
    | Some s ->
        let v = Int64.to_int (Machine.Sim.read_u64 m s.Exe.x_addr) in
        if v = 0 then exe.Exe.x_break else v
    | None -> Machine.Sim.brk m
  in
  let b1 = app_break original m1 and b2 = app_break instrumented m2 in
  (match (heap_mode : I.heap_mode) with
  | I.Partitioned _ ->
      if b1 <> b2 then
        flag "diff-break"
          "program break %#x uninstrumented, %#x instrumented (partitioned \
           heap)"
          b1 b2
  | I.Linked ->
      if b2 < b1 then
        flag "diff-break"
          "instrumented break %#x shrank below the original %#x" b2 b1);
  { r_checks = differential_checks; r_issues = List.rev !issues }

let verify ?engine ?max_insns ?stdin ?inputs ?profile_original
    ?profile_instrumented ~original ~instrumented ~(info : I.info) () =
  let s = check_image ~original ~instrumented ~info in
  let d =
    differential ?engine ?max_insns ?stdin ?inputs ?profile_original
      ?profile_instrumented ~original ~instrumented
      ~heap_mode:info.I.i_audit.I.au_options.I.heap_mode ()
  in
  merge s d
