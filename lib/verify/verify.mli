(** Post-instrumentation verification.

    ATOM rewrites every branch, moves every instruction, and splices
    register-save stubs throughout the program text; a single bad
    displacement or dropped save silently corrupts the application it
    claims to observe.  This library checks an instrumented executable
    against the engine's own {!Atom.Instrument.audit} evidence, two ways:

    {b statically} ({!check_image}) — every word of inserted or relocated
    text decodes and round-trips through {!Alpha.Code}; every branch
    target is word-aligned, in range, and stays inside its region (only
    [bsr] may leave the program text, and only for a wrapper or analysis
    procedure); the old-to-new PC map is total, strictly increasing and
    lands inside the new text; the Figure-4 layout holds (program data
    addresses untouched, analysis module in the text–data gap); and every
    stub opens a frame, saves what the active save strategy requires,
    calls the procedure the audit names, restores exactly what it saved,
    and closes the frame — cross-checked against {!Om.Liveness} when the
    live-register optimization is active;

    {b differentially} ({!differential}) — the original and instrumented
    executables run on {!Machine.Sim} and must agree on outcome, stdout,
    stderr, output files, and the application's final heap break.

    Issues carry the name of the check that produced them so tests (and
    the bench sweep) can assert that a deliberate corruption is caught by
    the right detector. *)

type issue = {
  v_check : string;  (** which check fired, e.g. ["branch-range"] *)
  v_addr : int option;  (** address in the instrumented image, if known *)
  v_detail : string;
}

type report = {
  r_checks : string list;  (** checks that ran *)
  r_issues : issue list;  (** findings, in discovery order *)
}

val ok : report -> bool

val static_checks : string list
(** [["decode-roundtrip"; "branch-range"; "pc-map"; "layout"; "stub-frame";
    "stub-saves"; "stub-callee"; "stub-coverage"]] *)

val differential_checks : string list
(** [["diff-exit"; "diff-stdout"; "diff-stderr"; "diff-files";
    "diff-break"]] *)

val pp_issue : Format.formatter -> issue -> unit
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string
val merge : report -> report -> report

val check_image :
  original:Objfile.Exe.t ->
  instrumented:Objfile.Exe.t ->
  info:Atom.Instrument.info ->
  report
(** The static pass.  Pure: no simulation. *)

val differential :
  ?engine:Machine.Sim.engine ->
  ?max_insns:int ->
  ?stdin:string ->
  ?inputs:(string * string) list ->
  ?profile_original:Machine.Profile.t ->
  ?profile_instrumented:Machine.Profile.t ->
  original:Objfile.Exe.t ->
  instrumented:Objfile.Exe.t ->
  heap_mode:Atom.Instrument.heap_mode ->
  unit ->
  report
(** Run both executables on the selected simulator engine (default [Fast])
    and diff the observable behaviour ([max_insns]
    defaults to the simulator's 2-billion budget).  The final
    application break is read through the [__curbrk] symbol of each image
    (falling back to the simulator's break): under [Partitioned] heaps it
    must be identical, under [Linked] it may only grow. *)

val verify :
  ?engine:Machine.Sim.engine ->
  ?max_insns:int ->
  ?stdin:string ->
  ?inputs:(string * string) list ->
  ?profile_original:Machine.Profile.t ->
  ?profile_instrumented:Machine.Profile.t ->
  original:Objfile.Exe.t ->
  instrumented:Objfile.Exe.t ->
  info:Atom.Instrument.info ->
  unit ->
  report
(** {!check_image} followed by {!differential}, merged.  The optional
    profiles guide the fast engine's speculation on the corresponding
    side of the diff (the instrumented side's profile must be keyed by
    relocated branch addresses — map through [info.i_map]). *)
