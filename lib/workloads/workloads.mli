(** The benchmark suite: SPEC92-flavoured Mini-C programs used where the
    paper used the 20 SPEC92 benchmarks.  Each is deterministic (seeded
    PRNG, synthetic inputs generated in-process) and prints a small
    result/checksum so runs can be validated byte-for-byte. *)

type t = {
  w_name : string;
  w_models : string;  (** the SPEC92 program it stands in for *)
  w_source : string;  (** Mini-C *)
}

val all : t list

val find : string -> t option

val generated : ?size:int -> seed:int -> count:int -> unit -> t list
(** [count] programs from the {!Progen} generator, seeds [seed] …
    [seed + count - 1], behind the same interface as the hand-written
    suite so the matrix drivers ([verify], [perf], [faults]) can opt
    into generated traffic without code changes.  Names are
    ["gen-s<seed>-z<size>"] — unique per (seed, size), so {!compile}'s
    memo treats each generated program as its own workload. *)

val compile : t -> Objfile.Exe.t
(** Compile and link against the runtime library (memoised per workload). *)

val run_exe :
  ?engine:Machine.Sim.engine ->
  ?max_insns:int ->
  ?profile:Machine.Profile.t ->
  Objfile.Exe.t ->
  Machine.Sim.outcome * Machine.Sim.t
(** Load and run an executable with no stdin and no input files, on the
    selected simulator engine (default [Fast]).  [max_insns] defaults to
    {!Machine.Sim.default_max_insns} — the same constant every other run
    path uses, so an outcome can never flip between [Out_of_fuel] and
    completion depending on which path ran the program.  [profile]
    (Fast engine only) enables speculative superblock chaining across
    the predicted sides of conditional branches; it is a performance
    hint and never changes observable behaviour. *)
