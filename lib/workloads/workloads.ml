type t = {
  w_name : string;
  w_models : string;
  w_source : string;
}

(* -- 1. LZW compression (stands in for 026.compress) ------------------- *)

let compress_src =
  {|
/* LZW compression of a synthetic text buffer. */
long dict_prefix[4096];
long dict_char[4096];
long hash_head[4096];
long hash_next[4096];
char text[16384];

long make_text(void) {
  long i, n = 16384;
  char *words = "the quick brown fox jumps over the lazy dog ";
  long wl = strlen(words);
  srand(42);
  for (i = 0; i < n; i++) {
    if ((rand() & 15) == 0) text[i] = 'a' + (rand() & 15);
    else text[i] = words[i % wl];
  }
  return n;
}

long hash(long prefix, long c) { return ((prefix << 5) ^ c) & 4095; }

long lookup(long prefix, long c) {
  long i = hash_head[hash(prefix, c)];
  while (i) {
    if (dict_prefix[i] == prefix && dict_char[i] == c) return i;
    i = hash_next[i];
  }
  return 0;
}

long main(void) {
  long n = make_text();
  long next_code = 256, out = 0, checksum = 0;
  long w, i, c, found, h;
  for (i = 0; i < 4096; i++) hash_head[i] = 0;
  w = text[0] + 1;  /* codes 1..256 are single bytes */
  for (i = 1; i < n; i++) {
    c = text[i];
    found = lookup(w, c);
    if (found) {
      w = found;
    } else {
      out++;
      checksum = (checksum * 31 + w) & 0xFFFFFF;
      if (next_code < 4095) {
        next_code++;
        dict_prefix[next_code] = w;
        dict_char[next_code] = c;
        h = hash(w, c);
        hash_next[next_code] = hash_head[h];
        hash_head[h] = next_code;
      }
      w = c + 1;
    }
  }
  out++;
  checksum = (checksum * 31 + w) & 0xFFFFFF;
  printf("compress: in=%d out=%d checksum=%x\n", n, out, checksum);
  return 0;
}
|}

(* -- 2. bit-vector logic + sorting (stands in for 023.eqntott) --------- *)

let bitvec_src =
  {|
long vecs[1200];

long popcount(long v) {
  long n = 0;
  while (v) { n += v & 1; v = (v >> 1) & 0x7FFFFFFFFFFFFFF; }
  return n;
}

void sort(long *a, long n) {
  long i, j, key;
  for (i = 1; i < n; i++) {
    key = a[i];
    j = i - 1;
    while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; }
    a[j + 1] = key;
  }
}

long main(void) {
  long n = 1200, i, acc = 0;
  srand(7);
  for (i = 0; i < n; i++) vecs[i] = (rand() << 34) ^ (rand() << 13) ^ rand();
  for (i = 0; i < n; i++) acc += popcount(vecs[i]);
  sort(vecs, n);
  for (i = 1; i < n; i++)
    if (vecs[i - 1] > vecs[i]) { printf("bitvec: SORT BUG\n"); return 1; }
  printf("bitvec: popcount=%d median=%x\n", acc, vecs[n / 2] & 0xFFFF);
  return 0;
}
|}

(* -- 3. greedy set cover over bit rows (stands in for 008.espresso) ---- *)

let cover_src =
  {|
long rows[256];
long chosen[64];

long main(void) {
  long nrows = 256, i, j, best, bestcount, covered = 0, nchosen = 0;
  long universe = -1;
  srand(13);
  for (i = 0; i < nrows; i++)
    rows[i] = (rand() << 34) ^ (rand() << 11) ^ rand();
  while (covered != universe && nchosen < 64) {
    best = -1;
    bestcount = 0;
    for (i = 0; i < nrows; i++) {
      long gain = rows[i] & ~covered;
      long cnt = 0;
      for (j = 0; j < 64; j++) cnt += (gain >> j) & 1;
      if (cnt > bestcount) { bestcount = cnt; best = i; }
    }
    if (best < 0) break;
    chosen[nchosen] = best;
    nchosen++;
    covered = covered | rows[best];
  }
  printf("cover: sets=%d covered=%x\n", nchosen, covered & 0xFFFF);
  return 0;
}
|}

(* -- 4. recursive expression interpreter (stands in for 022.li) -------- *)

let lisp_src =
  {|
/* a tiny expression-tree interpreter, heavy on recursion and pointers */
struct node { long op; long value; struct node *l; struct node *r; };

struct node *mknode(long op, long v, struct node *l, struct node *r) {
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->op = op;
  n->value = v;
  n->l = l;
  n->r = r;
  return n;
}

struct node *build(long depth, long seed) {
  if (depth == 0) return mknode(0, (seed * 37 + 11) % 100, 0, 0);
  return mknode(1 + (seed % 3), 0,
                build(depth - 1, seed * 5 + 1),
                build(depth - 1, seed * 3 + 2));
}

long eval(struct node *n) {
  long a, b;
  if (n->op == 0) return n->value;
  a = eval(n->l);
  b = eval(n->r);
  if (n->op == 1) return a + b;
  if (n->op == 2) return a - b;
  return (a & 0xFFFF) * (b & 15) + 1;
}

long main(void) {
  long i, acc = 0;
  struct node *t = build(11, 3);
  for (i = 0; i < 40; i++) acc = (acc + eval(t)) & 0xFFFFFFF;
  printf("lisp: acc=%x\n", acc);
  return 0;
}
|}

(* -- 5. spreadsheet-style relaxation (stands in for 085.cc1-ish sc) ---- *)

let cells_src =
  {|
long grid[64 * 64];
long next[64 * 64];

long main(void) {
  long w = 64, i, j, it, changed = 1, sum = 0;
  srand(99);
  for (i = 0; i < w * w; i++) grid[i] = rand() & 1023;
  for (it = 0; it < 12 && changed; it++) {
    changed = 0;
    for (i = 1; i < w - 1; i++) {
      for (j = 1; j < w - 1; j++) {
        long idx = i * w + j;
        long v = (grid[idx - 1] + grid[idx + 1] + grid[idx - w] + grid[idx + w]) / 4;
        next[idx] = v;
        if (v != grid[idx]) changed = 1;
      }
    }
    for (i = 1; i < w - 1; i++)
      for (j = 1; j < w - 1; j++) grid[i * w + j] = next[i * w + j];
  }
  for (i = 0; i < w * w; i++) sum += grid[i];
  printf("cells: sum=%d\n", sum & 0xFFFFFF);
  return 0;
}
|}

(* -- 6. quicksort + binary search (integer workload) -------------------- *)

let qsort_src =
  {|
long data[8000];

void quicksort(long *a, long lo, long hi) {
  long i, j, pivot, tmp;
  if (lo >= hi) return;
  pivot = a[(lo + hi) >> 1];
  i = lo;
  j = hi;
  while (i <= j) {
    while (a[i] < pivot) i++;
    while (a[j] > pivot) j--;
    if (i <= j) {
      tmp = a[i]; a[i] = a[j]; a[j] = tmp;
      i++;
      j--;
    }
  }
  quicksort(a, lo, j);
  quicksort(a, i, hi);
}

long bsearch_(long *a, long n, long key) {
  long lo = 0, hi = n - 1;
  while (lo <= hi) {
    long mid = (lo + hi) >> 1;
    if (a[mid] == key) return mid;
    if (a[mid] < key) lo = mid + 1;
    else hi = mid - 1;
  }
  return -1;
}

long main(void) {
  long n = 8000, i, hits = 0;
  srand(5);
  for (i = 0; i < n; i++) data[i] = rand() & 0xFFFFF;
  quicksort(data, 0, n - 1);
  for (i = 1; i < n; i++)
    if (data[i - 1] > data[i]) { printf("qsort: BUG\n"); return 1; }
  srand(5);
  for (i = 0; i < n; i++)
    if (bsearch_(data, n, rand() & 0xFFFFF) >= 0) hits++;
  printf("qsort: sorted %d, hits=%d\n", n, hits);
  return 0;
}
|}

(* -- 7. double-precision matrix multiply (stands in for 052.matrix300) - *)

let matmul_src =
  {|
double A[40 * 40];
double B[40 * 40];
double C[40 * 40];

long main(void) {
  long n = 40, i, j, k, rep;
  double sum = 0.0;
  for (i = 0; i < n * n; i++) {
    A[i] = (double) ((i * 7) % 23) * 0.5;
    B[i] = (double) ((i * 13) % 19) * 0.25;
  }
  for (rep = 0; rep < 3; rep++) {
    for (i = 0; i < n; i++) {
      for (j = 0; j < n; j++) {
        double acc = 0.0;
        for (k = 0; k < n; k++) acc += A[i * n + k] * B[k * n + j];
        C[i * n + j] = acc;
      }
    }
    for (i = 0; i < n * n; i++) A[i] = C[i] * 0.001;
  }
  for (i = 0; i < n * n; i++) sum += C[i];
  printf("matmul: sum=%f\n", sum * 0.0001);
  return 0;
}
|}

(* -- 8. Jacobi stencil (stands in for 047.tomcatv) ---------------------- *)

let stencil_src =
  {|
double grid[48 * 48];
double tmp[48 * 48];

long main(void) {
  long w = 48, i, j, it;
  double residual = 0.0;
  for (i = 0; i < w * w; i++) grid[i] = (double) ((i % 17) - 8);
  for (i = 0; i < w; i++) {
    grid[i] = 100.0;
    grid[(w - 1) * w + i] = -40.0;
  }
  for (it = 0; it < 20; it++) {
    for (i = 1; i < w - 1; i++)
      for (j = 1; j < w - 1; j++)
        tmp[i * w + j] =
          0.25 * (grid[i * w + j - 1] + grid[i * w + j + 1]
                  + grid[(i - 1) * w + j] + grid[(i + 1) * w + j]);
    for (i = 1; i < w - 1; i++)
      for (j = 1; j < w - 1; j++) grid[i * w + j] = tmp[i * w + j];
  }
  for (i = 0; i < w * w; i++) residual += fabs(grid[i]);
  printf("stencil: residual=%f\n", residual * 0.001);
  return 0;
}
|}

(* -- 9. n-body step loop (stands in for 015.doduc-style FP code) ------- *)

let nbody_src =
  {|
double px[32];
double py[32];
double vx[32];
double vy[32];

long main(void) {
  long n = 32, steps = 25, i, j, s;
  double energy = 0.0;
  for (i = 0; i < n; i++) {
    px[i] = (double) (i % 7) - 3.0;
    py[i] = (double) (i % 5) - 2.0;
    vx[i] = 0.0;
    vy[i] = 0.0;
  }
  for (s = 0; s < steps; s++) {
    for (i = 0; i < n; i++) {
      double ax = 0.0, ay = 0.0;
      for (j = 0; j < n; j++) {
        if (i != j) {
          double dx = px[j] - px[i];
          double dy = py[j] - py[i];
          double d2 = dx * dx + dy * dy + 0.1;
          double inv = 1.0 / (d2 * sqrt(d2));
          ax += dx * inv;
          ay += dy * inv;
        }
      }
      vx[i] += 0.001 * ax;
      vy[i] += 0.001 * ay;
    }
    for (i = 0; i < n; i++) {
      px[i] += 0.001 * vx[i];
      py[i] += 0.001 * vy[i];
    }
  }
  for (i = 0; i < n; i++) energy += vx[i] * vx[i] + vy[i] * vy[i];
  printf("nbody: energy=%f\n", energy * 1000000.0);
  return 0;
}
|}

(* -- 10. sieve of Eratosthenes (memory-streaming integer code) ---------- *)

let sieve_src =
  {|
char flags[100000];

long main(void) {
  long n = 100000, i, j, count = 0, last = 0;
  for (i = 0; i < n; i++) flags[i] = 1;
  for (i = 2; i < n; i++) {
    if (flags[i]) {
      count++;
      last = i;
      for (j = i + i; j < n; j += i) flags[j] = 0;
    }
  }
  printf("sieve: primes=%d last=%d\n", count, last);
  return 0;
}
|}

(* -- 11. string searching (text-processing integer code) --------------- *)

let strsearch_src =
  {|
/* Boyer-Moore-Horspool over synthetic text */
char text[32768];
long shift[256];

long search(char *pat, long m, long n) {
  long i, k, count = 0;
  for (i = 0; i < 256; i++) shift[i] = m;
  for (i = 0; i < m - 1; i++) shift[pat[i]] = m - 1 - i;
  i = m - 1;
  while (i < n) {
    k = 0;
    while (k < m && pat[m - 1 - k] == text[i - k]) k++;
    if (k == m) count++;
    i += shift[text[i]];
  }
  return count;
}

long main(void) {
  long n = 32768, i, hits = 0;
  char *words = "needle in a haystack made of straw and hay ";
  long wl = strlen(words);
  srand(17);
  for (i = 0; i < n; i++) text[i] = words[(i + (rand() & 7)) % wl];
  hits += search("hay", 3, n);
  hits += search("straw", 5, n);
  hits += search("needle in", 9, n);
  printf("strsearch: hits=%d
", hits);
  return 0;
}
|}

(* -- 12. dynamic programming knapsack ----------------------------------- *)

let knapsack_src =
  {|
long value[64];
long weight[64];
long best[64 * 400];

long max2(long a, long b) { if (a > b) return a; return b; }

long main(void) {
  long n = 64, cap = 399, i, w;
  srand(23);
  for (i = 0; i < n; i++) {
    value[i] = 1 + (rand() & 63);
    weight[i] = 1 + (rand() & 31);
  }
  for (w = 0; w <= cap; w++)
    best[w] = (weight[0] <= w) ? value[0] : 0;
  for (i = 1; i < n; i++) {
    for (w = 0; w <= cap; w++) {
      long skip = best[(i - 1) * 400 + w];
      long take = 0;
      if (weight[i] <= w) take = value[i] + best[(i - 1) * 400 + w - weight[i]];
      best[i * 400 + w] = max2(skip, take);
    }
  }
  printf("knapsack: best=%d
", best[(n - 1) * 400 + cap]);
  return 0;
}
|}

(* -- 13. hash table churn (pointer chasing, like gcc's symbol tables) --- *)

let hashtab_src =
  {|
struct entry { long key; long val; struct entry *next; };
struct entry *buckets[1024];

long lookup_or_add(long key) {
  long h = ((key * 2654435761) >> 8) & 1023;
  struct entry *e = buckets[h];
  while (e) {
    if (e->key == key) { e->val++; return e->val; }
    e = e->next;
  }
  e = (struct entry *) malloc(sizeof(struct entry));
  e->key = key;
  e->val = 1;
  e->next = buckets[h];
  buckets[h] = e;
  return 1;
}

long main(void) {
  long i, acc = 0;
  srand(31);
  for (i = 0; i < 20000; i++)
    acc += lookup_or_add(rand() & 2047);
  printf("hashtab: acc=%d
", acc & 0xFFFFFF);
  return 0;
}
|}

(* -- 14. polynomial roots by Newton (double-heavy, like 015.doduc) ------ *)

let newton_src =
  {|
double poly(double *c, long n, double x) {
  double r = 0.0;
  long i;
  for (i = n; i >= 0; i--) r = r * x + c[i];
  return r;
}

double dpoly(double *c, long n, double x) {
  double r = 0.0;
  long i;
  for (i = n; i >= 1; i--) r = r * x + c[i] * (double) i;
  return r;
}

double coeffs[8];

long main(void) {
  long trial, i;
  double sum = 0.0;
  for (trial = 0; trial < 200; trial++) {
    double x = 0.5 + 0.01 * (double) trial;
    for (i = 0; i <= 6; i++)
      coeffs[i] = (double) ((trial + i * 7) % 13) - 6.0;
    coeffs[0] = coeffs[0] - 1.0;
    for (i = 0; i < 25; i++) {
      double d = dpoly(coeffs, 6, x);
      if (fabs(d) < 0.0001) break;
      x = x - poly(coeffs, 6, x) / d;
      if (x > 100.0) x = 1.0;
      if (x < -100.0) x = -1.0;
    }
    sum += fabs(poly(coeffs, 6, x));
  }
  printf("newton: residual=%f
", sum * 0.001);
  return 0;
}
|}

(* -- 15. permutation generation (recursion + array shuffles) ------------ *)

let perm_src =
  {|
long arr[9];
long count;
long checksum;

void permute(long k) {
  long i, t;
  if (k == 0) {
    count++;
    checksum = (checksum * 31 + arr[0] * 8 + arr[7]) & 0xFFFFF;
    return;
  }
  for (i = 0; i <= k; i++) {
    t = arr[i]; arr[i] = arr[k]; arr[k] = t;
    permute(k - 1);
    t = arr[i]; arr[i] = arr[k]; arr[k] = t;
  }
}

long main(void) {
  long i;
  for (i = 0; i < 8; i++) arr[i] = i;
  permute(7);
  printf("perm: count=%d checksum=%x
", count, checksum);
  return 0;
}
|}

let all =
  [
    { w_name = "compress"; w_models = "026.compress"; w_source = compress_src };
    { w_name = "bitvec"; w_models = "023.eqntott"; w_source = bitvec_src };
    { w_name = "cover"; w_models = "008.espresso"; w_source = cover_src };
    { w_name = "lisp"; w_models = "022.li"; w_source = lisp_src };
    { w_name = "cells"; w_models = "085.gcc (integer mix)"; w_source = cells_src };
    { w_name = "qsort"; w_models = "integer sort/search mix"; w_source = qsort_src };
    { w_name = "matmul"; w_models = "052.matrix300"; w_source = matmul_src };
    { w_name = "stencil"; w_models = "047.tomcatv"; w_source = stencil_src };
    { w_name = "nbody"; w_models = "015.doduc (FP)"; w_source = nbody_src };
    { w_name = "sieve"; w_models = "memory-streaming integer"; w_source = sieve_src };
    { w_name = "strsearch"; w_models = "text search (grep-like)"; w_source = strsearch_src };
    { w_name = "knapsack"; w_models = "dynamic programming (integer)"; w_source = knapsack_src };
    { w_name = "hashtab"; w_models = "085.gcc symbol tables"; w_source = hashtab_src };
    { w_name = "newton"; w_models = "015.doduc (FP iteration)"; w_source = newton_src };
    { w_name = "perm"; w_models = "recursion-heavy integer"; w_source = perm_src };
  ]

let find name = List.find_opt (fun w -> w.w_name = name) all

let cache : (string, Objfile.Exe.t) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()

let compile w =
  let cached =
    Mutex.lock cache_lock;
    let v = Hashtbl.find_opt cache w.w_name in
    Mutex.unlock cache_lock;
    v
  in
  match cached with
  | Some exe -> exe
  | None ->
      (* compiled outside the lock: slow, and a racing domain merely
         duplicates the work (first publication wins) *)
      let exe = Rtlib.compile_and_link ~name:(w.w_name ^ ".o") w.w_source in
      Mutex.lock cache_lock;
      let exe =
        match Hashtbl.find_opt cache w.w_name with
        | Some exe' -> exe'
        | None ->
            Hashtbl.replace cache w.w_name exe;
            exe
      in
      Mutex.unlock cache_lock;
      exe

(* Generated traffic: the progen corpus behind the same interface as the
   hand-written suite.  Names are unique per (seed, size, index), so the
   compile memo above never conflates two generated programs. *)
let generated ?size ~seed ~count () =
  List.init count (fun i ->
      let t = Progen.generate ?size ~seed:(seed + i) () in
      {
        w_name = Printf.sprintf "gen-s%d-z%d" (Progen.seed t) (Progen.size t);
        w_models = "progen generated traffic";
        w_source = Progen.source t;
      })

(* the fuel default is Sim's: one documented constant for every run path *)
let run_exe ?(engine = Machine.Sim.Fast)
    ?(max_insns = Machine.Sim.default_max_insns) ?profile exe =
  let m = Machine.Sim.load ~engine ?profile exe in
  let outcome = Machine.Sim.run ~max_insns m in
  (outcome, m)
