exception Error of int * string

let err ln fmt = Printf.ksprintf (fun m -> raise (Error (ln, m))) fmt

(* A tiny cursor over one line. *)
type cur = { s : string; mutable pos : int; ln : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t') ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ()

let at_end c =
  skip_ws c;
  c.pos >= String.length c.s

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_' || ch = '.' || ch = '$'

let is_ident_char ch = is_ident_start ch || (ch >= '0' && ch <= '9')

let ident c =
  skip_ws c;
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch when is_ident_char ch ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  if c.pos = start then err c.ln "expected identifier";
  String.sub c.s start (c.pos - start)

let expect c ch =
  skip_ws c;
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> err c.ln "expected '%c', got '%c'" ch got
  | None -> err c.ln "expected '%c', got end of line" ch

let try_char c ch =
  skip_ws c;
  match peek c with
  | Some got when got = ch ->
      advance c;
      true
  | Some _ | None -> false

(* Numbers: decimal or 0x hex, optional sign.  Returned as int. *)
let number c =
  skip_ws c;
  let start = c.pos in
  if peek c = Some '-' || peek c = Some '+' then advance c;
  let rec go () =
    match peek c with
    | Some ch
      when (ch >= '0' && ch <= '9')
           || (ch >= 'a' && ch <= 'f')
           || (ch >= 'A' && ch <= 'F')
           || ch = 'x' || ch = 'X' ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> err c.ln "bad number %S" text

let float_number c =
  skip_ws c;
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch
      when (ch >= '0' && ch <= '9')
           || ch = '.' || ch = '-' || ch = '+' || ch = 'e' || ch = 'E' || ch = 'x'
           || (ch >= 'a' && ch <= 'f')
           || (ch >= 'A' && ch <= 'F')
           || ch = 'p' || ch = 'P' ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> err c.ln "bad floating literal %S" text

let string_lit c =
  skip_ws c;
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> err c.ln "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some '0' -> Buffer.add_char b '\000'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '"' -> Buffer.add_char b '"'
        | Some 'x' ->
            advance c;
            let hex = Buffer.create 2 in
            (match peek c with
            | Some ch -> Buffer.add_char hex ch
            | None -> err c.ln "bad \\x escape");
            advance c;
            (match peek c with
            | Some ch -> Buffer.add_char hex ch
            | None -> err c.ln "bad \\x escape");
            (match int_of_string_opt ("0x" ^ Buffer.contents hex) with
            | Some n -> Buffer.add_char b (Char.chr n)
            | None -> err c.ln "bad \\x escape")
        | Some ch -> err c.ln "bad escape '\\%c'" ch
        | None -> err c.ln "bad escape at end of line");
        advance c;
        go ()
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents b

let register_operand ln tok =
  (* tok starts with '$' *)
  let body = String.sub tok 1 (String.length tok - 1) in
  match Alpha.Reg.of_fname body with
  | Some f when body <> "fp" -> Src.O_freg f
  | Some _ | None -> (
      match Alpha.Reg.of_name tok with
      | Some r -> Src.O_reg r
      | None -> err ln "unknown register %S" tok)

let operand c =
  skip_ws c;
  match peek c with
  | None -> err c.ln "expected operand"
  | Some '(' ->
      (* (reg) = 0(reg) *)
      advance c;
      let tok = ident c in
      expect c ')';
      (match register_operand c.ln tok with
      | Src.O_reg r -> Src.O_mem (0, r)
      | Src.O_freg _ -> err c.ln "base register must be an integer register"
      | _ -> assert false)
  | Some ch when ch = '-' || ch = '+' || (ch >= '0' && ch <= '9') ->
      (* Number, possibly float, possibly disp(reg). *)
      let looks_float =
        (* scan ahead for '.' or exponent before a delimiter *)
        let rec scan i seen_x =
          if i >= String.length c.s then false
          else
            match c.s.[i] with
            | '.' -> true
            | ('e' | 'E' | 'p' | 'P') when not seen_x -> true
            | 'x' | 'X' -> scan (i + 1) true
            | ch
              when (ch >= '0' && ch <= '9')
                   || (ch >= 'a' && ch <= 'f')
                   || (ch >= 'A' && ch <= 'F')
                   || ch = '-' || ch = '+' ->
                scan (i + 1) seen_x
            | _ -> false
        in
        scan c.pos false
      in
      if looks_float then Src.O_fimm (float_number c)
      else begin
        skip_ws c;
        let start = c.pos in
        if peek c = Some '-' || peek c = Some '+' then advance c;
        let rec go () =
          match peek c with
          | Some ch
            when (ch >= '0' && ch <= '9')
                 || (ch >= 'a' && ch <= 'f')
                 || (ch >= 'A' && ch <= 'F')
                 || ch = 'x' || ch = 'X' ->
              advance c;
              go ()
          | Some _ | None -> ()
        in
        go ();
        let text = String.sub c.s start (c.pos - start) in
        match int_of_string_opt text with
        | Some n ->
            if try_char c '(' then begin
              let tok = ident c in
              expect c ')';
              match register_operand c.ln tok with
              | Src.O_reg r -> Src.O_mem (n, r)
              | Src.O_freg _ ->
                  err c.ln "base register must be an integer register"
              | _ -> assert false
            end
            else Src.O_imm n
        | None -> (
            (* too big for OCaml's native int (|v| >= 2^62): keep the
               full 64-bit value *)
            match Int64.of_string_opt text with
            | Some v -> Src.O_imm64 v
            | None -> err c.ln "bad number %S" text)
      end
  | Some ch when is_ident_start ch ->
      let tok = ident c in
      if tok.[0] = '$' then register_operand c.ln tok
      else begin
        (* symbol with optional +off, never followed by '(' in our syntax *)
        skip_ws c;
        match peek c with
        | Some ('+' | '-') ->
            let off = number c in
            Src.O_sym (tok, off)
        | Some _ | None -> Src.O_sym (tok, 0)
      end
  | Some ch -> err c.ln "unexpected character '%c'" ch

let operands c =
  if at_end c then []
  else begin
    let rec go acc =
      let o = operand c in
      if try_char c ',' then go (o :: acc) else List.rev (o :: acc)
    in
    go []
  end

let strip_comment line =
  let n = String.length line in
  let b = Buffer.create n in
  let rec go i in_str =
    if i >= n then ()
    else
      match line.[i] with
      | '#' when not in_str -> ()
      | '"' ->
          Buffer.add_char b '"';
          go (i + 1) (not in_str)
      | '\\' when in_str && i + 1 < n ->
          Buffer.add_char b '\\';
          Buffer.add_char b line.[i + 1];
          go (i + 2) in_str
      | ch ->
          Buffer.add_char b ch;
          go (i + 1) in_str
  in
  go 0 false;
  Buffer.contents b

let int_list c =
  let rec go acc =
    let n = number c in
    if try_char c ',' then go (n :: acc) else List.rev (n :: acc)
  in
  go []

let float_list c =
  let rec go acc =
    let f = float_number c in
    if try_char c ',' then go (f :: acc) else List.rev (f :: acc)
  in
  go []

let directive c name =
  let ln = c.ln in
  match name with
  | ".text" -> Src.D_section Objfile.Types.Text
  | ".rdata" | ".rodata" -> Src.D_section Objfile.Types.Rdata
  | ".data" -> Src.D_section Objfile.Types.Data
  | ".bss" -> Src.D_section Objfile.Types.Bss
  | ".globl" | ".global" -> Src.D_globl (ident c)
  | ".quad" -> Src.D_quad (operands c)
  | ".long" -> Src.D_long (operands c)
  | ".byte" -> Src.D_byte (int_list c)
  | ".double" | ".t_floating" -> Src.D_double (float_list c)
  | ".ascii" -> Src.D_ascii (string_lit c, false)
  | ".asciiz" | ".string" -> Src.D_ascii (string_lit c, true)
  | ".space" | ".skip" -> Src.D_space (number c)
  | ".align" -> Src.D_align (number c)
  | ".ent" -> Src.D_ent (ident c)
  | ".end" -> Src.D_endp (ident c)
  | ".comm" ->
      let s = ident c in
      expect c ',';
      Src.D_comm (s, number c, Objfile.Types.Global)
  | ".lcomm" ->
      let s = ident c in
      expect c ',';
      Src.D_comm (s, number c, Objfile.Types.Local)
  | ".file" | ".loc" | ".frame" | ".mask" | ".prologue" | ".set" ->
      (* accepted and ignored, for compatibility *)
      c.pos <- String.length c.s;
      Src.D_align 0
  | _ -> err ln "unknown directive %s" name

let line ln text =
  let text = strip_comment text in
  let c = { s = text; pos = 0; ln } in
  let stmts = ref [] in
  let push it = stmts := { Src.line = ln; it } :: !stmts in
  let rec labels () =
    skip_ws c;
    match peek c with
    | Some ch when is_ident_start ch ->
        let save = c.pos in
        let tok = ident c in
        if try_char c ':' then begin
          if tok.[0] = '$' then err ln "label may not start with '$'";
          push (Src.L tok);
          labels ()
        end
        else begin
          c.pos <- save;
          body ()
        end
    | Some _ | None -> body ()
  and body () =
    if not (at_end c) then begin
      match peek c with
      | Some '.' ->
          let name = ident c in
          let d = directive c name in
          (match d with Src.D_align 0 -> () | _ -> push d)
      | Some _ ->
          let m = ident c in
          push (Src.I (String.lowercase_ascii m, operands c))
      | None -> ()
    end;
    if not (at_end c) then err ln "trailing junk: %S" (String.sub c.s c.pos (String.length c.s - c.pos))
  in
  labels ();
  List.rev !stmts

let program source =
  let lines = String.split_on_char '\n' source in
  List.concat (List.mapi (fun i l -> line (i + 1) l) lines)
