(** Source-level assembly statements, as produced by the parser and by the
    Mini-C compiler's code generator. *)

type operand =
  | O_reg of Alpha.Reg.t
  | O_freg of Alpha.Reg.f
  | O_imm of int
  | O_imm64 of int64
      (** a full 64-bit immediate: used for constants whose magnitude
          exceeds OCaml's 63-bit native [int] (|v| >= 2^62), which
          [O_imm] silently wraps *)
  | O_fimm of float
  | O_mem of int * Alpha.Reg.t  (** [disp(reg)] *)
  | O_sym of string * int  (** [sym] or [sym+off]: an address or branch target *)

type item =
  | L of string  (** label definition *)
  | I of string * operand list  (** instruction or macro mnemonic *)
  | D_section of Objfile.Types.sec_id
  | D_globl of string
  | D_quad of operand list  (** [.quad]: numbers or [sym+off] addresses *)
  | D_long of operand list
  | D_byte of int list
  | D_double of float list
  | D_ascii of string * bool  (** contents, whether to append a NUL *)
  | D_space of int
  | D_align of int  (** align to [2^n] bytes *)
  | D_ent of string  (** begin procedure: marks the symbol as [Func] *)
  | D_endp of string  (** end procedure: records its size *)
  | D_comm of string * int * Objfile.Types.binding  (** [.bss] allocation *)

type stmt = { line : int; it : item }

val operand_to_string : operand -> string
val pp_operand : Format.formatter -> operand -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val print_program : Buffer.t -> stmt list -> unit
(** Render statements back to parsable assembly text (used to dump the
    Mini-C compiler's output). *)
