type operand =
  | O_reg of Alpha.Reg.t
  | O_freg of Alpha.Reg.f
  | O_imm of int
  | O_imm64 of int64
  | O_fimm of float
  | O_mem of int * Alpha.Reg.t
  | O_sym of string * int

type item =
  | L of string
  | I of string * operand list
  | D_section of Objfile.Types.sec_id
  | D_globl of string
  | D_quad of operand list
  | D_long of operand list
  | D_byte of int list
  | D_double of float list
  | D_ascii of string * bool
  | D_space of int
  | D_align of int
  | D_ent of string
  | D_endp of string
  | D_comm of string * int * Objfile.Types.binding

type stmt = { line : int; it : item }

let operand_to_string = function
  | O_reg r -> Alpha.Reg.dollar r
  | O_freg r -> "$f" ^ string_of_int r
  | O_imm n -> string_of_int n
  | O_imm64 v -> Int64.to_string v
  | O_fimm f -> Printf.sprintf "%h" f
  | O_mem (d, r) -> Printf.sprintf "%d(%s)" d (Alpha.Reg.dollar r)
  | O_sym (s, 0) -> s
  | O_sym (s, off) -> Printf.sprintf "%s%+d" s off

let pp_operand ppf o = Format.pp_print_string ppf (operand_to_string o)

let escape_ascii s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\000' -> Buffer.add_string b "\\0"
      | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string b (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let item_to_string = function
  | L l -> l ^ ":"
  | I (m, ops) ->
      Printf.sprintf "\t%s\t%s" m (String.concat ", " (List.map operand_to_string ops))
  | D_section sec -> "\t" ^ Objfile.Types.sec_name sec
  | D_globl s -> "\t.globl\t" ^ s
  | D_quad ops ->
      "\t.quad\t" ^ String.concat ", " (List.map operand_to_string ops)
  | D_long ops ->
      "\t.long\t" ^ String.concat ", " (List.map operand_to_string ops)
  | D_byte ns -> "\t.byte\t" ^ String.concat ", " (List.map string_of_int ns)
  | D_double fs ->
      "\t.double\t" ^ String.concat ", " (List.map (Printf.sprintf "%h") fs)
  | D_ascii (s, z) ->
      Printf.sprintf "\t%s\t\"%s\"" (if z then ".asciiz" else ".ascii") (escape_ascii s)
  | D_space n -> "\t.space\t" ^ string_of_int n
  | D_align n -> "\t.align\t" ^ string_of_int n
  | D_ent s -> "\t.ent\t" ^ s
  | D_endp s -> "\t.end\t" ^ s
  | D_comm (s, n, b) ->
      Printf.sprintf "\t%s\t%s, %d"
        (match b with Objfile.Types.Global -> ".comm" | Objfile.Types.Local -> ".lcomm")
        s n

let pp_stmt ppf s = Format.pp_print_string ppf (item_to_string s.it)

let print_program buf stmts =
  List.iter
    (fun s ->
      Buffer.add_string buf (item_to_string s.it);
      Buffer.add_char buf '\n')
    stmts
