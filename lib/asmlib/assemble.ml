open Objfile

exception Error of int * string

let err ln fmt = Printf.ksprintf (fun m -> raise (Error (ln, m))) fmt

(* Growable byte buffer that allows patching already-emitted words. *)
module Secbuf = struct
  type t = { mutable data : bytes; mutable len : int }

  let create () = { data = Bytes.create 256; len = 0 }

  let ensure b n =
    if b.len + n > Bytes.length b.data then begin
      let cap = max (2 * Bytes.length b.data) (b.len + n) in
      let data = Bytes.create cap in
      Bytes.blit b.data 0 data 0 b.len;
      b.data <- data
    end

  let add_byte b v =
    ensure b 1;
    Bytes.set b.data b.len (Char.chr (v land 0xFF));
    b.len <- b.len + 1

  let add_word b w =
    ensure b 4;
    Alpha.Code.write_word b.data b.len w;
    b.len <- b.len + 4

  let add_i64 b v =
    let v64 = Int64.of_int v in
    for i = 0 to 7 do
      add_byte b (Int64.to_int (Int64.shift_right_logical v64 (8 * i)) land 0xFF)
    done

  let add_i64_bits b (v : int64) =
    for i = 0 to 7 do
      add_byte b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
    done

  let add_string b s = String.iter (fun c -> add_byte b (Char.code c)) s

  let align b n =
    while b.len mod n <> 0 do
      add_byte b 0
    done

  let patch_word b off w = Alpha.Code.write_word b.data off w
  let read_word b off = Alpha.Code.read_word b.data off
  let contents b = Bytes.sub b.data 0 b.len
end

type patch_kind = P_br | P_hi | P_lo

type patch = {
  p_line : int;
  p_sec : Types.sec_id;
  p_off : int;
  p_kind : patch_kind;
  p_sym : string;
  p_add : int;
}

type state = {
  text : Secbuf.t;
  rdata : Secbuf.t;
  data : Secbuf.t;
  mutable bss_size : int;
  mutable cur : Types.sec_id;
  labels : (string, Types.sec_id * int) Hashtbl.t;
  globls : (string, unit) Hashtbl.t;
  ents : (string, unit) Hashtbl.t;
  sizes : (string, int) Hashtbl.t;
  mutable patches : patch list;
  mutable relocs : (Types.sec_id * Types.reloc) list;
  pool : (int64, string) Hashtbl.t;
  mutable pool_order : (int64 * string) list;
  mutable label_order : string list;
}

let fresh_state () =
  {
    text = Secbuf.create ();
    rdata = Secbuf.create ();
    data = Secbuf.create ();
    bss_size = 0;
    cur = Types.Text;
    labels = Hashtbl.create 64;
    globls = Hashtbl.create 16;
    ents = Hashtbl.create 16;
    sizes = Hashtbl.create 16;
    patches = [];
    relocs = [];
    pool = Hashtbl.create 16;
    pool_order = [];
    label_order = [];
  }

let buf_of st = function
  | Types.Text -> st.text
  | Types.Rdata -> st.rdata
  | Types.Data -> st.data
  | Types.Bss -> invalid_arg ".bss has no buffer"

let here st =
  match st.cur with
  | Types.Bss -> st.bss_size
  | sec -> (buf_of st sec).Secbuf.len

let define_label st ln name =
  if Hashtbl.mem st.labels name then err ln "duplicate label %S" name;
  Hashtbl.replace st.labels name (st.cur, here st);
  st.label_order <- name :: st.label_order

let add_patch st p = st.patches <- p :: st.patches
let add_reloc st sec r = st.relocs <- (sec, r) :: st.relocs

let emit_insn st ln insn =
  if st.cur <> Types.Text then err ln "instruction outside .text";
  Secbuf.add_word st.text (Alpha.Code.encode insn)

(* Intern a 64-bit literal in the read-only pool; returns its label. *)
let pool_label st (v : int64) =
  match Hashtbl.find_opt st.pool v with
  | Some l -> l
  | None ->
      let l = Printf.sprintf ".Lpool%d" (Hashtbl.length st.pool) in
      Hashtbl.replace st.pool v l;
      st.pool_order <- st.pool_order @ [ (v, l) ];
      l

let at = Alpha.Reg.at
let zero = Alpha.Reg.zero

(* ldah r, HI(sym)(base); used with a paired LO16 on the next insn *)
let emit_hi st ln ~reg ~base sym addend =
  add_patch st
    { p_line = ln; p_sec = Types.Text; p_off = st.text.Secbuf.len; p_kind = P_hi;
      p_sym = sym; p_add = addend };
  emit_insn st ln (Alpha.Insn.Mem { op = Ldah; ra = reg; rb = base; disp = 0 })

let emit_lo_mem st ln op ~reg ~base sym addend =
  add_patch st
    { p_line = ln; p_sec = Types.Text; p_off = st.text.Secbuf.len; p_kind = P_lo;
      p_sym = sym; p_add = addend };
  emit_insn st ln (Alpha.Insn.Mem { op; ra = reg; rb = base; disp = 0 })

(* lda r, sym : materialise the address of sym in r. *)
let emit_lda_sym st ln reg sym addend =
  emit_hi st ln ~reg ~base:zero sym addend;
  emit_lo_mem st ln Alpha.Insn.Lda ~reg ~base:reg sym addend

(* A memory operation on a global: op reg, sym -> ldah $at + op LO($at). *)
let emit_mem_sym st ln op reg sym addend =
  emit_hi st ln ~reg:at ~base:zero sym addend;
  emit_lo_mem st ln op ~reg ~base:at sym addend

let fits16 n = n >= -32768 && n <= 32767
let fits_hi_lo n = n >= -0x8000_0000 && n <= 0x7FFF_7FFF

(* Materialise an arbitrary 64-bit constant. *)
let emit_ldiq st ln reg n =
  if fits16 n then
    emit_insn st ln (Alpha.Insn.Mem { op = Lda; ra = reg; rb = zero; disp = n })
  else if fits_hi_lo n then begin
    let hi = (n + 0x8000) asr 16 in
    let lo = n - (hi lsl 16) in
    emit_insn st ln (Alpha.Insn.Mem { op = Ldah; ra = reg; rb = zero; disp = hi });
    emit_insn st ln (Alpha.Insn.Mem { op = Lda; ra = reg; rb = reg; disp = lo })
  end
  else begin
    let l = pool_label st (Int64.of_int n) in
    emit_mem_sym st ln Alpha.Insn.Ldq reg l 0
  end

(* Same, for constants that overflow OCaml's native int (|v| >= 2^62):
   always from the literal pool, where the value is kept as int64. *)
let emit_ldiq64 st ln reg v =
  if Int64.equal (Int64.of_int (Int64.to_int v)) v then
    emit_ldiq st ln reg (Int64.to_int v)
  else begin
    let l = pool_label st v in
    emit_mem_sym st ln Alpha.Insn.Ldq reg l 0
  end

let emit_ldit st ln freg x =
  let l = pool_label st (Int64.bits_of_float x) in
  emit_mem_sym st ln Alpha.Insn.Ldt freg l 0

(* Branch to a symbol: patched in pass 2 (or relocated). *)
let emit_branch st ln mk sym addend =
  add_patch st
    { p_line = ln; p_sec = Types.Text; p_off = st.text.Secbuf.len; p_kind = P_br;
      p_sym = sym; p_add = addend };
  emit_insn st ln (mk 0)

(* -- mnemonic tables ------------------------------------------------- *)

let mem_table =
  let open Alpha.Insn in
  [ ("lda", Lda); ("ldah", Ldah); ("ldbu", Ldbu); ("ldwu", Ldwu); ("ldl", Ldl);
    ("ldq", Ldq); ("ldq_u", Ldq_u); ("stb", Stb); ("stw", Stw); ("stl", Stl);
    ("stq", Stq); ("stq_u", Stq_u); ("ldt", Ldt); ("stt", Stt) ]

let opr_table =
  let open Alpha.Insn in
  List.map (fun op -> (opr_op_name op, op)) all_opr_ops

let fop_table =
  let open Alpha.Insn in
  List.map (fun op -> (fop_op_name op, op)) all_fop_ops

let cbr_table =
  let open Alpha.Insn in
  List.map (fun c -> (br_cond_name c, c)) all_br_conds

let fbr_table =
  let open Alpha.Insn in
  List.map (fun c -> (fbr_cond_name c, c)) all_fbr_conds

let reg ln = function
  | Src.O_reg r -> r
  | o -> err ln "expected integer register, got %s" (Src.operand_to_string o)

let freg ln = function
  | Src.O_freg r -> r
  | o -> err ln "expected floating register, got %s" (Src.operand_to_string o)

let special st ln m ops =
  let open Alpha.Insn in
  match (m, ops) with
  | "br", [ Src.O_sym (s, off) ] ->
      emit_branch st ln (fun disp -> Br { link = false; ra = zero; disp }) s off
  | "br", [ a; Src.O_sym (s, off) ] ->
      let ra = reg ln a in
      emit_branch st ln (fun disp -> Br { link = false; ra; disp }) s off
  | "bsr", [ Src.O_sym (s, off) ] ->
      emit_branch st ln (fun disp -> Br { link = true; ra = Alpha.Reg.ra; disp }) s off
  | "bsr", [ a; Src.O_sym (s, off) ] ->
      let ra = reg ln a in
      emit_branch st ln (fun disp -> Br { link = true; ra; disp }) s off
  | "jmp", [ a; Src.O_mem (0, rb) ] ->
      emit_insn st ln (Jump { kind = Jmp; ra = reg ln a; rb; hint = 0 })
  | "jsr", [ a; Src.O_mem (0, rb) ] ->
      emit_insn st ln (Jump { kind = Jsr; ra = reg ln a; rb; hint = 0 })
  | "ret", [] ->
      emit_insn st ln (Jump { kind = Ret; ra = zero; rb = Alpha.Reg.ra; hint = 1 })
  | "ret", [ a; Src.O_mem (0, rb) ] ->
      emit_insn st ln (Jump { kind = Ret; ra = reg ln a; rb; hint = 1 })
  | "ret", [ a; Src.O_mem (0, rb); Src.O_imm h ] ->
      emit_insn st ln (Jump { kind = Ret; ra = reg ln a; rb; hint = h })
  | "call_pal", [ Src.O_imm n ] -> emit_insn st ln (Call_pal n)
  | "nop", [] -> emit_insn st ln nop
  | "fnop", [] ->
      emit_insn st ln (Fop { op = Cpys; fa = Alpha.Reg.fzero; fb = Alpha.Reg.fzero; fc = Alpha.Reg.fzero })
  | "mov", [ Src.O_reg a; b ] ->
      emit_insn st ln (Opr { op = Bis; ra = zero; rb = Reg a; rc = reg ln b })
  | "mov", [ Src.O_imm n; b ] -> emit_ldiq st ln (reg ln b) n
  | "mov", [ Src.O_imm64 v; b ] -> emit_ldiq64 st ln (reg ln b) v
  | "clr", [ a ] -> emit_insn st ln (Opr { op = Bis; ra = zero; rb = Reg zero; rc = reg ln a })
  | "not", [ a; b ] ->
      emit_insn st ln (Opr { op = Ornot; ra = zero; rb = Reg (reg ln a); rc = reg ln b })
  | "negq", [ a; b ] ->
      emit_insn st ln (Opr { op = Subq; ra = zero; rb = Reg (reg ln a); rc = reg ln b })
  | "sextl", [ a; b ] ->
      emit_insn st ln (Opr { op = Addl; ra = reg ln a; rb = Imm 0; rc = reg ln b })
  | "ldiq", [ a; Src.O_imm n ] -> emit_ldiq st ln (reg ln a) n
  | "ldiq", [ a; Src.O_imm64 v ] -> emit_ldiq64 st ln (reg ln a) v
  | "ldiq", [ a; Src.O_sym (s, off) ] -> emit_lda_sym st ln (reg ln a) s off
  | "ldit", [ a; Src.O_fimm x ] -> emit_ldit st ln (freg ln a) x
  | "ldit", [ a; Src.O_imm n ] -> emit_ldit st ln (freg ln a) (float_of_int n)
  | "fmov", [ a; b ] ->
      let fa = freg ln a in
      emit_insn st ln (Fop { op = Cpys; fa; fb = fa; fc = freg ln b })
  | "fneg", [ a; b ] ->
      let fa = freg ln a in
      emit_insn st ln (Fop { op = Cpysn; fa; fb = fa; fc = freg ln b })
  | "fclr", [ a ] ->
      emit_insn st ln
        (Fop { op = Cpys; fa = Alpha.Reg.fzero; fb = Alpha.Reg.fzero; fc = freg ln a })
  | _ -> err ln "unknown instruction %S" m

let instruction st ln m ops =
  let open Alpha.Insn in
  match (List.assoc_opt m mem_table, ops) with
  | Some Lda, [ a; Src.O_imm n ] -> emit_ldiq st ln (reg ln a) n
  | Some Lda, [ a; Src.O_sym (s, off) ] -> emit_lda_sym st ln (reg ln a) s off
  | Some op, [ a; Src.O_mem (d, rb) ] ->
      let ra = if mem_is_fp op then freg ln a else reg ln a in
      if not (Alpha.Code.fits_disp16 d) then err ln "displacement %d out of range" d;
      emit_insn st ln (Mem { op; ra; rb; disp = d })
  | Some op, [ a; Src.O_sym (s, off) ] when op <> Ldah ->
      let ra = if mem_is_fp op then freg ln a else reg ln a in
      emit_mem_sym st ln op ra s off
  | Some _, _ -> err ln "bad operands for %s" m
  | None, _ -> (
      match (List.assoc_opt m opr_table, ops) with
      | Some op, [ a; b; c ] ->
          let rb =
            match b with
            | Src.O_reg r -> Reg r
            | Src.O_imm n ->
                if n < 0 || n > 255 then
                  err ln "literal %d out of range 0..255 (use ldiq)" n
                else Imm n
            | o -> err ln "bad operand %s" (Src.operand_to_string o)
          in
          emit_insn st ln (Opr { op; ra = reg ln a; rb; rc = reg ln c })
      | Some _, _ -> err ln "bad operands for %s" m
      | None, _ -> (
          match (List.assoc_opt m fop_table, ops) with
          | Some op, [ a; b; c ] ->
              emit_insn st ln (Fop { op; fa = freg ln a; fb = freg ln b; fc = freg ln c })
          | Some _, _ -> err ln "bad operands for %s" m
          | None, _ -> (
              match (List.assoc_opt m cbr_table, ops) with
              | Some cond, [ a; Src.O_sym (s, off) ] ->
                  let ra = reg ln a in
                  emit_branch st ln (fun disp -> Cbr { cond; ra; disp }) s off
              | Some cond, [ a; Src.O_imm d ] ->
                  emit_insn st ln (Cbr { cond; ra = reg ln a; disp = d })
              | Some _, _ -> err ln "bad operands for %s" m
              | None, _ -> (
                  match (List.assoc_opt m fbr_table, ops) with
                  | Some cond, [ a; Src.O_sym (s, off) ] ->
                      let fa = freg ln a in
                      emit_branch st ln (fun disp -> Fbr { cond; fa; disp }) s off
                  | Some _, _ -> err ln "bad operands for %s" m
                  | None, _ -> special st ln m ops))))

let datum_quad st ln sec o =
  let b = buf_of st sec in
  match o with
  | Src.O_imm n -> Secbuf.add_i64 b n
  | Src.O_imm64 v -> Secbuf.add_i64_bits b v
  | Src.O_fimm x -> Secbuf.add_i64_bits b (Int64.bits_of_float x)
  | Src.O_sym (s, off) ->
      add_reloc st sec
        { Types.r_offset = b.Secbuf.len; r_kind = Types.R_quad64; r_symbol = s; r_addend = off };
      Secbuf.add_i64 b 0
  | o -> err ln "bad .quad operand %s" (Src.operand_to_string o)

let datum_long st ln sec o =
  let b = buf_of st sec in
  match o with
  | Src.O_imm n ->
      Secbuf.add_word b (n land 0xFFFFFFFF)
  | Src.O_sym (s, off) ->
      add_reloc st sec
        { Types.r_offset = b.Secbuf.len; r_kind = Types.R_long32; r_symbol = s; r_addend = off };
      Secbuf.add_word b 0
  | o -> err ln "bad .long operand %s" (Src.operand_to_string o)

let stmt st { Src.line = ln; it } =
  match it with
  | Src.L name -> define_label st ln name
  | Src.I (m, ops) -> instruction st ln m ops
  | Src.D_section sec -> st.cur <- sec
  | Src.D_globl s -> Hashtbl.replace st.globls s ()
  | Src.D_quad ops ->
      if st.cur = Types.Bss then err ln ".quad in .bss";
      Secbuf.align (buf_of st st.cur) 8;
      List.iter (datum_quad st ln st.cur) ops
  | Src.D_long ops ->
      if st.cur = Types.Bss then err ln ".long in .bss";
      Secbuf.align (buf_of st st.cur) 4;
      List.iter (datum_long st ln st.cur) ops
  | Src.D_byte ns ->
      if st.cur = Types.Bss then err ln ".byte in .bss";
      List.iter (fun n -> Secbuf.add_byte (buf_of st st.cur) n) ns
  | Src.D_double fs ->
      if st.cur = Types.Bss then err ln ".double in .bss";
      Secbuf.align (buf_of st st.cur) 8;
      List.iter (fun f -> Secbuf.add_i64_bits (buf_of st st.cur) (Int64.bits_of_float f)) fs
  | Src.D_ascii (s, z) ->
      if st.cur = Types.Bss then err ln ".ascii in .bss";
      let b = buf_of st st.cur in
      Secbuf.add_string b s;
      if z then Secbuf.add_byte b 0
  | Src.D_space n ->
      if st.cur = Types.Bss then st.bss_size <- st.bss_size + n
      else
        for _ = 1 to n do
          Secbuf.add_byte (buf_of st st.cur) 0
        done
  | Src.D_align n ->
      if n > 0 then begin
        let bytes = 1 lsl n in
        match st.cur with
        | Types.Bss ->
            st.bss_size <- (st.bss_size + bytes - 1) / bytes * bytes
        | sec -> Secbuf.align (buf_of st sec) bytes
      end
  | Src.D_ent s ->
      Hashtbl.replace st.ents s ()
  | Src.D_endp s -> (
      match Hashtbl.find_opt st.labels s with
      | Some (Types.Text, off) -> Hashtbl.replace st.sizes s (st.text.Secbuf.len - off)
      | Some _ | None -> ())
  | Src.D_comm (s, size, binding) ->
      st.bss_size <- (st.bss_size + 7) / 8 * 8;
      Hashtbl.replace st.labels s (Types.Bss, st.bss_size);
      st.label_order <- s :: st.label_order;
      st.bss_size <- st.bss_size + size;
      if binding = Types.Global then Hashtbl.replace st.globls s ();
      Hashtbl.replace st.sizes s size

let flush_pool st =
  Secbuf.align st.rdata 8;
  List.iter
    (fun (v, l) ->
      Hashtbl.replace st.labels l (Types.Rdata, st.rdata.Secbuf.len);
      st.label_order <- l :: st.label_order;
      Secbuf.add_i64_bits st.rdata v)
    st.pool_order

(* Pass 2: resolve branch patches to in-module text labels; everything else
   becomes a relocation. *)
let resolve st =
  List.iter
    (fun p ->
      let reloc kind =
        add_reloc st p.p_sec
          { Types.r_offset = p.p_off; r_kind = kind; r_symbol = p.p_sym; r_addend = p.p_add }
      in
      match p.p_kind with
      | P_hi -> reloc Types.R_hi16
      | P_lo -> reloc Types.R_lo16
      | P_br -> (
          match Hashtbl.find_opt st.labels p.p_sym with
          | Some (Types.Text, target) ->
              let disp = (target + p.p_add - (p.p_off + 4)) / 4 in
              if not (Alpha.Code.fits_disp21 disp) then
                err p.p_line "branch to %s out of range" p.p_sym;
              let w = Secbuf.read_word st.text p.p_off in
              let w = (w land lnot 0x1FFFFF) lor (disp land 0x1FFFFF) in
              Secbuf.patch_word st.text p.p_off w
          | Some (sec, _) ->
              err p.p_line "branch to non-text symbol %s (%s)" p.p_sym (Types.sec_name sec)
          | None -> reloc Types.R_br21))
    (List.rev st.patches)

let build_symbols st =
  let defined = List.rev st.label_order in
  let syms =
    List.map
      (fun name ->
        let sec, off = Hashtbl.find st.labels name in
        let binding =
          if Hashtbl.mem st.globls name then Types.Global else Types.Local
        in
        let s_type =
          if Hashtbl.mem st.ents name then Types.Func
          else if sec = Types.Text then Types.Notype
          else Types.Object
        in
        {
          Types.s_name = name;
          s_binding = binding;
          s_def = Types.Defined (sec, off);
          s_type;
          s_size = Option.value ~default:0 (Hashtbl.find_opt st.sizes name);
        })
      defined
  in
  (* referenced but not defined here: undefined globals *)
  let undef = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      if not (Hashtbl.mem st.labels r.Types.r_symbol) then
        Hashtbl.replace undef r.Types.r_symbol ())
    st.relocs;
  let undef_syms =
    Hashtbl.fold
      (fun name () acc ->
        {
          Types.s_name = name;
          s_binding = Types.Global;
          s_def = Types.Undefined;
          s_type = Types.Notype;
          s_size = 0;
        }
        :: acc)
      undef []
  in
  syms @ List.sort (fun a b -> compare a.Types.s_name b.Types.s_name) undef_syms

let unit_of_stmts ~name stmts =
  let st = fresh_state () in
  List.iter (stmt st) stmts;
  flush_pool st;
  resolve st;
  {
    Unit_file.u_name = name;
    u_text = Secbuf.contents st.text;
    u_rdata = Secbuf.contents st.rdata;
    u_data = Secbuf.contents st.data;
    u_bss_size = st.bss_size;
    u_relocs = List.rev st.relocs;
    u_symbols = build_symbols st;
  }

let assemble ~name source =
  match Parse.program source with
  | stmts -> unit_of_stmts ~name stmts
  | exception Parse.Error (ln, m) -> raise (Error (ln, m))
