open Objfile

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type input = Unit of Unit_file.t | Lib of Archive.t

let rdata_base = 0x1380_0000

(* -- archive member selection ---------------------------------------- *)

let select_units inputs =
  let explicit =
    List.filter_map (function Unit u -> Some u | Lib _ -> None) inputs
  in
  let libs = List.filter_map (function Lib a -> Some a | Unit _ -> None) inputs in
  let defined = Hashtbl.create 64 in
  let undefined = Hashtbl.create 64 in
  let note_unit u =
    List.iter
      (fun s ->
        if s.Types.s_binding = Types.Global && s.Types.s_def <> Types.Undefined then begin
          Hashtbl.replace defined s.Types.s_name ();
          Hashtbl.remove undefined s.Types.s_name
        end)
      u.Unit_file.u_symbols;
    List.iter
      (fun name ->
        if not (Hashtbl.mem defined name) then Hashtbl.replace undefined name ())
      (Unit_file.undefined_symbols u)
  in
  List.iter note_unit explicit;
  let selected = ref (List.rev explicit) in
  let progress = ref true in
  while !progress && Hashtbl.length undefined > 0 do
    progress := false;
    let needs = Hashtbl.fold (fun n () acc -> n :: acc) undefined [] in
    List.iter
      (fun name ->
        if Hashtbl.mem undefined name then
          List.iter
            (fun lib ->
              if Hashtbl.mem undefined name then
                match Archive.members_defining lib name with
                | [] -> ()
                | m :: _ ->
                    selected := m :: !selected;
                    note_unit m;
                    progress := true)
            libs)
      needs
  done;
  List.rev !selected

(* -- layout ----------------------------------------------------------- *)

type placement = {
  pl_units : (Unit_file.t * int array) list;
  pl_sizes : int array;
}

let sec_index = function Types.Text -> 0 | Types.Rdata -> 1 | Types.Data -> 2 | Types.Bss -> 3

let align_up n a = (n + a - 1) / a * a

let layout units =
  let cursors = [| 0; 0; 0; 0 |] in
  let pl_units =
    List.map
      (fun u ->
        let offs = Array.make 4 0 in
        List.iter
          (fun sec ->
            let i = sec_index sec in
            cursors.(i) <- align_up cursors.(i) 8;
            offs.(i) <- cursors.(i);
            cursors.(i) <- cursors.(i) + Unit_file.section_size u sec)
          Types.all_sections;
        (u, offs))
      units
  in
  { pl_units; pl_sizes = Array.copy cursors }

type bases = { b_text : int; b_rdata : int; b_data : int; b_bss : int }

let bases_for pl ~text ~rdata ~data =
  { b_text = text; b_rdata = rdata; b_data = data;
    b_bss = align_up (data + pl.pl_sizes.(2)) 8 }

type image = {
  i_text : bytes;
  i_rdata : bytes;
  i_data : bytes;
  i_bss_size : int;
  i_globals : (string * Exe.sym) list;
  i_code_refs : Exe.code_ref list;
}

let base_of bases sec =
  match sec with
  | Types.Text -> bases.b_text
  | Types.Rdata -> bases.b_rdata
  | Types.Data -> bases.b_data
  | Types.Bss -> bases.b_bss

(* -- relocation application ------------------------------------------ *)

let emit ?(symbol_overrides = []) pl bases =
  let text_lo = bases.b_text and text_hi = bases.b_text + pl.pl_sizes.(0) in
  let code_refs = ref [] in
  let note_code_ref kind addr target =
    if target >= text_lo && target < text_hi then
      code_refs := { Exe.cr_kind = kind; cr_addr = addr; cr_target = target } :: !code_refs
  in
  let text = Bytes.make pl.pl_sizes.(0) '\000' in
  let rdata = Bytes.make pl.pl_sizes.(1) '\000' in
  let data = Bytes.make pl.pl_sizes.(2) '\000' in
  (* copy section contents *)
  List.iter
    (fun (u, offs) ->
      let copy sec dst =
        let b = Unit_file.section_bytes u sec in
        Bytes.blit b 0 dst offs.(sec_index sec) (Bytes.length b)
      in
      copy Types.Text text;
      copy Types.Rdata rdata;
      copy Types.Data data)
    pl.pl_units;
  (* global symbol addresses *)
  let globals = Hashtbl.create 64 in
  let exported = ref [] in
  List.iter
    (fun (u, offs) ->
      List.iter
        (fun s ->
          match s.Types.s_def with
          | Types.Undefined -> ()
          | Types.Defined (sec, off) ->
              let addr = base_of bases sec + offs.(sec_index sec) + off in
              let xsym =
                { Exe.x_name = s.Types.s_name; x_addr = addr;
                  x_type = s.Types.s_type; x_size = s.Types.s_size }
              in
              if s.Types.s_binding = Types.Global then begin
                if Hashtbl.mem globals s.Types.s_name then
                  fail "multiple definition of %s (in %s)" s.Types.s_name
                    u.Unit_file.u_name;
                Hashtbl.replace globals s.Types.s_name addr;
                exported := (s.Types.s_name, xsym) :: !exported
              end
              else if s.Types.s_type = Types.Func then
                exported := (s.Types.s_name, xsym) :: !exported)
        u.Unit_file.u_symbols)
    pl.pl_units;
  (* apply relocations *)
  let buffer_of sec =
    match sec with
    | Types.Text -> text
    | Types.Rdata -> rdata
    | Types.Data -> data
    | Types.Bss -> fail "relocation in .bss"
  in
  List.iter
    (fun (u, offs) ->
      let local_addr name =
        match Unit_file.find_symbol u name with
        | Some { Types.s_def = Types.Defined (sec, off); s_binding = Types.Local; _ } ->
            Some (base_of bases sec + offs.(sec_index sec) + off)
        | Some _ | None -> None
      in
      let resolve name =
        match List.assoc_opt name symbol_overrides with
        | Some a -> a
        | None -> (
            match local_addr name with
            | Some a -> a
            | None -> (
                match Hashtbl.find_opt globals name with
                | Some a -> a
                | None ->
                    fail "undefined symbol %s (referenced from %s)" name
                      u.Unit_file.u_name))
      in
      List.iter
        (fun (sec, r) ->
          let buf = buffer_of sec in
          let off = offs.(sec_index sec) + r.Types.r_offset in
          let s = resolve r.Types.r_symbol + r.Types.r_addend in
          let field_addr = base_of bases sec + off in
          match r.Types.r_kind with
          | Types.R_br21 ->
              let pc = base_of bases sec + off in
              let disp = (s - (pc + 4)) / 4 in
              if not (Alpha.Code.fits_disp21 disp) then
                fail "branch to %s out of range from %s" r.Types.r_symbol
                  u.Unit_file.u_name;
              let w = Alpha.Code.read_word buf off in
              Alpha.Code.write_word buf off
                ((w land lnot 0x1FFFFF) lor (disp land 0x1FFFFF))
          | Types.R_hi16 ->
              note_code_ref Exe.Cr_hi field_addr s;
              let hi = ((s + 0x8000) asr 16) land 0xFFFF in
              let w = Alpha.Code.read_word buf off in
              Alpha.Code.write_word buf off ((w land lnot 0xFFFF) lor hi)
          | Types.R_lo16 ->
              note_code_ref Exe.Cr_lo field_addr s;
              let lo = s land 0xFFFF in
              let w = Alpha.Code.read_word buf off in
              Alpha.Code.write_word buf off ((w land lnot 0xFFFF) lor lo)
          | Types.R_quad64 ->
              note_code_ref Exe.Cr_quad field_addr s;
              let s64 = Int64.of_int s in
              for i = 0 to 7 do
                Bytes.set buf (off + i)
                  (Char.chr
                     (Int64.to_int (Int64.shift_right_logical s64 (8 * i)) land 0xFF))
              done
          | Types.R_long32 ->
              note_code_ref Exe.Cr_long field_addr s;
              Alpha.Code.write_word buf off (s land 0xFFFFFFFF))
        u.Unit_file.u_relocs)
    pl.pl_units;
  {
    i_text = text;
    i_rdata = rdata;
    i_data = data;
    i_bss_size = pl.pl_sizes.(3);
    i_globals = List.rev !exported;
    i_code_refs = List.rev !code_refs;
  }

let link ?(text_base = Exe.text_base) ?(rdata_base = rdata_base)
    ?(data_base = Exe.data_base) ?(entry = "__start") inputs =
  let units = select_units inputs in
  if units = [] then fail "nothing to link";
  let pl = layout units in
  let bases = bases_for pl ~text:text_base ~rdata:rdata_base ~data:data_base in
  if text_base + pl.pl_sizes.(0) > rdata_base then
    fail "text overflows into .rdata (%#x bytes of text)" pl.pl_sizes.(0);
  if rdata_base + pl.pl_sizes.(1) > data_base then
    fail ".rdata overflows into .data";
  let break_addr = align_up (bases.b_bss + pl.pl_sizes.(3)) 8 in
  let img = emit ~symbol_overrides:[ ("_end", break_addr) ] pl bases in
  let entry_addr =
    match List.assoc_opt entry img.i_globals with
    | Some s -> s.Exe.x_addr
    | None -> fail "entry symbol %s undefined" entry
  in
  let segs =
    [
      { Exe.seg_vaddr = bases.b_text; seg_bytes = img.i_text; seg_bss = 0;
        seg_write = false };
      { Exe.seg_vaddr = bases.b_rdata; seg_bytes = img.i_rdata; seg_bss = 0;
        seg_write = false };
      { Exe.seg_vaddr = bases.b_data; seg_bytes = img.i_data;
        seg_bss = img.i_bss_size; seg_write = true };
    ]
  in
  let segs = List.filter (fun s -> Bytes.length s.Exe.seg_bytes + s.Exe.seg_bss > 0) segs in
  {
    Exe.x_entry = entry_addr;
    x_segs = segs;
    x_symbols = List.map snd img.i_globals;
    x_text_start = bases.b_text;
    x_text_size = Bytes.length img.i_text;
    x_data_start = bases.b_data;
    x_break = break_addr;
    x_code_refs = img.i_code_refs;
  }
