open Ast

exception Error of int * string

type state = { toks : Lexer.t array; mutable pos : int }

let err st fmt =
  let ln = st.toks.(min st.pos (Array.length st.toks - 1)).Lexer.line in
  Printf.ksprintf (fun m -> raise (Error (ln, m))) fmt

let peek st = st.toks.(st.pos).Lexer.tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Lexer.tok else Lexer.EOF

let line st = st.toks.(st.pos).Lexer.line
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | t -> err st "expected %S, got %s" p (Lexer.token_to_string t)

let try_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
      advance st;
      true
  | _ -> false

let eat_kw st k =
  match peek st with
  | Lexer.KW q when q = k -> advance st
  | t -> err st "expected %S, got %s" k (Lexer.token_to_string t)

let ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> err st "expected identifier, got %s" (Lexer.token_to_string t)

let starts_type st =
  match peek st with
  | Lexer.KW ("long" | "int" | "char" | "double" | "void" | "struct") -> true
  | _ -> false

let base_type st =
  match next st with
  | Lexer.KW "long" | Lexer.KW "int" -> Tlong
  | Lexer.KW "char" -> Tchar
  | Lexer.KW "double" -> Tdouble
  | Lexer.KW "void" -> Tvoid
  | Lexer.KW "struct" -> Tstruct (ident st)
  | t -> err st "expected a type, got %s" (Lexer.token_to_string t)

let rec stars st ty = if try_punct st "*" then stars st (Tptr ty) else ty

(* An abstract type (casts, sizeof, prototype parameters): base, stars,
   optionally the function-pointer form ( \* )(args). *)
and abstract_type st =
  let ty = stars st (base_type st) in
  if peek st = Lexer.PUNCT "(" && peek2 st = Lexer.PUNCT "*" then begin
    eat_punct st "(";
    eat_punct st "*";
    eat_punct st ")";
    let args, va = param_types st in
    Tptr (Tfun (ty, args, va))
  end
  else ty

and param_types st =
  eat_punct st "(";
  if try_punct st ")" then ([], false)
  else begin
    let va = ref false in
    let rec go acc =
      if try_punct st "..." then begin
        va := true;
        eat_punct st ")";
        List.rev acc
      end
      else begin
        let ty = abstract_type st in
        (* optional parameter name in prototypes *)
        (match peek st with Lexer.IDENT _ -> advance st | _ -> ());
        if try_punct st "," then go (ty :: acc)
        else begin
          eat_punct st ")";
          List.rev (ty :: acc)
        end
      end
    in
    let tys = go [] in
    (* "(void)" means no parameters *)
    let tys = match tys with [ Tvoid ] -> [] | tys -> tys in
    (tys, !va)
  end

(* -- expressions ------------------------------------------------------ *)

let mk ln e = { eline = ln; e }

let rec expr st = assignment st

and assignment st =
  let ln = line st in
  let lhs = conditional st in
  match peek st with
  | Lexer.PUNCT "=" ->
      advance st;
      mk ln (Eassign (lhs, assignment st))
  | Lexer.PUNCT ("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=") ->
      let p = match next st with Lexer.PUNCT p -> p | _ -> assert false in
      let op =
        match p with
        | "+=" -> Add | "-=" -> Sub | "*=" -> Mul | "/=" -> Div | "%=" -> Mod
        | "&=" -> Band | "|=" -> Bor | "^=" -> Bxor | "<<=" -> Shl | _ -> Shr
      in
      mk ln (Eassign_op (op, lhs, assignment st))
  | _ -> lhs

and conditional st =
  let ln = line st in
  let c = logor st in
  if try_punct st "?" then begin
    let t = expr st in
    eat_punct st ":";
    let e = conditional st in
    mk ln (Econd (c, t, e))
  end
  else c

and logor st =
  let ln = line st in
  let rec go acc =
    if try_punct st "||" then go (mk ln (Elogor (acc, logand st))) else acc
  in
  go (logand st)

and logand st =
  let ln = line st in
  let rec go acc =
    if try_punct st "&&" then go (mk ln (Elogand (acc, bitor st))) else acc
  in
  go (bitor st)

and binlevel st ops sub =
  let ln = line st in
  let rec go acc =
    match peek st with
    | Lexer.PUNCT p when List.mem_assoc p ops ->
        advance st;
        go (mk ln (Ebin (List.assoc p ops, acc, sub st)))
    | _ -> acc
  in
  go (sub st)

and bitor st = binlevel st [ ("|", Bor) ] bitxor
and bitxor st = binlevel st [ ("^", Bxor) ] bitand
and bitand st = binlevel st [ ("&", Band) ] equality
and equality st = binlevel st [ ("==", Eq); ("!=", Ne) ] relational

and relational st =
  binlevel st [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ] shift

and shift st = binlevel st [ ("<<", Shl); (">>", Shr) ] additive
and additive st = binlevel st [ ("+", Add); ("-", Sub) ] multiplicative
and multiplicative st = binlevel st [ ("*", Mul); ("/", Div); ("%", Mod) ] unary

and unary st =
  let ln = line st in
  match peek st with
  | Lexer.PUNCT "-" ->
      advance st;
      mk ln (Eun (Neg, unary st))
  | Lexer.PUNCT "+" ->
      advance st;
      unary st
  | Lexer.PUNCT "!" ->
      advance st;
      mk ln (Eun (Lognot, unary st))
  | Lexer.PUNCT "~" ->
      advance st;
      mk ln (Eun (Bitnot, unary st))
  | Lexer.PUNCT "*" ->
      advance st;
      mk ln (Ederef (unary st))
  | Lexer.PUNCT "&" ->
      advance st;
      mk ln (Eaddr (unary st))
  | Lexer.PUNCT "++" ->
      advance st;
      mk ln (Epre (Add, unary st))
  | Lexer.PUNCT "--" ->
      advance st;
      mk ln (Epre (Sub, unary st))
  | Lexer.KW "sizeof" ->
      advance st;
      if peek st = Lexer.PUNCT "(" && (match peek2 st with
                                       | Lexer.KW ("long" | "int" | "char" | "double" | "void" | "struct") -> true
                                       | _ -> false)
      then begin
        eat_punct st "(";
        let ty = abstract_type st in
        let ty = array_suffix st ty in
        eat_punct st ")";
        mk ln (Esizeof_ty ty)
      end
      else mk ln (Esizeof (unary st))
  | Lexer.PUNCT "(" when (match peek2 st with
                          | Lexer.KW ("long" | "int" | "char" | "double" | "void" | "struct") -> true
                          | _ -> false) ->
      eat_punct st "(";
      let ty = abstract_type st in
      eat_punct st ")";
      mk ln (Ecast (ty, unary st))
  | _ -> postfix st

and array_suffix st ty =
  if peek st = Lexer.PUNCT "[" then begin
    eat_punct st "[";
    let e = conditional st in
    let n =
      match const_eval e with
      | Some v -> Int64.to_int v
      | None -> err st "array size is not a constant expression"
    in
    if n <= 0 then err st "array size must be positive";
    eat_punct st "]";
    Tarr (array_suffix st ty, n)
  end
  else ty

and postfix st =
  let ln = line st in
  let rec go acc =
    match peek st with
    | Lexer.PUNCT "[" ->
        advance st;
        let i = expr st in
        eat_punct st "]";
        go (mk ln (Eindex (acc, i)))
    | Lexer.PUNCT "(" ->
        advance st;
        let args =
          if try_punct st ")" then []
          else begin
            let rec args acc =
              let a = assignment st in
              if try_punct st "," then args (a :: acc)
              else begin
                eat_punct st ")";
                List.rev (a :: acc)
              end
            in
            args []
          end
        in
        go (mk ln (Ecall (acc, args)))
    | Lexer.PUNCT "." ->
        advance st;
        go (mk ln (Emember (acc, ident st)))
    | Lexer.PUNCT "->" ->
        advance st;
        go (mk ln (Earrow (acc, ident st)))
    | Lexer.PUNCT "++" ->
        advance st;
        go (mk ln (Epost (Add, acc)))
    | Lexer.PUNCT "--" ->
        advance st;
        go (mk ln (Epost (Sub, acc)))
    | _ -> acc
  in
  go (primary st)

and primary st =
  let ln = line st in
  match next st with
  | Lexer.INT v -> mk ln (Enum v)
  | Lexer.FLOAT f -> mk ln (Efnum f)
  | Lexer.STRING s ->
      (* adjacent string literals concatenate *)
      let rec more acc =
        match peek st with
        | Lexer.STRING s2 ->
            advance st;
            more (acc ^ s2)
        | _ -> acc
      in
      mk ln (Estr (more s))
  | Lexer.CHAR c -> mk ln (Echar c)
  | Lexer.IDENT s -> mk ln (Eident s)
  | Lexer.PUNCT "(" ->
      let e = expr st in
      eat_punct st ")";
      e
  | t -> err st "unexpected token %s in expression" (Lexer.token_to_string t)

(* -- declarators ------------------------------------------------------ *)

(* Parse one declarator given the base type: returns (type, name). *)
let declarator st base =
  let ty = stars st base in
  if peek st = Lexer.PUNCT "(" && peek2 st = Lexer.PUNCT "*" then begin
    eat_punct st "(";
    eat_punct st "*";
    let name = ident st in
    eat_punct st ")";
    let args, va = param_types st in
    (Tptr (Tfun (ty, args, va)), name)
  end
  else begin
    let name = ident st in
    let ty = array_suffix st ty in
    (ty, name)
  end

(* -- statements -------------------------------------------------------- *)

let rec stmt st =
  let ln = line st in
  let s s' = { sline = ln; s = s' } in
  match peek st with
  | Lexer.PUNCT "{" -> s (Sblock (block st))
  | Lexer.KW "if" ->
      advance st;
      eat_punct st "(";
      let c = expr st in
      eat_punct st ")";
      let then_ = branch_body st in
      let else_ =
        if peek st = Lexer.KW "else" then begin
          advance st;
          branch_body st
        end
        else []
      in
      s (Sif (c, then_, else_))
  | Lexer.KW "while" ->
      advance st;
      eat_punct st "(";
      let c = expr st in
      eat_punct st ")";
      s (Swhile (c, branch_body st))
  | Lexer.KW "do" ->
      advance st;
      let body = branch_body st in
      eat_kw st "while";
      eat_punct st "(";
      let c = expr st in
      eat_punct st ")";
      eat_punct st ";";
      s (Sdo (body, c))
  | Lexer.KW "for" ->
      advance st;
      eat_punct st "(";
      let init =
        if try_punct st ";" then None
        else if starts_type st then begin
          let d = decl_stmt st in
          Some d
        end
        else begin
          let e = expr st in
          eat_punct st ";";
          Some { sline = ln; s = Sexpr e }
        end
      in
      let cond = if peek st = Lexer.PUNCT ";" then None else Some (expr st) in
      eat_punct st ";";
      let step = if peek st = Lexer.PUNCT ")" then None else Some (expr st) in
      eat_punct st ")";
      s (Sfor (init, cond, step, branch_body st))
  | Lexer.KW "return" ->
      advance st;
      if try_punct st ";" then s (Sreturn None)
      else begin
        let e = expr st in
        eat_punct st ";";
        s (Sreturn (Some e))
      end
  | Lexer.KW "break" ->
      advance st;
      eat_punct st ";";
      s Sbreak
  | Lexer.KW "continue" ->
      advance st;
      eat_punct st ";";
      s Scontinue
  | Lexer.KW ("long" | "int" | "char" | "double" | "void" | "struct") ->
      decl_stmt st
  | _ ->
      let e = expr st in
      eat_punct st ";";
      s (Sexpr e)

(* One declaration statement; multiple declarators expand into a block. *)
and decl_stmt st =
  let ln = line st in
  let base = base_type st in
  let rec go acc =
    let ty, name = declarator st base in
    let init = if try_punct st "=" then Some (assignment st) else None in
    let d = { sline = ln; s = Sdecl (ty, name, init) } in
    if try_punct st "," then go (d :: acc)
    else begin
      eat_punct st ";";
      List.rev (d :: acc)
    end
  in
  match go [] with
  | [ d ] -> d
  | ds -> { sline = ln; s = Sseq ds }

and branch_body st =
  if try_punct st "{" then begin
    let rec go acc =
      if try_punct st "}" then List.rev acc else go (stmt st :: acc)
    in
    go []
  end
  else [ stmt st ]

and block st =
  eat_punct st "{";
  let rec go acc = if try_punct st "}" then List.rev acc else go (stmt st :: acc) in
  go []

(* -- top level --------------------------------------------------------- *)

let params st =
  eat_punct st "(";
  if try_punct st ")" then ([], false)
  else begin
    let va = ref false in
    let rec go acc =
      if try_punct st "..." then begin
        va := true;
        eat_punct st ")";
        List.rev acc
      end
      else begin
        let base = base_type st in
        if base = Tvoid && peek st = Lexer.PUNCT ")" then begin
          advance st;
          List.rev acc
        end
        else begin
          let ty, name = declarator st base in
          (* array parameters decay to pointers *)
          let ty = match ty with Tarr (t, _) -> Tptr t | t -> t in
          if try_punct st "," then go ((ty, name) :: acc)
          else begin
            eat_punct st ")";
            List.rev ((ty, name) :: acc)
          end
        end
      end
    in
    let ps = go [] in
    (ps, !va)
  end

let initializer_ st =
  if try_punct st "{" then begin
    if try_punct st "}" then Ilist []
    else begin
      let rec go acc =
        let e = assignment st in
        if try_punct st "," then
          if peek st = Lexer.PUNCT "}" then begin
            advance st;
            List.rev (e :: acc)
          end
          else go (e :: acc)
        else begin
          eat_punct st "}";
          List.rev (e :: acc)
        end
      in
      Ilist (go [])
    end
  end
  else Iscalar (assignment st)

let top st =
  match peek st with
  | Lexer.KW "struct" when (match peek2 st with Lexer.IDENT _ -> true | _ -> false)
                           && st.toks.(st.pos + 2).Lexer.tok = Lexer.PUNCT "{" ->
      advance st;
      let name = ident st in
      eat_punct st "{";
      let rec fields acc =
        if try_punct st "}" then List.rev acc
        else begin
          let base = base_type st in
          let rec decls acc =
            let ty, fname = declarator st base in
            if try_punct st "," then decls ((ty, fname) :: acc)
            else begin
              eat_punct st ";";
              List.rev ((ty, fname) :: acc)
            end
          in
          fields (List.rev_append (decls []) acc)
        end
      in
      let fs = fields [] in
      eat_punct st ";";
      [ Dstruct (name, fs) ]
  | Lexer.KW "extern" ->
      advance st;
      let base = base_type st in
      let ty, name = declarator st base in
      if peek st = Lexer.PUNCT "(" then begin
        let args, va = param_types st in
        eat_punct st ";";
        [ Dproto (ty, name, args, va) ]
      end
      else begin
        eat_punct st ";";
        [ Dextern (ty, name) ]
      end
  | _ ->
      (match peek st with Lexer.KW "static" -> advance st | _ -> ());
      let base = base_type st in
      let ty, name = declarator st base in
      if peek st = Lexer.PUNCT "(" then begin
        (* function definition or prototype *)
        let ps, va = params st in
        if try_punct st ";" then [ Dproto (ty, name, List.map fst ps, va) ]
        else begin
          let body = block st in
          [ Dfun (ty, name, ps, va, body) ]
        end
      end
      else begin
        (* globals, possibly a comma-separated list *)
        let rec go acc ty name =
          let init = if try_punct st "=" then Some (initializer_ st) else None in
          let acc = Dglobal (ty, name, init) :: acc in
          if try_punct st "," then begin
            let ty, name = declarator st base in
            go acc ty name
          end
          else begin
            eat_punct st ";";
            List.rev acc
          end
        in
        go [] ty name
      end

let program source =
  match Lexer.tokens source with
  | exception Lexer.Error (ln, m) -> raise (Error (ln, m))
  | toks ->
      let st = { toks = Array.of_list toks; pos = 0 } in
      let rec go acc =
        if peek st = Lexer.EOF then List.concat (List.rev acc) else go (top st :: acc)
      in
      go []
