type ty =
  | Tvoid
  | Tlong
  | Tchar
  | Tdouble
  | Tptr of ty
  | Tarr of ty * int
  | Tstruct of string
  | Tfun of ty * ty list * bool

type unop = Neg | Lognot | Bitnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type expr = { eline : int; e : expr' }

and expr' =
  | Enum of int64
  | Efnum of float
  | Estr of string
  | Echar of char
  | Eident of string
  | Eun of unop * expr
  | Ebin of binop * expr * expr
  | Elogand of expr * expr
  | Elogor of expr * expr
  | Econd of expr * expr * expr
  | Eassign of expr * expr
  | Eassign_op of binop * expr * expr
  | Epre of binop * expr
  | Epost of binop * expr
  | Ecall of expr * expr list
  | Eindex of expr * expr
  | Emember of expr * string
  | Earrow of expr * string
  | Ederef of expr
  | Eaddr of expr
  | Ecast of ty * expr
  | Esizeof_ty of ty
  | Esizeof of expr

type stmt = { sline : int; s : stmt' }

and stmt' =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sseq of stmt list

type init = Iscalar of expr | Ilist of expr list

type top =
  | Dfun of ty * string * (ty * string) list * bool * stmt list
  | Dproto of ty * string * ty list * bool
  | Dglobal of ty * string * init option
  | Dextern of ty * string
  | Dstruct of string * (ty * string) list

type program = top list

let rec ty_to_string = function
  | Tvoid -> "void"
  | Tlong -> "long"
  | Tchar -> "char"
  | Tdouble -> "double"
  | Tptr t -> ty_to_string t ^ "*"
  | Tarr (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n
  | Tstruct s -> "struct " ^ s
  | Tfun (r, args, va) ->
      Printf.sprintf "%s( * )(%s%s)" (ty_to_string r)
        (String.concat "," (List.map ty_to_string args))
        (if va then ",..." else "")

let rec equal_ty a b =
  match (a, b) with
  | Tvoid, Tvoid | Tlong, Tlong | Tchar, Tchar | Tdouble, Tdouble -> true
  | Tptr a, Tptr b -> equal_ty a b
  | Tarr (a, n), Tarr (b, m) -> n = m && equal_ty a b
  | Tstruct a, Tstruct b -> a = b
  | Tfun (r1, a1, v1), Tfun (r2, a2, v2) ->
      v1 = v2 && equal_ty r1 r2
      && List.length a1 = List.length a2
      && List.for_all2 equal_ty a1 a2
  | (Tvoid | Tlong | Tchar | Tdouble | Tptr _ | Tarr _ | Tstruct _ | Tfun _), _ ->
      false

(* Syntactic constant folding over integer expressions: literals, unary
   and binary integer arithmetic, comparisons, short-circuit logic,
   ternaries and integer casts.  Used for array dimensions and global
   initialisers; [None] means "not a compile-time constant" (division by
   a zero constant is deliberately not a constant).  The char cast
   mirrors the typechecker's Tlong->Tchar coercion (mask to the byte's
   unsigned value, the ldbu convention). *)
let rec const_eval (e : expr) : int64 option =
  let ( let* ) = Option.bind in
  let bool_ v = Some (if v then 1L else 0L) in
  match e.e with
  | Enum v -> Some v
  | Echar c -> Some (Int64.of_int (Char.code c))
  | Eun (Neg, a) ->
      let* a = const_eval a in
      Some (Int64.neg a)
  | Eun (Bitnot, a) ->
      let* a = const_eval a in
      Some (Int64.lognot a)
  | Eun (Lognot, a) ->
      let* a = const_eval a in
      bool_ (Int64.equal a 0L)
  | Ebin (op, a, b) -> (
      let* a = const_eval a in
      let* b = const_eval b in
      match op with
      | Add -> Some (Int64.add a b)
      | Sub -> Some (Int64.sub a b)
      | Mul -> Some (Int64.mul a b)
      | Div -> if b = 0L then None else Some (Int64.div a b)
      | Mod -> if b = 0L then None else Some (Int64.rem a b)
      | Band -> Some (Int64.logand a b)
      | Bor -> Some (Int64.logor a b)
      | Bxor -> Some (Int64.logxor a b)
      | Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
      | Shr -> Some (Int64.shift_right a (Int64.to_int b land 63))
      | Lt -> bool_ (Int64.compare a b < 0)
      | Le -> bool_ (Int64.compare a b <= 0)
      | Gt -> bool_ (Int64.compare a b > 0)
      | Ge -> bool_ (Int64.compare a b >= 0)
      | Eq -> bool_ (Int64.equal a b)
      | Ne -> bool_ (not (Int64.equal a b)))
  | Elogand (a, b) -> (
      let* a = const_eval a in
      (* short-circuit: a constant false left arm decides alone *)
      if Int64.equal a 0L then Some 0L
      else
        let* b = const_eval b in
        bool_ (not (Int64.equal b 0L)))
  | Elogor (a, b) -> (
      let* a = const_eval a in
      if not (Int64.equal a 0L) then Some 1L
      else
        let* b = const_eval b in
        bool_ (not (Int64.equal b 0L)))
  | Econd (c, a, b) ->
      let* c = const_eval c in
      if Int64.equal c 0L then const_eval b else const_eval a
  | Ecast (Tlong, a) -> const_eval a
  | Ecast (Tchar, a) ->
      let* a = const_eval a in
      Some (Int64.logand a 0xFFL)
  | _ -> None
