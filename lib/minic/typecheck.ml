open Ast
open Tast

exception Error of int * string

let err ln fmt = Printf.ksprintf (fun m -> raise (Error (ln, m))) fmt

type struct_info = { si_fields : (string * int * ty) list; si_size : int }

type env = {
  structs : (string, struct_info) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;  (* data objects, incl. externs *)
  funcs : (string, ty) Hashtbl.t;  (* always Tfun *)
  defined : (string, unit) Hashtbl.t;  (* functions/globals defined here *)
  strings : (string, int) Hashtbl.t;
  mutable strings_rev : string list;
  mutable nstrings : int;
  (* current function *)
  mutable scopes : (string * (int * ty)) list list;
  mutable slots : slot list;
  mutable nslots : int;
  mutable ret : ty;
}

let fresh_env () =
  {
    structs = Hashtbl.create 16;
    globals = Hashtbl.create 64;
    funcs = Hashtbl.create 64;
    defined = Hashtbl.create 64;
    strings = Hashtbl.create 64;
    strings_rev = [];
    nstrings = 0;
    scopes = [];
    slots = [];
    nslots = 0;
    ret = Tvoid;
  }

let intern env s =
  match Hashtbl.find_opt env.strings s with
  | Some i -> i
  | None ->
      let i = env.nstrings in
      Hashtbl.replace env.strings s i;
      env.strings_rev <- s :: env.strings_rev;
      env.nstrings <- i + 1;
      i

let rec sizeof env ln = function
  | Tvoid -> err ln "sizeof void"
  | Tchar -> 1
  | Tlong | Tdouble | Tptr _ -> 8
  | Tarr (t, n) -> n * sizeof env ln t
  | Tstruct name -> (
      match Hashtbl.find_opt env.structs name with
      | Some si -> si.si_size
      | None -> err ln "unknown struct %s" name)
  | Tfun _ -> err ln "sizeof function"

let alignof _env ln = function
  | Tchar -> 1
  | Tarr (Tchar, _) -> 1
  | Tvoid -> err ln "align of void"
  | Tlong | Tdouble | Tptr _ | Tstruct _ | Tfun _ | Tarr _ -> 8

let class_of ln = function
  | Tdouble -> Ldouble
  | Tlong | Tchar | Tptr _ | Tarr _ | Tfun _ -> Lint
  | Tvoid -> err ln "void value used"
  | Tstruct _ -> err ln "struct used as a value (use pointers)"

let scalar_of ln = function
  | Tchar -> S8
  | Tdouble -> SF64
  | Tlong | Tptr _ -> S64
  | t -> err ln "cannot load/store a %s" (ty_to_string t)

let field env ln sname f =
  match Hashtbl.find_opt env.structs sname with
  | None -> err ln "unknown struct %s" sname
  | Some si -> (
      match List.find_opt (fun (n, _, _) -> n = f) si.si_fields with
      | Some (_, off, ty) -> (off, ty)
      | None -> err ln "struct %s has no member %s" sname f)

let new_slot env name size =
  let id = env.nslots in
  env.nslots <- id + 1;
  env.slots <- { sl_id = id; sl_name = name; sl_size = size } :: env.slots;
  id

let bind env name id ty =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((name, (id, ty)) :: scope) :: rest
  | [] -> invalid_arg "bind: no scope"

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with Some x -> Some x | None -> go rest)
  in
  go env.scopes

(* decay arrays to pointers in value contexts *)
let decay = function Tarr (t, _) -> Tptr t | t -> t

let is_int_class ty = match ty with Tlong | Tchar | Tptr _ | Tarr _ -> true | _ -> false

(* Coerce a typed rvalue to an expected type, inserting conversions. *)
let coerce ln (ty, e) want =
  let ty = decay ty and want = decay want in
  match (ty, want) with
  | Tdouble, Tdouble -> e
  | Tdouble, (Tlong | Tchar) -> Cast_d2i e
  | (Tlong | Tchar), Tdouble -> Cast_i2d e
  | (Tlong | Tchar | Tptr _), (Tlong | Tptr _) -> e
  | (Tlong | Tptr _), Tchar -> Bin (Band, Lint, e, Cint 0xFFL)
  | Tchar, Tchar -> e
  | Tfun _, Tptr _ -> e
  | _ ->
      err ln "cannot convert %s to %s" (ty_to_string ty) (ty_to_string want)

let truth ln (ty, e) =
  match decay ty with
  | Tdouble -> Bin (Ne, Ldouble, e, Cfloat 0.0)
  | t when is_int_class t -> e
  | t -> err ln "%s used as a condition" (ty_to_string t)

let rec rvalue env (x : expr) : ty * texpr =
  let ln = x.eline in
  match x.e with
  | Enum v -> (Tlong, Cint v)
  | Efnum f -> (Tdouble, Cfloat f)
  | Echar c -> (Tlong, Cint (Int64.of_int (Char.code c)))
  | Estr s -> (Tptr Tchar, Cstr (intern env s))
  | Eident name -> (
      match lookup_local env name with
      | Some (id, ty) -> load_from ln (Loc_addr id) ty
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty -> load_from ln (Glob_addr name) ty
          | None -> (
              match Hashtbl.find_opt env.funcs name with
              | Some fty -> (Tptr fty, Glob_addr name)
              | None -> err ln "undeclared identifier %s" name)))
  | Eun (Neg, e) -> (
      let ty, v = rvalue env e in
      match class_of ln (decay ty) with
      | Ldouble -> (Tdouble, Un (Neg, Ldouble, v))
      | Lint -> (Tlong, Un (Neg, Lint, v)))
  | Eun (Lognot, e) ->
      let tv = rvalue env e in
      (Tlong, Un (Lognot, Lint, truth ln tv))
  | Eun (Bitnot, e) ->
      let ty, v = rvalue env e in
      if class_of ln (decay ty) <> Lint then err ln "~ on a double";
      (Tlong, Un (Bitnot, Lint, v))
  | Ebin (op, a, b) -> binop env ln op a b
  | Elogand (a, b) -> (Tlong, Logand (truth ln (rvalue env a), truth ln (rvalue env b)))
  | Elogor (a, b) -> (Tlong, Logor (truth ln (rvalue env a), truth ln (rvalue env b)))
  | Econd (c, a, b) -> (
      let cv = truth ln (rvalue env c) in
      let ta, va = rvalue env a in
      let tb, vb = rvalue env b in
      match (class_of ln (decay ta), class_of ln (decay tb)) with
      | Lint, Lint -> (decay ta, Cond (Lint, cv, va, vb))
      | Ldouble, Ldouble -> (Tdouble, Cond (Ldouble, cv, va, vb))
      | Lint, Ldouble -> (Tdouble, Cond (Ldouble, cv, Cast_i2d va, vb))
      | Ldouble, Lint -> (Tdouble, Cond (Ldouble, cv, va, Cast_i2d vb)))
  | Eassign (lhs, rhs) ->
      let lty, addr = lvalue env lhs in
      let v = coerce ln (rvalue env rhs) lty in
      (lty, Store (scalar_of ln lty, addr, v))
  | Eassign_op (op, lhs, rhs) -> (
      let lty, addr = lvalue env lhs in
      let sc = scalar_of ln lty in
      match decay lty with
      | Tptr pointee when op = Add || op = Sub ->
          let size = sizeof env ln pointee in
          let idx = coerce ln (rvalue env rhs) Tlong in
          let scaled = Bin (Mul, Lint, idx, Cint (Int64.of_int size)) in
          (lty, Assignop { sc; cls = Lint; op; addr; value = scaled })
      | Tdouble ->
          let v = coerce ln (rvalue env rhs) Tdouble in
          if not (List.mem op [ Add; Sub; Mul; Div ]) then
            err ln "bad compound operator for double";
          (lty, Assignop { sc; cls = Ldouble; op; addr; value = v })
      | t when is_int_class t ->
          let v = coerce ln (rvalue env rhs) Tlong in
          (lty, Assignop { sc; cls = Lint; op; addr; value = v })
      | t -> err ln "compound assignment on %s" (ty_to_string t))
  | Epre (op, lhs) | Epost (op, lhs) -> (
      let post = match x.e with Epost _ -> true | _ -> false in
      let lty, addr = lvalue env lhs in
      let delta =
        match decay lty with
        | Tptr pointee -> Int64.of_int (sizeof env ln pointee)
        | Tlong | Tchar -> 1L
        | t -> err ln "++/-- on %s" (ty_to_string t)
      in
      let delta = if op = Sub then Int64.neg delta else delta in
      match scalar_of ln lty with
      | SF64 -> err ln "++/-- on double"
      | sc -> (lty, Incdec { sc; addr; delta; post }))
  | Ecall (f, args) -> call env ln f args
  | Eindex (a, i) ->
      let ty, addr = index_addr env ln a i in
      load_from ln addr ty
  | Emember (e, f) ->
      let ty, addr = member_addr env ln e f false in
      load_from ln addr ty
  | Earrow (e, f) ->
      let ty, addr = member_addr env ln e f true in
      load_from ln addr ty
  | Ederef e -> (
      let ty, v = rvalue env e in
      match decay ty with
      | Tptr pointee -> load_from ln v pointee
      | t -> err ln "dereference of %s" (ty_to_string t))
  | Eaddr e ->
      let ty, addr = lvalue env e in
      (Tptr ty, addr)
  | Ecast (want, e) -> (
      let got = rvalue env e in
      match (decay (fst got), decay want) with
      | t, w when equal_ty t w -> (want, snd got)
      | _, (Tlong | Tchar | Tdouble) -> (want, coerce ln got want)
      | (Tlong | Tptr _ | Tchar), Tptr _ -> (want, snd got)
      | Tdouble, Tptr _ -> err ln "cast double to pointer"
      | _ -> err ln "bad cast to %s" (ty_to_string want))
  | Esizeof_ty ty -> (Tlong, Cint (Int64.of_int (sizeof env ln ty)))
  | Esizeof e ->
      (* typecheck but discard; only the type's size matters *)
      let ty, _ = rvalue_or_struct env e in
      (Tlong, Cint (Int64.of_int (sizeof env ln ty)))

(* Like rvalue, but a bare struct expression is allowed (for sizeof). *)
and rvalue_or_struct env (x : expr) =
  match x.e with
  | Eident name -> (
      match lookup_local env name with
      | Some (id, ty) -> (ty, Loc_addr id)
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty -> (ty, Glob_addr name)
          | None -> rvalue env x))
  | Ederef e -> (
      let ty, v = rvalue env e in
      match decay ty with
      | Tptr pointee -> (pointee, v)
      | _ -> rvalue env x)
  | _ -> rvalue env x

(* rvalue of a memory object of a given type at a given address *)
and load_from ln addr ty =
  match ty with
  | Tarr (t, _) -> (Tptr t, addr)  (* decay *)
  | Tstruct _ -> (ty, addr)  (* structs are handled by reference *)
  | Tvoid -> err ln "void object"
  | Tfun _ -> (Tptr ty, addr)
  | Tchar | Tlong | Tdouble | Tptr _ -> (ty, Load (scalar_of ln ty, addr))

and index_addr env ln a i =
  let ta, va = rvalue env a in
  match decay ta with
  | Tptr pointee ->
      let size = sizeof env ln pointee in
      let iv = coerce ln (rvalue env i) Tlong in
      let off =
        if size = 1 then iv else Bin (Mul, Lint, iv, Cint (Int64.of_int size))
      in
      (pointee, Bin (Add, Lint, va, off))
  | t -> err ln "indexing a %s" (ty_to_string t)

and member_addr env ln e f through_ptr =
  let base_ty, base_addr =
    if through_ptr then begin
      let ty, v = rvalue env e in
      match decay ty with
      | Tptr (Tstruct s) -> (s, v)
      | t -> err ln "-> on %s" (ty_to_string t)
    end
    else begin
      let ty, addr = lvalue env e in
      match ty with
      | Tstruct s -> (s, addr)
      | t -> err ln ". on %s" (ty_to_string t)
    end
  in
  let off, fty = field env ln base_ty f in
  let addr =
    if off = 0 then base_addr else Bin (Add, Lint, base_addr, Cint (Int64.of_int off))
  in
  (fty, addr)

(* l-value: returns the object type and its address expression *)
and lvalue env (x : expr) : ty * texpr =
  let ln = x.eline in
  match x.e with
  | Eident name -> (
      match lookup_local env name with
      | Some (id, ty) -> (ty, Loc_addr id)
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty -> (ty, Glob_addr name)
          | None -> (
              match Hashtbl.find_opt env.funcs name with
              | Some fty -> (fty, Glob_addr name)
              | None -> err ln "undeclared identifier %s" name)))
  | Ederef e -> (
      let ty, v = rvalue env e in
      match decay ty with
      | Tptr pointee -> (pointee, v)
      | t -> err ln "dereference of %s" (ty_to_string t))
  | Eindex (a, i) -> index_addr env ln a i
  | Emember (e, f) -> member_addr env ln e f false
  | Earrow (e, f) -> member_addr env ln e f true
  | Ecast (_, e) -> lvalue env e
  | _ -> err ln "expression is not an l-value"

and binop env ln op a b =
  let ta, va = rvalue env a in
  let tb, vb = rvalue env b in
  let ta = decay ta and tb = decay tb in
  let arith_result cls = match cls with Lint -> Tlong | Ldouble -> Tdouble in
  match (op, ta, tb) with
  (* pointer arithmetic *)
  | (Add | Sub), Tptr p, t when is_int_class t && t <> Tptr p ->
      let size = sizeof env ln p in
      let scaled = Bin (Mul, Lint, vb, Cint (Int64.of_int size)) in
      (Tptr p, Bin (op, Lint, va, scaled))
  | Add, t, Tptr p when is_int_class t ->
      let size = sizeof env ln p in
      let scaled = Bin (Mul, Lint, va, Cint (Int64.of_int size)) in
      (Tptr p, Bin (Add, Lint, vb, scaled))
  | Sub, Tptr p, Tptr _ ->
      let size = sizeof env ln p in
      (Tlong, Bin (Div, Lint, Bin (Sub, Lint, va, vb), Cint (Int64.of_int size)))
  | (Lt | Le | Gt | Ge | Eq | Ne), Tptr _, Tptr _ -> (Tlong, Bin (op, Lint, va, vb))
  | (Eq | Ne | Lt | Le | Gt | Ge), Tptr _, t when is_int_class t ->
      (Tlong, Bin (op, Lint, va, vb))
  | (Eq | Ne | Lt | Le | Gt | Ge), t, Tptr _ when is_int_class t ->
      (Tlong, Bin (op, Lint, va, vb))
  | _ -> (
      match (class_of ln ta, class_of ln tb) with
      | Lint, Lint -> (
          match op with
          | Lt | Le | Gt | Ge | Eq | Ne -> (Tlong, Bin (op, Lint, va, vb))
          | _ -> (Tlong, Bin (op, Lint, va, vb)))
      | ca, cb ->
          let va = if ca = Lint then Cast_i2d va else va in
          let vb = if cb = Lint then Cast_i2d vb else vb in
          (match op with
          | Mod | Band | Bor | Bxor | Shl | Shr -> err ln "integer operator on double"
          | _ -> ());
          (match op with
          | Lt | Le | Gt | Ge | Eq | Ne -> (Tlong, Bin (op, Ldouble, va, vb))
          | _ -> (arith_result Ldouble, Bin (op, Ldouble, va, vb))))

and call env ln f args =
  let direct_sig =
    match f.e with
    | Eident name when lookup_local env name = None
                       && not (Hashtbl.mem env.globals name) -> (
        match Hashtbl.find_opt env.funcs name with
        | Some (Tfun (ret, ps, va)) -> Some (Direct name, ret, ps, va)
        | Some _ | None -> err ln "call of undeclared function %s" name)
    | _ -> None
  in
  let target, ret, ps, va =
    match direct_sig with
    | Some x -> x
    | None -> (
        let ty, v = rvalue env f in
        match decay ty with
        | Tptr (Tfun (ret, ps, va)) -> (Indirect v, ret, ps, va)
        | t -> err ln "call of non-function (%s)" (ty_to_string t))
  in
  let nps = List.length ps in
  if List.length args < nps then err ln "too few arguments";
  if (not va) && List.length args > nps then err ln "too many arguments";
  let c_args =
    List.mapi
      (fun i arg ->
        let tv = rvalue env arg in
        if i < nps then begin
          let want = List.nth ps i in
          (class_of ln (decay want), coerce ln tv want)
        end
        else
          (* varargs: pass by class unchanged *)
          (class_of ln (decay (fst tv)), snd tv))
      args
  in
  let c_ret = match ret with Tvoid -> None | t -> Some (class_of ln (decay t)) in
  (ret, Call { c_fn = target; c_args; c_ret })

(* -- statements -------------------------------------------------------- *)

let rec check_stmt env (x : stmt) : tstmt list =
  let ln = x.sline in
  match x.s with
  | Sexpr e ->
      let _, v = rvalue env e in
      [ Texpr v ]
  | Sdecl (ty, name, init) -> (
      (match ty with
      | Tvoid -> err ln "void variable %s" name
      | Tfun _ -> err ln "local function declaration"
      | _ -> ());
      let size = sizeof env ln ty in
      let id = new_slot env name size in
      bind env name id ty;
      match init with
      | None -> []
      | Some e ->
          let v = coerce ln (rvalue env e) ty in
          (match ty with
          | Tarr _ | Tstruct _ -> err ln "initialiser on aggregate local"
          | _ -> ());
          [ Texpr (Store (scalar_of ln ty, Loc_addr id, v)) ])
  | Sif (c, a, b) ->
      let cv = truth ln (rvalue env c) in
      [ Tif (cv, check_block env a, check_block env b) ]
  | Swhile (c, body) ->
      let cv = truth ln (rvalue env c) in
      [ Tloop { l_cond = Some cv; l_post_test = false; l_body = check_block env body; l_step = [] } ]
  | Sdo (body, c) ->
      let bl = check_block env body in
      let cv = truth ln (rvalue env c) in
      [ Tloop { l_cond = Some cv; l_post_test = true; l_body = bl; l_step = [] } ]
  | Sfor (init, cond, step, body) ->
      env.scopes <- [] :: env.scopes;
      let init_t = match init with None -> [] | Some s -> check_stmt env s in
      let cond_t = Option.map (fun c -> truth ln (rvalue env c)) cond in
      let body_t = check_block env body in
      let step_t =
        match step with
        | None -> []
        | Some e ->
            let _, v = rvalue env e in
            [ v ]
      in
      env.scopes <- List.tl env.scopes;
      init_t @ [ Tloop { l_cond = cond_t; l_post_test = false; l_body = body_t; l_step = step_t } ]
  | Sreturn None ->
      if env.ret <> Tvoid then err ln "return without a value";
      [ Treturn None ]
  | Sreturn (Some e) ->
      if env.ret = Tvoid then err ln "return with a value in void function";
      let v = coerce ln (rvalue env e) env.ret in
      [ Treturn (Some (class_of ln (decay env.ret), v)) ]
  | Sbreak -> [ Tbreak ]
  | Scontinue -> [ Tcontinue ]
  | Sblock body -> check_block env body
  | Sseq body -> List.concat_map (check_stmt env) body

and check_block env body =
  env.scopes <- [] :: env.scopes;
  let out = List.concat_map (check_stmt env) body in
  env.scopes <- List.tl env.scopes;
  out

(* -- constant initialisers -------------------------------------------- *)

let rec const_init env ln want (e : expr) : ginit =
  match (e.e, decay want) with
  | Enum v, Tdouble -> Gfloat (Int64.to_float v)
  | Enum v, _ -> Gint v
  | Echar c, _ -> Gint (Int64.of_int (Char.code c))
  | Efnum f, Tdouble -> Gfloat f
  | Efnum _, _ -> err ln "float initialiser for integer"
  | Eun (Neg, { e = Enum v; _ }), Tdouble -> Gfloat (Int64.to_float (Int64.neg v))
  | Eun (Neg, { e = Enum v; _ }), _ -> Gint (Int64.neg v)
  | Eun (Neg, { e = Efnum f; _ }), Tdouble -> Gfloat (-.f)
  | Estr s, _ -> Gstr (intern env s)
  | Eident name, _
    when Hashtbl.mem env.funcs name || Hashtbl.mem env.globals name ->
      Gaddr (name, 0)
  | Eaddr { e = Eident name; _ }, _ when Hashtbl.mem env.globals name ->
      Gaddr (name, 0)
  | Ecast (_, inner), w -> const_init env ln w inner
  | _, want -> (
      (* not a literal: fold constant integer expressions, e.g.
         [-9223372036854775807 - 1] or [(1 << 40) | 5] *)
      match (Ast.const_eval e, want) with
      | Some v, Tdouble -> Gfloat (Int64.to_float v)
      | Some v, _ -> Gint v
      | None, _ -> err ln "initialiser is not a constant")

(* -- top level --------------------------------------------------------- *)

let register_struct env ln name fields =
  if Hashtbl.mem env.structs name then err ln "duplicate struct %s" name;
  let off = ref 0 in
  let laid =
    List.map
      (fun (ty, fname) ->
        let al = alignof env ln ty in
        off := (!off + al - 1) / al * al;
        let o = !off in
        off := !off + sizeof env ln ty;
        (fname, o, ty))
      fields
  in
  let size = (!off + 7) / 8 * 8 in
  Hashtbl.replace env.structs name { si_fields = laid; si_size = max size 8 }

let register_func env ln name ty =
  match Hashtbl.find_opt env.funcs name with
  | Some old when not (equal_ty old ty) ->
      err ln "conflicting declarations for %s" name
  | Some _ | None -> Hashtbl.replace env.funcs name ty

let program (tops : Ast.program) : Tast.program =
  let env = fresh_env () in
  (* pass 1: signatures and layouts, in order (structs may be used by
     later struct definitions) *)
  List.iter
    (fun top ->
      match top with
      | Dstruct (name, fields) -> register_struct env 0 name fields
      | Dfun (ret, name, params, va, _) ->
          register_func env 0 name (Tfun (ret, List.map fst params, va));
          Hashtbl.replace env.defined name ()
      | Dproto (ret, name, args, va) -> register_func env 0 name (Tfun (ret, args, va))
      | Dglobal (ty, name, _) ->
          Hashtbl.replace env.globals name ty;
          Hashtbl.replace env.defined name ()
      | Dextern (ty, name) -> (
          match ty with
          | Tfun (ret, args, va) -> register_func env 0 name (Tfun (ret, args, va))
          | _ -> Hashtbl.replace env.globals name ty))
    tops;
  (* pass 2: bodies and initialisers *)
  let funcs = ref [] and globals = ref [] in
  List.iter
    (fun top ->
      match top with
      | Dstruct _ | Dproto _ | Dextern _ -> ()
      | Dglobal (ty, name, init) ->
          let size = sizeof env 0 ty in
          let g_elem =
            match ty with
            | Tarr (elt, _) -> sizeof env 0 elt
            | Tchar -> 1
            | _ -> 8
          in
          let g_init =
            match init with
            | None -> None
            | Some (Iscalar e) -> Some [ const_init env e.eline ty e ]
            | Some (Ilist es) -> (
                match ty with
                | Tarr (elt, n) ->
                    if List.length es > n then
                      failwith (Printf.sprintf "too many initialisers for %s" name);
                    Some (List.map (fun e -> const_init env e.eline elt e) es)
                | _ -> failwith "brace initialiser on a non-array")
          in
          globals := { g_name = name; g_size = size; g_elem; g_init } :: !globals
      | Dfun (ret, name, params, va, body) ->
          env.scopes <- [ [] ];
          env.slots <- [];
          env.nslots <- 0;
          env.ret <- ret;
          let f_params =
            List.map
              (fun (ty, pname) ->
                let id = new_slot env pname 8 in
                bind env pname id ty;
                { sl_id = id; sl_name = pname; sl_size = 8 })
              params
          in
          let f_body = check_block env body in
          let f_ret = match ret with Tvoid -> None | t -> Some (class_of 0 (decay t)) in
          funcs :=
            {
              f_name = name;
              f_ret;
              f_params;
              f_varargs = va;
              f_slots = List.rev env.slots;
              f_body;
            }
            :: !funcs)
    tops;
  let externs =
    let here = env.defined in
    let refs = Hashtbl.create 16 in
    Hashtbl.iter (fun n _ -> if not (Hashtbl.mem here n) then Hashtbl.replace refs n ()) env.funcs;
    Hashtbl.iter (fun n _ -> if not (Hashtbl.mem here n) then Hashtbl.replace refs n ()) env.globals;
    Hashtbl.fold (fun n () acc -> n :: acc) refs []
  in
  {
    p_funcs = List.rev !funcs;
    p_globals = List.rev !globals;
    p_strings = Array.of_list (List.rev env.strings_rev);
    p_externs = List.sort compare externs;
  }
