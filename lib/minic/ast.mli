(** Mini-C: the small C-like language used to author workloads, runtime
    library and analysis routines.

    The dialect: [long] (64-bit, [int] is an alias), [char] (unsigned
    byte), [double], [void], pointers, sized arrays, [struct]s (by
    reference only), function pointers in the restricted
    [ret ( \* name)(args)] declarator form, and varargs ([...]).  Everything
    else is classic C expression and statement syntax. *)

type ty =
  | Tvoid
  | Tlong
  | Tchar
  | Tdouble
  | Tptr of ty
  | Tarr of ty * int
  | Tstruct of string
  | Tfun of ty * ty list * bool  (** return, parameters, varargs *)

type unop = Neg | Lognot | Bitnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type expr = { eline : int; e : expr' }

and expr' =
  | Enum of int64
  | Efnum of float
  | Estr of string
  | Echar of char
  | Eident of string
  | Eun of unop * expr
  | Ebin of binop * expr * expr
  | Elogand of expr * expr
  | Elogor of expr * expr
  | Econd of expr * expr * expr
  | Eassign of expr * expr
  | Eassign_op of binop * expr * expr  (** [x op= e] *)
  | Epre of binop * expr  (** [++x] / [--x]: op is [Add] or [Sub] *)
  | Epost of binop * expr
  | Ecall of expr * expr list
  | Eindex of expr * expr
  | Emember of expr * string  (** [e.f] *)
  | Earrow of expr * string  (** [e->f] *)
  | Ederef of expr
  | Eaddr of expr
  | Ecast of ty * expr
  | Esizeof_ty of ty
  | Esizeof of expr

type stmt = { sline : int; s : stmt' }

and stmt' =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
      (** init is an expression or declaration statement *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sseq of stmt list
      (** spliced statements (multi-declarator lists); opens no scope *)

type init =
  | Iscalar of expr
  | Ilist of expr list  (** brace initialiser for arrays *)

type top =
  | Dfun of ty * string * (ty * string) list * bool * stmt list
      (** return type, name, parameters, varargs, body *)
  | Dproto of ty * string * ty list * bool
  | Dglobal of ty * string * init option
  | Dextern of ty * string
  | Dstruct of string * (ty * string) list

type program = top list

val ty_to_string : ty -> string
val equal_ty : ty -> ty -> bool

val const_eval : expr -> int64 option
(** Syntactic constant folding: [Some v] when the expression is a
    compile-time integer constant (literals combined with unary/binary
    arithmetic, comparisons, short-circuit logic, ternaries and integer
    casts), [None] otherwise.  Shared by the parser (array dimensions)
    and the typechecker (global initialisers). *)
