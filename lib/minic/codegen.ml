open Tast

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* Integer and floating temporary pools (all caller-save). *)
let ipool = [| 1; 2; 3; 4; 5; 6; 7; 8; 22; 23; 24; 25 |]
let fpool = [| 10; 11; 12; 13; 14; 15; 22; 23; 24; 25; 26; 27 |]

let fp = Alpha.Reg.fp
let sp = Alpha.Reg.sp
let ra = Alpha.Reg.ra
let pv = Alpha.Reg.pv
let v0 = Alpha.Reg.v0

type ctx = {
  mutable out : Asmlib.Src.stmt list;  (* reversed *)
  mutable nlabel : int;
  fname : string;
  frame : int;
  nparams : int;
  slot_off : int array;  (* local-area offset per slot id (params unused) *)
  varargs : bool;
  light : bool;
      (* leaf function: parameters stay in the argument registers, locals
         are addressed off $sp, and no frame header is built *)
  mutable breaks : string list;
  mutable continues : string list;
}

let push ctx it = ctx.out <- { Asmlib.Src.line = 0; it } :: ctx.out

let ins ctx name ops = push ctx (Asmlib.Src.I (name, ops))
let label ctx l = push ctx (Asmlib.Src.L l)

let fresh ctx tag =
  let n = ctx.nlabel in
  ctx.nlabel <- n + 1;
  Printf.sprintf ".L%s.%s%d" ctx.fname tag n

let r x = Asmlib.Src.O_reg x
let f x = Asmlib.Src.O_freg x
let imm n = Asmlib.Src.O_imm n

(* Constants come out of the front end as int64; OCaml's native int only
   has 63 bits, so |v| >= 2^62 must not be funneled through Int64.to_int
   (it wraps silently).  Such values travel as O_imm64. *)
let imm64 v =
  if Int64.equal (Int64.of_int (Int64.to_int v)) v then
    Asmlib.Src.O_imm (Int64.to_int v)
  else Asmlib.Src.O_imm64 v
let mem d b = Asmlib.Src.O_mem (d, b)
let sym s = Asmlib.Src.O_sym (s, 0)

let it ctx d =
  if d >= Array.length ipool then fail "%s: expression too complex" ctx.fname;
  ipool.(d)

let ft ctx d =
  if d >= Array.length fpool then fail "%s: expression too complex" ctx.fname;
  fpool.(d)

(* Address of a stack slot relative to the frame base.  In a normal
   function that base is $fp and parameter homes live at the top of the
   frame, contiguous with caller-pushed stack arguments, so slot i
   (i < nparams) is at [frame - 48 + 8i] even for i >= 6.  In a light
   leaf the base is $sp and parameters have no slots at all. *)
let slot_addr ctx id =
  if ctx.light then begin
    assert (id >= ctx.nparams);
    ctx.slot_off.(id)
  end
  else if id < ctx.nparams then ctx.frame - 48 + (8 * id)
  else ctx.slot_off.(id)

let base ctx = if ctx.light then sp else fp

let is_light_param ctx = function
  | Loc_addr id when ctx.light && id < ctx.nparams -> Some (16 + id)
  | _ -> None

let str_label i = Printf.sprintf ".Lstr%d" i

(* Addressing modes foldable into a single memory operand. *)
type amode =
  | A_fp of int  (* disp(frame base) *)
  | A_sym of string
  | A_preg of int  (* a light leaf's parameter, live in this register *)
  | A_dyn of texpr

let amode ctx addr =
  match is_light_param ctx addr with
  | Some reg -> A_preg reg
  | None -> (
      match addr with
      | Loc_addr id when slot_addr ctx id <= 32000 -> A_fp (slot_addr ctx id)
      | Bin (Ast.Add, Lint, Loc_addr id, Cint c)
        when is_light_param ctx (Loc_addr id) = None
             && Int64.compare c 0L >= 0
             && Int64.compare c 32000L <= 0
             && Int64.to_int c + slot_addr ctx id <= 32000 ->
          A_fp (slot_addr ctx id + Int64.to_int c)
      | Glob_addr s -> A_sym s
      | _ -> A_dyn addr)

let load_op = function S8 -> "ldbu" | S64 -> "ldq" | SF64 -> "ldt"
let store_op = function S8 -> "stb" | S64 -> "stq" | SF64 -> "stt"

let dest_reg ctx sc d = match sc with SF64 -> f (ft ctx d) | S8 | S64 -> r (it ctx d)

(* Materialise a 64-bit constant delta addition: old(d1) + delta -> rc *)
let emit_add_const ctx d1 rc delta =
  let fits_native = Int64.equal (Int64.of_int (Int64.to_int delta)) delta in
  let dv = Int64.to_int delta in
  if fits_native && dv >= 0 && dv <= 255 then
    ins ctx "addq" [ r (it ctx d1); imm dv; rc ]
  else if fits_native && dv < 0 && dv >= -255 then
    ins ctx "subq" [ r (it ctx d1); imm (-dv); rc ]
  else begin
    ins ctx "ldiq" [ rc; imm64 delta ];
    match rc with
    | Asmlib.Src.O_reg rcn -> ins ctx "addq" [ r (it ctx d1); r rcn; r rcn ]
    | _ -> assert false
  end

let rec eval ctx d e =
  match e with
  | Cint v -> ins ctx "ldiq" [ r (it ctx d); imm64 v ]
  | Cfloat x -> ins ctx "ldit" [ f (ft ctx d); Asmlib.Src.O_fimm x ]
  | Cstr i -> ins ctx "lda" [ r (it ctx d); sym (str_label i) ]
  | Glob_addr s -> ins ctx "lda" [ r (it ctx d); sym s ]
  | Loc_addr id ->
      let off = slot_addr ctx id in
      if off <= 32000 then ins ctx "lda" [ r (it ctx d); mem off (base ctx) ]
      else fail "%s: frame too large" ctx.fname
  | Load (sc, addr) -> (
      match amode ctx addr with
      | A_preg reg -> ins ctx "mov" [ r reg; r (it ctx d) ]
      | A_fp off -> ins ctx (load_op sc) [ dest_reg ctx sc d; mem off (base ctx) ]
      | A_sym s -> ins ctx (load_op sc) [ dest_reg ctx sc d; sym s ]
      | A_dyn a ->
          eval ctx d a;
          ins ctx (load_op sc) [ dest_reg ctx sc d; mem 0 (it ctx d) ])
  | Store (sc, addr, v) -> (
      match amode ctx addr with
      | A_preg reg ->
          eval ctx d v;
          ins ctx "mov" [ r (it ctx d); r reg ]
      | A_fp off ->
          eval ctx d v;
          ins ctx (store_op sc) [ dest_reg ctx sc d; mem off (base ctx) ]
      | A_sym s ->
          eval ctx d v;
          ins ctx (store_op sc) [ dest_reg ctx sc d; sym s ]
      | A_dyn a ->
          eval ctx d a;
          eval ctx (d + 1) v;
          ins ctx (store_op sc) [ dest_reg ctx sc (d + 1); mem 0 (it ctx d) ];
          (* the value is the expression's result *)
          if sc = SF64 then ins ctx "fmov" [ f (ft ctx (d + 1)); f (ft ctx d) ]
          else ins ctx "mov" [ r (it ctx (d + 1)); r (it ctx d) ])
  | Un (Ast.Neg, Lint, a) ->
      eval ctx d a;
      ins ctx "negq" [ r (it ctx d); r (it ctx d) ]
  | Un (Ast.Neg, Ldouble, a) ->
      eval ctx d a;
      ins ctx "fneg" [ f (ft ctx d); f (ft ctx d) ]
  | Un (Ast.Lognot, _, a) ->
      eval ctx d a;
      ins ctx "cmpeq" [ r (it ctx d); imm 0; r (it ctx d) ]
  | Un (Ast.Bitnot, _, a) ->
      eval ctx d a;
      ins ctx "not" [ r (it ctx d); r (it ctx d) ]
  | Bin (op, Lint, a, Cint n)
    when Int64.compare n 0L >= 0 && Int64.compare n 255L <= 0
         && (match op with
            | Ast.Add | Ast.Sub | Ast.Mul | Ast.Band | Ast.Bor | Ast.Bxor
            | Ast.Shl | Ast.Shr | Ast.Lt | Ast.Le | Ast.Eq ->
                true
            | Ast.Gt | Ast.Ge | Ast.Ne | Ast.Div | Ast.Mod -> false) ->
      eval ctx d a;
      let rd = r (it ctx d) in
      let n = Int64.to_int n in
      (match op with
      | Ast.Add -> ins ctx "addq" [ rd; imm n; rd ]
      | Ast.Sub -> ins ctx "subq" [ rd; imm n; rd ]
      | Ast.Mul -> ins ctx "mulq" [ rd; imm n; rd ]
      | Ast.Band -> ins ctx "and" [ rd; imm n; rd ]
      | Ast.Bor -> ins ctx "bis" [ rd; imm n; rd ]
      | Ast.Bxor -> ins ctx "xor" [ rd; imm n; rd ]
      | Ast.Shl -> ins ctx "sll" [ rd; imm n; rd ]
      | Ast.Shr -> ins ctx "sra" [ rd; imm n; rd ]
      | Ast.Lt -> ins ctx "cmplt" [ rd; imm n; rd ]
      | Ast.Le -> ins ctx "cmple" [ rd; imm n; rd ]
      | Ast.Eq -> ins ctx "cmpeq" [ rd; imm n; rd ]
      | Ast.Gt | Ast.Ge | Ast.Ne | Ast.Div | Ast.Mod -> assert false)
  | Bin (op, Lint, a, b) -> (
      eval ctx d a;
      eval ctx (d + 1) b;
      let ra_ = r (it ctx d) and rb_ = r (it ctx (d + 1)) in
      match op with
      | Ast.Add -> ins ctx "addq" [ ra_; rb_; ra_ ]
      | Ast.Sub -> ins ctx "subq" [ ra_; rb_; ra_ ]
      | Ast.Mul -> ins ctx "mulq" [ ra_; rb_; ra_ ]
      | Ast.Div -> emit_div_call ctx d "__divq"
      | Ast.Mod -> emit_div_call ctx d "__remq"
      | Ast.Band -> ins ctx "and" [ ra_; rb_; ra_ ]
      | Ast.Bor -> ins ctx "bis" [ ra_; rb_; ra_ ]
      | Ast.Bxor -> ins ctx "xor" [ ra_; rb_; ra_ ]
      | Ast.Shl -> ins ctx "sll" [ ra_; rb_; ra_ ]
      | Ast.Shr -> ins ctx "sra" [ ra_; rb_; ra_ ]
      | Ast.Lt -> ins ctx "cmplt" [ ra_; rb_; ra_ ]
      | Ast.Le -> ins ctx "cmple" [ ra_; rb_; ra_ ]
      | Ast.Gt -> ins ctx "cmplt" [ rb_; ra_; ra_ ]
      | Ast.Ge -> ins ctx "cmple" [ rb_; ra_; ra_ ]
      | Ast.Eq -> ins ctx "cmpeq" [ ra_; rb_; ra_ ]
      | Ast.Ne ->
          ins ctx "cmpeq" [ ra_; rb_; ra_ ];
          ins ctx "xor" [ ra_; imm 1; ra_ ])
  | Bin (op, Ldouble, a, b) -> (
      eval ctx d a;
      eval ctx (d + 1) b;
      let fa = f (ft ctx d) and fb = f (ft ctx (d + 1)) in
      match op with
      | Ast.Add -> ins ctx "addt" [ fa; fb; fa ]
      | Ast.Sub -> ins ctx "subt" [ fa; fb; fa ]
      | Ast.Mul -> ins ctx "mult" [ fa; fb; fa ]
      | Ast.Div -> ins ctx "divt" [ fa; fb; fa ]
      | Ast.Lt -> fcompare ctx d "cmptlt" fa fb true
      | Ast.Le -> fcompare ctx d "cmptle" fa fb true
      | Ast.Gt -> fcompare ctx d "cmptlt" fb fa true
      | Ast.Ge -> fcompare ctx d "cmptle" fb fa true
      | Ast.Eq -> fcompare ctx d "cmpteq" fa fb true
      | Ast.Ne -> fcompare ctx d "cmpteq" fa fb false
      | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
          fail "%s: integer operator on double" ctx.fname)
  | Logand (a, b) ->
      let lfalse = fresh ctx "and_f" and lend = fresh ctx "and_e" in
      eval ctx d a;
      ins ctx "beq" [ r (it ctx d); sym lfalse ];
      eval ctx d b;
      ins ctx "beq" [ r (it ctx d); sym lfalse ];
      ins ctx "ldiq" [ r (it ctx d); imm 1 ];
      ins ctx "br" [ sym lend ];
      label ctx lfalse;
      ins ctx "clr" [ r (it ctx d) ];
      label ctx lend
  | Logor (a, b) ->
      let ltrue = fresh ctx "or_t" and lend = fresh ctx "or_e" in
      eval ctx d a;
      ins ctx "bne" [ r (it ctx d); sym ltrue ];
      eval ctx d b;
      ins ctx "bne" [ r (it ctx d); sym ltrue ];
      ins ctx "clr" [ r (it ctx d) ];
      ins ctx "br" [ sym lend ];
      label ctx ltrue;
      ins ctx "ldiq" [ r (it ctx d); imm 1 ];
      label ctx lend
  | Cond (_, c, a, b) ->
      let lelse = fresh ctx "c_else" and lend = fresh ctx "c_end" in
      eval ctx d c;
      ins ctx "beq" [ r (it ctx d); sym lelse ];
      eval ctx d a;
      ins ctx "br" [ sym lend ];
      label ctx lelse;
      eval ctx d b;
      label ctx lend
  | Call call -> emit_call ctx d call
  | Cast_i2d a ->
      eval ctx d a;
      scratch_int_to_fp ctx (it ctx d) (ft ctx d);
      ins ctx "cvtqt" [ f Alpha.Reg.fzero; f (ft ctx d); f (ft ctx d) ]
  | Cast_d2i a ->
      eval ctx d a;
      ins ctx "cvttq" [ f Alpha.Reg.fzero; f (ft ctx d); f (ft ctx d) ];
      scratch_fp_to_int ctx (ft ctx d) (it ctx d)
  | Incdec { sc; addr; delta; post } -> (
      let fetch_store amode_v =
        let old_r = r (it ctx (d + 1)) and new_r = r (it ctx (d + 2)) in
        (match amode_v with
        | A_preg reg -> ins ctx "mov" [ r reg; old_r ]
        | A_fp off -> ins ctx (load_op sc) [ old_r; mem off (base ctx) ]
        | A_sym s -> ins ctx (load_op sc) [ old_r; sym s ]
        | A_dyn _ -> ins ctx (load_op sc) [ old_r; mem 0 (it ctx d) ]);
        emit_add_const ctx (d + 1) new_r delta;
        (match amode_v with
        | A_preg reg -> ins ctx "mov" [ new_r; r reg ]
        | A_fp off -> ins ctx (store_op sc) [ new_r; mem off (base ctx) ]
        | A_sym s -> ins ctx (store_op sc) [ new_r; sym s ]
        | A_dyn _ -> ins ctx (store_op sc) [ new_r; mem 0 (it ctx d) ]);
        let result = if post then old_r else new_r in
        ins ctx "mov" [ result; r (it ctx d) ]
      in
      match amode ctx addr with
      | A_dyn a ->
          eval ctx d a;
          fetch_store (A_dyn a)
      | m -> fetch_store m)
  | Assignop { sc; cls = Lint; op; addr; value } -> (
      let with_addr amode_v =
        let old_r = r (it ctx (d + 1)) in
        (match amode_v with
        | A_preg reg -> ins ctx "mov" [ r reg; old_r ]
        | A_fp off -> ins ctx (load_op sc) [ old_r; mem off (base ctx) ]
        | A_sym s -> ins ctx (load_op sc) [ old_r; sym s ]
        | A_dyn _ -> ins ctx (load_op sc) [ old_r; mem 0 (it ctx d) ]);
        eval ctx (d + 2) value;
        let vr = r (it ctx (d + 2)) in
        (match op with
        | Ast.Add -> ins ctx "addq" [ old_r; vr; old_r ]
        | Ast.Sub -> ins ctx "subq" [ old_r; vr; old_r ]
        | Ast.Mul -> ins ctx "mulq" [ old_r; vr; old_r ]
        | Ast.Div -> emit_div_call ctx (d + 1) "__divq"
        | Ast.Mod -> emit_div_call ctx (d + 1) "__remq"
        | Ast.Band -> ins ctx "and" [ old_r; vr; old_r ]
        | Ast.Bor -> ins ctx "bis" [ old_r; vr; old_r ]
        | Ast.Bxor -> ins ctx "xor" [ old_r; vr; old_r ]
        | Ast.Shl -> ins ctx "sll" [ old_r; vr; old_r ]
        | Ast.Shr -> ins ctx "sra" [ old_r; vr; old_r ]
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
            fail "%s: comparison in compound assignment" ctx.fname);
        (match amode_v with
        | A_preg reg -> ins ctx "mov" [ old_r; r reg ]
        | A_fp off -> ins ctx (store_op sc) [ old_r; mem off (base ctx) ]
        | A_sym s -> ins ctx (store_op sc) [ old_r; sym s ]
        | A_dyn _ -> ins ctx (store_op sc) [ old_r; mem 0 (it ctx d) ]);
        ins ctx "mov" [ old_r; r (it ctx d) ]
      in
      match amode ctx addr with
      | A_dyn a ->
          eval ctx d a;
          with_addr (A_dyn a)
      | m -> with_addr m)
  | Assignop { sc; cls = Ldouble; op; addr; value } -> (
      let with_addr amode_v =
        let old_f = f (ft ctx (d + 1)) in
        (match amode_v with
        | A_preg _ -> fail "%s: double compound on a register parameter" ctx.fname
        | A_fp off -> ins ctx "ldt" [ old_f; mem off (base ctx) ]
        | A_sym s -> ins ctx "ldt" [ old_f; sym s ]
        | A_dyn _ -> ins ctx "ldt" [ old_f; mem 0 (it ctx d) ]);
        eval ctx (d + 2) value;
        let vf = f (ft ctx (d + 2)) in
        (match op with
        | Ast.Add -> ins ctx "addt" [ old_f; vf; old_f ]
        | Ast.Sub -> ins ctx "subt" [ old_f; vf; old_f ]
        | Ast.Mul -> ins ctx "mult" [ old_f; vf; old_f ]
        | Ast.Div -> ins ctx "divt" [ old_f; vf; old_f ]
        | _ -> fail "%s: bad compound operator for double" ctx.fname);
        ignore sc;
        (match amode_v with
        | A_preg _ -> fail "%s: double compound on a register parameter" ctx.fname
        | A_fp off -> ins ctx "stt" [ old_f; mem off (base ctx) ]
        | A_sym s -> ins ctx "stt" [ old_f; sym s ]
        | A_dyn _ -> ins ctx "stt" [ old_f; mem 0 (it ctx d) ]);
        ins ctx "fmov" [ old_f; f (ft ctx d) ]
      in
      match amode ctx addr with
      | A_dyn a ->
          eval ctx d a;
          with_addr (A_dyn a)
      | m -> with_addr m)

(* Move an integer register's bits into an FP register through the stack. *)
and scratch_int_to_fp ctx ir fr =
  ins ctx "lda" [ r sp; mem (-8) sp ];
  ins ctx "stq" [ r ir; mem 0 sp ];
  ins ctx "ldt" [ f fr; mem 0 sp ];
  ins ctx "lda" [ r sp; mem 8 sp ]

and scratch_fp_to_int ctx fr ir =
  ins ctx "lda" [ r sp; mem (-8) sp ];
  ins ctx "stt" [ f fr; mem 0 sp ];
  ins ctx "ldq" [ r ir; mem 0 sp ];
  ins ctx "lda" [ r sp; mem 8 sp ]

(* Floating compare: result 0/1 in the integer temp at depth d.
   [positive] selects "condition held" (bits non-zero). *)
and fcompare ctx d opname fa fb positive =
  ins ctx opname [ fa; fb; f (ft ctx d) ];
  scratch_fp_to_int ctx (ft ctx d) (it ctx d);
  if positive then begin
    ins ctx "cmpeq" [ r (it ctx d); imm 0; r (it ctx d) ];
    ins ctx "xor" [ r (it ctx d); imm 1; r (it ctx d) ]
  end
  else ins ctx "cmpeq" [ r (it ctx d); imm 0; r (it ctx d) ]

(* A call to __divq/__remq with operands in temps d and d+1; result in d.
   Temps below d are live and must survive. *)
and emit_div_call ctx d helper =
  let live = d in
  if live > 0 then begin
    ins ctx "lda" [ r sp; mem (-8 * live) sp ];
    for k = 0 to live - 1 do
      ins ctx "stq" [ r ipool.(k); mem (8 * k) sp ]
    done
  end;
  ins ctx "mov" [ r (it ctx d); r 16 ];
  ins ctx "mov" [ r (it ctx (d + 1)); r 17 ];
  ins ctx "bsr" [ r ra; sym helper ];
  ins ctx "mov" [ r v0; r (it ctx d) ];
  if live > 0 then begin
    for k = 0 to live - 1 do
      ins ctx "ldq" [ r ipool.(k); mem (8 * k) sp ]
    done;
    ins ctx "lda" [ r sp; mem (8 * live) sp ]
  end

and emit_call ctx d { c_fn; c_args; c_ret } =
  let live = d in
  (* save live temps *)
  if live > 0 then begin
    ins ctx "lda" [ r sp; mem (-8 * live) sp ];
    for k = 0 to live - 1 do
      ins ctx "stq" [ r ipool.(k); mem (8 * k) sp ]
    done
  end;
  let n = List.length c_args in
  let indirect = match c_fn with Indirect _ -> true | Direct _ -> false in
  let total = n + if indirect then 1 else 0 in
  if total > 0 then ins ctx "lda" [ r sp; mem (-8 * total) sp ];
  List.iteri
    (fun k (cls, arg) ->
      eval ctx 0 arg;
      match cls with
      | Lint -> ins ctx "stq" [ r (it ctx 0); mem (8 * k) sp ]
      | Ldouble -> ins ctx "stt" [ f (ft ctx 0); mem (8 * k) sp ])
    c_args;
  (match c_fn with
  | Indirect fe ->
      eval ctx 0 fe;
      ins ctx "stq" [ r (it ctx 0); mem (8 * n) sp ]
  | Direct _ -> ());
  (* register arguments *)
  for k = 0 to min n 6 - 1 do
    ins ctx "ldq" [ r (16 + k); mem (8 * k) sp ]
  done;
  if indirect then ins ctx "ldq" [ r pv; mem (8 * n) sp ];
  (* position sp for stack arguments *)
  let bump = if n <= 6 then 8 * total else 48 in
  if bump > 0 then ins ctx "lda" [ r sp; mem bump sp ];
  (match c_fn with
  | Direct name -> ins ctx "bsr" [ r ra; sym name ]
  | Indirect _ -> ins ctx "jsr" [ r ra; mem 0 pv ]);
  let unbump = (8 * total) - bump in
  if unbump > 0 then ins ctx "lda" [ r sp; mem unbump sp ];
  (* result *)
  (match c_ret with
  | Some Lint | None -> ins ctx "mov" [ r v0; r (it ctx d) ]
  | Some Ldouble -> ins ctx "fmov" [ f 0; f (ft ctx d) ]);
  (* restore live temps *)
  if live > 0 then begin
    for k = 0 to live - 1 do
      ins ctx "ldq" [ r ipool.(k); mem (8 * k) sp ]
    done;
    ins ctx "lda" [ r sp; mem (8 * live) sp ]
  end

(* -- statements -------------------------------------------------------- *)

let ret_label ctx = Printf.sprintf ".L%s.ret" ctx.fname

let rec stmt ctx s =
  match s with
  | Texpr e -> eval ctx 0 e
  | Tif (c, a, b) ->
      let lelse = fresh ctx "else" and lend = fresh ctx "endif" in
      eval ctx 0 c;
      ins ctx "beq" [ r (it ctx 0); sym (if b = [] then lend else lelse) ];
      List.iter (stmt ctx) a;
      if b <> [] then begin
        ins ctx "br" [ sym lend ];
        label ctx lelse;
        List.iter (stmt ctx) b
      end;
      label ctx lend
  | Tloop { l_cond; l_post_test; l_body; l_step } ->
      let ltop = fresh ctx "top"
      and lcont = fresh ctx "cont"
      and lend = fresh ctx "end" in
      ctx.breaks <- lend :: ctx.breaks;
      ctx.continues <- lcont :: ctx.continues;
      label ctx ltop;
      if not l_post_test then begin
        match l_cond with
        | Some c ->
            eval ctx 0 c;
            ins ctx "beq" [ r (it ctx 0); sym lend ]
        | None -> ()
      end;
      List.iter (stmt ctx) l_body;
      label ctx lcont;
      List.iter (fun e -> eval ctx 0 e) l_step;
      (if l_post_test then begin
         match l_cond with
         | Some c ->
             eval ctx 0 c;
             ins ctx "bne" [ r (it ctx 0); sym ltop ]
         | None -> ins ctx "br" [ sym ltop ]
       end
       else ins ctx "br" [ sym ltop ]);
      label ctx lend;
      ctx.breaks <- List.tl ctx.breaks;
      ctx.continues <- List.tl ctx.continues
  | Treturn None -> ins ctx "br" [ sym (ret_label ctx) ]
  | Treturn (Some (cls, e)) ->
      eval ctx 0 e;
      (match cls with
      | Lint -> ins ctx "mov" [ r (it ctx 0); r v0 ]
      | Ldouble -> ins ctx "fmov" [ f (ft ctx 0); f 0 ]);
      ins ctx "br" [ sym (ret_label ctx) ]
  | Tbreak -> (
      match ctx.breaks with
      | l :: _ -> ins ctx "br" [ sym l ]
      | [] -> fail "%s: break outside loop" ctx.fname)
  | Tcontinue -> (
      match ctx.continues with
      | l :: _ -> ins ctx "br" [ sym l ]
      | [] -> fail "%s: continue outside loop" ctx.fname)

(* -- functions --------------------------------------------------------- *)

(* A function qualifies as a "light leaf" when it makes no calls (integer
   division counts as a call to the runtime helpers), never takes a
   parameter's address, and only accesses parameters as whole 64-bit
   integer values.  Such functions keep parameters in the argument
   registers and need no frame header at all. *)
let rec light_expr np e =
  let ok = light_expr np in
  match e with
  | Cint _ | Cfloat _ | Cstr _ | Glob_addr _ -> true
  | Loc_addr id -> id >= np
  | Load (S64, Loc_addr id) when id < np -> true
  | Load (_, a) -> ok a
  | Store (S64, Loc_addr id, v) when id < np -> ok v
  | Store (_, a, v) -> ok a && ok v
  | Un (_, _, a) -> ok a
  | Bin ((Ast.Div | Ast.Mod), Lint, _, _) -> false
  | Bin (_, _, a, b) -> ok a && ok b
  | Logand (a, b) | Logor (a, b) -> ok a && ok b
  | Cond (_, c, a, b) -> ok c && ok a && ok b
  | Call _ -> false
  | Cast_i2d a | Cast_d2i a -> ok a
  | Incdec { sc = S64; addr = Loc_addr id; _ } when id < np -> true
  | Incdec { addr; _ } -> ok addr
  | Assignop { op = Ast.Div | Ast.Mod; cls = Lint; _ } -> false
  | Assignop { sc = S64; addr = Loc_addr id; value; _ } when id < np -> ok value
  | Assignop { addr; value; _ } -> ok addr && ok value

let rec light_stmt np s =
  match s with
  | Texpr e -> light_expr np e
  | Tif (c, a, b) ->
      light_expr np c && List.for_all (light_stmt np) a
      && List.for_all (light_stmt np) b
  | Tloop { l_cond; l_body; l_step; _ } ->
      (match l_cond with None -> true | Some c -> light_expr np c)
      && List.for_all (light_stmt np) l_body
      && List.for_all (light_expr np) l_step
  | Treturn None | Tbreak | Tcontinue -> true
  | Treturn (Some (_, e)) -> light_expr np e

let qualifies_light fn =
  let np = List.length fn.f_params in
  (not fn.f_varargs) && np <= 6 && List.for_all (light_stmt np) fn.f_body

let func (fn : tfunc) : Asmlib.Src.stmt list =
  let nparams = List.length fn.f_params in
  (* lay out non-parameter slots in the locals area *)
  let nslots = List.length fn.f_slots in
  let slot_off = Array.make (max nslots 1) 0 in
  let cursor = ref 0 in
  List.iter
    (fun sl ->
      if sl.sl_id >= nparams then begin
        slot_off.(sl.sl_id) <- !cursor;
        cursor := !cursor + ((sl.sl_size + 7) / 8 * 8)
      end)
    fn.f_slots;
  let locals = !cursor in
  let light = qualifies_light fn in
  let frame =
    if light then (locals + 15) / 16 * 16 else (locals + 64 + 15) / 16 * 16
  in
  if frame > 32000 then fail "%s: frame too large" fn.f_name;
  let ctx =
    {
      out = [];
      nlabel = 0;
      fname = fn.f_name;
      frame;
      nparams;
      slot_off;
      varargs = fn.f_varargs;
      light;
      breaks = [];
      continues = [];
    }
  in
  push ctx (Asmlib.Src.D_globl fn.f_name);
  push ctx (Asmlib.Src.D_ent fn.f_name);
  label ctx fn.f_name;
  (* prologue *)
  if light then begin
    if frame > 0 then ins ctx "lda" [ r sp; mem (-frame) sp ]
  end
  else begin
    ins ctx "lda" [ r sp; mem (-frame) sp ];
    ins ctx "stq" [ r ra; mem (frame - 56) sp ];
    ins ctx "stq" [ r fp; mem (frame - 64) sp ];
    ins ctx "mov" [ r sp; r fp ];
    let homes = if fn.f_varargs then 6 else min nparams 6 in
    for i = 0 to homes - 1 do
      ins ctx "stq" [ r (16 + i); mem (frame - 48 + (8 * i)) fp ]
    done
  end;
  List.iter (stmt ctx) fn.f_body;
  (* epilogue *)
  label ctx (ret_label ctx);
  if light then begin
    if frame > 0 then ins ctx "lda" [ r sp; mem frame sp ]
  end
  else begin
    ins ctx "mov" [ r fp; r sp ];
    ins ctx "ldq" [ r ra; mem (frame - 56) sp ];
    ins ctx "ldq" [ r fp; mem (frame - 64) sp ];
    ins ctx "lda" [ r sp; mem frame sp ]
  end;
  ins ctx "ret" [];
  push ctx (Asmlib.Src.D_endp fn.f_name);
  List.rev ctx.out

(* -- whole program ------------------------------------------------------ *)

let mk it = { Asmlib.Src.line = 0; it }

let global (g : tglobal) : Asmlib.Src.stmt list =
  match g.g_init with
  | None -> [ mk (Asmlib.Src.D_comm (g.g_name, g.g_size, Objfile.Types.Global)) ]
  | Some inits ->
      let header =
        [ mk (Asmlib.Src.D_section Objfile.Types.Data);
          mk (Asmlib.Src.D_align 3);
          mk (Asmlib.Src.D_globl g.g_name);
          mk (Asmlib.Src.L g.g_name) ]
      in
      let one init =
        match (init, g.g_elem) with
        | Gint v, 1 -> mk (Asmlib.Src.D_byte [ Int64.to_int v land 0xFF ])
        | Gint v, _ -> mk (Asmlib.Src.D_quad [ imm64 v ])
        | Gfloat x, _ -> mk (Asmlib.Src.D_double [ x ])
        | Gaddr (s, off), _ -> mk (Asmlib.Src.D_quad [ Asmlib.Src.O_sym (s, off) ])
        | Gstr i, _ -> mk (Asmlib.Src.D_quad [ Asmlib.Src.O_sym (str_label i, 0) ])
      in
      let body = List.map one inits in
      let used = List.length inits * g.g_elem in
      let pad = if g.g_size > used then [ mk (Asmlib.Src.D_space (g.g_size - used)) ] else [] in
      header @ body @ pad

let strings (tbl : string array) : Asmlib.Src.stmt list =
  if Array.length tbl = 0 then []
  else
    mk (Asmlib.Src.D_section Objfile.Types.Rdata)
    :: List.concat
         (List.mapi
            (fun i s ->
              [ mk (Asmlib.Src.L (str_label i)); mk (Asmlib.Src.D_ascii (s, true)) ])
            (Array.to_list tbl))

let program (p : Tast.program) : Asmlib.Src.stmt list =
  let text =
    mk (Asmlib.Src.D_section Objfile.Types.Text)
    :: List.concat_map func p.p_funcs
  in
  let data = List.concat_map global p.p_globals in
  let ro = strings p.p_strings in
  text @ data @ ro

let to_asm_text p =
  let buf = Buffer.create 4096 in
  Asmlib.Src.print_program buf (program p);
  Buffer.contents buf
