type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * Q.t) list;
  rel : relation;
  rhs : Q.t;
}

type problem = {
  nvars : int;
  objective : Q.t array;
  constraints : constr list;
}

type lp_result =
  | Optimal of { value : Q.t; solution : Q.t array }
  | Infeasible
  | Unbounded

(* -- dense two-phase primal simplex, Bland's rule ----------------------- *)

(* One simplex run over tableau [t] (m rows, each of length [width]; the
   last column is the RHS), maximizing objective [c] (length [width-1],
   zero-padded over slack/artificial columns).  [eligible j] masks
   columns allowed to enter (used to freeze artificials in phase 2).
   Returns [`Optimal] or [`Unbounded]; the tableau and [basis] are
   updated in place. *)
let simplex t basis c ~eligible =
  let m = Array.length t in
  let width = if m = 0 then 0 else Array.length t.(0) in
  let ncols = width - 1 in
  let rec iterate () =
    (* reduced costs from scratch: rc_j = c_j - sum_i c_basis(i) * t_ij *)
    let entering = ref (-1) in
    (let j = ref 0 in
     while !entering < 0 && !j < ncols do
       let jj = !j in
       if eligible jj then begin
         let rc = ref c.(jj) in
         for i = 0 to m - 1 do
           let cb = c.(basis.(i)) in
           if not (Q.is_zero cb) then rc := Q.sub !rc (Q.mul cb t.(i).(jj))
         done;
         if Q.sign !rc > 0 then entering := jj
       end;
       incr j
     done);
    if !entering < 0 then `Optimal
    else begin
      let e = !entering in
      (* ratio test; ties broken on the smallest basic variable (Bland) *)
      let row = ref (-1) in
      let best = ref Q.zero in
      for i = 0 to m - 1 do
        if Q.sign t.(i).(e) > 0 then begin
          let ratio = Q.div t.(i).(ncols) t.(i).(e) in
          if
            !row < 0
            || Q.compare ratio !best < 0
            || (Q.equal ratio !best && basis.(i) < basis.(!row))
          then begin
            row := i;
            best := ratio
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        let r = !row in
        let piv = t.(r).(e) in
        for j = 0 to ncols do
          t.(r).(j) <- Q.div t.(r).(j) piv
        done;
        for i = 0 to m - 1 do
          if i <> r then begin
            let f = t.(i).(e) in
            if not (Q.is_zero f) then
              for j = 0 to ncols do
                t.(i).(j) <- Q.sub t.(i).(j) (Q.mul f t.(r).(j))
              done
          end
        done;
        basis.(r) <- e;
        iterate ()
      end
    end
  in
  iterate ()

let lp (p : problem) =
  let n = p.nvars in
  let cons = Array.of_list p.constraints in
  let m = Array.length cons in
  (* normalise rows to rhs >= 0 and count the extra columns *)
  let rows =
    Array.map
      (fun c ->
        let dense = Array.make n Q.zero in
        List.iter
          (fun (v, q) ->
            if v < 0 || v >= n then invalid_arg "Solver.lp: variable out of range";
            dense.(v) <- Q.add dense.(v) q)
          c.coeffs;
        if Q.sign c.rhs < 0 then begin
          let flipped =
            match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq
          in
          (Array.map Q.neg dense, flipped, Q.neg c.rhs)
        end
        else (dense, c.rel, c.rhs))
      cons
  in
  let nslack =
    Array.fold_left
      (fun k (_, rel, _) -> match rel with Le | Ge -> k + 1 | Eq -> k)
      0 rows
  in
  let nart =
    Array.fold_left
      (fun k (_, rel, _) -> match rel with Ge | Eq -> k + 1 | Le -> k)
      0 rows
  in
  let ncols = n + nslack + nart in
  let width = ncols + 1 in
  let t = Array.make_matrix m width Q.zero in
  let basis = Array.make m 0 in
  let art_start = n + nslack in
  let sl = ref 0 and ar = ref 0 in
  Array.iteri
    (fun i (dense, rel, rhs) ->
      Array.blit dense 0 t.(i) 0 n;
      t.(i).(ncols) <- rhs;
      (match rel with
      | Le ->
          t.(i).(n + !sl) <- Q.one;
          basis.(i) <- n + !sl;
          incr sl
      | Ge ->
          t.(i).(n + !sl) <- Q.neg Q.one;
          incr sl;
          t.(i).(art_start + !ar) <- Q.one;
          basis.(i) <- art_start + !ar;
          incr ar
      | Eq ->
          t.(i).(art_start + !ar) <- Q.one;
          basis.(i) <- art_start + !ar;
          incr ar))
    rows;
  let is_artificial j = j >= art_start in
  (* phase 1: maximize -(sum of artificials) *)
  (if nart > 0 then begin
     let c1 = Array.make ncols Q.zero in
     for j = art_start to ncols - 1 do
       c1.(j) <- Q.neg Q.one
     done;
     match simplex t basis c1 ~eligible:(fun _ -> true) with
     | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
     | `Optimal -> ()
   end);
  let art_sum =
    let s = ref Q.zero in
    for i = 0 to m - 1 do
      if is_artificial basis.(i) then s := Q.add !s t.(i).(ncols)
    done;
    !s
  in
  if nart > 0 && Q.sign art_sum <> 0 then Infeasible
  else begin
    (* drive any zero-valued artificial out of the basis if possible *)
    for i = 0 to m - 1 do
      if is_artificial basis.(i) then begin
        let j = ref 0 and found = ref (-1) in
        while !found < 0 && !j < art_start do
          if not (Q.is_zero t.(i).(!j)) then found := !j;
          incr j
        done;
        match !found with
        | -1 -> () (* redundant row; harmless to keep, stays at zero *)
        | e ->
            let piv = t.(i).(e) in
            for jj = 0 to ncols do
              t.(i).(jj) <- Q.div t.(i).(jj) piv
            done;
            for ii = 0 to m - 1 do
              if ii <> i then begin
                let f = t.(ii).(e) in
                if not (Q.is_zero f) then
                  for jj = 0 to ncols do
                    t.(ii).(jj) <- Q.sub t.(ii).(jj) (Q.mul f t.(i).(jj))
                  done
              end
            done;
            basis.(i) <- e
      end
    done;
    (* phase 2 *)
    let c2 = Array.make ncols Q.zero in
    Array.blit p.objective 0 c2 0 n;
    match
      simplex t basis c2 ~eligible:(fun j -> not (is_artificial j))
    with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make n Q.zero in
        for i = 0 to m - 1 do
          if basis.(i) < n then solution.(basis.(i)) <- t.(i).(ncols)
        done;
        let value = ref Q.zero in
        for v = 0 to n - 1 do
          value := Q.add !value (Q.mul p.objective.(v) solution.(v))
        done;
        Optimal { value = !value; solution }
  end

(* -- branch and bound --------------------------------------------------- *)

type ilp_result =
  | Ilp_optimal of { value : Q.t; solution : Q.t array }
  | Ilp_truncated of { upper : Q.t; incumbent : (Q.t * Q.t array) option }
  | Ilp_infeasible
  | Ilp_unbounded

let first_fractional sol =
  let n = Array.length sol in
  let rec go i =
    if i >= n then None
    else if Q.is_integer sol.(i) then go (i + 1)
    else Some i
  in
  go 0

let ilp ?(max_nodes = 10_000) (p : problem) =
  match lp p with
  | Unbounded -> Ilp_unbounded
  | Infeasible -> Ilp_infeasible
  | Optimal { value = root_value; solution = root_sol } -> (
      let incumbent = ref None in
      let better v =
        match !incumbent with
        | None -> true
        | Some (bv, _) -> Q.compare v bv > 0
      in
      let nodes = ref 1 in
      let exhausted = ref false in
      (* DFS over extra bound constraints *)
      let rec visit extra value sol =
        match first_fractional sol with
        | None -> if better value then incumbent := Some (value, sol)
        | Some v ->
            let lo = Q.floor sol.(v) and hi = Q.ceil sol.(v) in
            let branch c =
              if !exhausted then ()
              else if !nodes >= max_nodes then exhausted := true
              else begin
                incr nodes;
                let p' = { p with constraints = c :: extra @ p.constraints } in
                match lp p' with
                | Infeasible -> ()
                | Unbounded ->
                    (* cannot happen: the parent relaxation was bounded and
                       children are subsets; treat defensively as a prune *)
                    ()
                | Optimal { value = v'; solution = s' } ->
                    if better v' then visit (c :: extra) v' s'
              end
            in
            branch
              { coeffs = [ (v, Q.one) ]; rel = Le; rhs = { Q.num = lo; den = Bigint.one } };
            branch
              { coeffs = [ (v, Q.one) ]; rel = Ge; rhs = { Q.num = hi; den = Bigint.one } }
      in
      visit [] root_value root_sol;
      if !exhausted then Ilp_truncated { upper = root_value; incumbent = !incumbent }
      else
        match !incumbent with
        | Some (value, solution) -> Ilp_optimal { value; solution }
        | None -> Ilp_infeasible)
