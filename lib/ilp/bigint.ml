(* Sign-magnitude bignum over base-2^20 limbs (little-endian int arrays,
   no leading zero limb).  20-bit limbs keep every product below 2^40 and
   every accumulated carry well inside the native 63-bit int. *)

let limb_bits = 20
let base = 1 lsl limb_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }

let trim mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = trim mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i < 0 then -1 else 1 in
    (* min_int negates fine limb-by-limb via the loop below *)
    let rec limbs acc v =
      if v = 0 then List.rev acc
      else
        (* careful with min_int: land/lsr are fine on the bit pattern *)
        limbs ((v land mask) :: acc) (v lsr limb_bits)
    in
    let v = if i < 0 then -i else i in
    if v < 0 then begin
      (* i = min_int: -i overflows; handle via Int64-free split *)
      let low = i land mask in
      let rest = i lsr limb_bits in
      (* i is min_int: bit pattern is positive after lsr *)
      let rest_limbs = limbs [] rest in
      let mag = Array.of_list (low :: rest_limbs) in
      make sign mag
    end
    else make sign (Array.of_list (limbs [] v))
  end

let sign t = t.sign
let is_zero t = t.sign = 0

let to_int_opt t =
  let n = Array.length t.mag in
  if n = 0 then Some 0
  else if n > 4 then None (* > 80 bits *)
  else begin
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (max_int - mask) lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    if not !ok then None
    else if !v < 0 then None
    else Some (if t.sign < 0 then - !v else !v)
  end

let mcompare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let r = ref 0 and i = ref (la - 1) in
    while !r = 0 && !i >= 0 do
      r := compare a.(!i) b.(!i);
      decr i
    done;
    !r
  end

let madd a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  r

(* a - b, requires a >= b *)
let msub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mmul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land mask;
        carry := cur lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

(* magnitude divmod by a single limb *)
let mdivmod_small a d =
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth algorithm D on magnitudes; returns (quotient, remainder). *)
let mdivmod u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if mcompare u v < 0 then ([||], u)
  else if lv = 1 then begin
    let q, r = mdivmod_small u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* D1: normalise so the divisor's top limb >= base/2 *)
    let d = base / (v.(lv - 1) + 1) in
    let un = trim (mmul u [| d |]) in
    let vn = trim (mmul v [| d |]) in
    let n = Array.length vn in
    let m = Array.length un - n in
    (* working copy with an extra top limb *)
    let w = Array.make (Array.length un + 1) 0 in
    Array.blit un 0 w 0 (Array.length un);
    let q = Array.make (m + 1) 0 in
    for j = m downto 0 do
      (* D3: estimate q̂ from the top two limbs *)
      let top = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let qhat = ref (top / vn.(n - 1)) in
      let rhat = ref (top mod vn.(n - 1)) in
      let adjust () =
        !qhat >= base
        || !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor w.(j + n - 2)
      in
      while !rhat < base && adjust () do
        decr qhat;
        rhat := !rhat + vn.(n - 1)
      done;
      (* D4: multiply and subtract *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr limb_bits;
        let d0 = w.(i + j) - (p land mask) - !borrow in
        if d0 < 0 then begin
          w.(i + j) <- d0 + base;
          borrow := 1
        end
        else begin
          w.(i + j) <- d0;
          borrow := 0
        end
      done;
      let d0 = w.(j + n) - !carry - !borrow in
      (* D5/D6: if we went negative, add one divisor back *)
      if d0 < 0 then begin
        w.(j + n) <- d0 + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + vn.(i) + !carry2 in
          w.(i + j) <- s land mask;
          carry2 := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry2) land mask
      end
      else w.(j + n) <- d0;
      q.(j) <- !qhat
    done;
    (* D8: denormalise the remainder *)
    let r = trim (Array.sub w 0 n) in
    let r = if d = 1 then r else fst (mdivmod_small r d) in
    (trim q, trim r)
  end

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (madd a.mag b.mag)
  else begin
    let c = mcompare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (msub a.mag b.mag)
    else make b.sign (msub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mmul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let q, r = mdivmod a.mag b.mag in
    (make (a.sign * b.sign) q, make a.sign r)
  end

let rec gcd_mag a b =
  (* Euclid on magnitudes via divmod *)
  if Array.length b = 0 then a
  else
    let _, r = mdivmod a b in
    gcd_mag b r

let gcd a b =
  if a.sign = 0 then abs b
  else if b.sign = 0 then abs a
  else make 1 (gcd_mag a.mag b.mag)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mcompare a.mag b.mag
  else mcompare b.mag a.mag

let equal a b = compare a b = 0

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref t.mag in
    while Array.length !m > 0 do
      let q, r = mdivmod_small !m 1_000_000 in
      chunks := r :: !chunks;
      m := trim q
    done;
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%06d" c)) rest);
    Buffer.contents buf
  end
