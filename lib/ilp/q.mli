(** Exact rationals over {!Bigint}, always normalised (positive
    denominator, numerator and denominator coprime, zero is [0/1]). *)

type t = { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints n d] = n/d. @raise Division_by_zero on d = 0 *)

val make : Bigint.t -> Bigint.t -> t
val sign : t -> int
val is_zero : t -> bool
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
(** Largest integer <= the rational. *)

val ceil : t -> Bigint.t

val is_integer : t -> bool
val to_string : t -> string

val to_float : t -> float
(** Lossy, for reporting only. *)
