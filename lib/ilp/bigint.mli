(** Arbitrary-precision signed integers, dependency-free.

    Sign-magnitude over base-2{^20} limbs, so every intermediate product
    and carry fits comfortably in OCaml's 63-bit native [int].  This is
    what keeps the rational simplex exact: pivot arithmetic can grow
    coefficients past 63 bits long before a small CFG's ILP is solved. *)

type t

val zero : t
val one : t
val of_int : int -> t
val to_int_opt : t -> int option

val sign : t -> int
(** -1, 0 or 1 *)

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward
    zero and [r] carrying [a]'s sign ([|r| < |b|]).
    @raise Division_by_zero when [b] is zero. *)

val gcd : t -> t -> t
(** Non-negative; [gcd 0 0 = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
