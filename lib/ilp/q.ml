type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    let num, _ = Bigint.divmod num g in
    let den, _ = Bigint.divmod den g in
    { num; den }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let of_int i = { num = Bigint.of_int i; den = Bigint.one }
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let neg t = { t with num = Bigint.neg t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = make (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let ceil t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.sign r > 0 then Bigint.add q Bigint.one else q

let is_integer t = Bigint.equal t.den Bigint.one

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let to_float t =
  (* good enough for reporting: go through decimal strings *)
  match (Bigint.to_int_opt t.num, Bigint.to_int_opt t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ ->
      let f s = float_of_string (Bigint.to_string s) in
      f t.num /. f t.den
