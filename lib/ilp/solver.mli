(** Exact linear and integer-linear programming over {!Q}.

    All variables are implicitly non-negative; constraints are sparse
    rows compared against a right-hand side.  The LP core is a dense
    two-phase primal simplex with Bland's rule, so it terminates on every
    input and reports infeasibility and unboundedness structurally —
    never by exception.  The ILP layer is branch-and-bound on the first
    fractional variable, maximization only (which is all IPET needs). *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * Q.t) list;  (** (variable, coefficient); variables absent are 0 *)
  rel : relation;
  rhs : Q.t;
}

type problem = {
  nvars : int;
  objective : Q.t array;  (** length [nvars]; maximized *)
  constraints : constr list;
}

type lp_result =
  | Optimal of { value : Q.t; solution : Q.t array }
  | Infeasible
  | Unbounded

val lp : problem -> lp_result
(** Maximize over the continuous relaxation (x >= 0). *)

type ilp_result =
  | Ilp_optimal of { value : Q.t; solution : Q.t array }
      (** proven integral optimum *)
  | Ilp_truncated of { upper : Q.t; incumbent : (Q.t * Q.t array) option }
      (** node budget exhausted: [upper] is the root relaxation value (a
          proven upper bound on the integral optimum); [incumbent] the
          best integral solution found, if any *)
  | Ilp_infeasible
  | Ilp_unbounded  (** the continuous relaxation is unbounded above *)

val ilp : ?max_nodes:int -> problem -> ilp_result
(** Branch and bound; [max_nodes] (default 10000) LP solves. *)
