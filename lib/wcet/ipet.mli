(** IPET — implicit path enumeration over OM's CFG.

    Per procedure, an integer program over intra-procedure edge flows
    plus virtual entry/exit flows per block maximizes
    [sum cost(b) * x(b)] (the machine's cycle model summed per block)
    subject to:

    - Kirchhoff flow conservation at every block:
      in-edges + virtual-entries = out-edges + virtual-exits;
    - loop bounds from the recorded facts: the header's execution count
      is at most the observed per-entry iteration maximum times the
      loop's entry flow (entry edges, plus virtual entries anywhere in
      the body — an unprobed entry only merges streaks at record time,
      enlarging the recorded maximum, so the constraint stays sound);
    - measured-run anchors, each of which provably dominates the true
      counts of the measured run: probed never-traversed edges are zero;
      DFS-retreating edges that head no natural loop are at most their
      observed count; and per block, unprobed in-edges plus the virtual
      entry together are at most the block's observed residual
      (execution count minus probed inflow) — one shared budget, since
      an unprobed call fall-through edge and its target's virtual entry
      describe the same unobserved traffic — and symmetrically for
      unprobed out-edges plus the virtual exit.

    The total bound is the sum of per-procedure optima minus a
    termination discount: every clean run dies at a [callsys] with a
    call stack beneath it, so the terminating block's suffix after the
    callsys plus each stack frame's suffix after its call site is
    charged by the per-block counts but never retires.  The discount is
    the minimum such chain cost over every root-to-callsys chain the
    observed counts allow.  Soundness argument: the measured run's own
    flow satisfies every constraint, so each procedure optimum dominates
    the run's accounted cycles there, and the discount — a minimum over
    a superset of the run's possible termination configurations — never
    exceeds the cycles the run actually left unretired. *)

type result = {
  bound : int;  (** worst-case cycle bound; compare against [st_cycles] *)
  accounted : int;
      (** [sum cost(b) * count(b)] of the observed run — what the run
          would cost if its final block had retired completely *)
  discount : int;  (** termination discount already subtracted from [bound] *)
  per_proc : (string * int) list;  (** procedures with a nonzero optimum *)
  fallbacks : int;
      (** procedures whose first LP was unbounded and were re-solved
          with every edge capped at its observed flow (still sound) *)
  infeasible : int;
      (** procedures whose program was reported infeasible — a
          formulation bug if ever nonzero; the replay bound is used *)
  truncated : int;
      (** procedures where branch-and-bound hit the node budget and the
          root relaxation bound was used (sound, possibly looser) *)
}

val analyze : ?max_nodes:int -> Om.Cfg.t -> Facts.t -> result
(** @raise Invalid_argument when the fact set's shape does not match the
    CFG (facts recorded from a different executable). *)

val analyze_exe : ?max_nodes:int -> Objfile.Exe.t -> Facts.t -> result
(** [analyze] over [Om.Build.program]'s CFG of the executable. *)
