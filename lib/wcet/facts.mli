(** Flow facts recorded by the [trace] tool.

    A fact set is indexed by {!Om.Cfg} slot order: per-block execution
    counts, per-edge traversal counts (probeable edges only carry real
    measurements; unprobeable slots stay zero) and the per-loop maximum
    iteration streak observed between loop entries. *)

type t = {
  nb : int;  (** blocks *)
  ne : int;  (** edges *)
  nl : int;  (** loops *)
  block_counts : int array;  (** length [nb] *)
  edge_counts : int array;  (** length [ne] *)
  loop_max : int array;  (** length [nl] *)
}

val parse : string -> t
(** Parse a [trace.out] artifact (the tool's PML-like sexp).
    @raise Failure on malformed input. *)

val merge : t -> t -> t
(** Combine fact sets from several runs of the same executable so that a
    bound computed from the merged facts dominates each contributing
    run: counts add, loop maxima take the max.
    @raise Invalid_argument on mismatched shapes. *)

val predictions : Om.Cfg.t -> t -> (int * bool) list
(** Derive an edge profile for the fast engine: for every conditional
    branch with a clearly dominant recorded direction (hot side at least
    8 traversals and at least 4x the cold side), a
    [(branch_pc, predicted_taken)] pair.  Feed through
    {!Machine.Profile.of_predictions} and attach via
    [Machine.Sim.prepare ?profile].  The [cfg] must be built from the
    same executable the facts were recorded against.
    @raise Invalid_argument if the fact shapes do not match the CFG. *)

val to_json : ?cfg:Om.Cfg.t -> t -> string
(** A JSON rendering of the fact set, with block/edge addresses resolved
    when the CFG is supplied (the [--facts] artifact of [atom_cli]). *)
