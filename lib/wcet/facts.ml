type t = {
  nb : int;
  ne : int;
  nl : int;
  block_counts : int array;
  edge_counts : int array;
  loop_max : int array;
}

(* The artifact is a flat sexp; a whitespace/paren tokenizer is all the
   structure we need. *)
let parse text =
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    text;
  flush ();
  let toks = List.rev !toks in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> failwith ("Facts.parse: bad integer " ^ s)
  in
  let rec scan_slots = function
    | "slots" :: nb :: ne :: nl :: rest -> ((int_of nb, int_of ne, int_of nl), rest)
    | _ :: rest -> scan_slots rest
    | [] -> failwith "Facts.parse: no (slots ...) entry"
  in
  (match toks with
  | "trace-facts" :: "version" :: "1" :: _ -> ()
  | _ -> failwith "Facts.parse: not a version-1 trace-facts artifact");
  let (nb, ne, nl), rest = scan_slots toks in
  if nb < 0 || ne < 0 || nl < 0 then failwith "Facts.parse: negative slot count";
  let block_counts = Array.make nb 0 in
  let edge_counts = Array.make ne 0 in
  let loop_max = Array.make nl 0 in
  let set arr n i v =
    if i < 0 || i >= n then failwith "Facts.parse: slot out of range";
    arr.(i) <- v
  in
  let rec entries = function
    | "block" :: i :: v :: rest ->
        set block_counts nb (int_of i) (int_of v);
        entries rest
    | "edge" :: i :: v :: rest ->
        set edge_counts ne (int_of i) (int_of v);
        entries rest
    | "loop" :: i :: v :: rest ->
        set loop_max nl (int_of i) (int_of v);
        entries rest
    | _ :: rest -> entries rest
    | [] -> ()
  in
  entries rest;
  { nb; ne; nl; block_counts; edge_counts; loop_max }

let merge a b =
  if a.nb <> b.nb || a.ne <> b.ne || a.nl <> b.nl then
    invalid_arg "Facts.merge: mismatched shapes";
  {
    nb = a.nb;
    ne = a.ne;
    nl = a.nl;
    block_counts = Array.map2 ( + ) a.block_counts b.block_counts;
    edge_counts = Array.map2 ( + ) a.edge_counts b.edge_counts;
    loop_max = Array.map2 max a.loop_max b.loop_max;
  }

(* Edge profile for the fast engine: for every conditional branch whose
   recorded counts show a clearly dominant direction, predict it.  The
   thresholds keep cold or balanced branches out of the table — wrong
   speculation is never incorrect, only slower, but a branch that goes
   both ways would pay a guard miss on every other crossing. *)
let predictions (cfg : Om.Cfg.t) t : (int * bool) list =
  if t.nb <> cfg.Om.Cfg.nblocks || t.ne <> Array.length cfg.Om.Cfg.edges then
    invalid_arg "Facts.predictions: facts do not match this executable's CFG";
  let preds = ref [] in
  for gid = 0 to cfg.Om.Cfg.nblocks - 1 do
    let b = cfg.Om.Cfg.blocks.(gid) in
    let ni = Array.length b.Om.Ir.b_insts in
    if ni > 0 then begin
      let last = b.Om.Ir.b_insts.(ni - 1) in
      match last.Om.Ir.i_insn with
      | Alpha.Insn.Cbr _ | Alpha.Insn.Fbr _ -> (
          let count kind =
            List.fold_left
              (fun acc eid ->
                let e = cfg.Om.Cfg.edges.(eid) in
                if e.Om.Cfg.e_kind = kind then Some t.edge_counts.(eid)
                else acc)
              None
              cfg.Om.Cfg.succs.(gid)
          in
          match (count Om.Cfg.Taken, count Om.Cfg.Fallthrough) with
          | Some tk, Some ft ->
              let hot, dir = if tk >= ft then (tk, true) else (ft, false) in
              let cold = min tk ft in
              if hot >= 8 && hot >= 4 * cold then
                preds := (last.Om.Ir.i_pc, dir) :: !preds
          | _ -> ())
      | _ -> ()
    end
  done;
  !preds

let to_json ?cfg t =
  let b = Buffer.create 1024 in
  let addr_of gid =
    match cfg with
    | Some c when gid < c.Om.Cfg.nblocks ->
        Printf.sprintf ", \"addr\": %d" c.Om.Cfg.blocks.(gid).Om.Ir.b_addr
    | _ -> ""
  in
  let edge_of i =
    match cfg with
    | Some c when i < Array.length c.Om.Cfg.edges ->
        let e = c.Om.Cfg.edges.(i) in
        Printf.sprintf ", \"src\": %d, \"dst\": %d, \"kind\": \"%s\""
          e.Om.Cfg.e_src e.Om.Cfg.e_dst
          (match e.Om.Cfg.e_kind with
          | Om.Cfg.Taken -> "taken"
          | Om.Cfg.Fallthrough -> "fallthrough")
    | _ -> ""
  in
  let loop_of i =
    match cfg with
    | Some c when i < Array.length c.Om.Cfg.loops ->
        Printf.sprintf ", \"header\": %d" c.Om.Cfg.loops.(i).Om.Cfg.l_header
    | _ -> ""
  in
  Buffer.add_string b "{\n  \"format\": \"trace-facts\", \"version\": 1,\n";
  Buffer.add_string b
    (Printf.sprintf "  \"slots\": { \"blocks\": %d, \"edges\": %d, \"loops\": %d },\n"
       t.nb t.ne t.nl);
  let section name n get extra =
    Buffer.add_string b (Printf.sprintf "  \"%s\": [" name);
    let first = ref true in
    for i = 0 to n - 1 do
      if get i <> 0 then begin
        if not !first then Buffer.add_string b ",";
        first := false;
        Buffer.add_string b
          (Printf.sprintf "\n    { \"id\": %d, \"count\": %d%s }" i (get i) (extra i))
      end
    done;
    Buffer.add_string b "\n  ]"
  in
  section "blocks" t.nb (fun i -> t.block_counts.(i)) addr_of;
  Buffer.add_string b ",\n";
  section "edges" t.ne (fun i -> t.edge_counts.(i)) edge_of;
  Buffer.add_string b ",\n";
  section "loops" t.nl (fun i -> t.loop_max.(i)) loop_of;
  Buffer.add_string b "\n}\n";
  Buffer.contents b
