open Om

type result = {
  bound : int;
  accounted : int;
  discount : int;
  per_proc : (string * int) list;
  fallbacks : int;
  infeasible : int;
  truncated : int;
}

let q = Ilp.Q.of_int

let bigint_to_int b =
  match Ilp.Bigint.to_int_opt b with Some i -> i | None -> max_int

let floor_to_int v = bigint_to_int (Ilp.Q.floor v)

let analyze ?(max_nodes = 400) (cfg : Cfg.t) (facts : Facts.t) =
  if
    facts.Facts.nb <> cfg.Cfg.nblocks
    || facts.Facts.ne <> Array.length cfg.Cfg.edges
    || facts.Facts.nl <> Array.length cfg.Cfg.loops
  then invalid_arg "Ipet.analyze: facts do not match this executable's CFG";
  let nblocks = cfg.Cfg.nblocks in
  let nprocs = Array.length cfg.Cfg.ir.Ir.procs in
  let costs = Cfg.block_costs cfg ~model:Machine.Sim.insn_cycles in
  let count g = facts.Facts.block_counts.(g) in
  let ecount e = facts.Facts.edge_counts.(e) in
  let accounted = ref 0 in
  for g = 0 to nblocks - 1 do
    accounted := !accounted + (costs.(g) * count g)
  done;
  (* measured-run anchors *)
  let edge_zero =
    Array.map
      (fun e ->
        if e.Cfg.e_probe then ecount e.Cfg.e_id = 0
        else count e.Cfg.e_src = 0)
      cfg.Cfg.edges
  in
  let eta_cap = Array.make nblocks 0 in
  let xi_cap = Array.make nblocks 0 in
  for g = 0 to nblocks - 1 do
    let probed_in =
      List.fold_left
        (fun s eid ->
          if cfg.Cfg.edges.(eid).Cfg.e_probe then s + ecount eid else s)
        0 cfg.Cfg.preds.(g)
    in
    let probed_out =
      List.fold_left
        (fun s eid ->
          if cfg.Cfg.edges.(eid).Cfg.e_probe then s + ecount eid else s)
        0 cfg.Cfg.succs.(g)
    in
    eta_cap.(g) <- max 0 (count g - probed_in);
    xi_cap.(g) <- max 0 (count g - probed_out)
  done;
  let retreating = Array.make (Array.length cfg.Cfg.edges) false in
  List.iter (fun eid -> retreating.(eid) <- true) cfg.Cfg.retreating;
  let per_proc = ref [] in
  let fallbacks = ref 0 and infeasible = ref 0 and truncated = ref 0 in
  let total = ref 0 in
  for pi = 0 to nprocs - 1 do
    let lo = cfg.Cfg.proc_first.(pi) and hi = cfg.Cfg.proc_first.(pi + 1) in
    let executed = ref false in
    for g = lo to hi - 1 do
      if count g > 0 then executed := true
    done;
    if !executed then begin
      (* variable assignment: live edges, then nonzero-cap eta/xi *)
      let nvars = ref 0 in
      let fresh () =
        let v = !nvars in
        incr nvars;
        v
      in
      let edge_var = Hashtbl.create 64 in
      let eta_var = Hashtbl.create 16 in
      let xi_var = Hashtbl.create 16 in
      for g = lo to hi - 1 do
        List.iter
          (fun eid -> if not edge_zero.(eid) then Hashtbl.replace edge_var eid (fresh ()))
          cfg.Cfg.succs.(g)
      done;
      for g = lo to hi - 1 do
        if eta_cap.(g) > 0 then Hashtbl.replace eta_var g (fresh ());
        if xi_cap.(g) > 0 then Hashtbl.replace xi_var g (fresh ())
      done;
      let objective = Array.make !nvars Ilp.Q.zero in
      Hashtbl.iter
        (fun eid v ->
          let src = cfg.Cfg.edges.(eid).Cfg.e_src in
          objective.(v) <- Ilp.Q.add objective.(v) (q costs.(src)))
        edge_var;
      Hashtbl.iter
        (fun g v -> objective.(v) <- Ilp.Q.add objective.(v) (q costs.(g)))
        xi_var;
      let constraints = ref [] in
      let add c = constraints := c :: !constraints in
      (* flow conservation: in + eta = out + xi *)
      for g = lo to hi - 1 do
        let coeffs = ref [] in
        List.iter
          (fun eid ->
            match Hashtbl.find_opt edge_var eid with
            | Some v -> coeffs := (v, Ilp.Q.one) :: !coeffs
            | None -> ())
          cfg.Cfg.preds.(g);
        (match Hashtbl.find_opt eta_var g with
        | Some v -> coeffs := (v, Ilp.Q.one) :: !coeffs
        | None -> ());
        List.iter
          (fun eid ->
            match Hashtbl.find_opt edge_var eid with
            | Some v -> coeffs := (v, Ilp.Q.neg Ilp.Q.one) :: !coeffs
            | None -> ())
          cfg.Cfg.succs.(g);
        (match Hashtbl.find_opt xi_var g with
        | Some v -> coeffs := (v, Ilp.Q.neg Ilp.Q.one) :: !coeffs
        | None -> ());
        if !coeffs <> [] then
          add { Ilp.Solver.coeffs = !coeffs; rel = Ilp.Solver.Eq; rhs = Ilp.Q.zero }
      done;
      (* anchor caps: probed retreating edges at their observed counts;
         then, per block, unprobed inflow plus virtual entries share one
         budget — the observed residual — because an unprobed CFG edge
         (a call's fall-through) and the virtual entry of its target
         describe the same unobserved traffic; giving each its own cap
         would charge post-call blocks twice.  Symmetrically for
         unprobed outflow plus virtual exits. *)
      Hashtbl.iter
        (fun eid v ->
          let e = cfg.Cfg.edges.(eid) in
          if e.Cfg.e_probe && retreating.(eid) then
            add
              {
                Ilp.Solver.coeffs = [ (v, Ilp.Q.one) ];
                rel = Ilp.Solver.Le;
                rhs = q (ecount eid);
              })
        edge_var;
      for g = lo to hi - 1 do
        let shared_budget edge_side var_tbl cap =
          let coeffs = ref [] in
          List.iter
            (fun eid ->
              if not cfg.Cfg.edges.(eid).Cfg.e_probe then
                match Hashtbl.find_opt edge_var eid with
                | Some v -> coeffs := (v, Ilp.Q.one) :: !coeffs
                | None -> ())
            edge_side;
          (match Hashtbl.find_opt var_tbl g with
          | Some v -> coeffs := (v, Ilp.Q.one) :: !coeffs
          | None -> ());
          if !coeffs <> [] then
            add
              { Ilp.Solver.coeffs = !coeffs; rel = Ilp.Solver.Le; rhs = q cap }
        in
        shared_budget cfg.Cfg.preds.(g) eta_var eta_cap.(g);
        shared_budget cfg.Cfg.succs.(g) xi_var xi_cap.(g)
      done;
      (* loop bounds *)
      Array.iteri
        (fun li l ->
          if cfg.Cfg.block_proc.(l.Cfg.l_header) = pi then begin
            let bmax = facts.Facts.loop_max.(li) in
            let coeffs = ref [] in
            let h = l.Cfg.l_header in
            List.iter
              (fun eid ->
                match Hashtbl.find_opt edge_var eid with
                | Some v -> coeffs := (v, Ilp.Q.one) :: !coeffs
                | None -> ())
              cfg.Cfg.succs.(h);
            (match Hashtbl.find_opt xi_var h with
            | Some v -> coeffs := (v, Ilp.Q.one) :: !coeffs
            | None -> ());
            let nb = Ilp.Q.neg (q bmax) in
            List.iter
              (fun eid ->
                match Hashtbl.find_opt edge_var eid with
                | Some v -> coeffs := (v, nb) :: !coeffs
                | None -> ())
              l.Cfg.l_entries;
            List.iter
              (fun g ->
                match Hashtbl.find_opt eta_var g with
                | Some v -> coeffs := (v, nb) :: !coeffs
                | None -> ())
              l.Cfg.l_body;
            if !coeffs <> [] then
              add
                {
                  Ilp.Solver.coeffs = !coeffs;
                  rel = Ilp.Solver.Le;
                  rhs = Ilp.Q.zero;
                }
          end)
        cfg.Cfg.loops;
      let problem =
        { Ilp.Solver.nvars = !nvars; objective; constraints = !constraints }
      in
      (* replay bound: the observed run's own accounted cycles in this
         procedure — the defensive floor every fallback falls back to *)
      let replay = ref 0 in
      for g = lo to hi - 1 do
        replay := !replay + (costs.(g) * count g)
      done;
      let with_all_edges_capped () =
        let extra = ref problem.Ilp.Solver.constraints in
        Hashtbl.iter
          (fun eid v ->
            let e = cfg.Cfg.edges.(eid) in
            let cap = if e.Cfg.e_probe then ecount eid else count e.Cfg.e_src in
            extra :=
              {
                Ilp.Solver.coeffs = [ (v, Ilp.Q.one) ];
                rel = Ilp.Solver.Le;
                rhs = q cap;
              }
              :: !extra)
          edge_var;
        { problem with Ilp.Solver.constraints = !extra }
      in
      let solve p =
        match Ilp.Solver.ilp ~max_nodes p with
        | Ilp.Solver.Ilp_optimal { value; _ } -> Some (floor_to_int value)
        | Ilp.Solver.Ilp_truncated { upper; _ } ->
            incr truncated;
            Some (floor_to_int upper)
        | Ilp.Solver.Ilp_infeasible | Ilp.Solver.Ilp_unbounded -> None
      in
      let opt =
        match Ilp.Solver.ilp ~max_nodes problem with
        | Ilp.Solver.Ilp_optimal { value; _ } -> floor_to_int value
        | Ilp.Solver.Ilp_truncated { upper; _ } ->
            incr truncated;
            floor_to_int upper
        | Ilp.Solver.Ilp_unbounded -> (
            incr fallbacks;
            match solve (with_all_edges_capped ()) with
            | Some v -> v
            | None ->
                incr infeasible;
                !replay)
        | Ilp.Solver.Ilp_infeasible ->
            incr infeasible;
            !replay
      in
      let opt = max opt !replay in
      total := !total + opt;
      if opt > 0 then
        per_proc := (cfg.Cfg.ir.Ir.procs.(pi).Ir.p_name, opt) :: !per_proc
    end
  done;
  (* Termination discount.  A clean run dies at an executed callsys
     with a call stack beneath it; the charged-but-unretired cycles are
     that block's suffix after the callsys plus, for every frame on the
     stack, the calling block's suffix after its call site.  We minimize
     over every chain the observed counts allow — root procedure, then
     executed call sites down to an executed callsys — a superset of the
     run's actual configuration, so the minimum never exceeds the truth.
     Roots are procedures no executed block calls directly; the actual
     stack bottom is the program entry, which nothing calls.  Indirect
     calls (jsr) contribute a chain edge into every procedure, only ever
     enlarging the feasible set.  If the chain graph degenerates (no
     root reaches a callsys) we fall back to the plain minimum callsys
     suffix, itself a lower bound on the unretired cycles. *)
  let cost_of i = Machine.Sim.insn_cycles i.Ir.i_insn in
  (* (caller, Some callee | None = indirect, block suffix after the call) *)
  let call_sites = ref [] in
  (* (proc, block suffix after the callsys) *)
  let term_sites = ref [] in
  for g = 0 to nblocks - 1 do
    if count g > 0 then begin
      let insts = cfg.Cfg.blocks.(g).Ir.b_insts in
      let p = cfg.Cfg.block_proc.(g) in
      let acc = ref 0 in
      for j = Array.length insts - 1 downto 0 do
        let i = insts.(j) in
        (match i.Ir.i_insn with
        | Alpha.Insn.Call_pal 0x83 -> term_sites := (p, !acc) :: !term_sites
        | insn when Alpha.Insn.is_call insn ->
            let callee =
              match Alpha.Insn.branch_target ~pc:i.Ir.i_pc insn with
              | Some t -> (
                  match Cfg.gid_of_addr cfg t with
                  | Some gd -> Some cfg.Cfg.block_proc.(gd)
                  | None -> None)
              | None -> None
            in
            call_sites := (p, callee, !acc) :: !call_sites
        | _ -> ());
        acc := !acc + cost_of i
      done
    end
  done;
  let called = Array.make nprocs false in
  List.iter
    (fun (_, callee, _) ->
      match callee with Some p -> called.(p) <- true | None -> ())
    !call_sites;
  let dist = Array.make nprocs max_int in
  for p = 0 to nprocs - 1 do
    if not called.(p) then dist.(p) <- 0
  done;
  (* Bellman-Ford relaxation: few procedures, non-negative weights *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (caller, callee, w) ->
        if dist.(caller) < max_int then begin
          let relax p =
            if dist.(caller) + w < dist.(p) then begin
              dist.(p) <- dist.(caller) + w;
              changed := true
            end
          in
          match callee with
          | Some p -> relax p
          | None -> Array.iteri (fun p _ -> relax p) dist
        end)
      !call_sites
  done;
  let chain = ref max_int in
  List.iter
    (fun (p, tail) ->
      if dist.(p) < max_int && dist.(p) + tail < !chain then
        chain := dist.(p) + tail)
    !term_sites;
  let discount =
    if !chain < max_int then !chain
    else
      match !term_sites with
      | [] -> 0
      | l -> List.fold_left (fun acc (_, tail) -> min acc tail) max_int l
  in
  {
    bound = !total - discount;
    accounted = !accounted;
    discount;
    per_proc = List.rev !per_proc;
    fallbacks = !fallbacks;
    infeasible = !infeasible;
    truncated = !truncated;
  }

let analyze_exe ?max_nodes exe facts =
  analyze ?max_nodes (Cfg.build (Build.program exe)) facts
