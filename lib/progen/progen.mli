(** A deterministic, seeded generator of well-typed, terminating Mini-C
    programs, with an interpreter-independent oracle.

    Every generated program:

    - is valid Mini-C (it must parse, typecheck and compile — a frontend
      rejection is a compiler bug, not a generator miss);
    - terminates by construction: every loop has a constant trip count
      (or a counter the loop body provably advances), recursion carries
      an explicit depth guard, and the generator tracks an estimated
      dynamic-work budget so programs stay small enough to soak at
      fleet scale;
    - prints a running self-checksum and a final [progen S.Z: chk=...]
      line on stdout, so a silent miscompile is visible as an output
      mismatch rather than requiring any state inspection;
    - comes with {!expected_stdout}: the output predicted by a small
      OCaml evaluator over the generator's own IR.  The oracle shares
      no code with the Mini-C frontend, the code generator or either
      simulator engine, so agreement is evidence that the whole stack
      (parser → typechecker → codegen → assembler → linker → machine)
      preserved the program's meaning.

    The program space covers: nested bounded loops ([for]/[while] with
    [break]/[continue]), recursion with depth guards, pointer chasing
    over a global struct array and over [malloc]'d linked lists,
    global/local scalar and array mixes (long and char), compound
    assignment, short-circuit logic, ternaries, pure helper functions,
    and interleaved [printf] traffic.  Floating point is deliberately
    excluded: the oracle would have to model the runtime's approximate
    [sqrt]/[%f] rounding, and the hand-written workload suite already
    covers FP paths. *)

type t
(** A generated program: the IR it was built from plus the rendered
    source and the oracle's expected stdout. *)

val generate : ?size:int -> seed:int -> unit -> t
(** Generate the program for [seed] (default [size] 10).  Deterministic:
    the PRNG is a self-contained splitmix64, so the same (seed, size)
    yields a byte-identical program on any platform or OCaml version.
    [size] scales the statement count, helper count and work budget. *)

val seed : t -> int
val size : t -> int

val source : t -> string
(** The Mini-C source text. *)

val expected_stdout : t -> string
(** Everything the program prints when it runs correctly, per the
    oracle evaluator. *)

val node_count : t -> int
(** The program's IR weight (statements, expressions and loop trip
    counts) — the measure {!shrink} strictly decreases. *)

val func_names : t -> string list
(** Names of the generated helper functions, in declaration order —
    these plus ["main"] are the program's own procedures, as opposed to
    the runtime library's. *)

val max_loop_count : t -> int
(** The largest constant trip count of any loop in the program's IR
    ([0] when it has none).  Every loop the renderer emits is bounded
    by a constant from the IR, so no single entry of a generated loop
    can iterate more than this many times — the oracle-side ground
    truth that the [trace] tool's recorded per-entry loop maxima are
    checked against. *)

val shrink : t -> (t -> bool) -> t
(** [shrink p still_fails] greedily minimises a failing program: it
    tries removing statements, unwrapping loop/if bodies, halving trip
    counts and dropping unreferenced helpers, keeping each mutation only
    if [still_fails] holds on the re-rendered, re-oracled candidate.
    The result still satisfies [still_fails] (or is [p] itself if no
    mutation preserved it) and has a strictly smaller {!node_count}
    whenever any mutation was accepted.  Source and expected stdout are
    recomputed, so the shrunk program is self-consistent. *)

val repro_hint : t -> string
(** A one-line command that regenerates and re-checks this program,
    e.g. ["dune exec bench/main.exe -- soak --seed 42 --count 1"]. *)
