(* Seeded generator of well-typed, terminating Mini-C programs, with an
   interpreter-independent oracle.

   The generator builds a small IR, renders it to Mini-C source, and
   evaluates the same IR with a direct OCaml interpreter to predict the
   program's stdout.  The IR is restricted so that every construct has
   exactly one meaning in both worlds:

   - all integer arithmetic is 64-bit two's complement (Int64 on the
     oracle side, Alpha quadwords on the machine side);
   - division and remainder use positive constant divisors only; the
     runtime's __divq/__remq truncate toward zero with the remainder
     taking the dividend's sign, exactly like Int64.div/Int64.rem;
   - shifts use constant counts in [0, 48];
   - array indices are masked with the (power-of-two) array length;
   - char loads are rendered with an explicit & 0xFF (ldbu already
     zero-extends; the mask makes the convention visible), char stores
     are masked by Mini-C's char coercion;
   - loops have constant trip counts (or a counter the rendered code
     provably advances), recursion carries an explicit depth guard, so
     every program terminates by construction;
   - helper functions are pure (no global writes), so argument
     evaluation order cannot matter.

   Floating point is deliberately out of scope: the oracle would have to
   model the runtime's approximate sqrt and %f rounding, and the
   hand-written workload suite already exercises those paths. *)

(* -- deterministic PRNG ------------------------------------------------- *)

(* splitmix64: self-contained so the same seed yields the same program on
   any OCaml version (Stdlib.Random's algorithm is not pinned). *)
module Rng = struct
  type t = { mutable s : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let make seed =
    let z = Int64.logxor (Int64.of_int seed) 0x5851F42D4C957F2DL in
    { s = z }

  let next t =
    t.s <- Int64.add t.s golden;
    let z = t.s in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform-ish in [0, n); n > 0 *)
  let int t n =
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

  let int64 t = next t
  let bool t = Int64.logand (next t) 1L = 1L

  (* pick an element of a non-empty list *)
  let choose t xs = List.nth xs (int t (List.length xs))
end

(* -- IR ----------------------------------------------------------------- *)

type binop = Add | Sub | Mul | Band | Bor | Bxor | Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Cint of int64
  | Local of string
  | Global of string
  | Elem of string * expr * int  (* arr[(e & (n-1))]; n a power of two *)
  | Byte of string * expr * int  (* (buf[(e & (n-1))] & 0xFF) *)
  | Bin of binop * expr * expr
  | Div of expr * int64  (* divisor > 0 *)
  | Mod of expr * int64  (* divisor > 0 *)
  | Shl of expr * int
  | Shr of expr * int
  | Neg of expr
  | Bnot of expr
  | Lnot of expr
  | Andand of expr * expr
  | Oror of expr * expr
  | Cond of expr * expr * expr
  | Call of string * expr list

type lhs =
  | Lloc of string
  | Lglob of string
  | Lelem of string * expr * int
  | Lbyte of string * expr * int

(* pointer chase over the global struct array: link pool[] by a seeded
   affine map, then follow .next for wk_steps hops *)
type walk = {
  wk_id : int;
  wk_pool : int;  (* pool array length, a power of two *)
  wk_a : int;  (* odd multiplier, < pool size *)
  wk_b : int;
  wk_start : int;
  wk_steps : int;
  wk_mul : int64;
  wk_add : int64;
}

(* malloc'd linked list: cons ls_len cells, then sum by walking to 0 *)
type listsum = { ls_id : int; ls_len : int; ls_mul : int64; ls_add : int64 }

type stmt =
  | Sset of lhs * expr
  | Sop of binop * lhs * expr  (* compound assign; Add|Sub|Mul|Band|Bor|Bxor only *)
  | Schk of expr  (* chk = (((chk * 31) ^ (chk >> 7)) + e); *)
  | Sif of expr * stmt list * stmt list
  | Sfor of { var : string; count : int; body : stmt list }
  | Swhile of { var : string; count : int; body : stmt list }
  | Sbreak_if of expr  (* if (e) { break; } *)
  | Scont_if of expr  (* if (e) { continue; }  — only directly inside Sfor *)
  | Sprint of int * expr  (* printf("t<id>=%x\n", (e & 0xFFFFFFF)); *)
  | Swalk of walk
  | Slist of listsum

type func = {
  fn_name : string;
  fn_params : string list;  (* all long; recursive helpers put the depth first *)
  fn_locals : (string * expr) list;  (* declared in order, with initialisers *)
  fn_base : expr option;  (* Some e: emit "if (<first param> < 1) { return e; }" *)
  fn_selfcalls : int;  (* 0 = not recursive *)
  fn_body : stmt list;  (* restricted: assigns locals only *)
  fn_ret : expr;
}

type gdecl =
  | Gscalar of string * int64
  | Garr of string * int * int64 list  (* partial initialiser; rest is .bss zeros *)
  | Gbytes of string * int

type prog = {
  p_seed : int;
  p_size : int;
  p_pool : int;  (* pool array length (power of two); used by Swalk *)
  p_globals : gdecl list;
  p_funcs : func list;
  p_scalars : (string * int64) list;  (* every long local of main, incl. loop vars *)
  p_main : stmt list;
}

type t = { t_prog : prog; t_source : string; t_expect : string }

(* -- IR census ---------------------------------------------------------- *)

let rec expr_nodes = function
  | Cint _ | Local _ | Global _ -> 1
  | Elem (_, e, _) | Byte (_, e, _) -> 1 + expr_nodes e
  | Div (e, _) | Mod (e, _) | Shl (e, _) | Shr (e, _) | Neg e | Bnot e | Lnot e ->
      1 + expr_nodes e
  | Bin (_, a, b) | Andand (a, b) | Oror (a, b) -> 1 + expr_nodes a + expr_nodes b
  | Cond (c, a, b) -> 1 + expr_nodes c + expr_nodes a + expr_nodes b
  | Call (_, args) -> 1 + List.fold_left (fun n a -> n + expr_nodes a) 0 args

let lhs_nodes = function
  | Lloc _ | Lglob _ -> 1
  | Lelem (_, e, _) | Lbyte (_, e, _) -> 1 + expr_nodes e

let rec stmt_nodes = function
  | Sset (l, e) | Sop (_, l, e) -> 1 + lhs_nodes l + expr_nodes e
  | Schk e | Sbreak_if e | Scont_if e | Sprint (_, e) -> 1 + expr_nodes e
  | Sif (c, a, b) -> 1 + expr_nodes c + block_nodes a + block_nodes b
  (* trip counts weigh in so that halving them counts as a shrink *)
  | Sfor { count; body; _ } | Swhile { count; body; _ } ->
      2 + count + block_nodes body
  | Swalk w -> 8 + w.wk_steps
  | Slist l -> 8 + l.ls_len

and block_nodes b = List.fold_left (fun n s -> n + stmt_nodes s) 0 b

let func_nodes f =
  1
  + List.fold_left (fun n (_, e) -> n + 1 + expr_nodes e) 0 f.fn_locals
  + (match f.fn_base with None -> 0 | Some e -> expr_nodes e)
  + block_nodes f.fn_body + expr_nodes f.fn_ret

let prog_nodes p =
  List.length p.p_globals + List.length p.p_scalars
  + List.fold_left (fun n f -> n + func_nodes f) 0 p.p_funcs
  + block_nodes p.p_main

(* -- rendering ---------------------------------------------------------- *)

let chk_mask = 0xFFFFFFFL

let op_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Eq -> "==" | Ne -> "!="

let const_str v =
  (* min_int is its own negation, so spell it as min_int+1 - 1 *)
  if Int64.equal v Int64.min_int then
    Printf.sprintf "((0 - %Ld) - 1)" Int64.max_int
  else if v < 0L then Printf.sprintf "(0 - %Ld)" (Int64.neg v)
  else Int64.to_string v

(* Global initialisers must be constants after parsing, so negative values
   are rendered as [-n] (unary minus on a literal) rather than [(0 - n)]. *)
let gconst_str v =
  if Int64.equal v Int64.min_int then
    Printf.sprintf "(-%Ld - 1)" Int64.max_int
  else if v < 0L then Printf.sprintf "-%Ld" (Int64.neg v)
  else Int64.to_string v

let rec expr_str = function
  | Cint v -> const_str v
  | Local n | Global n -> n
  | Elem (a, e, n) -> Printf.sprintf "%s[(%s & %d)]" a (expr_str e) (n - 1)
  | Byte (a, e, n) -> Printf.sprintf "(%s[(%s & %d)] & 255)" a (expr_str e) (n - 1)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_str a) (op_str op) (expr_str b)
  | Div (e, k) -> Printf.sprintf "(%s / %Ld)" (expr_str e) k
  | Mod (e, k) -> Printf.sprintf "(%s %% %Ld)" (expr_str e) k
  | Shl (e, k) -> Printf.sprintf "(%s << %d)" (expr_str e) k
  | Shr (e, k) -> Printf.sprintf "(%s >> %d)" (expr_str e) k
  | Neg e -> Printf.sprintf "(-%s)" (expr_str e)
  | Bnot e -> Printf.sprintf "(~%s)" (expr_str e)
  | Lnot e -> Printf.sprintf "(!%s)" (expr_str e)
  | Andand (a, b) -> Printf.sprintf "(%s && %s)" (expr_str a) (expr_str b)
  | Oror (a, b) -> Printf.sprintf "(%s || %s)" (expr_str a) (expr_str b)
  | Cond (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_str c) (expr_str a) (expr_str b)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))

let lhs_str = function
  | Lloc n | Lglob n -> n
  | Lelem (a, e, n) -> Printf.sprintf "%s[(%s & %d)]" a (expr_str e) (n - 1)
  | Lbyte (a, e, n) -> Printf.sprintf "%s[(%s & %d)]" a (expr_str e) (n - 1)

let opassign_str = function
  | Add -> "+=" | Sub -> "-=" | Mul -> "*="
  | Band -> "&=" | Bor -> "|=" | Bxor -> "^="
  | Lt | Le | Gt | Ge | Eq | Ne -> invalid_arg "opassign_str: comparison"

let chk_update_str e_str =
  Printf.sprintf "chk = (((chk * 31) ^ (chk >> 7)) + %s);" e_str

let rec stmt_lines ind s =
  let pad = String.make (2 * ind) ' ' in
  match s with
  | Sset (l, e) -> [ Printf.sprintf "%s%s = %s;" pad (lhs_str l) (expr_str e) ]
  | Sop (op, l, e) ->
      [ Printf.sprintf "%s%s %s %s;" pad (lhs_str l) (opassign_str op) (expr_str e) ]
  | Schk e -> [ pad ^ chk_update_str (expr_str e) ]
  | Sif (c, a, []) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_str c))
      :: block_lines (ind + 1) a
      @ [ pad ^ "}" ]
  | Sif (c, a, b) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_str c))
      :: block_lines (ind + 1) a
      @ [ pad ^ "} else {" ]
      @ block_lines (ind + 1) b
      @ [ pad ^ "}" ]
  | Sfor { var; count; body } ->
      (Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {" pad var var count var)
      :: block_lines (ind + 1) body
      @ [ pad ^ "}" ]
  | Swhile { var; count; body } ->
      (Printf.sprintf "%s%s = 0;" pad var)
      :: (Printf.sprintf "%swhile (%s < %d) {" pad var count)
      :: block_lines (ind + 1) body
      @ [ Printf.sprintf "%s  %s += 1;" pad var; pad ^ "}" ]
  | Sbreak_if e -> [ Printf.sprintf "%sif (%s) { break; }" pad (expr_str e) ]
  | Scont_if e -> [ Printf.sprintf "%sif (%s) { continue; }" pad (expr_str e) ]
  | Sprint (id, e) ->
      [ Printf.sprintf "%sprintf(\"t%d=%%x\\n\", (%s & %Ld));" pad id (expr_str e)
          chk_mask ]
  | Swalk w ->
      let k = w.wk_id in
      [
        Printf.sprintf "%sfor (iw%d = 0; iw%d < %d; iw%d++) {" pad k k w.wk_pool k;
        Printf.sprintf "%s  pool[iw%d].val = ((iw%d * %s) + %s);" pad k k
          (const_str w.wk_mul) (const_str w.wk_add);
        Printf.sprintf "%s  pool[iw%d].next = &pool[(((iw%d * %d) + %d) & %d)];"
          pad k k w.wk_a w.wk_b (w.wk_pool - 1);
        Printf.sprintf "%s}" pad;
        Printf.sprintf "%spw%d = &pool[%d];" pad k w.wk_start;
        Printf.sprintf "%saw%d = 0;" pad k;
        Printf.sprintf "%sfor (jw%d = 0; jw%d < %d; jw%d++) {" pad k k w.wk_steps k;
        Printf.sprintf "%s  aw%d = ((aw%d * 3) + pw%d->val);" pad k k k;
        Printf.sprintf "%s  pw%d = pw%d->next;" pad k k;
        Printf.sprintf "%s}" pad;
        pad ^ chk_update_str (Printf.sprintf "aw%d" k);
      ]
  | Slist l ->
      let k = l.ls_id in
      [
        Printf.sprintf "%shl%d = 0;" pad k;
        Printf.sprintf "%sfor (il%d = 0; il%d < %d; il%d++) {" pad k k l.ls_len k;
        Printf.sprintf "%s  ql%d = (struct node *) malloc(sizeof(struct node));" pad k;
        Printf.sprintf "%s  ql%d->val = ((il%d * %s) + %s);" pad k k
          (const_str l.ls_mul) (const_str l.ls_add);
        Printf.sprintf "%s  ql%d->next = hl%d;" pad k k;
        Printf.sprintf "%s  hl%d = ql%d;" pad k k;
        Printf.sprintf "%s}" pad;
        Printf.sprintf "%sal%d = 0;" pad k;
        Printf.sprintf "%swhile (hl%d) {" pad k;
        Printf.sprintf "%s  al%d = ((al%d * 7) + hl%d->val);" pad k k k;
        Printf.sprintf "%s  hl%d = hl%d->next;" pad k k;
        Printf.sprintf "%s}" pad;
        pad ^ chk_update_str (Printf.sprintf "al%d" k);
      ]

and block_lines ind b = List.concat_map (stmt_lines ind) b

(* template ids used anywhere in a block (walks, lists) *)
let rec scan_templates acc = function
  | Swalk w -> (`Walk w.wk_id :: fst acc, snd acc)
  | Slist l -> (fst acc, `List l.ls_id :: snd acc)
  | Sif (_, a, b) -> List.fold_left scan_templates (List.fold_left scan_templates acc a) b
  | Sfor { body; _ } | Swhile { body; _ } -> List.fold_left scan_templates acc body
  | Sset _ | Sop _ | Schk _ | Sbreak_if _ | Scont_if _ | Sprint _ -> acc

let render (p : prog) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "/* progen seed=%d size=%d — generated, do not edit */" p.p_seed p.p_size;
  let walks, lists =
    List.fold_left scan_templates ([], []) p.p_main
  in
  let uses_struct = walks <> [] || lists <> [] in
  if uses_struct then line "struct node { long val; struct node *next; };";
  if walks <> [] then begin
    line "struct node pool[%d];" p.p_pool
  end;
  line "long chk;";
  List.iter
    (function
      | Gscalar (n, 0L) -> line "long %s;" n
      | Gscalar (n, v) -> line "long %s = %s;" n (gconst_str v)
      | Garr (n, len, []) -> line "long %s[%d];" n len
      | Garr (n, len, init) ->
          line "long %s[%d] = { %s };" n len
            (String.concat ", " (List.map gconst_str init))
      | Gbytes (n, len) -> line "char %s[%d];" n len)
    p.p_globals;
  line "";
  List.iter
    (fun f ->
      line "long %s(%s) {" f.fn_name
        (match f.fn_params with
        | [] -> "void"
        | ps -> String.concat ", " (List.map (fun p -> "long " ^ p) ps));
      List.iter
        (fun (n, e) -> line "  long %s = %s;" n (expr_str e))
        f.fn_locals;
      (match f.fn_base with
      | Some e ->
          line "  if (%s < 1) { return %s; }" (List.hd f.fn_params) (expr_str e)
      | None -> ());
      List.iter (fun s -> List.iter (line "%s") (stmt_lines 1 s)) f.fn_body;
      line "  return %s;" (expr_str f.fn_ret);
      line "}";
      line "")
    p.p_funcs;
  line "long main(void) {";
  List.iter
    (function
      | n, 0L -> line "  long %s = 0;" n
      | n, v -> line "  long %s = %s;" n (const_str v))
    p.p_scalars;
  List.iter
    (function
      | `Walk k ->
          line "  long iw%d = 0; long jw%d = 0; long aw%d = 0;" k k k;
          line "  struct node *pw%d;" k)
    (List.sort_uniq compare walks);
  List.iter
    (function
      | `List k ->
          line "  long il%d = 0; long al%d = 0;" k k;
          line "  struct node *hl%d; struct node *ql%d;" k k)
    (List.sort_uniq compare lists);
  List.iter (fun s -> List.iter (line "%s") (stmt_lines 1 s)) p.p_main;
  line "  printf(\"progen %d.%d: chk=%%x\\n\", (chk & %Ld));" p.p_seed p.p_size
    chk_mask;
  line "  return 0;";
  line "}";
  Buffer.contents b

(* -- oracle evaluator --------------------------------------------------- *)

exception Break_exc
exception Continue_exc

type oracle = {
  ints : (string, int64 ref) Hashtbl.t;  (* global scalars (incl. chk) *)
  arrs : (string, int64 array) Hashtbl.t;
  bufs : (string, int array) Hashtbl.t;  (* char arrays, 0..255 per cell *)
  fmap : (string, func) Hashtbl.t;
  pool_val : int64 array;
  pool_next : int array;
  out : Buffer.t;
}

let ( +% ) = Int64.add
let ( *% ) = Int64.mul

let truthy v = if Int64.equal v 0L then false else true
let of_bool b = if b then 1L else 0L

let apply_op op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b
  | Lt -> of_bool (Int64.compare a b < 0)
  | Le -> of_bool (Int64.compare a b <= 0)
  | Gt -> of_bool (Int64.compare a b > 0)
  | Ge -> of_bool (Int64.compare a b >= 0)
  | Eq -> of_bool (Int64.equal a b)
  | Ne -> of_bool (not (Int64.equal a b))

let idx_of v n = Int64.to_int (Int64.logand v (Int64.of_int (n - 1)))

let rec o_expr o locals e : int64 =
  match e with
  | Cint v -> v
  | Local n -> !(List.assoc n locals)
  | Global n -> !(Hashtbl.find o.ints n)
  | Elem (a, e, n) -> (Hashtbl.find o.arrs a).(idx_of (o_expr o locals e) n)
  | Byte (a, e, n) ->
      Int64.of_int (Hashtbl.find o.bufs a).(idx_of (o_expr o locals e) n)
  | Bin (op, a, b) -> apply_op op (o_expr o locals a) (o_expr o locals b)
  | Div (e, k) ->
      let v = o_expr o locals e in
      Int64.div v k
  | Mod (e, k) ->
      let v = o_expr o locals e in
      Int64.rem v k
  | Shl (e, k) -> Int64.shift_left (o_expr o locals e) k
  | Shr (e, k) -> Int64.shift_right (o_expr o locals e) k
  | Neg e -> Int64.neg (o_expr o locals e)
  | Bnot e -> Int64.lognot (o_expr o locals e)
  | Lnot e -> of_bool (not (truthy (o_expr o locals e)))
  | Andand (a, b) ->
      of_bool (truthy (o_expr o locals a) && truthy (o_expr o locals b))
  | Oror (a, b) ->
      of_bool (truthy (o_expr o locals a) || truthy (o_expr o locals b))
  | Cond (c, a, b) ->
      if truthy (o_expr o locals c) then o_expr o locals a else o_expr o locals b
  | Call (f, args) ->
      let fn = Hashtbl.find o.fmap f in
      let argv = List.map (o_expr o locals) args in
      o_call o fn argv

and o_call o fn argv =
  let locals =
    ref (List.map2 (fun p v -> (p, ref v)) fn.fn_params argv)
  in
  List.iter
    (fun (n, e) -> locals := (n, ref (o_expr o !locals e)) :: !locals)
    fn.fn_locals;
  let locals = !locals in
  let base_hit =
    match fn.fn_base with
    | Some e when Int64.compare !(List.assoc (List.hd fn.fn_params) locals) 1L < 0 ->
        Some (o_expr o locals e)
    | _ -> None
  in
  match base_hit with
  | Some v -> v
  | None ->
      List.iter (o_stmt o locals) fn.fn_body;
      o_expr o locals fn.fn_ret

and o_store o locals l v =
  match l with
  | Lloc n -> List.assoc n locals := v
  | Lglob n -> Hashtbl.find o.ints n := v
  | Lelem (a, e, n) ->
      (Hashtbl.find o.arrs a).(idx_of (o_expr o locals e) n) <- v
  | Lbyte (a, e, n) ->
      (Hashtbl.find o.bufs a).(idx_of (o_expr o locals e) n) <-
        Int64.to_int (Int64.logand v 0xFFL)

and o_load o locals l =
  match l with
  | Lloc n -> !(List.assoc n locals)
  | Lglob n -> !(Hashtbl.find o.ints n)
  | Lelem (a, e, n) -> (Hashtbl.find o.arrs a).(idx_of (o_expr o locals e) n)
  | Lbyte (a, e, n) ->
      Int64.of_int (Hashtbl.find o.bufs a).(idx_of (o_expr o locals e) n)

and o_chk o v =
  let chk = Hashtbl.find o.ints "chk" in
  chk := Int64.logxor (!chk *% 31L) (Int64.shift_right !chk 7) +% v

and o_stmt o locals s =
  match s with
  | Sset (l, e) -> o_store o locals l (o_expr o locals e)
  | Sop (op, l, e) ->
      (* the address (index) is evaluated once, like Mini-C's Assignop *)
      let v = o_expr o locals e in
      (match l with
      | Lloc _ | Lglob _ ->
          o_store o locals l (apply_op op (o_load o locals l) v)
      | Lelem (a, e', n) ->
          let i = idx_of (o_expr o locals e') n in
          let arr = Hashtbl.find o.arrs a in
          arr.(i) <- apply_op op arr.(i) v
      | Lbyte (a, e', n) ->
          let i = idx_of (o_expr o locals e') n in
          let buf = Hashtbl.find o.bufs a in
          buf.(i) <-
            Int64.to_int
              (Int64.logand (apply_op op (Int64.of_int buf.(i)) v) 0xFFL))
  | Schk e -> o_chk o (o_expr o locals e)
  | Sif (c, a, b) ->
      if truthy (o_expr o locals c) then List.iter (o_stmt o locals) a
      else List.iter (o_stmt o locals) b
  | Sfor { var; count; body } -> (
      let cell = List.assoc var locals in
      try
        for i = 0 to count - 1 do
          cell := Int64.of_int i;
          try List.iter (o_stmt o locals) body with Continue_exc -> ()
        done;
        cell := Int64.of_int count
      with Break_exc -> ())
  | Swhile { var; count; body } -> (
      let cell = List.assoc var locals in
      cell := 0L;
      try
        while Int64.compare !cell (Int64.of_int count) < 0 do
          List.iter (o_stmt o locals) body;
          cell := !cell +% 1L
        done
      with Break_exc -> ())
  | Sbreak_if e -> if truthy (o_expr o locals e) then raise Break_exc
  | Scont_if e -> if truthy (o_expr o locals e) then raise Continue_exc
  | Sprint (id, e) ->
      Buffer.add_string o.out
        (Printf.sprintf "t%d=%Lx\n" id
           (Int64.logand (o_expr o locals e) chk_mask))
  | Swalk w ->
      let n = Array.length o.pool_val in
      for i = 0 to n - 1 do
        o.pool_val.(i) <- (Int64.of_int i *% w.wk_mul) +% w.wk_add;
        o.pool_next.(i) <- ((i * w.wk_a) + w.wk_b) land (n - 1)
      done;
      let p = ref w.wk_start and acc = ref 0L in
      for _ = 1 to w.wk_steps do
        acc := (!acc *% 3L) +% o.pool_val.(!p);
        p := o.pool_next.(!p)
      done;
      o_chk o !acc
  | Slist l ->
      (* cons ls_len cells then walk the (reversed) list *)
      let acc = ref 0L in
      for i = l.ls_len - 1 downto 0 do
        acc := (!acc *% 7L) +% (Int64.of_int i *% l.ls_mul) +% l.ls_add
      done;
      o_chk o !acc

let run_oracle (p : prog) =
  let o =
    {
      ints = Hashtbl.create 16;
      arrs = Hashtbl.create 8;
      bufs = Hashtbl.create 8;
      fmap = Hashtbl.create 8;
      pool_val = Array.make (max p.p_pool 1) 0L;
      pool_next = Array.make (max p.p_pool 1) 0;
      out = Buffer.create 256;
    }
  in
  Hashtbl.replace o.ints "chk" (ref 0L);
  List.iter
    (function
      | Gscalar (n, v) -> Hashtbl.replace o.ints n (ref v)
      | Garr (n, len, init) ->
          let a = Array.make len 0L in
          List.iteri (fun i v -> a.(i) <- v) init;
          Hashtbl.replace o.arrs n a
      | Gbytes (n, len) -> Hashtbl.replace o.bufs n (Array.make len 0))
    p.p_globals;
  List.iter (fun f -> Hashtbl.replace o.fmap f.fn_name f) p.p_funcs;
  let locals = List.map (fun (n, v) -> (n, ref v)) p.p_scalars in
  List.iter (o_stmt o locals) p.p_main;
  Buffer.add_string o.out
    (Printf.sprintf "progen %d.%d: chk=%Lx\n" p.p_seed p.p_size
       (Int64.logand !(Hashtbl.find o.ints "chk") chk_mask));
  Buffer.contents o.out

(* -- cost model --------------------------------------------------------- *)

(* Rough dynamic-work units (one unit ~ a handful of simulated
   instructions); used only to keep generated programs inside a soak-able
   envelope, not for anything precise. *)

let rec expr_cost fcosts = function
  | Cint _ | Local _ | Global _ -> 1
  | Elem (_, e, _) | Byte (_, e, _) -> 2 + expr_cost fcosts e
  | Div (e, _) | Mod (e, _) -> 40 + expr_cost fcosts e  (* software divide *)
  | Shl (e, _) | Shr (e, _) | Neg e | Bnot e | Lnot e -> 1 + expr_cost fcosts e
  | Bin (_, a, b) | Andand (a, b) | Oror (a, b) ->
      1 + expr_cost fcosts a + expr_cost fcosts b
  | Cond (c, a, b) ->
      1 + expr_cost fcosts c + max (expr_cost fcosts a) (expr_cost fcosts b)
  | Call (f, args) ->
      let base = try List.assoc f fcosts with Not_found -> 10 in
      let arg_cost = List.fold_left (fun n a -> n + expr_cost fcosts a) 0 args in
      (* recursive helpers are costed at the call site from the constant
         depth in the first argument *)
      (match args with
      | Cint d :: _ when Int64.compare d 0L > 0 -> arg_cost + (base * Int64.to_int d)
      | _ -> arg_cost + base)

let lhs_cost fcosts = function
  | Lloc _ | Lglob _ -> 1
  | Lelem (_, e, _) | Lbyte (_, e, _) -> 2 + expr_cost fcosts e

let rec stmt_cost fcosts = function
  | Sset (l, e) | Sop (_, l, e) -> 2 + lhs_cost fcosts l + expr_cost fcosts e
  | Schk e -> 5 + expr_cost fcosts e
  | Sbreak_if e | Scont_if e -> 1 + expr_cost fcosts e
  | Sprint (_, e) -> 60 + expr_cost fcosts e
  | Sif (c, a, b) ->
      1 + expr_cost fcosts c + max (block_cost fcosts a) (block_cost fcosts b)
  | Sfor { count; body; _ } | Swhile { count; body; _ } ->
      2 + (count * (3 + block_cost fcosts body))
  | Swalk w -> 10 + (w.wk_steps * 6) + (w.wk_pool * 6) (* pool re-link + walk *)
  | Slist l -> 10 + (l.ls_len * 30)

and block_cost fcosts b = List.fold_left (fun n s -> n + stmt_cost fcosts s) 0 b

(* -- generation --------------------------------------------------------- *)

type genv = {
  rng : Rng.t;
  fcosts : (string * int) list;  (* per-invocation unit cost of helpers *)
  scalars_g : string list;  (* global long scalars (not chk) *)
  arrays : (string * int) list;
  bytes : (string * int) list;
  helpers : (string * int) list;  (* name, arity — depth arg NOT included *)
  rec_helpers : (string * int) list;  (* name, non-depth arity *)
  mutable locals : string list;  (* assignable long scalars in scope *)
  mutable loopvars : string list;  (* readable only *)
  mutable uniq : int;
  mutable budget : int;
  mutable prints : int;
  mutable print_id : int;
  mutable templates : int;
  mutable new_scalars : (string * int64) list;  (* accumulated main decls *)
  pool : int;
}

let fresh g prefix =
  let n = g.uniq in
  g.uniq <- n + 1;
  Printf.sprintf "%s%d" prefix n

let small_const rng =
  match Rng.int rng 8 with
  | 0 -> 0L
  | 1 -> 1L
  | 2 -> Int64.of_int (Rng.int rng 16)
  | 3 -> Int64.neg (Int64.of_int (1 + Rng.int rng 100))
  | 4 -> Int64.of_int (Rng.int rng 1024)
  | 5 ->
      Rng.choose rng
        [ 0xFFL; 0xFFFFL; 0x7FFFFFFFL; 0xFFFFFFFFL;
          (* the wide ones exercise 64-bit materialisation: |v| >= 2^62
             overflows OCaml's native int and must go via the literal pool *)
          Int64.max_int; Int64.min_int; 0x4000000000000000L ]
  | 6 ->
      if Rng.int rng 3 = 0 then Rng.int64 rng  (* full 64-bit *)
      else Int64.logand (Rng.int64 rng) 0xFFFFFFFFFFFFL  (* 48-bit *)
  | _ -> Int64.of_int (Rng.int rng 65536)

(* Generate a pure expression.  [rdepth] bounds the tree depth;
   [callable] lists helpers this context may call. *)
let rec gen_expr g ~callable rdepth : expr =
  let leaf () =
    let picks =
      [ `Const; `Const ]
      @ (if g.locals <> [] then [ `Local; `Local ] else [])
      @ (if g.loopvars <> [] then [ `Loopvar ] else [])
      @ (if g.scalars_g <> [] then [ `Global ] else [])
      @ (if g.arrays <> [] then [ `Elem ] else [])
      @ if g.bytes <> [] then [ `Byte ] else []
    in
    match Rng.choose g.rng picks with
    | `Const -> Cint (small_const g.rng)
    | `Local -> Local (Rng.choose g.rng g.locals)
    | `Loopvar -> Local (Rng.choose g.rng g.loopvars)
    | `Global -> Global (Rng.choose g.rng g.scalars_g)
    | `Elem ->
        let a, n = Rng.choose g.rng g.arrays in
        Elem (a, gen_expr g ~callable 0, n)
    | `Byte ->
        let a, n = Rng.choose g.rng g.bytes in
        Byte (a, gen_expr g ~callable 0, n)
  in
  if rdepth <= 0 then leaf ()
  else
    match Rng.int g.rng 20 with
    | 0 | 1 | 2 | 3 -> leaf ()
    | 4 | 5 | 6 | 7 | 8 | 9 ->
        let op =
          Rng.choose g.rng
            [ Add; Add; Sub; Sub; Mul; Band; Bor; Bxor; Lt; Le; Gt; Ge; Eq; Ne ]
        in
        Bin (op, gen_expr g ~callable (rdepth - 1), gen_expr g ~callable (rdepth - 1))
    | 10 ->
        let k = Int64.of_int (1 + Rng.int g.rng 1000) in
        if Rng.bool g.rng then Div (gen_expr g ~callable (rdepth - 1), k)
        else Mod (gen_expr g ~callable (rdepth - 1), k)
    | 11 ->
        let k = Rng.int g.rng 48 in
        if Rng.bool g.rng then Shl (gen_expr g ~callable (rdepth - 1), k)
        else Shr (gen_expr g ~callable (rdepth - 1), k)
    | 12 -> Neg (gen_expr g ~callable (rdepth - 1))
    | 13 -> Bnot (gen_expr g ~callable (rdepth - 1))
    | 14 -> Lnot (gen_expr g ~callable (rdepth - 1))
    | 15 ->
        if Rng.bool g.rng then
          Andand (gen_expr g ~callable (rdepth - 1), gen_expr g ~callable (rdepth - 1))
        else Oror (gen_expr g ~callable (rdepth - 1), gen_expr g ~callable (rdepth - 1))
    | 16 ->
        Cond
          ( gen_expr g ~callable (rdepth - 1),
            gen_expr g ~callable (rdepth - 1),
            gen_expr g ~callable (rdepth - 1) )
    | _ -> (
        (* helper call, when the context allows one *)
        let plain = List.filter (fun (n, _) -> List.mem_assoc n callable) g.helpers in
        let recs = List.filter (fun (n, _) -> List.mem_assoc n callable) g.rec_helpers in
        match (plain, recs) with
        | [], [] -> leaf ()
        | _ ->
            if recs <> [] && (plain = [] || Rng.int g.rng 3 = 0) then begin
              let f, arity = Rng.choose g.rng recs in
              let depth = 2 + Rng.int g.rng 6 in
              Call
                ( f,
                  Cint (Int64.of_int depth)
                  :: List.init arity (fun _ -> gen_expr g ~callable (rdepth - 1)) )
            end
            else
              let f, arity = Rng.choose g.rng plain in
              Call (f, List.init arity (fun _ -> gen_expr g ~callable (rdepth - 1))))

let gen_cond g ~callable =
  match Rng.int g.rng 3 with
  | 0 ->
      Bin
        ( Rng.choose g.rng [ Lt; Le; Gt; Ge; Eq; Ne ],
          gen_expr g ~callable 2,
          gen_expr g ~callable 1 )
  | 1 -> Bin (Band, gen_expr g ~callable 2, Cint (Int64.of_int (1 + Rng.int g.rng 15)))
  | _ -> gen_expr g ~callable 2

let gen_lhs g =
  let picks =
    (if g.locals <> [] then [ `Local; `Local; `Local ] else [])
    @ (if g.scalars_g <> [] then [ `Global; `Global ] else [])
    @ (if g.arrays <> [] then [ `Elem; `Elem ] else [])
    @ if g.bytes <> [] then [ `Byte ] else []
  in
  match Rng.choose g.rng picks with
  | `Local -> Lloc (Rng.choose g.rng g.locals)
  | `Global -> Lglob (Rng.choose g.rng g.scalars_g)
  | `Elem ->
      let a, n = Rng.choose g.rng g.arrays in
      Lelem (a, gen_expr g ~callable:g.helpers 1, n)
  | `Byte ->
      let a, n = Rng.choose g.rng g.bytes in
      Lbyte (a, gen_expr g ~callable:g.helpers 1, n)

(* Generate a block whose estimated dynamic cost stays within [allow].
   [ldepth] is the loop-nesting depth, [in_loop]/[in_for] gate
   break/continue. *)
let rec gen_block g ~callable ~allow ~ldepth ~in_loop ~in_for =
  let stmts = ref [] in
  let remaining = ref allow in
  let max_stmts = 2 + Rng.int g.rng 5 in
  let n = ref 0 in
  while !remaining > 8 && !n < max_stmts do
    incr n;
    let s = gen_stmt g ~callable ~allow:!remaining ~ldepth ~in_loop ~in_for in
    match s with
    | None -> remaining := 0
    | Some s ->
        let c = stmt_cost g.fcosts s in
        if c <= !remaining then begin
          stmts := s :: !stmts;
          remaining := !remaining - c
        end
        else remaining := !remaining (* skip: too expensive; try another *)
  done;
  List.rev !stmts

and gen_stmt g ~callable ~allow ~ldepth ~in_loop ~in_for =
  let pick = Rng.int g.rng 24 in
  match pick with
  | 0 | 1 | 2 | 3 | 4 ->
      Some (Sset (gen_lhs g, gen_expr g ~callable 3))
  | 5 | 6 | 7 ->
      let op = Rng.choose g.rng [ Add; Sub; Mul; Band; Bor; Bxor ] in
      Some (Sop (op, gen_lhs g, gen_expr g ~callable 2))
  | 8 | 9 | 10 -> Some (Schk (gen_expr g ~callable 3))
  | 11 | 12 ->
      let c = gen_cond g ~callable in
      let a = gen_block g ~callable ~allow:(allow / 2) ~ldepth ~in_loop ~in_for in
      let b =
        if Rng.bool g.rng then
          gen_block g ~callable ~allow:(allow / 2) ~ldepth ~in_loop ~in_for
        else []
      in
      if a = [] && b = [] then Some (Schk c) else Some (Sif (c, a, b))
  | 13 | 14 | 15 | 16 when ldepth < 3 ->
      let count = 2 + Rng.int g.rng 11 in
      let var = fresh g "i" in
      g.new_scalars <- (var, 0L) :: g.new_scalars;
      let saved = g.loopvars in
      g.loopvars <- var :: g.loopvars;
      let body =
        gen_block g ~callable
          ~allow:(max 10 ((allow - 4) / count) - 3)
          ~ldepth:(ldepth + 1) ~in_loop:true ~in_for:true
      in
      g.loopvars <- saved;
      if body = [] then None else Some (Sfor { var; count; body })
  | 17 when ldepth < 3 ->
      let count = 2 + Rng.int g.rng 9 in
      let var = fresh g "w" in
      g.new_scalars <- (var, 0L) :: g.new_scalars;
      let saved = g.loopvars in
      g.loopvars <- var :: g.loopvars;
      let body =
        gen_block g ~callable
          ~allow:(max 10 ((allow - 4) / count) - 3)
          ~ldepth:(ldepth + 1) ~in_loop:true ~in_for:false
      in
      g.loopvars <- saved;
      if body = [] then None else Some (Swhile { var; count; body })
  | 18 when in_loop -> Some (Sbreak_if (gen_cond g ~callable))
  | 19 when in_for -> Some (Scont_if (gen_cond g ~callable))
  | 20 when g.prints > 0 && ldepth <= 1 ->
      g.prints <- g.prints - 1;
      let id = g.print_id in
      g.print_id <- id + 1;
      Some (Sprint (id, gen_expr g ~callable 3))
  | 21 when g.templates > 0 && g.pool > 0 && ldepth = 0 ->
      g.templates <- g.templates - 1;
      let id = g.print_id in
      g.print_id <- id + 1;
      let a = (2 * Rng.int g.rng (g.pool / 2)) + 1 in
      Some
        (Swalk
           {
             wk_id = id;
             wk_pool = g.pool;
             wk_a = a;
             wk_b = Rng.int g.rng g.pool;
             wk_start = Rng.int g.rng g.pool;
             wk_steps = 16 + Rng.int g.rng 120;
             wk_mul = small_const g.rng;
             wk_add = small_const g.rng;
           })
  | 22 when g.templates > 0 && ldepth = 0 ->
      g.templates <- g.templates - 1;
      let id = g.print_id in
      g.print_id <- id + 1;
      Some
        (Slist
           {
             ls_id = id;
             ls_len = 4 + Rng.int g.rng 28;
             ls_mul = small_const g.rng;
             ls_add = small_const g.rng;
           })
  | _ -> Some (Schk (gen_expr g ~callable 2))

(* -- helper-function generation ----------------------------------------- *)

(* Helpers are pure: they assign only their own locals.  A helper may call
   any helper generated before it (no mutual recursion); a recursive
   helper calls only itself, guarded by the depth parameter. *)
let gen_helper g idx ~recursive =
  let name = Printf.sprintf "h%d" idx in
  let arity = 1 + Rng.int g.rng 2 in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let params = if recursive then "d" :: params else params in
  let saved_locals = g.locals and saved_loopvars = g.loopvars in
  g.locals <- [];
  g.loopvars <- List.filter (fun _ -> false) g.loopvars;
  (* params are readable: expose them as loop vars (read-only names) *)
  g.loopvars <- params;
  let callable = g.helpers in
  let nlocals = 1 + Rng.int g.rng 2 in
  let locals =
    List.init nlocals (fun i ->
        (Printf.sprintf "t%d" i, gen_expr g ~callable 2))
  in
  g.locals <- List.map fst locals;
  let loop_decls = ref [] in
  (* a small pure body: a couple of assignments, maybe a bounded loop *)
  let body = ref [] in
  let nstmts = Rng.int g.rng 3 in
  for _ = 1 to nstmts do
    match Rng.int g.rng 4 with
    | 0 | 1 ->
        body :=
          Sset (Lloc (Rng.choose g.rng g.locals), gen_expr g ~callable 2) :: !body
    | 2 ->
        let op = Rng.choose g.rng [ Add; Sub; Mul; Bxor ] in
        body :=
          Sop (op, Lloc (Rng.choose g.rng g.locals), gen_expr g ~callable 2)
          :: !body
    | _ ->
        let var = fresh g "k" in
        loop_decls := (var, Cint 0L) :: !loop_decls;
        let saved = g.loopvars in
        g.loopvars <- var :: g.loopvars;
        let count = 2 + Rng.int g.rng 7 in
        let inner =
          [
            Sop
              ( Rng.choose g.rng [ Add; Bxor ],
                Lloc (Rng.choose g.rng g.locals),
                gen_expr g ~callable 2 );
          ]
        in
        g.loopvars <- saved;
        body := Sfor { var; count; body = inner } :: !body
  done;
  let base = if recursive then Some (gen_expr g ~callable 2) else None in
  let ret =
    if recursive then begin
      (* one or two self-calls, each with a strictly smaller depth *)
      let nargs = arity in
      let self delta =
        Call
          ( name,
            Bin (Sub, Local "d", Cint (Int64.of_int delta))
            :: List.init nargs (fun _ -> gen_expr g ~callable 2) )
      in
      if Rng.bool g.rng then Bin (Add, Bin (Mul, self 1, Cint 3L), gen_expr g ~callable 2)
      else Bin (Bxor, self 1, Bin (Bor, self 2, Cint 1L))
    end
    else gen_expr g ~callable 3
  in
  g.locals <- saved_locals;
  g.loopvars <- saved_loopvars;
  let fn =
    {
      fn_name = name;
      fn_params = params;
      fn_locals = locals @ List.rev !loop_decls;
      fn_base = base;
      fn_selfcalls = (if recursive then if Rng.bool g.rng then 1 else 2 else 0);
      fn_body = List.rev !body;
      fn_ret = ret;
    }
  in
  (* per-invocation cost, charged at call sites; recursive helpers are
     additionally scaled by the constant depth argument *)
  let flat =
    block_cost g.fcosts fn.fn_body
    + List.fold_left (fun n (_, e) -> n + expr_cost g.fcosts e) 0 fn.fn_locals
    + expr_cost g.fcosts fn.fn_ret + 8
  in
  let cost = if recursive then flat * 4 else flat in
  (fn, cost)

(* -- program generation ------------------------------------------------- *)

let default_size = 10

let generate_prog ~seed ~size =
  let rng = Rng.make (seed * 2654435761) in
  (* globals *)
  let n_scalars = 2 + Rng.int rng 3 in
  let scalars_g = List.init n_scalars (fun i -> Printf.sprintf "g%d" i) in
  let n_arrays = 1 + Rng.int rng 2 in
  let arrays =
    List.init n_arrays (fun i ->
        (Printf.sprintf "arr%d" i, 1 lsl (4 + Rng.int rng 4)))
  in
  let n_bytes = Rng.int rng 2 in
  let bytes =
    List.init n_bytes (fun i ->
        (Printf.sprintf "buf%d" i, 1 lsl (5 + Rng.int rng 4)))
  in
  let globals =
    List.map
      (fun n ->
        Gscalar (n, if Rng.bool rng then small_const rng else 0L))
      scalars_g
    @ List.map
        (fun (n, len) ->
          if Rng.bool rng then
            let k = 1 + Rng.int rng (min len 8) in
            Garr (n, len, List.init k (fun _ -> small_const rng))
          else Garr (n, len, []))
        arrays
    @ List.map (fun (n, len) -> Gbytes (n, len)) bytes
  in
  let pool = 1 lsl (4 + Rng.int rng 3) in
  let g =
    {
      rng;
      fcosts = [];
      scalars_g;
      arrays;
      bytes;
      helpers = [];
      rec_helpers = [];
      locals = [];
      loopvars = [];
      uniq = 0;
      budget = 0;
      prints = 0;
      print_id = 0;
      templates = 0;
      new_scalars = [];
      pool;
    }
  in
  (* helpers, each able to call the ones before it *)
  let n_helpers = 1 + min 3 (size / 4) in
  let g = ref g in
  let funcs = ref [] in
  for i = 0 to n_helpers - 1 do
    let recursive = Rng.int rng 3 = 0 in
    let fn, cost = gen_helper !g i ~recursive in
    funcs := fn :: !funcs;
    let arity = List.length fn.fn_params - if recursive then 1 else 0 in
    g :=
      {
        !g with
        fcosts = (fn.fn_name, cost) :: !g.fcosts;
        helpers =
          (if recursive then !g.helpers else (fn.fn_name, arity) :: !g.helpers);
        rec_helpers =
          (if recursive then (fn.fn_name, arity) :: !g.rec_helpers
           else !g.rec_helpers);
      }
  done;
  let g = !g in
  (* main locals *)
  let n_locals = 2 + min 6 (size / 2) in
  let main_locals =
    List.init n_locals (fun i -> (Printf.sprintf "v%d" i, small_const rng))
  in
  g.locals <- List.map fst main_locals;
  g.budget <- 1200 + (size * 320);
  g.prints <- 3 + min 12 size;
  g.templates <- 2;
  let callable = g.helpers @ g.rec_helpers in
  let body =
    gen_block g ~callable ~allow:g.budget ~ldepth:0 ~in_loop:false ~in_for:false
  in
  (* fold a few observable cells into the checksum so every program ends
     with a non-trivial digest even if the random body was all control
     flow *)
  let closing =
    Schk
      (List.fold_left
         (fun acc n -> Bin (Bxor, acc, Global n))
         (match main_locals with (n, _) :: _ -> Local n | [] -> Cint 1L)
         scalars_g)
    ::
    (match arrays with
    | (a, n) :: _ ->
        [ Schk (Bin (Add, Elem (a, Cint 1L, n), Elem (a, Cint 7L, n))) ]
    | [] -> [])
  in
  {
    p_seed = seed;
    p_size = size;
    p_pool = pool;
    p_globals = globals;
    p_funcs = List.rev !funcs;
    p_scalars = main_locals @ List.rev g.new_scalars;
    p_main = body @ closing;
  }

(* -- public API --------------------------------------------------------- *)

let of_prog prog =
  { t_prog = prog; t_source = render prog; t_expect = run_oracle prog }

let generate ?(size = default_size) ~seed () =
  of_prog (generate_prog ~seed ~size)

let seed t = t.t_prog.p_seed
let size t = t.t_prog.p_size
let source t = t.t_source
let expected_stdout t = t.t_expect
let node_count t = prog_nodes t.t_prog
let func_names t = List.map (fun f -> f.fn_name) t.t_prog.p_funcs

let max_loop_count t =
  (* every loop the renderer emits has a constant trip count in the IR:
     Sfor/Swhile carry [count], a walk renders a pool-init loop and a
     chase loop, a list sum renders a cons loop and a walk of the same
     length *)
  let rec stmt acc = function
    | Sfor { count; body; _ } | Swhile { count; body; _ } ->
        List.fold_left stmt (max acc count) body
    | Sif (_, a, b) -> List.fold_left stmt (List.fold_left stmt acc a) b
    | Swalk w -> max acc (max w.wk_pool w.wk_steps)
    | Slist l -> max acc l.ls_len
    | Sset _ | Sop _ | Schk _ | Sbreak_if _ | Scont_if _ | Sprint _ -> acc
  in
  let block acc b = List.fold_left stmt acc b in
  List.fold_left
    (fun acc f -> block acc f.fn_body)
    (block 0 t.t_prog.p_main)
    t.t_prog.p_funcs

let repro_hint t =
  Printf.sprintf "dune exec bench/main.exe -- soak --seed %d --count 1 --size %d"
    t.t_prog.p_seed t.t_prog.p_size

(* -- shrinking ----------------------------------------------------------- *)

(* Candidate mutations of a statement list, lazily enumerated:
   remove a statement, unwrap a compound body, halve a trip count. *)

let rec has_loop_ctl = function
  | Sbreak_if _ | Scont_if _ -> true
  | Sif (_, a, b) -> List.exists has_loop_ctl a || List.exists has_loop_ctl b
  | Sset _ | Sop _ | Schk _ | Sprint _ | Swalk _ | Slist _ | Sfor _ | Swhile _ ->
      false

(* all ways to shrink a block by one step *)
let rec block_variants (b : stmt list) : stmt list list =
  let n = List.length b in
  let removals =
    List.init n (fun i -> List.filteri (fun j _ -> j <> i) b)
  in
  let in_place =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun s' -> List.mapi (fun j x -> if j = i then s' else x) b)
             (stmt_variants s))
         b)
  in
  let unwraps =
    List.concat
      (List.mapi
         (fun i s ->
           let splice body =
             List.concat
               (List.mapi (fun j x -> if j = i then body else [ x ]) b)
           in
           match s with
           | Sif (_, a, bb) when not (List.exists has_loop_ctl (a @ bb)) ->
               [ splice a ] @ if bb <> [] then [ splice bb ] else []
           | Sfor { body; _ } | Swhile { body; _ }
             when not (List.exists has_loop_ctl body) ->
               [ splice body ]
           | _ -> [])
         b)
  in
  removals @ in_place @ unwraps

and stmt_variants (s : stmt) : stmt list =
  match s with
  | Sfor { var; count; body } ->
      (if count > 1 then [ Sfor { var; count = count / 2; body } ] else [])
      @ List.map (fun body -> Sfor { var; count; body }) (block_variants body)
  | Swhile { var; count; body } ->
      (if count > 1 then [ Swhile { var; count = count / 2; body } ] else [])
      @ List.map (fun body -> Swhile { var; count; body }) (block_variants body)
  | Sif (c, a, b) ->
      List.map (fun a -> Sif (c, a, b)) (block_variants a)
      @ List.map (fun b -> Sif (c, a, b)) (block_variants b)
  | Swalk w ->
      (if w.wk_steps > 1 then [ Swalk { w with wk_steps = w.wk_steps / 2 } ]
       else [])
  | Slist l -> if l.ls_len > 1 then [ Slist { l with ls_len = l.ls_len / 2 } ] else []
  | Sset _ | Sop _ | Schk _ | Sbreak_if _ | Scont_if _ | Sprint _ -> []

(* helpers referenced anywhere in the program *)
let referenced_helpers p =
  let used = Hashtbl.create 8 in
  let rec scan_e = function
    | Call (f, args) ->
        Hashtbl.replace used f ();
        List.iter scan_e args
    | Elem (_, e, _) | Byte (_, e, _) | Div (e, _) | Mod (e, _) | Shl (e, _)
    | Shr (e, _) | Neg e | Bnot e | Lnot e ->
        scan_e e
    | Bin (_, a, b) | Andand (a, b) | Oror (a, b) -> scan_e a; scan_e b
    | Cond (c, a, b) -> scan_e c; scan_e a; scan_e b
    | Cint _ | Local _ | Global _ -> ()
  in
  let scan_l = function
    | Lelem (_, e, _) | Lbyte (_, e, _) -> scan_e e
    | Lloc _ | Lglob _ -> ()
  in
  let rec scan_s = function
    | Sset (l, e) | Sop (_, l, e) -> scan_l l; scan_e e
    | Schk e | Sbreak_if e | Scont_if e | Sprint (_, e) -> scan_e e
    | Sif (c, a, b) -> scan_e c; List.iter scan_s a; List.iter scan_s b
    | Sfor { body; _ } | Swhile { body; _ } -> List.iter scan_s body
    | Swalk _ | Slist _ -> ()
  in
  List.iter scan_s p.p_main;
  (* a helper keeps alive the helpers it calls *)
  let rec close () =
    let before = Hashtbl.length used in
    List.iter
      (fun f ->
        if Hashtbl.mem used f.fn_name then begin
          List.iter (fun (_, e) -> scan_e e) f.fn_locals;
          (match f.fn_base with Some e -> scan_e e | None -> ());
          List.iter scan_s f.fn_body;
          scan_e f.fn_ret
        end)
      p.p_funcs;
    if Hashtbl.length used > before then close ()
  in
  close ();
  used

let prog_variants (p : prog) : prog list =
  let main_vs = List.map (fun m -> { p with p_main = m }) (block_variants p.p_main) in
  let used = referenced_helpers p in
  let dead =
    List.filter (fun f -> not (Hashtbl.mem used f.fn_name)) p.p_funcs
  in
  let drop_dead =
    match dead with
    | [] -> []
    | _ ->
        [ { p with
            p_funcs = List.filter (fun f -> Hashtbl.mem used f.fn_name) p.p_funcs } ]
  in
  drop_dead @ main_vs

let shrink t still_fails =
  let rec go cur =
    let cur_nodes = prog_nodes cur.t_prog in
    let next =
      List.find_map
        (fun p' ->
          if prog_nodes p' >= cur_nodes then None
          else
            let cand = of_prog p' in
            if still_fails cand then Some cand else None)
        (prog_variants cur.t_prog)
    in
    match next with Some c -> go c | None -> cur
  in
  go t
