(** Fully linked executable images.

    The layout mirrors the paper's Figure 4 (Alpha OSF/1): text low, data
    high with a gap in between, the stack starting at the base of text and
    growing down, and the heap starting at the program break (the end of
    uninitialised data) and growing up.  The image keeps its symbol table —
    OM rebuilds its symbolic view of the program from it. *)

type seg = {
  seg_vaddr : int;
  seg_bytes : bytes;
  seg_bss : int;  (** zero-filled bytes following [seg_bytes] *)
  seg_write : bool;
      (** writable at run time; the simulator's protection map denies
          stores to segments without it (text, read-only data) *)
}

type sym = {
  x_name : string;
  x_addr : int;
  x_type : Types.sym_type;
  x_size : int;
}

(** Places in the image that encode an absolute {e text} address (taken
    function addresses and the like).  OM consumes these when it moves
    code: link-time systems keep relocation knowledge that a plain
    executable would have lost. *)
type code_ref_kind = Cr_quad | Cr_long | Cr_hi | Cr_lo

type code_ref = {
  cr_kind : code_ref_kind;
  cr_addr : int;  (** address of the patched field *)
  cr_target : int;  (** the text address the field encodes *)
}

type t = {
  x_entry : int;
  x_segs : seg list;
  x_symbols : sym list;
  x_text_start : int;
  x_text_size : int;  (** bytes of executable text at [x_text_start] *)
  x_data_start : int;
  x_break : int;  (** initial heap break: first address past [.bss] *)
  x_code_refs : code_ref list;
}

val text_base : int
(** Default base of the text segment, [0x1200_0000]. *)

val data_base : int
(** Default base of the data segment, [0x1400_0000]. *)

val stack_top : t -> int
(** Initial stack pointer: the base of the text segment (the OSF/1 stack
    grows from text start towards low memory). *)

val find_symbol : t -> string -> sym option

val symbol_at : t -> int -> sym option
(** The function symbol whose address is exactly the given one. *)

val funcs_sorted : t -> sym list
(** Function symbols within text, sorted by address. *)

val text_bytes : t -> bytes
(** Contents of the text segment. *)

val validate : t -> t
(** Structural sanity checks on an image: addresses within the simulated
    address space, text below data, entry inside code and 4-aligned, code
    segment bases 4-aligned, no overlapping segments.  Raises
    {!Wire.Corrupt} on the first violation; returns the image unchanged
    otherwise.  {!of_string} applies it, so a malformed image read from
    disk fails closed at load time instead of crashing the machine. *)

val to_string : t -> string

val of_string : string -> t
(** Parse and {!validate} a serialized image.  Accepts the current
    ["AEXE2\n"] format and, for compatibility, ["AEXE1\n"] images, whose
    segments predate the [seg_write] flag (data-side segments are assumed
    writable).  Raises {!Wire.Corrupt} on any framing or validation
    error — never [Invalid_argument] or [Failure]. *)

val save : string -> t -> unit
val load : string -> t

val magic : string
(** Current format magic, ["AEXE2\n"]. *)

val magic_v1 : string
(** Previous format magic, ["AEXE1\n"], still accepted by {!of_string}. *)
