type seg = {
  seg_vaddr : int;
  seg_bytes : bytes;
  seg_bss : int;
  seg_write : bool;
}

type sym = {
  x_name : string;
  x_addr : int;
  x_type : Types.sym_type;
  x_size : int;
}

type code_ref_kind = Cr_quad | Cr_long | Cr_hi | Cr_lo

type code_ref = { cr_kind : code_ref_kind; cr_addr : int; cr_target : int }

type t = {
  x_entry : int;
  x_segs : seg list;
  x_symbols : sym list;
  x_text_start : int;
  x_text_size : int;
  x_data_start : int;
  x_break : int;
  x_code_refs : code_ref list;
}

let magic = "AEXE2\n"
let magic_v1 = "AEXE1\n"
let text_base = 0x1200_0000
let data_base = 0x1400_0000
let stack_top x = x.x_text_start

let find_symbol x name = List.find_opt (fun s -> s.x_name = name) x.x_symbols

let symbol_at x addr =
  List.find_opt (fun s -> s.x_addr = addr && s.x_type = Types.Func) x.x_symbols

let funcs_sorted x =
  let fs =
    List.filter
      (fun s ->
        s.x_type = Types.Func
        && s.x_addr >= x.x_text_start
        && s.x_addr < x.x_text_start + x.x_text_size)
      x.x_symbols
  in
  List.sort (fun a b -> compare a.x_addr b.x_addr) fs

let text_bytes x =
  match List.find_opt (fun s -> s.seg_vaddr = x.x_text_start) x.x_segs with
  | Some s -> s.seg_bytes
  | None -> invalid_arg "Exe.text_bytes: no text segment"

let to_string x =
  let w = Wire.writer () in
  Wire.put_raw w magic;
  Wire.put_i64 w x.x_entry;
  Wire.put_i64 w x.x_text_start;
  Wire.put_i64 w x.x_text_size;
  Wire.put_i64 w x.x_data_start;
  Wire.put_i64 w x.x_break;
  Wire.put_list w
    (fun s ->
      Wire.put_i64 w s.seg_vaddr;
      Wire.put_bytes w s.seg_bytes;
      Wire.put_i64 w s.seg_bss;
      Wire.put_u8 w (if s.seg_write then 1 else 0))
    x.x_segs;
  Wire.put_list w
    (fun s ->
      Wire.put_str w s.x_name;
      Wire.put_i64 w s.x_addr;
      Wire.put_u8 w (match s.x_type with Types.Func -> 0 | Types.Object -> 1 | Types.Notype -> 2);
      Wire.put_i64 w s.x_size)
    x.x_symbols;
  Wire.put_list w
    (fun c ->
      Wire.put_u8 w
        (match c.cr_kind with Cr_quad -> 0 | Cr_long -> 1 | Cr_hi -> 2 | Cr_lo -> 3);
      Wire.put_i64 w c.cr_addr;
      Wire.put_i64 w c.cr_target)
    x.x_code_refs;
  Wire.contents w

(* Structural validation of a freshly parsed image.  Every rejection is a
   [Wire.Corrupt]: a malformed executable must fail closed at load time,
   with the same exception class as a framing error, never crash later
   inside the machine.  The checks are deliberately structural only —
   address-space sanity, text/data ordering, segment overlap — so that
   every image the assembler, linker and instrumenter legitimately emit
   passes unchanged. *)
let bad fmt =
  Printf.ksprintf
    (fun s -> raise (Wire.Corrupt ("malformed executable: " ^ s)))
    fmt

let addr_limit = 1 lsl 40

let validate x =
  let addr_ok a = a >= 0 && a < addr_limit in
  if not (addr_ok x.x_entry) then bad "entry %#x out of range" x.x_entry;
  if not (addr_ok x.x_text_start) then
    bad "text start %#x out of range" x.x_text_start;
  if x.x_text_size < 0 || x.x_text_size >= addr_limit then
    bad "text size %d out of range" x.x_text_size;
  if not (addr_ok x.x_data_start) then
    bad "data start %#x out of range" x.x_data_start;
  if not (addr_ok x.x_break) then bad "break %#x out of range" x.x_break;
  if x.x_text_start + x.x_text_size > x.x_data_start then
    bad "text [%#x, %#x) overlaps the data base %#x" x.x_text_start
      (x.x_text_start + x.x_text_size)
      x.x_data_start;
  if x.x_break < x.x_data_start then
    bad "break %#x below data start %#x" x.x_break x.x_data_start;
  if x.x_entry < x.x_text_start || x.x_entry >= x.x_data_start then
    bad "entry %#x outside [text start, data start)" x.x_entry;
  if x.x_entry land 3 <> 0 then bad "entry %#x misaligned" x.x_entry;
  List.iter
    (fun s ->
      if not (addr_ok s.seg_vaddr) then
        bad "segment base %#x out of range" s.seg_vaddr;
      if s.seg_bss < 0 || s.seg_bss >= addr_limit then
        bad "segment bss %d out of range" s.seg_bss;
      if s.seg_vaddr < x.x_data_start && s.seg_vaddr land 3 <> 0 then
        bad "code segment base %#x misaligned" s.seg_vaddr)
    x.x_segs;
  let spans =
    List.filter_map
      (fun s ->
        let len = Bytes.length s.seg_bytes + s.seg_bss in
        if len = 0 then None else Some (s.seg_vaddr, s.seg_vaddr + len))
      x.x_segs
  in
  let spans = List.sort compare spans in
  let rec overlap = function
    | (_, hi1) :: ((lo2, _) :: _ as rest) ->
        if lo2 < hi1 then bad "segments overlap at %#x" lo2;
        overlap rest
    | _ -> ()
  in
  overlap spans;
  x

let of_string str =
  let rd = Wire.reader str in
  let version =
    if String.length str >= String.length magic_v1
       && String.sub str 0 (String.length magic_v1) = magic_v1
    then 1
    else 2
  in
  Wire.expect_magic rd (if version = 1 then magic_v1 else magic);
  let x_entry = Wire.get_i64 rd in
  let x_text_start = Wire.get_i64 rd in
  let x_text_size = Wire.get_i64 rd in
  let x_data_start = Wire.get_i64 rd in
  let x_break = Wire.get_i64 rd in
  let x_segs =
    Wire.get_list rd (fun rd ->
        let seg_vaddr = Wire.get_i64 rd in
        let seg_bytes = Wire.get_bytes rd in
        let seg_bss = Wire.get_i64 rd in
        let seg_write =
          (* v1 images predate the flag: data-side segments writable *)
          if version = 1 then seg_vaddr >= x_data_start
          else Wire.get_u8 rd <> 0
        in
        { seg_vaddr; seg_bytes; seg_bss; seg_write })
  in
  let x_symbols =
    Wire.get_list rd (fun rd ->
        let x_name = Wire.get_str rd in
        let x_addr = Wire.get_i64 rd in
        let x_type =
          match Wire.get_u8 rd with 0 -> Types.Func | 1 -> Types.Object | _ -> Types.Notype
        in
        let x_size = Wire.get_i64 rd in
        { x_name; x_addr; x_type; x_size })
  in
  let x_code_refs =
    Wire.get_list rd (fun rd ->
        let cr_kind =
          match Wire.get_u8 rd with
          | 0 -> Cr_quad
          | 1 -> Cr_long
          | 2 -> Cr_hi
          | _ -> Cr_lo
        in
        let cr_addr = Wire.get_i64 rd in
        let cr_target = Wire.get_i64 rd in
        { cr_kind; cr_addr; cr_target })
  in
  validate
    { x_entry; x_segs; x_symbols; x_text_start; x_text_size; x_data_start;
      x_break; x_code_refs }

let save path x =
  let oc = open_out_bin path in
  output_string oc (to_string x);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
