exception Corrupt of string

type writer = Buffer.t

let writer () = Buffer.create 1024
let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

let put_u32 b n =
  put_u8 b n;
  put_u8 b (n lsr 8);
  put_u8 b (n lsr 16);
  put_u8 b (n lsr 24)

let put_i64 b n =
  let n64 = Int64.of_int n in
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical n64 (8 * i)) land 0xFF)
  done

let put_raw b s = Buffer.add_string b s

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bytes b s =
  put_u32 b (Bytes.length s);
  Buffer.add_bytes b s

let contents = Buffer.contents

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }

let need r n =
  if r.pos + n > String.length r.src then raise (Corrupt "truncated input")

let get_u8 r =
  need r 1;
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_u32 r =
  let a = get_u8 r in
  let b = get_u8 r in
  let c = get_u8 r in
  let d = get_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let get_i64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 r)) (8 * i))
  done;
  Int64.to_int !v

let get_str r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_bytes r = Bytes.of_string (get_str r)
let at_end r = r.pos >= String.length r.src

let expect_magic r magic =
  let n = String.length magic in
  need r n;
  let got = String.sub r.src r.pos n in
  if got <> magic then
    raise (Corrupt (Printf.sprintf "bad magic: expected %S, got %S" magic got));
  r.pos <- r.pos + n

let put_list w fn xs =
  put_u32 w (List.length xs);
  List.iter fn xs

let get_list r fn =
  let n = get_u32 r in
  (* every element costs at least one byte, so a count beyond the
     remaining input is corrupt — fail before building the list *)
  need r n;
  List.init n (fun _ -> fn r)
