let header = Sources.header_c

(* One lock covers the once-cells and the compilation cache: the runtime
   library is process-global state shared by every worker domain of a
   serving process. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let memo fn =
  let cell = ref None in
  fun () ->
    match locked (fun () -> !cell) with
    | Some v -> v
    | None ->
        (* compile outside the lock (it is slow and reentrant); a racing
           domain may compile twice, first publication wins *)
        let v = fn () in
        locked (fun () ->
            match !cell with
            | Some v' -> v'
            | None ->
                cell := Some v;
                v)

let crt0 = memo (fun () -> Asmlib.Assemble.assemble ~name:"crt0.o" Sources.crt0_s)

let libc =
  memo (fun () ->
      let div = Asmlib.Assemble.assemble ~name:"div.o" Sources.div_s in
      let sys = Asmlib.Assemble.assemble ~name:"sys.o" Sources.sys_s in
      let libc = Minic.Driver.compile ~name:"libc.o" Sources.libc_c in
      Objfile.Archive.create "libc.a" [ libc; div; sys ])

(* Content-addressed cache for user/analysis compilations: the same
   Mini-C source (e.g. one tool's analysis routines applied across a whole
   benchmark suite) is compiled once per content key.  Units are immutable
   once built, so sharing the compiled object is safe. *)
let user_cache : (string, Objfile.Unit_file.t) Hashtbl.t = Hashtbl.create 16

let clear_cache () = locked (fun () -> Hashtbl.reset user_cache)

let compile_user ?(cache = true) ~name source =
  let full = header ^ "\n" ^ source in
  if not cache then Minic.Driver.compile ~name full
  else begin
    (* the unit name lands in diagnostics inside the object, so it is part
       of the content key *)
    let key = Digest.string (name ^ "\000" ^ full) in
    match locked (fun () -> Hashtbl.find_opt user_cache key) with
    | Some u -> u
    | None ->
        let u = Minic.Driver.compile ~name full in
        locked (fun () ->
            match Hashtbl.find_opt user_cache key with
            | Some u' -> u'
            | None ->
                Hashtbl.replace user_cache key u;
                u)
  end

let link_program units =
  Linker.Link.link
    (Linker.Link.Unit (crt0 ())
     :: (List.map (fun u -> Linker.Link.Unit u) units @ [ Linker.Link.Lib (libc ()) ]))

let compile_and_link ~name source = link_program [ compile_user ~name source ]
