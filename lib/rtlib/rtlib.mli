(** The runtime library, compiled on demand and memoised.

    The library plays libc's role from the paper: the application links
    one copy; ATOM links a second, completely separate copy into the
    analysis module ("if both use printf, there are two copies of printf
    in the final executable"). *)

val header : string
(** Prototypes for the public library functions; prepended to user Mini-C
    sources by {!compile_user}. *)

val crt0 : unit -> Objfile.Unit_file.t
(** Startup code defining [__start]; applications only. *)

val libc : unit -> Objfile.Archive.t
(** [libc.a]: division helpers, syscall stubs and the Mini-C library. *)

val compile_user : ?cache:bool -> name:string -> string -> Objfile.Unit_file.t
(** Compile a user program with the library prototypes in scope.

    By default the result is memoised under a content key (digest of unit
    name + full source), so compiling the same source again returns the
    cached object; [~cache:false] forces a fresh compilation (used by the
    benchmark harness's reference pipeline and cold modes). *)

val clear_cache : unit -> unit
(** Drop every entry of the content-addressed compilation cache. *)

val link_program : Objfile.Unit_file.t list -> Objfile.Exe.t
(** [crt0 + units + libc], standard layout, entry [__start]. *)

val compile_and_link : name:string -> string -> Objfile.Exe.t
(** Convenience: [link_program [compile_user ~name src]]. *)
