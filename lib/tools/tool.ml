type t = {
  name : string;
  description : string;
  points : string;
  nargs : int;
  paper_ratio : float;
  paper_avg_instr_secs : float;
  instrument : Atom.Api.t -> unit;
  analysis : string;
}

let apply ?options ?pipeline tool exe =
  Atom.Instrument.instrument_source ?options ?pipeline ~exe
    ~tool:tool.instrument ~analysis_src:tool.analysis ()

let counter_tool api ~init ~report walk =
  let n = ref 0 in
  let next () =
    let id = !n in
    incr n;
    id
  in
  walk ~next;
  Atom.Api.add_call_program api Atom.Api.Program_before init [ Atom.Api.Int !n ];
  Atom.Api.add_call_program api Atom.Api.Program_after report []
