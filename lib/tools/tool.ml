type t = {
  name : string;
  description : string;
  points : string;
  nargs : int;
  paper_ratio : float;
  paper_avg_instr_secs : float;
  instrument : Atom.Api.t -> unit;
  analysis : string;
}

let apply ?options ?pipeline tool exe =
  Atom.Instrument.instrument_source ?options ?pipeline ~exe
    ~tool:tool.instrument ~analysis_src:tool.analysis ()
