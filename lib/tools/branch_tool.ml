(* branch: evaluate a 2-bit-counter branch predictor (paper Figure 5:
   "prediction using 2-bit history table"). *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "BrInit(int)";
  add_call_proto api "BrPredict(int, long, VALUE)";
  add_call_proto api "BrReport()";
  Tool.counter_tool api ~init:"BrInit" ~report:"BrReport" (fun ~next ->
      List.iter
        (fun p ->
          List.iter
            (fun b ->
              let inst = get_last_inst b in
              if is_inst_type inst Inst_cond_branch then
                add_call_inst api inst Before "BrPredict"
                  [ Int (next ()); Inst_pc inst; Br_cond_value ])
            (blocks p))
        (procs api))

let analysis =
  {|
char *__br_state;
long __br_total;
long __br_hits;
long __br_taken;

void BrInit(long n) {
  __br_state = (char *) malloc(n + 1);
  memset(__br_state, 1, n + 1);   /* weakly not-taken */
}

void BrPredict(long id, long pc, long taken) {
  long s = __br_state[id];
  __br_total++;
  if (taken) {
    __br_taken++;
    if (s >= 2) __br_hits++;
    if (s < 3) __br_state[id] = s + 1;
  } else {
    if (s < 2) __br_hits++;
    if (s > 0) __br_state[id] = s - 1;
  }
}

void BrReport(void) {
  void *f = fopen("branch.out", "w");
  fprintf(f, "conditional branches executed: %d\n", __br_total);
  fprintf(f, "taken:                         %d\n", __br_taken);
  fprintf(f, "2-bit predictor correct:       %d\n", __br_hits);
  if (__br_total > 0)
    fprintf(f, "accuracy (x1000):              %d\n",
            __br_hits * 1000 / __br_total);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "branch";
    description = "prediction using 2-bit history table";
    points = "each conditional branch";
    nargs = 3;
    paper_ratio = 3.03;
    paper_avg_instr_secs = 5.52;
    instrument;
    analysis;
  }
