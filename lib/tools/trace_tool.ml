(* trace: record flow facts for worst-case path analysis — per-block and
   per-edge execution counts plus observed per-entry loop iteration
   maxima, written as a PML-like sexp artifact (trace.out).

   Slot assignment must match what lib/wcet reconstructs from the same
   executable: Om.Cfg.build assigns global block ids in procedure/block
   order and edge ids in block order (taken before fall-through), and
   both sides derive them independently from the identical IR.  Blocks
   occupy count slots [0, nb), edges [nb, nb+ne); loops get their own
   current/max streak arrays indexed by Cfg loop order.

   Loop bounds are measured as iteration streaks: the header's Before
   probe increments the loop's current streak, and every probeable
   loop-entry edge flushes current into max and resets it.  Unprobeable
   entries (a call falling through into a header) merely merge adjacent
   streaks, which can only enlarge the recorded maximum — the WCET side's
   loop constraints stay sound.

   The report is deliberately NOT a ProgramAfter hook.  ProgramAfter
   fires at the entry of exit(), leaving everything exit() runs
   afterwards (buffer flushes, the __sys_exit stub) invisible to probes
   that already wrote their artifact.  Instead the report rides as an
   ordinary Before probe on __sys_exit's entry block — the last block
   any clean run executes — inserted after that block's own counter so
   the written facts cover every retired block except the final ret
   that the terminating callsys leaves behind.  lib/wcet's termination
   discount accounts for exactly that suffix. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "TrCfg(int, int, int)";
  add_call_proto api "TrInit(int)";
  add_call_proto api "TrCount(int)";
  add_call_proto api "TrIter(int)";
  add_call_proto api "TrEnter(int)";
  add_call_proto api "TrReport()";
  let cfg = Om.Cfg.build (ir api) in
  let blocks_by_gid = Array.make cfg.Om.Cfg.nblocks None in
  let g = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          blocks_by_gid.(!g) <- Some b;
          incr g)
        (blocks p))
    (procs api);
  assert (!g = cfg.Om.Cfg.nblocks);
  let block gid =
    match blocks_by_gid.(gid) with
    | Some b -> b
    | None -> assert false
  in
  let nb = cfg.Om.Cfg.nblocks in
  let ne = Array.length cfg.Om.Cfg.edges in
  let nl = Array.length cfg.Om.Cfg.loops in
  add_call_program api Program_before "TrCfg" [ Int nb; Int ne; Int nl ];
  let nslots = ref 0 in
  let next () =
    let id = !nslots in
    incr nslots;
    id
  in
  for gid = 0 to nb - 1 do
    add_call_block api (block gid) Before "TrCount" [ Int (next ()) ]
  done;
  Array.iter
    (fun e ->
      let slot = next () in
      if e.Om.Cfg.e_probe then begin
        let kind =
          match e.Om.Cfg.e_kind with
          | Om.Cfg.Taken -> Taken
          | Om.Cfg.Fallthrough -> Fallthrough
        in
        add_call_edge api (block e.Om.Cfg.e_src) kind "TrCount" [ Int slot ]
      end)
    cfg.Om.Cfg.edges;
  Array.iteri
    (fun li l ->
      add_call_block api (block l.Om.Cfg.l_header) Before "TrIter" [ Int li ];
      List.iter
        (fun eid ->
          let e = cfg.Om.Cfg.edges.(eid) in
          if e.Om.Cfg.e_probe then begin
            let kind =
              match e.Om.Cfg.e_kind with
              | Om.Cfg.Taken -> Taken
              | Om.Cfg.Fallthrough -> Fallthrough
            in
            add_call_edge api (block e.Om.Cfg.e_src) kind "TrEnter" [ Int li ]
          end)
        l.Om.Cfg.l_entries)
    cfg.Om.Cfg.loops;
  add_call_program api Program_before "TrInit" [ Int !nslots ];
  (* report on __sys_exit's entry block, after its own TrCount (same
     site, same rank, later insertion); fall back to ProgramAfter for
     executables without the runtime's stub *)
  let sys_exit_entry =
    List.find_map
      (fun p ->
        if proc_name p = "__sys_exit" then
          match blocks p with b :: _ -> Some b | [] -> None
        else None)
      (procs api)
  in
  match sys_exit_entry with
  | Some b -> add_call_block api b Before "TrReport" []
  | None -> add_call_program api Program_after "TrReport" []

let analysis =
  {|
long *__tr_counts;
long *__tr_cur;
long *__tr_max;
long __tr_nb;
long __tr_ne;
long __tr_nl;

void TrCfg(long nb, long ne, long nl) {
  __tr_nb = nb;
  __tr_ne = ne;
  __tr_nl = nl;
}

void TrInit(long n) {
  __tr_counts = (long *) calloc(n + 1, sizeof(long));
  __tr_cur = (long *) calloc(__tr_nl + 1, sizeof(long));
  __tr_max = (long *) calloc(__tr_nl + 1, sizeof(long));
}

void TrCount(long slot) { __tr_counts[slot]++; }

void TrIter(long loop) { __tr_cur[loop]++; }

void TrEnter(long loop) {
  if (__tr_cur[loop] > __tr_max[loop]) __tr_max[loop] = __tr_cur[loop];
  __tr_cur[loop] = 0;
}

void TrReport(void) {
  void *f = fopen("trace.out", "w");
  long i;
  for (i = 0; i < __tr_nl; i++)
    if (__tr_cur[i] > __tr_max[i]) __tr_max[i] = __tr_cur[i];
  fprintf(f, "(trace-facts (version 1)\n");
  fprintf(f, " (slots %d %d %d)\n", __tr_nb, __tr_ne, __tr_nl);
  for (i = 0; i < __tr_nb; i++)
    if (__tr_counts[i])
      fprintf(f, " (block %d %d)\n", i, __tr_counts[i]);
  for (i = 0; i < __tr_ne; i++)
    if (__tr_counts[__tr_nb + i])
      fprintf(f, " (edge %d %d)\n", i, __tr_counts[__tr_nb + i]);
  for (i = 0; i < __tr_nl; i++)
    if (__tr_max[i])
      fprintf(f, " (loop %d %d)\n", i, __tr_max[i]);
  fprintf(f, ")\n");
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "trace";
    description = "records flow facts for worst-case path bounds";
    points = "each basic block/each edge";
    nargs = 1;
    (* not one of the paper's eleven tools: no Figure 5/6 numbers *)
    paper_ratio = 0.;
    paper_avg_instr_secs = 0.;
    instrument;
    analysis;
  }
