(* gprof: call-graph-flavoured profile — per-procedure call counts and
   dynamic instruction counts. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "GpInit(int)";
  add_call_proto api "GpEnter(int)";
  add_call_proto api "GpBlock(int, int)";
  add_call_proto api "GpName(int, char *)";
  add_call_proto api "GpReport()";
  Tool.counter_tool api ~init:"GpInit" ~report:"GpReport" (fun ~next ->
      List.iter
        (fun p ->
          let pid = next () in
          add_call_proc api p Before "GpEnter" [ Int pid ];
          List.iter
            (fun b ->
              add_call_block api b Before "GpBlock"
                [ Int pid; Int (block_ninsts b) ])
            (blocks p);
          add_call_program api Program_after "GpName" [ Int pid; Str (proc_name p) ])
        (procs api))

let analysis =
  {|
long *__gp_calls;
long *__gp_insns;
long __gp_n;
void *__gp_file;

void GpInit(long n) {
  __gp_n = n;
  __gp_calls = (long *) calloc(n + 1, sizeof(long));
  __gp_insns = (long *) calloc(n + 1, sizeof(long));
}

void GpEnter(long pid) { __gp_calls[pid]++; }

void GpBlock(long pid, long ninsts) { __gp_insns[pid] += ninsts; }

void GpName(long pid, char *name) {
  if (!__gp_file) {
    __gp_file = fopen("gprof.out", "w");
    fprintf(__gp_file, "procedure\tcalls\tinstructions\n");
  }
  if (__gp_calls[pid] > 0)
    fprintf(__gp_file, "%s\t%d\t%d\n", name, __gp_calls[pid], __gp_insns[pid]);
}

void GpReport(void) {
  if (__gp_file) fclose(__gp_file);
}
|}

let tool =
  {
    Tool.name = "gprof";
    description = "call graph based profiling tool";
    points = "each procedure/each basic block";
    nargs = 2;
    paper_ratio = 2.70;
    paper_avg_instr_secs = 5.66;
    instrument;
    analysis;
  }
