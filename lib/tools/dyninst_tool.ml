(* dyninst: dynamic instruction counts, block by block. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "DynInit(int)";
  add_call_proto api "DynBlock(int, int, long)";
  add_call_proto api "DynReport()";
  Tool.counter_tool api ~init:"DynInit" ~report:"DynReport" (fun ~next ->
      List.iter
        (fun p ->
          List.iter
            (fun b ->
              add_call_block api b Before "DynBlock"
                [ Int (next ()); Int (block_ninsts b); Block_pc b ])
            (blocks p))
        (procs api))

let analysis =
  {|
long *__dyn_counts;
long __dyn_nblocks;
long __dyn_insns;
long __dyn_execs;

void DynInit(long n) {
  __dyn_nblocks = n;
  __dyn_counts = (long *) calloc(n + 1, sizeof(long));
}

void DynBlock(long id, long ninsts, long pc) {
  __dyn_counts[id]++;
  __dyn_insns += ninsts;
  __dyn_execs++;
}

void DynReport(void) {
  void *f = fopen("dyninst.out", "w");
  long i, used = 0;
  for (i = 0; i < __dyn_nblocks; i++)
    if (__dyn_counts[i]) used++;
  fprintf(f, "dynamic instructions: %d\n", __dyn_insns);
  fprintf(f, "block executions:     %d\n", __dyn_execs);
  fprintf(f, "static blocks:        %d\n", __dyn_nblocks);
  fprintf(f, "blocks ever executed: %d\n", used);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "dyninst";
    description = "computes dynamic instruction counts";
    points = "each basic block";
    nargs = 3;
    paper_ratio = 2.91;
    paper_avg_instr_secs = 6.32;
    instrument;
    analysis;
  }
