(** A packaged analysis tool: the instrumentation routine, the Mini-C
    analysis routines, and the numbers the paper reports for it
    (Figures 5 and 6), kept together so the benchmark harness can print
    paper-vs-measured tables. *)

type t = {
  name : string;
  description : string;  (** Figure 5's "Tool Description" column *)
  points : string;  (** Figure 6's "Instrumentation" column *)
  nargs : int;  (** Figure 6's "Number of Arguments" column *)
  paper_ratio : float;  (** Figure 6: instrumented/uninstrumented time *)
  paper_avg_instr_secs : float;  (** Figure 5: average seconds to instrument *)
  instrument : Atom.Api.t -> unit;
  analysis : string;  (** Mini-C source of the analysis routines *)
}

val apply :
  ?options:Atom.Instrument.options ->
  ?pipeline:Atom.Instrument.pipeline ->
  t ->
  Objfile.Exe.t ->
  Objfile.Exe.t * Atom.Instrument.info
(** Instrument an executable with the tool.  [pipeline] selects the fast
    (cached, default) or reference (pre-overhaul baseline) engine; both
    produce byte-identical output. *)

val counter_tool :
  Atom.Api.t ->
  init:string ->
  report:string ->
  (next:(unit -> int) -> unit) ->
  unit
(** The counter-array idiom shared by the counting tools (prof, gprof,
    branch, dyninst, trace): the walk assigns dense slot ids with [next]
    while adding its per-site calls, then [init] is called at program
    start with the final slot count (so the analysis code can size its
    arrays) and [report] at program end.  Registration order — walk
    calls first, then init, then report — is part of the tools'
    byte-identity contract; [Api.action] ranks reorder the init/report
    calls to the right execution slots. *)
