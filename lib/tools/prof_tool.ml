(* prof: flat instruction profile per procedure. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "ProfInit(int)";
  add_call_proto api "ProfBlock(int, int)";
  add_call_proto api "ProfName(int, char *)";
  add_call_proto api "ProfReport()";
  Tool.counter_tool api ~init:"ProfInit" ~report:"ProfReport" (fun ~next ->
      List.iter
        (fun p ->
          let pid = next () in
          List.iter
            (fun b ->
              add_call_block api b Before "ProfBlock"
                [ Int pid; Int (block_ninsts b) ])
            (blocks p);
          add_call_program api Program_after "ProfName" [ Int pid; Str (proc_name p) ])
        (procs api))

let analysis =
  {|
long *__prof_insns;
long __prof_n;
long __prof_total;
void *__prof_file;

void ProfInit(long n) {
  __prof_n = n;
  __prof_insns = (long *) calloc(n + 1, sizeof(long));
}

void ProfBlock(long pid, long ninsts) {
  __prof_insns[pid] += ninsts;
  __prof_total += ninsts;
}

void ProfName(long pid, char *name) {
  if (!__prof_file) {
    __prof_file = fopen("prof.out", "w");
    fprintf(__prof_file, "total instructions: %d\n", __prof_total);
    fprintf(__prof_file, "procedure\tinstructions\tpermille\n");
  }
  if (__prof_insns[pid] > 0 && __prof_total > 0)
    fprintf(__prof_file, "%s\t%d\t%d\n", name, __prof_insns[pid],
            __prof_insns[pid] * 1000 / __prof_total);
}

void ProfReport(void) {
  if (__prof_file) fclose(__prof_file);
}
|}

let tool =
  {
    Tool.name = "prof";
    description = "instruction profiling tool";
    points = "each procedure/each basic block";
    nargs = 2;
    paper_ratio = 2.33;
    paper_avg_instr_secs = 6.13;
    instrument;
    analysis;
  }
