(** The eleven tools of the paper's evaluation (Figures 5 and 6), plus
    our [trace] flow-fact recorder — twelve in all. *)

val all : Tool.t list
(** In the paper's order: branch, cache, dyninst, gprof, inline, io,
    malloc, pipe, prof, syscall, trace, unalign.  [trace] is not a paper
    tool (its Figure 5/6 numbers are zero); it records the flow facts
    the WCET layer consumes. *)

val find : string -> Tool.t option
val names : string list
