let all =
  [
    Branch_tool.tool;
    Cache_tool.tool;
    Dyninst_tool.tool;
    Gprof_tool.tool;
    Inline_tool.tool;
    Io_tool.tool;
    Malloc_tool.tool;
    Pipe_tool.tool;
    Prof_tool.tool;
    Syscall_tool.tool;
    Trace_tool.tool;
    Unalign_tool.tool;
  ]

let find name = List.find_opt (fun t -> t.Tool.name = name) all
let names = List.map (fun t -> t.Tool.name) all
