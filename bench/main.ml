(* Benchmark harness: regenerates the paper's evaluation.

   Figure 5 - time for ATOM to instrument the benchmark suite with each
   registered tool (host wall-clock; the paper measured seconds on an
   Alpha 3000/400 over 20 SPEC92 programs).  Measured under three
   pipelines — pre-overhaul reference, fast with cold caches, fast with
   warm caches — with every instrumented image byte-compared across all
   three before timings are reported; results go to BENCH_atom.json.

   Figure 6 - execution-time ratio of instrumented vs uninstrumented
   programs per tool (we measure simulated instructions, the paper
   measured wall-clock; shapes are comparable, absolute values are not).

   Ablations - the design alternatives of paper section 4: wrapper
   routines vs inlined saves, dataflow-summary register saving vs
   save-all, and the linked vs partitioned heap.

   Perf - simulator-engine comparison: every workload, uninstrumented
   and instrumented with each tool, run under both the reference
   interpreter and the closure-compiled fast engine; checks that the two
   agree bit-for-bit and reports simulated instructions per second and
   the speedup ratio, writing the results to BENCH_sim.json.

   Faults - the fail-closed campaign: seeded syscall errors, corrupted
   images and fuel cutoffs over plain and instrumented workloads; writes
   BENCH_faults.json and demands zero escaped exceptions and zero
   engine disagreements.

   Wcet - static worst-case path bounds: records flow facts with the
   trace tool, solves the IPET integer program per procedure, and
   asserts the static bound dominates the measured cycles for every
   workload on both engines; writes BENCH_wcet.json.

   Usage: main.exe
     [fig5 [--smoke] [--cold]|fig6|ablations|verify|bechamel [--cold]|
      quick|perf [--smoke] [--min-speedup X]|faults [--smoke]|
      wcet [--smoke]|all]  *)

let time_it fn =
  let t0 = Unix.gettimeofday () in
  let r = fn () in
  (r, Unix.gettimeofday () -. t0)

let hrule width = print_endline (String.make width '-')

(* -- shared runs -------------------------------------------------------- *)

(* keyed per engine: the cached instruction counts are engine-independent
   (the engines are differentially tested to agree), but the timing work
   in [perf] must not hand one engine a cache warmed by the other *)
let base_cache : (string, Objfile.Exe.t * (int * int)) Hashtbl.t = Hashtbl.create 16

let base_of2 ?(engine = Machine.Sim.Fast) w =
  let key = w.Workloads.w_name ^ "/" ^ Machine.Sim.engine_name engine in
  match Hashtbl.find_opt base_cache key with
  | Some x -> x
  | None ->
      let exe = Workloads.compile w in
      let outcome, m = Workloads.run_exe ~engine exe in
      (match outcome with
      | Machine.Sim.Exit 0 -> ()
      | _ -> failwith (w.Workloads.w_name ^ ": base run failed"));
      let st = Machine.Sim.stats m in
      let v = (exe, (st.Machine.Sim.st_insns, st.Machine.Sim.st_pair_cycles)) in
      Hashtbl.replace base_cache key v;
      v

let base_of ?engine w =
  let exe, (insns, _) = base_of2 ?engine w in
  (exe, insns)

let run_instrumented2 ?engine exe' name =
  let outcome, m = Workloads.run_exe ?engine exe' in
  (match outcome with
  | Machine.Sim.Exit 0 -> ()
  | Machine.Sim.Exit n -> failwith (Printf.sprintf "%s: exit %d" name n)
  | Machine.Sim.Fault f ->
      failwith (Printf.sprintf "%s: fault %s" name (Machine.Fault.to_string f))
  | Machine.Sim.Out_of_fuel -> failwith (name ^ ": out of fuel"));
  let st = Machine.Sim.stats m in
  (st.Machine.Sim.st_insns, st.Machine.Sim.st_pair_cycles)

let run_instrumented ?engine exe' name = fst (run_instrumented2 ?engine exe' name)

(* -- Figure 5 ------------------------------------------------------------ *)

(* Empty the content-addressed toolchain caches (prepared analysis
   modules and compiled Mini-C user units), so the next instrumentation
   pays the full cold-start cost. *)
let clear_toolchain_caches () =
  Atom.Toolcache.clear ();
  Rtlib.clear_cache ()

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type fig5_row = {
  f_tool : string;
  f_ref_secs : float;  (* pre-overhaul pipeline, no caches *)
  f_cold_secs : float;  (* fast pipeline starting from empty caches *)
  f_warm_secs : float;  (* fast pipeline with the caches already populated *)
  f_diverged : string list;  (* workloads whose images were not byte-identical *)
}

(* Figure 5, measured three ways per tool over the workload suite:

     ref   the pre-overhaul pipeline ([pipeline = Ref]: list-scan symbol
           lookups, dense liveness fixpoint, no caches) — the baseline the
           speedup is quoted against;
     cold  the fast pipeline starting from empty toolchain caches;
     warm  the fast pipeline again, caches populated by the cold sweep.

   Every (tool, workload) cell byte-compares all three instrumented
   images; any divergence fails the run (exit 1) after BENCH_atom.json
   is written.  [--smoke] shrinks the matrix for CI; [--cold] empties
   the caches before *every* instrumentation call in the fast sweeps, so
   both fast columns report cold-start cost (pure algorithmic speedup,
   no cache reuse). *)
let fig5 ?(smoke = false) ?(cold = false) () =
  let workloads =
    if smoke then
      List.filter
        (fun w -> List.mem w.Workloads.w_name [ "sieve"; "qsort"; "cells" ])
        Workloads.all
    else Workloads.all
  in
  let tools =
    if smoke then
      List.filter
        (fun t -> List.mem t.Tools.Tool.name [ "branch"; "malloc" ])
        Tools.Registry.all
    else Tools.Registry.all
  in
  print_endline "";
  print_endline
    "Figure 5: time taken by ATOM to instrument the benchmark suite";
  print_endline
    "(paper: 20 SPEC92 programs on an Alpha 3000/400; here: the workload";
  print_endline "stand-ins on the host machine; shape, not seconds, is comparable)";
  Printf.printf
    "ref = pre-overhaul pipeline, cold = fast pipeline from empty caches,\n";
  Printf.printf "warm = fast pipeline with populated caches%s\n"
    (if cold then " (--cold: caches emptied before every call)" else "");
  print_endline "";
  Printf.printf "%-9s %-34s %8s %8s %8s %8s %9s\n" "Tool" "Description"
    "ref(s)" "cold(s)" "warm(s)" "speedup" "paper(s)";
  hrule 92;
  let exes =
    List.map (fun w -> (w.Workloads.w_name, Workloads.compile w)) workloads
  in
  let rows =
    List.map
      (fun tool ->
        (* The timed region covers instrumentation only; serialisation
           for the byte-identity check happens outside it. *)
        let sweep ~pipeline ~pre () =
          let imgs, dt =
            time_it (fun () ->
                List.map
                  (fun (_, exe) ->
                    pre ();
                    fst (Tools.Tool.apply ~pipeline tool exe))
                  exes)
          in
          (List.map Objfile.Exe.to_string imgs, dt)
        in
        let nop () = () in
        let fast_pre = if cold then clear_toolchain_caches else nop in
        let ref_imgs, ref_t = sweep ~pipeline:Atom.Instrument.Ref ~pre:nop () in
        clear_toolchain_caches ();
        let cold_imgs, cold_t =
          sweep ~pipeline:Atom.Instrument.Fast ~pre:fast_pre ()
        in
        let warm_imgs, warm_t =
          sweep ~pipeline:Atom.Instrument.Fast ~pre:fast_pre ()
        in
        let diverged =
          List.concat
            (List.map2
               (fun (name, _) (r, (c, w)) ->
                 if r = c && r = w then [] else [ name ])
               exes
               (List.combine ref_imgs (List.combine cold_imgs warm_imgs)))
        in
        List.iter
          (fun name ->
            Printf.printf
              "FAIL %s/%s: instrumented images differ between pipelines\n%!"
              tool.Tools.Tool.name name)
          diverged;
        Printf.printf "%-9s %-34s %8.3f %8.3f %8.3f %7.2fx %9.2f\n%!"
          tool.Tools.Tool.name tool.Tools.Tool.description ref_t cold_t warm_t
          (ref_t /. warm_t) tool.Tools.Tool.paper_avg_instr_secs;
        { f_tool = tool.Tools.Tool.name; f_ref_secs = ref_t;
          f_cold_secs = cold_t; f_warm_secs = warm_t; f_diverged = diverged })
      tools
  in
  hrule 92;
  let tot f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let tot_ref = tot (fun r -> r.f_ref_secs) in
  let tot_cold = tot (fun r -> r.f_cold_secs) in
  let tot_warm = tot (fun r -> r.f_warm_secs) in
  let divergences =
    List.fold_left (fun a r -> a + List.length r.f_diverged) 0 rows
  in
  let slowest =
    List.fold_left
      (fun (n, t) r ->
        if r.f_warm_secs > t then (r.f_tool, r.f_warm_secs) else (n, t))
      ("", 0.) rows
  in
  let fastest =
    List.fold_left
      (fun (n, t) r ->
        if r.f_warm_secs < t then (r.f_tool, r.f_warm_secs) else (n, t))
      ("", infinity) rows
  in
  Printf.printf "slowest to instrument: %s (paper: pipe)\n" (fst slowest);
  Printf.printf "fastest to instrument: %s (paper: malloc)\n" (fst fastest);
  Printf.printf
    "aggregate: ref %.3fs  cold %.3fs (%.2fx)  warm %.3fs (%.2fx)\n"
    tot_ref tot_cold (tot_ref /. tot_cold) tot_warm (tot_ref /. tot_warm);
  Printf.printf "toolchain cache: %d hits, %d misses, %d entries\n"
    (Atom.Toolcache.hits ()) (Atom.Toolcache.misses ())
    (Atom.Toolcache.size ());
  (* hand-rolled JSON: the harness has no JSON dependency *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"atom-bench-instrument/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"cold\": %b,\n" smoke cold);
  Buffer.add_string buf
    (Printf.sprintf "  \"workloads\": %d,\n" (List.length workloads));
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"tool\": \"%s\", \"ref_secs\": %.6f, \"cold_secs\": %.6f, \
            \"warm_secs\": %.6f, \"speedup_cold\": %.3f, \"speedup_warm\": \
            %.3f, \"diverged\": %d}%s\n"
           (json_escape r.f_tool) r.f_ref_secs r.f_cold_secs r.f_warm_secs
           (r.f_ref_secs /. r.f_cold_secs)
           (r.f_ref_secs /. r.f_warm_secs)
           (List.length r.f_diverged)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"aggregate\": {\"ref_secs\": %.6f, \"cold_secs\": %.6f, \
        \"warm_secs\": %.6f, \"speedup_cold\": %.3f, \"speedup_warm\": %.3f},\n"
       tot_ref tot_cold tot_warm (tot_ref /. tot_cold) (tot_ref /. tot_warm));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"cache\": {\"hits\": %d, \"misses\": %d, \"entries\": %d},\n"
       (Atom.Toolcache.hits ()) (Atom.Toolcache.misses ())
       (Atom.Toolcache.size ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"divergences\": %d\n}\n" divergences);
  let oc = open_out "BENCH_atom.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_atom.json (%d rows)\n" (List.length rows);
  if divergences > 0 then begin
    Printf.printf "%d image divergence(s) between pipelines\n" divergences;
    exit 1
  end

(* -- Figure 6 ------------------------------------------------------------ *)

let geomean xs =
  exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let fig6 ?(tools = Tools.Registry.all) ?(workloads = Workloads.all) () =
  print_endline "";
  print_endline
    "Figure 6: execution of instrumented programs vs uninstrumented";
  print_endline
    "(ratio of simulated instruction counts, geometric mean over the suite)";
  print_endline "";
  Printf.printf "%-9s %-33s %5s %9s %9s %12s\n" "Tool" "Instrumentation points"
    "args" "insns" "cycles" "paper ratio";
  hrule 84;
  List.iter
    (fun tool ->
      let ratios =
        List.map
          (fun w ->
            let exe, (base_i, base_c) = base_of2 w in
            let exe', _ = Tools.Tool.apply tool exe in
            let insns, cycles =
              run_instrumented2 exe'
                (tool.Tools.Tool.name ^ "/" ^ w.Workloads.w_name)
            in
            ( float_of_int insns /. float_of_int base_i,
              float_of_int cycles /. float_of_int base_c ))
          workloads
      in
      Printf.printf "%-9s %-33s %5d %8.2fx %8.2fx %11.2fx\n%!" tool.Tools.Tool.name
        tool.Tools.Tool.points tool.Tools.Tool.nargs
        (geomean (List.map fst ratios))
        (geomean (List.map snd ratios))
        tool.Tools.Tool.paper_ratio)
    tools;
  hrule 84

(* -- ablations ------------------------------------------------------------ *)

let ablation_tools () =
  List.filter
    (fun t -> List.mem t.Tools.Tool.name [ "branch"; "cache" ])
    Tools.Registry.all

let ablate_wrapper () =
  print_endline "";
  print_endline "Ablation A: wrapper routines vs saves inlined at every site";
  print_endline
    "(paper section 4: the wrapper adds an indirection but avoids code explosion)";
  print_endline "";
  Printf.printf "%-9s %-12s %12s %14s\n" "Tool" "style" "run ratio" "text growth";
  hrule 52;
  List.iter
    (fun tool ->
      List.iter
        (fun (style, label) ->
          let options =
            { Atom.Instrument.default_options with
              Atom.Instrument.call_style = style }
          in
          let w = Option.get (Workloads.find "compress") in
          let exe, base = base_of w in
          let exe', info = Tools.Tool.apply ~options tool exe in
          let insns = run_instrumented exe' (tool.Tools.Tool.name ^ "-" ^ label) in
          Printf.printf "%-9s %-12s %11.2fx %13dK\n%!" tool.Tools.Tool.name label
            (float_of_int insns /. float_of_int base)
            (info.Atom.Instrument.i_text_growth / 1024))
        [ (Atom.Instrument.Wrapper, "wrapper");
          (Atom.Instrument.Inline_saves, "inline") ])
    (ablation_tools ())

let ablate_saves () =
  print_endline "";
  print_endline
    "Ablation B: dataflow-summary register saving vs save-all-caller-save";
  print_endline
    "(paper section 4: summaries cut the registers saved around each call)";
  print_endline "";
  Printf.printf "%-9s %-10s %12s %14s\n" "Tool" "saves" "run ratio" "text growth";
  hrule 50;
  List.iter
    (fun tool ->
      List.iter
        (fun (strategy, label) ->
          let options =
            { Atom.Instrument.default_options with
              Atom.Instrument.save_strategy = strategy }
          in
          let w = Option.get (Workloads.find "compress") in
          let exe, base = base_of w in
          let exe', info = Tools.Tool.apply ~options tool exe in
          let insns = run_instrumented exe' (tool.Tools.Tool.name ^ "-" ^ label) in
          Printf.printf "%-9s %-10s %11.2fx %13dK\n%!" tool.Tools.Tool.name label
            (float_of_int insns /. float_of_int base)
            (info.Atom.Instrument.i_text_growth / 1024))
        [ (Atom.Instrument.Summary, "summary"); (Atom.Instrument.Save_all, "all") ])
    (ablation_tools ())

let ablate_liveness () =
  print_endline "";
  print_endline
    "Ablation D: live-register filtering of saves (the paper's planned";
  print_endline "optimization, implemented here as Summary_and_live)";
  print_endline "";
  Printf.printf "%-9s %-22s %12s %14s\n" "Tool" "saves" "run ratio" "text growth";
  hrule 62;
  List.iter
    (fun tool ->
      List.iter
        (fun (options, label) ->
          let w = Option.get (Workloads.find "compress") in
          let exe, base = base_of w in
          let exe', info = Tools.Tool.apply ~options tool exe in
          let insns = run_instrumented exe' (tool.Tools.Tool.name ^ "-" ^ label) in
          Printf.printf "%-9s %-22s %11.2fx %13dK\n%!" tool.Tools.Tool.name label
            (float_of_int insns /. float_of_int base)
            (info.Atom.Instrument.i_text_growth / 1024))
        [
          (Atom.Instrument.default_options, "summary");
          ( { Atom.Instrument.default_options with
              Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live },
            "summary+live" );
          ( { Atom.Instrument.default_options with
              Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live;
              call_style = Atom.Instrument.Inline_saves },
            "summary+live+inline" );
          ( { Atom.Instrument.default_options with
              Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live;
              call_style = Atom.Instrument.Inline_body },
            "summary+live+spliced" );
          ( { Atom.Instrument.default_options with
              Atom.Instrument.call_style = Atom.Instrument.Specialized },
            "specialized" );
        ])
    (ablation_tools ())

let ablate_heap () =
  print_endline "";
  print_endline "Ablation C: linked vs partitioned sbrk (paper section 4, heap modes)";
  print_endline "";
  let w = Option.get (Workloads.find "lisp") in
  let exe, base = base_of w in
  let malloc_tool = Option.get (Tools.Registry.find "malloc") in
  List.iter
    (fun (mode, label) ->
      let options =
        { Atom.Instrument.default_options with Atom.Instrument.heap_mode = mode }
      in
      let exe', _ = Tools.Tool.apply ~options malloc_tool exe in
      let insns = run_instrumented exe' ("heap-" ^ label) in
      Printf.printf "  %-14s ok, ratio %.3fx\n%!" label
        (float_of_int insns /. float_of_int base))
    [ (Atom.Instrument.Linked, "linked");
      (Atom.Instrument.Partitioned (1 lsl 24), "partitioned") ]

(* -- verification sweep --------------------------------------------------- *)

let option_label (o : Atom.Instrument.options) =
  let s =
    match o.Atom.Instrument.save_strategy with
    | Atom.Instrument.Summary -> "summary"
    | Atom.Instrument.Save_all -> "save-all"
    | Atom.Instrument.Summary_and_live -> "summary+live"
  in
  let c =
    match o.Atom.Instrument.call_style with
    | Atom.Instrument.Wrapper -> "wrapper"
    | Atom.Instrument.Inline_saves -> "inline"
    | Atom.Instrument.Inline_body -> "spliced"
    | Atom.Instrument.Specialized -> "specialized"
  in
  let h =
    match o.Atom.Instrument.heap_mode with
    | Atom.Instrument.Linked -> "linked"
    | Atom.Instrument.Partitioned _ -> "partitioned"
  in
  Printf.sprintf "%s/%s/%s" s c h

let verify_sweep ?(quick = false) () =
  print_endline "";
  print_endline "Verify: checking instrumented images against the engine's audit";
  print_endline
    "(static: decoding, branch ranges, PC map, Figure-4 layout, stub frames";
  print_endline
    "and register saves; differential: original vs instrumented on the";
  print_endline "simulator — outcome, stdout, stderr, files, heap break)";
  let total = ref 0 in
  let failed = ref 0 in
  let issue_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let record label rep =
    incr total;
    if not (Verify.ok rep) then begin
      incr failed;
      Printf.printf "FAIL %s\n%s\n%!" label (Verify.report_to_string rep);
      List.iter
        (fun i ->
          Hashtbl.replace issue_counts i.Verify.v_check
            (1 + Option.value ~default:0
                   (Hashtbl.find_opt issue_counts i.Verify.v_check)))
        rep.Verify.r_issues
    end
  in
  let check ?(diff = false) options tool w =
    let exe, _ = base_of w in
    let label =
      Printf.sprintf "%s/%s [%s]" tool.Tools.Tool.name w.Workloads.w_name
        (option_label options)
    in
    match Tools.Tool.apply ~options tool exe with
    | exception e -> record label
        { Verify.r_checks = [];
          r_issues =
            [ { Verify.v_check = "instrument"; v_addr = None;
                v_detail = Printexc.to_string e } ] }
    | exe', info ->
        let rep = Verify.check_image ~original:exe ~instrumented:exe' ~info in
        let rep =
          if diff then
            Verify.merge rep
              (Verify.differential ~original:exe ~instrumented:exe'
                 ~heap_mode:options.Atom.Instrument.heap_mode ())
          else rep
        in
        record label rep
  in
  (* Pass 1: full tool x workload matrix at the default options, with the
     differential run.  In quick mode (CI smoke) only a small corner of the
     matrix runs, and passes 2 and 3 are skipped. *)
  let pass1_tools =
    if quick then
      List.filter
        (fun t -> List.mem t.Tools.Tool.name [ "branch"; "malloc" ])
        Tools.Registry.all
    else Tools.Registry.all
  in
  let pass1_workloads =
    if quick then
      List.filter
        (fun w -> List.mem w.Workloads.w_name [ "sieve"; "qsort" ])
        Workloads.all
    else Workloads.all
  in
  print_endline "";
  print_endline "pass 1: every tool x workload, default options, static + differential";
  List.iter
    (fun tool ->
      let before = !failed in
      List.iter (check ~diff:true Atom.Instrument.default_options tool)
        pass1_workloads;
      Printf.printf "  %-9s %s\n%!" tool.Tools.Tool.name
        (if !failed = before then "ok"
         else Printf.sprintf "%d FAILURE(S)" (!failed - before)))
    pass1_tools;
  if quick then begin
    print_endline "";
    Printf.printf "verified %d images, %d failure(s)\n" !total !failed;
    if !failed > 0 then exit 1
  end
  else begin
  (* Pass 2: the full option cross product (save strategies x heap modes),
     statically, for every tool and workload. *)
  print_endline "";
  print_endline
    "pass 2: every tool x workload x save strategy x heap mode, static";
  let strategies =
    [ Atom.Instrument.Summary; Atom.Instrument.Save_all;
      Atom.Instrument.Summary_and_live ]
  in
  let heaps =
    [ Atom.Instrument.Linked; Atom.Instrument.Partitioned (1 lsl 24) ]
  in
  List.iter
    (fun strategy ->
      List.iter
        (fun heap ->
          let options =
            { Atom.Instrument.default_options with
              Atom.Instrument.save_strategy = strategy;
              heap_mode = heap }
          in
          let before = !failed in
          List.iter
            (fun tool -> List.iter (check options tool) Workloads.all)
            Tools.Registry.all;
          Printf.printf "  %-28s %s\n%!" (option_label options)
            (if !failed = before then "ok"
             else Printf.sprintf "%d FAILURE(S)" (!failed - before)))
        heaps)
    strategies;
  (* Pass 3: every option combination including call styles, static +
     differential, on a representative subset. *)
  print_endline "";
  print_endline
    "pass 3: all option combinations, representative subset, static + differential";
  let styles =
    [ Atom.Instrument.Wrapper; Atom.Instrument.Inline_saves;
      Atom.Instrument.Inline_body; Atom.Instrument.Specialized ]
  in
  let sub_tools =
    List.filter
      (fun t -> List.mem t.Tools.Tool.name [ "branch"; "cache"; "malloc" ])
      Tools.Registry.all
  in
  let sub_workloads =
    List.filter
      (fun w -> List.mem w.Workloads.w_name [ "compress"; "lisp"; "sieve" ])
      Workloads.all
  in
  List.iter
    (fun strategy ->
      List.iter
        (fun style ->
          List.iter
            (fun heap ->
              let options =
                { Atom.Instrument.save_strategy = strategy;
                  call_style = style;
                  heap_mode = heap }
              in
              let before = !failed in
              List.iter
                (fun tool ->
                  List.iter (check ~diff:true options tool) sub_workloads)
                sub_tools;
              Printf.printf "  %-28s %s\n%!" (option_label options)
                (if !failed = before then "ok"
                 else Printf.sprintf "%d FAILURE(S)" (!failed - before)))
            heaps)
        styles)
    strategies;
  print_endline "";
  Printf.printf "verified %d images, %d failure(s)\n" !total !failed;
  if !failed > 0 then begin
    Hashtbl.iter
      (fun check n -> Printf.printf "  %-18s %d issue(s)\n" check n)
      issue_counts;
    exit 1
  end
  end

(* -- bechamel micro-benchmarks ------------------------------------------- *)

let bechamel ?(cold = false) () =
  let open Bechamel in
  let compress = Option.get (Workloads.find "compress") in
  let exe, _ = base_of compress in
  let instrument_test tool_name =
    let tool = Option.get (Tools.Registry.find tool_name) in
    (* With [--cold] the caches are emptied inside the measured thunk, so
       every sample pays the cold-start instrumentation cost. *)
    Test.make ~name:(Printf.sprintf "fig5/instrument-%s" tool_name)
      (Staged.stage (fun () ->
           if cold then clear_toolchain_caches ();
           ignore (Tools.Tool.apply tool exe)))
  in
  let run_test tool_name =
    let tool = Option.get (Tools.Registry.find tool_name) in
    let exe', _ = Tools.Tool.apply tool exe in
    Test.make ~name:(Printf.sprintf "fig6/run-%s" tool_name)
      (Staged.stage (fun () -> ignore (run_instrumented exe' tool_name)))
  in
  let tests =
    Test.make_grouped ~name:"atom"
      [ instrument_test "malloc"; instrument_test "branch";
        instrument_test "pipe"; run_test "inline" ]
  in
  let cfg = Benchmark.cfg ~limit:6 ~quota:(Time.second 2.0) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  print_endline "";
  print_endline "Bechamel micro-benchmarks (ns per call, OLS on monotonic clock):";
  (* sorted: hash-table order is not deterministic run to run *)
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "  %-28s %12.0f ns\n" name est
         | _ -> Printf.printf "  %-28s (no estimate)\n" name)

(* -- engine performance sweep --------------------------------------------- *)

(* Every workload, uninstrumented and instrumented with each tool, run
   under the reference interpreter, the fast engine, and the fast engine
   under a genuine edge profile (recorded with the packaged trace tool
   and, for instrumented cells, remapped through the instrumenter's
   address map).  Each cell checks full behavioural agreement (outcome,
   the entire statistics record, stdout, stderr, output files, final
   heap break) across all three runs before its timing is trusted; any
   disagreement fails the sweep.  The headline number is the aggregate:
   total simulated instructions over total seconds per engine, which
   averages out the per-cell timer noise.  [min_speedup] is the CI
   regression floor: the sweep fails if the better of the two fast
   aggregates drops below it. *)

type perf_row = {
  p_workload : string;
  p_tool : string option;
  p_insns : int;
  p_ref_secs : float;
  p_fast_secs : float;
  p_prof_secs : float;
  p_agree : bool;
}

(* record an edge profile for a workload the way `runsim --profile`
   consumes one: trace-instrument, run, parse the flow-fact sexp,
   derive per-branch predictions over the original program's CFG *)
let record_predictions exe =
  let trace =
    match Tools.Registry.find "trace" with
    | Some t -> t
    | None -> failwith "no packaged trace tool"
  in
  let exe_t, _ = Tools.Tool.apply trace exe in
  let m = Machine.Sim.load exe_t in
  (match Machine.Sim.run m with
  | Machine.Sim.Exit 0 -> ()
  | _ -> failwith "profile-recording trace run failed");
  let facts =
    match List.assoc_opt "trace.out" (Machine.Sim.output_files m) with
    | Some text -> Wcet.Facts.parse text
    | None -> failwith "trace tool produced no trace.out"
  in
  Wcet.Facts.predictions (Om.Cfg.build (Om.Build.program exe)) facts

let perf ?(smoke = false) ?min_speedup () =
  let workloads =
    if smoke then
      List.filter
        (fun w -> List.mem w.Workloads.w_name [ "sieve"; "qsort"; "cells" ])
        Workloads.all
    else Workloads.all
  in
  let tools =
    if smoke then
      List.filter
        (fun t -> List.mem t.Tools.Tool.name [ "branch"; "inline" ])
        Tools.Registry.all
    else Tools.Registry.all
  in
  let configs = None :: List.map Option.some tools in
  print_endline "";
  Printf.printf
    "Engine sweep%s: %d workloads x %d configurations (uninstrumented + tools)\n"
    (if smoke then " (smoke)" else "")
    (List.length workloads) (List.length configs);
  print_endline
    "each cell runs under the reference interpreter, the fast engine and the";
  print_endline
    "profile-guided fast engine; all three must agree on outcome, statistics,";
  print_endline "stdout/stderr, output files and heap break before it is timed";
  print_endline "";
  Printf.printf "%-10s %-9s %11s %9s %9s %9s %8s %8s\n" "Workload" "Tool"
    "insns" "ref Mips" "fast Mips" "prof Mips" "speedup" "w/prof";
  hrule 80;
  let mismatches = ref 0 in
  let rows = ref [] in
  List.iter
    (fun w ->
      let exe = Workloads.compile w in
      let preds = record_predictions exe in
      List.iter
        (fun tool_opt ->
          let tool_name =
            match tool_opt with None -> "-" | Some t -> t.Tools.Tool.name
          in
          let cell = w.Workloads.w_name ^ "/" ^ tool_name in
          let exe', profile =
            match tool_opt with
            | None -> (exe, Machine.Profile.of_predictions preds)
            | Some t ->
                let exe', info = Tools.Tool.apply t exe in
                let mapped =
                  List.map
                    (fun (pc, d) -> (info.Atom.Instrument.i_map pc, d))
                    preds
                in
                (exe', Machine.Profile.of_predictions mapped)
          in
          let run ?profile engine =
            let (outcome, m), secs =
              time_it (fun () -> Workloads.run_exe ~engine ?profile exe')
            in
            (outcome, m, secs)
          in
          let o_ref, m_ref, s_ref = run Machine.Sim.Ref in
          let o_fast, m_fast, s_fast = run Machine.Sim.Fast in
          let o_prof, m_prof, s_prof = run ~profile Machine.Sim.Fast in
          let agrees o m =
            o_ref = o
            && Machine.Sim.stats m_ref = Machine.Sim.stats m
            && Machine.Sim.stdout m_ref = Machine.Sim.stdout m
            && Machine.Sim.stderr m_ref = Machine.Sim.stderr m
            && Machine.Sim.output_files m_ref = Machine.Sim.output_files m
            && Machine.Sim.brk m_ref = Machine.Sim.brk m
          in
          let agree = agrees o_fast m_fast && agrees o_prof m_prof in
          if not agree then begin
            incr mismatches;
            Printf.printf "FAIL %s: fast engine disagrees with reference\n%!"
              cell
          end;
          let insns = (Machine.Sim.stats m_ref).Machine.Sim.st_insns in
          rows :=
            {
              p_workload = w.Workloads.w_name;
              p_tool = Option.map (fun t -> t.Tools.Tool.name) tool_opt;
              p_insns = insns;
              p_ref_secs = s_ref;
              p_fast_secs = s_fast;
              p_prof_secs = s_prof;
              p_agree = agree;
            }
            :: !rows;
          Printf.printf "%-10s %-9s %11d %9.1f %9.1f %9.1f %7.2fx %7.2fx\n%!"
            w.Workloads.w_name tool_name insns
            (float_of_int insns /. s_ref /. 1e6)
            (float_of_int insns /. s_fast /. 1e6)
            (float_of_int insns /. s_prof /. 1e6)
            (s_ref /. s_fast) (s_ref /. s_prof))
        configs)
    workloads;
  hrule 80;
  let rows = List.rev !rows in
  let tot_insns =
    List.fold_left (fun a r -> a + r.p_insns) 0 rows |> float_of_int
  in
  let tot_ref = List.fold_left (fun a r -> a +. r.p_ref_secs) 0.0 rows in
  let tot_fast = List.fold_left (fun a r -> a +. r.p_fast_secs) 0.0 rows in
  let tot_prof = List.fold_left (fun a r -> a +. r.p_prof_secs) 0.0 rows in
  let ref_ips = tot_insns /. tot_ref
  and fast_ips = tot_insns /. tot_fast
  and prof_ips = tot_insns /. tot_prof in
  Printf.printf
    "aggregate: %.0fM insns  ref %.1fM ips  fast %.1fM ips (%.2fx)  \
     profiled %.1fM ips (%.2fx)\n"
    (tot_insns /. 1e6) (ref_ips /. 1e6) (fast_ips /. 1e6)
    (fast_ips /. ref_ips) (prof_ips /. 1e6) (prof_ips /. ref_ips);
  (* hand-rolled JSON: the harness has no JSON dependency *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"atom-bench-sim/2\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"smoke\": %b,\n\
       \  \"engines\": [\"ref\", \"fast\", \"fast+profile\"],\n"
       smoke);
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"tool\": %s, \"insns\": %d, \
            \"ref_secs\": %.6f, \"fast_secs\": %.6f, \"prof_secs\": %.6f, \
            \"ref_ips\": %.0f, \"fast_ips\": %.0f, \"prof_ips\": %.0f, \
            \"speedup\": %.3f, \"speedup_profiled\": %.3f, \"agree\": %b}%s\n"
           (json_escape r.p_workload)
           (match r.p_tool with
           | None -> "null"
           | Some t -> "\"" ^ json_escape t ^ "\"")
           r.p_insns r.p_ref_secs r.p_fast_secs r.p_prof_secs
           (float_of_int r.p_insns /. r.p_ref_secs)
           (float_of_int r.p_insns /. r.p_fast_secs)
           (float_of_int r.p_insns /. r.p_prof_secs)
           (r.p_ref_secs /. r.p_fast_secs)
           (r.p_ref_secs /. r.p_prof_secs)
           r.p_agree
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"aggregate\": {\"insns\": %.0f, \"ref_secs\": %.6f, \"fast_secs\": \
        %.6f, \"prof_secs\": %.6f, \"ref_ips\": %.0f, \"fast_ips\": %.0f, \
        \"prof_ips\": %.0f, \"speedup\": %.3f, \"speedup_profiled\": %.3f},\n"
       tot_insns tot_ref tot_fast tot_prof ref_ips fast_ips prof_ips
       (fast_ips /. ref_ips) (prof_ips /. ref_ips));
  Buffer.add_string buf
    (Printf.sprintf "  \"mismatches\": %d\n}\n" !mismatches);
  let oc = open_out "BENCH_sim.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_sim.json (%d rows)\n" (List.length rows);
  if !mismatches > 0 then begin
    Printf.printf "%d cell(s) disagreed between engines\n" !mismatches;
    exit 1
  end;
  match min_speedup with
  | Some floor ->
      let best = Float.max (fast_ips /. ref_ips) (prof_ips /. ref_ips) in
      if best < floor then begin
        Printf.printf
          "aggregate speedup %.2fx is below the recorded floor %.2fx\n" best
          floor;
        exit 1
      end
  | None -> ()

(* -- fault-injection campaign ------------------------------------------- *)

(* Drive the seeded fault-injection corpus (syscall errors, corrupted
   images, fuel cutoffs) over a spread of workloads, plain and
   instrumented.  The machine must fail closed: zero OCaml exceptions
   escaping, zero ref/fast disagreements.  Results go to
   BENCH_faults.json; any escape also drops its reproducible case labels
   into BENCH_faults_failing.txt for the CI artifact. *)
let faults ?(smoke = false) () =
  let workload_names =
    if smoke then [ "cover"; "qsort" ]
    else [ "cover"; "qsort"; "sieve"; "compress"; "matmul" ]
  in
  let tool_names = if smoke then [ "dyninst" ] else [ "dyninst"; "prof"; "trace" ] in
  let workloads =
    List.filter (fun w -> List.mem w.Workloads.w_name workload_names) Workloads.all
  in
  let tools =
    List.filter (fun t -> List.mem t.Tools.Tool.name tool_names) Tools.Registry.all
  in
  let scale n = if smoke then max 1 (n / 4) else n in
  let subjects =
    List.concat_map
      (fun w ->
        let exe = Workloads.compile w in
        (w.Workloads.w_name, exe)
        :: List.map
             (fun t ->
               ( t.Tools.Tool.name ^ "/" ^ w.Workloads.w_name,
                 fst (Tools.Tool.apply t exe) ))
             tools)
      workloads
  in
  Printf.printf "fault injection%s: %d subjects\n%!"
    (if smoke then " (smoke)" else "")
    (List.length subjects);
  let reports =
    List.mapi
      (fun i (name, exe) ->
        let r =
          Faultinject.campaign ~seed:(i + 1) ~syscall_cases:(scale 24)
            ~image_cases:(scale 48) ~fuel_cases:(scale 12) exe
        in
        Printf.printf "  %-18s %4d cases, %d escapes, %d mismatches\n%!" name
          r.Faultinject.r_cases
          (List.length r.Faultinject.r_escapes)
          (List.length r.Faultinject.r_mismatches);
        r)
      subjects
  in
  let total = Faultinject.merge reports in
  let oc = open_out "BENCH_faults.json" in
  output_string oc "{\n";
  output_string oc "  \"benchmark\": \"fault-injection\",\n";
  output_string oc (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  output_string oc (Printf.sprintf "  \"subjects\": %d,\n" (List.length subjects));
  let inner = Faultinject.report_to_json total in
  (* splice the report's fields into this object: drop its braces *)
  let inner = String.sub inner 2 (String.length inner - 5) in
  output_string oc inner;
  output_string oc "\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_faults.json (%d cases)\n" total.Faultinject.r_cases;
  if not (Faultinject.ok total) then begin
    let oc = open_out "BENCH_faults_failing.txt" in
    List.iter
      (fun e ->
        Printf.fprintf oc "escape %s: %s\n" e.Faultinject.e_case
          e.Faultinject.e_detail)
      total.Faultinject.r_escapes;
    List.iter
      (fun e ->
        Printf.fprintf oc "mismatch %s: %s\n" e.Faultinject.e_case
          e.Faultinject.e_detail)
      total.Faultinject.r_mismatches;
    close_out oc;
    Printf.printf
      "FAULT-INJECTION FAILURES: %d escapes, %d mismatches (see \
       BENCH_faults_failing.txt)\n"
      (List.length total.Faultinject.r_escapes)
      (List.length total.Faultinject.r_mismatches);
    exit 1
  end

(* -- soak ---------------------------------------------------------------- *)

(* Fleet-scale differential soak: generate seeded Mini-C programs with
   Progen, compile each through the Mini-C toolchain, instrument it with
   every registered tool, run original and instrumented images on both
   engines under protection ceilings, and compare everything against the
   generator's interpreter-independent oracle:

     - the original's stdout must equal the oracle's prediction on both
       engines (catches miscompiles anywhere in the stack);
     - Ref and Fast must agree bit-for-bit on outcome, stdout, stderr,
       stats and final break, instrumented or not (the PR-2 guarantee,
       now over an unbounded program space); the profile-guided fast
       engine must reproduce the same observation under a deterministic
       half-wrong profile and under its exact inverse;
     - every instrumented run must preserve the original's outcome and
       stdout (the paper's transparency property, tools report via
       files, never stdout);
     - nothing may escape as a raw exception (the PR-5 guarantee).

   Any failure is persisted with a one-line repro command, minimized
   with Progen.shrink, and written to test/corpus/ as a regression
   candidate.  Results go to BENCH_soak.json. *)

let soak_fuel = 100_000_000

type soak_obs = {
  so_outcome : Machine.Sim.outcome;
  so_stdout : string;
  so_stderr : string;
  so_brk : int;
  so_stats : Machine.Sim.stats;
}

let soak_observe ?profile ~engine exe =
  let m = Machine.Sim.load ~engine ?profile exe in
  let so_outcome = Machine.Sim.run ~max_insns:soak_fuel m in
  {
    so_outcome;
    so_stdout = Machine.Sim.stdout m;
    so_stderr = Machine.Sim.stderr m;
    so_brk = Machine.Sim.brk m;
    so_stats = Machine.Sim.stats m;
  }

let soak_outcome_str = function
  | Machine.Sim.Exit n -> Printf.sprintf "exit %d" n
  | Machine.Sim.Fault f -> "fault " ^ Machine.Fault.to_string f
  | Machine.Sim.Out_of_fuel -> "out of fuel"

(* Engines must agree on everything; a run and its baseline must agree on
   what the program observably did. *)
let soak_engines_agree a b =
  a.so_outcome = b.so_outcome && a.so_stdout = b.so_stdout
  && a.so_stderr = b.so_stderr && a.so_brk = b.so_brk && a.so_stats = b.so_stats

type soak_failure = {
  sk_seed : int;
  sk_size : int;
  sk_kind : string;  (* "escape" for raw exceptions, "mismatch" otherwise *)
  sk_subject : string;  (* "minic", "baseline", or a tool name *)
  sk_detail : string;
  sk_repro : string;
}

exception Soak_failed of string * string * string  (* kind, subject, detail *)

(* Run the whole per-program differential check; raises Soak_failed on the
   first divergence.  Returns total instructions simulated (for the
   throughput report). *)
let soak_check_program tools t =
  let src = Progen.source t in
  let exe =
    try Rtlib.compile_and_link ~name:"soak.o" src with
    | Minic.Driver.Error msg ->
        raise (Soak_failed ("mismatch", "minic", "frontend rejection: " ^ msg))
    | e ->
        raise
          (Soak_failed ("escape", "minic", "compile raised " ^ Printexc.to_string e))
  in
  let observe ?profile ~subject ~engine exe =
    try soak_observe ?profile ~engine exe
    with e ->
      raise
        (Soak_failed
           ( "escape",
             subject,
             Printf.sprintf "%s engine raised %s"
               (Machine.Sim.engine_name engine)
               (Printexc.to_string e) ))
  in
  let insns = ref 0 in
  let differential ~subject exe =
    let ref_o = observe ~subject ~engine:Machine.Sim.Ref exe in
    let fast_o = observe ~subject ~engine:Machine.Sim.Fast exe in
    insns := !insns + ref_o.so_stats.Machine.Sim.st_insns
             + fast_o.so_stats.Machine.Sim.st_insns;
    if not (soak_engines_agree ref_o fast_o) then
      raise
        (Soak_failed
           ( "mismatch",
             subject,
             Printf.sprintf "ref/fast disagree: ref %s, fast %s"
               (soak_outcome_str ref_o.so_outcome)
               (soak_outcome_str fast_o.so_outcome) ));
    ref_o
  in
  (* baseline: both engines agree and match the oracle *)
  let base = differential ~subject:"baseline" exe in
  (* profile-guided fast engine: a deterministic pseudo-random profile
     over every conditional branch in the image (directions derive from
     the branch pc, so roughly half the predictions are wrong) and its
     exact inverse.  Both exercise the speculation guards and their
     statistics unwind on hit and miss traffic; both must reproduce the
     reference observation bit for bit. *)
  let profiles =
    let prog = Om.Build.program exe in
    let preds = ref [] in
    Om.Ir.iter_insts prog (fun _ _ i ->
        match i.Om.Ir.i_insn with
        | Alpha.Insn.Cbr _ | Alpha.Insn.Fbr _ ->
            preds := (i.Om.Ir.i_pc, (i.Om.Ir.i_pc lsr 2) land 1 = 0) :: !preds
        | _ -> ());
    [
      ("profile", Machine.Profile.of_predictions !preds);
      ( "stale-profile",
        Machine.Profile.of_predictions
          (List.map (fun (pc, d) -> (pc, not d)) !preds) );
    ]
  in
  List.iter
    (fun (tag, profile) ->
      let subject = "baseline+" ^ tag in
      let obs = observe ~profile ~subject ~engine:Machine.Sim.Fast exe in
      insns := !insns + obs.so_stats.Machine.Sim.st_insns;
      if not (soak_engines_agree base obs) then
        raise
          (Soak_failed
             ( "mismatch",
               subject,
               Printf.sprintf
                 "profiled fast disagrees with reference: ref %s, profiled %s"
                 (soak_outcome_str base.so_outcome)
                 (soak_outcome_str obs.so_outcome) )))
    profiles;
  (match base.so_outcome with
  | Machine.Sim.Exit 0 -> ()
  | o ->
      raise
        (Soak_failed
           ("mismatch", "baseline", "uninstrumented run: " ^ soak_outcome_str o)));
  if not (String.equal base.so_stdout (Progen.expected_stdout t)) then
    raise
      (Soak_failed
         ( "mismatch",
           "baseline",
           Printf.sprintf "oracle mismatch: expected %d bytes, got %d bytes"
             (String.length (Progen.expected_stdout t))
             (String.length base.so_stdout) ));
  (* every tool: instrument, run differentially, demand transparency *)
  List.iter
    (fun tool ->
      let name = tool.Tools.Tool.name in
      let ixe =
        try fst (Tools.Tool.apply tool exe)
        with e ->
          raise
            (Soak_failed
               ("escape", name, "instrument raised " ^ Printexc.to_string e))
      in
      let obs = differential ~subject:name ixe in
      if obs.so_outcome <> base.so_outcome then
        raise
          (Soak_failed
             ( "mismatch",
               name,
               Printf.sprintf "outcome changed: %s -> %s"
                 (soak_outcome_str base.so_outcome)
                 (soak_outcome_str obs.so_outcome) ));
      if not (String.equal obs.so_stdout base.so_stdout) then
        raise
          (Soak_failed
             ("mismatch", name, "instrumented stdout differs from original")))
    tools;
  !insns

(* sizes cycle so one soak covers small and large programs *)
let soak_sizes = [| 2; 3; 4; 6; 8; 10; 12; 14 |]

let soak ?(smoke = false) ?(seed = 1) ?(count = 0) ?(size = 0) ?(atomd = false)
    ?(dump = false) () =
  let count = if count > 0 then count else if smoke then 25 else 1000 in
  let tools = Tools.Registry.all in
  let gen i =
    let size =
      if size > 0 then size
      else soak_sizes.(i mod Array.length soak_sizes)
    in
    Progen.generate ~seed:(seed + i) ~size ()
  in
  if dump then begin
    let t = gen 0 in
    print_string (Progen.source t);
    print_endline "/* expected stdout:";
    print_string (Progen.expected_stdout t);
    print_endline "*/";
    exit 0
  end;
  Printf.printf "soak%s: %d programs x %d tools x 2 engines, seeds %d..%d\n%!"
    (if smoke then " (smoke)" else "")
    count (List.length tools) seed
    (seed + count - 1);
  let failures = ref [] in
  let total_insns = ref 0 in
  let gen_secs = ref 0.0 in
  let check_secs = ref 0.0 in
  let corpus_sources = ref [] in
  let t0 = Unix.gettimeofday () in
  for i = 0 to count - 1 do
    let t, dt = time_it (fun () -> gen i) in
    gen_secs := !gen_secs +. dt;
    corpus_sources := (Progen.seed t, Progen.source t) :: !corpus_sources;
    (match time_it (fun () ->
         match soak_check_program tools t with
         | insns -> Ok insns
         | exception Soak_failed (kind, subject, detail) ->
             Error (kind, subject, detail)) with
    | Ok insns, dt ->
        total_insns := !total_insns + insns;
        check_secs := !check_secs +. dt
    | Error (kind, subject, detail), dt ->
        check_secs := !check_secs +. dt;
        Printf.printf "  FAIL seed=%d size=%d %s/%s: %s\n%!" (Progen.seed t)
          (Progen.size t) kind subject detail;
        (* minimize while preserving the same failure kind+subject *)
        let same_failure c =
          match soak_check_program tools c with
          | _ -> false
          | exception Soak_failed (k, s, _) -> k = kind && s = subject
        in
        let small = Progen.shrink t same_failure in
        let corpus_file =
          Printf.sprintf "test/corpus/progen_s%d.c" (Progen.seed t)
        in
        (try
           let oc = open_out corpus_file in
           Printf.fprintf oc "/* soak failure: %s/%s: %s\n   repro: %s */\n%s"
             kind subject detail (Progen.repro_hint t) (Progen.source small);
           close_out oc
         with Sys_error _ -> ());
        failures :=
          {
            sk_seed = Progen.seed t;
            sk_size = Progen.size t;
            sk_kind = kind;
            sk_subject = subject;
            sk_detail = detail;
            sk_repro = Progen.repro_hint t;
          }
          :: !failures);
    if (i + 1) mod 100 = 0 then begin
      Printf.printf "  %d/%d programs, %d Minsns, %.1f prog/s\n%!" (i + 1) count
        (!total_insns / 1_000_000)
        (float_of_int (i + 1) /. (Unix.gettimeofday () -. t0));
      (* bound memory growth over long runs *)
      clear_toolchain_caches ()
    end
  done;
  let total_secs = Unix.gettimeofday () -. t0 in
  let escapes = List.filter (fun f -> f.sk_kind = "escape") !failures in
  let mismatches = List.filter (fun f -> f.sk_kind <> "escape") !failures in
  (* optional atomd replay: a live daemon serves the same corpus *)
  let atomd_stats =
    if not atomd then None
    else begin
      let slice =
        (* instrument+run traffic: every corpus program with a rotating
           tool, both engines *)
        List.rev !corpus_sources
      in
      Printf.printf "atomd replay: %d programs over a live daemon\n%!"
        (List.length slice);
      let tmp = Filename.temp_file "atom-soak" "" in
      Sys.remove tmp;
      Unix.mkdir tmp 0o700;
      let sock = Filename.concat tmp "soak.sock" in
      let store = Filename.concat tmp "store" in
      clear_toolchain_caches ();
      let daemon = Serve.start ~cache_dir:store ~socket:sock () in
      let finally () =
        Serve.stop daemon;
        Atom.Toolcache.set_store None;
        let rec rm p =
          if Sys.is_directory p then begin
            Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
            Unix.rmdir p
          end
          else Sys.remove p
        in
        try rm tmp with Sys_error _ | Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      let c = Serve.Client.connect sock in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let requests = ref 0 and divergences = ref [] in
      let rt0 = Unix.gettimeofday () in
      List.iteri
        (fun i (sd, src) ->
          match Rtlib.compile_and_link ~name:"soak.o" src with
          | exception _ -> ()  (* already reported by the local phase *)
          | exe ->
              let bytes = Objfile.Exe.to_string exe in
              let tool = List.nth tools (i mod List.length tools) in
              let reply =
                Serve.Client.rpc c
                  (Serve.Protocol.Instrument
                     {
                       tool = tool.Tools.Tool.name;
                       options = Atom.Instrument.default_options;
                       exe = Serve.Protocol.Inline bytes;
                     })
              in
              incr requests;
              match reply with
              | Serve.Protocol.Instrumented { digest; _ } ->
                  List.iter
                    (fun engine ->
                      let reply =
                        Serve.Client.rpc c
                          (Serve.Protocol.Run
                             {
                               image = Serve.Protocol.Image digest;
                               stdin = "";
                               ceilings = Serve.Protocol.no_ceilings;
                               engine;
                             })
                      in
                      incr requests;
                      match reply with
                      | Serve.Protocol.Ran r -> (
                          let local = soak_observe ~engine
                              (fst (Tools.Tool.apply tool exe)) in
                          match r.Serve.Protocol.rr_outcome with
                          | Serve.Protocol.W_exit 0
                            when String.equal r.Serve.Protocol.rr_stdout
                                   local.so_stdout ->
                              ()
                          | _ ->
                              divergences :=
                                Printf.sprintf
                                  "seed %d tool %s engine %s: served run \
                                   diverges from local pipeline"
                                  sd tool.Tools.Tool.name
                                  (Machine.Sim.engine_name engine)
                                :: !divergences)
                      | _ ->
                          divergences :=
                            Printf.sprintf "seed %d: run request failed" sd
                            :: !divergences)
                    [ Machine.Sim.Ref; Machine.Sim.Fast ]
              | _ ->
                  divergences :=
                    Printf.sprintf "seed %d tool %s: instrument request failed"
                      sd tool.Tools.Tool.name
                    :: !divergences)
        slice;
      let secs = Unix.gettimeofday () -. rt0 in
      Some (!requests, secs, List.rev !divergences)
    end
  in
  (* report *)
  let oc = open_out "BENCH_soak.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"soak\",\n";
  p "  \"smoke\": %b,\n" smoke;
  p "  \"seed\": %d,\n" seed;
  p "  \"count\": %d,\n" count;
  p "  \"tools\": [%s],\n"
    (String.concat ", "
       (List.map (fun t -> "\"" ^ t.Tools.Tool.name ^ "\"") tools));
  p "  \"engines\": [\"ref\", \"fast\"],\n";
  p "  \"programs\": %d,\n" count;
  p "  \"runs_per_program\": %d,\n" (2 * (List.length tools + 1));
  p "  \"total_insns\": %d,\n" !total_insns;
  p "  \"gen_secs\": %.3f,\n" !gen_secs;
  p "  \"check_secs\": %.3f,\n" !check_secs;
  p "  \"total_secs\": %.3f,\n" total_secs;
  p "  \"programs_per_sec\": %.2f,\n" (float_of_int count /. total_secs);
  p "  \"insns_per_sec\": %.0f,\n" (float_of_int !total_insns /. total_secs);
  p "  \"escapes\": %d,\n" (List.length escapes);
  p "  \"mismatches\": %d,\n" (List.length mismatches);
  (match atomd_stats with
  | Some (reqs, secs, divs) ->
      p "  \"atomd\": { \"requests\": %d, \"secs\": %.3f, \"rps\": %.1f, \
         \"divergences\": %d },\n"
        reqs secs
        (float_of_int reqs /. secs)
        (List.length divs)
  | None -> ());
  p "  \"failures\": [%s]\n"
    (String.concat ",\n    "
       (List.rev_map
          (fun f ->
            Printf.sprintf
              "{ \"seed\": %d, \"size\": %d, \"kind\": \"%s\", \"subject\": \
               \"%s\", \"detail\": %S, \"repro\": %S }"
              f.sk_seed f.sk_size f.sk_kind f.sk_subject f.sk_detail f.sk_repro)
          !failures));
  p "}\n";
  close_out oc;
  Printf.printf
    "soak: %d programs, %d Minsns, %.1f prog/s, %d escapes, %d mismatches -> \
     BENCH_soak.json\n%!"
    count
    (!total_insns / 1_000_000)
    (float_of_int count /. total_secs)
    (List.length escapes) (List.length mismatches);
  let atomd_divs =
    match atomd_stats with Some (_, _, divs) -> divs | None -> []
  in
  List.iter (fun d -> Printf.printf "  atomd divergence: %s\n%!" d) atomd_divs;
  if !failures <> [] || atomd_divs <> [] then begin
    let oc = open_out "BENCH_soak_failing.txt" in
    List.iter
      (fun f ->
        Printf.fprintf oc "%s %s seed=%d size=%d: %s\n  repro: %s\n" f.sk_kind
          f.sk_subject f.sk_seed f.sk_size f.sk_detail f.sk_repro)
      (List.rev !failures);
    List.iter (fun d -> Printf.fprintf oc "atomd: %s\n" d) atomd_divs;
    close_out oc;
    Printf.printf "SOAK FAILURES (see BENCH_soak_failing.txt and test/corpus/)\n";
    exit 1
  end

(* -- serving mode -------------------------------------------------------- *)

(* Load-generate against an in-process atomd: N concurrent clients drain
   a shared queue of instrument requests over a (workload x tool x
   option-variant) matrix, three times over — cold (fresh store, empty
   caches), warm (same daemon, in-memory cache hot) and disk (restarted
   daemon, in-memory cache dropped, same store) — then a run phase
   replays each workload's instrumented image.  Reports requests/sec and
   p50/p99 latency per phase into BENCH_serve.json, and byte-compares
   every served image and every run's stdout against the single-process
   pipeline: any divergence fails the bench. *)

type serve_phase = {
  sp_name : string;
  sp_requests : int;
  sp_secs : float;
  sp_rps : float;
  sp_p50_ms : float;
  sp_p99_ms : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (p * n / 100))

let serve_drive ~name ~clients sock items =
  let lock = Mutex.create () in
  let queue = Queue.create () in
  List.iter (fun it -> Queue.push it queue) items;
  let replies = ref [] in
  let lats = ref [] in
  let client () =
    let c = Serve.Client.connect sock in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    let rec go () =
      Mutex.lock lock;
      let item = if Queue.is_empty queue then None else Some (Queue.pop queue) in
      Mutex.unlock lock;
      match item with
      | None -> ()
      | Some (id, req) ->
          let t0 = Unix.gettimeofday () in
          let reply = Serve.Client.rpc c req in
          let dt = Unix.gettimeofday () -. t0 in
          Mutex.lock lock;
          replies := (id, reply) :: !replies;
          lats := dt :: !lats;
          Mutex.unlock lock;
          go ()
    in
    go ()
  in
  let t0 = Unix.gettimeofday () in
  let doms = List.init clients (fun _ -> Domain.spawn client) in
  List.iter Domain.join doms;
  let secs = Unix.gettimeofday () -. t0 in
  let lats = Array.of_list !lats in
  Array.sort compare lats;
  let n = List.length items in
  ( {
      sp_name = name;
      sp_requests = n;
      sp_secs = secs;
      sp_rps = float_of_int n /. secs;
      sp_p50_ms = 1000.0 *. percentile lats 50;
      sp_p99_ms = 1000.0 *. percentile lats 99;
    },
    !replies )

let serve_bench ?(smoke = false) () =
  let clients = 4 in
  let wl_names =
    if smoke then [ "cover"; "qsort" ]
    else [ "cover"; "qsort"; "sieve"; "bitvec"; "perm"; "hashtab" ]
  in
  let tool_names =
    if smoke then [ "prof"; "branch" ]
    else [ "prof"; "branch"; "syscall"; "malloc"; "dyninst" ]
  in
  let variants =
    [
      ("summary-wrapper", Atom.Instrument.default_options);
      ( "saveall-wrapper",
        { Atom.Instrument.default_options with
          Atom.Instrument.save_strategy = Atom.Instrument.Save_all } );
      ( "live-inline",
        { Atom.Instrument.default_options with
          Atom.Instrument.save_strategy = Atom.Instrument.Summary_and_live;
          Atom.Instrument.call_style = Atom.Instrument.Inline_saves } );
    ]
  in
  Printf.printf "atomd load generator%s: %d clients, %d workloads x %d tools \
                 x %d option variants\n%!"
    (if smoke then " (smoke)" else "")
    clients (List.length wl_names) (List.length tool_names)
    (List.length variants);
  let workloads =
    List.map
      (fun n -> List.find (fun w -> w.Workloads.w_name = n) Workloads.all)
      wl_names
  in
  let exe_bytes =
    List.map
      (fun w -> (w.Workloads.w_name, Objfile.Exe.to_string (Workloads.compile w)))
      workloads
  in
  let items =
    List.concat_map
      (fun (wn, bytes) ->
        List.concat_map
          (fun tn ->
            List.map
              (fun (vn, options) ->
                ( wn ^ "/" ^ tn ^ "/" ^ vn,
                  Serve.Protocol.Instrument
                    { tool = tn; options; exe = Serve.Protocol.Inline bytes } ))
              variants)
          tool_names)
      (List.rev exe_bytes)
  in
  let tmp = Filename.temp_file "atom-serve-bench" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  let store = Filename.concat tmp "store" in
  let sock1 = Filename.concat tmp "cold.sock" in
  let sock2 = Filename.concat tmp "disk.sock" in
  Fun.protect ~finally:(fun () ->
      Atom.Toolcache.set_store None;
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      (try rm tmp with Sys_error _ | Unix.Unix_error _ -> ()))
  @@ fun () ->
  clear_toolchain_caches ();
  let t1 = Serve.start ~cache_dir:store ~socket:sock1 () in
  let cold, cold_replies = serve_drive ~name:"cold" ~clients sock1 items in
  let warm, warm_replies = serve_drive ~name:"warm" ~clients sock1 items in
  Serve.stop t1;
  (* restart: in-memory caches dropped, the store survives *)
  clear_toolchain_caches ();
  let t2 = Serve.start ~cache_dir:store ~socket:sock2 () in
  let disk, disk_replies = serve_drive ~name:"disk" ~clients sock2 items in
  (* run phase: each workload's default-variant image of the first tool,
     via the digest the disk-phase reply advertised *)
  let digest_of id =
    match List.assoc id disk_replies with
    | Serve.Protocol.Instrumented { digest; _ } -> digest
    | _ -> failwith ("no instrumented reply for " ^ id)
  in
  let run_items =
    List.map
      (fun wn ->
        let id = wn ^ "/" ^ List.hd tool_names ^ "/summary-wrapper" in
        ( "run/" ^ wn,
          Serve.Protocol.Run
            {
              image = Serve.Protocol.Image (digest_of id);
              stdin = "";
              ceilings = Serve.Protocol.no_ceilings;
              engine = Machine.Sim.Fast;
            } ))
      wl_names
  in
  let runs, run_replies = serve_drive ~name:"run" ~clients sock2 run_items in
  Serve.stop t2;
  Atom.Toolcache.set_store None;
  (* parity: every served image, from every phase, against the
     single-process pipeline *)
  let divergences = ref 0 in
  List.iter
    (fun (wn, bytes) ->
      let exe = Objfile.Exe.of_string bytes in
      List.iter
        (fun tn ->
          let tool = List.find (fun t -> t.Tools.Tool.name = tn) Tools.Registry.all in
          List.iter
            (fun (vn, options) ->
              let id = wn ^ "/" ^ tn ^ "/" ^ vn in
              let want =
                Objfile.Exe.to_string (fst (Tools.Tool.apply ~options tool exe))
              in
              List.iter
                (fun (phase, replies) ->
                  match List.assoc id replies with
                  | Serve.Protocol.Instrumented { image; _ } ->
                      if not (String.equal image want) then begin
                        incr divergences;
                        Printf.printf "  DIVERGENCE: %s (%s phase)\n" id phase
                      end
                  | _ ->
                      incr divergences;
                      Printf.printf "  DIVERGENCE: %s (%s phase): bad reply\n"
                        id phase)
                [ ("cold", cold_replies); ("warm", warm_replies);
                  ("disk", disk_replies) ])
            variants)
        tool_names)
    exe_bytes;
  let run_failures = ref 0 in
  List.iter
    (fun w ->
      let tool =
        List.find (fun t -> t.Tools.Tool.name = List.hd tool_names)
          Tools.Registry.all
      in
      let exe', _ = Tools.Tool.apply tool (Workloads.compile w) in
      let outcome, m = Workloads.run_exe exe' in
      let id = "run/" ^ w.Workloads.w_name in
      match (List.assoc id run_replies, outcome) with
      | Serve.Protocol.Ran r, Machine.Sim.Exit code ->
          let same =
            r.Serve.Protocol.rr_outcome = Serve.Protocol.W_exit code
            && String.equal r.Serve.Protocol.rr_stdout (Machine.Sim.stdout m)
            && r.Serve.Protocol.rr_stats.Machine.Sim.st_insns
               = (Machine.Sim.stats m).Machine.Sim.st_insns
          in
          if not same then begin
            incr run_failures;
            Printf.printf "  RUN DIVERGENCE: %s\n" id
          end
      | _ ->
          incr run_failures;
          Printf.printf "  RUN DIVERGENCE: %s: bad reply\n" id)
    workloads;
  let phases = [ cold; warm; disk; runs ] in
  hrule 78;
  Printf.printf "%-6s %9s %9s %11s %9s %9s\n" "phase" "requests" "secs"
    "req/s" "p50 ms" "p99 ms";
  hrule 78;
  List.iter
    (fun p ->
      Printf.printf "%-6s %9d %9.2f %11.1f %9.2f %9.2f\n" p.sp_name
        p.sp_requests p.sp_secs p.sp_rps p.sp_p50_ms p.sp_p99_ms)
    phases;
  hrule 78;
  let warm_over_cold = warm.sp_rps /. cold.sp_rps in
  Printf.printf
    "warm/cold throughput: %.1fx   divergences: %d   run parity failures: %d\n"
    warm_over_cold !divergences !run_failures;
  let oc = open_out "BENCH_serve.json" in
  output_string oc "{\n";
  output_string oc "  \"bench\": \"atomd serving mode\",\n";
  output_string oc
    (Printf.sprintf "  \"smoke\": %b,\n  \"clients\": %d,\n  \"workers\": %d,\n"
       smoke clients Serve.default_config.Serve.workers);
  output_string oc
    (Printf.sprintf "  \"workloads\": [%s],\n"
       (String.concat ", "
          (List.map (fun n -> "\"" ^ json_escape n ^ "\"") wl_names)));
  output_string oc
    (Printf.sprintf "  \"tools\": [%s],\n"
       (String.concat ", "
          (List.map (fun n -> "\"" ^ json_escape n ^ "\"") tool_names)));
  output_string oc
    (Printf.sprintf "  \"option_variants\": [%s],\n"
       (String.concat ", "
          (List.map (fun (n, _) -> "\"" ^ json_escape n ^ "\"") variants)));
  output_string oc "  \"phases\": [\n";
  List.iteri
    (fun i p ->
      output_string oc
        (Printf.sprintf
           "    {\"name\": \"%s\", \"requests\": %d, \"secs\": %.3f, \
            \"requests_per_sec\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n"
           p.sp_name p.sp_requests p.sp_secs p.sp_rps p.sp_p50_ms p.sp_p99_ms
           (if i = List.length phases - 1 then "" else ",")))
    phases;
  output_string oc "  ],\n";
  output_string oc
    (Printf.sprintf "  \"warm_over_cold\": %.2f,\n" warm_over_cold);
  output_string oc
    (Printf.sprintf "  \"divergences\": %d,\n  \"run_parity_failures\": %d\n"
       !divergences !run_failures);
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n";
  if !divergences > 0 || !run_failures > 0 then begin
    Printf.printf
      "FAIL: the daemon served bytes the single-process pipeline disagrees \
       with\n";
    exit 1
  end

(* -- WCET: static worst-case path bounds vs measured cycles ------------- *)

type wcet_row = {
  wc_workload : string;
  wc_engine : string;
  wc_measured : int;
  wc_bound : int;
  wc_accounted : int;
  wc_discount : int;
  wc_fallbacks : int;
  wc_infeasible : int;
  wc_truncated : int;
  wc_solve_secs : float;
}

(* For every workload x engine cell: measure the uninstrumented run's
   cycles, record flow facts with the trace tool, solve the IPET integer
   program, and demand bound >= measured.  The accounted column is the
   observed run's own per-block cycle total (what the bound degenerates
   to when the flow facts pin every path). *)
let wcet_bench ?(smoke = false) () =
  let workloads =
    if smoke then
      List.filter
        (fun w -> List.mem w.Workloads.w_name [ "sieve"; "qsort"; "cells" ])
        Workloads.all
    else Workloads.all
  in
  let trace_tool =
    match Tools.Registry.find "trace" with
    | Some t -> t
    | None -> failwith "trace tool not registered"
  in
  let rows = ref [] in
  let violations = ref [] in
  Printf.printf "WCET: IPET static bound vs measured cycles per workload x engine\n";
  Printf.printf "%-10s %-5s %14s %14s %12s %8s\n" "workload" "eng" "measured"
    "bound" "gap" "gap-pm";
  hrule 70;
  List.iter
    (fun w ->
      let exe = Workloads.compile w in
      let cfg = Om.Cfg.build (Om.Build.program exe) in
      let exe', _ = Tools.Tool.apply trace_tool exe in
      List.iter
        (fun engine ->
          let id =
            w.Workloads.w_name ^ "/" ^ Machine.Sim.engine_name engine
          in
          let outcome, m = Workloads.run_exe ~engine exe in
          (match outcome with
          | Machine.Sim.Exit 0 -> ()
          | _ -> failwith (id ^ ": base run failed"));
          let measured = (Machine.Sim.stats m).Machine.Sim.st_cycles in
          let outcome', m' = Workloads.run_exe ~engine exe' in
          (match outcome' with
          | Machine.Sim.Exit 0 -> ()
          | _ -> failwith (id ^ ": trace-instrumented run failed"));
          let facts =
            match List.assoc_opt "trace.out" (Machine.Sim.output_files m') with
            | Some text -> Wcet.Facts.parse text
            | None -> failwith (id ^ ": trace run produced no trace.out")
          in
          let res, solve_secs =
            time_it (fun () -> Wcet.Ipet.analyze cfg facts)
          in
          let bound = res.Wcet.Ipet.bound in
          let gap = bound - measured in
          if bound < measured then violations := id :: !violations;
          Printf.printf "%-10s %-5s %14d %14d %12d %8d%s\n" w.Workloads.w_name
            (Machine.Sim.engine_name engine)
            measured bound gap
            (if measured > 0 then gap * 1000 / measured else 0)
            (if bound < measured then "  VIOLATION" else "");
          rows :=
            {
              wc_workload = w.Workloads.w_name;
              wc_engine = Machine.Sim.engine_name engine;
              wc_measured = measured;
              wc_bound = bound;
              wc_accounted = res.Wcet.Ipet.accounted;
              wc_discount = res.Wcet.Ipet.discount;
              wc_fallbacks = res.Wcet.Ipet.fallbacks;
              wc_infeasible = res.Wcet.Ipet.infeasible;
              wc_truncated = res.Wcet.Ipet.truncated;
              wc_solve_secs = solve_secs;
            }
            :: !rows)
        [ Machine.Sim.Ref; Machine.Sim.Fast ])
    workloads;
  hrule 70;
  let rows = List.rev !rows in
  let violations = List.rev !violations in
  let oc = open_out "BENCH_wcet.json" in
  Printf.fprintf oc "{\n  \"smoke\": %b,\n  \"rows\": [\n" smoke;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"workload\": \"%s\", \"engine\": \"%s\", \"measured\": %d, \
         \"bound\": %d, \"gap\": %d, \"accounted\": %d, \"discount\": %d, \
         \"fallbacks\": %d, \"infeasible\": %d, \"truncated\": %d, \
         \"solve_secs\": %.3f }%s\n"
        (json_escape r.wc_workload) (json_escape r.wc_engine) r.wc_measured
        r.wc_bound (r.wc_bound - r.wc_measured) r.wc_accounted r.wc_discount
        r.wc_fallbacks r.wc_infeasible r.wc_truncated r.wc_solve_secs
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"violations\": [%s]\n}\n"
    (String.concat ", "
       (List.map (fun v -> "\"" ^ json_escape v ^ "\"") violations));
  close_out oc;
  Printf.printf "wrote BENCH_wcet.json\n";
  if violations <> [] then begin
    Printf.printf "FAIL: static bound below measured cycles: %s\n"
      (String.concat ", " violations);
    exit 1
  end

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let has_flag f =
    Array.exists (fun a -> a = f)
      (Array.sub Sys.argv 1 (Array.length Sys.argv - 1))
  in
  match mode with
  | "fig5" -> fig5 ~smoke:(has_flag "--smoke") ~cold:(has_flag "--cold") ()
  | "fig6" -> fig6 ()
  | "ablations" | "ablate" ->
      ablate_wrapper ();
      ablate_saves ();
      ablate_liveness ();
      ablate_heap ()
  | "ablate-wrapper" -> ablate_wrapper ()
  | "ablate-saves" -> ablate_saves ()
  | "ablate-heap" -> ablate_heap ()
  | "ablate-liveness" -> ablate_liveness ()
  | "bechamel" -> bechamel ~cold:(has_flag "--cold") ()
  | "perf" ->
      let min_speedup =
        let rec go i =
          if i >= Array.length Sys.argv - 1 then None
          else if Sys.argv.(i) = "--min-speedup" then
            float_of_string_opt Sys.argv.(i + 1)
          else go (i + 1)
        in
        go 1
      in
      perf ~smoke:(has_flag "--smoke") ?min_speedup ()
  | "faults" -> faults ~smoke:(has_flag "--smoke") ()
  | "soak" ->
      let int_flag f default =
        let rec go i =
          if i >= Array.length Sys.argv - 1 then default
          else if Sys.argv.(i) = f then
            match int_of_string_opt Sys.argv.(i + 1) with
            | Some n -> n
            | None -> default
          else go (i + 1)
        in
        go 1
      in
      soak ~smoke:(has_flag "--smoke") ~seed:(int_flag "--seed" 1)
        ~count:(int_flag "--count" 0) ~size:(int_flag "--size" 0)
        ~atomd:(has_flag "--atomd") ~dump:(has_flag "--dump") ()
  | "serve" -> serve_bench ~smoke:(has_flag "--smoke") ()
  | "wcet" -> wcet_bench ~smoke:(has_flag "--smoke") ()
  | "verify" -> verify_sweep ()
  | "quick" ->
      let tools =
        List.filter
          (fun t -> List.mem t.Tools.Tool.name [ "inline"; "dyninst" ])
          Tools.Registry.all
      in
      let workloads =
        List.filter
          (fun w -> List.mem w.Workloads.w_name [ "cover"; "sieve"; "qsort" ])
          Workloads.all
      in
      fig6 ~tools ~workloads ();
      verify_sweep ~quick:true ()
  | "all" ->
      fig5 ();
      fig6 ();
      ablate_wrapper ();
      ablate_saves ();
      ablate_liveness ();
      ablate_heap ();
      bechamel ()
  | other ->
      Printf.eprintf
        "unknown mode %S \
         (fig5 [--smoke] [--cold]|fig6|ablations|verify|bechamel [--cold]|\
         quick|perf [--smoke] [--min-speedup X]|faults [--smoke]|\
         serve [--smoke]|\
         wcet [--smoke]|\
         soak [--smoke] [--seed N] [--count N] [--size N] [--atomd] [--dump]|all)\n"
        other;
      exit 2
