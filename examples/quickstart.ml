(* Quickstart: the paper's running example (Figures 2 and 3) —
   a tool that counts how many times each conditional branch is taken
   and not taken, written against the ATOM API.

     dune exec examples/quickstart.exe

   Compare the instrumentation routine below with the paper's Figure 2:
   AddCallProto / GetFirstProc / GetNextProc / GetLastInst / IsInstType /
   AddCallInst / AddCallProgram all have direct equivalents. *)

(* Figure 2: the instrumentation routine. *)
let instrument_routine api =
  let open Atom.Api in
  add_call_proto api "OpenFile(int)";
  add_call_proto api "CondBranch(int, VALUE)";
  add_call_proto api "PrintBranch(int, long)";
  add_call_proto api "CloseFile()";
  let nbranch = ref 0 in
  (* traverse the program a procedure at a time, paper style *)
  let rec each_proc = function
    | None -> ()
    | Some p ->
        let rec each_block = function
          | None -> ()
          | Some b ->
              let inst = get_last_inst b in
              if is_inst_type inst Inst_cond_branch then begin
                add_call_inst api inst Before "CondBranch"
                  [ Int !nbranch; Br_cond_value ];
                add_call_program api Program_after "PrintBranch"
                  [ Int !nbranch; Inst_pc inst ];
                incr nbranch
              end;
              each_block (get_next_block p b)
        in
        each_block (get_first_block p);
        each_proc (get_next_proc api p)
  in
  each_proc (get_first_proc api);
  add_call_program api Program_before "OpenFile" [ Int !nbranch ];
  add_call_program api Program_after "CloseFile" []

(* Figure 3: the analysis routines (Mini-C, compiled with its own copy of
   the runtime library). *)
let analysis_routines =
  {|
struct BranchInfo { long taken; long notTaken; };
struct BranchInfo *bstats;
void *file;

void OpenFile(long n) {
  bstats = (struct BranchInfo *) calloc(n, sizeof(struct BranchInfo));
  file = fopen("btaken.out", "w");
  fprintf(file, "PC\tTaken\tNot Taken\n");
}

void CondBranch(long n, long taken) {
  if (taken) bstats[n].taken++;
  else bstats[n].notTaken++;
}

void PrintBranch(long n, long pc) {
  fprintf(file, "0x%x\t%d\t%d\n", pc, bstats[n].taken, bstats[n].notTaken);
}

void CloseFile(void) { fclose(file); }
|}

(* A small application to instrument. *)
let application =
  {|
long collatz_len(long n) {
  long len = 0;
  while (n != 1) {
    if (n & 1) n = 3 * n + 1;
    else n = n >> 1;
    len++;
  }
  return len;
}
long main(void) {
  long i, best = 0, best_i = 0;
  for (i = 1; i <= 60; i++) {
    long l = collatz_len(i);
    if (l > best) { best = l; best_i = i; }
  }
  printf("longest collatz chain under 60: n=%d (%d steps)\n", best_i, best);
  return 0;
}
|}

let () =
  print_endline "== building the application (Mini-C -> Alpha -> a.out) ==";
  let exe = Rtlib.compile_and_link ~name:"collatz.o" application in
  print_endline "== atom collatz inst.ml anal.c -o collatz.atom ==";
  let exe', info =
    Atom.Instrument.instrument_source ~exe ~tool:instrument_routine
      ~analysis_src:analysis_routines ()
  in
  Printf.printf "   instrumented %d sites, text grew by %d bytes\n"
    info.Atom.Instrument.i_sites info.Atom.Instrument.i_text_growth;
  print_endline "== running the instrumented program ==";
  let m = Machine.Sim.load exe' in
  (match Machine.Sim.run m with
  | Machine.Sim.Exit 0 -> ()
  | Machine.Sim.Exit n -> Printf.eprintf "exit %d\n" n
  | Machine.Sim.Fault f ->
      Printf.eprintf "fault: %s\n" (Machine.Fault.to_string f)
  | Machine.Sim.Out_of_fuel -> Printf.eprintf "ran out of fuel\n");
  print_string (Machine.Sim.stdout m);
  print_endline "== btaken.out (first 12 branches) ==";
  match List.assoc_opt "btaken.out" (Machine.Sim.output_files m) with
  | None -> print_endline "(missing!)"
  | Some contents ->
      String.split_on_char '\n' contents
      |> List.filteri (fun i _ -> i < 13)
      |> List.iter print_endline
