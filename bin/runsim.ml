(* runsim: run an executable on the machine simulator.

     runsim prog.exe [--stdin FILE] [--input NAME=FILE] [--stats]
                     [--dump-files] [--fuel N] [--engine ref|fast]  *)

let usage =
  "runsim [--stdin FILE] [--input NAME=FILE] [--stats] [--dump-files] \
   [--engine ref|fast] prog.exe"

let () =
  let stdin_file = ref "" in
  let inputs = ref [] in
  let stats = ref false in
  let dump = ref false in
  let fuel = ref 2_000_000_000 in
  let engine = ref Machine.Sim.Fast in
  let prog = ref "" in
  Arg.parse
    [
      ("--stdin", Arg.Set_string stdin_file, "file supplying simulated stdin");
      ( "--input",
        Arg.String
          (fun s ->
            match String.index_opt s '=' with
            | Some i ->
                inputs :=
                  ( String.sub s 0 i,
                    String.sub s (i + 1) (String.length s - i - 1) )
                  :: !inputs
            | None -> raise (Arg.Bad "--input NAME=FILE")),
        "register a virtual input file" );
      ("--stats", Arg.Set stats, "print execution statistics");
      ("--dump-files", Arg.Set dump, "print files the program wrote");
      ("--fuel", Arg.Set_int fuel, "instruction budget");
      ( "--engine",
        Arg.String
          (fun s ->
            match Machine.Sim.engine_of_string s with
            | Some e -> engine := e
            | None -> raise (Arg.Bad ("unknown engine " ^ s))),
        "execution engine: fast (default) or ref" );
    ]
    (fun f -> prog := f)
    usage;
  if !prog = "" then begin
    prerr_endline usage;
    exit 2
  end;
  try
    let exe = Objfile.Exe.load !prog in
    let stdin_data =
      if !stdin_file = "" then ""
      else In_channel.with_open_bin !stdin_file In_channel.input_all
    in
    let vfs_inputs =
      List.map
        (fun (name, file) ->
          (name, In_channel.with_open_bin file In_channel.input_all))
        !inputs
    in
    let m =
      Machine.Sim.load ~engine:!engine ~stdin:stdin_data ~inputs:vfs_inputs exe
    in
    let outcome = Machine.Sim.run ~max_insns:!fuel m in
    print_string (Machine.Sim.stdout m);
    let err = Machine.Sim.stderr m in
    if err <> "" then Printf.eprintf "%s" err;
    if !dump then
      List.iter
        (fun (name, contents) ->
          Printf.printf "=== %s ===\n%s" name contents;
          if contents = "" || contents.[String.length contents - 1] <> '\n' then
            print_newline ())
        (Machine.Sim.output_files m);
    if !stats then begin
      let s = Machine.Sim.stats m in
      Printf.eprintf
        "insns=%d loads=%d stores=%d cond-branches=%d (taken %d) calls=%d \
         syscalls=%d\n"
        s.Machine.Sim.st_insns s.Machine.Sim.st_loads s.Machine.Sim.st_stores
        s.Machine.Sim.st_cond_branches s.Machine.Sim.st_taken
        s.Machine.Sim.st_calls s.Machine.Sim.st_syscalls
    end;
    match outcome with
    | Machine.Sim.Exit n -> exit n
    | Machine.Sim.Fault f ->
        Printf.eprintf "fault: %s\n" f;
        exit 125
    | Machine.Sim.Out_of_fuel ->
        prerr_endline "out of fuel";
        exit 124
  with Sys_error m | Objfile.Wire.Corrupt m ->
    prerr_endline m;
    exit 1
