(* runsim: run an executable on the machine simulator.

     runsim prog.exe [--stdin FILE] [--input NAME=FILE] [--stats]
                     [--dump-files] [--fuel N] [--engine ref|fast]
                     [--profile FILE] [--no-protect] [--max-pages N]
                     [--stack-bytes N] [--brk-max ADDR] [--strict-align]

   --profile feeds a trace.out flow-fact artifact (recorded by a prior
   run under the trace tool) back into the fast engine, which then
   speculates its superblocks across the hot direction of each
   conditional branch.  Behaviour is identical either way; only speed
   changes.

   Exit codes follow the 128+signal convention for machine faults:
   139 segmentation violation, 135 unaligned access, 132 illegal
   instruction or bad PAL call, 159 unknown system call, 137 resident
   memory limit; 124 out of fuel, 1 load error, 2 usage. *)

let usage =
  "runsim [--stdin FILE] [--input NAME=FILE] [--stats] [--dump-files] \
   [--engine ref|fast] [--profile FILE] [--no-protect] [--max-pages N] \
   [--stack-bytes N] [--brk-max ADDR] [--strict-align] prog.exe"

let () =
  let stdin_file = ref "" in
  let inputs = ref [] in
  let stats = ref false in
  let dump = ref false in
  let fuel = ref 2_000_000_000 in
  let engine = ref Machine.Sim.Fast in
  let protect = ref true in
  let max_pages = ref 65536 in
  let stack_bytes = ref (8 * 1024 * 1024) in
  let brk_max = ref 0 in
  let strict_align = ref false in
  let profile_file = ref "" in
  let prog = ref "" in
  Arg.parse
    [
      ("--stdin", Arg.Set_string stdin_file, "file supplying simulated stdin");
      ( "--input",
        Arg.String
          (fun s ->
            match String.index_opt s '=' with
            | Some i ->
                inputs :=
                  ( String.sub s 0 i,
                    String.sub s (i + 1) (String.length s - i - 1) )
                  :: !inputs
            | None -> raise (Arg.Bad "--input NAME=FILE")),
        "register a virtual input file" );
      ("--stats", Arg.Set stats, "print execution statistics");
      ("--dump-files", Arg.Set dump, "print files the program wrote");
      ("--fuel", Arg.Set_int fuel, "instruction budget");
      ( "--engine",
        Arg.String
          (fun s ->
            match Machine.Sim.engine_of_string s with
            | Some e -> engine := e
            | None -> raise (Arg.Bad ("unknown engine " ^ s))),
        "execution engine: fast (default) or ref" );
      ( "--profile",
        Arg.Set_string profile_file,
        "flow-fact artifact (trace.out) guiding fast-engine speculation" );
      ( "--no-protect",
        Arg.Clear protect,
        "disable memory protection (allocate-on-touch memory)" );
      ("--max-pages", Arg.Set_int max_pages, "resident-page ceiling (4 KiB pages)");
      ("--stack-bytes", Arg.Set_int stack_bytes, "writable stack size below text");
      ("--brk-max", Arg.Set_int brk_max, "highest address brk may reach");
      ( "--strict-align",
        Arg.Set strict_align,
        "fault on naturally misaligned memory accesses" );
    ]
    (fun f -> prog := f)
    usage;
  if !prog = "" then begin
    prerr_endline usage;
    exit 2
  end;
  try
    let exe = Objfile.Exe.load !prog in
    let stdin_data =
      if !stdin_file = "" then ""
      else In_channel.with_open_bin !stdin_file In_channel.input_all
    in
    let vfs_inputs =
      List.map
        (fun (name, file) ->
          (name, In_channel.with_open_bin file In_channel.input_all))
        !inputs
    in
    let profile =
      if !profile_file = "" then None
      else begin
        let text =
          In_channel.with_open_bin !profile_file In_channel.input_all
        in
        let facts = Wcet.Facts.parse text in
        let cfg = Om.Cfg.build (Om.Build.program exe) in
        Some
          (Machine.Profile.of_predictions (Wcet.Facts.predictions cfg facts))
      end
    in
    let m =
      Machine.Sim.load ~engine:!engine ~stdin:stdin_data ~inputs:vfs_inputs
        ~protect:!protect ~max_pages:!max_pages ~stack_bytes:!stack_bytes
        ?brk_max:(if !brk_max > 0 then Some !brk_max else None)
        ~strict_align:!strict_align ?profile exe
    in
    let outcome = Machine.Sim.run ~max_insns:!fuel m in
    print_string (Machine.Sim.stdout m);
    let err = Machine.Sim.stderr m in
    if err <> "" then Printf.eprintf "%s" err;
    if !dump then
      List.iter
        (fun (name, contents) ->
          Printf.printf "=== %s ===\n%s" name contents;
          if contents = "" || contents.[String.length contents - 1] <> '\n' then
            print_newline ())
        (Machine.Sim.output_files m);
    if !stats then begin
      let s = Machine.Sim.stats m in
      Printf.eprintf
        "insns=%d loads=%d stores=%d cond-branches=%d (taken %d) calls=%d \
         syscalls=%d\n"
        s.Machine.Sim.st_insns s.Machine.Sim.st_loads s.Machine.Sim.st_stores
        s.Machine.Sim.st_cond_branches s.Machine.Sim.st_taken
        s.Machine.Sim.st_calls s.Machine.Sim.st_syscalls
    end;
    match outcome with
    | Machine.Sim.Exit n -> exit n
    | Machine.Sim.Fault f ->
        Printf.eprintf "fault: %s\n" (Machine.Fault.to_string f);
        exit (Machine.Fault.exit_code f)
    | Machine.Sim.Out_of_fuel ->
        prerr_endline "out of fuel";
        exit 124
  with
  | Sys_error m | Objfile.Wire.Corrupt m | Failure m | Invalid_argument m ->
    prerr_endline m;
    exit 1
