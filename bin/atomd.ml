(* atomd — the ATOM instrumentation-and-simulation daemon.

   Serves batched requests — "instrument executable X with tool T under
   options O", "run image I with stdin S under ceilings" — over a
   length-prefixed Unix-domain-socket protocol, fanned out across a pool
   of worker domains that share one persistent content-addressed
   toolchain cache.  See README.md, "Serving mode". *)

let usage = "atomd --socket PATH [options]\n\
             atomd --selftest [options]"

let socket = ref ""
let workers = ref Serve.default_config.Serve.workers
let cache = ref ""
let max_pages = ref Serve.default_config.Serve.max_pages
let brk_span = ref Serve.default_config.Serve.brk_span
let max_insns = ref Serve.default_config.Serve.max_insns
let max_images = ref Serve.default_config.Serve.max_images
let selftest = ref false

let spec =
  [
    ("--socket", Arg.Set_string socket, "PATH Unix-domain socket to listen on");
    ("--workers", Arg.Set_int workers,
     Printf.sprintf "N worker domains (default %d)" !workers);
    ("--cache", Arg.Set_string cache,
     "DIR persistent toolchain-cache directory (default: in-memory only)");
    ("--max-insns", Arg.Set_int max_insns,
     Printf.sprintf "N hard per-request fuel ceiling (default %d)" !max_insns);
    ("--max-pages", Arg.Set_int max_pages,
     Printf.sprintf "N hard per-request resident-page ceiling (default %d)"
       !max_pages);
    ("--brk-span", Arg.Set_int brk_span,
     Printf.sprintf
       "BYTES hard per-request brk roam above the image break (default %d)"
       !brk_span);
    ("--max-images", Arg.Set_int max_images,
     Printf.sprintf "N prepared-image registry bound (default %d)" !max_images);
    ("--selftest", Arg.Set selftest,
     " start a daemon on a private socket, exercise it, shut it down");
  ]

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let config () =
  {
    Serve.workers = !workers;
    max_insns = !max_insns;
    max_pages = !max_pages;
    brk_span = !brk_span;
    max_images = !max_images;
  }

let run_selftest () =
  let dir = Filename.temp_file "atomd-selftest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "atomd.sock" in
  let t = Serve.start ~config:(config ()) ~socket:sock () in
  let wl =
    match Workloads.find "espresso-mini" with
    | Some w -> w
    | None -> List.hd Workloads.all
  in
  let exe_bytes = Objfile.Exe.to_string (Workloads.compile wl) in
  let c = Serve.Client.connect sock in
  let digest, _image = Serve.Client.instrument c ~tool:"prof" exe_bytes in
  let r = Serve.Client.run c (Serve.Protocol.Image digest) in
  let ok =
    match r.Serve.Protocol.rr_outcome with
    | Serve.Protocol.W_exit 0 -> true
    | _ -> false
  in
  let s = Serve.Client.stats c in
  Printf.printf
    "selftest: workload=%s tool=prof exit-ok=%b insns=%d jobs=%d errors=%d\n"
    wl.Workloads.w_name ok r.Serve.Protocol.rr_stats.Machine.Sim.st_insns
    s.Serve.Protocol.sr_jobs s.Serve.Protocol.sr_errors;
  Serve.Client.shutdown c;
  Serve.Client.close c;
  Serve.wait t;
  (try Sys.remove sock with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if not ok then exit 1

let () =
  Arg.parse spec (fun a -> die "unexpected argument %S" a) usage;
  if !selftest then run_selftest ()
  else begin
    if !socket = "" then die "atomd: --socket is required (or use --selftest)";
    let cache_dir = if !cache = "" then None else Some !cache in
    let t = Serve.start ~config:(config ()) ?cache_dir ~socket:!socket () in
    Printf.printf "atomd: listening on %s with %d workers%s\n%!" !socket
      !workers
      (match cache_dir with
      | Some d -> Printf.sprintf ", cache at %s" d
      | None -> ", in-memory cache");
    let quit _ = Atomic.set (Serve.stop_flag t) true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
    Serve.wait t;
    print_endline "atomd: drained, bye"
  end
