(* atom: instrument an executable with one of the packaged tools —
   the command-line face of the paper's

       atom prog inst.c anal.c -o prog.atom

   Our instrumentation routines are OCaml programs against the ATOM API,
   so the CLI exposes the packaged tools by name:

       atom prog.exe branch -o prog.atom
       atom prog.exe cache --run --dump-files
       atom --list

   Options mirror the engine's: --save-all (no dataflow-summary register
   reduction), --inline-saves (no wrapper routines), --specialize
   (per-site minimal save sets and spliced leaf analysis routines),
   --heap-offset N (partitioned heap).

   Every instrumented image is statically verified against the engine's
   audit before it is written (--no-verify skips this); --verify
   additionally runs both executables and diffs their behaviour. *)

let usage =
  "atom [--list] [-o OUT] [--run] [--dump-files] [--save-all] \
   [--inline-saves] [--specialize] [--heap-offset N] [--verify] [--no-verify] \
   [--engine ref|fast] [--profile FILE] [--wcet] [--facts FILE] \
   prog.exe tool"

let () =
  let list_tools = ref false in
  let output = ref "" in
  let run = ref false in
  let dump = ref false in
  let save_all = ref false in
  let inline_saves = ref false in
  let specialize = ref false in
  let heap_offset = ref 0 in
  let differential = ref false in
  let no_verify = ref false in
  let wcet = ref false in
  let facts_out = ref "" in
  let profile_file = ref "" in
  let engine = ref Machine.Sim.Fast in
  let rest = ref [] in
  Arg.parse
    [
      ("--list", Arg.Set list_tools, "list the packaged tools");
      ("-o", Arg.Set_string output, "output executable");
      ("--run", Arg.Set run, "run the instrumented program afterwards");
      ("--dump-files", Arg.Set dump, "with --run: print analysis output files");
      ("--save-all", Arg.Set save_all, "save all caller-save registers");
      ("--inline-saves", Arg.Set inline_saves, "inline saves at sites (no wrappers)");
      ( "--specialize",
        Arg.Set specialize,
        "specialize every analysis call: per-site minimal save sets \
         (clobbered-and-live) and tiny leaf routines spliced in line" );
      ("--heap-offset", Arg.Set_int heap_offset, "partitioned analysis heap at break+N");
      ("--verify", Arg.Set differential,
       "also run original and instrumented programs and diff the behaviour");
      ("--no-verify", Arg.Set no_verify, "skip the static image verification");
      ( "--engine",
        Arg.String
          (fun s ->
            match Machine.Sim.engine_of_string s with
            | Some e -> engine := e
            | None -> raise (Arg.Bad ("unknown engine " ^ s))),
        "simulator engine for --run/--verify: fast (default) or ref" );
      ( "--profile",
        Arg.Set_string profile_file,
        "FILE flow-fact artifact (a prior trace.out) guiding fast-engine \
         speculation in --run/--verify/--wcet; branch addresses are \
         remapped for the instrumented image" );
      ("--wcet", Arg.Set wcet,
       "with the trace tool: run both executables, solve the IPET program \
        and report static bound vs measured cycles");
      ("--facts", Arg.Set_string facts_out,
       "FILE with --wcet: also write the recorded flow facts as JSON");
    ]
    (fun a -> rest := a :: !rest)
    usage;
  if !list_tools then begin
    List.iter
      (fun t ->
        Printf.printf "%-9s %s (%s)\n" t.Tools.Tool.name t.Tools.Tool.description
          t.Tools.Tool.points)
      Tools.Registry.all;
    exit 0
  end;
  match List.rev !rest with
  | [ prog; tool_name ] -> (
      match Tools.Registry.find tool_name with
      | None ->
          Printf.eprintf "unknown tool %S; try --list\n" tool_name;
          exit 2
      | Some tool -> (
          try
            let exe = Objfile.Exe.load prog in
            let options =
              {
                Atom.Instrument.save_strategy =
                  (if !save_all then Atom.Instrument.Save_all
                   else Atom.Instrument.Summary);
                call_style =
                  (if !specialize then Atom.Instrument.Specialized
                   else if !inline_saves then Atom.Instrument.Inline_saves
                   else Atom.Instrument.Wrapper);
                heap_mode =
                  (if !heap_offset > 0 then Atom.Instrument.Partitioned !heap_offset
                   else Atom.Instrument.Linked);
              }
            in
            let exe', info = Tools.Tool.apply ~options tool exe in
            (* an edge profile recorded against the original program: the
               original image uses it as-is, the instrumented image needs
               its branch addresses pushed through the relocation map *)
            let profile_orig, profile_inst =
              if !profile_file = "" then (None, None)
              else begin
                let text =
                  In_channel.with_open_bin !profile_file In_channel.input_all
                in
                let facts = Wcet.Facts.parse text in
                let cfg = Om.Cfg.build (Om.Build.program exe) in
                let preds = Wcet.Facts.predictions cfg facts in
                let mapped =
                  List.map
                    (fun (pc, d) -> (info.Atom.Instrument.i_map pc, d))
                    preds
                in
                ( Some (Machine.Profile.of_predictions preds),
                  Some (Machine.Profile.of_predictions mapped) )
              end
            in
            if not !no_verify then begin
              let report =
                if !differential then
                  Verify.verify ~engine:!engine ?profile_original:profile_orig
                    ?profile_instrumented:profile_inst ~original:exe
                    ~instrumented:exe' ~info ()
                else Verify.check_image ~original:exe ~instrumented:exe' ~info
              in
              if not (Verify.ok report) then begin
                prerr_endline (Verify.report_to_string report);
                exit 3
              end
            end;
            let out =
              if !output <> "" then !output
              else Filename.remove_extension prog ^ ".atom"
            in
            Objfile.Exe.save out exe';
            Printf.printf
              "wrote %s: %d instrumentation points, text %+d bytes, analysis \
               module %d bytes\n"
              out info.Atom.Instrument.i_sites info.Atom.Instrument.i_text_growth
              info.Atom.Instrument.i_analysis_bytes;
            if !wcet then begin
              if tool.Tools.Tool.name <> "trace" then begin
                prerr_endline "atom: --wcet needs the trace tool";
                exit 2
              end;
              let run_to_exit ?profile label exe =
                let m = Machine.Sim.load ~engine:!engine ?profile exe in
                match Machine.Sim.run m with
                | Machine.Sim.Exit 0 -> m
                | Machine.Sim.Exit n ->
                    Printf.eprintf "atom: --wcet: %s run exited %d\n" label n;
                    exit 1
                | Machine.Sim.Fault f ->
                    Printf.eprintf "atom: --wcet: %s run faulted: %s\n" label
                      (Machine.Fault.to_string f);
                    exit 1
                | Machine.Sim.Out_of_fuel ->
                    Printf.eprintf "atom: --wcet: %s run out of fuel\n" label;
                    exit 1
              in
              let base = run_to_exit ?profile:profile_orig "original" exe in
              let measured = (Machine.Sim.stats base).Machine.Sim.st_cycles in
              let traced =
                run_to_exit ?profile:profile_inst "instrumented" exe'
              in
              let facts =
                match
                  List.assoc_opt "trace.out" (Machine.Sim.output_files traced)
                with
                | Some text -> Wcet.Facts.parse text
                | None ->
                    prerr_endline "atom: --wcet: no trace.out recorded";
                    exit 1
              in
              let cfg = Om.Cfg.build (Om.Build.program exe) in
              if !facts_out <> "" then begin
                let oc = open_out !facts_out in
                output_string oc (Wcet.Facts.to_json ~cfg facts);
                close_out oc
              end;
              let res = Wcet.Ipet.analyze cfg facts in
              let b = res.Wcet.Ipet.bound in
              Printf.printf
                "wcet: measured %d cycles, static bound %d (gap %d, discount \
                 %d)%s\n"
                measured b (b - measured) res.Wcet.Ipet.discount
                (if b < measured then "  VIOLATION" else "");
              List.iter
                (fun (p, v) -> Printf.printf "  %-24s %d\n" p v)
                res.Wcet.Ipet.per_proc;
              if b < measured then exit 4
            end;
            if !run then begin
              let m =
                Machine.Sim.load ~engine:!engine ?profile:profile_inst exe'
              in
              let outcome = Machine.Sim.run m in
              print_string (Machine.Sim.stdout m);
              if !dump then
                List.iter
                  (fun (name, contents) ->
                    Printf.printf "=== %s ===\n%s" name contents)
                  (Machine.Sim.output_files m);
              match outcome with
              | Machine.Sim.Exit n -> exit n
              | Machine.Sim.Fault f ->
                  Printf.eprintf "fault: %s\n" (Machine.Fault.to_string f);
                  exit (Machine.Fault.exit_code f)
              | Machine.Sim.Out_of_fuel ->
                  prerr_endline "out of fuel";
                  exit 124
            end
          with
          | Atom.Instrument.Error m ->
              Printf.eprintf "atom: %s\n" m;
              exit 1
          | Sys_error m | Objfile.Wire.Corrupt m | Failure m
          | Invalid_argument m ->
              prerr_endline m;
              exit 1))
  | _ ->
      prerr_endline usage;
      exit 2
