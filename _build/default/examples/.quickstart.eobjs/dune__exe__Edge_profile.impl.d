examples/edge_profile.ml: Atom List Machine Option Printf Workloads
