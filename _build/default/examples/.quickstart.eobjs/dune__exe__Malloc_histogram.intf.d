examples/malloc_histogram.mli:
