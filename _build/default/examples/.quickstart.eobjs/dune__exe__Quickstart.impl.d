examples/quickstart.ml: Atom List Machine Printf Rtlib String
