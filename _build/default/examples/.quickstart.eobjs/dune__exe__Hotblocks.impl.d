examples/hotblocks.ml: Atom List Machine Option Workloads
