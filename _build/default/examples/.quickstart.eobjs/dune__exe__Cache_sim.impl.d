examples/cache_sim.ml: List Machine Option Printf Tools Workloads
