examples/hotblocks.mli:
