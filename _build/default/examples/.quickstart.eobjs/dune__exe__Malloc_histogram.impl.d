examples/malloc_histogram.ml: Atom List Machine Option Printf Tools Workloads
