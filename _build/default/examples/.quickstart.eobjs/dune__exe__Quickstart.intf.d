examples/quickstart.mli:
