(* Writing a custom tool from scratch: a "hot blocks" profiler that finds
   the most-executed basic blocks.  Shows the full tool-building workflow
   the paper describes — an instrumentation routine in OCaml against the
   ATOM API plus analysis routines in Mini-C, including analysis-side
   data structures (a top-N selection done at program exit).

     dune exec examples/hotblocks.exe *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "HotInit(int)";
  add_call_proto api "HotBlock(int)";
  add_call_proto api "HotLabel(int, long, char *)";
  add_call_proto api "HotReport()";
  let id = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          add_call_block api b Before "HotBlock" [ Int !id ];
          (* give the analysis the block's address and its procedure's
             name so the report is readable *)
          add_call_program api Program_after "HotLabel"
            [ Int !id; Block_pc b; Str (proc_name p) ];
          incr id)
        (blocks p))
    (procs api);
  add_call_program api Program_before "HotInit" [ Int !id ];
  add_call_program api Program_after "HotReport" []

let analysis =
  {|
long *__hot_counts;
long __hot_n;
void *__hot_file;

void HotInit(long n) {
  __hot_n = n;
  __hot_counts = (long *) calloc(n, sizeof(long));
}

void HotBlock(long id) { __hot_counts[id]++; }

/* called once per block at exit; print only blocks in the top tier */
long __hot_cut;

void HotLabel(long id, long pc, char *proc) {
  if (!__hot_file) {
    long i, j;
    long best[8];
    /* find the 8th largest count to use as a cutoff */
    for (i = 0; i < 8; i++) best[i] = 0;
    for (i = 0; i < __hot_n; i++) {
      long c = __hot_counts[i];
      for (j = 0; j < 8; j++) {
        if (c > best[j]) {
          long t = best[j];
          best[j] = c;
          c = t;
        }
      }
    }
    __hot_cut = best[7];
    if (__hot_cut < 1) __hot_cut = 1;
    __hot_file = fopen("hotblocks.out", "w");
    fprintf(__hot_file, "block\tprocedure\texecutions\n");
  }
  if (__hot_counts[id] >= __hot_cut)
    fprintf(__hot_file, "0x%x\t%s\t%d\n", pc, proc, __hot_counts[id]);
}

void HotReport(void) { if (__hot_file) fclose(__hot_file); }
|}

let () =
  let w = Option.get (Workloads.find "compress") in
  let exe = Workloads.compile w in
  let exe', _ =
    Atom.Instrument.instrument_source ~exe ~tool:instrument ~analysis_src:analysis ()
  in
  let m = Machine.Sim.load exe' in
  (match Machine.Sim.run m with
  | Machine.Sim.Exit 0 -> ()
  | _ -> failwith "run failed");
  print_string (Machine.Sim.stdout m);
  print_endline "";
  print_endline "hottest basic blocks (hotblocks.out):";
  match List.assoc_opt "hotblocks.out" (Machine.Sim.output_files m) with
  | Some s -> print_string s
  | None -> print_endline "(missing)"
