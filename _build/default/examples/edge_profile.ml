(* Edge profiling: the paper notes "adding calls to edges is not
   implemented" in ATOM; this repository implements it (taken edges are
   lowered by inverting the branch over a trampoline).  The example
   profiles every conditional branch's two outgoing edges and prints the
   most biased branches — the candidates a trace scheduler or branch
   predictor designer would care about.

     dune exec examples/edge_profile.exe *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "EdgeInit(int)";
  add_call_proto api "EdgeHit(int)";
  add_call_proto api "EdgeLabel(int, long)";
  add_call_proto api "EdgeReport()";
  let n = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let last = get_last_inst b in
          if is_inst_type last Inst_cond_branch then begin
            (* two counters per branch: taken, fall-through *)
            add_call_edge api b Taken "EdgeHit" [ Int (2 * !n) ];
            add_call_edge api b Fallthrough "EdgeHit" [ Int ((2 * !n) + 1) ];
            add_call_program api Program_after "EdgeLabel" [ Int !n; Inst_pc last ];
            incr n
          end)
        (blocks p))
    (procs api);
  add_call_program api Program_before "EdgeInit" [ Int !n ];
  add_call_program api Program_after "EdgeReport" []

let analysis =
  {|
long *__counts;
long __n;
void *__f;

void EdgeInit(long n) {
  __n = n;
  __counts = (long *) calloc(2 * n, sizeof(long));
}

void EdgeHit(long slot) { __counts[slot]++; }

void EdgeLabel(long id, long pc) {
  long t = __counts[2 * id];
  long f = __counts[2 * id + 1];
  long total = t + f;
  if (!__f) {
    __f = fopen("edges.out", "w");
    fprintf(__f, "branch\ttaken\tfall\tbias%%\n");
  }
  if (total >= 1000) {
    long bias = (t > f ? t : f) * 100 / total;
    fprintf(__f, "0x%x\t%d\t%d\t%d\n", pc, t, f, bias);
  }
}

void EdgeReport(void) { if (__f) fclose(__f); }
|}

let () =
  let w = Option.get (Workloads.find "qsort") in
  let exe = Workloads.compile w in
  let exe', info =
    Atom.Instrument.instrument_source ~exe ~tool:instrument ~analysis_src:analysis ()
  in
  Printf.printf "instrumented %d edges\n" info.Atom.Instrument.i_sites;
  let m = Machine.Sim.load exe' in
  (match Machine.Sim.run m with
  | Machine.Sim.Exit 0 -> ()
  | _ -> failwith "run failed");
  print_string (Machine.Sim.stdout m);
  print_endline "\nheavily executed branches (edges.out):";
  match List.assoc_opt "edges.out" (Machine.Sim.output_files m) with
  | Some s -> print_string s
  | None -> print_endline "(missing)"
