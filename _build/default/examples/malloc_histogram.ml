(* Dynamic-memory recording: the `malloc' tool hooks the allocator's entry
   point and histograms request sizes — one of the tool classes the paper
   lists ("dynamic memory recording").  The partitioned heap mode keeps
   the application's heap addresses exactly as in the uninstrumented run
   even though the analysis allocates its own memory.

     dune exec examples/malloc_histogram.exe *)

let () =
  let w = Option.get (Workloads.find "lisp") in
  let exe = Workloads.compile w in
  let tool = Option.get (Tools.Registry.find "malloc") in
  let options =
    { Atom.Instrument.default_options with
      Atom.Instrument.heap_mode = Atom.Instrument.Partitioned (1 lsl 24) }
  in
  let exe', info = Tools.Tool.apply ~options tool exe in
  Printf.printf "instrumented the allocator (%d sites, +%d bytes of text)\n\n"
    info.Atom.Instrument.i_sites info.Atom.Instrument.i_text_growth;
  let m = Machine.Sim.load exe' in
  (match Machine.Sim.run m with
  | Machine.Sim.Exit 0 -> ()
  | _ -> failwith "run failed");
  print_string (Machine.Sim.stdout m);
  print_endline "";
  match List.assoc_opt "malloc.out" (Machine.Sim.output_files m) with
  | Some s -> print_string s
  | None -> print_endline "(no malloc.out)"
