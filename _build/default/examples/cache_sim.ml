(* Data-cache simulation: apply the packaged `cache' tool (a direct-mapped
   8 KB cache with 32-byte lines, simulated entirely inside the analysis
   routines) to two memory-behaviour extremes from the workload suite:
   sequential streaming (sieve) and blocked floating-point access (matmul).

     dune exec examples/cache_sim.exe *)

let run_with_cache wname =
  let w = Option.get (Workloads.find wname) in
  let exe = Workloads.compile w in
  let tool = Option.get (Tools.Registry.find "cache") in
  let exe', _ = Tools.Tool.apply tool exe in
  let m = Machine.Sim.load exe' in
  (match Machine.Sim.run m with
  | Machine.Sim.Exit 0 -> ()
  | _ -> failwith (wname ^ " failed"));
  Printf.printf "-- %s (%s) --\n%s" wname w.Workloads.w_models
    (match List.assoc_opt "cache.out" (Machine.Sim.output_files m) with
    | Some s -> s
    | None -> "(no cache.out)\n")

let () =
  print_endline "ATOM cache tool: 8KB direct-mapped, 32-byte lines";
  print_endline "";
  List.iter run_with_cache [ "sieve"; "matmul"; "lisp" ]
