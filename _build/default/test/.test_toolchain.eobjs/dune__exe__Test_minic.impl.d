test/test_minic.ml: Alcotest Machine Rtlib
