test/test_toolchain.ml: Alcotest Asmlib Linker Machine
