test/test_atom2.ml: Alcotest Alpha Atom Int64 List Machine Objfile Option Printf Rtlib String Tools Workloads
