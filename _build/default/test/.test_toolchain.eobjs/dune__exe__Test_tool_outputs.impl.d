test/test_tool_outputs.ml: Alcotest Lazy List Machine Option Printf Rtlib String Tools Workloads
