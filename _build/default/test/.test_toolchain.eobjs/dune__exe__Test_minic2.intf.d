test/test_minic2.mli:
