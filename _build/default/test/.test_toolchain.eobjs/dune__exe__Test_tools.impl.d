test/test_tools.ml: Alcotest Atom List Machine Option Printf String Tools Workloads
