test/test_tool_outputs.mli:
