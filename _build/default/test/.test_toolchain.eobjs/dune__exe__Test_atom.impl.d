test/test_atom.ml: Alcotest Atom List Machine Rtlib String
