test/test_machine.ml: Alcotest Asmlib Bytes Int64 Linker List Machine Printf QCheck QCheck_alcotest
