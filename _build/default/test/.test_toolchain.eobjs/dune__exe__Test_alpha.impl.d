test/test_alpha.ml: Alcotest Alpha Array Bytes Code Cost Gen Insn List QCheck QCheck_alcotest Reg Regset
