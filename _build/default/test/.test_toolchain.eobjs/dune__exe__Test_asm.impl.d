test/test_asm.ml: Alcotest Alpha Asmlib Buffer Bytes Int64 Linker List Machine Objfile Printf QCheck QCheck_alcotest String Types Unit_file
