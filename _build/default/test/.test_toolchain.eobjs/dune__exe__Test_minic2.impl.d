test/test_minic2.ml: Alcotest Int64 Linker List Machine Minic Printf QCheck QCheck_alcotest Rtlib
