test/test_objfile.ml: Alcotest Archive Bytes Exe List Objfile Option Printf QCheck QCheck_alcotest String Types Unit_file Wire
