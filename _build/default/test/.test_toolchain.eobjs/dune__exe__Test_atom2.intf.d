test/test_atom2.mli:
