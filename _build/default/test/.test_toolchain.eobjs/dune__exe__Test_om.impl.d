test/test_om.ml: Alcotest Alpha Array Bytes Lazy List Machine Objfile Om Printf Rtlib
