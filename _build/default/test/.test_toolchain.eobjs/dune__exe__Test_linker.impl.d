test/test_linker.ml: Alcotest Asmlib Int64 Linker List Machine Objfile Printf
