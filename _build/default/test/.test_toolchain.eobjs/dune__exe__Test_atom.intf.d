test/test_atom.mli:
