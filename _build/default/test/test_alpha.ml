(* Unit and property tests for the ISA layer: encodings, register sets,
   and the pipeline cost model. *)

open Alpha

(* -- generators --------------------------------------------------------- *)

let gen_reg = QCheck.Gen.int_range 0 31
let gen_disp16 = QCheck.Gen.int_range (-32768) 32767
let gen_disp21 = QCheck.Gen.int_range (-(1 lsl 20)) ((1 lsl 20) - 1)

let gen_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let mem_op = oneofl Insn.all_mem_ops in
  let opr_op = oneofl Insn.all_opr_ops in
  let fop_op = oneofl Insn.all_fop_ops in
  let cond = oneofl Insn.all_br_conds in
  let fcond = oneofl Insn.all_fbr_conds in
  frequency
    [
      ( 4,
        mem_op >>= fun op ->
        gen_reg >>= fun ra ->
        gen_reg >>= fun rb ->
        gen_disp16 >|= fun disp -> Insn.Mem { op; ra; rb; disp } );
      ( 4,
        opr_op >>= fun op ->
        gen_reg >>= fun ra ->
        gen_reg >>= fun rc ->
        oneof
          [ (gen_reg >|= fun r -> Insn.Reg r); (int_range 0 255 >|= fun n -> Insn.Imm n) ]
        >|= fun rb -> Insn.Opr { op; ra; rb; rc } );
      ( 2,
        fop_op >>= fun op ->
        gen_reg >>= fun fa ->
        gen_reg >>= fun fb ->
        gen_reg >|= fun fc -> Insn.Fop { op; fa; fb; fc } );
      ( 1,
        bool >>= fun link ->
        gen_reg >>= fun ra ->
        gen_disp21 >|= fun disp -> Insn.Br { link; ra; disp } );
      ( 2,
        cond >>= fun c ->
        gen_reg >>= fun ra ->
        gen_disp21 >|= fun disp -> Insn.Cbr { cond = c; ra; disp } );
      ( 1,
        fcond >>= fun c ->
        gen_reg >>= fun fa ->
        gen_disp21 >|= fun disp -> Insn.Fbr { cond = c; fa; disp } );
      ( 1,
        oneofl [ Insn.Jmp; Insn.Jsr; Insn.Ret; Insn.Jsr_coroutine ] >>= fun kind ->
        gen_reg >>= fun ra ->
        gen_reg >>= fun rb ->
        int_range 0 0x3FFF >|= fun hint -> Insn.Jump { kind; ra; rb; hint } );
      (1, int_range 0 0x3FFFFFF >|= fun n -> Insn.Call_pal n);
    ]

let arbitrary_insn = QCheck.make ~print:Insn.to_string gen_insn

let prop_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"decode (encode i) = i" arbitrary_insn
    (fun i -> Insn.equal (Code.decode (Code.encode i)) i)

let prop_decode_idempotent =
  QCheck.Test.make ~count:2000 ~name:"decode is idempotent through encode"
    QCheck.(make Gen.(int_bound 0xFFFFFFF >|= fun n -> n * 17 land 0xFFFFFFFF))
    (fun w -> Insn.equal (Code.decode (Code.encode (Code.decode w))) (Code.decode w))

let prop_word_io =
  QCheck.Test.make ~count:500 ~name:"read_word/write_word roundtrip"
    QCheck.(int_bound 0xFFFFFFF)
    (fun w ->
      let b = Bytes.create 8 in
      Code.write_word b 2 w;
      Code.read_word b 2 = w)

let prop_zero_never_defined =
  QCheck.Test.make ~count:1000 ~name:"$31 never appears in defs/uses sets"
    arbitrary_insn (fun i ->
      (not (Regset.mem 31 (Insn.defs i)))
      && (not (Regset.mem_f 31 (Insn.defs i)))
      && (not (Regset.mem 31 (Insn.uses i)))
      && not (Regset.mem_f 31 (Insn.uses i)))

let prop_branch_disp =
  QCheck.Test.make ~count:1000 ~name:"with_branch_disp sets what branch_disp reads"
    QCheck.(pair arbitrary_insn (make gen_disp21))
    (fun (i, d) ->
      match Insn.branch_disp i with
      | None -> true
      | Some _ -> Insn.branch_disp (Insn.with_branch_disp i d) = Some d)

let prop_schedule_bounds =
  QCheck.Test.make ~count:300 ~name:"ceil n/2 <= schedule <= sum of latencies"
    QCheck.(list_of_size Gen.(int_range 1 20) arbitrary_insn)
    (fun insns ->
      let a = Array.of_list insns in
      let s = Cost.schedule a in
      let n = Array.length a in
      let upper = Array.fold_left (fun acc i -> acc + Cost.latency i) n a in
      s >= (n + 1) / 2 && s <= upper)

(* -- regset properties --------------------------------------------------- *)

let gen_regset =
  QCheck.Gen.(
    pair (list_size (int_range 0 8) gen_reg) (list_size (int_range 0 4) gen_reg)
    >|= fun (is, fs) -> Regset.union (Regset.of_list is) (Regset.of_list_f fs))

let arbitrary_regset = QCheck.make gen_regset

let prop_regset_algebra =
  QCheck.Test.make ~count:1000 ~name:"regset union/inter/diff laws"
    QCheck.(pair arbitrary_regset arbitrary_regset)
    (fun (a, b) ->
      Regset.equal (Regset.union a b) (Regset.union b a)
      && Regset.equal (Regset.inter a b) (Regset.inter b a)
      && Regset.subset (Regset.diff a b) a
      && Regset.is_empty (Regset.inter (Regset.diff a b) b)
      && Regset.equal (Regset.union (Regset.inter a b) (Regset.diff a b)) a)

let prop_regset_members =
  QCheck.Test.make ~count:1000 ~name:"regset membership matches listings"
    arbitrary_regset (fun s ->
      List.for_all (fun r -> Regset.mem r s) (Regset.ints s)
      && List.for_all (fun r -> Regset.mem_f r s) (Regset.fps s)
      && Regset.cardinal s = List.length (Regset.ints s) + List.length (Regset.fps s))

(* -- unit tests ---------------------------------------------------------- *)

let test_known_encodings () =
  (* hand-checked words against the Alpha Architecture Reference Manual
     formats: lda $16, 8($30) and beq $1, +3 and bis $31,$31,$31 (nop) *)
  let lda = Insn.Mem { op = Insn.Lda; ra = 16; rb = 30; disp = 8 } in
  Alcotest.(check int) "lda" 0x221E0008 (Code.encode lda);
  let beq = Insn.Cbr { cond = Insn.Beq; ra = 1; disp = 3 } in
  Alcotest.(check int) "beq" 0xE4200003 (Code.encode beq);
  Alcotest.(check int) "nop" 0x47FF041F (Code.encode Insn.nop)

let test_reg_names () =
  Alcotest.(check string) "sp" "sp" (Reg.name Reg.sp);
  Alcotest.(check (option int)) "$17" (Some 17) (Reg.of_name "$17");
  Alcotest.(check (option int)) "a0" (Some 16) (Reg.of_name "a0");
  Alcotest.(check (option int)) "f10" (Some 10) (Reg.of_fname "$f10");
  Alcotest.(check bool) "sp not caller save" false (Reg.is_caller_save Reg.sp);
  Alcotest.(check bool) "s0 callee save" true (Reg.is_callee_save 9);
  Alcotest.(check bool) "v0 caller save" true (Reg.is_caller_save 0)

let test_classification () =
  let beq = Insn.Cbr { cond = Insn.Beq; ra = 1; disp = 0 } in
  Alcotest.(check bool) "beq is cond branch" true (Insn.is_cond_branch beq);
  Alcotest.(check bool) "beq falls through" true (Insn.falls_through beq);
  let ldq = Insn.Mem { op = Insn.Ldq; ra = 1; rb = 2; disp = 0 } in
  Alcotest.(check bool) "ldq is load" true (Insn.is_load ldq);
  Alcotest.(check int) "ldq bytes" 8 (Insn.access_bytes ldq);
  let lda = Insn.Mem { op = Insn.Lda; ra = 1; rb = 2; disp = 0 } in
  Alcotest.(check bool) "lda is not a memory ref" false (Insn.is_memory_ref lda);
  let bsr = Insn.Br { link = true; ra = 26; disp = 5 } in
  Alcotest.(check bool) "bsr is call" true (Insn.is_call bsr);
  Alcotest.(check (option int)) "bsr target" (Some 0x1018)
    (Insn.branch_target ~pc:0x1000 bsr)

let test_cost_pairing () =
  (* an integer op cannot pair with an integer op, but pairs with a
     floating op *)
  Alcotest.(check bool) "iop+iop" false (Cost.can_pair Cost.C_iop Cost.C_iop);
  Alcotest.(check bool) "iop+fop" true (Cost.can_pair Cost.C_iop Cost.C_fop);
  Alcotest.(check bool) "ld+st" false (Cost.can_pair Cost.C_load Cost.C_store);
  let iop r = Insn.Opr { op = Insn.Addq; ra = r; rb = Insn.Imm 1; rc = r } in
  (* dependent chain cannot dual issue; independent int+float can *)
  Alcotest.(check int) "dependent chain" 2 (Cost.schedule [| iop 1; iop 1 |]);
  let fop = Insn.Fop { op = Insn.Cpys; fa = 1; fb = 1; fc = 2 } in
  let c = Cost.schedule [| iop 1; fop |] in
  Alcotest.(check int) "int+float pair" 1 c

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip;
      prop_decode_idempotent;
      prop_word_io;
      prop_zero_never_defined;
      prop_branch_disp;
      prop_schedule_bounds;
      prop_regset_algebra;
      prop_regset_members;
    ]

let () =
  Alcotest.run "alpha"
    [
      ( "unit",
        [
          Alcotest.test_case "known encodings" `Quick test_known_encodings;
          Alcotest.test_case "register names" `Quick test_reg_names;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "cost pairing" `Quick test_cost_pairing;
        ] );
      ("properties", props);
    ]
