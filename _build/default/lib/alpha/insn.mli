(** Alpha AXP instruction subset.

    Instructions are represented symbolically; {!Code} maps them to and from
    real 32-bit Alpha encodings.  Branch displacements are stored as signed
    displacements in {e words} relative to the updated PC (the address of
    the instruction plus 4), exactly as encoded in the hardware format. *)

type mem_op =
  | Lda   (** [ra <- rb + sext(disp)] *)
  | Ldah  (** [ra <- rb + sext(disp) * 65536] *)
  | Ldbu | Ldwu | Ldl | Ldq | Ldq_u
  | Stb | Stw | Stl | Stq | Stq_u
  | Ldt   (** floating load, [ra] names an FP register *)
  | Stt   (** floating store, [ra] names an FP register *)

type opr_op =
  | Addl | Subl | Addq | Subq | S4addq | S8addq
  | Mull | Mulq | Umulh
  | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule | Cmpbge
  | And_ | Bic | Bis | Ornot | Xor | Eqv
  | Sll | Srl | Sra
  | Zap | Zapnot
  | Extbl | Extwl | Extll | Extql
  | Insbl | Inswl | Insll | Insql
  | Mskbl | Mskwl | Mskll | Mskql
  | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc

type fop_op =
  | Addt | Subt | Mult | Divt
  | Cmpteq | Cmptlt | Cmptle
  | Cvtqt  (** integer (in FP reg) to T-float *)
  | Cvttq  (** T-float to integer, truncating *)
  | Cpys | Cpysn

type br_cond = Beq | Bne | Blt | Ble | Bgt | Bge | Blbc | Blbs
type fbr_cond = Fbeq | Fbne | Fblt | Fble | Fbgt | Fbge
type jmp_kind = Jmp | Jsr | Ret | Jsr_coroutine

type operand =
  | Reg of Reg.t
  | Imm of int  (** unsigned 8-bit literal *)

type t =
  | Mem of { op : mem_op; ra : int; rb : Reg.t; disp : int }
      (** [disp] is a signed 16-bit byte displacement.  For [Ldt]/[Stt],
          [ra] is a floating register number. *)
  | Opr of { op : opr_op; ra : Reg.t; rb : operand; rc : Reg.t }
  | Fop of { op : fop_op; fa : Reg.f; fb : Reg.f; fc : Reg.f }
  | Br of { link : bool; ra : Reg.t; disp : int }
      (** [br]/[bsr]; [disp] is a signed 21-bit word displacement. *)
  | Cbr of { cond : br_cond; ra : Reg.t; disp : int }
  | Fbr of { cond : fbr_cond; fa : Reg.f; disp : int }
  | Jump of { kind : jmp_kind; ra : Reg.t; rb : Reg.t; hint : int }
  | Call_pal of int
  | Raw of int  (** an undecodable 32-bit word, kept verbatim *)

type kind =
  | K_load | K_store | K_ialu | K_fop
  | K_cond_branch | K_uncond_branch | K_jump | K_pal | K_other

val nop : t
(** The canonical no-op, [bis $31,$31,$31]. *)

val kind : t -> kind

val mem_is_load : mem_op -> bool
val mem_is_store : mem_op -> bool

val mem_is_fp : mem_op -> bool
(** Whether the [ra] field of the memory instruction names an FP register. *)

val is_cond_branch : t -> bool
(** Integer or floating conditional branch. *)

val is_memory_ref : t -> bool
(** True load or store ([lda]/[ldah] excluded). *)

val is_load : t -> bool
val is_store : t -> bool

val is_call : t -> bool
(** [bsr] or [jsr]: a subroutine call that links through a register. *)

val is_return : t -> bool

val is_terminator : t -> bool
(** Whether control does not necessarily fall through: any branch, jump or
    the [halt]/[exit]-style PAL calls.  Basic blocks end at terminators. *)

val falls_through : t -> bool
(** Whether execution may continue at the next instruction. *)

val branch_disp : t -> int option
(** The word displacement of a PC-relative branch ([br]/[bsr]/[cbr]/[fbr]). *)

val invert_branch : t -> t option
(** The branch with the opposite condition (same displacement); [None]
    for anything that is not a conditional branch. *)

val with_branch_disp : t -> int -> t
(** Replace the displacement of a PC-relative branch.
    @raise Invalid_argument on other instructions. *)

val branch_target : pc:int -> t -> int option
(** Absolute target address of a PC-relative branch located at [pc]. *)

val access_bytes : t -> int
(** Size in bytes of the memory access (1, 2, 4 or 8); 0 when not a memory
    reference. *)

val defs : t -> Regset.t
(** Registers possibly written by the instruction. *)

val uses : t -> Regset.t
(** Registers read by the instruction. *)

val all_opr_ops : opr_op list
val all_fop_ops : fop_op list
val all_br_conds : br_cond list
val all_fbr_conds : fbr_cond list
val all_mem_ops : mem_op list

val mem_op_name : mem_op -> string
val opr_op_name : opr_op -> string
val fop_op_name : fop_op -> string
val br_cond_name : br_cond -> string
val fbr_cond_name : fbr_cond -> string
val jmp_kind_name : jmp_kind -> string

val to_string : t -> string
(** Disassemble one instruction, e.g. ["ldq a0, 16(sp)"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
