type t = int
type f = int

let v0 = 0
let t0 = 1
let s0 = 9
let fp = 15
let a0 = 16
let t8 = 22
let ra = 26
let pv = 27
let at = 28
let gp = 29
let sp = 30
let zero = 31
let fzero = 31

let arg_regs = [ 16; 17; 18; 19; 20; 21 ]
let farg_regs = [ 16; 17; 18; 19; 20; 21 ]

let is_callee_save r = r >= 9 && r <= 15

let is_caller_save r =
  r >= 0 && r <= 28 && not (is_callee_save r)

let is_caller_save_f r = (r >= 0 && r <= 1) || (r >= 10 && r <= 30)

let caller_save = List.filter is_caller_save (List.init 32 Fun.id)
let caller_save_f = List.filter is_caller_save_f (List.init 32 Fun.id)

let names =
  [| "v0"; "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7";
     "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "fp";
     "a0"; "a1"; "a2"; "a3"; "a4"; "a5";
     "t8"; "t9"; "t10"; "t11"; "ra"; "pv"; "at"; "gp"; "sp"; "zero" |]

let name r =
  if r >= 0 && r < 32 then names.(r) else Printf.sprintf "r?%d" r

let fname r = Printf.sprintf "f%d" r
let dollar r = Printf.sprintf "$%d" r

let of_name s =
  let parse_num body =
    match int_of_string_opt body with
    | Some n when n >= 0 && n < 32 -> Some n
    | Some _ | None -> None
  in
  if String.length s >= 2 && s.[0] = '$' then
    parse_num (String.sub s 1 (String.length s - 1))
  else
    let rec find i = if i >= 32 then None else if names.(i) = s then Some i else find (i + 1) in
    find 0

let of_fname s =
  let body =
    if String.length s >= 2 && s.[0] = '$' then String.sub s 1 (String.length s - 1) else s
  in
  if String.length body >= 2 && body.[0] = 'f' then
    match int_of_string_opt (String.sub body 1 (String.length body - 1)) with
    | Some n when n >= 0 && n < 32 -> Some n
    | Some _ | None -> None
  else None
