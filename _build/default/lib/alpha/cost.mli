(** A static cost model of the Alpha 21064 pipeline: dual-issue, in-order,
    with the machine's aligned-pair issue rules.

    The 21064 fetches aligned instruction pairs and can issue both only
    when their classes are compatible (at most one memory operation, at
    most one branch, an integer operate cannot pair with another integer
    operate, ...), both instructions' operands are ready, and the first
    of the pair actually issues.  Results become available after a
    class-dependent latency (loads 3, integer multiply 21+, floating
    add/mul 6, floating divide 34, ...).

    This is what the paper's [pipe] tool computes per basic block at
    instrumentation time ("static CPU pipeline scheduling"). *)

type cls =
  | C_load
  | C_store
  | C_iop  (** integer operate *)
  | C_fop  (** floating operate *)
  | C_ibr  (** integer conditional/unconditional branch, jsr *)
  | C_fbr
  | C_misc  (** PAL calls and anything else; never dual-issues *)

val classify : Insn.t -> cls

val latency : Insn.t -> int
(** Result latency in cycles. *)

val can_pair : cls -> cls -> bool
(** Whether two adjacent, aligned instructions may issue together. *)

val issue_cycles : ?base_align:int -> Insn.t array -> int array
(** [issue_cycles insns] simulates the in-order dual-issue front end over
    one execution of the block and returns each instruction's issue
    cycle.  [base_align] is the word alignment (0 or 1) of the first
    instruction within its fetch pair. *)

val schedule : ?base_align:int -> Insn.t array -> int
(** Total cycles to execute the block once: the last issue cycle plus the
    last instruction's latency, at least [ceil n/2]. *)

val stalls : Insn.t array -> int
(** [schedule insns] minus the dual-issue ideal [ceil n/2]. *)
