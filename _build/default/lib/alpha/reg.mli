(** Register names and the OSF/1 Alpha calling standard.

    Integer registers are numbered 0..31 with [$31] hardwired to zero, and
    floating-point registers 0..31 with [$f31] hardwired to zero.  The
    conventional role of each register follows the OSF/1 calling standard
    that ATOM relies on when deciding which registers must be saved around
    an inserted analysis call. *)

type t = int
(** An integer register number, in [0, 31]. *)

type f = int
(** A floating-point register number, in [0, 31]. *)

val v0 : t (** [$0], integer return value. *)

val t0 : t (** [$1], first integer temporary. *)

val s0 : t (** [$9], first callee-saved register. *)

val fp : t (** [$15], frame pointer (callee-saved). *)

val a0 : t (** [$16], first integer argument register. *)

val t8 : t (** [$22]. *)

val ra : t (** [$26], return address. *)

val pv : t (** [$27], procedure value ([t12]). *)

val at : t (** [$28], assembler temporary. *)

val gp : t (** [$29], global pointer. *)

val sp : t (** [$30], stack pointer. *)

val zero : t (** [$31], always reads as zero. *)

val fzero : f (** [$f31], always reads as +0.0. *)

val arg_regs : t list
(** The six integer argument registers [$16]..[$21], in order. *)

val farg_regs : f list
(** The six floating argument registers [$f16]..[$f21], in order. *)

val is_caller_save : t -> bool
(** Whether an integer register is the caller's responsibility to preserve
    across a call (includes [v0], temporaries, argument registers, [ra],
    [pv] and [at]; excludes [s0]-[s6], [gp], [sp] and [zero]). *)

val is_callee_save : t -> bool
(** [$9]..[$15]: preserved by any routine that follows the standard. *)

val is_caller_save_f : f -> bool
(** Caller-save floating registers: all but [$f2]..[$f9] and [$f31]. *)

val caller_save : t list
(** All caller-save integer registers, ascending. *)

val caller_save_f : f list
(** All caller-save floating registers, ascending. *)

val name : t -> string
(** Conventional name, e.g. [name 16 = "a0"], [name 30 = "sp"]. *)

val fname : f -> string
(** Floating register name, e.g. [fname 2 = "f2"]. *)

val dollar : t -> string
(** Assembly spelling, e.g. [dollar 16 = "$16"]. *)

val of_name : string -> t option
(** Parse either spelling: ["$7"], ["t6"], ["sp"], ... *)

val of_fname : string -> f option
(** Parse a floating register: ["$f10"] or ["f10"]. *)
