type mem_op =
  | Lda | Ldah
  | Ldbu | Ldwu | Ldl | Ldq | Ldq_u
  | Stb | Stw | Stl | Stq | Stq_u
  | Ldt | Stt

type opr_op =
  | Addl | Subl | Addq | Subq | S4addq | S8addq
  | Mull | Mulq | Umulh
  | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule | Cmpbge
  | And_ | Bic | Bis | Ornot | Xor | Eqv
  | Sll | Srl | Sra
  | Zap | Zapnot
  | Extbl | Extwl | Extll | Extql
  | Insbl | Inswl | Insll | Insql
  | Mskbl | Mskwl | Mskll | Mskql
  | Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc

type fop_op =
  | Addt | Subt | Mult | Divt
  | Cmpteq | Cmptlt | Cmptle
  | Cvtqt | Cvttq
  | Cpys | Cpysn

type br_cond = Beq | Bne | Blt | Ble | Bgt | Bge | Blbc | Blbs
type fbr_cond = Fbeq | Fbne | Fblt | Fble | Fbgt | Fbge
type jmp_kind = Jmp | Jsr | Ret | Jsr_coroutine

type operand = Reg of Reg.t | Imm of int

type t =
  | Mem of { op : mem_op; ra : int; rb : Reg.t; disp : int }
  | Opr of { op : opr_op; ra : Reg.t; rb : operand; rc : Reg.t }
  | Fop of { op : fop_op; fa : Reg.f; fb : Reg.f; fc : Reg.f }
  | Br of { link : bool; ra : Reg.t; disp : int }
  | Cbr of { cond : br_cond; ra : Reg.t; disp : int }
  | Fbr of { cond : fbr_cond; fa : Reg.f; disp : int }
  | Jump of { kind : jmp_kind; ra : Reg.t; rb : Reg.t; hint : int }
  | Call_pal of int
  | Raw of int

type kind =
  | K_load | K_store | K_ialu | K_fop
  | K_cond_branch | K_uncond_branch | K_jump | K_pal | K_other

let nop = Opr { op = Bis; ra = Reg.zero; rb = Reg Reg.zero; rc = Reg.zero }

let mem_is_load = function
  | Ldbu | Ldwu | Ldl | Ldq | Ldq_u | Ldt -> true
  | Lda | Ldah | Stb | Stw | Stl | Stq | Stq_u | Stt -> false

let mem_is_store = function
  | Stb | Stw | Stl | Stq | Stq_u | Stt -> true
  | Lda | Ldah | Ldbu | Ldwu | Ldl | Ldq | Ldq_u | Ldt -> false

let mem_is_fp = function
  | Ldt | Stt -> true
  | Lda | Ldah | Ldbu | Ldwu | Ldl | Ldq | Ldq_u | Stb | Stw | Stl | Stq | Stq_u -> false

let kind = function
  | Mem { op = Lda | Ldah; _ } -> K_ialu
  | Mem { op; _ } -> if mem_is_load op then K_load else K_store
  | Opr _ -> K_ialu
  | Fop _ -> K_fop
  | Br _ -> K_uncond_branch
  | Cbr _ | Fbr _ -> K_cond_branch
  | Jump _ -> K_jump
  | Call_pal _ -> K_pal
  | Raw _ -> K_other

let is_cond_branch i = kind i = K_cond_branch
let is_load i = kind i = K_load
let is_store i = kind i = K_store
let is_memory_ref i = is_load i || is_store i

let is_call = function
  | Br { link = true; _ } | Jump { kind = Jsr; _ } -> true
  | Mem _ | Opr _ | Fop _ | Br _ | Cbr _ | Fbr _ | Jump _ | Call_pal _ | Raw _ -> false

let is_return = function
  | Jump { kind = Ret; _ } -> true
  | Mem _ | Opr _ | Fop _ | Br _ | Cbr _ | Fbr _ | Jump _ | Call_pal _ | Raw _ -> false

let is_terminator = function
  | Br _ | Cbr _ | Fbr _ | Jump _ -> true
  | Call_pal _ -> false
  | Mem _ | Opr _ | Fop _ | Raw _ -> false

let falls_through = function
  | Br _ | Jump _ -> false
  | Cbr _ | Fbr _ -> true
  | Mem _ | Opr _ | Fop _ | Call_pal _ | Raw _ -> true

let branch_disp = function
  | Br { disp; _ } | Cbr { disp; _ } | Fbr { disp; _ } -> Some disp
  | Mem _ | Opr _ | Fop _ | Jump _ | Call_pal _ | Raw _ -> None

let invert_cond = function
  | Beq -> Bne | Bne -> Beq | Blt -> Bge | Bge -> Blt
  | Ble -> Bgt | Bgt -> Ble | Blbc -> Blbs | Blbs -> Blbc

let invert_fcond = function
  | Fbeq -> Fbne | Fbne -> Fbeq | Fblt -> Fbge | Fbge -> Fblt
  | Fble -> Fbgt | Fbgt -> Fble

let invert_branch = function
  | Cbr b -> Some (Cbr { b with cond = invert_cond b.cond })
  | Fbr b -> Some (Fbr { b with cond = invert_fcond b.cond })
  | Mem _ | Opr _ | Fop _ | Br _ | Jump _ | Call_pal _ | Raw _ -> None

let with_branch_disp i disp =
  match i with
  | Br b -> Br { b with disp }
  | Cbr b -> Cbr { b with disp }
  | Fbr b -> Fbr { b with disp }
  | Mem _ | Opr _ | Fop _ | Jump _ | Call_pal _ | Raw _ ->
      invalid_arg "Insn.with_branch_disp: not a PC-relative branch"

let branch_target ~pc i =
  match branch_disp i with
  | Some d -> Some (pc + 4 + (d * 4))
  | None -> None

let access_bytes = function
  | Mem { op = Ldbu | Stb; _ } -> 1
  | Mem { op = Ldwu | Stw; _ } -> 2
  | Mem { op = Ldl | Stl; _ } -> 4
  | Mem { op = Ldq | Stq | Ldq_u | Stq_u | Ldt | Stt; _ } -> 8
  | Mem { op = Lda | Ldah; _ } -> 0
  | Opr _ | Fop _ | Br _ | Cbr _ | Fbr _ | Jump _ | Call_pal _ | Raw _ -> 0

let defs = function
  | Mem { op; ra; rb = _; _ } ->
      if mem_is_store op then Regset.empty
      else if mem_is_fp op then Regset.add_f ra Regset.empty
      else Regset.add ra Regset.empty
  | Opr { rc; _ } -> Regset.add rc Regset.empty
  | Fop { fc; _ } -> Regset.add_f fc Regset.empty
  | Br { ra; _ } -> Regset.add ra Regset.empty
  | Cbr _ | Fbr _ -> Regset.empty
  | Jump { ra; _ } -> Regset.add ra Regset.empty
  | Call_pal _ ->
      (* callsys: the kernel returns its result in v0 and an error flag in
         a3; everything else is preserved by our PAL model. *)
      Regset.of_list [ Reg.v0; 19 ]
  | Raw _ -> Regset.empty

let uses = function
  | Mem { op; ra; rb; _ } ->
      let base = Regset.add rb Regset.empty in
      if mem_is_store op then
        if mem_is_fp op then Regset.add_f ra base else Regset.add ra base
      else base
  | Opr { ra; rb; _ } -> (
      let s = Regset.add ra Regset.empty in
      match rb with Reg r -> Regset.add r s | Imm _ -> s)
  | Fop { fa; fb; _ } -> Regset.add_f fa (Regset.add_f fb Regset.empty)
  | Br _ -> Regset.empty
  | Cbr { ra; _ } -> Regset.add ra Regset.empty
  | Fbr { fa; _ } -> Regset.add_f fa Regset.empty
  | Jump { rb; _ } -> Regset.add rb Regset.empty
  | Call_pal _ -> Regset.of_list [ Reg.v0; 16; 17; 18 ]
  | Raw _ -> Regset.empty

let all_opr_ops =
  [ Addl; Subl; Addq; Subq; S4addq; S8addq; Mull; Mulq; Umulh;
    Cmpeq; Cmplt; Cmple; Cmpult; Cmpule; Cmpbge;
    And_; Bic; Bis; Ornot; Xor; Eqv; Sll; Srl; Sra; Zap; Zapnot;
    Extbl; Extwl; Extll; Extql; Insbl; Inswl; Insll; Insql;
    Mskbl; Mskwl; Mskll; Mskql;
    Cmoveq; Cmovne; Cmovlt; Cmovge; Cmovle; Cmovgt; Cmovlbs; Cmovlbc ]

let all_fop_ops =
  [ Addt; Subt; Mult; Divt; Cmpteq; Cmptlt; Cmptle; Cvtqt; Cvttq; Cpys; Cpysn ]

let all_br_conds = [ Beq; Bne; Blt; Ble; Bgt; Bge; Blbc; Blbs ]
let all_fbr_conds = [ Fbeq; Fbne; Fblt; Fble; Fbgt; Fbge ]

let all_mem_ops =
  [ Lda; Ldah; Ldbu; Ldwu; Ldl; Ldq; Ldq_u; Stb; Stw; Stl; Stq; Stq_u; Ldt; Stt ]

let mem_op_name = function
  | Lda -> "lda" | Ldah -> "ldah"
  | Ldbu -> "ldbu" | Ldwu -> "ldwu" | Ldl -> "ldl" | Ldq -> "ldq" | Ldq_u -> "ldq_u"
  | Stb -> "stb" | Stw -> "stw" | Stl -> "stl" | Stq -> "stq" | Stq_u -> "stq_u"
  | Ldt -> "ldt" | Stt -> "stt"

let opr_op_name = function
  | Addl -> "addl" | Subl -> "subl" | Addq -> "addq" | Subq -> "subq"
  | S4addq -> "s4addq" | S8addq -> "s8addq"
  | Mull -> "mull" | Mulq -> "mulq" | Umulh -> "umulh"
  | Cmpeq -> "cmpeq" | Cmplt -> "cmplt" | Cmple -> "cmple"
  | Cmpult -> "cmpult" | Cmpule -> "cmpule" | Cmpbge -> "cmpbge"
  | And_ -> "and" | Bic -> "bic" | Bis -> "bis" | Ornot -> "ornot"
  | Xor -> "xor" | Eqv -> "eqv"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Zap -> "zap" | Zapnot -> "zapnot"
  | Extbl -> "extbl" | Extwl -> "extwl" | Extll -> "extll" | Extql -> "extql"
  | Insbl -> "insbl" | Inswl -> "inswl" | Insll -> "insll" | Insql -> "insql"
  | Mskbl -> "mskbl" | Mskwl -> "mskwl" | Mskll -> "mskll" | Mskql -> "mskql"
  | Cmoveq -> "cmoveq" | Cmovne -> "cmovne" | Cmovlt -> "cmovlt"
  | Cmovge -> "cmovge" | Cmovle -> "cmovle" | Cmovgt -> "cmovgt"
  | Cmovlbs -> "cmovlbs" | Cmovlbc -> "cmovlbc"

let fop_op_name = function
  | Addt -> "addt" | Subt -> "subt" | Mult -> "mult" | Divt -> "divt"
  | Cmpteq -> "cmpteq" | Cmptlt -> "cmptlt" | Cmptle -> "cmptle"
  | Cvtqt -> "cvtqt" | Cvttq -> "cvttq"
  | Cpys -> "cpys" | Cpysn -> "cpysn"

let br_cond_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Ble -> "ble"
  | Bgt -> "bgt" | Bge -> "bge" | Blbc -> "blbc" | Blbs -> "blbs"

let fbr_cond_name = function
  | Fbeq -> "fbeq" | Fbne -> "fbne" | Fblt -> "fblt"
  | Fble -> "fble" | Fbgt -> "fbgt" | Fbge -> "fbge"

let jmp_kind_name = function
  | Jmp -> "jmp" | Jsr -> "jsr" | Ret -> "ret" | Jsr_coroutine -> "jsr_coroutine"

let to_string i =
  let r = Reg.name and f = Reg.fname in
  match i with
  | Mem { op; ra; rb; disp } ->
      let dst = if mem_is_fp op then f ra else r ra in
      Printf.sprintf "%s %s, %d(%s)" (mem_op_name op) dst disp (r rb)
  | Opr { op; ra; rb; rc } ->
      let rb_s = match rb with Reg x -> r x | Imm n -> Printf.sprintf "#%d" n in
      Printf.sprintf "%s %s, %s, %s" (opr_op_name op) (r ra) rb_s (r rc)
  | Fop { op; fa; fb; fc } ->
      Printf.sprintf "%s %s, %s, %s" (fop_op_name op) (f fa) (f fb) (f fc)
  | Br { link; ra; disp } ->
      Printf.sprintf "%s %s, %d" (if link then "bsr" else "br") (r ra) disp
  | Cbr { cond; ra; disp } ->
      Printf.sprintf "%s %s, %d" (br_cond_name cond) (r ra) disp
  | Fbr { cond; fa; disp } ->
      Printf.sprintf "%s %s, %d" (fbr_cond_name cond) (f fa) disp
  | Jump { kind; ra; rb; hint } ->
      Printf.sprintf "%s %s, (%s), %d" (jmp_kind_name kind) (r ra) (r rb) hint
  | Call_pal n -> Printf.sprintf "call_pal %#x" n
  | Raw w -> Printf.sprintf ".word %#010x" (w land 0xFFFFFFFF)

let pp ppf i = Format.pp_print_string ppf (to_string i)

let equal (a : t) (b : t) = a = b
