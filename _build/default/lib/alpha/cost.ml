open Insn

type cls = C_load | C_store | C_iop | C_fop | C_ibr | C_fbr | C_misc

let classify i =
  match kind i with
  | K_load -> C_load
  | K_store -> C_store
  | K_ialu -> C_iop
  | K_fop -> C_fop
  | K_cond_branch -> ( match i with Fbr _ -> C_fbr | _ -> C_ibr)
  | K_uncond_branch | K_jump -> C_ibr
  | K_pal | K_other -> C_misc

let latency i =
  match i with
  | Mem { op = Lda | Ldah; _ } -> 1
  | Mem { op; _ } -> if mem_is_load op then 3 else 1
  | Opr { op = Mull; _ } -> 21
  | Opr { op = Mulq | Umulh; _ } -> 23
  | Opr { op = Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt | Cmovlbs | Cmovlbc; _ }
    ->
      2
  | Opr _ -> 1
  | Fop { op = Divt; _ } -> 34
  | Fop { op = Cpys | Cpysn; _ } -> 1
  | Fop _ -> 6
  | Br _ | Cbr _ | Fbr _ | Jump _ -> 1
  | Call_pal _ -> 20
  | Raw _ -> 1

(* 21064 dual-issue legality: at most one memory operation, at most one
   branch, and the two instructions must use different boxes — an integer
   operate pairs with a floating operate or a memory operation or a
   floating branch, a floating operate pairs with an integer branch, a
   memory operation pairs with almost anything but another memory
   operation.  PAL/misc instructions never dual-issue. *)
let can_pair a b =
  match (a, b) with
  | C_misc, _ | _, C_misc -> false
  | (C_load | C_store), (C_load | C_store) -> false
  | C_iop, C_iop -> false
  | C_fop, C_fop -> false
  | (C_ibr | C_fbr), (C_ibr | C_fbr) -> false
  | C_iop, C_fbr | C_fbr, C_iop -> true
  | C_fop, C_ibr | C_ibr, C_fop -> true
  | C_iop, C_ibr | C_ibr, C_iop -> false  (* both need the integer box *)
  | C_fop, C_fbr | C_fbr, C_fop -> false  (* both need the floating box *)
  | (C_load | C_store), _ | _, (C_load | C_store) -> true
  | C_iop, C_fop | C_fop, C_iop -> true

let issue_cycles ?(base_align = 0) insns =
  let n = Array.length insns in
  let out = Array.make n 0 in
  if n = 0 then out
  else begin
    let iready = Array.make 32 0 and fready = Array.make 32 0 in
    let operands_ready i =
      let u = uses insns.(i) in
      let ri = Regset.fold_ints (fun r acc -> max acc iready.(r)) u 0 in
      Regset.fold_fps (fun r acc -> max acc fready.(r)) u ri
    in
    let retire i cyc =
      let done_at = cyc + latency insns.(i) in
      Regset.fold_ints (fun r () -> if r < 31 then iready.(r) <- max iready.(r) done_at)
        (defs insns.(i)) ();
      Regset.fold_fps (fun r () -> if r < 31 then fready.(r) <- max fready.(r) done_at)
        (defs insns.(i)) ()
    in
    let cycle = ref 0 in
    let idx = ref 0 in
    while !idx < n do
      let i = !idx in
      let c = max !cycle (operands_ready i) in
      out.(i) <- c;
      retire i c;
      (* try to dual-issue the second instruction of an aligned pair *)
      let aligned_first = (i + base_align) land 1 = 0 in
      if
        aligned_first && i + 1 < n
        && can_pair (classify insns.(i)) (classify insns.(i + 1))
        && operands_ready (i + 1) <= c
      then begin
        out.(i + 1) <- c;
        retire (i + 1) c;
        cycle := c + 1;
        idx := i + 2
      end
      else begin
        cycle := c + 1;
        idx := i + 1
      end
    done;
    out
  end

let schedule ?(base_align = 0) insns =
  let n = Array.length insns in
  if n = 0 then 0
  else begin
    let cycles = issue_cycles ~base_align insns in
    let finish = cycles.(n - 1) + latency insns.(n - 1) in
    max finish ((n + 1) / 2)
  end

let stalls insns =
  let n = Array.length insns in
  if n = 0 then 0 else max 0 (schedule insns - ((n + 1) / 2))
