(** Compact sets of machine registers.

    A value holds one 32-bit mask for the integer register file and one for
    the floating-point register file.  The hardwired zero registers ([$31]
    and [$f31]) are never members: adding them is a no-op, which lets
    def/use computations stay oblivious to the zero-register convention. *)

type t

val empty : t
val is_empty : t -> bool
val add : Reg.t -> t -> t
val add_f : Reg.f -> t -> t
val mem : Reg.t -> t -> bool
val mem_f : Reg.f -> t -> bool
val remove : Reg.t -> t -> t
val remove_f : Reg.f -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

val of_list : Reg.t list -> t
val of_list_f : Reg.f list -> t

val ints : t -> Reg.t list
(** Integer members, ascending. *)

val fps : t -> Reg.f list
(** Floating members, ascending. *)

val cardinal : t -> int

val fold_ints : (Reg.t -> 'a -> 'a) -> t -> 'a -> 'a
val fold_fps : (Reg.f -> 'a -> 'a) -> t -> 'a -> 'a

val caller_saves : t
(** All caller-save registers of both files, per {!Reg}. *)

val pp : Format.formatter -> t -> unit
