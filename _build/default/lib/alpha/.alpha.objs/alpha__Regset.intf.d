lib/alpha/regset.mli: Format Reg
