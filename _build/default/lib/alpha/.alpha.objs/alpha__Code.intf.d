lib/alpha/code.mli: Insn
