lib/alpha/regset.ml: Format List Reg String
