lib/alpha/insn.ml: Format Printf Reg Regset
