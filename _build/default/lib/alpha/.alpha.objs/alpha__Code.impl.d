lib/alpha/code.ml: Bytes Char Hashtbl Insn List Printf
