lib/alpha/reg.ml: Array Fun List Printf String
