lib/alpha/reg.mli:
