lib/alpha/cost.ml: Array Insn Regset
