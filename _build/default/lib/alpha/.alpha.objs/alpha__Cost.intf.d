lib/alpha/cost.mli: Insn
