lib/alpha/insn.mli: Format Reg Regset
