(** Code generation: lay the annotated IR back out as machine code.

    The new text is placed at the original text base; stubs expand it, so
    every original instruction may move.  The generator

    - computes the old-to-new PC map,
    - re-resolves every PC-relative branch through that map (branch targets
      land on the target instruction's {e before}-stubs, so entering a
      block by branch runs its instrumentation),
    - rewrites [ldah]/[lda] pairs that materialise a {e text} address
      (using the executable's {!Objfile.Exe.code_ref} records), so taken
      procedure addresses remain valid,
    - executes each instruction's {e after}-stubs only on fall-through.

    Data-resident code references ([Cr_quad]/[Cr_long]) are reported back
    for the caller (ATOM) to patch in the data image. *)

type result = {
  r_text : bytes;  (** instrumented text, based at the original text start *)
  r_map : int -> int;
      (** old PC -> new PC, defined on [text_start .. text_start+size] *)
  r_data_patches : (Objfile.Exe.code_ref * int) list;
      (** data-segment code refs paired with the {e new} target address *)
}

val sizeof : Ir.program -> int
(** Size in bytes of the instrumented text (layout is deterministic). *)

val generate : Ir.program -> result
(** @raise Failure if a rewritten branch no longer fits its displacement
    field. *)
