open Alpha

type t = (string, Regset.t) Hashtbl.t

let all_caller_saves = Regset.caller_saves

let compute prog =
  let n = Array.length prog.Ir.procs in
  let by_addr = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace by_addr p.Ir.p_addr i) prog.Ir.procs;
  let summary = Array.make n Regset.empty in
  (* direct call targets of each procedure, plus whether it makes an
     indirect call *)
  let calls = Array.make n [] in
  let indirect = Array.make n false in
  Array.iteri
    (fun i p ->
      let local = ref Regset.empty in
      Array.iter
        (fun b ->
          Array.iter
            (fun inst ->
              let insn = inst.Ir.i_insn in
              local := Regset.union !local (Insn.defs insn);
              match insn with
              | Insn.Br { link = true; _ } -> (
                  match Insn.branch_target ~pc:inst.Ir.i_pc insn with
                  | Some target -> (
                      match Hashtbl.find_opt by_addr target with
                      | Some j -> calls.(i) <- j :: calls.(i)
                      | None -> indirect.(i) <- true)
                  | None -> ())
              | Insn.Jump { kind = Insn.Jsr | Insn.Jsr_coroutine; _ } ->
                  indirect.(i) <- true
              | Insn.Mem _ | Insn.Opr _ | Insn.Fop _ | Insn.Br _ | Insn.Cbr _
              | Insn.Fbr _ | Insn.Jump _ | Insn.Call_pal _ | Insn.Raw _ ->
                  ())
            b.Ir.b_insts)
        p.Ir.p_blocks;
      summary.(i) <- Regset.inter !local all_caller_saves;
      if indirect.(i) then summary.(i) <- all_caller_saves)
    prog.Ir.procs;
  (* fixpoint over the call graph *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i _ ->
        List.iter
          (fun j ->
            let s = Regset.union summary.(i) summary.(j) in
            if not (Regset.equal s summary.(i)) then begin
              summary.(i) <- s;
              changed := true
            end)
          calls.(i))
      prog.Ir.procs
  done;
  let tbl = Hashtbl.create n in
  Array.iteri
    (fun i p -> Hashtbl.replace tbl p.Ir.p_name summary.(i))
    prog.Ir.procs;
  tbl

let modified_by t name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None -> all_caller_saves
