open Alpha

type result = {
  r_text : bytes;
  r_map : int -> int;
  r_data_patches : (Objfile.Exe.code_ref * int) list;
}

let stub_bytes stubs = List.fold_left (fun acc s -> acc + s.Ir.s_size) 0 stubs

let inst_bytes i =
  let tramp =
    (* taken-edge trampoline: the stubs plus a branch to the original
       target (the branch itself reuses the instruction's own slot) *)
    if i.Ir.i_taken = [] then 0 else stub_bytes i.Ir.i_taken + 4
  in
  stub_bytes i.Ir.i_before + 4 + tramp + stub_bytes i.Ir.i_after

let sizeof prog =
  let total = ref 0 in
  Ir.iter_insts prog (fun _ _ i -> total := !total + inst_bytes i);
  !total

let sext16 v = if v land 0x8000 <> 0 then (v land 0xFFFF) - 0x10000 else v land 0xFFFF

let generate prog =
  let exe = prog.Ir.exe in
  let base = exe.Objfile.Exe.x_text_start in
  let old_size = exe.Objfile.Exe.x_text_size in
  (* pass 1: layout *)
  let nwords = old_size / 4 in
  let map_arr = Array.make (nwords + 1) 0 in
  let cursor = ref base in
  Ir.iter_insts prog (fun _ _ i ->
      map_arr.((i.Ir.i_pc - base) / 4) <- !cursor;
      cursor := !cursor + inst_bytes i);
  map_arr.(nwords) <- !cursor;
  let new_size = !cursor - base in
  let map old =
    if old < base || old > base + old_size then
      failwith (Printf.sprintf "Codegen: PC map query outside text: %#x" old)
    else map_arr.((old - base) / 4)
  in
  (* code-ref lookup for hi/lo fields inside text *)
  let hilo = Hashtbl.create 16 in
  let data_patches = ref [] in
  List.iter
    (fun cr ->
      let open Objfile.Exe in
      match cr.cr_kind with
      | Cr_hi | Cr_lo ->
          if cr.cr_addr >= base && cr.cr_addr < base + old_size then
            Hashtbl.replace hilo cr.cr_addr cr
          else failwith "Codegen: hi/lo code ref outside text"
      | Cr_quad | Cr_long -> data_patches := (cr, map cr.cr_target) :: !data_patches)
    exe.Objfile.Exe.x_code_refs;
  (* pass 2: emission *)
  let out = Bytes.make new_size '\000' in
  let pos = ref 0 in
  let emit_insn insn =
    Code.encode_at out !pos insn;
    pos := !pos + 4
  in
  let emit_stub s =
    let pc = base + !pos in
    let insns = s.Ir.s_emit ~pc in
    if 4 * List.length insns <> s.Ir.s_size then
      failwith "Codegen: stub emitted a different size than declared";
    List.iter emit_insn insns
  in
  Ir.iter_insts prog (fun _ _ i ->
      List.iter emit_stub i.Ir.i_before;
      let here = base + !pos in
      let insn = i.Ir.i_insn in
      let insn =
        (* retarget PC-relative branches through the map; preserve the
           absolute target of a branch that leaves the text segment *)
        match Insn.branch_target ~pc:i.Ir.i_pc insn with
        | Some old_target ->
            let new_target =
              if old_target >= base && old_target <= base + old_size then map old_target
              else old_target
            in
            let disp = (new_target - (here + 4)) / 4 in
            if not (Code.fits_disp21 disp) then
              failwith
                (Printf.sprintf "Codegen: branch at %#x out of range after expansion"
                   i.Ir.i_pc);
            Insn.with_branch_disp insn disp
        | None -> (
            (* rewrite hi/lo address materialisations that point into text *)
            match Hashtbl.find_opt hilo i.Ir.i_pc with
            | None -> insn
            | Some cr -> (
                let nt = map cr.Objfile.Exe.cr_target in
                match (cr.Objfile.Exe.cr_kind, insn) with
                | Objfile.Exe.Cr_hi, Insn.Mem m ->
                    Insn.Mem { m with disp = sext16 (((nt + 0x8000) asr 16) land 0xFFFF) }
                | Objfile.Exe.Cr_lo, Insn.Mem m ->
                    Insn.Mem { m with disp = sext16 (nt land 0xFFFF) }
                | (Objfile.Exe.Cr_hi | Objfile.Exe.Cr_lo), _ ->
                    failwith "Codegen: hi/lo code ref on a non-memory instruction"
                | (Objfile.Exe.Cr_quad | Objfile.Exe.Cr_long), _ -> assert false))
      in
      (if i.Ir.i_taken = [] then emit_insn insn
       else begin
         (* taken-edge lowering: invert the branch over the trampoline *)
         let skip_words = (stub_bytes i.Ir.i_taken + 4) / 4 in
         let inverted =
           match Insn.invert_branch insn with
           | Some b -> Insn.with_branch_disp b skip_words
           | None ->
               failwith
                 (Printf.sprintf
                    "Codegen: taken-edge stubs on a non-conditional branch at %#x"
                    i.Ir.i_pc)
         in
         emit_insn inverted;
         List.iter emit_stub i.Ir.i_taken;
         (* jump to the (moved) original target *)
         let old_target =
           match Insn.branch_target ~pc:i.Ir.i_pc i.Ir.i_insn with
           | Some t -> t
           | None -> assert false
         in
         let new_target =
           if old_target >= base && old_target <= base + old_size then map old_target
           else old_target
         in
         let br_pc = base + !pos in
         let disp = (new_target - (br_pc + 4)) / 4 in
         if not (Code.fits_disp21 disp) then
           failwith "Codegen: taken-edge trampoline branch out of range";
         emit_insn (Insn.Br { link = false; ra = Alpha.Reg.zero; disp })
       end);
      if i.Ir.i_after <> [] && not (Insn.falls_through i.Ir.i_insn) then
        failwith
          (Printf.sprintf "Codegen: after-stub on a non-falling-through instruction at %#x"
             i.Ir.i_pc);
      List.iter emit_stub i.Ir.i_after);
  if !pos <> new_size then failwith "Codegen: layout/emission size mismatch";
  { r_text = out; r_map = map; r_data_patches = List.rev !data_patches }
