lib/om/dataflow.ml: Alpha Array Hashtbl Insn Ir List Regset
