lib/om/liveness.mli: Alpha Hashtbl Ir
