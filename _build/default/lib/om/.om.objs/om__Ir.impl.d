lib/om/ir.ml: Alpha Array List Objfile
