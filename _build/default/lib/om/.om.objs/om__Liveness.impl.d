lib/om/liveness.ml: Alpha Array Fun Hashtbl Insn Ir List Objfile Regset
