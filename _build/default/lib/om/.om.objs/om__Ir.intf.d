lib/om/ir.mli: Alpha Objfile
