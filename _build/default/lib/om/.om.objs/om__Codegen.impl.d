lib/om/codegen.ml: Alpha Array Bytes Code Hashtbl Insn Ir List Objfile Printf
