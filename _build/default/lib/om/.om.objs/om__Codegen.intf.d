lib/om/codegen.mli: Ir Objfile
