lib/om/build.ml: Alpha Array Code Insn Ir List Objfile Printf
