lib/om/dataflow.mli: Alpha Ir
