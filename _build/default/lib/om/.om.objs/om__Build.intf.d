lib/om/build.mli: Ir Objfile
