(** Interprocedural register-modification summaries.

    For every procedure, the set of {e caller-save} registers that may be
    modified by the time control returns from it — the registers an
    inserted call must save (paper §4, "Reducing Procedure Call Overhead").
    Callee-save registers are excluded: routines that follow the calling
    standard (all analysis routines, by construction) preserve them.

    The summary is transitively closed over the call graph by fixpoint;
    an indirect call ([jsr] through a register) is treated as clobbering
    every caller-save register. *)

type t

val compute : Ir.program -> t

val modified_by : t -> string -> Alpha.Regset.t
(** Summary for a procedure name; all caller-save registers when the
    procedure is unknown. *)

val all_caller_saves : Alpha.Regset.t
