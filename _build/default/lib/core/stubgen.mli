(** Machine-code generation for instrumentation sites and wrapper
    routines (paper §4, "Inserting Procedure Calls" and "Reducing
    Procedure Call Overhead").

    A {e site stub} allocates stack space, saves exactly the registers the
    site itself clobbers (the return-address register, the argument
    registers it writes, and an FP scratch when a floating branch
    condition is materialised), marshals the arguments per the calling
    standard, and calls the target.  Register operands that were saved are
    re-read from their stack slots, so REGV and EffAddrValue always see
    the application's uninstrumented values — including [$sp], which is
    reported with the stub's own frame subtracted out.

    A {e wrapper routine} saves the remaining caller-save registers that
    the analysis procedure's dataflow summary says may be modified, calls
    the analysis procedure, restores and returns. *)

type target = unit -> int
(** Absolute address of the routine to call; read at emission time, after
    the analysis module and wrappers have been placed. *)

type resolved_arg =
  | R_const of int  (** a known 64-bit constant *)
  | R_addr of (unit -> int)
      (** an address below 2{^31}, resolved at emission (interned strings) *)
  | R_regv of Alpha.Reg.t
  | R_cond  (** branch-condition value of the site's instruction *)
  | R_effaddr  (** effective address of the site's memory instruction *)

type callee =
  | Call of target  (** [bsr] to the wrapper or the analysis procedure *)
  | Splice of int * (unit -> Alpha.Insn.t list)
      (** the analysis procedure's body inlined at the site: instruction
          count (fixed at stub-construction time) and a late thunk for the
          instructions themselves (read from the finally-placed analysis
          image; its trailing [ret] already removed).  The body must be
          position-independent as a group — internal PC-relative branches
          only, no calls. *)

val site_stub :
  site_insn:Alpha.Insn.t ->
  args:resolved_arg list ->
  extra_saves:Alpha.Regset.t ->
  ?live:Alpha.Regset.t ->
  callee:callee ->
  unit ->
  Om.Ir.stub
(** [extra_saves] adds registers to the site's save set (the inline-save
    call style passes the whole summary here; the wrapper style passes the
    empty set).  [live], when given, drops saves of registers that are
    dead in the application at this point — the paper's planned
    live-register optimization; registers the stub itself must observe
    (REGV and address operands) are kept regardless.
    @raise Failure if the call lands out of [bsr] range at emission. *)

val wrapper :
  at:int ->
  summary:Alpha.Regset.t ->
  nargs:int ->
  proc_addr:int ->
  Alpha.Insn.t list
(** The wrapper routine for one analysis procedure, placed at address
    [at].  Saves [summary] minus the registers every site already saves
    ([ra] and the first [nargs] argument registers), calls [proc_addr],
    restores, returns. *)

val load_const : Alpha.Reg.t -> int -> Alpha.Insn.t list
(** Materialise an arbitrary 64-bit constant (2 instructions for values
    that fit 32 bits, 5 in the general case; no literal pool, stubs must
    be self-contained). *)
