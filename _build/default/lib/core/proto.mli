(** Analysis-procedure prototypes, in the paper's C-like string form:
    ["CondBranch(int, VALUE)"], ["OpenFile(int)"], ["CloseFile()"].

    The prototype tells ATOM how to interpret the actual arguments given
    at each [add_call_*] site.  Recognised parameter types: [int], [long],
    [char*] / [char *], [void*], [REGV] (a register number whose run-time
    contents are passed) and [VALUE] ([EffAddrValue] or [BrCondValue]). *)

type kind =
  | K_const  (** int / long / pointers: a 64-bit constant *)
  | K_regv
  | K_value

type t = { p_name : string; p_params : kind list }

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed prototype strings. *)

val kind_name : kind -> string
