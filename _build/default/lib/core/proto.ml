type kind = K_const | K_regv | K_value

type t = { p_name : string; p_params : kind list }

exception Parse_error of string

let kind_name = function
  | K_const -> "int"
  | K_regv -> "REGV"
  | K_value -> "VALUE"

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> fail "missing '(' in prototype %S" s
  | Some i ->
      let p_name = String.trim (String.sub s 0 i) in
      if p_name = "" then fail "missing procedure name in %S" s;
      if s.[String.length s - 1] <> ')' then fail "missing ')' in prototype %S" s;
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      let inner = String.trim inner in
      let p_params =
        if inner = "" || inner = "void" then []
        else
          List.map
            (fun tok ->
              let tok = String.trim tok in
              (* strip a parameter name if present: keep the leading
                 type word(s) and stars *)
              let base =
                match String.index_opt tok ' ' with
                | Some j -> String.sub tok 0 j
                | None -> tok
              in
              let base =
                match String.index_opt base '*' with
                | Some j -> String.sub base 0 j
                | None -> base
              in
              (match base with
              | "REGV" -> K_regv
              | "VALUE" -> K_value
              | "int" | "long" | "char" | "void" | "unsigned" -> K_const
              | _ -> fail "unknown parameter type %S in %S" tok s))
            (String.split_on_char ',' inner)
      in
      { p_name; p_params }
