lib/core/api.ml: Alpha Array Hashtbl List Objfile Om Printf Proto
