lib/core/stubgen.ml: Alpha Code Insn Int64 List Om Reg Regset
