lib/core/api.mli: Alpha Hashtbl Om Proto
