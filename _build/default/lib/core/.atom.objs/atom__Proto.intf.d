lib/core/proto.mli:
