lib/core/instrument.ml: Alpha Api Array Buffer Bytes Char Exe Fun Hashtbl Int64 Linker List Minic Objfile Om Option Printf Proto Rtlib Stubgen
