lib/core/proto.ml: List Printf String
